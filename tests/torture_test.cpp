//===- tests/torture_test.cpp - mixed-primitive torture run ---------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A single long randomized run mixing every primitive in one process —
/// semaphores, mutexes, RW locks, latches, pools, channels, coroutines —
/// with cancellation injected throughout, under a watchdog that fails the
/// test if the system stops making progress (deadlock/livelock detector).
/// This is the closest runtime analogue to the paper's progress claims
/// (Appendix E).
///
//===----------------------------------------------------------------------===//

#include "sync/Channel.h"
#include "sync/CountDownLatch.h"
#include "sync/Mutex.h"
#include "sync/Pool.h"
#include "sync/RwMutex.h"
#include "sync/Semaphore.h"
#include "task/Awaitable.h"
#include "task/Executor.h"
#include "task/Task.h"

#include "reclaim/Ebr.h"
#include "support/Rng.h"
#include "support/WaitGroup.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

using namespace cqs;

namespace {

/// The suite carries the ctest `stress` label: PR CI runs the short
/// default, nightly multiplies the workload via CQS_STRESS_FULL=1.
int stressScale() {
  const char *E = std::getenv("CQS_STRESS_FULL");
  return (E && E[0] == '1') ? 10 : 1;
}

struct World {
  BasicSemaphore<4> Sem{3};
  BasicMutex<4> Mtx{ResumptionMode::Sync};
  BasicRwMutex<4> Rw;
  QueueBlockingPool<int *, 4> Pool;
  BufferedChannel<int, 4> Chan{2};
  std::atomic<long> Progress{0};
  std::atomic<int> SemHeld{0};
  std::atomic<int> MtxHeld{0};
  std::atomic<int> Writers{0};
};

void oneRandomOp(World &W, SplitMix64 &Rng) {
  switch (Rng.nextBelow(6)) {
  case 0: { // semaphore with possible abort
    auto F = W.Sem.acquire();
    if (!F.isImmediate() && Rng.chance(1, 3) && F.cancel())
      break;
    (void)F.blockingGet();
    ASSERT_LE(W.SemHeld.fetch_add(1) + 1, 3);
    W.SemHeld.fetch_sub(1);
    W.Sem.release();
    break;
  }
  case 1: { // mutex, sometimes via tryLock
    if (Rng.chance(1, 4)) {
      if (W.Mtx.tryLock()) {
        ASSERT_EQ(W.MtxHeld.fetch_add(1), 0);
        W.MtxHeld.fetch_sub(1);
        W.Mtx.unlock();
      }
      break;
    }
    auto F = W.Mtx.lock();
    if (!F.isImmediate() && Rng.chance(1, 3) && F.cancel())
      break;
    (void)F.blockingGet();
    ASSERT_EQ(W.MtxHeld.fetch_add(1), 0);
    W.MtxHeld.fetch_sub(1);
    W.Mtx.unlock();
    break;
  }
  case 2: { // RW read
    auto F = W.Rw.readLock();
    if (!F.isImmediate() && Rng.chance(1, 3) && F.cancel())
      break;
    (void)F.blockingGet();
    ASSERT_EQ(W.Writers.load(), 0);
    W.Rw.readUnlock();
    break;
  }
  case 3: { // RW write
    auto F = W.Rw.writeLock();
    if (!F.isImmediate() && Rng.chance(1, 3) && F.cancel())
      break;
    (void)F.blockingGet();
    ASSERT_EQ(W.Writers.fetch_add(1), 0);
    W.Writers.fetch_sub(1);
    W.Rw.writeUnlock();
    break;
  }
  case 4: { // pool round-trip with possible abort
    auto F = W.Pool.take();
    if (!F.isImmediate() && Rng.chance(1, 3) && F.cancel())
      break;
    auto E = F.blockingGet();
    ASSERT_TRUE(E.has_value());
    W.Pool.put(*E);
    break;
  }
  default: { // channel ping with timeouts (never block indefinitely: more
             // threads than capacity would otherwise self-deadlock)
    auto S = W.Chan.send(7);
    if (S.waitFor(std::chrono::milliseconds(1)) == FutureStatus::Pending) {
      // Abandon the backpressure ack; the element itself is delivered.
      (void)S.cancel();
    }
    auto F = W.Chan.receive();
    if (F.waitFor(std::chrono::milliseconds(1)) == FutureStatus::Pending &&
        F.cancel())
      break; // gave up the wait; someone else will drain the element
    (void)F.blockingGet();
    break;
  }
  }
  W.Progress.fetch_add(1);
}

TEST(Torture, MixedPrimitivesUnderWatchdog) {
  World W;
  std::vector<int> Elements(2);
  for (int &E : Elements)
    W.Pool.put(&E);

  constexpr int Threads = 8;
  const int OpsPerThread = 4000 * stressScale();
  std::atomic<bool> Done{false};

  std::thread Watchdog([&] {
    long Last = -1;
    int Stalls = 0;
    while (!Done.load()) {
      std::this_thread::sleep_for(std::chrono::seconds(2));
      long Cur = W.Progress.load();
      if (Cur == Last && !Done.load()) {
        if (++Stalls >= 15) {
          std::fprintf(stderr, "torture: no progress for 30s at %ld ops\n",
                       Cur);
          std::abort(); // deadlock — fail loudly with a core
        }
      } else {
        Stalls = 0;
      }
      Last = Cur;
    }
  });

  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T) {
    Ts.emplace_back([&, T] {
      SplitMix64 Rng(0xC0FFEE + T);
      for (int I = 0; I < OpsPerThread; ++I)
        oneRandomOp(W, Rng);
    });
  }
  for (auto &T : Ts)
    T.join();
  Done.store(true);
  Watchdog.join();

  // Quiescent sanity: everything fully released.
  EXPECT_EQ(W.Sem.availablePermits(), 3);
  EXPECT_FALSE(W.Mtx.isLocked());
  EXPECT_EQ(W.Rw.activeReadersForTesting(), 0u);
  EXPECT_FALSE(W.Rw.writerActiveForTesting());
  // The channel may hold elements abandoned by cancelled receives after
  // self-balancing sends; drain what the balance reports.
  while (W.Chan.balanceForTesting() > 0)
    (void)W.Chan.receive().blockingGet();
  EXPECT_LE(W.Chan.balanceForTesting(), 0);
}

/// The same mix driven by coroutines on the executor (no cancellation in
/// the coroutine variant: awaitFuture assumes the future completes).
TEST(Torture, CoroutineMixUnderWatchdog) {
  World W;
  std::vector<int> Elements(2);
  for (int &E : Elements)
    W.Pool.put(&E);

  Executor Exec(4);
  const int Tasks = 400 * stressScale();
  constexpr int OpsPerTask = 60;
  WaitGroup Wg(Tasks);

  auto TaskFn = [](World &W, int Seed, WaitGroup &Wg) -> FireAndForget {
    SplitMix64 Rng(Seed);
    for (int I = 0; I < OpsPerTask; ++I) {
      switch (Rng.nextBelow(3)) {
      case 0: {
        auto G = co_await awaitFuture(W.Sem.acquire());
        EXPECT_TRUE(G.has_value());
        W.Sem.release();
        break;
      }
      case 1: {
        auto G = co_await awaitFuture(W.Mtx.lock());
        EXPECT_TRUE(G.has_value());
        W.Mtx.unlock();
        break;
      }
      default: {
        auto E = co_await awaitFuture(W.Pool.take());
        EXPECT_TRUE(E.has_value());
        W.Pool.put(*E);
        break;
      }
      }
      W.Progress.fetch_add(1);
    }
    Wg.done();
  };

  std::atomic<bool> Done{false};
  std::thread Watchdog([&] {
    long Last = -1;
    int Stalls = 0;
    while (!Done.load()) {
      std::this_thread::sleep_for(std::chrono::seconds(2));
      long Cur = W.Progress.load();
      if (Cur == Last && !Done.load() && ++Stalls >= 15)
        std::abort();
      if (Cur != Last)
        Stalls = 0;
      Last = Cur;
    }
  });

  for (int T = 0; T < Tasks; ++T)
    TaskFn(W, 31337 + T, Wg).spawn(Exec);
  Wg.wait();
  Done.store(true);
  Watchdog.join();

  EXPECT_EQ(W.Sem.availablePermits(), 3);
  EXPECT_FALSE(W.Mtx.isLocked());
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
