//===- tests/support_test.cpp - support-layer unit tests ------------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Backoff.h"
#include "support/CacheLine.h"
#include "support/Rng.h"
#include "support/TaggedWord.h"
#include "support/ValueCodec.h"
#include "support/WaitGroup.h"
#include "support/Work.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

using namespace cqs;

TEST(CachePadded, OccupiesFullLine) {
  static_assert(sizeof(CachePadded<int>) >= CacheLineSize);
  static_assert(alignof(CachePadded<int>) == CacheLineSize);
  CachePadded<int> P(7);
  EXPECT_EQ(*P, 7);
}

TEST(Backoff, DegradesToYield) {
  Backoff B;
  EXPECT_FALSE(B.isYielding());
  for (unsigned I = 0; I <= Backoff::SpinLimitLog2; ++I)
    B.pause();
  EXPECT_TRUE(B.isYielding());
  B.reset();
  EXPECT_FALSE(B.isYielding());
}

TEST(SplitMix64, DeterministicPerSeed) {
  SplitMix64 A(42), B(42), C(43);
  EXPECT_EQ(A.next(), B.next());
  EXPECT_NE(A.next(), C.next());
}

TEST(SplitMix64, BoundedSamplesStayInRange) {
  SplitMix64 R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(GeometricWork, MeanIsRoughlyRight) {
  GeometricWork W(/*Mean=*/100, /*Seed=*/123);
  double Sum = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I)
    Sum += static_cast<double>(W.nextAmount());
  double Mean = Sum / N;
  EXPECT_GT(Mean, 80.0);
  EXPECT_LT(Mean, 120.0);
}

TEST(GeometricWork, ZeroMeanProducesNoWork) {
  GeometricWork W(0, 1);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(W.nextAmount(), 0u);
}

TEST(WaitGroup, WaitsForAllDone) {
  WaitGroup Wg;
  Wg.add(3);
  std::atomic<int> Done{0};
  std::thread T([&] {
    for (int I = 0; I < 3; ++I) {
      Done.fetch_add(1);
      Wg.done();
    }
  });
  Wg.wait();
  EXPECT_EQ(Done.load(), 3);
  T.join();
}

TEST(WaitGroup, ZeroCountWaitReturnsImmediately) {
  WaitGroup Wg;
  Wg.wait();
  SUCCEED();
}

TEST(TaggedWord, TokenRoundTrip) {
  EXPECT_EQ(makeTokenWord(Token::Empty), 0u);
  for (Token T : {Token::Empty, Token::Taken, Token::Broken, Token::Resumed,
                  Token::Cancelled, Token::Refuse}) {
    std::uint64_t W = makeTokenWord(T);
    EXPECT_EQ(wordKind(W), WordKind::Token);
    EXPECT_EQ(tokenOf(W), T);
  }
}

TEST(TaggedWord, ValueRoundTrip) {
  std::uint64_t W = encodeValueWord<int>(-12345);
  EXPECT_EQ(wordKind(W), WordKind::Value);
  EXPECT_EQ(decodeValueWord<int>(W), -12345);

  std::uint64_t U = encodeValueWord<Unit>(Unit{});
  EXPECT_EQ(wordKind(U), WordKind::Value);
  EXPECT_NE(U, makeTokenWord(Token::Empty)) << "values must not look EMPTY";
}

TEST(TaggedWord, PointerRoundTrip) {
  int X = 5;
  std::uint64_t W = encodeValueWord<int *>(&X);
  EXPECT_EQ(wordKind(W), WordKind::Value);
  EXPECT_EQ(decodeValueWord<int *>(W), &X);

  alignas(8) static int Obj;
  std::uint64_t P = makePointerWord(&Obj);
  EXPECT_EQ(wordKind(P), WordKind::Pointer);
  EXPECT_EQ(pointerOf(P), &Obj);
}

TEST(TaggedWord, DistinctKindsNeverCollide) {
  // A value word of payload 0 and the EMPTY token must differ.
  EXPECT_NE(makeValueWord(0), makeTokenWord(Token::Empty));
  // Tokens and values with equal numeric payloads differ by tag.
  EXPECT_NE(makeValueWord(4), makeTokenWord(Token::Cancelled));
}
