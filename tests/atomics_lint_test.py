#!/usr/bin/env python3
"""Unit tests for tools/atomics_lint.py.

One fixture file per shape, linted in a temporary repo root. The focus is
rule 5 (meaningless-order, new with the happens-before layer of DESIGN.md
§11): every impossible order the rule promises to catch, every legal order
it must not flag, and the allow(odd-order) opt-out. A smoke test per older
rule guards against regressions in the shared scanning machinery (comment
stripping, call-argument matching).

Run directly (python3 tests/atomics_lint_test.py) or through ctest.
"""

import os
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(REPO_ROOT, "tools", "atomics_lint.py")


class AtomicsLintTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        os.makedirs(os.path.join(self.dir.name, "src"))

    def tearDown(self):
        self.dir.cleanup()

    def lint(self, source, name="src/fixture.h"):
        """Write one fixture file, run the linter, return (exit, stdout)."""
        path = os.path.join(self.dir.name, name)
        with open(path, "w") as f:
            f.write(source)
        proc = subprocess.run(
            [sys.executable, LINT, "--root", self.dir.name],
            capture_output=True,
            text=True,
        )
        return proc.returncode, proc.stdout

    def assertFinding(self, source, rule, fragment=""):
        code, out = self.lint(source)
        self.assertEqual(code, 1, out)
        self.assertIn(rule, out)
        if fragment:
            self.assertIn(fragment, out)

    def assertClean(self, source):
        code, out = self.lint(source)
        self.assertEqual(code, 0, out)
        self.assertIn("atomics_lint: clean", out)

    # ---- rule 5: meaningless-order ------------------------------------

    def test_store_acquire_flagged(self):
        self.assertFinding(
            "void f(Atomic<int> &A) { A.store(1, std::memory_order_acquire); }",
            "meaningless-order",
            "a store cannot acquire",
        )

    def test_store_acq_rel_flagged(self):
        self.assertFinding(
            "void f(Atomic<int> &A) { A.store(1, std::memory_order_acq_rel); }",
            "meaningless-order",
        )

    def test_store_consume_flagged(self):
        self.assertFinding(
            "void f(Atomic<int> &A) { A.store(1, std::memory_order_consume); }",
            "meaningless-order",
        )

    def test_load_release_flagged(self):
        self.assertFinding(
            "int f(Atomic<int> &A) { return A.load(std::memory_order_release); }",
            "meaningless-order",
            "a load cannot release",
        )

    def test_load_acq_rel_flagged(self):
        self.assertFinding(
            "int f(Atomic<int> &A) { return A.load(std::memory_order_acq_rel); }",
            "meaningless-order",
        )

    def test_cas_failure_stronger_than_success_flagged(self):
        self.assertFinding(
            "bool f(Atomic<int> &A, int &E) {\n"
            "  return A.compare_exchange_strong(E, 1,\n"
            "      std::memory_order_relaxed, std::memory_order_acquire);\n"
            "}\n",
            "meaningless-order",
            "stronger than",
        )

    def test_cas_release_failure_flagged(self):
        # Even though release(2) does not outrank seq_cst(4), a
        # release-flavoured failure order is impossible: that path is a load.
        self.assertFinding(
            "bool f(Atomic<int> &A, int &E) {\n"
            "  return A.compare_exchange_weak(E, 1,\n"
            "      std::memory_order_seq_cst, std::memory_order_release);\n"
            "}\n",
            "meaningless-order",
            "cannot release",
        )

    def test_cpp20_scoped_order_spelling_recognized(self):
        self.assertFinding(
            "void f(Atomic<int> &A) { A.store(1, std::memory_order::acquire); }",
            "meaningless-order",
        )

    def test_legal_orders_clean(self):
        self.assertClean(
            "void f(Atomic<int> &A, int &E) {\n"
            "  A.store(1, std::memory_order_release);\n"
            "  (void)A.load(std::memory_order_acquire);\n"
            "  (void)A.load(std::memory_order_consume);\n"
            "  (void)A.exchange(2, std::memory_order_acq_rel);\n"
            "  (void)A.fetch_add(1, std::memory_order_relaxed);\n"
            "  (void)A.compare_exchange_strong(E, 1,\n"
            "      std::memory_order_acq_rel, std::memory_order_acquire);\n"
            "  (void)A.compare_exchange_weak(E, 1,\n"
            "      std::memory_order_release, std::memory_order_relaxed);\n"
            "}\n"
        )

    def test_equal_rank_failure_not_flagged(self):
        # acquire and release are incomparable; an acquire failure next to
        # a release success is the textbook lock acquisition, not a bug.
        self.assertClean(
            "bool f(Atomic<int> &A, int &E) {\n"
            "  return A.compare_exchange_strong(E, 1,\n"
            "      std::memory_order_release, std::memory_order_relaxed);\n"
            "}\n"
        )

    def test_single_order_cas_not_flagged(self):
        # One-order CAS derives its failure order inside the library; there
        # is nothing mis-declared at the call site.
        self.assertClean(
            "bool f(Atomic<int> &A, int &E) {\n"
            "  return A.compare_exchange_weak(E, 1, std::memory_order_acq_rel);\n"
            "}\n"
        )

    def test_odd_order_marker_suppresses(self):
        self.assertClean(
            "void f(Atomic<int> &A) {\n"
            "  A.store(1, std::memory_order_acquire); "
            "// atomics-lint: allow(odd-order)\n"
            "}\n"
        )

    def test_order_in_comment_ignored(self):
        self.assertClean(
            "void f(Atomic<int> &A) {\n"
            "  // A.store(1, std::memory_order_acquire) would be wrong\n"
            "  A.store(1, std::memory_order_release);\n"
            "}\n"
        )

    # ---- older rules: one smoke test each -----------------------------

    def test_raw_atomic_flagged(self):
        self.assertFinding("std::atomic<int> A;\n", "no-raw-atomic")

    def test_implicit_order_flagged(self):
        self.assertFinding(
            "void f(Atomic<int> &A) { A.store(1); }", "explicit-order"
        )

    def test_unpadded_shard_flagged(self):
        self.assertFinding(
            "struct PermitShard { Atomic<int> Count; };\n", "pad-shards"
        )

    def test_unsized_state_enum_flagged(self):
        self.assertFinding(
            "enum class CellState { Empty, Full };\n", "sized-state-enum"
        )

    def test_clean_tree_exits_zero(self):
        self.assertClean(
            "struct alignas(64) PermitShard { Atomic<int> C; };\n"
            "enum class CellState : std::uint64_t { Empty };\n"
        )


if __name__ == "__main__":
    unittest.main()
