//===- tests/sync_extras_test.cpp - guards & cyclic barrier tests ---------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sync/CyclicBarrierCqs.h"
#include "sync/Guards.h"

#include "reclaim/Ebr.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace cqs;

namespace {

TEST(Guards, LockGuardProtects) {
  Mutex M;
  long Counter = 0;
  std::vector<std::thread> Ts;
  for (int T = 0; T < 4; ++T) {
    Ts.emplace_back([&] {
      for (int I = 0; I < 5000; ++I) {
        LockGuard G(M);
        ++Counter;
      }
    });
  }
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Counter, 4L * 5000);
  EXPECT_FALSE(M.isLocked());
}

TEST(Guards, PermitGuardBoundsParallelism) {
  Semaphore S(2);
  std::atomic<int> Held{0}, MaxSeen{0};
  std::vector<std::thread> Ts;
  for (int T = 0; T < 6; ++T) {
    Ts.emplace_back([&] {
      for (int I = 0; I < 2000; ++I) {
        PermitGuard G(S);
        int Now = Held.fetch_add(1) + 1;
        int Max = MaxSeen.load();
        while (Now > Max && !MaxSeen.compare_exchange_weak(Max, Now)) {
        }
        Held.fetch_sub(1);
      }
    });
  }
  for (auto &T : Ts)
    T.join();
  EXPECT_LE(MaxSeen.load(), 2);
  EXPECT_EQ(S.availablePermits(), 2);
}

TEST(Guards, ReadersShareWritersExclude) {
  RwMutex Rw;
  std::atomic<int> Readers{0}, Writers{0};
  std::vector<std::thread> Ts;
  for (int T = 0; T < 6; ++T) {
    Ts.emplace_back([&, T] {
      for (int I = 0; I < 2000; ++I) {
        if ((T + I) % 5 == 0) {
          WriteGuard G(Rw);
          ASSERT_EQ(Writers.fetch_add(1), 0);
          ASSERT_EQ(Readers.load(), 0);
          Writers.fetch_sub(1);
        } else {
          ReadGuard G(Rw);
          Readers.fetch_add(1);
          ASSERT_EQ(Writers.load(), 0);
          Readers.fetch_sub(1);
        }
      }
    });
  }
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Rw.activeReadersForTesting(), 0u);
  EXPECT_FALSE(Rw.writerActiveForTesting());
}

TEST(CyclicCqsBarrier, RepeatedPhasesSynchronize) {
  constexpr int Parties = 4;
  constexpr int Phases = 500;
  BasicCyclicBarrier<4> B(Parties);
  std::vector<std::atomic<int>> PhaseOf(Parties);
  for (auto &P : PhaseOf)
    P.store(0);

  std::vector<std::thread> Ts;
  for (int P = 0; P < Parties; ++P) {
    Ts.emplace_back([&, P] {
      for (int Phase = 0; Phase < Phases; ++Phase) {
        PhaseOf[P].store(Phase);
        B.arriveAndWait();
        // After release, nobody can still be in an earlier phase.
        for (int Q = 0; Q < Parties; ++Q)
          ASSERT_GE(PhaseOf[Q].load(), Phase) << "phase leak at " << Phase;
      }
    });
  }
  for (auto &T : Ts)
    T.join();
}

TEST(CyclicCqsBarrier, SinglePartyNeverBlocks) {
  BasicCyclicBarrier<4> B(1);
  for (int I = 0; I < 100; ++I)
    B.arriveAndWait();
  SUCCEED();
}

TEST(CyclicCqsBarrier, TwoPartiesPingPong) {
  BasicCyclicBarrier<4> B(2);
  std::atomic<long> Sum{0};
  auto Body = [&] {
    for (int I = 0; I < 2000; ++I) {
      Sum.fetch_add(1);
      B.arriveAndWait();
      ASSERT_EQ(Sum.load() % 2, 0u) << "odd total visible after a phase";
      B.arriveAndWait();
    }
  };
  std::thread A(Body), C(Body);
  A.join();
  C.join();
  EXPECT_EQ(Sum.load(), 2L * 2000);
}

TEST(Barrier, TryArriveReportsOverArrival) {
  BasicBarrier<4> B(2);
  auto F1 = B.tryArrive();
  EXPECT_TRUE(F1.valid());
  auto F2 = B.tryArrive();
  EXPECT_TRUE(F2.valid());
  EXPECT_TRUE(F2.isImmediate());
  auto F3 = B.tryArrive();
  EXPECT_FALSE(F3.valid()) << "third arrival on a two-party barrier";
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
