//===- tests/segment_test.cpp - infinite-array segment list tests ---------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Exercises the Appendix C machinery directly: findSegment creation,
/// moveForward pointer accounting, logical removal, O(1) physical unlinking,
/// tail postponement, and concurrent traversal during removal storms.
///
//===----------------------------------------------------------------------===//

#include "core/SegmentList.h"
#include "reclaim/Ebr.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace cqs;

namespace {

using Seg2 = Segment<2>;
using List2 = SegmentList<2>;

/// Small harness owning a chain like the CQS does.
struct Chain {
  // cqs::Atomic so the pointers can be handed to the library's
  // findSegment/moveForward in schedcheck builds too.
  Atomic<Seg2 *> PtrA;
  Atomic<Seg2 *> PtrB;

  Chain() {
    auto *First = new Seg2(0, nullptr, /*InitialPointers=*/2);
    PtrA.store(First);
    PtrB.store(First);
  }

  ~Chain() {
    Seg2 *A = PtrA.load();
    Seg2 *B = PtrB.load();
    Seg2 *Cur = A->Id <= B->Id ? A : B;
    // Rewind to the leftmost segment: the tests move the pointers forward
    // past still-live segments, which would otherwise leak. The prev
    // chain may pass through retired-but-not-yet-freed segments; their
    // memory stays valid until ebr::drainForTesting runs in main().
    while (Seg2 *P = Cur->prev())
      Cur = P;
    while (Cur) {
      Seg2 *Next = Cur->next();
      if (!Cur->isRetiredForTesting())
        delete Cur;
      Cur = Next;
    }
  }
};

TEST(SegmentList, FindSegmentCreatesChain) {
  Chain C;
  ebr::Guard G;
  Seg2 *S0 = C.PtrA.load();
  Seg2 *S3 = List2::findSegment(S0, 3);
  EXPECT_EQ(S3->Id, 3u);
  // Walking next() from the head reaches every id in order.
  std::uint64_t Expected = 0;
  for (Seg2 *Cur = S0; Cur; Cur = Cur->next())
    EXPECT_EQ(Cur->Id, Expected++);
  EXPECT_EQ(Expected, 4u);
}

TEST(SegmentList, FindSegmentIsIdempotent) {
  Chain C;
  ebr::Guard G;
  Seg2 *S0 = C.PtrA.load();
  Seg2 *X = List2::findSegment(S0, 2);
  Seg2 *Y = List2::findSegment(S0, 2);
  EXPECT_EQ(X, Y);
  Seg2 *Z = List2::findSegment(X, 2);
  EXPECT_EQ(X, Z);
}

TEST(SegmentList, MoveForwardAdvancesAndCounts) {
  Chain C;
  ebr::Guard G;
  Seg2 *S0 = C.PtrA.load();
  Seg2 *S1 = List2::findSegment(S0, 1);

  EXPECT_TRUE(List2::moveForward(C.PtrA, S1));
  EXPECT_EQ(C.PtrA.load(), S1);
  auto [P1, D1] = S1->stateForTesting();
  EXPECT_EQ(P1, 1u);
  EXPECT_EQ(D1, 0u);
  auto [P0, D0] = S0->stateForTesting();
  EXPECT_EQ(P0, 1u) << "PtrB still references segment 0";

  // Moving backwards is a no-op returning success.
  EXPECT_TRUE(List2::moveForward(C.PtrA, S0));
  EXPECT_EQ(C.PtrA.load(), S1);
  (void)D0;
}

TEST(SegmentList, FullyDeadSegmentIsRemovedAndSkipped) {
  Chain C;
  ebr::Guard G;
  Seg2 *S0 = C.PtrA.load();
  Seg2 *S1 = List2::findSegment(S0, 1);
  Seg2 *S2 = List2::findSegment(S0, 2);

  // Move both pointers off segment 1 (it has none to begin with), then kill
  // both its cells.
  EXPECT_TRUE(List2::moveForward(C.PtrA, S2));
  EXPECT_TRUE(List2::moveForward(C.PtrB, S2));
  S1->onCellDead();
  EXPECT_FALSE(S1->isRemoved());
  S1->onCellDead();
  EXPECT_TRUE(S1->isRemoved());

  // Physically unlinked: S0's next skips to S2.
  EXPECT_EQ(S0->next(), S2);
  EXPECT_EQ(S2->prev(), S0);
  EXPECT_TRUE(S1->isRetiredForTesting());

  // findSegment no longer returns it.
  EXPECT_EQ(List2::findSegment(S0, 1), S2);
}

TEST(SegmentList, TailRemovalIsPostponed) {
  Chain C;
  ebr::Guard G;
  Seg2 *S0 = C.PtrA.load();
  Seg2 *S1 = List2::findSegment(S0, 1);
  EXPECT_TRUE(List2::moveForward(C.PtrA, S1));
  EXPECT_TRUE(List2::moveForward(C.PtrB, S1));

  // Kill the tail's... wait, S1 *is* the tail. Kill S1's cells: it becomes
  // logically removed but must stay linked (tail exemption)...
  // First make S0 fully dead while S1 holds the pointers.
  S0->onCellDead();
  S0->onCellDead();
  EXPECT_TRUE(S0->isRemoved());
  EXPECT_TRUE(S0->isRetiredForTesting());
  EXPECT_EQ(S1->prev(), nullptr) << "no alive segment remains on the left";

  // Now build a fresh tail S2 *without* moving the pointers onto it (a
  // freshly appended segment starts with zero pointer references) and kill
  // its cells while it is the tail: logical removal happens, physical
  // removal must be postponed.
  Seg2 *S2 = List2::findSegment(S1, 2);
  EXPECT_EQ(S2->Id, 2u);
  S2->onCellDead();
  S2->onCellDead();
  EXPECT_TRUE(S2->isRemoved());
  EXPECT_FALSE(S2->isRetiredForTesting()) << "tail removal is postponed";

  // Appending a successor completes the postponed removal (findSegment's
  // old-tail check).
  Seg2 *S3 = List2::findSegment(S1, 3);
  EXPECT_EQ(S3->Id, 3u);
  EXPECT_TRUE(S2->isRetiredForTesting());
  EXPECT_EQ(S1->next(), S3) << "S2 unlinked";
}

TEST(SegmentList, RemoveMiddleOfLongRun) {
  // Remove segments 1..8 of a 10-segment chain one by one, in a shuffled
  // order, and check the remaining links stay consistent throughout.
  Chain C;
  ebr::Guard G;
  Seg2 *S0 = C.PtrA.load();
  Seg2 *Last = List2::findSegment(S0, 9);
  EXPECT_TRUE(List2::moveForward(C.PtrA, Last));
  EXPECT_TRUE(List2::moveForward(C.PtrB, Last));

  std::vector<Seg2 *> Middle;
  for (std::uint64_t Id = 1; Id <= 8; ++Id)
    Middle.push_back(List2::findSegment(S0, Id));
  std::uint64_t Order[] = {4, 1, 8, 2, 6, 3, 7, 5};
  for (std::uint64_t Id : Order) {
    Seg2 *S = Middle[Id - 1];
    S->onCellDead();
    S->onCellDead();
    EXPECT_TRUE(S->isRemoved());
    // The chain from S0 must always reach Last through alive segments.
    bool Reached = false;
    for (Seg2 *Cur = S0; Cur; Cur = Cur->next())
      if (Cur == Last)
        Reached = true;
    EXPECT_TRUE(Reached);
  }
  EXPECT_EQ(S0->next(), Last);
  EXPECT_EQ(Last->prev(), S0);
}

TEST(SegmentList, TryIncPointersFailsOnRemoved) {
  Chain C;
  ebr::Guard G;
  Seg2 *S0 = C.PtrA.load();
  Seg2 *S1 = List2::findSegment(S0, 1);
  Seg2 *S2 = List2::findSegment(S0, 2);
  EXPECT_TRUE(List2::moveForward(C.PtrA, S2));
  EXPECT_TRUE(List2::moveForward(C.PtrB, S2));
  EXPECT_TRUE(S1->tryIncPointers());
  S1->onCellDead();
  S1->onCellDead();
  EXPECT_FALSE(S1->isRemoved()) << "our pointer keeps it alive";
  EXPECT_TRUE(S1->decPointers());
  S1->remove();
  EXPECT_FALSE(S1->tryIncPointers());
}

TEST(SegmentList, ConcurrentFindersAgreeOnSegments) {
  Chain C;
  constexpr int Threads = 4;
  constexpr std::uint64_t MaxId = 300;
  std::vector<std::vector<Seg2 *>> Seen(Threads,
                                        std::vector<Seg2 *>(MaxId + 1));
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T) {
    Ts.emplace_back([&, T] {
      ebr::Guard G;
      Seg2 *Start = C.PtrA.load();
      for (std::uint64_t Id = 0; Id <= MaxId; ++Id)
        Seen[T][Id] = List2::findSegment(Start, Id);
    });
  }
  for (auto &T : Ts)
    T.join();
  // Exactly one segment object exists per id.
  for (std::uint64_t Id = 0; Id <= MaxId; ++Id)
    for (int T = 1; T < Threads; ++T)
      ASSERT_EQ(Seen[T][Id], Seen[0][Id]) << "duplicate segment id " << Id;
}

TEST(SegmentList, ConcurrentRemovalStressKeepsChainConsistent) {
  // Threads concurrently kill cells of disjoint segments while two other
  // threads keep traversing; afterwards the chain must contain exactly the
  // never-killed segments.
  Chain C;
  constexpr std::uint64_t Segments = 200;
  std::vector<Seg2 *> All;
  {
    // Collect the segment objects while the head pointer still references
    // segment 0, *then* park both pointers on the tail so the middle can
    // be removed.
    ebr::Guard G;
    Seg2 *First = C.PtrA.load();
    for (std::uint64_t Id = 0; Id < Segments; ++Id)
      All.push_back(List2::findSegment(First, Id));
    Seg2 *Tail = List2::findSegment(First, Segments);
    EXPECT_TRUE(List2::moveForward(C.PtrA, Tail));
    EXPECT_TRUE(List2::moveForward(C.PtrB, Tail));
  }
  ASSERT_EQ(All.size(), Segments);

  constexpr int Killers = 4;
  std::vector<std::thread> Ts;
  for (int K = 0; K < Killers; ++K) {
    Ts.emplace_back([&, K] {
      ebr::Guard G;
      for (std::uint64_t Id = K; Id < Segments; Id += 2 * Killers) {
        All[Id]->onCellDead();
        All[Id]->onCellDead();
      }
    });
  }
  std::atomic<bool> Stop{false};
  std::thread Walker([&] {
    while (!Stop.load()) {
      ebr::Guard G;
      Seg2 *Cur = C.PtrB.load();
      // Walk prev chain; must terminate and only meet valid pointers.
      int Hops = 0;
      while (Cur && Hops++ < 1000)
        Cur = Cur->prev();
    }
  });
  for (auto &T : Ts)
    T.join();
  Stop.store(true);
  Walker.join();

  // Every segment whose cells were both killed must be logically removed
  // and no longer findable.
  ebr::Guard G;
  for (std::uint64_t Id = 0; Id < Segments; ++Id) {
    bool Killed = false;
    for (int K = 0; K < Killers; ++K)
      if (Id >= static_cast<std::uint64_t>(K) &&
          (Id - K) % (2 * Killers) == 0)
        Killed = true;
    if (Killed)
      EXPECT_TRUE(All[Id]->isRemoved()) << Id;
    else
      EXPECT_FALSE(All[Id]->isRemoved()) << Id;
  }
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  // Flush retired segments so leak checkers stay quiet.
  cqs::ebr::drainForTesting();
  return Rc;
}
