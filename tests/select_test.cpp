//===- tests/select_test.cpp - selectReceive over channel v2 --------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// selectReceive (sync/Select.h): first-ready-wins receive over 2..8 v2
/// channels. The load-bearing property is conservation under loser
/// cancellation — a clause that registered at a cell and then lost must
/// leave no element stranded and no element duplicated.
///
//===----------------------------------------------------------------------===//

#include "sync/Select.h"

#include "reclaim/Ebr.h"
#include "support/Rng.h"
#include "sync/ChannelV2.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace cqs;

namespace {

using Chan = BufferedChannelV2<int, /*SegmentSize=*/4>;
using Rdv = RendezvousChannelV2<int, 4>;

TEST(Select, PicksTheOnlyReadyChannel) {
  Chan A(4), B(4);
  (void)B.send(42);
  auto R = selectReceive<int, 4>({&A, &B});
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Index, 1);
  EXPECT_EQ(R->Value, 42);
  EXPECT_EQ(B.tryReceive(), std::nullopt);
}

TEST(Select, BothReadyPicksExactlyOne) {
  Chan A(4), B(4);
  (void)A.send(1);
  (void)B.send(2);
  auto R = selectReceive<int, 4>({&A, &B});
  ASSERT_TRUE(R.has_value());
  // First-registered ready clause wins; the other element stays put.
  EXPECT_EQ(R->Index, 0);
  EXPECT_EQ(R->Value, 1);
  EXPECT_EQ(B.tryReceive(), 2) << "losing channel keeps its element";
  EXPECT_EQ(A.tryReceive(), std::nullopt);
}

TEST(Select, NeitherReadyBlocksUntilOneSends) {
  Rdv A, B;
  std::optional<SelectResult<int>> R;
  std::thread Selector([&] { R = selectReceive<int, 4>({&A, &B}); });
  // Give the selector time to park in both cells, then satisfy one clause.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  auto S = B.send(7);
  Selector.join();
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Index, 1);
  EXPECT_EQ(R->Value, 7);
  EXPECT_EQ(S.blockingGet(), std::make_optional(Unit{}));
  // The losing clause was cancelled: a later send to A must not vanish.
  (void)A.send(9);
  EXPECT_EQ(A.tryReceive(), 9);
}

TEST(Select, LoserCancellationLeavesRendezvousChannelUsable) {
  for (int Round = 0; Round < 100; ++Round) {
    Rdv A, B;
    (void)B.send(Round); // parked sender: select rendezvouses with it
    auto R = selectReceive<int, 4>({&A, &B});
    ASSERT_TRUE(R.has_value());
    EXPECT_EQ(R->Index, 1);
    EXPECT_EQ(R->Value, Round);
    // A's clause parked and was cancelled; A still does clean handoffs.
    auto Recv = A.receive();
    EXPECT_TRUE(A.trySend(5));
    EXPECT_EQ(Recv.blockingGet(), 5);
  }
}

TEST(Select, AllChannelsClosedReturnsNullopt) {
  Chan A(4), B(4), C(4);
  A.close();
  B.close();
  C.close();
  EXPECT_EQ((selectReceive<int, 4>({&A, &B, &C})), std::nullopt);
}

TEST(Select, SkipsClosedChannelsAndTakesTheOpenOne) {
  Chan A(4), B(4);
  A.close();
  (void)B.send(3);
  auto R = selectReceive<int, 4>({&A, &B});
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Index, 1);
  EXPECT_EQ(R->Value, 3);
}

TEST(Select, CloseWhileParkedUnblocksWithNullopt) {
  Chan A(4), B(4);
  std::optional<SelectResult<int>> R = SelectResult<int>{-2, -2};
  std::thread Selector([&] { R = selectReceive<int, 4>({&A, &B}); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  A.close();
  B.close();
  Selector.join(); // the join IS the assertion: close must wake the select
  EXPECT_EQ(R, std::nullopt);
}

TEST(Select, BufferedDrainAfterCloseStillWins) {
  Chan A(4), B(4);
  (void)B.send(11);
  B.close();
  auto R = selectReceive<int, 4>({&A, &B});
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Index, 1);
  EXPECT_EQ(R->Value, 11);
}

TEST(Select, EightChannelsOnlyLastReady) {
  std::vector<Chan *> Chans;
  for (int I = 0; I < 8; ++I)
    Chans.push_back(new Chan(4));
  (void)Chans[7]->send(99);
  auto R = selectReceive<int, 4>(Chans.data(), 8);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Index, 7);
  EXPECT_EQ(R->Value, 99);
  for (auto *C : Chans) {
    EXPECT_EQ(C->tryReceive(), std::nullopt);
    delete C;
  }
}

TEST(Select, RepeatedSelectsDrainInterleavedChannels) {
  Chan A(8), B(8), C(8);
  for (int I = 0; I < 6; ++I) {
    (void)A.send(I * 3 + 0);
    (void)B.send(I * 3 + 1);
    (void)C.send(I * 3 + 2);
  }
  std::vector<std::atomic<int>> Seen(18);
  for (auto &S : Seen)
    S.store(0);
  for (int I = 0; I < 18; ++I) {
    auto R = selectReceive<int, 4>({&A, &B, &C});
    ASSERT_TRUE(R.has_value());
    Seen[R->Value].fetch_add(1);
  }
  for (int V = 0; V < 18; ++V)
    EXPECT_EQ(Seen[V].load(), 1) << "value " << V;
}

// Conservation under concurrency: S sender threads spray distinct values
// over K channels; T selector threads drain via selectReceive. Every value
// is received exactly once and every channel ends empty — loser-cancelled
// clauses never strand or duplicate an element.
class SelectStress : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SelectStress, ConservesAcrossChannelsAndSelectors) {
  const int NumChans = std::get<0>(GetParam());
  const int Capacity = std::get<1>(GetParam());
  constexpr int Senders = 3;
  constexpr int PerSender = 2000;
  constexpr int Total = Senders * PerSender;

  std::vector<Chan *> Chans;
  for (int I = 0; I < NumChans; ++I)
    Chans.push_back(new Chan(Capacity));
  std::vector<std::atomic<int>> Seen(Total);
  for (auto &S : Seen)
    S.store(0);
  std::atomic<int> Received{0};

  std::vector<std::thread> Ts;
  for (int S = 0; S < Senders; ++S) {
    Ts.emplace_back([&, S] {
      SplitMix64 Rng(1000 + S);
      for (int I = 0; I < PerSender; ++I) {
        int V = S * PerSender + I;
        auto &Ch = *Chans[Rng.next() % NumChans];
        (void)Ch.send(V).blockingGet();
      }
    });
  }
  constexpr int Selectors = 3;
  for (int T = 0; T < Selectors; ++T) {
    Ts.emplace_back([&] {
      while (Received.load(std::memory_order_acquire) < Total) {
        auto R = selectReceive<int, 4>(Chans.data(), NumChans);
        if (!R.has_value())
          continue; // raced with the final drain; re-check the count
        Seen[R->Value].fetch_add(1);
        if (Received.fetch_add(1) + 1 == Total)
          for (auto *C : Chans)
            C->close(); // release selectors parked on empty channels
      }
    });
  }
  for (auto &T : Ts)
    T.join();

  for (int V = 0; V < Total; ++V)
    ASSERT_EQ(Seen[V].load(), 1) << "value " << V;
  for (auto *C : Chans) {
    EXPECT_EQ(C->tryReceive(), std::nullopt) << "stranded element";
    delete C;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SelectStress,
                         ::testing::Combine(::testing::Values(2, 4, 8),
                                            ::testing::Values(0, 2)),
                         [](const auto &Info) {
                           return "Ch" +
                                  std::to_string(std::get<0>(Info.param)) +
                                  "_Cap" +
                                  std::to_string(std::get<1>(Info.param));
                         });

// Selects racing plain receives on the same channels: both paths must
// interoperate through the same cells without losing elements.
TEST(Select, MixedWithPlainReceivesConserves) {
  constexpr int Total = 6000;
  Chan A(2), B(2);
  std::vector<std::atomic<int>> Seen(Total);
  for (auto &S : Seen)
    S.store(0);
  std::atomic<int> Received{0};

  std::thread Producer([&] {
    SplitMix64 Rng(7);
    for (int I = 0; I < Total; ++I)
      (void)(Rng.chance(1, 2) ? A : B).send(I).blockingGet();
  });
  std::thread Plain([&] {
    SplitMix64 Rng(8);
    while (Received.load(std::memory_order_acquire) < Total) {
      auto V = (Rng.chance(1, 2) ? A : B).tryReceive();
      if (!V.has_value()) {
        std::this_thread::yield();
        continue;
      }
      Seen[*V].fetch_add(1);
      if (Received.fetch_add(1) + 1 == Total) {
        A.close();
        B.close();
      }
    }
  });
  std::thread Selecting([&] {
    while (Received.load(std::memory_order_acquire) < Total) {
      auto R = selectReceive<int, 4>({&A, &B});
      if (!R.has_value())
        continue;
      Seen[R->Value].fetch_add(1);
      if (Received.fetch_add(1) + 1 == Total) {
        A.close();
        B.close();
      }
    }
  });
  Producer.join();
  Plain.join();
  Selecting.join();
  for (int V = 0; V < Total; ++V)
    ASSERT_EQ(Seen[V].load(), 1) << "value " << V;
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
