//===- tests/striped_rwmutex_test.cpp - striped reader lock ---------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The striped rw mutex's contracts: writer exclusion against readers and
/// writers (counter oracle), reader re-entry after a writer phase, the
/// deadline-bounded variants (including mid-sweep rollback), and a mixed
/// stress where the invariant "writers see no readers, readers see no
/// writer" is checked in every critical section.
///
//===----------------------------------------------------------------------===//

#include "reclaim/Ebr.h"
#include "support/Striping.h"
#include "sync/StripedRwMutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace cqs;

namespace {

using Rw = BasicStripedRwMutex<4>;

TEST(StripedRwMutex, ReadersDontBlockReaders) {
  Rw M(4);
  M.lockShared();
  std::atomic<bool> Ok{false};
  std::thread T([&] {
    // Second reader from another thread (other stripe or same — both must
    // pass while no writer is present).
    if (M.tryLockSharedFor(std::chrono::milliseconds(100))) {
      Ok.store(true, std::memory_order_release);
      M.unlockShared();
    }
  });
  T.join();
  EXPECT_TRUE(Ok.load(std::memory_order_acquire));
  M.unlockShared();
  EXPECT_EQ(M.activeReadersForTesting(), 0);
}

TEST(StripedRwMutex, WriterWaitsForReaderDrain) {
  Rw M(2);
  M.lockShared();
  std::atomic<bool> WriterIn{false};
  std::thread W([&] {
    M.lock();
    WriterIn.store(true, std::memory_order_release);
    M.unlock();
  });
  // The writer must be stuck in the sweep while we hold the stripe.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(WriterIn.load(std::memory_order_acquire))
      << "writer entered while a reader was active";
  M.unlockShared(); // rings the sweep doorbell
  W.join();
  EXPECT_TRUE(WriterIn.load(std::memory_order_acquire));
}

TEST(StripedRwMutex, ReaderWaitsForWriter) {
  Rw M(2);
  M.lock();
  EXPECT_FALSE(M.tryLockSharedFor(std::chrono::milliseconds(5)))
      << "reader slipped past the barrier";
  std::atomic<bool> ReaderIn{false};
  std::thread R([&] {
    M.lockShared();
    ReaderIn.store(true, std::memory_order_release);
    M.unlockShared();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(ReaderIn.load(std::memory_order_acquire));
  M.unlock(); // lifts the barrier, wakes the parked reader
  R.join();
  EXPECT_TRUE(ReaderIn.load(std::memory_order_acquire));
}

TEST(StripedRwMutex, WritersExcludeEachOther) {
  Rw M(2);
  M.lock();
  EXPECT_FALSE(M.tryLockFor(std::chrono::milliseconds(5)));
  M.unlock();
  EXPECT_TRUE(M.tryLockFor(std::chrono::milliseconds(100)));
  M.unlock();
}

TEST(StripedRwMutex, TimedWriterRollbackReleasesReaders) {
  Rw M(2);
  M.lockShared();
  // The writer times out mid-sweep (a reader is pinned); its rollback
  // must lift the barrier so new readers are not stranded.
  EXPECT_FALSE(M.tryLockFor(std::chrono::milliseconds(10)));
  std::atomic<bool> Ok{false};
  std::thread R([&] {
    if (M.tryLockSharedFor(std::chrono::milliseconds(200))) {
      Ok.store(true, std::memory_order_release);
      M.unlockShared();
    }
  });
  R.join();
  EXPECT_TRUE(Ok.load(std::memory_order_acquire))
      << "aborted writer left the barrier up";
  M.unlockShared();
  // And the writer mutex was really released: a fresh writer succeeds.
  EXPECT_TRUE(M.tryLockFor(std::chrono::milliseconds(200)));
  M.unlock();
}

TEST(StripedRwMutex, MixedStressInvariant) {
  constexpr int Readers = 4;
  constexpr int Writers = 2;
  constexpr int Rounds = 500;
  Rw M(4);
  std::atomic<int> ActiveReaders{0};
  std::atomic<int> ActiveWriters{0};
  std::vector<std::thread> Ts;
  for (int I = 0; I < Readers; ++I) {
    Ts.emplace_back([&, I] {
      setThreadStripeSlotForTesting(static_cast<std::uint32_t>(I));
      for (int R = 0; R < Rounds; ++R) {
        M.lockShared();
        ActiveReaders.fetch_add(1, std::memory_order_acq_rel);
        ASSERT_EQ(ActiveWriters.load(std::memory_order_acquire), 0)
            << "reader inside while a writer holds the lock";
        ActiveReaders.fetch_sub(1, std::memory_order_acq_rel);
        M.unlockShared();
      }
    });
  }
  for (int I = 0; I < Writers; ++I) {
    Ts.emplace_back([&] {
      for (int R = 0; R < Rounds; ++R) {
        M.lock();
        int W = ActiveWriters.fetch_add(1, std::memory_order_acq_rel);
        ASSERT_EQ(W, 0) << "two writers inside";
        ASSERT_EQ(ActiveReaders.load(std::memory_order_acquire), 0)
            << "writer entered over active readers";
        ActiveWriters.fetch_sub(1, std::memory_order_acq_rel);
        M.unlock();
      }
    });
  }
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(M.activeReadersForTesting(), 0);
}

TEST(StripedRwMutex, TimedReadersUnderWriterChurn) {
  Rw M(2);
  std::atomic<bool> Stop{false};
  std::thread W([&] {
    while (!Stop.load(std::memory_order_acquire)) {
      M.lock();
      M.unlock();
      std::this_thread::yield();
    }
  });
  int Acquired = 0;
  for (int I = 0; I < 200; ++I) {
    if (M.tryLockSharedFor(std::chrono::milliseconds(50))) {
      ++Acquired;
      M.unlockShared();
    }
  }
  Stop.store(true, std::memory_order_release);
  W.join();
  EXPECT_GT(Acquired, 0) << "readers fully starved by a yielding writer";
  EXPECT_EQ(M.activeReadersForTesting(), 0);
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
