//===- tests/semaphore_test.cpp - semaphore & mutex tests -----------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The specification the Coq proofs establish for the semaphore (Section 5):
/// at most K threads hold permits simultaneously, permits are conserved
/// under cancellation, waiters are granted in FIFO order, and tryAcquire
/// (synchronous mode) never steals or loses a permit.
///
//===----------------------------------------------------------------------===//

#include "sync/Mutex.h"
#include "sync/Semaphore.h"

#include "reclaim/Ebr.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace cqs;

namespace {

using SmallSem = BasicSemaphore</*SegmentSize=*/4>;

TEST(Semaphore, ImmediateUpToPermits) {
  SmallSem S(3);
  for (int I = 0; I < 3; ++I) {
    auto F = S.acquire();
    EXPECT_TRUE(F.isImmediate());
  }
  EXPECT_EQ(S.availablePermits(), 0);
  auto F4 = S.acquire();
  EXPECT_FALSE(F4.isImmediate());
  EXPECT_EQ(F4.status(), FutureStatus::Pending);
  S.release();
  EXPECT_EQ(F4.status(), FutureStatus::Completed);
  S.release();
  S.release();
  S.release();
  EXPECT_EQ(S.availablePermits(), 3);
}

TEST(Semaphore, WaitersGrantedInFifoOrder) {
  SmallSem S(1);
  auto Holder = S.acquire();
  EXPECT_TRUE(Holder.isImmediate());

  std::vector<SmallSem::FutureType> Waiters;
  for (int I = 0; I < 10; ++I)
    Waiters.push_back(S.acquire());

  for (int I = 0; I < 10; ++I) {
    // Before the release, waiter I is the first pending one.
    for (int J = 0; J < 10; ++J)
      EXPECT_EQ(Waiters[J].status(), J < I ? FutureStatus::Completed
                                           : FutureStatus::Pending);
    S.release();
    EXPECT_EQ(Waiters[I].status(), FutureStatus::Completed)
        << "release must wake the longest waiting acquire";
  }
  S.release();
  EXPECT_EQ(S.availablePermits(), 1);
}

TEST(Semaphore, MutualExclusionStress) {
  constexpr int Threads = 8;
  constexpr int OpsPerThread = 2000;
  SmallSem S(1);
  std::atomic<int> InCritical{0};
  std::atomic<int> MaxSeen{0};
  long Counter = 0; // unsynchronized on purpose; the semaphore protects it

  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T) {
    Ts.emplace_back([&] {
      for (int I = 0; I < OpsPerThread; ++I) {
        auto F = S.acquire();
        ASSERT_TRUE(F.blockingGet().has_value());
        int Now = InCritical.fetch_add(1) + 1;
        int Max = MaxSeen.load();
        while (Now > Max && !MaxSeen.compare_exchange_weak(Max, Now)) {
        }
        ++Counter;
        InCritical.fetch_sub(1);
        S.release();
      }
    });
  }
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(MaxSeen.load(), 1) << "two threads were in the critical section";
  EXPECT_EQ(Counter, static_cast<long>(Threads) * OpsPerThread);
  EXPECT_EQ(S.availablePermits(), 1);
}

TEST(Semaphore, AtMostKHoldersStress) {
  constexpr int Threads = 8;
  constexpr int K = 3;
  constexpr int OpsPerThread = 1000;
  SmallSem S(K);
  std::atomic<int> InCritical{0};
  std::atomic<int> MaxSeen{0};

  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T) {
    Ts.emplace_back([&] {
      for (int I = 0; I < OpsPerThread; ++I) {
        auto F = S.acquire();
        ASSERT_TRUE(F.blockingGet().has_value());
        int Now = InCritical.fetch_add(1) + 1;
        int Max = MaxSeen.load();
        while (Now > Max && !MaxSeen.compare_exchange_weak(Max, Now)) {
        }
        InCritical.fetch_sub(1);
        S.release();
      }
    });
  }
  for (auto &T : Ts)
    T.join();
  EXPECT_LE(MaxSeen.load(), K);
  EXPECT_GE(MaxSeen.load(), 1);
  EXPECT_EQ(S.availablePermits(), K);
}

TEST(Semaphore, CancelWaitingAcquireReturnsReservation) {
  SmallSem S(1);
  auto Holder = S.acquire();
  auto Waiter = S.acquire();
  EXPECT_EQ(Waiter.status(), FutureStatus::Pending);
  EXPECT_TRUE(Waiter.cancel());
  // The cancelled acquire gave its reservation back: a release must make
  // the semaphore fully available again, not wake a ghost.
  S.release();
  EXPECT_EQ(S.availablePermits(), 1);
  auto Again = S.acquire();
  EXPECT_TRUE(Again.isImmediate());
  S.release();
}

TEST(Semaphore, CancelledWaiterIsSkippedOnRelease) {
  SmallSem S(1);
  auto Holder = S.acquire();
  auto W1 = S.acquire();
  auto W2 = S.acquire();
  EXPECT_TRUE(W1.cancel());
  S.release();
  EXPECT_EQ(W2.status(), FutureStatus::Completed)
      << "release must skip the cancelled waiter and wake the next one";
  S.release();
  EXPECT_EQ(S.availablePermits(), 1);
}

TEST(Semaphore, CancelRaceConservesPermits) {
  // The readers-writer-style race of Section 3.1/3.2: a waiter cancels
  // while a release is in flight. Whatever happens, permits are conserved.
  for (int Round = 0; Round < 400; ++Round) {
    SmallSem S(1);
    auto Holder = S.acquire();
    auto Waiter = S.acquire();

    std::thread A([&] { S.release(); });
    std::thread B([&] { (void)Waiter.cancel(); });
    A.join();
    B.join();

    if (Waiter.status() == FutureStatus::Completed) {
      // Waiter got the permit; it must give it back.
      S.release();
    }
    EXPECT_EQ(S.availablePermits(), 1);
    auto Check = S.acquire();
    EXPECT_TRUE(Check.isImmediate()) << "permit lost or duplicated";
    S.release();
  }
}

TEST(Semaphore, RandomCancellationStressConservesPermits) {
  constexpr int Threads = 6;
  constexpr int OpsPerThread = 800;
  constexpr int K = 2;
  SmallSem S(K);
  std::atomic<int> Held{0};

  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T) {
    Ts.emplace_back([&, T] {
      SplitMix64 Rng(1000 + T);
      for (int I = 0; I < OpsPerThread; ++I) {
        auto F = S.acquire();
        if (!F.isImmediate() && Rng.chance(1, 2)) {
          // Try to abort the waiting acquire.
          if (F.cancel())
            continue; // successfully aborted: nothing to release
        }
        ASSERT_TRUE(F.blockingGet().has_value());
        int Now = Held.fetch_add(1) + 1;
        ASSERT_LE(Now, K);
        Held.fetch_sub(1);
        S.release();
      }
    });
  }
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(S.availablePermits(), K) << "cancellation leaked a permit";
}

TEST(SemaphoreSync, TryAcquireBasics) {
  SmallSem S(2, ResumptionMode::Sync);
  EXPECT_TRUE(S.tryAcquire());
  EXPECT_TRUE(S.tryAcquire());
  EXPECT_FALSE(S.tryAcquire());
  S.release();
  EXPECT_TRUE(S.tryAcquire());
  S.release();
  S.release();
}

TEST(SemaphoreSync, AcquireReleaseWorkInSyncMode) {
  SmallSem S(1, ResumptionMode::Sync);
  constexpr int Threads = 4;
  constexpr int Ops = 1000;
  std::atomic<int> InCritical{0};
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T) {
    Ts.emplace_back([&] {
      for (int I = 0; I < Ops; ++I) {
        auto F = S.acquire();
        ASSERT_TRUE(F.blockingGet().has_value());
        ASSERT_EQ(InCritical.fetch_add(1), 0);
        InCritical.fetch_sub(1);
        S.release();
      }
    });
  }
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(S.availablePermits(), 1);
}

TEST(SemaphoreSync, TryAcquireNeverLosesPermits) {
  // Regression for the Figure 9 bug: with asynchronous resumption a permit
  // can sit in a CQS cell where tryAcquire cannot see it; the synchronous
  // mode rendezvous prevents that. Stress acquire/release against
  // tryAcquire and verify full recovery of permits.
  SmallSem S(1, ResumptionMode::Sync);
  std::atomic<bool> Stop{false};
  std::atomic<long> TrySuccesses{0};

  std::vector<std::thread> Ts;
  for (int T = 0; T < 2; ++T) {
    Ts.emplace_back([&] {
      for (int I = 0; I < 2000; ++I) {
        auto F = S.acquire();
        ASSERT_TRUE(F.blockingGet().has_value());
        S.release();
      }
    });
  }
  std::thread Trier([&] {
    while (!Stop.load()) {
      if (S.tryAcquire()) {
        TrySuccesses.fetch_add(1);
        S.release();
      }
    }
  });
  for (auto &T : Ts)
    T.join();
  Stop.store(true);
  Trier.join();
  EXPECT_EQ(S.availablePermits(), 1) << "a permit was lost or duplicated";
  // On a contended single-core host the trier may rarely win, but the
  // final acquire must succeed immediately:
  EXPECT_TRUE(S.acquire().isImmediate());
  S.release();
}

TEST(Mutex, LockUnlockTryLock) {
  BasicMutex<4> M(ResumptionMode::Sync);
  EXPECT_FALSE(M.isLocked());
  EXPECT_TRUE(M.tryLock());
  EXPECT_TRUE(M.isLocked());
  EXPECT_FALSE(M.tryLock());
  M.unlock();
  auto F = M.lock();
  EXPECT_TRUE(F.isImmediate());
  EXPECT_FALSE(M.tryLock());
  M.unlock();
  EXPECT_FALSE(M.isLocked());
}

TEST(Mutex, HandoffToWaiter) {
  BasicMutex<4> M;
  auto A = M.lock();
  auto B = M.lock();
  EXPECT_EQ(B.status(), FutureStatus::Pending);
  M.unlock();
  EXPECT_EQ(B.status(), FutureStatus::Completed)
      << "unlock transfers the lock to the waiting lock()";
  EXPECT_TRUE(M.isLocked());
  M.unlock();
}

TEST(Mutex, AbortedLockDoesNotHoldTheMutex) {
  BasicMutex<4> M;
  auto A = M.lock();
  auto B = M.lock();
  EXPECT_TRUE(B.cancel());
  M.unlock();
  EXPECT_FALSE(M.isLocked());
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
