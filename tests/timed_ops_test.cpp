//===- tests/timed_ops_test.cpp - deadline-bounded operation tests --------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Functional coverage for the timed variants every primitive gained on top
/// of timedAwait() (future/TimedAwait.h): immediate success, genuine
/// timeout (the reservation is handed back — no leaked permit, element, or
/// lock), zero-timeout polling, and late success when a resumer shows up
/// within the deadline. The cancel-vs-resume *race* itself is covered
/// exhaustively by schedcheck_timed_test and statistically by
/// timed_stress_test; this file pins the deterministic contracts.
///
//===----------------------------------------------------------------------===//

#include "sync/Channel.h"
#include "sync/ChannelV2.h"
#include "sync/CountDownLatch.h"
#include "sync/CyclicBarrierCqs.h"
#include "sync/Mutex.h"
#include "sync/Pool.h"
#include "sync/RwMutex.h"
#include "sync/Semaphore.h"

#include "reclaim/Ebr.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>
#include <vector>

using namespace cqs;
using namespace std::chrono_literals;

namespace {

/// Long enough that a parked waiter always outlives its resumer's sleep on
/// a loaded CI host, short enough to bound a hung test.
constexpr auto Generous = 10s;
/// Short enough to keep genuine-timeout tests fast.
constexpr auto Short = 10ms;

//===----------------------------------------------------------------------===//
// Semaphore
//===----------------------------------------------------------------------===//

TEST(SemaphoreTimed, ImmediateTimeoutAndConservation) {
  for (ResumptionMode RMode :
       {ResumptionMode::Async, ResumptionMode::Sync}) {
    Semaphore S(2, RMode);
    // Permits available: even a zero timeout succeeds (immediate future).
    EXPECT_TRUE(S.tryAcquireFor(0ns));
    EXPECT_TRUE(S.tryAcquireFor(Short));
    // Exhausted: a short deadline elapses and the reservation goes back.
    EXPECT_FALSE(S.tryAcquireFor(Short));
    EXPECT_FALSE(S.tryAcquireFor(0ns));
    S.release();
    S.release();
    EXPECT_EQ(S.availablePermits(), 2) << "timed-out acquire leaked";
  }
}

TEST(SemaphoreTimed, WaiterSucceedsWhenReleasedInTime) {
  for (ResumptionMode RMode :
       {ResumptionMode::Async, ResumptionMode::Sync}) {
    Semaphore S(1, RMode);
    ASSERT_TRUE(S.tryAcquireFor(0ns));
    std::thread Releaser([&] {
      std::this_thread::sleep_for(20ms);
      S.release();
    });
    // Parks in the CQS, then the release resumes it well inside the
    // deadline; tryAcquireFor must consume that permit and report true.
    EXPECT_TRUE(S.tryAcquireFor(Generous));
    Releaser.join();
    S.release();
    EXPECT_EQ(S.availablePermits(), 1);
  }
}

TEST(SemaphoreTimed, StatsCountWaitsAndTimeouts) {
  const TimedWaitStats &TS = timedWaitStats();
  std::uint64_t Waits0 = TS.Waits.load(std::memory_order_relaxed);
  std::uint64_t Timeouts0 = TS.Timeouts.load(std::memory_order_relaxed);
  Semaphore S(1);
  ASSERT_TRUE(S.tryAcquireFor(0ns)); // immediate: no timed wait recorded
  EXPECT_FALSE(S.tryAcquireFor(1ms));
  EXPECT_GE(TS.Waits.load(std::memory_order_relaxed), Waits0 + 1);
  EXPECT_GE(TS.Timeouts.load(std::memory_order_relaxed), Timeouts0 + 1);
  // The process-wide counters surface through every stats snapshot.
  CqsStatsSnapshot Snap = CqsStats::processSnapshot();
  EXPECT_GE(Snap.TimedWaits, Waits0 + 1);
  EXPECT_GE(Snap.TimedTimeouts, Timeouts0 + 1);
}

//===----------------------------------------------------------------------===//
// Mutex
//===----------------------------------------------------------------------===//

TEST(MutexTimed, TryLockForTimesOutAndRecovers) {
  Mutex M;
  ASSERT_TRUE(M.tryLockFor(0ns));
  std::atomic<bool> TimedOut{false};
  std::thread T([&] { TimedOut.store(M.tryLockFor(Short) ? false : true); });
  T.join();
  EXPECT_TRUE(TimedOut.load());
  EXPECT_TRUE(M.isLocked()) << "loser's timeout must not unlock the owner";
  M.unlock();
  EXPECT_TRUE(M.tryLockFor(0ns));
  M.unlock();
  EXPECT_FALSE(M.isLocked());
}

//===----------------------------------------------------------------------===//
// RwMutex
//===----------------------------------------------------------------------===//

TEST(RwMutexTimed, SharedAndExclusiveDeadlines) {
  RwMutex Rw;
  ASSERT_TRUE(Rw.tryLockSharedFor(0ns));
  // Readers share: a second timed shared lock is immediate.
  ASSERT_TRUE(Rw.tryLockSharedFor(0ns));
  Rw.readUnlock();
  // A writer cannot get in while a reader holds the lock.
  EXPECT_FALSE(Rw.tryLockFor(Short));
  Rw.readUnlock();
  EXPECT_TRUE(Rw.tryLockFor(Short));
  // The held write lock shuts out timed readers.
  EXPECT_FALSE(Rw.tryLockSharedFor(Short));
  Rw.writeUnlock();
  EXPECT_EQ(Rw.activeReadersForTesting(), 0u);
  EXPECT_FALSE(Rw.writerActiveForTesting());
  EXPECT_EQ(Rw.waitingWritersForTesting(), 0u);
  EXPECT_EQ(Rw.waitingReadersForTesting(), 0u);
}

TEST(RwMutexTimed, TimedOutWriterReleasesWaitingReaders) {
  // The Section 3.1 scenario with the writer's abort caused by a deadline:
  // R1 holds the lock, a writer waits with a short timeout, R2 queues
  // behind the writer with a generous one. The writer's timeout must admit
  // R2 immediately — long before R1 lets go.
  RwMutex Rw;
  ASSERT_TRUE(Rw.tryLockSharedFor(0ns)); // R1
  std::atomic<bool> WriterDone{false};
  std::thread Writer([&] {
    EXPECT_FALSE(Rw.tryLockFor(50ms));
    WriterDone.store(true);
  });
  // Give the writer time to register before queueing the reader.
  std::this_thread::sleep_for(10ms);
  std::thread R2([&] {
    EXPECT_TRUE(Rw.tryLockSharedFor(Generous));
    Rw.readUnlock();
  });
  Writer.join();
  R2.join();
  EXPECT_TRUE(WriterDone.load());
  Rw.readUnlock(); // R1
  EXPECT_EQ(Rw.activeReadersForTesting(), 0u);
  EXPECT_EQ(Rw.waitingReadersForTesting(), 0u);
  EXPECT_EQ(Rw.waitingWritersForTesting(), 0u);
  EXPECT_FALSE(Rw.writerActiveForTesting());
}

//===----------------------------------------------------------------------===//
// CountDownLatch
//===----------------------------------------------------------------------===//

TEST(LatchTimed, AwaitForTimesOutThenOpens) {
  CountDownLatch L(1);
  EXPECT_FALSE(L.awaitFor(0ns));
  EXPECT_FALSE(L.awaitFor(Short));
  std::thread Waiter([&] { EXPECT_TRUE(L.awaitFor(Generous)); });
  std::this_thread::sleep_for(20ms);
  L.countDown();
  Waiter.join();
  // Open latch: awaitFor is immediate regardless of the deadline.
  EXPECT_TRUE(L.awaitFor(0ns));
  EXPECT_EQ(L.count(), 0);
}

//===----------------------------------------------------------------------===//
// Pool
//===----------------------------------------------------------------------===//

TEST(PoolTimed, RetrieveForTimesOutAndDelivers) {
  QueueBlockingPool<int> P;
  EXPECT_EQ(P.retrieveFor(Short), std::nullopt);
  EXPECT_EQ(P.retrieveFor(0ns), std::nullopt);
  P.put(42);
  EXPECT_EQ(P.retrieveFor(0ns), std::optional<int>(42));
  std::thread Taker([&] { EXPECT_EQ(P.retrieveFor(Generous), 7); });
  std::this_thread::sleep_for(20ms);
  P.put(7);
  Taker.join();
  EXPECT_EQ(P.sizeForTesting(), 0) << "timed takes must conserve elements";
}

//===----------------------------------------------------------------------===//
// Channel
//===----------------------------------------------------------------------===//

TEST(ChannelTimed, ReceiveForTimesOutAndDelivers) {
  BufferedChannel<int> Ch(2);
  EXPECT_EQ(Ch.receiveFor(Short), std::nullopt);
  EXPECT_EQ(Ch.receiveFor(0ns), std::nullopt);
  ASSERT_TRUE(Ch.trySend(5));
  EXPECT_EQ(Ch.receiveFor(0ns), std::optional<int>(5));
  std::thread Rx([&] { EXPECT_EQ(Ch.receiveFor(Generous), 6); });
  std::this_thread::sleep_for(20ms);
  ASSERT_TRUE(Ch.trySend(6));
  Rx.join();
  EXPECT_EQ(Ch.balanceForTesting(), 0);
}

TEST(ChannelTimed, SendForNeverCommitsOnTimeout) {
  BufferedChannel<int> Ch(1);
  ASSERT_TRUE(Ch.sendFor(1, 0ns)); // room: behaves like trySend
  EXPECT_FALSE(Ch.sendFor(2, Short)) << "buffer full, no receiver";
  EXPECT_FALSE(Ch.sendFor(2, 0ns));
  // The no-commit contract: the timed-out element is NOT in the channel.
  EXPECT_EQ(Ch.tryReceive(), std::optional<int>(1));
  EXPECT_EQ(Ch.tryReceive(), std::nullopt)
      << "timed-out sendFor left its element behind";
  EXPECT_EQ(Ch.balanceForTesting(), 0);
}

TEST(ChannelTimed, SendForLandsWhenSlotFrees) {
  BufferedChannel<int> Ch(1);
  ASSERT_TRUE(Ch.sendFor(1, 0ns));
  std::thread Rx([&] {
    std::this_thread::sleep_for(20ms);
    // Draining the buffer rings the slot-free doorbell for the parked
    // timed sender.
    EXPECT_EQ(Ch.receiveFor(Generous), std::optional<int>(1));
  });
  EXPECT_TRUE(Ch.sendFor(2, Generous));
  Rx.join();
  EXPECT_EQ(Ch.tryReceive(), std::optional<int>(2));
  EXPECT_EQ(Ch.balanceForTesting(), 0);
}

TEST(ChannelTimed, RendezvousSendForAndReceiveFor) {
  RendezvousChannel<int> Ch;
  // No partner: both directions time out, and the failed send left
  // nothing a later receiver could see.
  EXPECT_FALSE(Ch.sendFor(9, Short));
  EXPECT_EQ(Ch.tryReceive(), std::nullopt);
  EXPECT_EQ(Ch.receiveFor(Short), std::nullopt);
  // A waiting receiver is the "slot" a rendezvous sendFor needs.
  std::thread Rx([&] { EXPECT_EQ(Ch.receiveFor(Generous), 7); });
  std::this_thread::sleep_for(20ms);
  EXPECT_TRUE(Ch.sendFor(7, Generous));
  Rx.join();
  // And a sender arriving first is met by a timed receive.
  std::thread Tx([&] { EXPECT_TRUE(Ch.sendFor(8, Generous)); });
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(Ch.receiveFor(Generous), std::optional<int>(8));
  Tx.join();
  EXPECT_EQ(Ch.balanceForTesting(), 0);
}

//===----------------------------------------------------------------------===//
// Channel v2 (single-array)
//===----------------------------------------------------------------------===//

TEST(ChannelV2Timed, ReceiveForTimesOutAndDelivers) {
  BufferedChannelV2<int> Ch(2);
  EXPECT_EQ(Ch.receiveFor(Short), std::nullopt);
  EXPECT_EQ(Ch.receiveFor(0ns), std::nullopt);
  ASSERT_TRUE(Ch.trySend(5));
  EXPECT_EQ(Ch.receiveFor(0ns), std::optional<int>(5));
  std::thread Rx([&] { EXPECT_EQ(Ch.receiveFor(Generous), 6); });
  std::this_thread::sleep_for(20ms);
  ASSERT_TRUE(Ch.trySend(6));
  Rx.join();
  EXPECT_EQ(Ch.tryReceive(), std::nullopt);
}

TEST(ChannelV2Timed, SendForNeverCommitsOnTimeout) {
  BufferedChannelV2<int> Ch(1);
  ASSERT_TRUE(Ch.sendFor(1, 0ns)); // room: behaves like trySend
  EXPECT_FALSE(Ch.sendFor(2, Short)) << "buffer full, no receiver";
  EXPECT_FALSE(Ch.sendFor(2, 0ns));
  // The no-commit contract: in v2 the element travels in the waiter node,
  // so a timed-out send withdraws it with a single cell transition.
  EXPECT_EQ(Ch.tryReceive(), std::optional<int>(1));
  EXPECT_EQ(Ch.tryReceive(), std::nullopt)
      << "timed-out sendFor left its element behind";
}

TEST(ChannelV2Timed, SendForLandsWhenSlotFrees) {
  BufferedChannelV2<int> Ch(1);
  ASSERT_TRUE(Ch.sendFor(1, 0ns));
  std::thread Rx([&] {
    std::this_thread::sleep_for(20ms);
    EXPECT_EQ(Ch.receiveFor(Generous), std::optional<int>(1));
  });
  EXPECT_TRUE(Ch.sendFor(2, Generous));
  Rx.join();
  EXPECT_EQ(Ch.tryReceive(), std::optional<int>(2));
  EXPECT_EQ(Ch.tryReceive(), std::nullopt);
}

TEST(ChannelV2Timed, RendezvousSendForAndReceiveFor) {
  RendezvousChannelV2<int> Ch;
  EXPECT_FALSE(Ch.sendFor(9, Short));
  EXPECT_EQ(Ch.tryReceive(), std::nullopt);
  EXPECT_EQ(Ch.receiveFor(Short), std::nullopt);
  std::thread Rx([&] { EXPECT_EQ(Ch.receiveFor(Generous), 7); });
  std::this_thread::sleep_for(20ms);
  EXPECT_TRUE(Ch.sendFor(7, Generous));
  Rx.join();
  std::thread Tx([&] { EXPECT_TRUE(Ch.sendFor(8, Generous)); });
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(Ch.receiveFor(Generous), std::optional<int>(8));
  Tx.join();
  EXPECT_EQ(Ch.tryReceive(), std::nullopt);
}

TEST(ChannelV2Timed, SendForAgainstClosedChannelFailsClean) {
  BufferedChannelV2<int> Ch(1);
  ASSERT_TRUE(Ch.sendFor(1, 0ns));
  Ch.close();
  EXPECT_FALSE(Ch.sendFor(2, Short)) << "closed channel refuses timed sends";
  EXPECT_FALSE(Ch.sendFor(2, 0ns));
  EXPECT_EQ(Ch.tryReceive(), std::optional<int>(1));
  EXPECT_EQ(Ch.tryReceive(), std::nullopt)
      << "refused sendFor left its element behind";
}

TEST(ChannelV2Timed, SendForRacingCloseLeavesNoElementBehind) {
  // The satellite contract: sendFor timing out (or being aborted) against
  // a channel that closes mid-wait must leave nothing in the cells — the
  // drain after both settle sees exactly the accepted elements.
  for (int Round = 0; Round < 300; ++Round) {
    BufferedChannelV2<int, 4> Ch(1);
    ASSERT_TRUE(Ch.sendFor(0, 0ns)); // fill the buffer
    std::atomic<int> Accepted{1};
    std::thread Tx([&] {
      for (int I = 1; I <= 3; ++I)
        if (Ch.sendFor(I, std::chrono::microseconds(50 * Round % 200)))
          Accepted.fetch_add(1);
    });
    std::thread Closer([&] { Ch.close(); });
    Tx.join();
    Closer.join();
    int Drained = 0;
    while (Ch.tryReceive().has_value())
      ++Drained;
    ASSERT_EQ(Drained, Accepted.load())
        << "sendFor vs close strand/lost an element in round " << Round;
  }
}

TEST(ChannelV2Timed, ReceiveForRacingCloseNeverHangs) {
  for (int Round = 0; Round < 100; ++Round) {
    RendezvousChannelV2<int> Ch;
    std::thread Rx([&] { EXPECT_EQ(Ch.receiveFor(Generous), std::nullopt); });
    Ch.close();
    Rx.join(); // close must release the timed receiver well before Generous
  }
}

//===----------------------------------------------------------------------===//
// CyclicBarrier
//===----------------------------------------------------------------------===//

TEST(CyclicBarrierTimed, TimeoutStandsAndGenerationStillCompletes) {
  BasicCyclicBarrier<4> B(2);
  // Nobody else arrives: we time out, but our arrival STANDS (documented
  // non-breaking semantics — see sync/CyclicBarrierCqs.h).
  EXPECT_FALSE(B.awaitFor(Short));
  // The standing arrival means one more party completes the generation —
  // this arriveAndWait is arrival #2 and returns without blocking forever.
  std::thread Partner([&] { B.arriveAndWait(); });
  Partner.join();
  // Fresh generation: two timed waiters meet and both report success.
  std::thread A([&] { EXPECT_TRUE(B.awaitFor(Generous)); });
  std::thread C([&] { EXPECT_TRUE(B.awaitFor(Generous)); });
  A.join();
  C.join();
}

TEST(CyclicBarrierTimed, MixedTimedAndUntimedPhases) {
  BasicCyclicBarrier<4> B(2);
  constexpr int Phases = 200;
  std::atomic<int> Successes{0};
  auto Body = [&] {
    for (int I = 0; I < Phases; ++I) {
      if (B.awaitFor(Generous))
        Successes.fetch_add(1);
    }
  };
  std::thread A(Body), C(Body);
  A.join();
  C.join();
  EXPECT_EQ(Successes.load(), 2 * Phases)
      << "generous deadlines must never expire when both parties show up";
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
