//===- tests/property_test.cpp - parameterized invariant sweeps -----------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Property-style sweeps over the CQS configuration space:
///
///  - every segment size must preserve FIFO order, value conservation and
///    cancellation bookkeeping (typed suite over SEGM_SIZE);
///  - every (resumption mode x permits x threads) semaphore configuration
///    must conserve permits under randomized cancellation (parameterized
///    suite);
///  - every (parties x cancel pattern) barrier configuration must release
///    all live waiters;
///  - randomized latch countDown/await/cancel interleavings must never
///    strand a live waiter.
///
//===----------------------------------------------------------------------===//

#include "core/Cqs.h"
#include "reclaim/Ebr.h"
#include "support/Rng.h"
#include "sync/Barrier.h"
#include "sync/CountDownLatch.h"
#include "sync/Semaphore.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

using namespace cqs;

namespace {

// --------------------------------------------------------------------------
// Typed sweep over segment sizes.
// --------------------------------------------------------------------------

template <typename CqsT> class SegmentSizeSweep : public ::testing::Test {};

using SegmentSizes =
    ::testing::Types<Cqs<int, ValueTraits<int>, 1>,
                     Cqs<int, ValueTraits<int>, 2>,
                     Cqs<int, ValueTraits<int>, 3>,
                     Cqs<int, ValueTraits<int>, 16>,
                     Cqs<int, ValueTraits<int>, 64>>;

TYPED_TEST_SUITE(SegmentSizeSweep, SegmentSizes);

TYPED_TEST(SegmentSizeSweep, FifoOrderAcrossManySegments) {
  TypeParam Q;
  std::vector<typename TypeParam::FutureType> Fs;
  for (int I = 0; I < 200; ++I)
    Fs.push_back(Q.suspend());
  for (int I = 0; I < 200; ++I)
    ASSERT_TRUE(Q.resume(I));
  for (int I = 0; I < 200; ++I)
    ASSERT_EQ(Fs[I].tryGet(), I);
}

TYPED_TEST(SegmentSizeSweep, EliminationAcrossManySegments) {
  TypeParam Q;
  for (int I = 0; I < 200; ++I) {
    ASSERT_TRUE(Q.resume(I));
    auto F = Q.suspend();
    ASSERT_TRUE(F.isImmediate());
    ASSERT_EQ(F.tryGet(), I);
  }
}

TYPED_TEST(SegmentSizeSweep, SimpleCancellationBalance) {
  TypeParam Q(CancellationMode::Simple, ResumptionMode::Async);
  std::vector<typename TypeParam::FutureType> Fs;
  for (int I = 0; I < 100; ++I)
    Fs.push_back(Q.suspend());
  // Cancel a mixed pattern: every cell of some segments, parts of others.
  // Live waiters sit at indices I % 3 == 1; the last one is 97, so the
  // resumes visit cells 0..97 and must fail exactly on the cancelled cells
  // in that prefix (cancelled cells *behind* the last live waiter are
  // never reached).
  int Cancelled = 0, CancelledBeforeLastLive = 0;
  const int LastLive = 97;
  for (int I = 0; I < 100; ++I)
    if (I % 3 != 1) {
      ASSERT_TRUE(Fs[I].cancel());
      ++Cancelled;
      if (I < LastLive)
        ++CancelledBeforeLastLive;
    }
  int Failed = 0, Succeeded = 0, Next = 0;
  while (Succeeded < 100 - Cancelled) {
    if (Q.resume(1000 + Next)) {
      ++Succeeded;
      ++Next;
    } else {
      ++Failed;
    }
  }
  ASSERT_EQ(Failed, CancelledBeforeLastLive);
  Next = 0;
  for (int I = 0; I < 100; ++I) {
    if (I % 3 == 1) {
      ASSERT_EQ(Fs[I].tryGet(), 1000 + Next++);
    }
  }
}

template <typename CqsT>
struct SkipAllHandler : CqsT::SmartCancellationHandler {
  bool onCancellation() override { return true; }
  void completeRefusedResume(int) override {}
};

TYPED_TEST(SegmentSizeSweep, SmartCancellationSkipsArbitraryPatterns) {
  SkipAllHandler<TypeParam> H;
  TypeParam Q(CancellationMode::Smart, ResumptionMode::Async, &H);
  std::vector<typename TypeParam::FutureType> Fs;
  for (int I = 0; I < 120; ++I)
    Fs.push_back(Q.suspend());
  SplitMix64 Rng(2024);
  std::vector<int> Alive;
  for (int I = 0; I < 120; ++I) {
    if (Rng.chance(2, 3))
      ASSERT_TRUE(Fs[I].cancel());
    else
      Alive.push_back(I);
  }
  for (std::size_t K = 0; K < Alive.size(); ++K)
    ASSERT_TRUE(Q.resume(static_cast<int>(K)));
  for (std::size_t K = 0; K < Alive.size(); ++K)
    ASSERT_EQ(Fs[Alive[K]].tryGet(), static_cast<int>(K))
        << "live waiter " << Alive[K] << " got the wrong rank";
}

TYPED_TEST(SegmentSizeSweep, ConcurrentTransferConservesValues) {
  TypeParam Q;
  constexpr int N = 4000;
  std::vector<std::atomic<int>> Seen(N);
  for (auto &S : Seen)
    S.store(0);
  std::thread Producer([&] {
    for (int I = 0; I < N; ++I)
      ASSERT_TRUE(Q.resume(I));
  });
  std::thread Consumer([&] {
    for (int I = 0; I < N; ++I) {
      auto F = Q.suspend();
      auto V = F.blockingGet();
      ASSERT_TRUE(V.has_value());
      Seen[*V].fetch_add(1);
    }
  });
  Producer.join();
  Consumer.join();
  for (int I = 0; I < N; ++I)
    ASSERT_EQ(Seen[I].load(), 1);
}

// --------------------------------------------------------------------------
// Parameterized semaphore sweep: (resumption mode, permits, threads).
// --------------------------------------------------------------------------

class SemaphoreSweep
    : public ::testing::TestWithParam<std::tuple<ResumptionMode, int, int>> {
};

TEST_P(SemaphoreSweep, PermitsConservedUnderRandomCancellation) {
  const auto [RMode, Permits, Threads] = GetParam();
  BasicSemaphore<4> S(Permits, RMode);
  std::atomic<int> Held{0};

  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T) {
    Ts.emplace_back([&, T] {
      SplitMix64 Rng(10 * T + 1);
      for (int I = 0; I < 600; ++I) {
        auto F = S.acquire();
        if (!F.isImmediate() && Rng.chance(1, 3) && F.cancel())
          continue;
        ASSERT_TRUE(F.blockingGet().has_value());
        int Now = Held.fetch_add(1) + 1;
        ASSERT_LE(Now, Permits) << "permit invariant violated";
        Held.fetch_sub(1);
        S.release();
      }
    });
  }
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(S.availablePermits(), Permits);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SemaphoreSweep,
    ::testing::Combine(::testing::Values(ResumptionMode::Async,
                                         ResumptionMode::Sync),
                       ::testing::Values(1, 2, 5),
                       ::testing::Values(2, 4, 8)),
    [](const auto &Info) {
      ResumptionMode RMode = std::get<0>(Info.param);
      int Permits = std::get<1>(Info.param);
      int Threads = std::get<2>(Info.param);
      return std::string(RMode == ResumptionMode::Async ? "Async" : "Sync") +
             "_K" + std::to_string(Permits) + "_T" + std::to_string(Threads);
    });

// --------------------------------------------------------------------------
// Parameterized barrier sweep: (parties, cancellation stride).
// --------------------------------------------------------------------------

class BarrierSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BarrierSweep, LiveWaitersAlwaysReleased) {
  const auto [Parties, CancelStride] = GetParam();
  BasicBarrier<4> B(Parties);
  std::vector<BasicBarrier<4>::FutureType> Fs;
  for (int I = 0; I < Parties - 1; ++I)
    Fs.push_back(B.arrive());
  for (int I = 0; I < Parties - 1; ++I) {
    if (CancelStride > 0 && I % CancelStride == 0) {
      ASSERT_TRUE(Fs[I].cancel());
    }
  }
  auto Last = B.arrive();
  ASSERT_TRUE(Last.isImmediate());
  for (int I = 0; I < Parties - 1; ++I) {
    if (CancelStride > 0 && I % CancelStride == 0)
      ASSERT_EQ(Fs[I].status(), FutureStatus::Cancelled);
    else
      ASSERT_EQ(Fs[I].status(), FutureStatus::Completed);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BarrierSweep,
                         ::testing::Combine(::testing::Values(2, 3, 8, 17),
                                            ::testing::Values(0, 1, 2, 5)),
                         [](const auto &Info) {
                           return "P" + std::to_string(std::get<0>(Info.param)) +
                                  "_C" + std::to_string(std::get<1>(Info.param));
                         });

// --------------------------------------------------------------------------
// Randomized latch interleavings.
// --------------------------------------------------------------------------

class LatchSweep : public ::testing::TestWithParam<int> {};

TEST_P(LatchSweep, RandomInterleavingNeverStrandsLiveWaiters) {
  const int Seed = GetParam();
  SplitMix64 Rng(Seed);
  BasicCountDownLatch<4> L(8);
  std::atomic<int> LiveWaiters{0};

  std::thread Counters([&] {
    for (int I = 0; I < 8; ++I) {
      if (Rng.chance(1, 2))
        std::this_thread::yield();
      L.countDown();
    }
  });
  std::vector<std::thread> Waiters;
  for (int W = 0; W < 4; ++W) {
    Waiters.emplace_back([&, W] {
      SplitMix64 R(Seed * 131 + W);
      for (int I = 0; I < 50; ++I) {
        auto F = L.await();
        if (!F.isImmediate() && R.chance(1, 3) && F.cancel())
          continue;
        LiveWaiters.fetch_add(1);
        ASSERT_TRUE(F.blockingGet().has_value());
      }
    });
  }
  Counters.join();
  for (auto &T : Waiters)
    T.join();
  EXPECT_EQ(L.count(), 0);
  EXPECT_GT(LiveWaiters.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatchSweep, ::testing::Range(1, 11));

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
