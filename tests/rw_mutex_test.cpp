//===- tests/rw_mutex_test.cpp - readers-writer lock tests ----------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The fair abortable readers-writer lock (the paper's Section 3.1
/// motivating scenario and Section 7 future-work item). Specification:
/// readers never overlap a writer, writers never overlap anything, waiting
/// readers are admitted as a cohort, and — the smart-cancellation payoff —
/// an aborting last writer releases the readers it was blocking
/// immediately.
///
//===----------------------------------------------------------------------===//

#include "sync/RwMutex.h"

#include "reclaim/Ebr.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace cqs;

namespace {

using SmallRw = BasicRwMutex</*SegmentSize=*/4>;

TEST(RwMutex, ReadersShareFreely) {
  SmallRw Rw;
  auto R1 = Rw.readLock();
  auto R2 = Rw.readLock();
  auto R3 = Rw.readLock();
  EXPECT_TRUE(R1.isImmediate());
  EXPECT_TRUE(R2.isImmediate());
  EXPECT_TRUE(R3.isImmediate());
  EXPECT_EQ(Rw.activeReadersForTesting(), 3u);
  Rw.readUnlock();
  Rw.readUnlock();
  Rw.readUnlock();
  EXPECT_EQ(Rw.activeReadersForTesting(), 0u);
}

TEST(RwMutex, WriterExcludesReaders) {
  SmallRw Rw;
  auto W = Rw.writeLock();
  EXPECT_TRUE(W.isImmediate());
  auto R = Rw.readLock();
  EXPECT_EQ(R.status(), FutureStatus::Pending);
  Rw.writeUnlock();
  EXPECT_EQ(R.status(), FutureStatus::Completed);
  Rw.readUnlock();
}

TEST(RwMutex, ReadersExcludeWriter) {
  SmallRw Rw;
  auto R = Rw.readLock();
  auto W = Rw.writeLock();
  EXPECT_EQ(W.status(), FutureStatus::Pending);
  Rw.readUnlock();
  EXPECT_EQ(W.status(), FutureStatus::Completed);
  EXPECT_TRUE(Rw.writerActiveForTesting());
  Rw.writeUnlock();
}

TEST(RwMutex, WaitingWriterBlocksNewReaders) {
  // Fairness: a reader arriving behind a waiting writer must queue, not
  // barge past it.
  SmallRw Rw;
  auto R1 = Rw.readLock();
  auto W = Rw.writeLock();
  auto R2 = Rw.readLock();
  EXPECT_EQ(R2.status(), FutureStatus::Pending)
      << "reader barged past a waiting writer";
  Rw.readUnlock();
  EXPECT_EQ(W.status(), FutureStatus::Completed);
  EXPECT_EQ(R2.status(), FutureStatus::Pending);
  Rw.writeUnlock();
  EXPECT_EQ(R2.status(), FutureStatus::Completed);
  Rw.readUnlock();
}

TEST(RwMutex, WriteUnlockReleasesWholeReaderCohort) {
  SmallRw Rw;
  auto W = Rw.writeLock();
  std::vector<SmallRw::FutureType> Rs;
  for (int I = 0; I < 5; ++I)
    Rs.push_back(Rw.readLock());
  for (auto &R : Rs)
    EXPECT_EQ(R.status(), FutureStatus::Pending);
  Rw.writeUnlock();
  for (auto &R : Rs)
    EXPECT_EQ(R.status(), FutureStatus::Completed);
  EXPECT_EQ(Rw.activeReadersForTesting(), 5u);
  for (int I = 0; I < 5; ++I)
    Rw.readUnlock();
}

TEST(RwMutex, WritersAlternateWithReaderCohorts) {
  // Phase-fairness: W holds; readers and another writer queue; on unlock
  // the reader cohort goes first, then the writer.
  SmallRw Rw;
  auto W1 = Rw.writeLock();
  auto R1 = Rw.readLock();
  auto W2 = Rw.writeLock();
  auto R2 = Rw.readLock();
  Rw.writeUnlock();
  EXPECT_EQ(R1.status(), FutureStatus::Completed);
  EXPECT_EQ(R2.status(), FutureStatus::Completed);
  EXPECT_EQ(W2.status(), FutureStatus::Pending);
  Rw.readUnlock();
  Rw.readUnlock();
  EXPECT_EQ(W2.status(), FutureStatus::Completed);
  Rw.writeUnlock();
}

TEST(RwMutex, Section31Scenario_CancelledWriterWakesReaderImmediately) {
  // The paper's motivating execution: (1) a reader takes the lock, (2) a
  // writer suspends, (3) another reader suspends behind the writer,
  // (4) the writer aborts -> the second reader must wake *immediately*,
  // not at the next unlock.
  SmallRw Rw;
  auto R1 = Rw.readLock();
  EXPECT_TRUE(R1.isImmediate());
  auto W = Rw.writeLock();
  EXPECT_EQ(W.status(), FutureStatus::Pending);
  auto R2 = Rw.readLock();
  EXPECT_EQ(R2.status(), FutureStatus::Pending);

  EXPECT_TRUE(W.cancel());
  EXPECT_EQ(R2.status(), FutureStatus::Completed)
      << "smart cancellation must take effect immediately";
  EXPECT_EQ(Rw.activeReadersForTesting(), 2u);
  Rw.readUnlock();
  Rw.readUnlock();
}

TEST(RwMutex, CancelledNonLastWriterKeepsOrder) {
  SmallRw Rw;
  auto R1 = Rw.readLock();
  auto W1 = Rw.writeLock();
  auto W2 = Rw.writeLock();
  auto R2 = Rw.readLock();
  EXPECT_TRUE(W1.cancel());
  EXPECT_EQ(R2.status(), FutureStatus::Pending) << "W2 still waits";
  Rw.readUnlock();
  EXPECT_EQ(W2.status(), FutureStatus::Completed);
  Rw.writeUnlock();
  EXPECT_EQ(R2.status(), FutureStatus::Completed);
  Rw.readUnlock();
}

TEST(RwMutex, CancelledReaderIsDeregistered) {
  SmallRw Rw;
  auto W = Rw.writeLock();
  auto R1 = Rw.readLock();
  auto R2 = Rw.readLock();
  EXPECT_TRUE(R1.cancel());
  Rw.writeUnlock();
  EXPECT_EQ(R2.status(), FutureStatus::Completed);
  EXPECT_EQ(Rw.activeReadersForTesting(), 1u);
  Rw.readUnlock();
  EXPECT_EQ(Rw.activeReadersForTesting(), 0u);
}

TEST(RwMutex, CancelRaceConservesTheLock) {
  // Race a writer cancellation against the readUnlock that hands it the
  // lock; whatever wins, the lock must end up fully free.
  for (int Round = 0; Round < 400; ++Round) {
    SmallRw Rw;
    auto R = Rw.readLock();
    auto W = Rw.writeLock();
    std::atomic<bool> Cancelled{false};
    std::thread A([&] { Rw.readUnlock(); });
    std::thread B([&] { Cancelled.store(W.cancel()); });
    A.join();
    B.join();
    if (!Cancelled.load()) {
      EXPECT_TRUE(W.blockingGet().has_value());
      Rw.writeUnlock();
    }
    EXPECT_EQ(Rw.activeReadersForTesting(), 0u);
    EXPECT_FALSE(Rw.writerActiveForTesting());
    EXPECT_EQ(Rw.waitingWritersForTesting(), 0u);
    EXPECT_EQ(Rw.waitingReadersForTesting(), 0u);
  }
}

TEST(RwMutex, ExclusionStress) {
  constexpr int Threads = 8;
  constexpr int OpsPerThread = 1500;
  SmallRw Rw;
  std::atomic<int> ActiveReaders{0};
  std::atomic<int> ActiveWriters{0};

  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T) {
    Ts.emplace_back([&, T] {
      SplitMix64 Rng(500 + T);
      for (int I = 0; I < OpsPerThread; ++I) {
        if (Rng.chance(1, 4)) {
          ASSERT_TRUE(Rw.writeLock().blockingGet().has_value());
          ASSERT_EQ(ActiveWriters.fetch_add(1), 0) << "two writers";
          ASSERT_EQ(ActiveReaders.load(), 0) << "writer among readers";
          ActiveWriters.fetch_sub(1);
          Rw.writeUnlock();
        } else {
          ASSERT_TRUE(Rw.readLock().blockingGet().has_value());
          ActiveReaders.fetch_add(1);
          ASSERT_EQ(ActiveWriters.load(), 0) << "reader during writer";
          ActiveReaders.fetch_sub(1);
          Rw.readUnlock();
        }
      }
    });
  }
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Rw.activeReadersForTesting(), 0u);
  EXPECT_FALSE(Rw.writerActiveForTesting());
}

TEST(RwMutex, ExclusionStressWithCancellation) {
  constexpr int Threads = 6;
  constexpr int OpsPerThread = 1200;
  SmallRw Rw;
  std::atomic<int> ActiveWriters{0};

  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T) {
    Ts.emplace_back([&, T] {
      SplitMix64 Rng(900 + T);
      for (int I = 0; I < OpsPerThread; ++I) {
        bool Write = Rng.chance(1, 3);
        auto F = Write ? Rw.writeLock() : Rw.readLock();
        if (!F.isImmediate() && Rng.chance(1, 2) && F.cancel())
          continue; // aborted while waiting
        ASSERT_TRUE(F.blockingGet().has_value());
        if (Write) {
          ASSERT_EQ(ActiveWriters.fetch_add(1), 0);
          ActiveWriters.fetch_sub(1);
          Rw.writeUnlock();
        } else {
          ASSERT_EQ(ActiveWriters.load(), 0);
          Rw.readUnlock();
        }
      }
    });
  }
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Rw.activeReadersForTesting(), 0u);
  EXPECT_FALSE(Rw.writerActiveForTesting());
  EXPECT_EQ(Rw.waitingWritersForTesting(), 0u);
  EXPECT_EQ(Rw.waitingReadersForTesting(), 0u);
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
