//===- tests/combinator_test.cpp - whenAll/whenAny/scope/generator --------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The structured-concurrency layer (DESIGN.md §12): first-ready-wins
/// whenAny with SMART loser cancellation, settle-counting whenAll,
/// CancelScope propagation (including parent->child and timer-armed
/// cancelAfter), the coroutine awaiter forms, and the AsyncGenerator
/// produce/consume protocol over Channel v2. Conservation — no permit or
/// element stranded or duplicated, whatever the combinator reports — is
/// the oracle throughout.
///
//===----------------------------------------------------------------------===//

#include "task/AsyncGenerator.h"
#include "task/Combinators.h"
#include "task/Scope.h"
#include "task/Task.h"
#include "task/TimerQueue.h"

#include "reclaim/Ebr.h"
#include "sync/ChannelV2.h"
#include "sync/Semaphore.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace cqs;
using namespace std::chrono_literals;

namespace {

TEST(WhenAny, ImmediateFutureWinsWithoutBlocking) {
  Semaphore A(1), B(1);
  auto FA = A.acquire(); // immediate
  auto HeldB = B.acquire();
  auto FB = B.acquire(); // pending
  auto R = whenAny(FA, FB);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Index, 0);
  // The loser was withdrawn: B's pending acquire is gone, so release
  // restores the permit instead of granting it to a dead waiter.
  EXPECT_EQ(FB.status(), FutureStatus::Cancelled);
  A.release();
  B.release();
  EXPECT_EQ(A.availablePermits(), 1);
  EXPECT_EQ(B.availablePermits(), 1);
}

TEST(WhenAny, PendingFutureWinsWhenResumed) {
  Semaphore A(1), B(1);
  auto HeldA = A.acquire();
  auto HeldB = B.acquire();
  auto FA = A.acquire();
  auto FB = B.acquire();
  std::thread Releaser([&] {
    std::this_thread::sleep_for(10ms);
    B.release();
  });
  Future<Unit> *Futs[] = {&FA, &FB};
  auto R = whenAny(Futs, 2);
  Releaser.join();
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Index, 1);
  EXPECT_EQ(FA.status(), FutureStatus::Cancelled);
  A.release(); // returns HeldA's permit (FA was withdrawn)
  B.release(); // returns the won permit
  EXPECT_EQ(A.availablePermits(), 1);
  EXPECT_EQ(B.availablePermits(), 1);
}

TEST(WhenAny, AllCancelledByThirdPartyYieldsNullopt) {
  Semaphore A(1);
  auto HeldA = A.acquire();
  auto FA = A.acquire();
  auto FB = A.acquire();
  std::thread Canceller([&] {
    std::this_thread::sleep_for(5ms);
    EXPECT_TRUE(FA.cancel());
    EXPECT_TRUE(FB.cancel());
  });
  Future<Unit> *Futs[] = {&FA, &FB};
  auto R = whenAny(Futs, 2);
  Canceller.join();
  EXPECT_FALSE(R.has_value());
  A.release();
  EXPECT_EQ(A.availablePermits(), 1);
}

TEST(WhenAnyFor, ZeroTimeoutWithdrawsAllPending) {
  Semaphore A(1);
  auto HeldA = A.acquire();
  auto FA = A.acquire();
  auto FB = A.acquire();
  Future<Unit> *Futs[] = {&FA, &FB};
  auto R = whenAnyFor(Futs, 2, 0ns);
  EXPECT_FALSE(R.has_value());
  EXPECT_EQ(FA.status(), FutureStatus::Cancelled);
  EXPECT_EQ(FB.status(), FutureStatus::Cancelled);
  A.release();
  EXPECT_EQ(A.availablePermits(), 1);
}

TEST(WhenAnyFor, CompletionBeforeDeadlineWins) {
  Semaphore A(1);
  auto HeldA = A.acquire();
  auto FA = A.acquire();
  std::thread Releaser([&] {
    std::this_thread::sleep_for(5ms);
    A.release();
  });
  Future<Unit> *Futs[] = {&FA};
  auto R = whenAnyFor(Futs, 1, 10s);
  Releaser.join();
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Index, 0);
  A.release();
  EXPECT_EQ(A.availablePermits(), 1);
}

// The cancel-lost-is-win discipline: under a racing release, a zero-wait
// whenAnyFor must never report "timed out" while owning a permit — a
// failed cancel is promoted to winner and the permit surfaces in the
// result (or as a stray kept by the future). Conservation is the oracle.
TEST(WhenAnyFor, RacingReleaseNeverStrandsAPermit) {
  for (int Round = 0; Round < 300; ++Round) {
    Semaphore A(1);
    auto HeldA = A.acquire();
    auto FA = A.acquire();
    auto FB = A.acquire();
    std::thread Releaser([&] { A.release(); });
    Future<Unit> *Futs[] = {&FA, &FB};
    auto R = whenAnyFor(Futs, 2, 0ns);
    Releaser.join();
    int Owned = 0;
    if (R.has_value())
      ++Owned;
    // A stray: the *other* future completed too (both can complete only
    // if the single released permit went to one — so at most one of
    // winner/stray here).
    for (auto *F : Futs)
      if (R.has_value() ? F != Futs[R->Index] : true)
        if (F->status() == FutureStatus::Completed)
          ++Owned;
    // Balance: Held + winner acquired; the releaser thread already put
    // Held's permit back, so returning what we own restores the count.
    for (int I = 0; I < Owned; ++I)
      A.release();
    ASSERT_EQ(A.availablePermits(), 1) << "round " << Round;
  }
}

TEST(WhenAll, WaitsForEverySettleAndCancelsNothing) {
  Semaphore A(2);
  auto F1 = A.acquire(); // immediate
  auto F2 = A.acquire(); // immediate
  auto F3 = A.acquire(); // pending
  std::thread Releaser([&] {
    std::this_thread::sleep_for(5ms);
    A.release(); // completes F3
  });
  Future<Unit> *Futs[] = {&F1, &F2, &F3};
  int Completed = whenAll(Futs, 3);
  Releaser.join();
  EXPECT_EQ(Completed, 3);
  A.release();
  A.release();
  EXPECT_EQ(A.availablePermits(), 2);
}

TEST(WhenAll, CountsCancelledFuturesAsSettled) {
  Semaphore A(1);
  auto Held = A.acquire();
  auto F1 = A.acquire();
  auto F2 = A.acquire();
  std::thread Side([&] {
    std::this_thread::sleep_for(5ms);
    EXPECT_TRUE(F1.cancel());
    A.release(); // completes F2
  });
  Future<Unit> *Futs[] = {&F1, &F2};
  int Completed = whenAll(Futs, 2);
  Side.join();
  EXPECT_EQ(Completed, 1);
  A.release();
  EXPECT_EQ(A.availablePermits(), 1);
}

TEST(CancelScope, CancelWithdrawsRegisteredFutures) {
  Semaphore A(1);
  auto Held = A.acquire();
  auto F = A.acquire();
  CancelScope Scope;
  std::thread Awaiter([&] {
    EXPECT_FALSE(Scope.await(F).has_value()) << "scope-cancelled";
  });
  std::this_thread::sleep_for(5ms);
  Scope.cancel();
  Awaiter.join();
  EXPECT_TRUE(Scope.isCancelled());
  EXPECT_EQ(Scope.entryCountForTesting(), 0);
  A.release();
  EXPECT_EQ(A.availablePermits(), 1);
}

TEST(CancelScope, AddAfterCancelCancelsImmediately) {
  Semaphore A(1);
  auto Held = A.acquire();
  CancelScope Scope;
  Scope.cancel();
  auto F = A.acquire();
  EXPECT_EQ(Scope.add(F), nullptr);
  EXPECT_EQ(F.status(), FutureStatus::Cancelled);
  A.release();
  EXPECT_EQ(A.availablePermits(), 1);
}

TEST(CancelScope, AwaitForComposesScopeCancelWithDeadline) {
  Semaphore A(1);
  auto Held = A.acquire();
  // Deadline fires first: plain timeout, scope uncancelled.
  {
    CancelScope Scope;
    auto F = A.acquire();
    EXPECT_FALSE(Scope.awaitFor(F, 2ms).has_value());
    EXPECT_FALSE(Scope.isCancelled());
    EXPECT_EQ(Scope.entryCountForTesting(), 0);
  }
  // Scope cancel fires first: same caller-visible nullopt, before the
  // (generous) deadline elapses.
  {
    CancelScope Scope;
    auto F = A.acquire();
    std::thread Canceller([&] {
      std::this_thread::sleep_for(5ms);
      Scope.cancel();
    });
    auto Start = std::chrono::steady_clock::now();
    EXPECT_FALSE(Scope.awaitFor(F, 10s).has_value());
    EXPECT_LT(std::chrono::steady_clock::now() - Start, 5s);
    Canceller.join();
  }
  A.release();
  EXPECT_EQ(A.availablePermits(), 1);
}

TEST(CancelScope, ParentCancelPropagatesToChildren) {
  Semaphore A(1);
  auto Held = A.acquire();
  CancelScope Parent;
  CancelScope Child(&Parent);
  auto F = A.acquire();
  CancelScope::Entry *E = Child.add(F);
  ASSERT_NE(E, nullptr);
  Parent.cancel();
  EXPECT_TRUE(Child.isCancelled());
  EXPECT_EQ(F.status(), FutureStatus::Cancelled);
  // The entry is still registered (cancel never unlinks); its owner
  // removes it, as await() would have.
  EXPECT_EQ(Child.entryCountForTesting(), 1);
  Child.remove(E);
  A.release();
  EXPECT_EQ(A.availablePermits(), 1);
}

TEST(CancelScope, ChildOfCancelledParentStartsCancelled) {
  CancelScope Parent;
  Parent.cancel();
  CancelScope Child(&Parent);
  EXPECT_TRUE(Child.isCancelled());
}

TEST(CancelScope, CancelAfterZeroCancelsInline) {
  CancelScope Scope;
  Scope.cancelAfter(0ns);
  EXPECT_TRUE(Scope.isCancelled());
}

TEST(CancelScope, CancelAfterFiresThroughTimerQueue) {
  Semaphore A(1);
  auto Held = A.acquire();
  CancelScope Scope;
  Scope.cancelAfter(2ms);
  auto F = A.acquire();
  EXPECT_FALSE(Scope.await(F).has_value()) << "timer-cancelled";
  EXPECT_TRUE(Scope.isCancelled());
  A.release();
  EXPECT_EQ(A.availablePermits(), 1);
}

TEST(CancelScope, DestructionDisarmsPendingCancelAfter) {
  {
    CancelScope Scope;
    Scope.cancelAfter(10s);
  } // destroyed long before the deadline: the timer must not touch it
  TimerQueue::instance().drainForTesting();
}

// Leave a scope with an armed short cancelAfter racing the destructor;
// the ScopeCancelCell handshake must never let the timer touch the dead
// scope. Run enough rounds to actually hit the fire-vs-destroy window.
TEST(CancelScope, CancelAfterVsDestructionRaceIsSafe) {
  for (int Round = 0; Round < 200; ++Round) {
    Semaphore A(1);
    auto Held = A.acquire();
    {
      CancelScope Scope;
      Scope.cancelAfter(std::chrono::microseconds(Round % 50));
      auto F = A.acquire();
      (void)Scope.awaitFor(F, std::chrono::microseconds(10));
    }
    A.release();
    ASSERT_EQ(A.availablePermits(), 1) << "round " << Round;
  }
  TimerQueue::instance().drainForTesting();
}

FireAndForget anyOfTwoReceives(BufferedChannelV2<int, 8> &C1,
                               BufferedChannelV2<int, 8> &C2,
                               std::atomic<int> &Got, WaitGroup &Wg) {
  auto F1 = C1.receive();
  auto F2 = C2.receive();
  auto R = co_await awaitWhenAny(F1, F2);
  EXPECT_TRUE(R.has_value());
  if (R)
    Got.store(R->Value);
  Wg.done();
}

TEST(WhenAnyAwaiter, ResumesCoroutineOnFirstReadyChannel) {
  Executor Exec(2);
  BufferedChannelV2<int, 8> C1(4), C2(4);
  std::atomic<int> Got{0};
  WaitGroup Wg(1);
  anyOfTwoReceives(C1, C2, Got, Wg).spawn(Exec);
  std::this_thread::sleep_for(5ms);
  ASSERT_TRUE(C2.trySend(42));
  Wg.wait();
  EXPECT_EQ(Got.load(), 42);
  // The loser receive was cancelled: a later send is buffered, not eaten.
  ASSERT_TRUE(C1.trySend(7));
  EXPECT_EQ(C1.tryReceive().value_or(-1), 7);
}

FireAndForget allOfThreeAcquires(Semaphore &S, std::atomic<int> &Completed,
                                 WaitGroup &Wg) {
  auto F1 = S.acquire();
  auto F2 = S.acquire();
  auto F3 = S.acquire();
  Completed.store(co_await awaitWhenAll(F1, F2, F3));
  S.release();
  S.release();
  S.release();
  Wg.done();
}

TEST(WhenAllAwaiter, ResumesWhenEverythingSettled) {
  Executor Exec(2);
  Semaphore S(2); // third acquire parks until the releaser below
  std::atomic<int> Completed{-1};
  WaitGroup Wg(1);
  allOfThreeAcquires(S, Completed, Wg).spawn(Exec);
  std::this_thread::sleep_for(5ms);
  S.release();
  Wg.wait();
  EXPECT_EQ(Completed.load(), 3);
  // 2 original permits + the one the helper release added, all returned.
  EXPECT_EQ(S.availablePermits(), 3);
}

TEST(WhenAnyAwaiter, OffExecutorFallbackParksCallerThread) {
  ASSERT_EQ(Executor::current(), nullptr);
  Semaphore S(1);
  auto Held = S.acquire();
  std::atomic<bool> Done{false};
  std::thread Releaser([&] {
    std::this_thread::sleep_for(5ms);
    S.release();
  });
  struct InlineTask {
    struct promise_type {
      InlineTask get_return_object() { return {}; }
      std::suspend_never initial_suspend() noexcept { return {}; }
      std::suspend_never final_suspend() noexcept { return {}; }
      void return_void() noexcept {}
      void unhandled_exception() noexcept { std::terminate(); }
    };
  };
  [](Semaphore &S, std::atomic<bool> &Done) -> InlineTask {
    auto F1 = S.acquire();
    auto F2 = S.acquire();
    auto R = co_await awaitWhenAny(F1, F2);
    EXPECT_TRUE(R.has_value());
    S.release();
    Done.store(true);
  }(S, Done);
  EXPECT_TRUE(Done.load());
  Releaser.join();
  // Held + winner acquired (2); the coroutine and the releaser released
  // (2): the count is already balanced.
  EXPECT_EQ(S.availablePermits(), 1);
}

AsyncGenerator<int, 4> countTo(int Limit) {
  for (int I = 0; I < Limit; ++I)
    if (!(co_yield I))
      co_return;
}

TEST(AsyncGenerator, ProducesAllElementsInOrder) {
  Executor Exec(2);
  auto G = countTo(100);
  G.start(Exec);
  for (int I = 0; I < 100; ++I) {
    auto V = G.nextBlocking();
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(*V, I);
  }
  EXPECT_FALSE(G.nextBlocking().has_value()) << "exhausted: nullopt";
  EXPECT_FALSE(G.nextBlocking().has_value()) << "stays exhausted";
}

TEST(AsyncGenerator, EarlyDestructionStopsProducer) {
  Executor Exec(2);
  {
    auto G = countTo(1'000'000);
    G.start(Exec);
    auto V = G.nextBlocking();
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(*V, 0);
    // Destructor: close -> parked yield resumes false -> producer
    // co_returns -> join. Terminates long before a million elements.
  }
}

TEST(AsyncGenerator, NeverStartedGeneratorCleansUp) {
  auto G = countTo(10);
  // Dropped without start(): the suspended frame is destroyed, the body
  // never runs.
}

FireAndForget consumeAll(AsyncGenerator<int, 4> &G, std::atomic<long> &Sum,
                         WaitGroup &Wg) {
  for (;;) {
    auto V = co_await G.next();
    if (!V.has_value())
      break;
    Sum.fetch_add(*V);
  }
  Wg.done();
}

TEST(AsyncGenerator, CoroutineConsumerDrainsViaNext) {
  Executor Exec(2);
  auto G = countTo(50);
  G.start(Exec);
  std::atomic<long> Sum{0};
  WaitGroup Wg(1);
  consumeAll(G, Sum, Wg).spawn(Exec);
  Wg.wait();
  EXPECT_EQ(Sum.load(), 49L * 50 / 2);
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
