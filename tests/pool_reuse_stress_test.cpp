//===- tests/pool_reuse_stress_test.cpp - reuse under cancellation --------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Hammers the pooled-request lifecycle with the nastiest client available:
// smart cancellation plus timed-out waits on a fair semaphore. Every
// cancelled acquire() retires its request through EBR into the pool while
// a racing release() may still hold the raw pointer it read from the cell
// — exactly the use-after-recycle/ABA window the EBR grace period and the
// generation parity tag close. Run under the CQS_SANITIZE TSan and
// ASan/UBSan CI jobs (and with CQS_DISABLE_POOLING) to keep that argument
// honest.
//
//===----------------------------------------------------------------------===//

#include "reclaim/Ebr.h"
#include "support/ObjectPool.h"
#include "sync/Semaphore.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

namespace {

using namespace cqs;

std::uint64_t requestsRecycled() {
  return pool::stats(pool::PoolKind::Request)
      .Recycled.load(std::memory_order_relaxed);
}

std::uint64_t segmentsRecycled() {
  return pool::stats(pool::PoolKind::Segment)
      .Recycled.load(std::memory_order_relaxed);
}

// Smart cancellation + timed-out resumes hammering pooled requests. A
// 1-permit semaphore makes suspension deterministic even on a single-core
// host: whoever holds the permit and acquires *again* must suspend, its
// timed wait must expire (nobody else can release), and its cancel() must
// win — while the other threads' waiters queue up behind it, time out,
// and race their cancels against the final release() through the
// delegation/REFUSE machinery.
TEST(PoolReuseStress, SmartCancellationWithTimedWaiters) {
  const std::uint64_t RecycledBefore = requestsRecycled();

  // Tiny segments so cancelled waves also exercise segment removal.
  BasicSemaphore<8> Sem(1);
  constexpr int Threads = 8;
  constexpr int Iters = 1000;

  std::atomic<std::uint64_t> Granted{0};
  std::atomic<std::uint64_t> Cancelled{0};
  std::atomic<int> Failures{0};

  std::vector<std::thread> Workers;
  Workers.reserve(Threads);
  for (int T = 0; T < Threads; ++T) {
    Workers.emplace_back([&] {
      constexpr auto Wait = std::chrono::microseconds(20);
      for (int I = 0; I < Iters; ++I) {
        auto F1 = Sem.acquire();
        if (F1.isImmediate()) {
          // We hold the only permit, so this second acquire suspends and
          // its wait times out: guaranteed cancelled-after-timeout cycle.
          auto F2 = Sem.acquire();
          if (!F2.isImmediate()) {
            if (F2.waitFor(Wait) == FutureStatus::Pending && F2.cancel()) {
              Cancelled.fetch_add(1, std::memory_order_relaxed);
            } else if (F2.blockingGet().has_value()) {
              Sem.release(); // a refused resume returned the permit to us
            } else {
              Failures.fetch_add(1, std::memory_order_relaxed);
            }
          } else {
            Sem.release(); // raced a cancellation's returned reservation
          }
          Granted.fetch_add(1, std::memory_order_relaxed);
          Sem.release();
        } else {
          // Queued behind the current holder: time out and withdraw, or
          // consume the permit if the resume wins the race.
          if (F1.waitFor(Wait) == FutureStatus::Pending && F1.cancel()) {
            Cancelled.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (!F1.blockingGet().has_value()) {
            Failures.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          Granted.fetch_add(1, std::memory_order_relaxed);
          Sem.release();
        }
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();

  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(Sem.availablePermits(), 1) << "permit conservation violated";
  EXPECT_GT(Granted.load(), 0u);
  EXPECT_GT(Cancelled.load(), 0u)
      << "stress ran without exercising cancellation";
  if (pool::PoolingEnabled) {
    EXPECT_GT(requestsRecycled(), RecycledBefore)
        << "cancelled requests should have entered the pool";
  }
}

// Deterministic segment churn: cancel whole waves of waiters so every
// segment becomes fully dead, is removed, retires through EBR, and comes
// back out of the pool for the next wave.
TEST(PoolReuseStress, CancelledWavesRecycleSegments) {
  const std::uint64_t RecycledBefore = segmentsRecycled();

  BasicSemaphore<4> Sem(1);
  auto Hold = Sem.acquire(); // pin the only permit: every acquire suspends
  ASSERT_TRUE(Hold.isImmediate());

  for (int Round = 0; Round < 200; ++Round) {
    std::vector<BasicSemaphore<4>::FutureType> Waves;
    Waves.reserve(16);
    for (int I = 0; I < 16; ++I)
      Waves.push_back(Sem.acquire());
    for (auto &F : Waves)
      ASSERT_TRUE(F.cancel());
  }

  Sem.release();
  EXPECT_EQ(Sem.availablePermits(), 1);
  if (pool::PoolingEnabled) {
    EXPECT_GT(segmentsRecycled(), RecycledBefore)
        << "fully-cancelled segments should have entered the pool";
  }
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
