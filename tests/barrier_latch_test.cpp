//===- tests/barrier_latch_test.cpp - barrier & count-down-latch tests ----===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sync/Barrier.h"
#include "sync/CountDownLatch.h"

#include "reclaim/Ebr.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace cqs;

namespace {

using SmallBarrier = BasicBarrier</*SegmentSize=*/4>;
using SmallLatch = BasicCountDownLatch</*SegmentSize=*/4>;

TEST(Barrier, SinglePartyCompletesImmediately) {
  SmallBarrier B(1);
  auto F = B.arrive();
  EXPECT_TRUE(F.isImmediate());
}

TEST(Barrier, LastArriverReleasesEveryone) {
  SmallBarrier B(4);
  std::vector<SmallBarrier::FutureType> Fs;
  for (int I = 0; I < 3; ++I) {
    Fs.push_back(B.arrive());
    EXPECT_EQ(Fs.back().status(), FutureStatus::Pending);
  }
  auto Last = B.arrive();
  EXPECT_TRUE(Last.isImmediate());
  for (auto &F : Fs)
    EXPECT_EQ(F.status(), FutureStatus::Completed);
}

TEST(Barrier, ThreadedSynchronizationPhase) {
  constexpr int Parties = 8;
  SmallBarrier B(Parties);
  std::atomic<int> BeforeCount{0};
  std::atomic<bool> AnyoneThroughEarly{false};

  std::vector<std::thread> Ts;
  for (int T = 0; T < Parties; ++T) {
    Ts.emplace_back([&] {
      BeforeCount.fetch_add(1);
      auto F = B.arrive();
      ASSERT_TRUE(F.blockingGet().has_value());
      // Nobody passes until all `Parties` have arrived.
      if (BeforeCount.load() != Parties)
        AnyoneThroughEarly.store(true);
    });
  }
  for (auto &T : Ts)
    T.join();
  EXPECT_FALSE(AnyoneThroughEarly.load());
}

TEST(Barrier, CancelledWaiterDoesNotBlockOthers) {
  // The design decision of Section 4.1: a cancelled waiter has already
  // arrived, so the remaining parties still get released.
  SmallBarrier B(3);
  auto F1 = B.arrive();
  auto F2 = B.arrive();
  EXPECT_TRUE(F1.cancel());
  auto Last = B.arrive();
  EXPECT_TRUE(Last.isImmediate());
  EXPECT_EQ(F2.status(), FutureStatus::Completed);
  EXPECT_EQ(F1.status(), FutureStatus::Cancelled);
}

TEST(Barrier, ManyCancellationsStillRelease) {
  SmallBarrier B(10);
  std::vector<SmallBarrier::FutureType> Fs;
  for (int I = 0; I < 9; ++I)
    Fs.push_back(B.arrive());
  for (int I = 0; I < 9; I += 2)
    EXPECT_TRUE(Fs[I].cancel());
  auto Last = B.arrive();
  EXPECT_TRUE(Last.isImmediate());
  for (int I = 1; I < 9; I += 2)
    EXPECT_EQ(Fs[I].status(), FutureStatus::Completed) << I;
}

TEST(Latch, OpensAfterExactCount) {
  SmallLatch L(3);
  auto F = L.await();
  EXPECT_EQ(F.status(), FutureStatus::Pending);
  L.countDown();
  L.countDown();
  EXPECT_EQ(F.status(), FutureStatus::Pending);
  EXPECT_EQ(L.count(), 1);
  L.countDown();
  EXPECT_EQ(F.status(), FutureStatus::Completed);
  EXPECT_EQ(L.count(), 0);
}

TEST(Latch, AwaitAfterOpenIsImmediate) {
  SmallLatch L(1);
  L.countDown();
  auto F = L.await();
  EXPECT_TRUE(F.isImmediate());
}

TEST(Latch, ZeroCountIsOpenFromTheStart) {
  SmallLatch L(0);
  EXPECT_TRUE(L.await().isImmediate());
}

TEST(Latch, ExtraCountDownsAreAllowed) {
  SmallLatch L(1);
  L.countDown();
  L.countDown(); // footnote 4: permitted
  EXPECT_EQ(L.count(), 0);
  EXPECT_TRUE(L.await().isImmediate());
}

TEST(Latch, ManyWaitersAllReleased) {
  SmallLatch L(1);
  std::vector<SmallLatch::FutureType> Fs;
  for (int I = 0; I < 20; ++I)
    Fs.push_back(L.await());
  L.countDown();
  for (auto &F : Fs)
    EXPECT_EQ(F.status(), FutureStatus::Completed);
}

TEST(Latch, CancelledWaiterIsSkippedEfficiently) {
  SmallLatch L(1);
  auto F1 = L.await();
  auto F2 = L.await();
  auto F3 = L.await();
  EXPECT_TRUE(F2.cancel());
  L.countDown();
  EXPECT_EQ(F1.status(), FutureStatus::Completed);
  EXPECT_EQ(F3.status(), FutureStatus::Completed);
  EXPECT_EQ(F2.status(), FutureStatus::Cancelled);
}

TEST(Latch, CancelRacingWithOpenIsRefusedHarmlessly) {
  // DONE_BIT set concurrently with a cancellation: the cancelled waiter's
  // resume is refused and simply dropped; every live waiter still wakes.
  for (int Round = 0; Round < 300; ++Round) {
    SmallLatch L(1);
    auto F1 = L.await();
    auto F2 = L.await();
    std::thread A([&] { L.countDown(); });
    std::thread B([&] { (void)F1.cancel(); });
    A.join();
    B.join();
    EXPECT_EQ(F2.status(), FutureStatus::Completed);
    EXPECT_NE(F1.status(), FutureStatus::Pending);
  }
}

TEST(Latch, ThreadedCountDownReleasesAllWaiters) {
  constexpr int Counts = 64;
  constexpr int Waiters = 6;
  SmallLatch L(Counts);
  std::atomic<int> Released{0};
  std::vector<std::thread> Ts;
  for (int W = 0; W < Waiters; ++W) {
    Ts.emplace_back([&] {
      auto F = L.await();
      ASSERT_TRUE(F.blockingGet().has_value());
      ASSERT_EQ(L.count(), 0) << "woke before the latch opened";
      Released.fetch_add(1);
    });
  }
  std::vector<std::thread> Counters;
  for (int C = 0; C < 4; ++C) {
    Counters.emplace_back([&] {
      for (int I = 0; I < Counts / 4; ++I)
        L.countDown();
    });
  }
  for (auto &T : Counters)
    T.join();
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Released.load(), Waiters);
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
