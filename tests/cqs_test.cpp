//===- tests/cqs_test.cpp - CancellableQueueSynchronizer tests ------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Core semantics of Sections 2 and Appendix B: FIFO completion order,
/// resume-before-suspend elimination, synchronous-mode rendezvous/breaking,
/// segment turnover, and a transfer stress test proving every resumed value
/// reaches exactly one future.
///
//===----------------------------------------------------------------------===//

#include "core/Cqs.h"
#include "reclaim/Ebr.h"
#include "support/WaitGroup.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

using namespace cqs;

namespace {

using IntCqs = Cqs<int, ValueTraits<int>, /*SegmentSize=*/4>;
using IntFut = IntCqs::FutureType;

TEST(CqsBasic, SuspendThenResumeCompletesInFifoOrder) {
  IntCqs Q;
  std::vector<IntFut> Futures;
  for (int I = 0; I < 20; ++I)
    Futures.push_back(Q.suspend());
  for (const IntFut &F : Futures) {
    EXPECT_TRUE(F.valid());
    EXPECT_FALSE(F.isImmediate());
    EXPECT_EQ(F.status(), FutureStatus::Pending);
  }
  for (int I = 0; I < 20; ++I)
    EXPECT_TRUE(Q.resume(100 + I));
  // FIFO: the i-th suspend got the i-th resume's value.
  for (int I = 0; I < 20; ++I)
    EXPECT_EQ(Futures[I].tryGet(), 100 + I);
}

TEST(CqsBasic, ResumeBeforeSuspendEliminates) {
  IntCqs Q;
  EXPECT_TRUE(Q.resume(7));
  IntFut F = Q.suspend();
  EXPECT_TRUE(F.isImmediate());
  EXPECT_EQ(F.tryGet(), 7);
}

TEST(CqsBasic, InterleavedRacesPreserveOrder) {
  IntCqs Q;
  // r s r r s s — the values land in arrival order of the indices.
  EXPECT_TRUE(Q.resume(1));
  IntFut A = Q.suspend();
  EXPECT_TRUE(A.isImmediate());
  EXPECT_EQ(A.tryGet(), 1);
  EXPECT_TRUE(Q.resume(2));
  EXPECT_TRUE(Q.resume(3));
  IntFut B = Q.suspend();
  IntFut C = Q.suspend();
  EXPECT_EQ(B.tryGet(), 2);
  EXPECT_EQ(C.tryGet(), 3);
}

TEST(CqsBasic, ManyOperationsCrossSegments) {
  IntCqs Q; // SegmentSize=4, so 100 ops span 25 segments
  std::vector<IntFut> Futures;
  for (int I = 0; I < 100; ++I)
    Futures.push_back(Q.suspend());
  for (int I = 0; I < 100; ++I)
    EXPECT_TRUE(Q.resume(I));
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Futures[I].tryGet(), I);
  EXPECT_GE(Q.suspendSegmentForTesting()->Id, 24u);
  EXPECT_GE(Q.resumeSegmentForTesting()->Id, 24u);
}

TEST(CqsBasic, ProcessedSegmentsArePhysicallyRemoved) {
  // The GC-free generalization (DESIGN.md §3): after futures are resumed
  // and their futures dropped, old segments must be retired, not leaked.
  IntCqs Q;
  for (int Round = 0; Round < 50; ++Round) {
    IntFut F = Q.suspend();
    EXPECT_TRUE(Q.resume(Round));
    EXPECT_EQ(F.tryGet(), Round);
  }
  // Both pointers sit on a late segment; everything earlier was retired.
  EXPECT_GE(Q.resumeSegmentForTesting()->Id, 11u);
  EXPECT_EQ(Q.resumeSegmentForTesting(), Q.suspendSegmentForTesting());
}

TEST(CqsMemory, LinkedSegmentsStayBoundedUnderChurn) {
  // Appendix C's memory-complexity claim, O(N + T): after any amount of
  // fully-processed traffic the list must not accumulate segments.
  IntCqs Q; // SegmentSize = 4
  for (int Round = 0; Round < 10000; ++Round) {
    IntFut F = Q.suspend();
    ASSERT_TRUE(Q.resume(Round));
    ASSERT_EQ(F.tryGet(), Round);
  }
  EXPECT_LE(Q.linkedSegmentCountForTesting(), 2u)
      << "processed segments leaked";
}

TEST(CqsMemory, LinkedSegmentsStayBoundedWithPendingWaiters) {
  IntCqs Q; // SegmentSize = 4
  // Keep 8 live waiters (2 segments worth) while churning around them.
  std::vector<IntFut> Live;
  for (int I = 0; I < 8; ++I)
    Live.push_back(Q.suspend());
  for (int Round = 0; Round < 5000; ++Round) {
    IntFut F = Q.suspend();
    // The FIFO order forces resumes to drain the live waiters first; keep
    // the set stable by re-suspending.
    ASSERT_TRUE(Q.resume(Round));
    Live.push_back(Q.suspend());
    Live.erase(Live.begin());
    ASSERT_TRUE(Q.resume(Round));
    (void)F;
  }
  // 8-ish live waiters spread over a bounded window of segments.
  EXPECT_LE(Q.linkedSegmentCountForTesting(), 8u);
}

TEST(CqsSync, ResumeWithoutSuspenderBreaksCell) {
  IntCqs Q(CancellationMode::Simple, ResumptionMode::Sync);
  EXPECT_FALSE(Q.resume(5)) << "no suspender: rendezvous must time out";
  IntFut F = Q.suspend();
  EXPECT_FALSE(F.valid()) << "the broken cell fails the paired suspend";
  // The next pair works normally.
  IntFut G = Q.suspend();
  EXPECT_TRUE(G.valid());
  EXPECT_TRUE(Q.resume(6));
  EXPECT_EQ(G.tryGet(), 6);
}

TEST(CqsSync, RendezvousSucceedsWithConcurrentSuspender) {
  IntCqs Q(CancellationMode::Simple, ResumptionMode::Sync);
  for (int Round = 0; Round < 100; ++Round) {
    std::atomic<bool> ResumeOk{false}, GotValue{false};
    std::thread Suspender([&] {
      for (;;) {
        IntFut F = Q.suspend();
        if (!F.valid())
          continue; // our cell got broken; retry like a primitive would
        std::optional<int> V = F.blockingGet();
        ASSERT_TRUE(V.has_value());
        EXPECT_EQ(*V, Round);
        GotValue.store(true);
        return;
      }
    });
    std::thread Resumer([&] {
      while (!Q.resume(Round)) {
      }
      ResumeOk.store(true);
    });
    Suspender.join();
    Resumer.join();
    EXPECT_TRUE(ResumeOk.load());
    EXPECT_TRUE(GotValue.load());
  }
}

TEST(CqsSync, SuspendFirstAlwaysRendezvouses) {
  IntCqs Q(CancellationMode::Simple, ResumptionMode::Sync);
  IntFut F = Q.suspend();
  ASSERT_TRUE(F.valid());
  EXPECT_TRUE(Q.resume(11)) << "a stored waiter never breaks";
  EXPECT_EQ(F.tryGet(), 11);
}

/// Transfer stress: N producer threads resume unique values, N consumer
/// threads suspend; every value must arrive at exactly one future.
class CqsTransferStress
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CqsTransferStress, AllValuesTransferredExactlyOnce) {
  const int Threads = std::get<0>(GetParam());
  const int PerThread = std::get<1>(GetParam());
  const int Total = Threads * PerThread;

  IntCqs Q;
  std::vector<std::atomic<int>> Received(Total);
  for (auto &R : Received)
    R.store(0);

  // Consumers first grab futures; values may be eliminated or suspended.
  std::vector<std::thread> Ts;
  std::atomic<int> NextValue{0};
  for (int T = 0; T < Threads; ++T) {
    Ts.emplace_back([&] { // producer
      for (int I = 0; I < PerThread; ++I) {
        int V = NextValue.fetch_add(1);
        ASSERT_TRUE(Q.resume(V));
      }
    });
    Ts.emplace_back([&] { // consumer
      for (int I = 0; I < PerThread; ++I) {
        IntFut F = Q.suspend();
        ASSERT_TRUE(F.valid());
        std::optional<int> V = F.blockingGet();
        ASSERT_TRUE(V.has_value());
        Received[*V].fetch_add(1);
      }
    });
  }
  for (auto &T : Ts)
    T.join();

  for (int V = 0; V < Total; ++V)
    ASSERT_EQ(Received[V].load(), 1) << "value " << V;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CqsTransferStress,
                         ::testing::Values(std::make_tuple(2, 2000),
                                           std::make_tuple(4, 1000),
                                           std::make_tuple(8, 500)));

/// Per-thread FIFO sanity under concurrency: a single resumer thread feeds
/// increasing values; a single suspender thread must observe them in order
/// (global FIFO of the queue).
TEST(CqsFifo, SingleProducerSingleConsumerOrderPreserved) {
  IntCqs Q;
  constexpr int N = 5000;
  std::thread Producer([&] {
    for (int I = 0; I < N; ++I)
      ASSERT_TRUE(Q.resume(I));
  });
  std::thread Consumer([&] {
    int Prev = -1;
    for (int I = 0; I < N; ++I) {
      IntFut F = Q.suspend();
      std::optional<int> V = F.blockingGet();
      ASSERT_TRUE(V.has_value());
      ASSERT_GT(*V, Prev) << "FIFO violated";
      Prev = *V;
    }
  });
  Producer.join();
  Consumer.join();
}

TEST(CqsUnit, UnitQueueWorks) {
  Cqs<Unit> Q;
  auto F = Q.suspend();
  EXPECT_TRUE(Q.resume(Unit{}));
  EXPECT_TRUE(F.tryGet().has_value());
}

TEST(CqsPointer, PointerPayloadsRoundTrip) {
  int Slots[4] = {10, 20, 30, 40};
  Cqs<int *> Q;
  auto F0 = Q.suspend();
  auto F1 = Q.suspend();
  EXPECT_TRUE(Q.resume(&Slots[2]));
  EXPECT_TRUE(Q.resume(&Slots[3]));
  EXPECT_EQ(F0.tryGet(), &Slots[2]);
  EXPECT_EQ(F1.tryGet(), &Slots[3]);
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
