//===- tests/channel_test.cpp - buffered/rendezvous channel tests ---------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The channel composed from CQS parts (the paper's §7 "synchronous
/// queues" future-work direction): FIFO delivery, backpressure at
/// capacity, rendezvous at capacity zero, receive-side cancellation, and
/// conservation under producer/consumer/canceller storms.
///
//===----------------------------------------------------------------------===//

#include "sync/Channel.h"

#include "reclaim/Ebr.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace cqs;

namespace {

using IntChannel = BufferedChannel<int, /*SegmentSize=*/4>;

TEST(BufferedChannel, SendThenReceiveFifo) {
  IntChannel Ch(8);
  for (int I = 0; I < 5; ++I) {
    auto S = Ch.send(I);
    EXPECT_TRUE(S.isImmediate()) << "buffer has room";
  }
  for (int I = 0; I < 5; ++I) {
    auto R = Ch.receive();
    ASSERT_TRUE(R.isImmediate());
    EXPECT_EQ(R.tryGet(), I);
  }
}

TEST(BufferedChannel, ReceiveOnEmptySuspendsUntilSend) {
  IntChannel Ch(2);
  auto R = Ch.receive();
  EXPECT_EQ(R.status(), FutureStatus::Pending);
  auto S = Ch.send(42);
  EXPECT_TRUE(S.isImmediate());
  EXPECT_EQ(R.tryGet(), 42);
}

TEST(BufferedChannel, SendBlocksAtCapacity) {
  IntChannel Ch(2);
  EXPECT_TRUE(Ch.send(1).isImmediate());
  EXPECT_TRUE(Ch.send(2).isImmediate());
  auto S3 = Ch.send(3);
  EXPECT_EQ(S3.status(), FutureStatus::Pending) << "buffer full";
  // Draining one element acknowledges the blocked sender.
  auto R = Ch.receive();
  EXPECT_EQ(R.tryGet(), 1);
  EXPECT_EQ(S3.status(), FutureStatus::Completed);
  EXPECT_EQ(Ch.receive().tryGet(), 2);
  EXPECT_EQ(Ch.receive().tryGet(), 3);
}

TEST(BufferedChannel, WaitingReceiversServedFifo) {
  IntChannel Ch(4);
  auto R1 = Ch.receive();
  auto R2 = Ch.receive();
  auto R3 = Ch.receive();
  Ch.send(10);
  Ch.send(20);
  Ch.send(30);
  EXPECT_EQ(R1.tryGet(), 10);
  EXPECT_EQ(R2.tryGet(), 20);
  EXPECT_EQ(R3.tryGet(), 30);
}

TEST(RendezvousChannel, SendSuspendsUntilReceive) {
  RendezvousChannel<int, 4> Ch;
  auto S = Ch.send(7);
  EXPECT_EQ(S.status(), FutureStatus::Pending) << "no receiver yet";
  auto R = Ch.receive();
  ASSERT_TRUE(R.isImmediate());
  EXPECT_EQ(R.tryGet(), 7);
  EXPECT_EQ(S.status(), FutureStatus::Completed) << "handoff acknowledged";
}

TEST(RendezvousChannel, ReceiveSuspendsUntilSend) {
  RendezvousChannel<int, 4> Ch;
  auto R = Ch.receive();
  EXPECT_EQ(R.status(), FutureStatus::Pending);
  auto S = Ch.send(9);
  EXPECT_TRUE(S.isImmediate()) << "direct rendezvous with the waiter";
  EXPECT_EQ(R.tryGet(), 9);
}

TEST(BufferedChannel, CancelledReceiveIsSkipped) {
  IntChannel Ch(2);
  auto R1 = Ch.receive();
  auto R2 = Ch.receive();
  EXPECT_TRUE(R1.cancel());
  Ch.send(5);
  EXPECT_EQ(R2.tryGet(), 5) << "element goes to the live receiver";
}

TEST(BufferedChannel, CancelRaceNeverLosesTheElement) {
  for (int Round = 0; Round < 500; ++Round) {
    IntChannel Ch(2);
    auto R = Ch.receive();
    std::atomic<bool> Cancelled{false};
    std::thread A([&] { (void)Ch.send(Round); });
    std::thread B([&] { Cancelled.store(R.cancel()); });
    A.join();
    B.join();
    if (Cancelled.load()) {
      // The element was re-delivered into the channel.
      auto G = Ch.receive();
      EXPECT_EQ(G.blockingGet(), Round);
    } else {
      EXPECT_EQ(R.tryGet(), Round);
    }
    EXPECT_EQ(Ch.balanceForTesting(), 0);
  }
}

TEST(BufferedChannel, ProducerConsumerStressConservesValues) {
  constexpr int Producers = 3, Consumers = 3, PerProducer = 4000;
  constexpr int Total = Producers * PerProducer;
  IntChannel Ch(4);
  std::vector<std::atomic<int>> Seen(Total);
  for (auto &S : Seen)
    S.store(0);

  std::vector<std::thread> Ts;
  std::atomic<int> Next{0};
  for (int P = 0; P < Producers; ++P) {
    Ts.emplace_back([&] {
      for (int I = 0; I < PerProducer; ++I) {
        int V = Next.fetch_add(1);
        auto S = Ch.send(V);
        (void)S.blockingGet(); // respect backpressure
      }
    });
  }
  for (int C = 0; C < Consumers; ++C) {
    Ts.emplace_back([&] {
      for (int I = 0; I < Total / Consumers; ++I) {
        auto R = Ch.receive();
        auto V = R.blockingGet();
        ASSERT_TRUE(V.has_value());
        Seen[*V].fetch_add(1);
      }
    });
  }
  for (auto &T : Ts)
    T.join();
  for (int V = 0; V < Total; ++V)
    ASSERT_EQ(Seen[V].load(), 1) << "value " << V;
  EXPECT_EQ(Ch.balanceForTesting(), 0);
}

TEST(BufferedChannel, StressWithReceiverCancellation) {
  constexpr int Total = 6000;
  IntChannel Ch(2);
  std::atomic<int> Received{0};

  std::thread Producer([&] {
    for (int I = 0; I < Total; ++I)
      (void)Ch.send(I).blockingGet();
  });
  std::vector<std::thread> Consumers;
  for (int C = 0; C < 3; ++C) {
    Consumers.emplace_back([&, C] {
      SplitMix64 Rng(33 + C);
      // Fixed per-consumer quota; cancelled waits do not count, so every
      // produced element is consumed exactly once in total.
      for (int Got = 0; Got < Total / 3;) {
        auto R = Ch.receive();
        if (!R.isImmediate() && Rng.chance(1, 2) && R.cancel())
          continue; // aborted this wait
        auto V = R.blockingGet();
        ASSERT_TRUE(V.has_value());
        Received.fetch_add(1);
        ++Got;
      }
    });
  }
  Producer.join();
  for (auto &T : Consumers)
    T.join();
  EXPECT_EQ(Received.load(), Total);
  EXPECT_EQ(Ch.balanceForTesting(), 0);
}

TEST(BufferedChannel, TrySendTryReceiveBasics) {
  IntChannel Ch(2);
  EXPECT_EQ(Ch.tryReceive(), std::nullopt) << "empty channel";
  EXPECT_TRUE(Ch.trySend(1));
  EXPECT_TRUE(Ch.trySend(2));
  EXPECT_FALSE(Ch.trySend(3)) << "buffer full: trySend must not block";
  EXPECT_EQ(Ch.tryReceive(), 1);
  EXPECT_TRUE(Ch.trySend(3));
  EXPECT_EQ(Ch.tryReceive(), 2);
  EXPECT_EQ(Ch.tryReceive(), 3);
  EXPECT_EQ(Ch.tryReceive(), std::nullopt);
}

TEST(BufferedChannel, TrySendRendezvousesWithWaitingReceiver) {
  RendezvousChannel<int, 4> Ch;
  EXPECT_FALSE(Ch.trySend(1)) << "no receiver: rendezvous refused";
  auto R = Ch.receive();
  EXPECT_EQ(R.status(), FutureStatus::Pending);
  EXPECT_TRUE(Ch.trySend(9)) << "waiting receiver: direct handoff";
  EXPECT_EQ(R.tryGet(), 9);
}

TEST(BufferedChannel, TryReceiveAcksBlockedSender) {
  IntChannel Ch(1);
  EXPECT_TRUE(Ch.send(1).isImmediate());
  auto S2 = Ch.send(2);
  EXPECT_EQ(S2.status(), FutureStatus::Pending);
  EXPECT_EQ(Ch.tryReceive(), 1);
  EXPECT_EQ(S2.status(), FutureStatus::Completed)
      << "draining below capacity must acknowledge the blocked sender";
  EXPECT_EQ(Ch.tryReceive(), 2);
}

TEST(BufferedChannel, TryOpsConservationStress) {
  IntChannel Ch(4);
  constexpr int Total = 8000;
  std::atomic<int> NextTicket{0}, Received{0};
  std::vector<std::thread> Ts;
  for (int T = 0; T < 2; ++T) {
    Ts.emplace_back([&] { // senders: each ticket sent exactly once
      for (;;) {
        int V = NextTicket.fetch_add(1);
        if (V >= Total)
          return;
        while (!Ch.trySend(V))
          std::this_thread::yield();
      }
    });
    Ts.emplace_back([&] { // receivers
      while (Received.load() < Total) {
        if (Ch.tryReceive().has_value())
          Received.fetch_add(1);
        else
          std::this_thread::yield();
      }
    });
  }
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Received.load(), Total);
  EXPECT_EQ(Ch.tryReceive(), std::nullopt);
}

TEST(BufferedChannel, SequentialRendezvousFifoUnderMixedOps) {
  RendezvousChannel<int, 4> Ch;
  std::vector<RendezvousChannel<int, 4>::SendFuture> Sends;
  for (int I = 0; I < 6; ++I)
    Sends.push_back(Ch.send(I));
  for (int I = 0; I < 6; ++I) {
    EXPECT_EQ(Ch.receive().tryGet(), I) << "FIFO across pending sends";
    EXPECT_EQ(Sends[I].status(), FutureStatus::Completed)
        << "sequential acks follow send order";
  }
}

/// Property sweep over (capacity, producer/consumer pairs): conservation
/// and quiescent balance must hold for every configuration, including the
/// rendezvous case.
class ChannelSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ChannelSweep, ConservationAcrossConfigurations) {
  const int Capacity = std::get<0>(GetParam());
  const int Pairs = std::get<1>(GetParam());
  const int PerProducer = 1500;
  const int Total = Pairs * PerProducer;

  BufferedChannel<int, 4> Ch(Capacity);
  std::vector<std::atomic<int>> Seen(Total);
  for (auto &S : Seen)
    S.store(0);

  std::vector<std::thread> Ts;
  std::atomic<int> Next{0};
  for (int P = 0; P < Pairs; ++P) {
    Ts.emplace_back([&] {
      for (int I = 0; I < PerProducer; ++I) {
        int V = Next.fetch_add(1);
        (void)Ch.send(V).blockingGet();
      }
    });
    Ts.emplace_back([&] {
      for (int I = 0; I < PerProducer; ++I) {
        auto R = Ch.receive();
        auto V = R.blockingGet();
        ASSERT_TRUE(V.has_value());
        Seen[*V].fetch_add(1);
      }
    });
  }
  for (auto &T : Ts)
    T.join();
  for (int V = 0; V < Total; ++V)
    ASSERT_EQ(Seen[V].load(), 1) << "value " << V;
  EXPECT_EQ(Ch.balanceForTesting(), 0);
  EXPECT_EQ(Ch.tryReceive(), std::nullopt);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChannelSweep,
                         ::testing::Combine(::testing::Values(0, 1, 3, 16),
                                            ::testing::Values(1, 2, 4)),
                         [](const auto &Info) {
                           return "Cap" +
                                  std::to_string(std::get<0>(Info.param)) +
                                  "_P" +
                                  std::to_string(std::get<1>(Info.param));
                         });

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
