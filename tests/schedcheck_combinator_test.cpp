//===- tests/schedcheck_combinator_test.cpp - model-checked combinators ---===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The structured-concurrency layer under the deterministic scheduler:
/// whenAny's loser-cancel vs resume race (both-ready and zero-deadline
/// shapes), whenAll's settle counting, CancelScope's cancel vs timeout vs
/// resume three-way, and the TimerQueue mode of timedAwait on its fully
/// modelled paths (inline expiry for non-positive deadlines; the
/// per-op virtual-time fallback for positive ones — the timer thread is an
/// unmodelled OS thread, so modelled threads must never reach it).
///
/// Conservation is the oracle throughout: whatever interleaving wins the
/// result-word CAS, every permit is owned by exactly one of {winner,
/// stray-completed future, semaphore}. PlainAtomic stats are invisible to
/// the model and witness that DFS actually reached both the
/// loser-withdrawn and the stray-completion branches.
///
//===----------------------------------------------------------------------===//

#include "reclaim/Ebr.h"
#include "schedcheck/Sched.h"
#include "sync/Semaphore.h"
#include "task/Combinators.h"
#include "task/Scope.h"

#include <gtest/gtest.h>

#include <chrono>
#include <optional>

using namespace cqs;
using namespace std::chrono_literals;

namespace {

using SmallSem = BasicSemaphore<2>;

// --------------------------------------------------------------------------
// whenAny: first-ready-wins with SMART loser withdrawal.
// --------------------------------------------------------------------------

/// Both semaphores race to resume their future while whenAny runs: the
/// loser's cancel() races the loser's resume. Either the withdrawal wins
/// (release finds the permit back in the pool) or the resume wins (a stray
/// completion the caller still owns through its future). Each permit ends
/// owned exactly once.
void whenAnyBothResumedRace() {
  auto *A = new SmallSem(1, ResumptionMode::Async);
  auto *B = new SmallSem(1, ResumptionMode::Async);
  auto HeldA = A->acquire();
  auto HeldB = B->acquire();
  sc::check(HeldA.isImmediate() && HeldB.isImmediate(), "drain failed");
  auto FA = A->acquire();
  auto FB = B->acquire();
  std::optional<WhenAnyResult<Unit>> R;
  sc::Thread T1 = sc::spawn([&] { A->release(); });
  sc::Thread T2 = sc::spawn([&] { B->release(); });
  sc::Thread T3 = sc::spawn([&] { R = whenAny(FA, FB); });
  T1.join();
  T2.join();
  T3.join();
  sc::check(R.has_value(), "both resumed; whenAny must commit a winner");
  // Ownership audit, per semaphore: released permit is either with the
  // winner, with a stray completion, or back in the pool.
  SmallSem *Sems[2] = {A, B};
  Future<Unit> *Futs[2] = {&FA, &FB};
  for (int I = 0; I < 2; ++I) {
    int Owned = 0;
    if (R->Index == I || Futs[I]->status() == FutureStatus::Completed)
      Owned = 1;
    sc::check(Sems[I]->availablePermits() == 1 - Owned,
              "permit lost or duplicated in the loser-cancel/resume race");
    if (Owned)
      Sems[I]->release();
    sc::check(Sems[I]->availablePermits() == 1, "drain-back failed");
  }
  delete A;
  delete B;
}

TEST(SchedcheckCombinator, WhenAnyBothResumedExhaustive) {
  // PlainAtomic witnesses: the exploration must reach both the clean
  // loser-withdrawal branch and the stray-completion branch.
  const JoinStats &JS = joinStats();
  std::uint64_t Wins0 = JS.AnyWins.load(std::memory_order_relaxed);
  std::uint64_t Losers0 = JS.AnyLoserCancels.load(std::memory_order_relaxed);
  std::uint64_t Strays0 = JS.AnyStrays.load(std::memory_order_relaxed);
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 1;
  O.Iterations = 400000;
  sc::Result R = sc::explore(O, whenAnyBothResumedRace);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
  EXPECT_GT(JS.AnyWins.load(std::memory_order_relaxed), Wins0);
  EXPECT_GT(JS.AnyLoserCancels.load(std::memory_order_relaxed), Losers0);
  EXPECT_GT(JS.AnyStrays.load(std::memory_order_relaxed), Strays0);
}

TEST(SchedcheckCombinator, WhenAnyBothResumedRandomSweep) {
  sc::Options O;
  O.Strat = sc::Strategy::Random;
  O.Seed = 41;
  O.Iterations = 1200;
  sc::Result R = sc::explore(O, whenAnyBothResumedRace);
  EXPECT_TRUE(R.Ok) << R.Report;
}

/// Zero-deadline whenAnyFor against one racing release: the deadline sweep
/// cancels both pending futures while the release resumes one of them. A
/// failed cancel is a concurrent completion and MUST be promoted to winner
/// (cancel-lost-is-win) — reporting "timed out" while owning the permit is
/// the bug this scenario exists to catch.
void whenAnyZeroDeadlineVsRelease() {
  auto *A = new SmallSem(1, ResumptionMode::Async);
  auto Held = A->acquire();
  sc::check(Held.isImmediate(), "drain failed");
  auto FA = A->acquire();
  auto FB = A->acquire();
  std::optional<WhenAnyResult<Unit>> R;
  sc::Thread T1 = sc::spawn([&] { A->release(); });
  sc::Thread T2 = sc::spawn([&] {
    Future<Unit> *Futs[2] = {&FA, &FB};
    R = whenAnyFor(Futs, 2, 0ns);
  });
  T1.join();
  T2.join();
  // The released permit is with the winner, with a stray, or back in the
  // pool (both cancels won before the release arrived).
  int Owned = R.has_value() ? 1 : 0;
  for (Future<Unit> *F : {&FA, &FB})
    if (!(R.has_value() && F == (R->Index == 0 ? &FA : &FB)) &&
        F->status() == FutureStatus::Completed)
      ++Owned;
  sc::check(Owned <= 1, "one release produced two owned permits");
  sc::check(A->availablePermits() == 1 - Owned,
            "permit lost or duplicated in the deadline sweep");
  if (Owned)
    A->release();
  sc::check(A->availablePermits() == 1, "drain-back failed");
  delete A;
}

TEST(SchedcheckCombinator, WhenAnyZeroDeadlineExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 2;
  O.Iterations = 400000;
  sc::Result R = sc::explore(O, whenAnyZeroDeadlineVsRelease);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

/// Generous deadline with a guaranteed releaser: exercises the board's
/// timed epoch-wait (sc::blockOnWordTimed virtual time) on the park path;
/// the join must always commit the lone completion, never time out.
void whenAnyGenerousDeadline() {
  auto *A = new SmallSem(1, ResumptionMode::Async);
  auto Held = A->acquire();
  auto FA = A->acquire();
  std::optional<WhenAnyResult<Unit>> R;
  sc::Thread T1 = sc::spawn([&] { A->release(); });
  sc::Thread T2 = sc::spawn([&] {
    Future<Unit> *Futs[1] = {&FA};
    R = whenAnyFor(Futs, 1, 10s);
  });
  T1.join();
  T2.join();
  sc::check(R.has_value() && R->Index == 0,
            "guaranteed release: the deadline must never win");
  A->release();
  sc::check(A->availablePermits() == 1, "permit lost");
  delete A;
}

TEST(SchedcheckCombinator, WhenAnyGenerousDeadlineExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 1;
  O.Iterations = 400000;
  sc::Result R = sc::explore(O, whenAnyGenerousDeadline);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

// --------------------------------------------------------------------------
// whenAll: settle counting, no cancellation.
// --------------------------------------------------------------------------

/// One future resumes, the other is cancelled by a third party; whenAll
/// must wake on the LAST settle (not the first — the whenAny early-fire
/// bug) and report exactly one completion.
void whenAllResumeAndCancel() {
  auto *A = new SmallSem(1, ResumptionMode::Async);
  auto Held = A->acquire();
  auto FA = A->acquire();
  auto FB = A->acquire();
  int Completed = -1;
  sc::Thread T1 = sc::spawn([&] { A->release(); });
  sc::Thread T2 = sc::spawn([&] { (void)FB.cancel(); });
  sc::Thread T3 = sc::spawn([&] { Completed = whenAll(FA, FB); });
  T1.join();
  T2.join();
  T3.join();
  // FB's cancel can lose to the release's resume: then FB completed and
  // owns the permit instead of FA being the only completion.
  int Owns = 0;
  for (Future<Unit> *F : {&FA, &FB})
    if (F->status() == FutureStatus::Completed)
      ++Owns;
  sc::check(Completed == Owns, "whenAll miscounted completions");
  sc::check(Owns == 1, "one release must complete exactly one future");
  sc::check(A->availablePermits() == 0, "completed future owns the permit");
  A->release();
  sc::check(A->availablePermits() == 1, "drain-back failed");
  delete A;
}

TEST(SchedcheckCombinator, WhenAllResumeAndCancelExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 1;
  O.Iterations = 400000;
  sc::Result R = sc::explore(O, whenAllResumeAndCancel);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

// --------------------------------------------------------------------------
// CancelScope: scope-cancel vs deadline vs resume, and parent fan-out.
// --------------------------------------------------------------------------

/// The three-way race the scope composes: awaitFor(F, 0) runs the deadline
/// cancel, a second thread runs scope.cancel(), a third releases. All
/// three ride the same result-word CAS; the permit ends owned exactly once
/// (by the await's value if a resume won, else by the pool).
void scopeCancelVsTimeoutVsResume() {
  auto *A = new SmallSem(1, ResumptionMode::Async);
  auto Held = A->acquire();
  auto FA = A->acquire();
  auto *Scope = new CancelScope();
  std::optional<Unit> V;
  sc::Thread T1 = sc::spawn([&] { V = Scope->awaitFor(FA, 0ns); });
  sc::Thread T2 = sc::spawn([&] { Scope->cancel(); });
  sc::Thread T3 = sc::spawn([&] { A->release(); });
  T1.join();
  T2.join();
  T3.join();
  sc::check(V.has_value() == (FA.status() == FutureStatus::Completed),
            "awaitFor's report disagrees with the future's state");
  sc::check(A->availablePermits() == (V.has_value() ? 0 : 1),
            "permit lost or duplicated in the three-way race");
  if (V.has_value())
    A->release();
  sc::check(A->availablePermits() == 1, "drain-back failed");
  delete Scope; // all entries removed by awaitFor
  delete A;
}

TEST(SchedcheckCombinator, ScopeCancelVsTimeoutVsResumeExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 1;
  O.Iterations = 400000;
  sc::Result R = sc::explore(O, scopeCancelVsTimeoutVsResume);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

TEST(SchedcheckCombinator, ScopeCancelVsTimeoutVsResumeRandomSweep) {
  sc::Options O;
  O.Strat = sc::Strategy::Random;
  O.Seed = 43;
  O.Iterations = 1200;
  sc::Result R = sc::explore(O, scopeCancelVsTimeoutVsResume);
  EXPECT_TRUE(R.Ok) << R.Report;
}

/// Parent cancel fans out to a child scope while the child registers a
/// future: whichever order the spinlocked registry serializes, the future
/// ends cancelled (by the sweep, or immediately by cancelled-before-add)
/// and the registry never loses an entry.
void parentCancelVsChildAdd() {
  auto *A = new SmallSem(1, ResumptionMode::Async);
  auto Held = A->acquire();
  auto FA = A->acquire();
  auto *Parent = new CancelScope();
  auto *Child = new CancelScope(Parent);
  CancelScope::Entry *E = nullptr;
  sc::Thread T1 = sc::spawn([&] { E = Child->add(FA); });
  sc::Thread T2 = sc::spawn([&] { Parent->cancel(); });
  T1.join();
  T2.join();
  sc::check(Child->isCancelled(), "parent cancel must reach the child");
  sc::check(FA.status() == FutureStatus::Cancelled,
            "registered future escaped the cancel fan-out");
  Child->remove(E);
  delete Child;
  delete Parent;
  A->release();
  sc::check(A->availablePermits() == 1, "cancelled acquire kept the permit");
  delete A;
}

TEST(SchedcheckCombinator, ParentCancelVsChildAddExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 1;
  O.Iterations = 400000;
  sc::Result R = sc::explore(O, parentCancelVsChildAdd);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

// --------------------------------------------------------------------------
// TimerQueue mode of timedAwait: the modelled paths.
// --------------------------------------------------------------------------

/// Zero-deadline tryAcquireFor in TimerQueue mode races a release. The
/// non-positive deadline expires inline in the caller (never touching the
/// unmodelled timer thread), so the full cancel-vs-resume CAS race is
/// explored; the permit balances whichever side wins.
void queuedZeroDeadlineVsRelease() {
  auto *Sem = new SmallSem(1, ResumptionMode::Async);
  auto Held = Sem->acquire();
  sc::check(Held.isImmediate(), "drain failed");
  bool Got = false;
  sc::Thread T1 = sc::spawn([&] {
    TimedWaitModeScope Mode(TimedWaitVia::TimerQueue);
    Got = Sem->tryAcquireFor(0ns);
  });
  sc::Thread T2 = sc::spawn([&] { Sem->release(); });
  T1.join();
  T2.join();
  sc::check(Sem->availablePermits() == (Got ? 0 : 1),
            "permit lost or duplicated in the inline-expiry race");
  if (Got)
    Sem->release();
  sc::check(Sem->availablePermits() == 1, "drain-back failed");
  delete Sem;
}

TEST(SchedcheckCombinator, QueuedZeroDeadlineRaceExhaustive) {
  // Witness both outcomes: the inline cancel winning (timeout) and the
  // resume winning (rescue).
  const TimedWaitStats &TS = timedWaitStats();
  std::uint64_t Timeouts0 = TS.Timeouts.load(std::memory_order_relaxed);
  std::uint64_t Rescues0 = TS.Rescues.load(std::memory_order_relaxed);
  const TimerStats &TQ = timerStats();
  std::uint64_t Inline0 = TQ.InlineExpiries.load(std::memory_order_relaxed);
  std::uint64_t Sched0 = TQ.Scheduled.load(std::memory_order_relaxed);
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 2;
  O.Iterations = 400000;
  sc::Result R = sc::explore(O, queuedZeroDeadlineVsRelease);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
  EXPECT_GT(TS.Timeouts.load(std::memory_order_relaxed), Timeouts0);
  EXPECT_GT(TS.Rescues.load(std::memory_order_relaxed), Rescues0);
  EXPECT_GT(TQ.InlineExpiries.load(std::memory_order_relaxed), Inline0);
  EXPECT_EQ(TQ.Scheduled.load(std::memory_order_relaxed), Sched0)
      << "modelled threads must never arm the OS timer thread";
}

/// Positive deadline in TimerQueue mode from a modelled thread: the mode
/// must fall back to the per-op modelled timed futex (virtual time), and
/// with a guaranteed releaser the acquire always succeeds.
void queuedGenerousDeadlineFallsBackToVirtualTime() {
  auto *Sem = new SmallSem(1, ResumptionMode::Async);
  auto Held = Sem->acquire();
  bool Got = false;
  sc::Thread T1 = sc::spawn([&] {
    TimedWaitModeScope Mode(TimedWaitVia::TimerQueue);
    Got = Sem->tryAcquireFor(10s);
  });
  sc::Thread T2 = sc::spawn([&] { Sem->release(); });
  T1.join();
  T2.join();
  sc::check(Got, "guaranteed release: the deadline must never win");
  Sem->release();
  sc::check(Sem->availablePermits() == 1, "permit lost");
  delete Sem;
}

TEST(SchedcheckCombinator, QueuedGenerousDeadlineExhaustive) {
  const TimerStats &TQ = timerStats();
  std::uint64_t Sched0 = TQ.Scheduled.load(std::memory_order_relaxed);
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 1;
  O.Iterations = 400000;
  sc::Result R = sc::explore(O, queuedGenerousDeadlineFallsBackToVirtualTime);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
  EXPECT_EQ(TQ.Scheduled.load(std::memory_order_relaxed), Sched0)
      << "modelled threads must never arm the OS timer thread";
}

// --------------------------------------------------------------------------
// Happens-before (DESIGN.md §11): the join board must carry the resumer's
// plain writes to the combinator's caller — a relaxed downgrade in the
// settle counter, the winner CAS, or the epoch ring fails this run.
// --------------------------------------------------------------------------

void whenAnyCarriesPayloadHb() {
  auto *A = new SmallSem(1, ResumptionMode::Async);
  auto *D = new Shared<int>(0);
  auto Held = A->acquire();
  auto FA = A->acquire();
  sc::Thread T1 = sc::spawn([&] {
    D->set(123); // plain write, ordered only by the release that follows
    A->release();
  });
  sc::Thread T2 = sc::spawn([&] {
    auto R = whenAny(FA);
    sc::check(R.has_value() && R->Index == 0, "lone resume must win");
    sc::check(D->get() == 123, "payload not visible after whenAny");
  });
  T1.join();
  T2.join();
  A->release();
  delete D;
  delete A;
}

TEST(SchedcheckCombinator, WhenAnyCarriesHappensBeforeToPayload) {
  sc::Options O;
  O.Strat = sc::Strategy::Random;
  O.Seed = 47;
  O.Iterations = 800;
  O.HbCheck = true;
  sc::Result R = sc::explore(O, whenAnyCarriesPayloadHb);
  EXPECT_TRUE(R.Ok) << R.Report;
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
