//===- tests/schedcheck_ebr_test.cpp - model-checked EBR safety -----------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Grace-period safety of the epoch-based reclamation (src/reclaim/Ebr.h)
/// under the deterministic scheduler: a pinned reader must never observe a
/// reclaimed object, no matter how epoch advances interleave with the pin.
/// The destructor raises a flag the reader checks *inside* its guard; with
/// correct three-epoch discipline the flag can only rise after the reader
/// unpins.
///
//===----------------------------------------------------------------------===//

#include "reclaim/Ebr.h"
#include "schedcheck/Sched.h"
#include "support/Atomic.h"

#include <gtest/gtest.h>

using namespace cqs;

namespace {

/// Plain (non-atomic) Freed flag: logical threads are serialized, and the
/// reader deliberately checks it with no schedule point between the check
/// and the dereference, so the pair is atomic under the model. The flag
/// must outlive the execution: a node that survives the scenario's forced
/// advances is reclaimed by the scheduler's between-executions EBR drain,
/// and its destructor still writes the flag then — hence static storage,
/// re-armed at the top of each execution.
struct TrackedNode {
  explicit TrackedNode(bool *Freed) : Freed(Freed) { *Freed = false; }
  ~TrackedNode() {
    Value = -1;
    *Freed = true;
  }
  int Value = 42;
  bool *Freed;
};

/// Reader pins, loads the shared pointer, yields (inviting the reclaimer
/// to run), then dereferences. Reclaimer swaps the pointer out, retires
/// the node and pushes the epoch as hard as it can. If EBR ever reclaimed
/// while the reader is pinned, Freed would be true at the dereference.
void pinVsAdvance() {
  static bool FreedFlag = false;
  bool *Freed = &FreedFlag;
  auto *Ptr = new Atomic<TrackedNode *>(new TrackedNode(Freed));
  sc::Thread Reader = sc::spawn([&] {
    ebr::Guard G;
    TrackedNode *N = Ptr->load(std::memory_order_seq_cst);
    if (N) {
      sc::yield(); // widen the race window
      sc::check(!*Freed, "node reclaimed while a reader is pinned");
      sc::check(N->Value == 42, "pinned reader saw poisoned memory");
    }
  });
  sc::Thread Reclaimer = sc::spawn([&] {
    TrackedNode *Old = Ptr->exchange(nullptr, std::memory_order_seq_cst);
    {
      ebr::Guard G;
      ebr::retireObject(Old);
    }
    // Three forced advance attempts: enough rounds for the three-epoch
    // rule to fire if (and only if) no reader pin is in the way.
    for (int I = 0; I < 3; ++I)
      (void)ebr::tryAdvanceForTesting();
  });
  Reader.join();
  Reclaimer.join();
  // After both threads quiesce the node may or may not have been freed
  // (remaining bags drain between executions); no invariant beyond the
  // in-flight ones above.
  delete Ptr;
}

TEST(SchedcheckEbr, PinVsAdvanceExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 2;
  O.Iterations = 200000;
  sc::Result R = sc::explore(O, pinVsAdvance);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

TEST(SchedcheckEbr, PinVsAdvanceRandomSweep) {
  sc::Options O;
  O.Strat = sc::Strategy::Random;
  O.Seed = 13;
  O.Iterations = 2000;
  sc::Result R = sc::explore(O, pinVsAdvance);
  EXPECT_TRUE(R.Ok) << R.Report;
}

/// Two pinned readers chase the pointer while the reclaimer retires two
/// nodes in a row — exercises advance attempts interleaved between two
/// independent pins.
void twoReadersOneReclaimer() {
  static bool FreedFlag = false;
  bool *FreedA = &FreedFlag;
  auto *Ptr = new Atomic<TrackedNode *>(new TrackedNode(FreedA));
  auto Reader = [&] {
    ebr::Guard G;
    TrackedNode *N = Ptr->load(std::memory_order_seq_cst);
    if (N) {
      sc::check(!*FreedA, "node reclaimed under a live pin");
      sc::check(N->Value == 42, "reader saw poisoned memory");
    }
  };
  sc::Thread R1 = sc::spawn(Reader);
  sc::Thread R2 = sc::spawn(Reader);
  sc::Thread Rec = sc::spawn([&] {
    TrackedNode *Old = Ptr->exchange(nullptr, std::memory_order_seq_cst);
    {
      ebr::Guard G;
      ebr::retireObject(Old);
    }
    for (int I = 0; I < 3; ++I)
      (void)ebr::tryAdvanceForTesting();
  });
  R1.join();
  R2.join();
  Rec.join();
  delete Ptr;
}

TEST(SchedcheckEbr, TwoReadersOneReclaimerExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 1;
  O.Iterations = 200000;
  sc::Result R = sc::explore(O, twoReadersOneReclaimer);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

// --------------------------------------------------------------------------
// Happens-before validation (DESIGN.md §11): the payload of a published
// node and the destructor's poison write, both race-checked via
// cqs::Shared. The grace period is not just "the free ran later in this
// interleaving" — the epoch protocol's declared memory orders must build
// an HB edge from every reader's access to the eventual free, or this run
// fails with the two sites.
// --------------------------------------------------------------------------

struct HbNode {
  Shared<int> Value{42};
  ~HbNode() { Value.set(-1); }
};

void graceperiodCarriesHb() {
  auto *Ptr = new Atomic<HbNode *>(new HbNode);
  sc::Thread Reader = sc::spawn([&] {
    ebr::Guard G;
    HbNode *N = Ptr->load(std::memory_order_acquire);
    if (N) {
      sc::yield(); // widen the window toward the reclaimer
      sc::check(N->Value.get() == 42, "reader saw poisoned payload");
    }
  });
  sc::Thread Reclaimer = sc::spawn([&] {
    HbNode *Old = Ptr->exchange(nullptr, std::memory_order_acq_rel);
    {
      ebr::Guard G;
      ebr::retireObject(Old);
    }
    // Push the epoch: if the three-epoch rule lets the free run now, its
    // Value.set(-1) must be HB-after the reader's get() or the race check
    // fires. Nodes that survive are drained between executions, outside
    // modelled threads, where the checker is inert by design.
    for (int I = 0; I < 3; ++I)
      (void)ebr::tryAdvanceForTesting();
  });
  Reader.join();
  Reclaimer.join();
  delete Ptr;
}

TEST(SchedcheckEbr, GracePeriodCarriesHappensBefore) {
  sc::Options O;
  O.Strat = sc::Strategy::Random;
  O.Seed = 17;
  O.Iterations = 800;
  O.HbCheck = true;
  sc::Result R = sc::explore(O, graceperiodCarriesHb);
  EXPECT_TRUE(R.Ok) << R.Report;
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
