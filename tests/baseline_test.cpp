//===- tests/baseline_test.cpp - comparator-correctness tests -------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The baselines must be *correct* for the benchmark comparisons to mean
/// anything: mutual exclusion for every lock, permit accounting for the
/// semaphores, element conservation for the queues, and release-all
/// semantics for the latch and barriers.
///
//===----------------------------------------------------------------------===//

#include "baseline/Aqs.h"
#include "baseline/BlockingQueue.h"
#include "baseline/ClhLock.h"
#include "baseline/CyclicBarrier.h"
#include "baseline/LegacyMutex.h"
#include "baseline/McsLock.h"
#include "baseline/SpinBarrier.h"
#include "reclaim/Ebr.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

using namespace cqs;

namespace {

/// Generic mutual-exclusion stress for anything with lock()/unlock().
template <typename LockT>
void mutualExclusionStress(LockT &L, int Threads, int Ops) {
  std::atomic<int> InCritical{0};
  long Counter = 0;
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T) {
    Ts.emplace_back([&] {
      for (int I = 0; I < Ops; ++I) {
        L.lock();
        ASSERT_EQ(InCritical.fetch_add(1), 0) << "mutual exclusion violated";
        ++Counter;
        InCritical.fetch_sub(1);
        L.unlock();
      }
    });
  }
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Counter, static_cast<long>(Threads) * Ops);
}

TEST(ClhLock, MutualExclusionStress) {
  ClhLock L;
  mutualExclusionStress(L, 6, 3000);
}

TEST(McsLock, MutualExclusionStress) {
  McsLock L;
  mutualExclusionStress(L, 6, 3000);
}

TEST(AqsLock, UnfairMutualExclusionStress) {
  AqsLock L(/*Fair=*/false);
  mutualExclusionStress(L, 6, 3000);
}

TEST(AqsLock, FairMutualExclusionStress) {
  AqsLock L(/*Fair=*/true);
  mutualExclusionStress(L, 6, 3000);
}

TEST(AqsLock, TryLock) {
  AqsLock L(/*Fair=*/false);
  EXPECT_TRUE(L.tryLock());
  EXPECT_FALSE(L.tryLock());
  L.unlock();
  EXPECT_TRUE(L.tryLock());
  L.unlock();
}

TEST(AqsSemaphore, PermitAccountingStress) {
  for (bool Fair : {false, true}) {
    constexpr int K = 3;
    AqsSemaphore S(K, Fair);
    std::atomic<int> Held{0};
    std::atomic<int> MaxSeen{0};
    std::vector<std::thread> Ts;
    for (int T = 0; T < 6; ++T) {
      Ts.emplace_back([&] {
        for (int I = 0; I < 1500; ++I) {
          S.acquire();
          int Now = Held.fetch_add(1) + 1;
          int Max = MaxSeen.load();
          while (Now > Max && !MaxSeen.compare_exchange_weak(Max, Now)) {
          }
          Held.fetch_sub(1);
          S.release();
        }
      });
    }
    for (auto &T : Ts)
      T.join();
    EXPECT_LE(MaxSeen.load(), K) << "fair=" << Fair;
    EXPECT_EQ(S.availablePermits(), K) << "fair=" << Fair;
  }
}

TEST(AqsSemaphore, TryAcquire) {
  AqsSemaphore S(1, /*Fair=*/false);
  EXPECT_TRUE(S.tryAcquire());
  EXPECT_FALSE(S.tryAcquire());
  S.release();
  EXPECT_EQ(S.availablePermits(), 1);
}

TEST(AqsCountDownLatch, ReleasesAllWaiters) {
  AqsCountDownLatch L(4);
  std::atomic<int> Released{0};
  std::vector<std::thread> Waiters;
  for (int W = 0; W < 5; ++W) {
    Waiters.emplace_back([&] {
      L.await();
      ASSERT_EQ(L.count(), 0);
      Released.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(Released.load(), 0);
  for (int I = 0; I < 4; ++I)
    L.countDown();
  for (auto &T : Waiters)
    T.join();
  EXPECT_EQ(Released.load(), 5);
  L.await(); // open latch: must not block
  L.countDown(); // extra countDown tolerated
}

TEST(CyclicBarrierBaseline, PhasesSynchronize) {
  constexpr int Parties = 4;
  constexpr int Phases = 200;
  CyclicBarrierBaseline B(Parties);
  // Atomics: peers legitimately read a slot while its owner is already
  // writing the next phase into it.
  std::vector<std::atomic<int>> Progress(Parties);
  for (auto &P : Progress)
    P.store(0);
  std::vector<std::thread> Ts;
  for (int P = 0; P < Parties; ++P) {
    Ts.emplace_back([&, P] {
      for (int Phase = 0; Phase < Phases; ++Phase) {
        Progress[P].store(Phase, std::memory_order_release);
        B.arriveAndWait();
        // After the barrier, nobody can be more than one phase behind.
        for (int Q = 0; Q < Parties; ++Q)
          ASSERT_GE(Progress[Q].load(std::memory_order_acquire), Phase);
      }
    });
  }
  for (auto &T : Ts)
    T.join();
}

TEST(SpinBarrier, PhasesSynchronize) {
  constexpr int Parties = 4;
  constexpr int Phases = 200;
  SpinBarrier B(Parties);
  std::atomic<int> Arrived{0};
  std::vector<std::thread> Ts;
  for (int P = 0; P < Parties; ++P) {
    Ts.emplace_back([&] {
      for (int Phase = 0; Phase < Phases; ++Phase) {
        Arrived.fetch_add(1);
        B.arriveAndWait();
        ASSERT_GE(Arrived.load(), (Phase + 1) * Parties);
      }
    });
  }
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Arrived.load(), Parties * Phases);
}

template <typename QueueT>
void queueConservationStress(QueueT &Q, std::vector<int> &Arena) {
  const int Elements = static_cast<int>(Arena.size());
  for (int I = 0; I < Elements; ++I)
    Q.put(&Arena[I]);

  constexpr int Threads = 6;
  constexpr int Ops = 2000;
  std::atomic<std::uint32_t> HeldMask{0};
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T) {
    Ts.emplace_back([&] {
      for (int I = 0; I < Ops; ++I) {
        int *E = Q.take();
        int Idx = static_cast<int>(E - Arena.data());
        ASSERT_GE(Idx, 0);
        ASSERT_LT(Idx, Elements);
        std::uint32_t Bit = 1u << Idx;
        ASSERT_EQ(HeldMask.fetch_or(Bit) & Bit, 0u) << "element held twice";
        HeldMask.fetch_and(~Bit);
        Q.put(E);
      }
    });
  }
  for (auto &T : Ts)
    T.join();

  std::set<int *> Final;
  for (int I = 0; I < Elements; ++I)
    EXPECT_TRUE(Final.insert(Q.take()).second);
  EXPECT_EQ(Final.size(), static_cast<std::size_t>(Elements));
}

TEST(FairArrayBlockingQueue, ConservationStress) {
  std::vector<int> Arena(3);
  FairArrayBlockingQueue<int *> Q(8);
  queueConservationStress(Q, Arena);
}

TEST(UnfairArrayBlockingQueue, ConservationStress) {
  std::vector<int> Arena(3);
  UnfairArrayBlockingQueue<int *> Q(8);
  queueConservationStress(Q, Arena);
}

TEST(LinkedBlockingQueue, ConservationStress) {
  std::vector<int> Arena(3);
  LinkedBlockingQueueBaseline<int *> Q;
  queueConservationStress(Q, Arena);
}

TEST(LinkedBlockingQueue, FifoWhenSequential) {
  std::vector<int> Arena(3);
  LinkedBlockingQueueBaseline<int *> Q;
  for (int I = 0; I < 3; ++I)
    Q.put(&Arena[I]);
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(Q.take(), &Arena[I]);
}

TEST(LegacyCoroutineMutex, ImmediateAndHandoff) {
  LegacyCoroutineMutex M;
  auto A = M.lock();
  EXPECT_TRUE(A.isImmediate());
  auto B = M.lock();
  EXPECT_EQ(B.status(), FutureStatus::Pending);
  M.unlock();
  EXPECT_EQ(B.status(), FutureStatus::Completed);
  M.unlock();
  EXPECT_FALSE(M.isLockedForTesting());
}

TEST(LegacyCoroutineMutex, MutualExclusionStress) {
  LegacyCoroutineMutex M;
  std::atomic<int> InCritical{0};
  long Counter = 0;
  std::vector<std::thread> Ts;
  for (int T = 0; T < 6; ++T) {
    Ts.emplace_back([&] {
      for (int I = 0; I < 3000; ++I) {
        auto F = M.lock();
        ASSERT_TRUE(F.blockingGet().has_value());
        ASSERT_EQ(InCritical.fetch_add(1), 0);
        ++Counter;
        InCritical.fetch_sub(1);
        M.unlock();
      }
    });
  }
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Counter, 6L * 3000);
  EXPECT_FALSE(M.isLockedForTesting());
}

TEST(LegacyCoroutineMutex, WaitersServedFifo) {
  LegacyCoroutineMutex M;
  auto Holder = M.lock();
  std::vector<LegacyCoroutineMutex::FutureType> Waiters;
  for (int I = 0; I < 8; ++I)
    Waiters.push_back(M.lock());
  for (int I = 0; I < 8; ++I) {
    M.unlock();
    for (int J = 0; J < 8; ++J)
      EXPECT_EQ(Waiters[J].status(), J <= I ? FutureStatus::Completed
                                            : FutureStatus::Pending);
  }
  M.unlock();
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
