//===- tests/timed_stress_test.cpp - timeout-vs-resume conservation -------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Stress the cancel-vs-resume race behind every timed operation with
/// deadlines tuned to expire *while* resumers are active, then check the
/// only property that matters: conservation. A tryAcquireFor that reports
/// success owns exactly one permit; one that reports timeout owns nothing —
/// so after every thread quiesces the permit/element counts must balance
/// exactly. A single leaked rescue (cancel lost, success not reported)
/// or double grant shows up as an off-by-one here.
///
/// Deadlines mix three regimes per iteration: zero (pure poll, maximum
/// cancel pressure), microseconds (expires mid-handoff — the race window),
/// and milliseconds (usually succeeds under this contention).
///
//===----------------------------------------------------------------------===//

#include "sync/Channel.h"
#include "sync/ChannelV2.h"
#include "sync/Pool.h"
#include "sync/RwMutex.h"
#include "sync/Semaphore.h"

#include "reclaim/Ebr.h"
#include "support/Backoff.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

using namespace cqs;
using namespace std::chrono_literals;

namespace {

/// One deadline from the three-regime mix described in the file comment.
std::chrono::nanoseconds mixedDeadline(SplitMix64 &R) {
  switch (R.nextBelow(3)) {
  case 0:
    return 0ns;
  case 1:
    return std::chrono::nanoseconds(1 + R.nextBelow(20000)); // the race window
  default:
    return 2ms;
  }
}

/// Holds the acquired resource long enough that the other threads' permits
/// run out and their short deadlines genuinely expire. Without this the
/// instant-release fast path never queues anyone and the timeout branch
/// goes unexercised.
void holdBriefly(SplitMix64 &R) {
  for (std::uint64_t I = 0, N = R.nextBelow(300); I < N; ++I)
    cpuRelax();
}

TEST(TimedStress, SemaphorePermitsConserved) {
  constexpr std::int64_t Permits = 4;
  constexpr int Threads = 8;
  constexpr int Iters = 20000;
  Semaphore S(Permits);
  std::atomic<std::uint64_t> Successes{0}, Timeouts{0};
  std::atomic<std::int64_t> Held{0};

  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T) {
    Ts.emplace_back([&, T] {
      SplitMix64 R(0x5eed + T);
      std::uint64_t Ok = 0, Miss = 0;
      for (int I = 0; I < Iters; ++I) {
        if (S.tryAcquireFor(mixedDeadline(R))) {
          std::int64_t H = Held.fetch_add(1) + 1;
          ASSERT_LE(H, Permits) << "more holders than permits";
          ++Ok;
          holdBriefly(R);
          Held.fetch_sub(1);
          S.release();
        } else {
          ++Miss;
        }
      }
      Successes.fetch_add(Ok);
      Timeouts.fetch_add(Miss);
    });
  }
  for (auto &T : Ts)
    T.join();

  EXPECT_EQ(S.availablePermits(), Permits)
      << "a timed acquire leaked or double-counted a permit";
  // Under 8 threads on 4 permits both outcomes must occur; a zero on
  // either side means the deadline mix stopped exercising the race.
  EXPECT_GT(Successes.load(), 0u);
  EXPECT_GT(Timeouts.load(), 0u);
}

TEST(TimedStress, BufferedChannelElementsConserved) {
  constexpr int Producers = 3, Consumers = 3;
  constexpr int PerProducer = 8000;
  BufferedChannel<int> Ch(2);
  std::atomic<std::uint64_t> Sent{0};
  std::atomic<std::uint64_t> Received{0};
  std::atomic<std::uint64_t> SentSum{0}, ReceivedSum{0};
  std::atomic<bool> ProducersDone{false};

  std::vector<std::thread> Ts;
  for (int P = 0; P < Producers; ++P) {
    Ts.emplace_back([&, P] {
      SplitMix64 R(0xabc + P);
      for (int I = 0; I < PerProducer; ++I) {
        int V = P * PerProducer + I + 1;
        if (Ch.sendFor(V, mixedDeadline(R))) {
          Sent.fetch_add(1);
          SentSum.fetch_add(static_cast<std::uint64_t>(V));
        }
      }
    });
  }
  for (int C = 0; C < Consumers; ++C) {
    Ts.emplace_back([&, C] {
      SplitMix64 R(0xdef + C);
      for (;;) {
        if (std::optional<int> V = Ch.receiveFor(mixedDeadline(R))) {
          Received.fetch_add(1);
          ReceivedSum.fetch_add(static_cast<std::uint64_t>(*V));
        } else if (ProducersDone.load(std::memory_order_acquire) &&
                   Ch.balanceForTesting() <= 0) {
          return;
        }
      }
    });
  }
  for (int P = 0; P < Producers; ++P)
    Ts[P].join();
  ProducersDone.store(true, std::memory_order_release);
  for (std::size_t I = Producers; I < Ts.size(); ++I)
    Ts[I].join();

  // Stragglers a consumer's timeout refused are re-delivered to the
  // buffer; drain them so the books close.
  while (std::optional<int> V = Ch.tryReceive()) {
    Received.fetch_add(1);
    ReceivedSum.fetch_add(static_cast<std::uint64_t>(*V));
  }
  EXPECT_EQ(Received.load(), Sent.load())
      << "an element was lost or duplicated across the timeout race";
  EXPECT_EQ(ReceivedSum.load(), SentSum.load());
}

TEST(TimedStress, RendezvousChannelNothingLeaked) {
  constexpr int Pairs = 3;
  constexpr int PerThread = 6000;
  RendezvousChannel<int> Ch;
  std::atomic<std::uint64_t> Sent{0}, Received{0};
  std::atomic<bool> SendersDone{false};

  std::vector<std::thread> Ts;
  for (int P = 0; P < Pairs; ++P) {
    Ts.emplace_back([&, P] {
      SplitMix64 R(0x111 + P);
      for (int I = 0; I < PerThread; ++I)
        if (Ch.sendFor(I + 1, mixedDeadline(R)))
          Sent.fetch_add(1);
    });
    Ts.emplace_back([&, P] {
      SplitMix64 R(0x222 + P);
      for (;;) {
        if (Ch.receiveFor(mixedDeadline(R)))
          Received.fetch_add(1);
        else if (SendersDone.load(std::memory_order_acquire) &&
                 Ch.balanceForTesting() <= 0)
          return;
      }
    });
  }
  for (std::size_t I = 0; I < Ts.size(); I += 2)
    Ts[I].join();
  SendersDone.store(true, std::memory_order_release);
  for (std::size_t I = 1; I < Ts.size(); I += 2)
    Ts[I].join();
  // A refused receive re-buffers its element even on a capacity-0
  // channel (transient over-capacity is documented); drain those.
  while (Ch.tryReceive())
    Received.fetch_add(1);

  EXPECT_EQ(Received.load(), Sent.load());
  EXPECT_EQ(Ch.balanceForTesting(), 0);
}

TEST(TimedStress, PoolElementsConserved) {
  constexpr int Elements = 4;
  constexpr int Threads = 8;
  constexpr int Iters = 20000;
  QueueBlockingPool<int> P;
  for (int I = 0; I < Elements; ++I)
    P.put(I + 1);

  std::atomic<std::uint64_t> Hits{0}, Misses{0};
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T) {
    Ts.emplace_back([&, T] {
      SplitMix64 R(0x777 + T);
      for (int I = 0; I < Iters; ++I) {
        if (std::optional<int> E = P.retrieveFor(mixedDeadline(R))) {
          ASSERT_GE(*E, 1);
          ASSERT_LE(*E, Elements);
          Hits.fetch_add(1);
          holdBriefly(R);
          P.put(*E);
        } else {
          Misses.fetch_add(1);
        }
      }
    });
  }
  for (auto &T : Ts)
    T.join();

  EXPECT_EQ(P.sizeForTesting(), Elements);
  std::vector<int> Drained;
  while (std::optional<int> E = P.tryTake())
    Drained.push_back(*E);
  std::sort(Drained.begin(), Drained.end());
  ASSERT_EQ(Drained.size(), static_cast<std::size_t>(Elements))
      << "pool lost or duplicated an element under timed retrieval";
  for (int I = 0; I < Elements; ++I)
    EXPECT_EQ(Drained[static_cast<std::size_t>(I)], I + 1);
  EXPECT_GT(Hits.load(), 0u);
  EXPECT_GT(Misses.load(), 0u);
}

TEST(TimedStress, RwMutexInvariantsUnderDeadlines) {
  constexpr int Threads = 8;
  constexpr int Iters = 8000;
  RwMutex Rw;
  std::atomic<int> ActiveReaders{0}, ActiveWriters{0};

  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T) {
    Ts.emplace_back([&, T] {
      SplitMix64 R(0x999 + T);
      for (int I = 0; I < Iters; ++I) {
        if (R.nextBelow(4) == 0) {
          if (Rw.tryLockFor(mixedDeadline(R))) {
            ASSERT_EQ(ActiveWriters.fetch_add(1), 0);
            ASSERT_EQ(ActiveReaders.load(), 0);
            ActiveWriters.fetch_sub(1);
            Rw.writeUnlock();
          }
        } else {
          if (Rw.tryLockSharedFor(mixedDeadline(R))) {
            ActiveReaders.fetch_add(1);
            ASSERT_EQ(ActiveWriters.load(), 0);
            ActiveReaders.fetch_sub(1);
            Rw.readUnlock();
          }
        }
      }
    });
  }
  for (auto &T : Ts)
    T.join();

  EXPECT_EQ(Rw.activeReadersForTesting(), 0u);
  EXPECT_FALSE(Rw.writerActiveForTesting());
  EXPECT_EQ(Rw.waitingReadersForTesting(), 0u);
  EXPECT_EQ(Rw.waitingWritersForTesting(), 0u);
}

TEST(TimedStress, ChannelV2ElementsConserved) {
  // Same oracle as the v1 test, on the single-array channel: a sendFor
  // that reports timeout withdrew its element from the cell (in v2 the
  // element lives in the waiter node, so the cancel is one transition —
  // no re-buffered stragglers to drain on the send side).
  constexpr int Producers = 3, Consumers = 3;
  constexpr int PerProducer = 8000;
  BufferedChannelV2<int, 8> Ch(2);
  std::atomic<std::uint64_t> Sent{0}, Received{0};
  std::atomic<std::uint64_t> SentSum{0}, ReceivedSum{0};
  std::atomic<bool> ProducersDone{false};

  std::vector<std::thread> Ts;
  for (int P = 0; P < Producers; ++P) {
    Ts.emplace_back([&, P] {
      SplitMix64 R(0xabc + P);
      for (int I = 0; I < PerProducer; ++I) {
        int V = P * PerProducer + I + 1;
        if (Ch.sendFor(V, mixedDeadline(R))) {
          Sent.fetch_add(1);
          SentSum.fetch_add(static_cast<std::uint64_t>(V));
        }
      }
    });
  }
  for (int C = 0; C < Consumers; ++C) {
    Ts.emplace_back([&, C] {
      SplitMix64 R(0xdef + C);
      for (;;) {
        if (std::optional<int> V = Ch.receiveFor(mixedDeadline(R))) {
          Received.fetch_add(1);
          ReceivedSum.fetch_add(static_cast<std::uint64_t>(*V));
        } else if (ProducersDone.load(std::memory_order_acquire) &&
                   Ch.sizeApproxForTesting() <= 0) {
          return;
        }
      }
    });
  }
  for (int P = 0; P < Producers; ++P)
    Ts[P].join();
  ProducersDone.store(true, std::memory_order_release);
  for (std::size_t I = Producers; I < Ts.size(); ++I)
    Ts[I].join();

  while (std::optional<int> V = Ch.tryReceive()) {
    Received.fetch_add(1);
    ReceivedSum.fetch_add(static_cast<std::uint64_t>(*V));
  }
  EXPECT_EQ(Received.load(), Sent.load())
      << "an element was lost or duplicated across the timeout race";
  EXPECT_EQ(ReceivedSum.load(), SentSum.load());
}

TEST(TimedStress, ChannelV2RendezvousNothingLeaked) {
  constexpr int Pairs = 3;
  constexpr int PerThread = 6000;
  RendezvousChannelV2<int, 8> Ch;
  std::atomic<std::uint64_t> Sent{0}, Received{0};
  std::atomic<bool> SendersDone{false};

  std::vector<std::thread> Ts;
  for (int P = 0; P < Pairs; ++P) {
    Ts.emplace_back([&, P] {
      SplitMix64 R(0x111 + P);
      for (int I = 0; I < PerThread; ++I)
        if (Ch.sendFor(I + 1, mixedDeadline(R)))
          Sent.fetch_add(1);
    });
    Ts.emplace_back([&, P] {
      SplitMix64 R(0x222 + P);
      for (;;) {
        if (Ch.receiveFor(mixedDeadline(R)))
          Received.fetch_add(1);
        else if (SendersDone.load(std::memory_order_acquire) &&
                 Ch.sizeApproxForTesting() <= 0)
          return;
      }
    });
  }
  for (std::size_t I = 0; I < Ts.size(); I += 2)
    Ts[I].join();
  SendersDone.store(true, std::memory_order_release);
  for (std::size_t I = 1; I < Ts.size(); I += 2)
    Ts[I].join();
  // A select/receive that lost after claiming a value re-delivers it;
  // drain any such straggler before closing the books.
  while (Ch.tryReceive())
    Received.fetch_add(1);

  EXPECT_EQ(Received.load(), Sent.load());
}

TEST(TimedStress, ChannelV2SendForVsCloseLeavesNoElementBehind) {
  // The ISSUE-7 satellite oracle: timed senders race close() itself. Every
  // sendFor that reported success put exactly one drainable element in the
  // cells; every timeout/refusal left nothing — even when the deadline
  // expires while the close walk is poisoning the very cell the sender
  // parked in.
  for (int Round = 0; Round < 60; ++Round) {
    BufferedChannelV2<int, 8> Ch(2);
    constexpr int Senders = 4, PerSender = 300;
    std::atomic<std::uint64_t> Accepted{0};
    std::vector<std::thread> Ts;
    for (int T = 0; T < Senders; ++T) {
      Ts.emplace_back([&, T] {
        SplitMix64 R(0x31337 + 64 * Round + T);
        for (int I = 0; I < PerSender; ++I)
          if (Ch.sendFor(T * PerSender + I, mixedDeadline(R)))
            Accepted.fetch_add(1);
      });
    }
    Ts.emplace_back([&, Round] {
      SplitMix64 R(0x4242 + Round);
      holdBriefly(R); // close lands somewhere inside the send storm
      Ch.close();
    });
    std::uint64_t Drained = 0;
    std::thread Consumer([&] {
      SplitMix64 R(0x5555 + Round);
      // Drain concurrently to keep senders parking and resuming, then
      // finish the books after everyone quiesced.
      for (int I = 0; I < PerSender; ++I)
        if (Ch.receiveFor(mixedDeadline(R)))
          ++Drained;
    });
    for (auto &T : Ts)
      T.join();
    Consumer.join();
    while (Ch.tryReceive())
      ++Drained;
    ASSERT_EQ(Drained, Accepted.load())
        << "sendFor-vs-close stranded or lost an element in round " << Round;
  }
}

/// Pure zero-deadline churn: every failed fast-path acquire suspends,
/// observes Pending, and immediately races its cancel() against whatever
/// release() is mid-resume. Conservation is the oracle; the per-branch
/// counters prove both the timeout and the wait path ran. (The *rescue*
/// branch — cancel losing the result-word CAS — is a few instructions
/// wide and cannot be hit reliably by wall-clock stress; schedcheck's
/// exhaustive zero-deadline scenario visits it deterministically and
/// asserts the rescue counter instead.)
TEST(TimedStress, ZeroDeadlineChurnConserves) {
  const TimedWaitStats &TS = timedWaitStats();
  std::uint64_t Waits0 = TS.Waits.load(std::memory_order_relaxed);
  std::uint64_t Timeouts0 = TS.Timeouts.load(std::memory_order_relaxed);
  Semaphore S(1);
  std::vector<std::thread> Ts;
  for (int T = 0; T < 7; ++T) {
    Ts.emplace_back([&, T] {
      SplitMix64 R(0x42 + T);
      for (int I = 0; I < 60000; ++I) {
        if (S.tryAcquireFor(0ns)) {
          holdBriefly(R);
          S.release();
        }
      }
    });
  }
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(S.availablePermits(), 1);
  EXPECT_GT(TS.Waits.load(std::memory_order_relaxed), Waits0);
  EXPECT_GT(TS.Timeouts.load(std::memory_order_relaxed), Timeouts0);
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
