//===- tests/schedcheck_report_test.cpp - checker failure reporting -------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The model checker checking itself: a deliberately buggy two-thread
/// counter must produce a failure verdict whose report names the seed and
/// the racing accesses, and replaying that seed must reproduce the
/// identical event trace. Golden-substring assertions keep the report
/// format honest without freezing every byte of it.
///
/// Only the counter scenario is used for byte-exact trace comparison:
/// its trace contains no heap pointer *values* (addresses are already
/// printed as stable per-run ids), so two runs of the same schedule are
/// byte-identical.
///
//===----------------------------------------------------------------------===//

#include "schedcheck/Sched.h"
#include "support/Atomic.h"

#include <gtest/gtest.h>

#include <string>

using namespace cqs;

namespace {

/// Classic lost-update bug: load, schedule point, store.
struct BuggyCounter {
  Atomic<int> C{0};
  void inc() {
    int V = C.load(std::memory_order_seq_cst);
    C.store(V + 1, std::memory_order_seq_cst);
  }
};

void buggyScenario() {
  auto *Ctr = new BuggyCounter();
  sc::Thread T1 = sc::spawn([Ctr] { Ctr->inc(); });
  sc::Thread T2 = sc::spawn([Ctr] { Ctr->inc(); });
  T1.join();
  T2.join();
  sc::check(Ctr->C.load(std::memory_order_seq_cst) == 2,
            "increment lost: counter != 2");
  delete Ctr;
}

TEST(SchedcheckReport, BuggyCounterVerdictNamesSeedAndRacingAccesses) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.Iterations = 100000;
  sc::Result R = sc::explore(O, buggyScenario);

  ASSERT_FALSE(R.Ok) << "a 2-line data race must be found by bounded DFS";
  EXPECT_NE(R.FailSeed, 0u);

  // The report must carry: the message, the seed (hex, replayable), the
  // replay instructions, and a trace naming the racing load/store with
  // their source locations in *this* file.
  EXPECT_NE(R.Report.find("increment lost"), std::string::npos) << R.Report;
  EXPECT_NE(R.Report.find("seed"), std::string::npos) << R.Report;
  EXPECT_NE(R.Report.find("CQS_SCHEDCHECK_SEED"), std::string::npos)
      << R.Report;
  EXPECT_NE(R.Report.find("trace"), std::string::npos) << R.Report;
  EXPECT_NE(R.Report.find("load"), std::string::npos) << R.Report;
  EXPECT_NE(R.Report.find("store"), std::string::npos) << R.Report;
  EXPECT_NE(R.Report.find("schedcheck_report_test.cpp"), std::string::npos)
      << R.Report;
  // Both logical threads appear in the trace.
  EXPECT_NE(R.Report.find("T1"), std::string::npos) << R.Report;
  EXPECT_NE(R.Report.find("T2"), std::string::npos) << R.Report;

  // Replaying the printed seed reproduces the identical failing trace.
  sc::Options Replay = O;
  Replay.ReplaySeed = R.FailSeed;
  sc::Result R2 = sc::explore(Replay, buggyScenario);
  ASSERT_FALSE(R2.Ok) << "replay of a failing seed must fail again";
  EXPECT_EQ(R2.FailSeed, R.FailSeed);
  EXPECT_EQ(R2.Trace, R.Trace) << "replay must reproduce the trace "
                                  "event-for-event";
}

TEST(SchedcheckReport, RandomAndPctFindTheBugAndReplay) {
  for (sc::Strategy S : {sc::Strategy::Random, sc::Strategy::Pct}) {
    sc::Options O;
    O.Strat = S;
    O.Seed = 42;
    O.Iterations = 2000;
    sc::Result R = sc::explore(O, buggyScenario);
    ASSERT_FALSE(R.Ok) << "strategy " << static_cast<int>(S);
    sc::Options Replay = O;
    Replay.ReplaySeed = R.FailSeed;
    sc::Result R2 = sc::explore(Replay, buggyScenario);
    ASSERT_FALSE(R2.Ok);
    EXPECT_EQ(R2.Trace, R.Trace);
  }
}

TEST(SchedcheckReport, CorrectCounterIsExhaustedByDfs) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.Iterations = 100000;
  sc::Result R = sc::explore(O, [] {
    auto *Ctr = new Atomic<int>(0);
    sc::Thread T1 =
        sc::spawn([Ctr] { Ctr->fetch_add(1, std::memory_order_seq_cst); });
    sc::Thread T2 =
        sc::spawn([Ctr] { Ctr->fetch_add(1, std::memory_order_seq_cst); });
    T1.join();
    T2.join();
    sc::check(Ctr->load(std::memory_order_seq_cst) == 2,
              "atomic increments lost");
    delete Ctr;
  });
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << "a 2-thread fetch_add scenario must fit the DFS bound; ran "
      << R.Executions << " executions, " << R.Truncated << " truncated";
  EXPECT_GT(R.Executions, 1u) << "DFS explored only one schedule";
}

TEST(SchedcheckReport, DeadlockIsDetectedAndReported) {
  sc::Options O;
  O.Strat = sc::Strategy::Random;
  O.Iterations = 1;
  sc::Result R = sc::explore(O, [] {
    auto *Word = new Atomic<std::uint32_t>(0);
    // Nobody ever stores/notifies: the wait can never be satisfied.
    sc::Thread T1 = sc::spawn([Word] { Word->wait(0); });
    T1.join();
    delete Word;
  });
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Report.find("deadlock"), std::string::npos) << R.Report;
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
