//===- tests/batch_resume_test.cpp - batched resume contracts -------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Core resumeBatch contract (one traversal, FIFO, smart-mode skips claim
/// replacements) and its three surfaces: Semaphore::release(n),
/// CountDownLatch::countDown(n) and the channel burst-send. Each surface
/// gets a conservation stress: permits/elements in == permits/elements
/// out, whatever the interleaving.
///
//===----------------------------------------------------------------------===//

#include "core/Cqs.h"
#include "reclaim/Ebr.h"
#include "sync/Channel.h"
#include "sync/CountDownLatch.h"
#include "sync/Semaphore.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace cqs;

namespace {

using IntCqs = Cqs<int, ValueTraits<int>, /*SegmentSize=*/4>;
using IntFut = IntCqs::FutureType;

struct SkipHandler : IntCqs::SmartCancellationHandler {
  bool onCancellation() override { return true; }
  void completeRefusedResume(int) override {}
};

TEST(BatchResume, DeliversFifoAcrossSegments) {
  IntCqs Q;
  std::vector<IntFut> Fs;
  for (int I = 0; I < 10; ++I) // 10 waiters span 3 four-cell segments
    Fs.push_back(Q.suspend());
  std::uint64_t Done =
      Q.resumeBatchWith(10, [](std::uint64_t K) { return 100 + (int)K; });
  EXPECT_EQ(Done, 10u);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(Fs[I].tryGet(), 100 + I) << "FIFO order broken at " << I;
  EXPECT_EQ(CqsStats::read(Q.stats().BatchResumes), 1u);
  EXPECT_EQ(CqsStats::read(Q.stats().BatchedWakeups), 10u);
}

TEST(BatchResume, ZeroAndExcessCounts) {
  IntCqs Q;
  EXPECT_EQ(Q.resumeBatch(0, 7), 0u);
  // More resumes than waiters: the excess becomes deposited values that
  // later suspends consume by elimination (resume-before-suspend).
  IntFut F = Q.suspend();
  EXPECT_EQ(Q.resumeBatch(3, 42), 3u);
  EXPECT_EQ(F.tryGet(), 42);
  for (int I = 0; I < 2; ++I) {
    IntFut E = Q.suspend();
    EXPECT_TRUE(E.isImmediate()) << "deposited value " << I << " not found";
    EXPECT_EQ(E.tryGet(), 42);
  }
}

TEST(BatchResume, SmartModeSkipsCancelledAndClaimsReplacements) {
  SkipHandler H;
  IntCqs Q(CancellationMode::Smart, ResumptionMode::Async, &H);
  std::vector<IntFut> Fs;
  for (int I = 0; I < 12; ++I)
    Fs.push_back(Q.suspend());
  // Cancel an awkward mix: a full middle segment (4-7) plus scattered
  // cells, leaving live waiters 1, 3, 9, 10, 11.
  for (int I : {0, 2, 4, 5, 6, 7, 8})
    ASSERT_TRUE(Fs[I].cancel());
  std::uint64_t Done =
      Q.resumeBatchWith(5, [](std::uint64_t K) { return (int)K; });
  EXPECT_EQ(Done, 5u) << "smart mode must replace every skipped index";
  int Expect = 0;
  for (int I : {1, 3, 9, 10, 11})
    EXPECT_EQ(Fs[I].tryGet(), Expect++) << "live waiter " << I;
}

TEST(BatchResume, SimpleModeCountsCancelledAsFailures) {
  IntCqs Q(CancellationMode::Simple, ResumptionMode::Async);
  std::vector<IntFut> Fs;
  for (int I = 0; I < 6; ++I)
    Fs.push_back(Q.suspend());
  for (int I : {1, 2})
    ASSERT_TRUE(Fs[I].cancel());
  // Batch of 4 covers indices 0..3: one live (0), two cancelled (spent,
  // undelivered), one live (3). Exactly like 4 single resume() calls of
  // which two return false.
  std::uint64_t Done =
      Q.resumeBatchWith(4, [](std::uint64_t K) { return (int)K; });
  EXPECT_EQ(Done, 2u);
  EXPECT_EQ(Fs[0].tryGet(), 0);
  EXPECT_EQ(Fs[3].tryGet(), 1);
}

// --------------------------------------------------------------------------
// Semaphore::release(n)
// --------------------------------------------------------------------------

TEST(BatchRelease, WakesAllWaitersFifo) {
  BasicSemaphore<4> Sem(4);
  for (int I = 0; I < 4; ++I)
    EXPECT_TRUE(Sem.acquire().isImmediate());
  std::vector<BasicSemaphore<4>::FutureType> Ws;
  for (int I = 0; I < 4; ++I) {
    Ws.push_back(Sem.acquire());
    EXPECT_FALSE(Ws.back().isImmediate());
  }
  Sem.release(4);
  for (auto &W : Ws)
    EXPECT_EQ(W.status(), FutureStatus::Completed);
  EXPECT_EQ(Sem.availablePermits(), 0) << "permits must balance";
  Sem.release(4);
  EXPECT_EQ(Sem.availablePermits(), 4);
}

TEST(BatchRelease, PartialWakeBanksRemainder) {
  Semaphore Sem(8);
  for (int I = 0; I < 8; ++I)
    EXPECT_TRUE(Sem.acquire().isImmediate());
  auto W = Sem.acquire();
  EXPECT_FALSE(W.isImmediate());
  Sem.release(5); // 1 waiter woken, 4 permits banked
  EXPECT_EQ(W.status(), FutureStatus::Completed);
  EXPECT_EQ(Sem.availablePermits(), 4);
  Sem.release(3);
  Sem.release();
  EXPECT_EQ(Sem.availablePermits(), 8);
}

TEST(BatchRelease, ConservationUnderConcurrentBatches) {
  // Workers acquire K permits one by one, then return them with a single
  // release(K); aborters inject tryAcquireFor(0) cancellations into the
  // same queue. At quiescence every permit must be back.
  constexpr std::int64_t Permits = 6;
  constexpr int Workers = 4;
  constexpr int Rounds = 400;
  Semaphore Sem(Permits);
  std::vector<std::thread> Ts;
  std::atomic<bool> Stop{false};
  for (int W = 0; W < Workers; ++W) {
    Ts.emplace_back([&] {
      for (int R = 0; R < Rounds; ++R) {
        // K <= 2 keeps the incremental hold-and-wait deadlock-free:
        // Workers * (K - 1) + 1 <= Permits (Banker's condition).
        int K = 1 + R % 2;
        for (int I = 0; I < K; ++I) {
          auto F = Sem.acquire();
          ASSERT_TRUE(F.blockingGet().has_value());
        }
        Sem.release(K);
      }
    });
  }
  std::thread Aborter([&] {
    while (!Stop.load(std::memory_order_relaxed)) {
      if (Sem.tryAcquireFor(std::chrono::nanoseconds(0)))
        Sem.release();
    }
  });
  for (auto &T : Ts)
    T.join();
  Stop.store(true, std::memory_order_relaxed);
  Aborter.join();
  EXPECT_EQ(Sem.availablePermits(), Permits)
      << "permits lost or duplicated by batched release under churn";
}

// --------------------------------------------------------------------------
// CountDownLatch::countDown(n)
// --------------------------------------------------------------------------

TEST(BatchCountDown, OpensExactlyAtZero) {
  CountDownLatch L(10);
  auto F = L.await();
  EXPECT_FALSE(F.isImmediate());
  L.countDown(7);
  EXPECT_EQ(L.count(), 3);
  EXPECT_NE(F.status(), FutureStatus::Completed);
  L.countDown(3);
  EXPECT_EQ(L.count(), 0);
  EXPECT_EQ(F.status(), FutureStatus::Completed);
  EXPECT_TRUE(L.await().isImmediate());
}

TEST(BatchCountDown, OvershootOpensOnce) {
  CountDownLatch L(5);
  auto F1 = L.await();
  auto F2 = L.await();
  L.countDown(8); // footnote 4: extra counts are permitted
  EXPECT_EQ(L.count(), 0);
  EXPECT_EQ(F1.status(), FutureStatus::Completed);
  EXPECT_EQ(F2.status(), FutureStatus::Completed);
}

TEST(BatchCountDown, ManyWaitersOneBatch) {
  constexpr int Waiters = 16;
  BasicCountDownLatch<4> L(1);
  std::vector<std::thread> Ts;
  std::atomic<int> Released{0};
  for (int I = 0; I < Waiters; ++I) {
    Ts.emplace_back([&] {
      auto F = L.await();
      ASSERT_TRUE(F.blockingGet().has_value());
      Released.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // Give the waiters a moment to actually suspend so the batch resume
  // path (not just elimination) is exercised, then open with one call.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  L.countDown(1);
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Released.load(), Waiters);
}

// --------------------------------------------------------------------------
// Channel burst send
// --------------------------------------------------------------------------

TEST(BurstSend, BuffersAndRendezvousInOrder) {
  BufferedChannel<int> Ch(8);
  int Vs[6] = {10, 11, 12, 13, 14, 15};
  Ch.sendBurst(Vs, 6);
  for (int I = 0; I < 6; ++I) {
    auto V = Ch.tryReceive();
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(*V, 10 + I) << "burst broke FIFO at " << I;
  }
  EXPECT_FALSE(Ch.tryReceive().has_value());
}

TEST(BurstSend, WakesWaitingReceiversDirectly) {
  BufferedChannel<int> Ch(0); // rendezvous: every receive suspends
  std::vector<BufferedChannel<int>::ReceiveFuture> Rs;
  for (int I = 0; I < 4; ++I) {
    Rs.push_back(Ch.receive());
    EXPECT_FALSE(Rs.back().isImmediate());
  }
  int Vs[4] = {1, 2, 3, 4};
  Ch.sendBurst(Vs, 4); // all four go to waiting receivers; no overflow
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(Rs[I].tryGet(), 1 + I) << "receiver " << I;
}

TEST(BurstSend, BackpressureBlocksUntilDrained) {
  BufferedChannel<int> Ch(2);
  std::atomic<bool> BurstDone{false};
  int Vs[5] = {0, 1, 2, 3, 4};
  std::thread Sender([&] {
    Ch.sendBurst(Vs, 5); // 2 buffered + 3 over capacity
    BurstDone.store(true, std::memory_order_release);
  });
  // All five elements are visible to receivers even while the sender is
  // still blocked on the backpressure debt.
  for (int I = 0; I < 5; ++I) {
    auto F = Ch.receive();
    auto V = F.blockingGet();
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(*V, I);
  }
  Sender.join();
  EXPECT_TRUE(BurstDone.load(std::memory_order_acquire));
  EXPECT_EQ(Ch.balanceForTesting(), 0);
}

TEST(BurstSend, ConservationUnderConcurrentReceivers) {
  constexpr int Receivers = 4;
  constexpr int Bursts = 200;
  constexpr int BurstLen = 8;
  constexpr int Total = Bursts * BurstLen;
  BufferedChannel<int> Ch(4);
  std::vector<std::thread> Ts;
  std::atomic<long long> Sum{0};
  std::atomic<int> Got{0};
  for (int R = 0; R < Receivers; ++R) {
    Ts.emplace_back([&] {
      for (;;) {
        if (Got.fetch_add(1, std::memory_order_acq_rel) >= Total) {
          Got.fetch_sub(1, std::memory_order_acq_rel);
          return;
        }
        auto V = Ch.receive().blockingGet();
        ASSERT_TRUE(V.has_value());
        Sum.fetch_add(*V, std::memory_order_relaxed);
      }
    });
  }
  long long Expect = 0;
  int Vs[BurstLen];
  for (int B = 0; B < Bursts; ++B) {
    for (int I = 0; I < BurstLen; ++I) {
      Vs[I] = B * BurstLen + I;
      Expect += Vs[I];
    }
    Ch.sendBurst(Vs, BurstLen);
  }
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Sum.load(), Expect)
      << "burst-sent elements lost or duplicated";
  EXPECT_EQ(Ch.balanceForTesting(), 0);
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
