//===- tests/task_test.cpp - coroutine runtime + awaitable tests ----------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The coroutine substrate of the Figure 13 experiment: tasks run on the
/// executor, CQS futures suspend coroutines without blocking workers, and
/// the CQS mutex/semaphore keep their guarantees when the waiters are
/// coroutines instead of threads.
///
//===----------------------------------------------------------------------===//

#include "task/Awaitable.h"
#include "task/Executor.h"
#include "task/Task.h"

#include "baseline/LegacyMutex.h"
#include "reclaim/Ebr.h"
#include "sync/Mutex.h"
#include "sync/Semaphore.h"
#include "support/WaitGroup.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

using namespace cqs;

namespace {

FireAndForget incrementTask(std::atomic<int> &Counter, WaitGroup &Wg) {
  Counter.fetch_add(1);
  Wg.done();
  co_return;
}

TEST(Executor, RunsPostedTasks) {
  Executor Exec(2);
  std::atomic<int> Counter{0};
  WaitGroup Wg;
  for (int I = 0; I < 100; ++I) {
    Wg.add();
    incrementTask(Counter, Wg).spawn(Exec);
  }
  Wg.wait();
  EXPECT_EQ(Counter.load(), 100);
}

TEST(Executor, CurrentIsSetOnWorkers) {
  Executor Exec(1);
  EXPECT_EQ(Executor::current(), nullptr);
  std::atomic<Executor *> Seen{nullptr};
  WaitGroup Wg(1);
  [](std::atomic<Executor *> &Seen, WaitGroup &Wg) -> FireAndForget {
    Seen.store(Executor::current());
    Wg.done();
    co_return;
  }(Seen, Wg)
                             .spawn(Exec);
  Wg.wait();
  EXPECT_EQ(Seen.load(), &Exec);
}

FireAndForget lockedIncrement(Mutex &M, long &Counter,
                              std::atomic<int> &InCritical, WaitGroup &Wg) {
  auto Grant = co_await awaitFuture(M.lock());
  EXPECT_TRUE(Grant.has_value());
  EXPECT_EQ(InCritical.fetch_add(1), 0) << "mutual exclusion violated";
  ++Counter;
  InCritical.fetch_sub(1);
  M.unlock();
  Wg.done();
}

TEST(Awaitable, MutexProtectsCoroutines) {
  Executor Exec(3);
  Mutex M;
  long Counter = 0;
  std::atomic<int> InCritical{0};
  constexpr int Tasks = 2000;
  WaitGroup Wg(Tasks);
  for (int I = 0; I < Tasks; ++I)
    lockedIncrement(M, Counter, InCritical, Wg).spawn(Exec);
  Wg.wait();
  EXPECT_EQ(Counter, Tasks);
  EXPECT_FALSE(M.isLocked());
}

FireAndForget semaphoreTask(Semaphore &S, std::atomic<int> &Held,
                            std::atomic<int> &MaxSeen, WaitGroup &Wg) {
  auto Grant = co_await awaitFuture(S.acquire());
  EXPECT_TRUE(Grant.has_value());
  int Now = Held.fetch_add(1) + 1;
  int Max = MaxSeen.load();
  while (Now > Max && !MaxSeen.compare_exchange_weak(Max, Now)) {
  }
  Held.fetch_sub(1);
  S.release();
  Wg.done();
}

TEST(Awaitable, SemaphoreBoundsCoroutineParallelism) {
  Executor Exec(4);
  Semaphore S(2);
  std::atomic<int> Held{0}, MaxSeen{0};
  constexpr int Tasks = 1000;
  WaitGroup Wg(Tasks);
  for (int I = 0; I < Tasks; ++I)
    semaphoreTask(S, Held, MaxSeen, Wg).spawn(Exec);
  Wg.wait();
  EXPECT_LE(MaxSeen.load(), 2);
  EXPECT_EQ(S.availablePermits(), 2);
}

FireAndForget legacyLocked(LegacyCoroutineMutex &M, long &Counter,
                           WaitGroup &Wg) {
  auto Grant = co_await awaitFuture(M.lock());
  EXPECT_TRUE(Grant.has_value());
  ++Counter;
  M.unlock();
  Wg.done();
}

TEST(Awaitable, LegacyMutexWorksWithCoroutines) {
  Executor Exec(3);
  LegacyCoroutineMutex M;
  long Counter = 0;
  constexpr int Tasks = 2000;
  WaitGroup Wg(Tasks);
  for (int I = 0; I < Tasks; ++I)
    legacyLocked(M, Counter, Wg).spawn(Exec);
  Wg.wait();
  EXPECT_EQ(Counter, Tasks);
}

FireAndForget spawnChild(Executor &Exec, std::atomic<int> &Counter,
                         WaitGroup &Wg, int Depth) {
  Counter.fetch_add(1);
  if (Depth > 0) {
    Wg.add();
    spawnChild(Exec, Counter, Wg, Depth - 1).spawn(Exec);
  }
  Wg.done();
  co_return;
}

TEST(Executor, TasksCanSpawnTasksFromWorkers) {
  Executor Exec(2);
  std::atomic<int> Counter{0};
  WaitGroup Wg;
  for (int I = 0; I < 20; ++I) {
    Wg.add();
    spawnChild(Exec, Counter, Wg, 5).spawn(Exec);
  }
  Wg.wait();
  EXPECT_EQ(Counter.load(), 20 * 6);
}

TEST(Executor, DrainsQueuedWorkOnShutdown) {
  std::atomic<int> Counter{0};
  {
    Executor Exec(1);
    WaitGroup Wg(50);
    for (int I = 0; I < 50; ++I)
      incrementTask(Counter, Wg).spawn(Exec);
    // Destroy immediately: already-posted work must still run.
  }
  EXPECT_EQ(Counter.load(), 50);
}

TEST(FireAndForget, UnspawnedTaskDoesNotLeakOrRun) {
  std::atomic<int> Counter{0};
  WaitGroup Wg(1);
  {
    auto T = incrementTask(Counter, Wg);
    (void)T; // dropped without spawning: frame destroyed, body never runs
  }
  EXPECT_EQ(Counter.load(), 0);
  Wg.done(); // balance the never-run task's pending count
}

/// Runs its body inline on the calling (non-worker) thread: suspend_never
/// initial suspend, so awaits inside happen with Executor::current()==null.
struct InlineTask {
  struct promise_type {
    InlineTask get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
};

// Regression (ISSUE 9): awaiting a CQS future off-executor used to
// null-deref Exec in release builds when the assert compiled out. The
// contract now: the await parks the calling thread (futex) and resumes
// inline once the future settles.
TEST(Awaitable, OffExecutorAwaitCompletesOnCallerThread) {
  ASSERT_EQ(Executor::current(), nullptr);
  Semaphore S(1);
  auto Held = S.acquire(); // drain the only permit
  ASSERT_TRUE(Held.isImmediate());
  std::atomic<bool> Done{false};
  std::thread Releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    S.release();
  });
  [](Semaphore &S, std::atomic<bool> &Done) -> InlineTask {
    // No permit available: this suspends, and there is no executor — the
    // await must block this thread and resume here, not crash.
    auto Grant = co_await awaitFuture(S.acquire());
    EXPECT_TRUE(Grant.has_value());
    S.release();
    Done.store(true);
  }(S, Done);
  // The inline coroutine only returns control once the await completed.
  EXPECT_TRUE(Done.load());
  Releaser.join();
  EXPECT_EQ(S.availablePermits(), 1);
}

// Regression (ISSUE 9): spawning a moved-from FireAndForget used to post a
// null coroutine_handle which a worker then resumed. Now: assert in debug
// builds, harmless no-op in release (post() rejects null).
TEST(FireAndForget, SpawnOfMovedFromTaskIsRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEBUG_DEATH(
      {
        Executor DeathExec(1);
        std::atomic<int> C{0};
        WaitGroup W(1);
        auto T = incrementTask(C, W);
        auto T2 = std::move(T);
        std::move(T).spawn(DeathExec); // moved-from: must not reach a worker
        W.done(); // release builds reach here: nothing was posted
      },
      "moved-from");
}

TEST(Executor, PostNullHandleReturnsFalse) {
  Executor Exec(1);
  EXPECT_FALSE(Exec.post(std::coroutine_handle<>()));
}

/// Exposes the raw handle so tests can call Executor::post directly.
struct RawTask {
  struct promise_type {
    RawTask get_return_object() {
      return RawTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
  std::coroutine_handle<promise_type> H;
};

RawTask rawNoop(std::shared_ptr<int> /*Token*/, std::atomic<bool> &Ran) {
  Ran.store(true);
  co_return;
}

// Regression (ISSUE 9): a post() racing shutdown used to silently drop the
// continuation, leaking its frame. Contract now: post-after-shutdown
// destroys the handle (observable through the frame-held shared_ptr) and
// returns false.
TEST(Executor, PostAfterShutdownDestroysHandleAndReturnsFalse) {
  auto Token = std::make_shared<int>(42);
  std::atomic<bool> Ran{false};
  Executor Exec(1);
  Exec.shutdown();
  auto T = rawNoop(Token, Ran);
  EXPECT_EQ(Token.use_count(), 2); // the suspended frame holds a copy
  EXPECT_FALSE(Exec.post(T.H));
  EXPECT_FALSE(Ran.load()) << "destroyed, never resumed";
  EXPECT_EQ(Token.use_count(), 1) << "frame not destroyed: leaked";
}

TEST(Executor, ShutdownIsIdempotentAndPostBeforeItRuns) {
  std::atomic<bool> Ran{false};
  auto Token = std::make_shared<int>(7);
  {
    Executor Exec(1);
    auto T = rawNoop(Token, Ran);
    EXPECT_TRUE(Exec.post(T.H));
    Exec.shutdown();
    Exec.shutdown(); // idempotent
    // Already-posted work still drains before the workers exit.
  }
  EXPECT_TRUE(Ran.load());
  EXPECT_EQ(Token.use_count(), 1);
}

TEST(Awaitable, ImmediateFutureDoesNotSuspend) {
  Executor Exec(1);
  Mutex M;
  std::atomic<bool> Ran{false};
  WaitGroup Wg(1);
  [](Mutex &M, std::atomic<bool> &Ran, WaitGroup &Wg) -> FireAndForget {
    auto Grant = co_await awaitFuture(M.lock()); // uncontended: immediate
    EXPECT_TRUE(Grant.has_value());
    M.unlock();
    Ran.store(true);
    Wg.done();
    co_return;
  }(M, Ran, Wg)
                                          .spawn(Exec);
  Wg.wait();
  EXPECT_TRUE(Ran.load());
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
