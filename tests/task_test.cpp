//===- tests/task_test.cpp - coroutine runtime + awaitable tests ----------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The coroutine substrate of the Figure 13 experiment: tasks run on the
/// executor, CQS futures suspend coroutines without blocking workers, and
/// the CQS mutex/semaphore keep their guarantees when the waiters are
/// coroutines instead of threads.
///
//===----------------------------------------------------------------------===//

#include "task/Awaitable.h"
#include "task/Executor.h"
#include "task/Task.h"

#include "baseline/LegacyMutex.h"
#include "reclaim/Ebr.h"
#include "sync/Mutex.h"
#include "sync/Semaphore.h"
#include "support/WaitGroup.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

using namespace cqs;

namespace {

FireAndForget incrementTask(std::atomic<int> &Counter, WaitGroup &Wg) {
  Counter.fetch_add(1);
  Wg.done();
  co_return;
}

TEST(Executor, RunsPostedTasks) {
  Executor Exec(2);
  std::atomic<int> Counter{0};
  WaitGroup Wg;
  for (int I = 0; I < 100; ++I) {
    Wg.add();
    incrementTask(Counter, Wg).spawn(Exec);
  }
  Wg.wait();
  EXPECT_EQ(Counter.load(), 100);
}

TEST(Executor, CurrentIsSetOnWorkers) {
  Executor Exec(1);
  EXPECT_EQ(Executor::current(), nullptr);
  std::atomic<Executor *> Seen{nullptr};
  WaitGroup Wg(1);
  [](std::atomic<Executor *> &Seen, WaitGroup &Wg) -> FireAndForget {
    Seen.store(Executor::current());
    Wg.done();
    co_return;
  }(Seen, Wg)
                             .spawn(Exec);
  Wg.wait();
  EXPECT_EQ(Seen.load(), &Exec);
}

FireAndForget lockedIncrement(Mutex &M, long &Counter,
                              std::atomic<int> &InCritical, WaitGroup &Wg) {
  auto Grant = co_await awaitFuture(M.lock());
  EXPECT_TRUE(Grant.has_value());
  EXPECT_EQ(InCritical.fetch_add(1), 0) << "mutual exclusion violated";
  ++Counter;
  InCritical.fetch_sub(1);
  M.unlock();
  Wg.done();
}

TEST(Awaitable, MutexProtectsCoroutines) {
  Executor Exec(3);
  Mutex M;
  long Counter = 0;
  std::atomic<int> InCritical{0};
  constexpr int Tasks = 2000;
  WaitGroup Wg(Tasks);
  for (int I = 0; I < Tasks; ++I)
    lockedIncrement(M, Counter, InCritical, Wg).spawn(Exec);
  Wg.wait();
  EXPECT_EQ(Counter, Tasks);
  EXPECT_FALSE(M.isLocked());
}

FireAndForget semaphoreTask(Semaphore &S, std::atomic<int> &Held,
                            std::atomic<int> &MaxSeen, WaitGroup &Wg) {
  auto Grant = co_await awaitFuture(S.acquire());
  EXPECT_TRUE(Grant.has_value());
  int Now = Held.fetch_add(1) + 1;
  int Max = MaxSeen.load();
  while (Now > Max && !MaxSeen.compare_exchange_weak(Max, Now)) {
  }
  Held.fetch_sub(1);
  S.release();
  Wg.done();
}

TEST(Awaitable, SemaphoreBoundsCoroutineParallelism) {
  Executor Exec(4);
  Semaphore S(2);
  std::atomic<int> Held{0}, MaxSeen{0};
  constexpr int Tasks = 1000;
  WaitGroup Wg(Tasks);
  for (int I = 0; I < Tasks; ++I)
    semaphoreTask(S, Held, MaxSeen, Wg).spawn(Exec);
  Wg.wait();
  EXPECT_LE(MaxSeen.load(), 2);
  EXPECT_EQ(S.availablePermits(), 2);
}

FireAndForget legacyLocked(LegacyCoroutineMutex &M, long &Counter,
                           WaitGroup &Wg) {
  auto Grant = co_await awaitFuture(M.lock());
  EXPECT_TRUE(Grant.has_value());
  ++Counter;
  M.unlock();
  Wg.done();
}

TEST(Awaitable, LegacyMutexWorksWithCoroutines) {
  Executor Exec(3);
  LegacyCoroutineMutex M;
  long Counter = 0;
  constexpr int Tasks = 2000;
  WaitGroup Wg(Tasks);
  for (int I = 0; I < Tasks; ++I)
    legacyLocked(M, Counter, Wg).spawn(Exec);
  Wg.wait();
  EXPECT_EQ(Counter, Tasks);
}

FireAndForget spawnChild(Executor &Exec, std::atomic<int> &Counter,
                         WaitGroup &Wg, int Depth) {
  Counter.fetch_add(1);
  if (Depth > 0) {
    Wg.add();
    spawnChild(Exec, Counter, Wg, Depth - 1).spawn(Exec);
  }
  Wg.done();
  co_return;
}

TEST(Executor, TasksCanSpawnTasksFromWorkers) {
  Executor Exec(2);
  std::atomic<int> Counter{0};
  WaitGroup Wg;
  for (int I = 0; I < 20; ++I) {
    Wg.add();
    spawnChild(Exec, Counter, Wg, 5).spawn(Exec);
  }
  Wg.wait();
  EXPECT_EQ(Counter.load(), 20 * 6);
}

TEST(Executor, DrainsQueuedWorkOnShutdown) {
  std::atomic<int> Counter{0};
  {
    Executor Exec(1);
    WaitGroup Wg(50);
    for (int I = 0; I < 50; ++I)
      incrementTask(Counter, Wg).spawn(Exec);
    // Destroy immediately: already-posted work must still run.
  }
  EXPECT_EQ(Counter.load(), 50);
}

TEST(FireAndForget, UnspawnedTaskDoesNotLeakOrRun) {
  std::atomic<int> Counter{0};
  WaitGroup Wg(1);
  {
    auto T = incrementTask(Counter, Wg);
    (void)T; // dropped without spawning: frame destroyed, body never runs
  }
  EXPECT_EQ(Counter.load(), 0);
  Wg.done(); // balance the never-run task's pending count
}

TEST(Awaitable, ImmediateFutureDoesNotSuspend) {
  Executor Exec(1);
  Mutex M;
  std::atomic<bool> Ran{false};
  WaitGroup Wg(1);
  [](Mutex &M, std::atomic<bool> &Ran, WaitGroup &Wg) -> FireAndForget {
    auto Grant = co_await awaitFuture(M.lock()); // uncontended: immediate
    EXPECT_TRUE(Grant.has_value());
    M.unlock();
    Ran.store(true);
    Wg.done();
    co_return;
  }(M, Ran, Wg)
                                          .spawn(Exec);
  Wg.wait();
  EXPECT_TRUE(Ran.load());
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
