//===- tests/cqs_cancellation_test.cpp - cancellation protocol tests ------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Section 3's cancellation machinery: simple-mode failing resumes, smart
/// skipping, whole-segment skip jumps, the REFUSE protocol, and the
/// delegated-resume race between Future::cancel() and resume(..) (Figure 4),
/// hammered from two threads.
///
//===----------------------------------------------------------------------===//

#include "core/Cqs.h"
#include "reclaim/Ebr.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

using namespace cqs;

namespace {

using IntCqs = Cqs<int, ValueTraits<int>, /*SegmentSize=*/4>;
using IntFut = IntCqs::FutureType;

/// Scripted handler for raw-CQS tests: returns a fixed onCancellation()
/// verdict and records every refused value.
struct RecordingHandler : IntCqs::SmartCancellationHandler {
  explicit RecordingHandler(bool Verdict) : Verdict(Verdict) {}

  bool onCancellation() override {
    CancellationCalls.fetch_add(1);
    if (SleepInCancellation)
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    return Verdict;
  }

  void completeRefusedResume(int V) override {
    std::lock_guard<std::mutex> Lock(M);
    Refused.push_back(V);
  }

  std::vector<int> refused() {
    std::lock_guard<std::mutex> Lock(M);
    return Refused;
  }

  const bool Verdict;
  bool SleepInCancellation = false;
  std::atomic<int> CancellationCalls{0};
  std::mutex M;
  std::vector<int> Refused;
};

TEST(SimpleCancellation, ResumeFailsOnCancelledWaiter) {
  IntCqs Q(CancellationMode::Simple, ResumptionMode::Async);
  IntFut F1 = Q.suspend();
  IntFut F2 = Q.suspend();
  EXPECT_TRUE(F1.cancel());
  EXPECT_EQ(F1.status(), FutureStatus::Cancelled);

  EXPECT_FALSE(Q.resume(10)) << "first resume meets the cancelled waiter";
  EXPECT_TRUE(Q.resume(11)) << "the retry reaches the live waiter";
  EXPECT_EQ(F2.tryGet(), 11);
}

TEST(SimpleCancellation, EachFailedResumeConsumesOneCancelledCell) {
  IntCqs Q(CancellationMode::Simple, ResumptionMode::Async);
  constexpr int N = 6;
  std::vector<IntFut> Fs;
  for (int I = 0; I < N; ++I)
    Fs.push_back(Q.suspend());
  for (auto &F : Fs)
    EXPECT_TRUE(F.cancel());
  // The paper's Theta(N) behaviour: N failing resumes, one per cell,
  // whether or not the underlying segments were already removed.
  for (int I = 0; I < N; ++I)
    EXPECT_FALSE(Q.resume(I));
  IntFut Live = Q.suspend();
  EXPECT_TRUE(Q.resume(99));
  EXPECT_EQ(Live.tryGet(), 99);
}

TEST(SimpleCancellation, FullyCancelledSegmentsAreRemoved) {
  IntCqs Q(CancellationMode::Simple, ResumptionMode::Async); // SegmentSize=4
  std::vector<IntFut> Fs;
  for (int I = 0; I < 8; ++I)
    Fs.push_back(Q.suspend());
  for (auto &F : Fs)
    EXPECT_TRUE(F.cancel());
  // Segments 0 and 1 are fully cancelled; the suspend pointer must have
  // skipped ahead on the next suspension.
  IntFut Live = Q.suspend();
  EXPECT_EQ(Q.suspendSegmentForTesting()->Id, 2u);
  EXPECT_TRUE(Live.valid());
  (void)Live.cancel();
}

TEST(SimpleCancellation, CancelAfterResumeFails) {
  IntCqs Q(CancellationMode::Simple, ResumptionMode::Async);
  IntFut F = Q.suspend();
  EXPECT_TRUE(Q.resume(5));
  EXPECT_FALSE(F.cancel());
  EXPECT_EQ(F.tryGet(), 5);
}

TEST(SmartCancellation, ResumeSkipsCancelledWaiter) {
  RecordingHandler H(/*Verdict=*/true);
  IntCqs Q(CancellationMode::Smart, ResumptionMode::Async, &H);
  IntFut F1 = Q.suspend();
  IntFut F2 = Q.suspend();
  EXPECT_TRUE(F1.cancel());
  EXPECT_EQ(H.CancellationCalls.load(), 1);

  EXPECT_TRUE(Q.resume(42)) << "smart resume must not fail";
  EXPECT_EQ(F2.tryGet(), 42) << "the cancelled waiter was skipped";
  EXPECT_GE(Q.resumeIdxForTesting(), 2u);
}

TEST(SmartCancellation, SkipsWholeRemovedSegmentsInOneHop) {
  RecordingHandler H(/*Verdict=*/true);
  IntCqs Q(CancellationMode::Smart, ResumptionMode::Async, &H);
  std::vector<IntFut> Fs;
  for (int I = 0; I < 9; ++I)
    Fs.push_back(Q.suspend());
  for (int I = 0; I < 8; ++I)
    EXPECT_TRUE(Fs[I].cancel());
  EXPECT_EQ(H.CancellationCalls.load(), 8);

  EXPECT_TRUE(Q.resume(7));
  EXPECT_EQ(Fs[8].tryGet(), 7);
  // The resume pointer jumped over the two removed segments; the resume
  // index is now past cell 8.
  EXPECT_GE(Q.resumeIdxForTesting(), 9u);
}

TEST(SmartCancellation, RefusedResumeDeliversValueToHandler) {
  RecordingHandler H(/*Verdict=*/false);
  IntCqs Q(CancellationMode::Smart, ResumptionMode::Async, &H);
  IntFut F = Q.suspend();
  EXPECT_TRUE(F.cancel());
  EXPECT_EQ(H.CancellationCalls.load(), 1);

  EXPECT_TRUE(Q.resume(77)) << "a refused resume still reports success";
  EXPECT_EQ(H.refused(), std::vector<int>({77}));
}

TEST(SmartCancellation, CancellationHandlerRunsOnCancellerThread) {
  RecordingHandler H(/*Verdict=*/true);
  IntCqs Q(CancellationMode::Smart, ResumptionMode::Async, &H);
  IntFut F = Q.suspend();
  std::thread Canceller([&] { EXPECT_TRUE(F.cancel()); });
  Canceller.join();
  EXPECT_EQ(H.CancellationCalls.load(), 1);
}

/// The Figure 4 race: cancel() and resume(..) hit the same cell
/// concurrently. Whatever the interleaving, the value must reach exactly
/// one destination (the first waiter, the second waiter, or nobody —
/// never two, never zero).
TEST(SmartCancellation, DelegatedResumeRaceNeverLosesTheValue) {
  for (int Round = 0; Round < 600; ++Round) {
    RecordingHandler H(/*Verdict=*/true);
    IntCqs Q(CancellationMode::Smart, ResumptionMode::Async, &H);
    IntFut F1 = Q.suspend();
    IntFut F2 = Q.suspend();

    std::atomic<bool> Cancelled{false};
    std::thread A([&] { EXPECT_TRUE(Q.resume(Round)); });
    std::thread B([&] { Cancelled.store(F1.cancel()); });
    A.join();
    B.join();

    if (Cancelled.load()) {
      // The value must have been re-routed to F2, either by skipping the
      // CANCELLED cell or through handler delegation.
      EXPECT_EQ(F1.status(), FutureStatus::Cancelled);
      EXPECT_EQ(F2.tryGet(), Round);
      EXPECT_EQ(H.CancellationCalls.load(), 1);
    } else {
      EXPECT_EQ(F1.tryGet(), Round);
      EXPECT_EQ(F2.status(), FutureStatus::Pending);
      EXPECT_TRUE(Q.resume(-1)); // settle F2 so teardown is quiescent
      EXPECT_EQ(F2.tryGet(), -1);
    }
  }
}

/// Same race under the REFUSE verdict: a lone cancelled waiter. The value
/// must end up either in the waiter (cancel lost) or in
/// completeRefusedResume (cancel won) — exactly once.
TEST(SmartCancellation, RefuseRaceDeliversValueExactlyOnce) {
  for (int Round = 0; Round < 600; ++Round) {
    RecordingHandler H(/*Verdict=*/false);
    IntCqs Q(CancellationMode::Smart, ResumptionMode::Async, &H);
    IntFut F = Q.suspend();

    std::atomic<bool> Cancelled{false};
    std::thread A([&] { EXPECT_TRUE(Q.resume(Round)); });
    std::thread B([&] { Cancelled.store(F.cancel()); });
    A.join();
    B.join();

    if (Cancelled.load()) {
      EXPECT_EQ(H.refused(), std::vector<int>({Round}));
    } else {
      EXPECT_EQ(F.tryGet(), Round);
      EXPECT_TRUE(H.refused().empty());
    }
  }
}

TEST(SmartCancellationSync, ResumeWaitsOutTheCancellationHandler) {
  // In SYNC mode the resume may not delegate; it must spin until the
  // handler publishes CANCELLED/REFUSE. Make the handler slow to widen the
  // window.
  for (int Round = 0; Round < 50; ++Round) {
    RecordingHandler H(/*Verdict=*/true);
    H.SleepInCancellation = true;
    IntCqs Q(CancellationMode::Smart, ResumptionMode::Sync, &H);
    IntFut F1 = Q.suspend();
    IntFut F2 = Q.suspend();

    std::atomic<bool> Cancelled{false};
    std::thread B([&] { Cancelled.store(F1.cancel()); });
    std::thread A([&] {
      while (!Q.resume(Round)) {
      }
    });
    A.join();
    B.join();

    if (Cancelled.load()) {
      EXPECT_EQ(F2.tryGet(), Round);
    } else {
      EXPECT_EQ(F1.tryGet(), Round);
      while (!Q.resume(-1)) {
      }
      EXPECT_EQ(F2.tryGet(), -1);
    }
  }
}

TEST(SmartCancellation, HeavyCancelChurnReclaimsSegments) {
  RecordingHandler H(/*Verdict=*/true);
  {
    IntCqs Q(CancellationMode::Smart, ResumptionMode::Async, &H);
    for (int I = 0; I < 2000; ++I) {
      IntFut F = Q.suspend();
      EXPECT_TRUE(F.cancel());
    }
    EXPECT_EQ(H.CancellationCalls.load(), 2000);
    // Cancelled segments were unlinked as they filled; the suspend pointer
    // is deep into the array while nothing before it is retained.
    EXPECT_GE(Q.suspendSegmentForTesting()->Id, 499u);
  }
  ebr::drainForTesting();
  SUCCEED();
}

TEST(SmartCancellation, ConcurrentCancelStormWithResumes) {
  // W waiters; half get cancelled concurrently with R resumes where R =
  // number of surviving waiters. Afterwards every surviving waiter must be
  // completed and every value delivered somewhere (waiter or refused).
  constexpr int Waiters = 400;
  RecordingHandler H(/*Verdict=*/true);
  IntCqs Q(CancellationMode::Smart, ResumptionMode::Async, &H);

  std::vector<IntFut> Fs;
  for (int I = 0; I < Waiters; ++I)
    Fs.push_back(Q.suspend());

  std::atomic<int> CancelWins{0};
  std::thread Canceller([&] {
    for (int I = 0; I < Waiters; I += 2)
      if (Fs[I].cancel())
        CancelWins.fetch_add(1);
  });
  std::thread Resumer([&] {
    for (int I = 0; I < Waiters / 2; ++I)
      EXPECT_TRUE(Q.resume(1000 + I));
  });
  Canceller.join();
  Resumer.join();

  // Each of the Waiters/2 resumes completed exactly one waiter (a cancel
  // that loses the race leaves its waiter completed); with verdict=true no
  // refusals can ever happen.
  int Completed = 0;
  for (auto &F : Fs)
    Completed += F.status() == FutureStatus::Completed ? 1 : 0;
  EXPECT_EQ(Completed, Waiters / 2);
  EXPECT_TRUE(H.refused().empty());
  EXPECT_EQ(H.CancellationCalls.load(), CancelWins.load());

  // Every value was delivered exactly once (no loss, no duplication).
  std::vector<bool> SeenValue(Waiters / 2, false);
  for (auto &F : Fs) {
    if (F.status() != FutureStatus::Completed)
      continue;
    int V = *F.tryGet() - 1000;
    ASSERT_GE(V, 0);
    ASSERT_LT(V, Waiters / 2);
    EXPECT_FALSE(SeenValue[V]) << "value delivered twice";
    SeenValue[V] = true;
  }
  for (int V = 0; V < Waiters / 2; ++V)
    EXPECT_TRUE(SeenValue[V]) << "value " << V << " lost";

  // FIFO of *values* holds only when no resume delegated its completion
  // to a cancellation handler: a delegated value re-enters the queue at a
  // fresh index (Figure 4; the paper: the value "can be out of the data
  // structure for a while"), legally permuting the assignment. The
  // waiters themselves are still completed in queue order either way.
  if (CqsStats::read(Q.stats().Delegations) == 0) {
    int Expect = 1000;
    for (auto &F : Fs) {
      if (F.status() == FutureStatus::Completed) {
        EXPECT_EQ(F.tryGet(), Expect++);
      }
    }
    EXPECT_EQ(Expect, 1000 + Waiters / 2);
  }
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
