//===- tests/schedcheck_select_test.cpp - model-checked select + v2 -------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Channel v2 and selectReceive under the deterministic scheduler: the
/// 2-channel select race in all three shapes (both-ready, neither-ready,
/// loser-cancel vs resume), plus the v2 cell protocol's own races —
/// rendezvous with symmetric cancellation and close vs a parking sender.
/// Every scenario's oracle is conservation: no element lost, duplicated,
/// or stranded, whatever the interleaving.
///
//===----------------------------------------------------------------------===//

#include "reclaim/Ebr.h"
#include "schedcheck/Sched.h"
#include "sync/ChannelV2.h"
#include "sync/Select.h"

#include <gtest/gtest.h>

#include <optional>

using namespace cqs;

namespace {

using Rdv = RendezvousChannelV2<int, /*SegmentSize=*/4>;
using Buf1 = BufferedChannelV2<int, 4>;

// --------------------------------------------------------------------------
// The v2 cell protocol on its own, before layering select on top.
// --------------------------------------------------------------------------

/// Rendezvous with both sides racing an abort: the send and the receive
/// either pair up (both done) or both cancellations win (both aborted).
/// A half-transfer — element handed over but the receive cancelled, or
/// vice versa — is the SMART-cancellation bug this exists to catch.
void rendezvousSymmetricCancel() {
  auto *Ch = new Rdv;
  bool SendDone = false, RecvDone = false;
  std::optional<int> Got;
  sc::Thread T1 = sc::spawn([&] {
    auto F = Ch->send(1);
    SendDone = F.isImmediate() || !F.cancel();
  });
  sc::Thread T2 = sc::spawn([&] {
    auto F = Ch->receive();
    RecvDone = F.isImmediate() || !F.cancel();
    if (RecvDone)
      Got = F.tryGet();
  });
  T1.join();
  T2.join();
  sc::check(SendDone == RecvDone, "half a rendezvous: one side committed");
  if (RecvDone)
    sc::check(Got == std::make_optional(1), "receiver got the wrong value");
  sc::check(!Ch->tryReceive().has_value(), "stranded element after abort");
  delete Ch;
}

TEST(SchedcheckChannelV2, RendezvousSymmetricCancelExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 1;
  O.Iterations = 200000;
  sc::Result R = sc::explore(O, rendezvousSymmetricCancel);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

TEST(SchedcheckChannelV2, RendezvousSymmetricCancelRandomSweep) {
  sc::Options O;
  O.Strat = sc::Strategy::Random;
  O.Seed = 11;
  O.Iterations = 1500;
  sc::Result R = sc::explore(O, rendezvousSymmetricCancel);
  EXPECT_TRUE(R.Ok) << R.Report;
}

/// close() racing a sender on a capacity-1 channel. The send either
/// commits its element (then it must be drainable after close) or is
/// refused/aborted (then the channel must end empty). Covers the
/// ClosedBit CAS, the close walk, and the sender's post-park recheck.
void closeVsSender() {
  auto *Ch = new Buf1(1);
  bool Accepted = false;
  sc::Thread T1 = sc::spawn([&] {
    auto F = Ch->send(5);
    if (F.valid())
      Accepted = F.isImmediate() || F.blockingGet().has_value();
  });
  sc::Thread T2 = sc::spawn([&] { Ch->close(); });
  T1.join();
  T2.join();
  sc::check(Ch->isClosed(), "close did not stick");
  std::optional<int> Drained = Ch->tryReceive();
  sc::check(Drained.has_value() == Accepted,
            "accepted element lost, or refused element materialized");
  if (Accepted)
    sc::check(Drained == std::make_optional(5), "wrong element drained");
  sc::check(!Ch->tryReceive().has_value(), "element duplicated");
  delete Ch;
}

TEST(SchedcheckChannelV2, CloseVsSenderExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 1;
  O.Iterations = 200000;
  sc::Result R = sc::explore(O, closeVsSender);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

/// close() racing a parked receiver: the receiver must always be released
/// (nullopt), never left parked and never handed a phantom element.
void closeVsReceiver() {
  auto *Ch = new Rdv;
  sc::Thread T1 = sc::spawn([&] {
    auto F = Ch->receive();
    if (F.valid())
      sc::check(!F.blockingGet().has_value(),
                "receiver got an element nobody sent");
  });
  sc::Thread T2 = sc::spawn([&] { Ch->close(); });
  T1.join(); // the join IS the liveness assertion
  T2.join();
  delete Ch;
}

TEST(SchedcheckChannelV2, CloseVsReceiverExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 1;
  O.Iterations = 200000;
  sc::Result R = sc::explore(O, closeVsReceiver);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

// --------------------------------------------------------------------------
// The 2-channel select race.
// --------------------------------------------------------------------------

/// Both channels race to become ready while the select registers. The
/// select takes exactly one element; the other must remain drainable.
///
/// Blocking sends, not trySend: a select clause that parks in a cell pays
/// its buffer-window slot with an expandBuffer AFTER the park CAS, and a
/// trySend interleaved into that gap can observe the window exhausted on a
/// channel holding zero elements and report would-block (the documented
/// best-effort caveat, DESIGN.md §10). A blocking send is immune — the
/// clause's pending expandBuffer finds and resumes it.
void selectBothReady() {
  auto *A = new Buf1(1);
  auto *B = new Buf1(1);
  std::optional<SelectResult<int>> R;
  sc::Thread T1 = sc::spawn([&] {
    auto F = A->send(1);
    sc::check(F.blockingGet().has_value(), "send(1) on cap 1 must land");
  });
  sc::Thread T2 = sc::spawn([&] {
    auto F = B->send(2);
    sc::check(F.blockingGet().has_value(), "send(2) on cap 1 must land");
  });
  sc::Thread T3 = sc::spawn([&] {
    Buf1 *Cs[2] = {A, B};
    R = selectReceive<int, 4>(Cs, 2);
  });
  T1.join();
  T2.join();
  T3.join();
  sc::check(R.has_value(), "elements existed; select must win one");
  sc::check(R->Value == (R->Index == 0 ? 1 : 2), "index/value mismatch");
  std::optional<int> Rest = (R->Index == 0 ? B : A)->tryReceive();
  sc::check(Rest == std::make_optional(R->Index == 0 ? 2 : 1),
            "losing channel's element stranded or lost");
  sc::check(!A->tryReceive().has_value() && !B->tryReceive().has_value(),
            "element duplicated");
  delete A;
  delete B;
}

TEST(SchedcheckSelect, BothReady) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 1;
  O.Iterations = 200000;
  sc::Result R = sc::explore(O, selectBothReady);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

TEST(SchedcheckSelect, BothReadyRandomSweep) {
  sc::Options O;
  O.Strat = sc::Strategy::Random;
  O.Seed = 21;
  O.Iterations = 1500;
  sc::Result R = sc::explore(O, selectBothReady);
  EXPECT_TRUE(R.Ok) << R.Report;
}

/// Neither channel ready: the select parks a clause in each, then one
/// sender arrives. The select must wake with that element and the losing
/// clause must be cancelled without wedging its channel.
void selectNeitherReady() {
  auto *A = new Rdv;
  auto *B = new Rdv;
  std::optional<SelectResult<int>> R;
  sc::Thread T1 = sc::spawn([&] {
    BufferedChannelV2<int, 4> *Cs[2] = {A, B};
    R = selectReceive<int, 4>(Cs, 2);
  });
  sc::Thread T2 = sc::spawn([&] {
    auto F = B->send(7);
    sc::check(F.blockingGet().has_value(), "lone send must pair with select");
  });
  T1.join();
  T2.join();
  sc::check(R.has_value() && R->Index == 1 && R->Value == 7,
            "select missed the only element");
  sc::check(!A->tryReceive().has_value(), "loser channel not clean");
  delete A;
  delete B;
}

TEST(SchedcheckSelect, NeitherReady) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 1;
  O.Iterations = 200000;
  sc::Result R = sc::explore(O, selectNeitherReady);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

TEST(SchedcheckSelect, NeitherReadyPctSweep) {
  sc::Options O;
  O.Strat = sc::Strategy::Pct;
  O.Seed = 22;
  O.Iterations = 1000;
  sc::Result R = sc::explore(O, selectNeitherReady);
  EXPECT_TRUE(R.Ok) << R.Report;
}

/// Loser-cancel vs resume: senders race into BOTH channels while the
/// select runs, so one sender's resume attempt races the select's
/// cancellation of the losing clause. Whoever loses must re-park and be
/// drained afterwards — both elements accounted for, exactly once.
void selectLoserCancelVsResume() {
  auto *A = new Rdv;
  auto *B = new Rdv;
  std::optional<SelectResult<int>> R;
  sc::Thread TS = sc::spawn([&] {
    BufferedChannelV2<int, 4> *Cs[2] = {A, B};
    R = selectReceive<int, 4>(Cs, 2);
  });
  sc::Thread T1 = sc::spawn([&] {
    auto F = A->send(1);
    sc::check(F.blockingGet().has_value(), "send(1) aborted unexpectedly");
  });
  sc::Thread T2 = sc::spawn([&] {
    auto F = B->send(2);
    sc::check(F.blockingGet().has_value(), "send(2) aborted unexpectedly");
  });
  TS.join();
  sc::check(R.has_value(), "two senders; select must win one");
  sc::check(R->Value == (R->Index == 0 ? 1 : 2), "index/value mismatch");
  // Drain the losing channel to release its (re-parked) sender.
  Rdv *Loser = R->Index == 0 ? B : A;
  std::optional<int> Rest = Loser->receive().blockingGet();
  sc::check(Rest == std::make_optional(R->Index == 0 ? 2 : 1),
            "loser's element lost in the cancel/resume race");
  T1.join();
  T2.join();
  sc::check(!A->tryReceive().has_value() && !B->tryReceive().has_value(),
            "element duplicated");
  delete A;
  delete B;
}

TEST(SchedcheckSelect, LoserCancelVsResume) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 1;
  O.Iterations = 200000;
  sc::Result R = sc::explore(O, selectLoserCancelVsResume);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

TEST(SchedcheckSelect, LoserCancelVsResumeRandomSweep) {
  sc::Options O;
  O.Strat = sc::Strategy::Random;
  O.Seed = 23;
  O.Iterations = 1200;
  sc::Result R = sc::explore(O, selectLoserCancelVsResume);
  EXPECT_TRUE(R.Ok) << R.Report;
}

/// close() racing a parked select: both channels close underneath it.
/// The select must return nullopt — not hang on its epoch futex.
void selectVsClose() {
  auto *A = new Rdv;
  auto *B = new Rdv;
  std::optional<SelectResult<int>> R = SelectResult<int>{-2, -2};
  sc::Thread T1 = sc::spawn([&] {
    BufferedChannelV2<int, 4> *Cs[2] = {A, B};
    R = selectReceive<int, 4>(Cs, 2);
  });
  sc::Thread T2 = sc::spawn([&] { A->close(); });
  sc::Thread T3 = sc::spawn([&] { B->close(); });
  T1.join(); // liveness: the dead-clause count must release the select
  T2.join();
  T3.join();
  sc::check(R == std::nullopt, "select won on closed, empty channels");
  delete A;
  delete B;
}

TEST(SchedcheckSelect, CloseReleasesParkedSelect) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 1;
  O.Iterations = 200000;
  sc::Result R = sc::explore(O, selectVsClose);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

// --------------------------------------------------------------------------
// Happens-before validation (DESIGN.md §11): data published *through* the
// channel as plain memory, race-checked via cqs::Shared. These assert the
// v2 cell protocol's declared memory orders — counters, cell CAS chain,
// parking resume — actually carry the sender's writes to the receiver; a
// relaxed downgrade anywhere on that path fails these runs.
// --------------------------------------------------------------------------

void channelCarriesPayloadHb() {
  auto *Ch = new Buf1(2);
  auto *D = new Shared<int>(0);
  sc::Thread T1 = sc::spawn([&] {
    D->set(99); // plain write, ordered only by the send that follows
    auto F = Ch->send(1);
    sc::check(F.blockingGet().has_value(), "send on cap 2 must land");
  });
  sc::Thread T2 = sc::spawn([&] {
    auto F = Ch->receive();
    auto V = F.blockingGet();
    sc::check(V == std::make_optional(1), "receiver got the wrong token");
    sc::check(D->get() == 99, "payload not visible after receive");
  });
  T1.join();
  T2.join();
  delete D;
  delete Ch;
}

TEST(SchedcheckSelect, ChannelCarriesHappensBeforeToPayload) {
  sc::Options O;
  O.Strat = sc::Strategy::Random;
  O.Seed = 29;
  O.Iterations = 800;
  O.HbCheck = true;
  sc::Result R = sc::explore(O, channelCarriesPayloadHb);
  EXPECT_TRUE(R.Ok) << R.Report;
}

void selectCarriesPayloadHb() {
  auto *A = new Rdv;
  auto *B = new Rdv;
  auto *D = new Shared<int>(0);
  std::optional<SelectResult<int>> R;
  sc::Thread T1 = sc::spawn([&] {
    BufferedChannelV2<int, 4> *Cs[2] = {A, B};
    R = selectReceive<int, 4>(Cs, 2);
    sc::check(R.has_value() && R->Index == 1 && R->Value == 7,
              "select missed the only element");
    sc::check(D->get() == 123, "payload not visible after select win");
  });
  sc::Thread T2 = sc::spawn([&] {
    D->set(123);
    auto F = B->send(7);
    sc::check(F.blockingGet().has_value(), "lone send must pair with select");
  });
  T1.join();
  T2.join();
  delete D;
  delete A;
  delete B;
}

TEST(SchedcheckSelect, SelectCarriesHappensBeforeToPayload) {
  sc::Options O;
  O.Strat = sc::Strategy::Random;
  O.Seed = 31;
  O.Iterations = 800;
  O.HbCheck = true;
  sc::Result R = sc::explore(O, selectCarriesPayloadHb);
  EXPECT_TRUE(R.Ok) << R.Report;
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
