//===- tests/bench_json_test.cpp - JSON writer & bench schema tests -------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Tier-1 coverage for the structured-results pipeline: the dependency-free
/// JSON writer/parser in support/Json.h must round-trip, and a real
/// in-process `--quick` Reporter sweep must emit the cqs-bench-v1 schema —
/// every key present, sample count equal to the repetition count, and the
/// per-result stats snapshot consistent with the CQS traffic the sample
/// function actually generated.
///
//===----------------------------------------------------------------------===//

#include "BenchMain.h"

#include "core/Cqs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

using namespace cqs;
using namespace cqs::bench;

namespace {

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

TEST(JsonWriter, ScalarsAndNesting) {
  json::Writer W;
  W.beginObject();
  W.key("str");
  W.value("a\"b\\c\n\t\x01");
  W.key("int");
  W.value(static_cast<std::uint64_t>(42));
  W.key("neg");
  W.value(-7);
  W.key("pi");
  W.value(3.25);
  W.key("yes");
  W.value(true);
  W.key("nothing");
  W.null();
  W.key("arr");
  W.beginArray();
  W.value(1);
  W.value(2);
  W.endArray();
  W.key("empty_obj");
  W.beginObject();
  W.endObject();
  W.endObject();
  std::string Text = W.take();

  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::Parser::parse(Text, V, &Err)) << Err << "\n" << Text;
  ASSERT_EQ(V.kind(), json::Value::Kind::Object);
  EXPECT_EQ(V.find("str")->asString(), "a\"b\\c\n\t\x01");
  EXPECT_EQ(V.find("int")->asNumber(), 42);
  EXPECT_EQ(V.find("neg")->asNumber(), -7);
  EXPECT_EQ(V.find("pi")->asNumber(), 3.25);
  EXPECT_TRUE(V.find("yes")->asBool());
  EXPECT_EQ(V.find("nothing")->kind(), json::Value::Kind::Null);
  ASSERT_EQ(V.find("arr")->items().size(), 2u);
  EXPECT_EQ(V.find("arr")->items()[1].asNumber(), 2);
  EXPECT_TRUE(V.find("empty_obj")->members().empty());
  EXPECT_EQ(V.find("missing"), nullptr);
}

TEST(JsonWriter, DoublesSurviveRoundTrip) {
  const double Cases[] = {0.0,    1.0,        -1.5,          0.1,
                          1e-9,   1234.5678,  8.73e17,       -2.25e-3,
                          1.0 / 3.0, 6.02214076e23};
  for (double X : Cases) {
    json::Writer W;
    W.beginArray();
    W.value(X);
    W.endArray();
    json::Value V;
    std::string Err;
    ASSERT_TRUE(json::Parser::parse(W.take(), V, &Err)) << Err;
    EXPECT_DOUBLE_EQ(V.items()[0].asNumber(), X);
  }
}

TEST(JsonParser, RejectsMalformed) {
  const char *Bad[] = {"",       "{",        "[1,]",     "{\"a\":}",
                       "tru",    "{\"a\" 1}", "[1 2]",   "\"unterminated",
                       "{}extra"};
  for (const char *Text : Bad) {
    json::Value V;
    std::string Err;
    EXPECT_FALSE(json::Parser::parse(Text, V, &Err)) << Text;
    EXPECT_FALSE(Err.empty()) << Text;
  }
}

TEST(JsonParser, UnicodeEscapes) {
  // BMP escapes decode to the expected UTF-8 sequences.
  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::Parser::parse("\"\\u0041\\u00e9\\u20ac\"", V, &Err))
      << Err;
  EXPECT_EQ(V.asString(), "A\xC3\xA9\xE2\x82\xAC"); // A, é, €

  // A surrogate pair combines into one astral code point (U+1F600,
  // 4-byte UTF-8) — not two garbage 3-byte sequences.
  ASSERT_TRUE(json::Parser::parse("\"\\ud83d\\ude00\"", V, &Err)) << Err;
  EXPECT_EQ(V.asString(), "\xF0\x9F\x98\x80");

  // Uppercase hex digits work, and the decoded text round-trips through
  // the writer (which emits the UTF-8 bytes verbatim).
  ASSERT_TRUE(json::Parser::parse("\"\\uD83D\\uDE00x\"", V, &Err)) << Err;
  json::Writer W;
  W.beginArray();
  W.value(V.asString());
  W.endArray();
  json::Value Back;
  ASSERT_TRUE(json::Parser::parse(W.take(), Back, &Err)) << Err;
  EXPECT_EQ(Back.items()[0].asString(), "\xF0\x9F\x98\x80x");
}

TEST(JsonParser, RejectsBadUnicodeEscapes) {
  const char *Bad[] = {
      "\"\\ud83d\"",        // lone high surrogate at end of string
      "\"\\ud83dx\"",       // high surrogate followed by a plain char
      "\"\\ud83d\\n\"",     // high surrogate followed by another escape
      "\"\\ud83d\\u0041\"", // high surrogate followed by a non-low escape
      "\"\\ude00\"",        // lone low surrogate
      "\"\\u12\"",          // truncated escape
      "\"\\u12g4\"",        // non-hex digit
      "\"\\u 123\"",        // sscanf would have skipped the space
  };
  for (const char *Text : Bad) {
    json::Value V;
    std::string Err;
    EXPECT_FALSE(json::Parser::parse(Text, V, &Err)) << Text;
    EXPECT_FALSE(Err.empty()) << Text;
  }
}

//===----------------------------------------------------------------------===//
// Reporter / cqs-bench-v1 schema
//===----------------------------------------------------------------------===//

/// Runs a minimal in-process `--quick` sweep whose sample function drives
/// real CQS traffic, then parses the Reporter's JSON.
class BenchSchemaTest : public ::testing::Test {
protected:
  void SetUp() override {
    Path = ::testing::TempDir() + "bench_json_test_out.json";
    std::string JsonArg = "--json=" + Path;
    const char *Argv[] = {"bench_json_test", "--quick", JsonArg.c_str()};
    Reporter R("schema_probe", "in-process schema round-trip probe", 3,
               const_cast<char **>(Argv));
    EXPECT_TRUE(R.quick());
    Reps = R.reps(/*Default=*/10); // quick mode: 3
    EXPECT_EQ(Reps, 3);
    EXPECT_EQ(R.ops(/*Full=*/1000, /*Quick=*/10), 10);

    R.context("pairs=" + std::to_string(Pairs));
    Median = R.measure("suspend/resume", /*Threads=*/1, "us/pair", 1e6,
                       /*DefaultReps=*/10, [this] {
                         auto Start = std::chrono::steady_clock::now();
                         Cqs<int> Q;
                         for (int I = 0; I < Pairs; ++I) {
                           auto F = Q.suspend();
                           (void)Q.resume(I);
                           (void)F.tryGet();
                         }
                         return std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - Start)
                             .count();
                       });
    R.record("jain", /*Threads=*/4, "index", "higher", 0.97,
             CqsStatsSnapshot(), /*Gated=*/false);
    R.finish();

    std::string Text = slurp(Path);
    ASSERT_FALSE(Text.empty());
    std::string Err;
    ASSERT_TRUE(json::Parser::parse(Text, Doc, &Err)) << Err;
  }

  void TearDown() override { std::remove(Path.c_str()); }

  static std::string slurp(const std::string &P) {
    std::ifstream In(P);
    return std::string(std::istreambuf_iterator<char>(In),
                       std::istreambuf_iterator<char>());
  }

  static constexpr int Pairs = 16;
  std::string Path;
  int Reps = 0;
  double Median = 0;
  json::Value Doc;
};

TEST_F(BenchSchemaTest, TopLevelKeys) {
  ASSERT_EQ(Doc.kind(), json::Value::Kind::Object);
  EXPECT_EQ(Doc.find("schema")->asString(), SchemaName);
  EXPECT_EQ(Doc.find("benchmark")->asString(), "schema_probe");
  EXPECT_TRUE(Doc.find("quick")->asBool());
  const json::Value *Host = Doc.find("host");
  ASSERT_NE(Host, nullptr);
  for (const char *K : {"nproc", "build_type", "compiler"})
    EXPECT_NE(Host->find(K), nullptr) << K;
  ASSERT_NE(Doc.find("results"), nullptr);
  EXPECT_EQ(Doc.find("results")->items().size(), 2u);
}

TEST_F(BenchSchemaTest, ResultShape) {
  const json::Value &R = Doc.find("results")->items()[0];
  for (const char *K :
       {"benchmark", "series", "params", "threads", "unit", "direction",
        "gated", "reps", "samples", "median", "min", "max", "mean", "stddev",
        "stats"})
    ASSERT_NE(R.find(K), nullptr) << K;
  EXPECT_EQ(R.find("series")->asString(), "suspend/resume");
  EXPECT_EQ(R.find("params")->asString(), "pairs=16");
  EXPECT_EQ(R.find("threads")->asNumber(), 1);
  EXPECT_EQ(R.find("unit")->asString(), "us/pair");
  EXPECT_EQ(R.find("direction")->asString(), "lower");
  EXPECT_TRUE(R.find("gated")->asBool());

  // Sample count == repetitions, and the aggregates describe the samples.
  const auto &Samples = R.find("samples")->items();
  ASSERT_EQ(static_cast<int>(Samples.size()), Reps);
  EXPECT_EQ(R.find("reps")->asNumber(), Reps);
  EXPECT_DOUBLE_EQ(R.find("median")->asNumber(), Median);
  double Min = Samples[0].asNumber(), Max = Min;
  for (const json::Value &S : Samples) {
    Min = std::min(Min, S.asNumber());
    Max = std::max(Max, S.asNumber());
  }
  EXPECT_DOUBLE_EQ(R.find("min")->asNumber(), Min);
  EXPECT_DOUBLE_EQ(R.find("max")->asNumber(), Max);
  EXPECT_LE(Min, R.find("median")->asNumber());
  EXPECT_GE(Max, R.find("median")->asNumber());
}

TEST_F(BenchSchemaTest, StatsSnapshotMatchesTraffic) {
  const json::Value &R = Doc.find("results")->items()[0];
  const json::Value *Stats = R.find("stats");
  ASSERT_NE(Stats, nullptr);
  for (int I = 0; I < CqsStatsSnapshot::NumFields; ++I)
    EXPECT_NE(Stats->find(CqsStatsSnapshot::fieldName(I)), nullptr)
        << CqsStatsSnapshot::fieldName(I);
  // The sample suspends then resumes Pairs times per repetition; warmup
  // runs outside the stats window, so the delta is exactly Reps sweeps.
  // (Single-threaded, so no elimination races can steal iterations.)
  EXPECT_EQ(Stats->find("suspensions")->asNumber(), Reps * Pairs);
  EXPECT_EQ(Stats->find("completions")->asNumber(), Reps * Pairs);
  EXPECT_EQ(Stats->find("eliminations")->asNumber(), 0);

  // The externally recorded diagnostic carries an all-zero snapshot and
  // its gated=false marker.
  const json::Value &Diag = Doc.find("results")->items()[1];
  EXPECT_EQ(Diag.find("series")->asString(), "jain");
  EXPECT_EQ(Diag.find("direction")->asString(), "higher");
  EXPECT_FALSE(Diag.find("gated")->asBool());
  EXPECT_EQ(Diag.find("reps")->asNumber(), 1);
  EXPECT_EQ(Diag.find("stats")->find("suspensions")->asNumber(), 0);
}

} // namespace
