//===- tests/channel_v2_test.cpp - single-array channel tests -------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The v2 channel (sync/ChannelV2.h, the Koval-Alistarh-Elizarov single
/// array): the v1 contract surface (FIFO, backpressure, rendezvous,
/// try-ops, bursts, cancellation conservation) plus the parts v1 could not
/// offer — abortable suspended sends and close() semantics.
///
//===----------------------------------------------------------------------===//

#include "sync/ChannelV2.h"

#include "reclaim/Ebr.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace cqs;

namespace {

using IntChannel = BufferedChannelV2<int, /*SegmentSize=*/4>;

TEST(ChannelV2, SendThenReceiveFifo) {
  IntChannel Ch(8);
  for (int I = 0; I < 5; ++I)
    EXPECT_TRUE(Ch.send(I).isImmediate()) << "buffer has room";
  for (int I = 0; I < 5; ++I) {
    auto R = Ch.receive();
    ASSERT_TRUE(R.isImmediate());
    EXPECT_EQ(R.tryGet(), I);
  }
}

TEST(ChannelV2, ReceiveOnEmptySuspendsUntilSend) {
  IntChannel Ch(2);
  auto R = Ch.receive();
  EXPECT_EQ(R.status(), FutureStatus::Pending);
  auto S = Ch.send(42);
  EXPECT_TRUE(S.isImmediate());
  EXPECT_EQ(R.tryGet(), 42);
}

TEST(ChannelV2, SendBlocksAtCapacity) {
  IntChannel Ch(2);
  EXPECT_TRUE(Ch.send(1).isImmediate());
  EXPECT_TRUE(Ch.send(2).isImmediate());
  auto S3 = Ch.send(3);
  EXPECT_EQ(S3.status(), FutureStatus::Pending) << "buffer full";
  EXPECT_EQ(Ch.receive().tryGet(), 1);
  EXPECT_EQ(S3.status(), FutureStatus::Completed)
      << "draining one slot admits the parked sender";
  EXPECT_EQ(Ch.receive().tryGet(), 2);
  EXPECT_EQ(Ch.receive().tryGet(), 3);
}

TEST(ChannelV2, WaitingReceiversServedFifo) {
  IntChannel Ch(4);
  auto R1 = Ch.receive();
  auto R2 = Ch.receive();
  auto R3 = Ch.receive();
  Ch.send(10);
  Ch.send(20);
  Ch.send(30);
  EXPECT_EQ(R1.tryGet(), 10);
  EXPECT_EQ(R2.tryGet(), 20);
  EXPECT_EQ(R3.tryGet(), 30);
}

TEST(RendezvousV2, SendSuspendsUntilReceive) {
  RendezvousChannelV2<int, 4> Ch;
  auto S = Ch.send(7);
  EXPECT_EQ(S.status(), FutureStatus::Pending) << "no receiver yet";
  auto R = Ch.receive();
  ASSERT_TRUE(R.isImmediate());
  EXPECT_EQ(R.tryGet(), 7);
  EXPECT_EQ(S.status(), FutureStatus::Completed);
}

TEST(RendezvousV2, ReceiveSuspendsUntilSend) {
  RendezvousChannelV2<int, 4> Ch;
  auto R = Ch.receive();
  EXPECT_EQ(R.status(), FutureStatus::Pending);
  auto S = Ch.send(9);
  EXPECT_TRUE(S.isImmediate()) << "direct rendezvous with the waiter";
  EXPECT_EQ(R.tryGet(), 9);
}

TEST(RendezvousV2, PendingSendsServedFifo) {
  RendezvousChannelV2<int, 4> Ch;
  std::vector<RendezvousChannelV2<int, 4>::SendFuture> Sends;
  for (int I = 0; I < 6; ++I)
    Sends.push_back(Ch.send(I));
  for (int I = 0; I < 6; ++I) {
    EXPECT_EQ(Ch.receive().tryGet(), I) << "FIFO across pending sends";
    EXPECT_EQ(Sends[I].status(), FutureStatus::Completed);
  }
}

TEST(ChannelV2, CancelledReceiveIsSkipped) {
  IntChannel Ch(2);
  auto R1 = Ch.receive();
  auto R2 = Ch.receive();
  EXPECT_TRUE(R1.cancel());
  Ch.send(5);
  EXPECT_EQ(R2.tryGet(), 5) << "element goes to the live receiver";
}

// v1 could not do this: cancelling a *suspended send* withdraws the
// element together with the waiter — nothing is left in the channel.
TEST(ChannelV2, CancelledSendWithdrawsItsElement) {
  IntChannel Ch(1);
  EXPECT_TRUE(Ch.send(1).isImmediate());
  auto S2 = Ch.send(2);
  ASSERT_EQ(S2.status(), FutureStatus::Pending);
  EXPECT_TRUE(S2.cancel());
  EXPECT_EQ(Ch.receive().tryGet(), 1);
  EXPECT_EQ(Ch.tryReceive(), std::nullopt)
      << "the cancelled send's element must not appear";
  // The channel still works after the cancellation.
  EXPECT_TRUE(Ch.send(3).isImmediate());
  EXPECT_EQ(Ch.receive().tryGet(), 3);
}

TEST(ChannelV2, SendCancelRaceNeverLosesOrDuplicates) {
  for (int Round = 0; Round < 500; ++Round) {
    RendezvousChannelV2<int, 4> Ch;
    auto S = Ch.send(Round);
    std::atomic<bool> Cancelled{false};
    std::optional<int> Got;
    std::thread A([&] { Got = Ch.receive().blockingGet(); });
    std::thread B([&] { Cancelled.store(S.cancel()); });
    B.join();
    if (Cancelled.load()) {
      // The receive can never get this element; feed it another one.
      (void)Ch.send(-1);
      A.join();
      ASSERT_TRUE(Got.has_value());
      EXPECT_EQ(*Got, -1);
    } else {
      A.join();
      ASSERT_TRUE(Got.has_value());
      EXPECT_EQ(*Got, Round);
    }
  }
}

TEST(ChannelV2, ReceiveCancelRaceNeverLosesTheElement) {
  for (int Round = 0; Round < 500; ++Round) {
    IntChannel Ch(2);
    auto R = Ch.receive();
    std::atomic<bool> Cancelled{false};
    std::thread A([&] { (void)Ch.send(Round); });
    std::thread B([&] { Cancelled.store(R.cancel()); });
    A.join();
    B.join();
    if (Cancelled.load()) {
      auto G = Ch.receive();
      EXPECT_EQ(G.blockingGet(), Round) << "element stays in the channel";
    } else {
      EXPECT_EQ(R.tryGet(), Round);
    }
  }
}

TEST(ChannelV2, TrySendTryReceiveBasics) {
  IntChannel Ch(2);
  EXPECT_EQ(Ch.tryReceive(), std::nullopt) << "empty channel";
  EXPECT_TRUE(Ch.trySend(1));
  EXPECT_TRUE(Ch.trySend(2));
  EXPECT_FALSE(Ch.trySend(3)) << "buffer full: trySend must not block";
  EXPECT_EQ(Ch.tryReceive(), 1);
  EXPECT_TRUE(Ch.trySend(3));
  EXPECT_EQ(Ch.tryReceive(), 2);
  EXPECT_EQ(Ch.tryReceive(), 3);
  EXPECT_EQ(Ch.tryReceive(), std::nullopt);
}

TEST(ChannelV2, TrySendRendezvousesWithWaitingReceiver) {
  RendezvousChannelV2<int, 4> Ch;
  EXPECT_FALSE(Ch.trySend(1)) << "no receiver: rendezvous refused";
  auto R = Ch.receive();
  EXPECT_EQ(R.status(), FutureStatus::Pending);
  EXPECT_TRUE(Ch.trySend(9)) << "waiting receiver: direct handoff";
  EXPECT_EQ(R.blockingGet(), 9);
}

TEST(ChannelV2, TryReceiveAdmitsBlockedSender) {
  IntChannel Ch(1);
  EXPECT_TRUE(Ch.send(1).isImmediate());
  auto S2 = Ch.send(2);
  EXPECT_EQ(S2.status(), FutureStatus::Pending);
  EXPECT_EQ(Ch.tryReceive(), 1);
  EXPECT_EQ(S2.blockingGet(), std::make_optional(Unit{}))
      << "draining below capacity must admit the parked sender";
  EXPECT_EQ(Ch.tryReceive(), 2);
}

TEST(ChannelV2, SendBurstDeliversInOrder) {
  BufferedChannelV2<int, 4> Ch(256);
  std::vector<int> Vals(200);
  for (int I = 0; I < 200; ++I)
    Vals[I] = I;
  Ch.sendBurst(Vals.data(), 200);
  for (int I = 0; I < 200; ++I)
    EXPECT_EQ(Ch.receive().tryGet(), I);
}

TEST(ChannelV2, SendBurstHonoursBackpressure) {
  BufferedChannelV2<int, 4> Ch(2);
  std::atomic<int> Sum{0};
  std::thread Consumer([&] {
    for (int I = 0; I < 40; ++I) {
      auto V = Ch.receive().blockingGet();
      ASSERT_TRUE(V.has_value());
      Sum.fetch_add(*V);
    }
  });
  std::vector<int> Vals(40);
  int Want = 0;
  for (int I = 0; I < 40; ++I) {
    Vals[I] = I;
    Want += I;
  }
  Ch.sendBurst(Vals.data(), 40);
  Consumer.join();
  EXPECT_EQ(Sum.load(), Want);
  EXPECT_EQ(Ch.tryReceive(), std::nullopt);
}

// ---- close() semantics (new surface; v1 has no close) ----

TEST(ChannelV2Close, SendAfterCloseFails) {
  IntChannel Ch(4);
  Ch.close();
  EXPECT_TRUE(Ch.isClosed());
  EXPECT_FALSE(Ch.send(1).valid());
  EXPECT_FALSE(Ch.trySend(1));
  EXPECT_FALSE(Ch.sendFor(1, std::chrono::milliseconds(5)));
}

TEST(ChannelV2Close, CloseIsIdempotent) {
  IntChannel Ch(4);
  Ch.close();
  Ch.close();
  EXPECT_TRUE(Ch.isClosed());
}

TEST(ChannelV2Close, BufferedElementsDrainAfterClose) {
  IntChannel Ch(4);
  EXPECT_TRUE(Ch.send(1).isImmediate());
  EXPECT_TRUE(Ch.send(2).isImmediate());
  Ch.close();
  EXPECT_EQ(Ch.tryReceive(), 1);
  auto R = Ch.receive();
  ASSERT_TRUE(R.valid());
  EXPECT_EQ(R.tryGet(), 2);
  EXPECT_FALSE(Ch.receive().valid()) << "drained + closed";
  EXPECT_EQ(Ch.tryReceive(), std::nullopt);
}

TEST(ChannelV2Close, ParkedReceiversAreCancelledByClose) {
  IntChannel Ch(2);
  auto R1 = Ch.receive();
  auto R2 = Ch.receive();
  ASSERT_EQ(R1.status(), FutureStatus::Pending);
  Ch.close();
  EXPECT_EQ(R1.blockingGet(), std::nullopt);
  EXPECT_EQ(R2.blockingGet(), std::nullopt);
}

TEST(ChannelV2Close, ParkedSendersAreCancelledByClose) {
  IntChannel Ch(1);
  EXPECT_TRUE(Ch.send(1).isImmediate());
  auto S2 = Ch.send(2);
  ASSERT_EQ(S2.status(), FutureStatus::Pending);
  Ch.close();
  EXPECT_EQ(S2.blockingGet(), std::nullopt)
      << "close aborts the parked send; its element stays with the caller";
  EXPECT_EQ(Ch.tryReceive(), 1) << "committed elements remain drainable";
  EXPECT_EQ(Ch.tryReceive(), std::nullopt);
}

TEST(ChannelV2Close, CloseRaceWithSendersConserves) {
  for (int Round = 0; Round < 200; ++Round) {
    IntChannel Ch(2);
    std::atomic<int> Accepted{0};
    std::vector<std::thread> Ts;
    for (int T = 0; T < 3; ++T) {
      Ts.emplace_back([&, T] {
        for (int I = 0; I < 8; ++I) {
          auto F = Ch.send(T * 100 + I);
          if (!F.valid())
            return; // closed before the send took effect
          if (F.isImmediate() || F.blockingGet().has_value())
            Accepted.fetch_add(1);
        }
      });
    }
    Ts.emplace_back([&] { Ch.close(); });
    for (auto &T : Ts)
      T.join();
    int Drained = 0;
    while (Ch.tryReceive().has_value())
      ++Drained;
    EXPECT_EQ(Drained, Accepted.load())
        << "every accepted element drains; no accepted element is lost";
  }
}

TEST(ChannelV2Close, CloseRaceWithReceiversNeverHangs) {
  for (int Round = 0; Round < 200; ++Round) {
    RendezvousChannelV2<int, 4> Ch;
    std::vector<std::thread> Ts;
    std::atomic<int> Served{0};
    for (int T = 0; T < 3; ++T) {
      Ts.emplace_back([&] {
        auto F = Ch.receive();
        if (!F.valid())
          return;
        if (F.blockingGet().has_value())
          Served.fetch_add(1);
      });
    }
    Ts.emplace_back([&] { Ch.close(); });
    for (auto &T : Ts)
      T.join(); // the join IS the assertion: close must wake everyone
    EXPECT_EQ(Served.load(), 0) << "nothing was ever sent";
  }
}

// ---- stress / conservation ----

TEST(ChannelV2, ProducerConsumerStressConservesValues) {
  constexpr int Producers = 3, Consumers = 3, PerProducer = 4000;
  constexpr int Total = Producers * PerProducer;
  IntChannel Ch(4);
  std::vector<std::atomic<int>> Seen(Total);
  for (auto &S : Seen)
    S.store(0);

  std::vector<std::thread> Ts;
  std::atomic<int> Next{0};
  for (int P = 0; P < Producers; ++P) {
    Ts.emplace_back([&] {
      for (int I = 0; I < PerProducer; ++I) {
        int V = Next.fetch_add(1);
        (void)Ch.send(V).blockingGet();
      }
    });
  }
  for (int C = 0; C < Consumers; ++C) {
    Ts.emplace_back([&] {
      for (int I = 0; I < Total / Consumers; ++I) {
        auto V = Ch.receive().blockingGet();
        ASSERT_TRUE(V.has_value());
        Seen[*V].fetch_add(1);
      }
    });
  }
  for (auto &T : Ts)
    T.join();
  for (int V = 0; V < Total; ++V)
    ASSERT_EQ(Seen[V].load(), 1) << "value " << V;
  EXPECT_EQ(Ch.tryReceive(), std::nullopt);
}

TEST(ChannelV2, StressWithReceiverCancellation) {
  constexpr int Total = 6000;
  IntChannel Ch(2);
  std::atomic<int> Received{0};

  std::thread Producer([&] {
    for (int I = 0; I < Total; ++I)
      (void)Ch.send(I).blockingGet();
  });
  std::vector<std::thread> Consumers;
  for (int C = 0; C < 3; ++C) {
    Consumers.emplace_back([&, C] {
      SplitMix64 Rng(33 + C);
      for (int Got = 0; Got < Total / 3;) {
        auto R = Ch.receive();
        if (!R.isImmediate() && Rng.chance(1, 2) && R.cancel())
          continue; // aborted this wait; element stays in the channel
        auto V = R.blockingGet();
        ASSERT_TRUE(V.has_value());
        Received.fetch_add(1);
        ++Got;
      }
    });
  }
  Producer.join();
  for (auto &T : Consumers)
    T.join();
  EXPECT_EQ(Received.load(), Total);
}

TEST(ChannelV2, StressWithSenderCancellation) {
  // Senders race timed aborts against a slow consumer; every element
  // reported sent is received exactly once, every aborted send's element
  // never appears.
  constexpr int PerSender = 1500, Senders = 3;
  RendezvousChannelV2<int, 4> Ch;
  std::atomic<int> Sent{0}, Aborted{0};
  std::vector<std::atomic<int>> Seen(Senders * PerSender);
  for (auto &S : Seen)
    S.store(0);
  std::atomic<bool> Done{false};

  std::vector<std::thread> Ts;
  for (int T = 0; T < Senders; ++T) {
    Ts.emplace_back([&, T] {
      SplitMix64 Rng(77 + T);
      for (int I = 0; I < PerSender; ++I) {
        int V = T * PerSender + I;
        auto F = Ch.send(V);
        ASSERT_TRUE(F.valid());
        if (!F.isImmediate() && Rng.chance(1, 2) && F.cancel()) {
          Aborted.fetch_add(1);
          continue;
        }
        ASSERT_TRUE(F.blockingGet().has_value());
        Sent.fetch_add(1);
      }
    });
  }
  std::thread Consumer([&] {
    while (!Done.load(std::memory_order_acquire)) {
      if (auto V = Ch.tryReceive())
        Seen[*V].fetch_add(1);
      else
        std::this_thread::yield();
    }
    while (auto V = Ch.tryReceive())
      Seen[*V].fetch_add(1);
  });
  for (auto &T : Ts)
    T.join();
  Done.store(true, std::memory_order_release);
  Consumer.join();

  int Delivered = 0;
  for (auto &S : Seen) {
    ASSERT_LE(S.load(), 1) << "duplicate delivery";
    Delivered += S.load();
  }
  EXPECT_EQ(Delivered, Sent.load());
  EXPECT_EQ(Sent.load() + Aborted.load(), Senders * PerSender);
}

/// Property sweep over (capacity, pairs): conservation and quiescence for
/// every configuration, including rendezvous.
class ChannelV2Sweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ChannelV2Sweep, ConservationAcrossConfigurations) {
  const int Capacity = std::get<0>(GetParam());
  const int Pairs = std::get<1>(GetParam());
  const int PerProducer = 1500;
  const int Total = Pairs * PerProducer;

  BufferedChannelV2<int, 4> Ch(Capacity);
  std::vector<std::atomic<int>> Seen(Total);
  for (auto &S : Seen)
    S.store(0);

  std::vector<std::thread> Ts;
  std::atomic<int> Next{0};
  for (int P = 0; P < Pairs; ++P) {
    Ts.emplace_back([&] {
      for (int I = 0; I < PerProducer; ++I) {
        int V = Next.fetch_add(1);
        (void)Ch.send(V).blockingGet();
      }
    });
    Ts.emplace_back([&] {
      for (int I = 0; I < PerProducer; ++I) {
        auto V = Ch.receive().blockingGet();
        ASSERT_TRUE(V.has_value());
        Seen[*V].fetch_add(1);
      }
    });
  }
  for (auto &T : Ts)
    T.join();
  for (int V = 0; V < Total; ++V)
    ASSERT_EQ(Seen[V].load(), 1) << "value " << V;
  EXPECT_EQ(Ch.tryReceive(), std::nullopt);
  EXPECT_EQ(Ch.sizeApproxForTesting(), 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChannelV2Sweep,
                         ::testing::Combine(::testing::Values(0, 1, 3, 16),
                                            ::testing::Values(1, 2, 4)),
                         [](const auto &Info) {
                           return "Cap" +
                                  std::to_string(std::get<0>(Info.param)) +
                                  "_P" +
                                  std::to_string(std::get<1>(Info.param));
                         });

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
