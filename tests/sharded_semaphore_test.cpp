//===- tests/sharded_semaphore_test.cpp - sharded permit caches -----------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The sharded semaphore's contracts: permit conservation (global pool +
/// shard caches always balance), the stranded-permit Dekker (no waiter
/// parks while a permit sits in a cache), blocking FIFO fallback, timed
/// acquisition, and the shard stats actually seeing cache traffic.
///
//===----------------------------------------------------------------------===//

#include "core/CqsStats.h"
#include "reclaim/Ebr.h"
#include "support/Striping.h"
#include "sync/ShardedSemaphore.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace cqs;

namespace {

using Sem = BasicShardedSemaphore<4>;

TEST(ShardedSemaphore, ImmediateWhenPermitsAvailable) {
  Sem S(4, /*Shards=*/4);
  EXPECT_EQ(S.shardCountForTesting(), 4u);
  EXPECT_EQ(S.shardCapForTesting(), 1);
  std::vector<Sem::FutureType> Fs;
  for (int I = 0; I < 4; ++I) {
    Fs.push_back(S.acquire());
    EXPECT_TRUE(Fs.back().isImmediate());
  }
  auto W = S.acquire();
  EXPECT_FALSE(W.isImmediate()) << "fifth acquire must block";
  S.release();
  EXPECT_EQ(W.status(), FutureStatus::Completed);
  for (int I = 0; I < 4; ++I)
    S.release();
  EXPECT_EQ(S.totalPermitsForTesting(), 4);
}

TEST(ShardedSemaphore, ReleaseBanksInShardAndAcquireFindsIt) {
  Sem S(8, /*Shards=*/2);
  auto F = S.acquire(); // global pool (caches start empty)
  ASSERT_TRUE(F.isImmediate());
  std::uint64_t PutsBefore = CqsStats::read(shardStats().Puts);
  std::uint64_t HitsBefore = CqsStats::read(shardStats().Hits);
  S.release(); // nobody waits: banks into the home shard
  EXPECT_EQ(CqsStats::read(shardStats().Puts), PutsBefore + 1);
  auto G = S.acquire(); // same thread, same home shard: cache hit
  ASSERT_TRUE(G.isImmediate());
  EXPECT_EQ(CqsStats::read(shardStats().Hits), HitsBefore + 1);
  S.release();
  EXPECT_EQ(S.totalPermitsForTesting(), 8);
}

TEST(ShardedSemaphore, StealingFindsRemoteCachedPermit) {
  Sem S(2, /*Shards=*/2);
  auto F = S.acquire();
  ASSERT_TRUE(F.isImmediate());
  S.release(); // banked in *this* thread's home shard
  // A thread pinned to the other stripe must still get the permit via the
  // stealing sweep (its own cache is empty).
  unsigned MainStripe = currentStripe(2);
  std::atomic<bool> Ok{false};
  std::thread T([&] {
    setThreadStripeSlotForTesting(MainStripe + 1);
    auto G = S.acquire();
    Ok.store(G.isImmediate(), std::memory_order_release);
    if (G.isImmediate())
      S.release();
  });
  T.join();
  EXPECT_TRUE(Ok.load(std::memory_order_acquire))
      << "remote cached permit not stolen";
  EXPECT_EQ(S.totalPermitsForTesting(), 2);
}

TEST(ShardedSemaphore, NoPermitStrandedWhileWaiterParks) {
  // The Dekker scenario, sequentialized: a waiter registers, then a
  // release lands. Whatever path the release takes (bank + re-check or
  // global), the waiter must complete and no permit may stay cached.
  Sem S(1, /*Shards=*/4);
  auto Hold = S.acquire();
  ASSERT_TRUE(Hold.isImmediate());
  std::atomic<bool> Served{false};
  std::thread Waiter([&] {
    auto F = S.acquire();
    ASSERT_TRUE(F.blockingGet().has_value());
    Served.store(true, std::memory_order_release);
    S.release();
  });
  // Release from another thread repeatedly racing the waiter's
  // registration window.
  S.release();
  Waiter.join();
  EXPECT_TRUE(Served.load(std::memory_order_acquire));
  EXPECT_EQ(S.totalPermitsForTesting(), 1)
      << "permit lost in a cache or duplicated";
}

TEST(ShardedSemaphore, TryAcquireForZeroNeverHangsAndConserves) {
  Sem S(2, /*Shards=*/2);
  auto A = S.acquire();
  auto B = S.acquire();
  ASSERT_TRUE(A.isImmediate() && B.isImmediate());
  EXPECT_FALSE(S.tryAcquireFor(std::chrono::nanoseconds(0)));
  EXPECT_FALSE(S.tryAcquireFor(std::chrono::milliseconds(1)));
  S.release();
  S.release();
  EXPECT_TRUE(S.tryAcquireFor(std::chrono::nanoseconds(0)));
  S.release();
  EXPECT_EQ(S.totalPermitsForTesting(), 2);
}

TEST(ShardedSemaphore, SyncModeTryAcquire) {
  BasicShardedSemaphore<4> S(2, /*Shards=*/2, ResumptionMode::Sync);
  EXPECT_TRUE(S.tryAcquire());
  S.release(); // banks in a cache — tryAcquire must still find it
  EXPECT_TRUE(S.tryAcquire());
  EXPECT_TRUE(S.tryAcquire());
  EXPECT_FALSE(S.tryAcquire());
  S.release(2);
  EXPECT_EQ(S.totalPermitsForTesting(), 2);
}

TEST(ShardedSemaphore, ConservationUnderContention) {
  constexpr std::int64_t Permits = 4;
  constexpr int Threads = 6;
  constexpr int Rounds = 800;
  Sem S(Permits, /*Shards=*/4);
  std::atomic<int> InCS{0};
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T) {
    Ts.emplace_back([&, T] {
      for (int R = 0; R < Rounds; ++R) {
        if (T == Threads - 1 && R % 4 == 0) {
          // One thread mixes timed acquisitions into the same traffic.
          if (S.tryAcquireFor(std::chrono::microseconds(50))) {
            InCS.fetch_add(1, std::memory_order_relaxed);
            InCS.fetch_sub(1, std::memory_order_relaxed);
            S.release();
          }
          continue;
        }
        auto F = S.acquire();
        ASSERT_TRUE(F.blockingGet().has_value());
        int N = InCS.fetch_add(1, std::memory_order_acq_rel);
        ASSERT_LT(N, Permits) << "more holders than permits";
        InCS.fetch_sub(1, std::memory_order_acq_rel);
        S.release();
      }
    });
  }
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(S.totalPermitsForTesting(), Permits)
      << "permits lost or duplicated under contention";
  EXPECT_EQ(S.availablePermits() >= 0, true);
}

TEST(ShardedSemaphore, BatchedReleaseWakesWaiters) {
  Sem S(3, /*Shards=*/2);
  std::vector<Sem::FutureType> Held;
  for (int I = 0; I < 3; ++I)
    Held.push_back(S.acquire());
  std::vector<Sem::FutureType> Ws;
  for (int I = 0; I < 3; ++I) {
    Ws.push_back(S.acquire());
    EXPECT_FALSE(Ws.back().isImmediate());
  }
  S.release(3);
  for (auto &W : Ws)
    EXPECT_EQ(W.status(), FutureStatus::Completed);
  S.release(3);
  EXPECT_EQ(S.totalPermitsForTesting(), 3);
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
