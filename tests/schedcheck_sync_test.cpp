//===- tests/schedcheck_sync_test.cpp - model-checked sync primitives -----===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The paper's derived primitives under the deterministic scheduler:
/// semaphore permit conservation across a cancelled acquire (the Section 4
/// motivation for smart cancellation), and mutex mutual exclusion both via
/// tryLock spinning and via blocking lock futures (which exercises the
/// modelled futex park/wake path end to end).
///
//===----------------------------------------------------------------------===//

#include "reclaim/Ebr.h"
#include "schedcheck/Sched.h"
#include "support/Backoff.h"
#include "sync/Mutex.h"
#include "sync/Semaphore.h"

#include <gtest/gtest.h>

using namespace cqs;

namespace {

using SmallSem = BasicSemaphore<2>;
using SmallMutex = BasicMutex<2>;

// --------------------------------------------------------------------------
// Semaphore: no permit may be lost or duplicated, whatever the schedule.
// --------------------------------------------------------------------------

/// One permit, held by the scenario body. T1 races an acquire (cancelling
/// it if it suspends) against T2 releasing the body's permit. Afterwards
/// the permit count must balance exactly: if T1 ended up holding the
/// permit there are 0 available, if its cancellation won there is 1.
/// Smart cancellation's permit-return path is exactly what is under test.
void semaphorePermitConservation() {
  auto *Sem = new SmallSem(1, ResumptionMode::Async);
  auto F0 = new SmallSem::FutureType(Sem->acquire());
  sc::check(F0->isImmediate(), "first acquire must take the free permit");
  bool CancelWon = false;
  auto *F1 = new SmallSem::FutureType(SmallSem::FutureType::invalid());
  sc::Thread T1 = sc::spawn([&] {
    *F1 = Sem->acquire();
    if (!F1->isImmediate())
      CancelWon = F1->cancel();
  });
  sc::Thread T2 = sc::spawn([&] { Sem->release(); });
  T1.join();
  T2.join();
  bool Holds = F1->isImmediate() ||
               (F1->valid() && F1->status() == FutureStatus::Completed);
  sc::check(!(CancelWon && Holds),
            "cancelled acquire still holds a permit");
  std::int64_t Avail = Sem->availablePermits();
  sc::check(Avail == (Holds ? 0 : 1),
            "permit lost or duplicated across cancel/release race");
  // Drain: put the system back to 1 free permit so teardown is uniform.
  if (Holds)
    Sem->release();
  delete F1;
  delete F0;
  delete Sem;
}

TEST(SchedcheckSync, SemaphorePermitConservationExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 2;
  O.Iterations = 200000;
  sc::Result R = sc::explore(O, semaphorePermitConservation);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

TEST(SchedcheckSync, SemaphorePermitConservationRandomSweep) {
  sc::Options O;
  O.Strat = sc::Strategy::Random;
  O.Seed = 3;
  O.Iterations = 1500;
  sc::Result R = sc::explore(O, semaphorePermitConservation);
  EXPECT_TRUE(R.Ok) << R.Report;
}

// --------------------------------------------------------------------------
// Mutex: mutual exclusion, spinning and blocking flavours.
// --------------------------------------------------------------------------

/// Two threads contend with tryLock + backoff; the critical section uses a
/// non-atomic-looking counter protocol (fetch_add observed value) so any
/// overlap is caught in the execution where it happens.
void mutexTryLockExclusion() {
  auto *M = new SmallMutex(ResumptionMode::Sync);
  auto *InCS = new Atomic<int>(0);
  auto Worker = [&] {
    Backoff B;
    while (!M->tryLock())
      B.pause();
    int Before = InCS->fetch_add(1, std::memory_order_seq_cst);
    sc::check(Before == 0, "two threads inside the critical section");
    InCS->fetch_sub(1, std::memory_order_seq_cst);
    M->unlock();
  };
  sc::Thread T1 = sc::spawn(Worker);
  sc::Thread T2 = sc::spawn(Worker);
  T1.join();
  T2.join();
  sc::check(!M->isLocked(), "mutex still held after both unlocks");
  delete InCS;
  delete M;
}

TEST(SchedcheckSync, MutexTryLockExclusionExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 1;
  O.Iterations = 200000;
  sc::Result R = sc::explore(O, mutexTryLockExclusion);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

/// Blocking flavour: lock() futures + blockingGet() park the loser on the
/// modelled futex; unlock resumes it through the CQS. Covers suspend,
/// resume, futex wait/wake and the FIFO handoff in one scenario.
void mutexBlockingExclusion() {
  auto *M = new SmallMutex(ResumptionMode::Async);
  auto *InCS = new Atomic<int>(0);
  auto Worker = [&] {
    auto F = M->lock();
    sc::check(F.blockingGet().has_value(),
              "lock future neither completed nor cancelled");
    int Before = InCS->fetch_add(1, std::memory_order_seq_cst);
    sc::check(Before == 0, "two threads inside the critical section");
    InCS->fetch_sub(1, std::memory_order_seq_cst);
    M->unlock();
  };
  sc::Thread T1 = sc::spawn(Worker);
  sc::Thread T2 = sc::spawn(Worker);
  T1.join();
  T2.join();
  sc::check(!M->isLocked(), "mutex still held after both unlocks");
  delete InCS;
  delete M;
}

TEST(SchedcheckSync, MutexBlockingExclusionExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 1;
  O.Iterations = 200000;
  sc::Result R = sc::explore(O, mutexBlockingExclusion);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

TEST(SchedcheckSync, MutexBlockingExclusionPctSweep) {
  sc::Options O;
  O.Strat = sc::Strategy::Pct;
  O.Seed = 5;
  O.Iterations = 1000;
  sc::Result R = sc::explore(O, mutexBlockingExclusion);
  EXPECT_TRUE(R.Ok) << R.Report;
}

/// Happens-before validation (DESIGN.md §11): plain data guarded by the
/// mutex, accessed through the race-checked cqs::Shared. Beyond mutual
/// exclusion as an interleaving property, this asserts the lock/unlock
/// *memory orders* actually build the release/acquire chain that hands the
/// data from one critical section to the next — a relaxed downgrade
/// anywhere in lock(), unlock() or the CQS resume path fails this run.
void mutexProtectsPlainData() {
  auto *M = new SmallMutex(ResumptionMode::Async);
  auto *D = new Shared<int>(0);
  auto Worker = [&] {
    auto F = M->lock();
    sc::check(F.blockingGet().has_value(), "lock future failed");
    D->set(D->get() + 1);
    M->unlock();
  };
  sc::Thread T1 = sc::spawn(Worker);
  sc::Thread T2 = sc::spawn(Worker);
  T1.join();
  T2.join();
  sc::check(D->get() == 2, "critical sections lost an update");
  delete D;
  delete M;
}

TEST(SchedcheckSync, MutexCarriesHappensBeforeToGuardedData) {
  sc::Options O;
  O.Strat = sc::Strategy::Random;
  O.Seed = 11;
  O.Iterations = 800;
  O.HbCheck = true; // race-clean in the plain leg too, not only under HB
  sc::Result R = sc::explore(O, mutexProtectsPlainData);
  EXPECT_TRUE(R.Ok) << R.Report;
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
