//===- tests/service_soak_test.cpp - fault-injection service soak ---------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The fault-injection soak leg of the quota service (DESIGN.md §13):
/// sustained client traffic with three adversaries injected at random —
///
///  - *worker stalls*: an injector drains the whole connection pool and
///    sits on it for a few milliseconds, starving every handler mid-flight
///    (backend brown-out);
///  - *client disconnect storms*: bursts of submitted requests whose reply
///    futures are all cancelled at once, racing the service's completes;
///  - *hot-reloads*: the traffic tenant's limiter keeps being replaced.
///
/// All under the torture-test watchdog (no progress for 30s = deadlock =
/// abort), and audited afterwards with the same conservation oracle as
/// tests/service_conservation_test.cpp: every submission resolved exactly
/// once, every permit released into its generation, the pool whole again.
///
/// Tagged with the ctest `stress` label: PR CI runs the short default,
/// nightly sets CQS_STRESS_FULL=1 for the long run (~10x).
///
//===----------------------------------------------------------------------===//

#include "service/QuotaService.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

using namespace cqs;
using namespace cqs::service;
using namespace std::chrono;

namespace {

/// Nightly runs multiply every workload by this (CQS_STRESS_FULL=1); PR CI
/// keeps the short default so the suite stays seconds-scale.
int stressScale() {
  const char *E = std::getenv("CQS_STRESS_FULL");
  return (E && E[0] == '1') ? 10 : 1;
}

TEST(ServiceSoak, StallsDisconnectsAndReloadsUnderWatchdog) {
  ServiceConfig C;
  C.Dispatchers = 2;
  C.HandlerThreads = 2;
  C.QueueCapacity = 512;
  C.Connections = 8;
  C.Admission = AdmissionMode::Async;
  C.HoldTime = microseconds(50);
  QuotaService S(C);
  S.configureTenant(1, /*Limit=*/8, milliseconds(2));
  S.configureTenant(2, /*Limit=*/32, milliseconds(2));

  const int Scale = stressScale();
  const int ClientThreads = 4;
  const int BurstsPerThread = 60 * Scale;
  const int BurstSize = 32;

  std::atomic<long> Progress{0};
  std::atomic<bool> Done{false};

  // Torture-style watchdog: the mix must keep making progress.
  std::thread Watchdog([&] {
    long Last = -1;
    int Stalls = 0;
    while (!Done.load()) {
      std::this_thread::sleep_for(seconds(2));
      long Cur = Progress.load();
      if (Cur == Last && !Done.load() && ++Stalls >= 15) {
        std::fprintf(stderr, "service soak: no progress for 30s at %ld\n",
                     Cur);
        std::abort();
      }
      if (Cur != Last)
        Stalls = 0;
      Last = Cur;
    }
  });

  // Worker-stall injector: periodically steal every idle connection and
  // hold the set for 1-5ms. Handlers park in Conns.take(); the watchdog
  // proves they always resume once the stall ends.
  std::thread Staller([&] {
    SplitMix64 Rng(0xDEADBEEF);
    auto &Pool = S.connectionPoolForTesting();
    while (!Done.load(std::memory_order_acquire)) {
      std::vector<Connection *> Stolen;
      while (std::optional<Connection *> Conn = Pool.tryTake())
        Stolen.push_back(*Conn);
      std::this_thread::sleep_for(
          microseconds(1000 + Rng.nextBelow(4000)));
      for (Connection *Conn : Stolen)
        Pool.put(Conn);
      std::this_thread::sleep_for(
          microseconds(500 + Rng.nextBelow(2000)));
    }
  });

  // Hot-reload injector.
  std::thread Reloader([&] {
    SplitMix64 Rng(0xFEEDFACE);
    while (!Done.load(std::memory_order_acquire)) {
      S.configureTenant(1, 4 + Rng.nextBelow(12), milliseconds(2));
      std::this_thread::sleep_for(microseconds(700));
    }
  });

  std::atomic<std::uint64_t> ClientResolved{0};
  std::vector<std::thread> Clients;
  for (int W = 0; W < ClientThreads; ++W) {
    Clients.emplace_back([&, W] {
      SplitMix64 Rng(0xABCD + W);
      std::vector<QuotaService::ReplyFuture> Burst;
      Burst.reserve(BurstSize);
      for (int B = 0; B < BurstsPerThread; ++B) {
        bool Disconnect = Rng.chance(1, 3); // storm: cancel the whole burst
        Burst.clear();
        for (int I = 0; I < BurstSize; ++I)
          Burst.push_back(S.submit(Rng.chance(1, 2) ? 1 : 2));
        if (Disconnect)
          for (auto &F : Burst)
            (void)F.cancel(); // races the service's complete(); either wins
        for (auto &F : Burst) {
          (void)F.blockingGet(); // resolved either way (cancel counts too)
          ClientResolved.fetch_add(1, std::memory_order_relaxed);
          Progress.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto &T : Clients)
    T.join();
  Done.store(true, std::memory_order_release);
  Staller.join();
  Reloader.join();
  Watchdog.join();
  S.shutdown();

  // Conservation after the storm.
  ServiceStatsSnapshot Snap = S.snapshot();
  EXPECT_TRUE(Snap.accountingBalanced())
      << "delivered=" << Snap.delivered()
      << " cancelled=" << Snap.ClientCancelled
      << " submitted=" << Snap.Submitted;
  EXPECT_EQ(Snap.Submitted, ClientResolved.load());
  EXPECT_EQ(Snap.Submitted,
            std::uint64_t(ClientThreads) * BurstsPerThread * BurstSize);
  S.table().forEachLimiter([&](std::uint64_t Tenant, const TenantLimiter &L) {
    EXPECT_EQ(L.admitted(), L.released())
        << "tenant " << Tenant << " gen " << L.Generation;
    EXPECT_EQ(L.Sem.totalPermitsForTesting(), L.Limit)
        << "tenant " << Tenant << " gen " << L.Generation;
  });
  EXPECT_EQ(S.idleConnectionsForTesting(),
            static_cast<std::int64_t>(C.Connections));
  EXPECT_GT(Snap.ClientCancelled, 0u) << "disconnect storms never won";
  EXPECT_GT(Snap.Served, 0u);
  EXPECT_GT(Snap.Reloads, 1u);
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
