//===- tests/schedcheck_hb_test.cpp - happens-before canaries -------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Canary suite for the happens-before layer (DESIGN.md §11): deliberately
/// mis-annotated toy primitives the detector MUST flag, each paired with
/// the correctly-annotated version it must pass, and each failure pinned
/// to deterministic seed replay. The three injected bugs are the classic
/// downgrades a reviewer is most likely to wave through because every SC
/// interleaving still reads the right value:
///
///   1. a spinlock whose unlock store is relaxed instead of release;
///   2. a publish flag spun on with a relaxed load and no acquire;
///   3. fence-based publication missing its release fence (the unfenced
///      EBR-retire shape).
///
/// On the same machinery: the deadlock detector must classify the PR 7
/// select committed-unfulfilled shape — two parties each committed to the
/// peer's cell and parked on their own doorbell — as a wait-for cycle, and
/// a parked thread whose wake word no live thread has ever touched as a
/// lost wakeup.
///
/// Every scenario forces Options::HbCheck on, so this suite checks the
/// detector in the plain schedcheck CI leg as well as the schedcheck-hb
/// leg (where HbCheck merely defaults on).
///
//===----------------------------------------------------------------------===//

#include "schedcheck/Sched.h"
#include "support/Atomic.h"

#include <gtest/gtest.h>

#include <string>

using namespace cqs;

namespace {

/// Toy test-and-set spinlock with a pluggable unlock order: the canary
/// downgrade is memory_order_relaxed, the fix memory_order_release.
struct ToyLock {
  Atomic<int> L{0};
  void lock() {
    while (L.exchange(1, std::memory_order_acquire) != 0)
      sc::yield();
  }
  void unlock(std::memory_order O) { L.store(0, O); }
};

void lockScenario(std::memory_order UnlockOrder) {
  auto *Lk = new ToyLock();
  auto *D = new Shared<int>(0);
  auto Worker = [Lk, D, UnlockOrder] {
    Lk->lock();
    D->set(D->get() + 1);
    Lk->unlock(UnlockOrder);
  };
  sc::Thread T1 = sc::spawn(Worker);
  sc::Thread T2 = sc::spawn(Worker);
  T1.join();
  T2.join();
  sc::check(D->get() == 2, "critical sections lost an increment");
  delete D;
  delete Lk;
}

void publishScenario(std::memory_order LoadOrder) {
  auto *F = new Atomic<int>(0);
  auto *D = new Shared<int>(0);
  sc::Thread P = sc::spawn([F, D] {
    D->set(42);
    F->store(1, std::memory_order_release);
  });
  sc::Thread C = sc::spawn([F, D, LoadOrder] {
    while (F->load(LoadOrder) == 0)
      sc::yield();
    sc::check(D->get() == 42, "published payload not visible");
  });
  P.join();
  C.join();
  delete D;
  delete F;
}

/// Fence-based publication, the shape of an EBR retire: the writer's store
/// to the epoch word is relaxed on purpose and a standalone release fence
/// is what orders the preceding payload writes — omit it and every edge to
/// the reader's acquire fence is gone.
void fencedRetireScenario(bool WithReleaseFence) {
  auto *E = new Atomic<int>(0);
  auto *D = new Shared<int>(0);
  sc::Thread W = sc::spawn([E, D, WithReleaseFence] {
    D->set(7);
    if (WithReleaseFence)
      atomicThreadFence(std::memory_order_release);
    E->store(1, std::memory_order_relaxed);
  });
  sc::Thread R = sc::spawn([E, D] {
    while (E->load(std::memory_order_relaxed) == 0)
      sc::yield();
    atomicThreadFence(std::memory_order_acquire);
    sc::check(D->get() == 7, "retired payload not visible");
  });
  W.join();
  R.join();
  delete D;
  delete E;
}

sc::Options hbOptions() {
  sc::Options O;
  O.Strat = sc::Strategy::Random;
  O.Seed = 7;
  O.Iterations = 64;
  O.HbCheck = true;
  return O;
}

/// A detected race must replay deterministically: same seed, same verdict,
/// byte-identical trace.
void expectRaceAndReplay(const sc::Result &R, sc::Options O,
                         void (*Scenario)(std::memory_order),
                         std::memory_order Arg) {
  ASSERT_FALSE(R.Ok) << "the injected order bug must be detected";
  EXPECT_NE(R.FailSeed, 0u);
  EXPECT_NE(R.Report.find("data race"), std::string::npos) << R.Report;
  EXPECT_NE(R.Report.find("no happens-before edge"), std::string::npos)
      << R.Report;
  // Both access sites, file:line, in this file.
  EXPECT_NE(R.Report.find("schedcheck_hb_test.cpp"), std::string::npos)
      << R.Report;
  EXPECT_NE(R.Report.find("clocks:"), std::string::npos) << R.Report;
  sc::Options Replay = O;
  Replay.ReplaySeed = R.FailSeed;
  sc::Result R2 = sc::explore(Replay, [Scenario, Arg] { Scenario(Arg); });
  ASSERT_FALSE(R2.Ok) << "replay of a failing seed must fail again";
  EXPECT_EQ(R2.FailSeed, R.FailSeed);
  EXPECT_EQ(R2.Trace, R.Trace) << "replay must reproduce the trace";
}

TEST(SchedcheckHb, RelaxedUnlockIsARace) {
  sc::Options O = hbOptions();
  sc::Result R =
      sc::explore(O, [] { lockScenario(std::memory_order_relaxed); });
  expectRaceAndReplay(R, O, lockScenario, std::memory_order_relaxed);
}

TEST(SchedcheckHb, ReleaseUnlockIsClean) {
  sc::Options O = hbOptions();
  O.Iterations = 200;
  sc::Result R =
      sc::explore(O, [] { lockScenario(std::memory_order_release); });
  EXPECT_TRUE(R.Ok) << R.Report;
}

TEST(SchedcheckHb, RelaxedSpinLoadIsARace) {
  sc::Options O = hbOptions();
  sc::Result R =
      sc::explore(O, [] { publishScenario(std::memory_order_relaxed); });
  expectRaceAndReplay(R, O, publishScenario, std::memory_order_relaxed);
}

TEST(SchedcheckHb, AcquireSpinLoadIsClean) {
  sc::Options O = hbOptions();
  O.Iterations = 200;
  sc::Result R =
      sc::explore(O, [] { publishScenario(std::memory_order_acquire); });
  EXPECT_TRUE(R.Ok) << R.Report;
}

TEST(SchedcheckHb, UnfencedRetireIsARace) {
  sc::Options O = hbOptions();
  sc::Result R = sc::explore(O, [] { fencedRetireScenario(false); });
  ASSERT_FALSE(R.Ok) << "missing release fence must be detected";
  EXPECT_NE(R.Report.find("data race"), std::string::npos) << R.Report;
  EXPECT_NE(R.Report.find("schedcheck_hb_test.cpp"), std::string::npos)
      << R.Report;
  sc::Options Replay = O;
  Replay.ReplaySeed = R.FailSeed;
  sc::Result R2 = sc::explore(Replay, [] { fencedRetireScenario(false); });
  ASSERT_FALSE(R2.Ok);
  EXPECT_EQ(R2.Trace, R.Trace);
}

TEST(SchedcheckHb, FencedRetireIsClean) {
  sc::Options O = hbOptions();
  O.Iterations = 200;
  sc::Result R = sc::explore(O, [] { fencedRetireScenario(true); });
  EXPECT_TRUE(R.Ok) << R.Report;
}

/// The flagging gate: with HbCheck off the same mis-annotated scenarios
/// run green (the plain schedcheck leg keeps its historical semantics; the
/// clock machinery still runs for deadlock classification).
TEST(SchedcheckHb, GateOffSuppressesRaceVerdicts) {
  sc::Options O = hbOptions();
  O.HbCheck = false;
  EXPECT_TRUE(
      sc::explore(O, [] { lockScenario(std::memory_order_relaxed); }).Ok);
  EXPECT_TRUE(
      sc::explore(O, [] { publishScenario(std::memory_order_relaxed); }).Ok);
  EXPECT_TRUE(sc::explore(O, [] { fencedRetireScenario(false); }).Ok);
}

/// Distilled regression for the PR 7 select bug shape (a select clause
/// committed to its peer's cell without securing the peer, then parked on
/// its own doorbell — so did the peer): the detector must name the mutual
/// wait as a wait-for cycle instead of leaving a bare thread-state dump.
TEST(SchedcheckHb, SelectCommittedUnfulfilledIsAWaitForCycle) {
  sc::Options O;
  O.Strat = sc::Strategy::Random;
  O.Iterations = 1;
  auto Scenario = [] {
    auto *CellA = new Atomic<std::uint32_t>(0); // T1's doorbell
    auto *CellB = new Atomic<std::uint32_t>(0); // T2's doorbell
    sc::Thread T1 = sc::spawn([CellA, CellB] {
      (void)CellB->load(std::memory_order_acquire); // commit to the peer
      CellA->wait(0);                               // park unfulfilled
    });
    sc::Thread T2 = sc::spawn([CellA, CellB] {
      (void)CellA->load(std::memory_order_acquire);
      CellB->wait(0);
    });
    T1.join();
    T2.join();
    delete CellB;
    delete CellA;
  };
  sc::Result R = sc::explore(O, Scenario);
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Report.find("deadlock"), std::string::npos) << R.Report;
  EXPECT_NE(R.Report.find("wait-for cycle"), std::string::npos) << R.Report;
  // Both parties and their park sites are named.
  EXPECT_NE(R.Report.find("T1"), std::string::npos) << R.Report;
  EXPECT_NE(R.Report.find("T2"), std::string::npos) << R.Report;
  EXPECT_NE(R.Report.find("blocked on"), std::string::npos) << R.Report;
  sc::Options Replay = O;
  Replay.ReplaySeed = R.FailSeed;
  sc::Result R2 = sc::explore(Replay, Scenario);
  ASSERT_FALSE(R2.Ok);
  EXPECT_NE(R2.Report.find("wait-for cycle"), std::string::npos) << R2.Report;
  EXPECT_EQ(R2.Trace, R.Trace);
}

/// A parked thread whose wake word no live thread has ever touched cannot
/// be woken by anyone: that is a lost wakeup, not a mutual wait.
TEST(SchedcheckHb, OrphanedWaiterIsALostWakeup) {
  sc::Options O;
  O.Strat = sc::Strategy::Random;
  O.Iterations = 1;
  sc::Result R = sc::explore(O, [] {
    auto *Word = new Atomic<std::uint32_t>(0);
    sc::Thread T1 = sc::spawn([Word] { Word->wait(0); });
    T1.join();
    delete Word;
  });
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Report.find("deadlock"), std::string::npos) << R.Report;
  EXPECT_NE(R.Report.find("lost wakeup"), std::string::npos) << R.Report;
  EXPECT_EQ(R.Report.find("wait-for cycle"), std::string::npos) << R.Report;
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
