//===- tests/lincheck_test.cpp - consistency-checker scenarios ------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Mini-Lincheck scenarios (src/lincheck/Checker.h) for the non-blocking
/// faces of the library: the future's complete/cancel/get state machine,
/// the count-down latch, and the semaphore's tryAcquire/release counter.
/// Plus the mandatory sanity check that the checker itself *can* detect a
/// deliberately non-sequentially-consistent structure.
///
//===----------------------------------------------------------------------===//

#include "lincheck/Checker.h"

#include "future/Future.h"
#include "reclaim/Ebr.h"
#include "support/Rng.h"
#include "sync/ChannelV2.h"
#include "sync/CountDownLatch.h"
#include "sync/Semaphore.h"
#include "task/Combinators.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

using namespace cqs;
using namespace cqs::lincheck;

namespace {

// --------------------------------------------------------------------------
// Target 1: Request<int> — the future state machine of Appendix A.
// --------------------------------------------------------------------------

struct FutureModel {
  // -1 pending, -2 cancelled, otherwise the completed value.
  std::int64_t State = -1;
};

struct SharedFuture {
  SharedFuture() : R(Ref<Request<int>>::adopt(new Request<int>(1))) {}
  Ref<Request<int>> R;
};

using FutureChecker = ScChecker<SharedFuture, FutureModel>;

FutureChecker::OpT completeOp(int V) {
  return {"complete(" + std::to_string(V) + ")",
          [V](SharedFuture &S) -> std::int64_t {
            return S.R->complete(V) ? 1 : 0;
          },
          [V](FutureModel &M) -> std::int64_t {
            if (M.State != -1)
              return 0;
            M.State = V;
            return 1;
          }};
}

FutureChecker::OpT cancelOp() {
  return {"cancel",
          [](SharedFuture &S) -> std::int64_t { return S.R->cancel() ? 1 : 0; },
          [](FutureModel &M) -> std::int64_t {
            if (M.State != -1)
              return 0;
            M.State = -2;
            return 1;
          }};
}

FutureChecker::OpT getOp() {
  return {"tryGet",
          [](SharedFuture &S) -> std::int64_t {
            switch (S.R->status()) {
            case FutureStatus::Pending:
              return -1;
            case FutureStatus::Cancelled:
              return -2;
            case FutureStatus::Completed:
              return *S.R->tryGet();
            }
            return -99;
          },
          [](FutureModel &M) -> std::int64_t { return M.State; }};
}

TEST(Lincheck, FutureCompleteCancelGetIsConsistent) {
  auto MakeScenario = [](std::uint64_t Seed) {
    SplitMix64 Rng(Seed);
    FutureChecker::Scenario S(3);
    // Thread 0 completes (value varies), thread 1 cancels, thread 2 reads.
    S[0] = {getOp(), completeOp(static_cast<int>(Rng.nextBelow(5)) + 10),
            getOp()};
    S[1] = {cancelOp(), getOp()};
    S[2] = {getOp(), getOp(), getOp()};
    return S;
  };
  Verdict V = FutureChecker::checkMany(
      [] { return new SharedFuture(); }, [] { return FutureModel{}; },
      MakeScenario, /*Rounds=*/800);
  EXPECT_TRUE(V.Ok) << V.Explanation;
}

TEST(Lincheck, OneCompleterTwoCancellers) {
  // One completion permit (the CQS contract) racing two cancellation
  // attempts: exactly one terminal transition wins and every reader
  // agrees with some interleaving.
  auto MakeScenario = [](std::uint64_t) {
    FutureChecker::Scenario S(3);
    S[0] = {completeOp(1), getOp()};
    S[1] = {cancelOp(), getOp()};
    S[2] = {cancelOp(), getOp()};
    return S;
  };
  Verdict V = FutureChecker::checkMany(
      [] { return new SharedFuture(); }, [] { return FutureModel{}; },
      MakeScenario, /*Rounds=*/600);
  EXPECT_TRUE(V.Ok) << V.Explanation;
}

// --------------------------------------------------------------------------
// Target 2: the count-down latch.
// --------------------------------------------------------------------------

struct LatchModel {
  std::int64_t Count = 3;
};

using SmallLatch = BasicCountDownLatch<4>;
using LatchChecker = ScChecker<SmallLatch, LatchModel>;

LatchChecker::OpT countDownOp() {
  return {"countDown",
          [](SmallLatch &L) -> std::int64_t {
            L.countDown();
            return 0;
          },
          [](LatchModel &M) -> std::int64_t {
            if (M.Count > 0)
              --M.Count;
            return 0;
          }};
}

LatchChecker::OpT countOp() {
  return {"count",
          [](SmallLatch &L) -> std::int64_t { return L.count(); },
          [](LatchModel &M) -> std::int64_t { return M.Count; }};
}

LatchChecker::OpT tryAwaitOp() {
  return {"tryAwait",
          [](SmallLatch &L) -> std::int64_t {
            // Observable as non-blocking: open latches answer immediately;
            // otherwise register and immediately abort the wait.
            auto F = L.await();
            if (F.isImmediate())
              return 1;
            (void)F.cancel();
            return 0;
          },
          [](LatchModel &M) -> std::int64_t { return M.Count == 0 ? 1 : 0; }};
}

TEST(Lincheck, LatchCountersAreConsistent) {
  auto MakeScenario = [](std::uint64_t Seed) {
    SplitMix64 Rng(Seed);
    LatchChecker::Scenario S(3);
    for (auto &Thread : S) {
      int Len = 2 + static_cast<int>(Rng.nextBelow(2));
      for (int I = 0; I < Len; ++I) {
        switch (Rng.nextBelow(3)) {
        case 0:
          Thread.push_back(countDownOp());
          break;
        case 1:
          Thread.push_back(countOp());
          break;
        default:
          Thread.push_back(tryAwaitOp());
          break;
        }
      }
    }
    return S;
  };
  Verdict V = LatchChecker::checkMany([] { return new SmallLatch(3); },
                                      [] { return LatchModel{}; },
                                      MakeScenario, /*Rounds=*/600);
  EXPECT_TRUE(V.Ok) << V.Explanation;
}

// --------------------------------------------------------------------------
// Target 3: the semaphore's non-blocking face.
// --------------------------------------------------------------------------

struct SemModel {
  std::int64_t Permits = 2;
};

using SyncSem = BasicSemaphore<4>;
using SemChecker = ScChecker<SyncSem, SemModel>;

SemChecker::OpT tryAcquireOp() {
  return {"tryAcquire",
          [](SyncSem &S) -> std::int64_t { return S.tryAcquire() ? 1 : 0; },
          [](SemModel &M) -> std::int64_t {
            if (M.Permits <= 0)
              return 0;
            --M.Permits;
            return 1;
          }};
}

TEST(Lincheck, SemaphoreDrainIsConsistent) {
  // Pure tryAcquire drain: across all threads exactly `Permits` calls may
  // succeed, in any interleaving. (release is never called, so no
  // well-formedness constraint is needed.)
  auto MakeScenario = [](std::uint64_t Seed) {
    SplitMix64 Rng(Seed);
    SemChecker::Scenario S(3);
    for (auto &Thread : S) {
      int Len = 1 + static_cast<int>(Rng.nextBelow(3));
      for (int I = 0; I < Len; ++I)
        Thread.push_back(tryAcquireOp());
    }
    return S;
  };
  Verdict V = SemChecker::checkMany(
      [] { return new SyncSem(2, ResumptionMode::Sync); },
      [] { return SemModel{}; }, MakeScenario, /*Rounds=*/400);
  EXPECT_TRUE(V.Ok) << V.Explanation;
}

/// Model for the acquire/release scenario: permit count plus who holds
/// one. Per-thread held state must live *in the model* (not in captured
/// locals) so the verifier's DFS snapshots stay branch-independent.
struct SemHoldModel {
  std::int64_t Permits = 2;
  bool Holds[3] = {false, false, false};
};

using SemHoldChecker = ScChecker<SyncSem, SemHoldModel>;

TEST(Lincheck, SemaphoreTryAcquireReleaseIsConsistent) {
  // Well-formedness: each thread releases only what it acquired. Acquire
  // and release are *separate* ops — each is a single linearization point
  // (one CAS / one fetch_add), so the sequential model is faithful. (An
  // earlier combined tryAcquire+release op was modelled as one atomic
  // step and the schedcheck explorer promptly found the interleaving —
  // both peers inside their acquire→release window — that the atomic
  // model cannot explain. The bug was in the scenario, not the
  // semaphore.) The concurrent side threads its held-state through a
  // per-thread flag that program order re-initializes every execution.
  auto MakeScenario = [&](std::uint64_t Seed) {
    SplitMix64 Rng(Seed);
    SemHoldChecker::Scenario S(3);
    for (std::size_t T = 0; T < S.size(); ++T) {
      auto Held = std::make_shared<bool>(false);
      auto Acq = SemHoldChecker::OpT{
          "tryAcquire",
          [Held](SyncSem &Sem) -> std::int64_t {
            *Held = Sem.tryAcquire();
            return *Held ? 1 : 0;
          },
          [T](SemHoldModel &M) -> std::int64_t {
            if (M.Permits <= 0)
              return 0;
            --M.Permits;
            M.Holds[T] = true;
            return 1;
          }};
      auto Rel = SemHoldChecker::OpT{
          "releaseIfHeld",
          [Held](SyncSem &Sem) -> std::int64_t {
            if (!*Held)
              return 0;
            Sem.release();
            *Held = false;
            return 1;
          },
          [T](SemHoldModel &M) -> std::int64_t {
            if (!M.Holds[T])
              return 0;
            ++M.Permits;
            M.Holds[T] = false;
            return 1;
          }};
      int Pairs = 1 + static_cast<int>(Rng.nextBelow(2));
      for (int I = 0; I < Pairs; ++I) {
        S[T].push_back(Acq);
        S[T].push_back(Rel);
      }
    }
    return S;
  };
  Verdict V = SemHoldChecker::checkMany(
      [] { return new SyncSem(2, ResumptionMode::Sync); },
      [] { return SemHoldModel{}; }, MakeScenario, /*Rounds=*/400);
  EXPECT_TRUE(V.Ok) << V.Explanation;
}

TEST(Lincheck, TimedAcquireZeroDeadlineIsConsistent) {
  // The timeout-vs-resume race as a linearizability question: a
  // zero-deadline tryAcquireFor never parks, so it is one reservation
  // attempt plus the cancel-vs-resume CAS race against concurrent
  // release()s. Whichever side wins, the op must read as an atomic
  // "acquire iff a permit was available" at *some* point — a rescue
  // (cancel lost) linearizes after the release that beat it, a refused
  // resume returns the permit to the counter. Async resumption mode on
  // purpose: that is the mode tryAcquire() cannot support, and the mode
  // where only the timed path provides a non-blocking acquire.
  auto MakeScenario = [&](std::uint64_t Seed) {
    SplitMix64 Rng(Seed);
    SemHoldChecker::Scenario S(3);
    for (std::size_t T = 0; T < S.size(); ++T) {
      auto Held = std::make_shared<bool>(false);
      auto Acq = SemHoldChecker::OpT{
          "tryAcquireFor(0)",
          [Held](SyncSem &Sem) -> std::int64_t {
            *Held = Sem.tryAcquireFor(std::chrono::nanoseconds(0));
            return *Held ? 1 : 0;
          },
          [T](SemHoldModel &M) -> std::int64_t {
            if (M.Permits <= 0)
              return 0;
            --M.Permits;
            M.Holds[T] = true;
            return 1;
          }};
      auto Rel = SemHoldChecker::OpT{
          "releaseIfHeld",
          [Held](SyncSem &Sem) -> std::int64_t {
            if (!*Held)
              return 0;
            Sem.release();
            *Held = false;
            return 1;
          },
          [T](SemHoldModel &M) -> std::int64_t {
            if (!M.Holds[T])
              return 0;
            ++M.Permits;
            M.Holds[T] = false;
            return 1;
          }};
      int Pairs = 1 + static_cast<int>(Rng.nextBelow(2));
      for (int I = 0; I < Pairs; ++I) {
        S[T].push_back(Acq);
        S[T].push_back(Rel);
      }
    }
    return S;
  };
  Verdict V = SemHoldChecker::checkMany(
      [] { return new SyncSem(2, ResumptionMode::Async); },
      [] { return SemHoldModel{}; }, MakeScenario, /*Rounds=*/400);
  EXPECT_TRUE(V.Ok) << V.Explanation;
}

/// Model for the batched-release scenario: permit pool plus how many
/// permits each thread holds (up to two, so release(n) has n > 1 cases).
struct SemBatchModel {
  std::int64_t Permits = 2;
  int Held[3] = {0, 0, 0};
};

using SemBatchChecker = ScChecker<SyncSem, SemBatchModel>;

TEST(Lincheck, BatchedReleaseWithTimedCancellationIsConsistent) {
  // The ISSUE-6 mix: release(n) — one fetch_add plus one batched CQS
  // traversal — racing zero-deadline tryAcquireFor cancellations. The
  // batch's counter update is its linearization point; each timed acquire
  // is one reservation attempt whose cancel/rescue race must still read
  // as atomic. Each thread accumulates up to two permits through the
  // timed path and returns them with a single batched release.
  auto MakeScenario = [&](std::uint64_t Seed) {
    SplitMix64 Rng(Seed);
    SemBatchChecker::Scenario S(3);
    for (std::size_t T = 0; T < S.size(); ++T) {
      auto Held = std::make_shared<int>(0);
      auto Acq = SemBatchChecker::OpT{
          "tryAcquireFor(0)",
          [Held](SyncSem &Sem) -> std::int64_t {
            if (Sem.tryAcquireFor(std::chrono::nanoseconds(0))) {
              ++*Held;
              return 1;
            }
            return 0;
          },
          [T](SemBatchModel &M) -> std::int64_t {
            if (M.Permits <= 0)
              return 0;
            --M.Permits;
            ++M.Held[T];
            return 1;
          }};
      auto RelAll = SemBatchChecker::OpT{
          "releaseAllBatched",
          [Held](SyncSem &Sem) -> std::int64_t {
            int N = *Held;
            if (N == 0)
              return 0;
            Sem.release(static_cast<std::int64_t>(N));
            *Held = 0;
            return N;
          },
          [T](SemBatchModel &M) -> std::int64_t {
            int N = M.Held[T];
            M.Permits += N;
            M.Held[T] = 0;
            return N;
          }};
      int Acqs = 1 + static_cast<int>(Rng.nextBelow(2));
      for (int I = 0; I < Acqs; ++I)
        S[T].push_back(Acq);
      S[T].push_back(RelAll);
    }
    return S;
  };
  Verdict V = SemBatchChecker::checkMany(
      [] { return new SyncSem(2, ResumptionMode::Async); },
      [] { return SemBatchModel{}; }, MakeScenario, /*Rounds=*/400);
  EXPECT_TRUE(V.Ok) << V.Explanation;
}

// --------------------------------------------------------------------------
// Target 4: select over rendezvous channels (conservation).
// --------------------------------------------------------------------------

/// Two rendezvous v2 channels as one shared state. Sender threads park a
/// send and later try to abort it; a selector thread runs a non-blocking
/// select (register both clauses through the real SelectCore protocol,
/// harvest an immediate winner, cancel parked losers). The sequential
/// model is a FIFO of (owner, value) per channel: every parked element is
/// consumed by exactly one trySelect or withdrawn by exactly one abort —
/// the select conservation guarantee as a linearizability question.
struct SelectState {
  RendezvousChannelV2<int, 4> Ch[2];
};

struct SelectQModel {
  std::vector<std::pair<int, int>> Q[2]; // (owner thread, value), FIFO
};

using SelChecker = ScChecker<SelectState, SelectQModel>;

TEST(Lincheck, SelectOverRendezvousConservation) {
  using Chan = RendezvousChannelV2<int, 4>;
  using SendFut = Chan::SendFuture;
  using RecvFut = Chan::ReceiveFuture;

  // One clause per channel, registration order 0 then 1; an immediate win
  // harvests, otherwise parked clauses are cancelled — and a cancel that
  // loses to a concurrent sender's resume IS the win (the tryWin race the
  // scenario exists to check).
  auto TrySelect = SelChecker::OpT{
      "trySelect",
      [](SelectState &S) -> std::int64_t {
        auto *Core = new SelectCore;
        RecvFut F[2];
        bool Parked[2] = {false, false};
        std::int32_t W = SelectCore::NoWinner;
        for (std::int32_t I = 0; I < 2; ++I) {
          ChannelOp Op = S.Ch[I].selectRegisterReceive(Core, I, F[I]);
          if (Op == ChannelOp::Done) {
            W = I;
            break;
          }
          if (Op == ChannelOp::Suspended) {
            Parked[I] = true;
          } else if (Op == ChannelOp::Lost) {
            W = Core->winner();
            break;
          }
        }
        for (std::int32_t I = 0; I < 2; ++I)
          if (I != W && Parked[I] && !F[I].cancel() &&
              W == SelectCore::NoWinner)
            W = I; // cancel lost: a sender committed this clause
        std::int64_t Ret = -1;
        if (W != SelectCore::NoWinner)
          if (std::optional<int> V = F[W].blockingGet())
            Ret = *V;
        {
          ebr::Guard Guard;
          ebr::retireObject(Core);
        }
        return Ret;
      },
      [](SelectQModel &M) -> std::int64_t {
        for (auto &Q : M.Q)
          if (!Q.empty()) {
            int V = Q.front().second;
            Q.erase(Q.begin());
            return V;
          }
        return -1;
      }};

  auto MakeScenario = [&](std::uint64_t Seed) {
    SplitMix64 Rng(Seed);
    SelChecker::Scenario S(3);
    // Threads 0 and 1 each own one channel and keep at most one send
    // outstanding (so per-channel FIFO order is never observable and the
    // documented lost-clause redelivery reordering cannot trip the model).
    for (int T = 0; T < 2; ++T) {
      auto Held = std::make_shared<SendFut>(SendFut::invalid());
      auto Park = SelChecker::OpT{
          "parkSend",
          [Held, T](SelectState &S) -> std::int64_t {
            // Return value deliberately constant: whether the send paired
            // immediately or parked is racy and not part of the spec.
            *Held = S.Ch[T].send(T * 100);
            return 0;
          },
          [T](SelectQModel &M) -> std::int64_t {
            M.Q[T].push_back({T, T * 100});
            return 0;
          }};
      auto Abort = SelChecker::OpT{
          "abortSend",
          [Held](SelectState &S) -> std::int64_t {
            (void)S;
            if (!Held->valid() || Held->isImmediate())
              return 0;
            return Held->cancel() ? 1 : 0;
          },
          [T](SelectQModel &M) -> std::int64_t {
            for (std::size_t I = 0; I < M.Q[T].size(); ++I)
              if (M.Q[T][I].first == T) {
                M.Q[T].erase(M.Q[T].begin() + I);
                return 1;
              }
            return 0;
          }};
      int Pairs = 1 + static_cast<int>(Rng.nextBelow(2));
      for (int I = 0; I < Pairs; ++I) {
        S[T].push_back(Park);
        S[T].push_back(Abort);
      }
    }
    int Sels = 2 + static_cast<int>(Rng.nextBelow(2));
    for (int I = 0; I < Sels; ++I)
      S[2].push_back(TrySelect);
    return S;
  };
  Verdict V = SelChecker::checkMany([] { return new SelectState(); },
                                    [] { return SelectQModel{}; },
                                    MakeScenario, /*Rounds=*/500);
  EXPECT_TRUE(V.Ok) << V.Explanation;
}

TEST(Lincheck, WhenAnyOverRendezvousConservation) {
  using Chan = RendezvousChannelV2<int, 4>;
  using SendFut = Chan::SendFuture;
  using RecvFut = Chan::ReceiveFuture;

  // The ISSUE-9 combinator over the same two channels: a receive future is
  // created per channel (an immediate pairing consumes a parked element at
  // creation), then whenAnyFor(0) commits a winner and sweeps the rest —
  // a sweep cancel that loses to a concurrent sender's resume leaves a
  // stray completion the caller still owns through its future. The op
  // therefore harvests winner AND strays; sequentially that is exactly
  // "pop the front of each non-empty queue", encoded pairwise so a lost
  // or duplicated element is a model mismatch.
  auto TryAny = SelChecker::OpT{
      "whenAnyFor(0)",
      [](SelectState &S) -> std::int64_t {
        RecvFut F[2] = {S.Ch[0].receive(), S.Ch[1].receive()};
        RecvFut *Futs[2] = {&F[0], &F[1]};
        auto R = whenAnyFor(Futs, 2, std::chrono::nanoseconds(0));
        std::int64_t Got[2] = {0, 0};
        if (R)
          Got[R->Index] = 1 + R->Value;
        for (int I = 0; I < 2; ++I)
          if ((!R || I != R->Index) && F[I].valid())
            if (std::optional<int> V = F[I].tryGet())
              Got[I] = 1 + *V;
        return Got[0] * 1000 + Got[1];
      },
      [](SelectQModel &M) -> std::int64_t {
        std::int64_t Got[2] = {0, 0};
        for (int I = 0; I < 2; ++I)
          if (!M.Q[I].empty()) {
            Got[I] = 1 + M.Q[I].front().second;
            M.Q[I].erase(M.Q[I].begin());
          }
        return Got[0] * 1000 + Got[1];
      }};

  auto MakeScenario = [&](std::uint64_t Seed) {
    SplitMix64 Rng(Seed);
    SelChecker::Scenario S(3);
    // Same sender discipline as the select scenario: one channel each, at
    // most one outstanding send, park then abort.
    for (int T = 0; T < 2; ++T) {
      auto Held = std::make_shared<SendFut>(SendFut::invalid());
      auto Park = SelChecker::OpT{
          "parkSend",
          [Held, T](SelectState &S) -> std::int64_t {
            *Held = S.Ch[T].send(T * 100);
            return 0;
          },
          [T](SelectQModel &M) -> std::int64_t {
            M.Q[T].push_back({T, T * 100});
            return 0;
          }};
      auto Abort = SelChecker::OpT{
          "abortSend",
          [Held](SelectState &S) -> std::int64_t {
            (void)S;
            if (!Held->valid() || Held->isImmediate())
              return 0;
            return Held->cancel() ? 1 : 0;
          },
          [T](SelectQModel &M) -> std::int64_t {
            for (std::size_t I = 0; I < M.Q[T].size(); ++I)
              if (M.Q[T][I].first == T) {
                M.Q[T].erase(M.Q[T].begin() + I);
                return 1;
              }
            return 0;
          }};
      int Pairs = 1 + static_cast<int>(Rng.nextBelow(2));
      for (int I = 0; I < Pairs; ++I) {
        S[T].push_back(Park);
        S[T].push_back(Abort);
      }
    }
    int Anys = 2 + static_cast<int>(Rng.nextBelow(2));
    for (int I = 0; I < Anys; ++I)
      S[2].push_back(TryAny);
    return S;
  };
  Verdict V = SelChecker::checkMany([] { return new SelectState(); },
                                    [] { return SelectQModel{}; },
                                    MakeScenario, /*Rounds=*/500);
  EXPECT_TRUE(V.Ok) << V.Explanation;
}

// --------------------------------------------------------------------------
// Checker sanity: it must detect a genuinely broken structure.
// --------------------------------------------------------------------------

/// Deliberately lossy counter: incAndGet reads and writes in two separate
/// atomic steps with a yield between them, so concurrent increments are
/// lost — producing results no interleaving of a correct counter explains.
/// Uses cqs::Atomic so the schedcheck build can preempt between the load
/// and the store (raw std::atomic would be invisible to the model and the
/// race would never strike there).
struct LossyCounter {
  Atomic<std::int64_t> C{0};
  std::int64_t incAndGet() {
    std::int64_t V = C.load(std::memory_order_seq_cst);
    std::this_thread::yield();
    C.store(V + 1, std::memory_order_seq_cst);
    return V + 1;
  }
};

struct CounterModel {
  std::int64_t C = 0;
};

using LossyChecker = ScChecker<LossyCounter, CounterModel>;

TEST(Lincheck, CheckerDetectsLostUpdates) {
  LossyChecker::OpT Inc{
      "incAndGet",
      [](LossyCounter &S) -> std::int64_t { return S.incAndGet(); },
      [](CounterModel &M) -> std::int64_t { return ++M.C; }};
  auto MakeScenario = [&](std::uint64_t) {
    LossyChecker::Scenario S(3);
    S[0] = {Inc, Inc};
    S[1] = {Inc, Inc};
    S[2] = {Inc, Inc};
    return S;
  };
  // A lost update makes two incAndGet calls return the same value, which
  // no interleaving of the correct model allows. It may take a few rounds
  // for the race to strike; require that the checker catches it within a
  // generous budget (and fail if it never does — that would mean the
  // harness cannot see real bugs).
  Verdict V = LossyChecker::checkMany([] { return new LossyCounter(); },
                                      [] { return CounterModel{}; },
                                      MakeScenario, /*Rounds=*/5000);
  EXPECT_FALSE(V.Ok)
      << "the checker failed to flag a deliberately racy counter";
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
