//===- tests/schedcheck_cqs_test.cpp - model-checked CQS races ------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Deterministic exploration of the CQS races that stress tests only hit
/// probabilistically: suspend/resume vs. cancellation in both SIMPLE and
/// SMART modes (the REFUSE delegation handshake of Section 3 is exactly
/// the window the smart-cancellation CAS in core/Cqs.h protects), and
/// segment removal racing moveForward (Appendix C). Small 2–3-thread
/// scenarios are explored exhaustively under the DFS preemption bound;
/// randomized strategies sweep the same scenarios more deeply.
///
//===----------------------------------------------------------------------===//

#include "core/Cqs.h"
#include "reclaim/Ebr.h"
#include "schedcheck/Sched.h"

#include <gtest/gtest.h>

using namespace cqs;

namespace {

using IntCqs = Cqs<int, ValueTraits<int>, /*SegmentSize=*/2>;
using IntFut = IntCqs::FutureType;

// --------------------------------------------------------------------------
// SIMPLE cancellation: cancel vs. resume on the same waiter.
// --------------------------------------------------------------------------

/// One waiter, a racing canceller and resumer. Exactly one of them wins:
///  - cancel wins  -> the future is Cancelled and resume(5) returns false
///    (SIMPLE mode: a resume meeting a cancelled cell fails).
///  - resume wins  -> the future holds 5 and cancel() returns false.
void simpleCancelVsResume() {
  auto *Q = new IntCqs(CancellationMode::Simple, ResumptionMode::Async);
  auto *F = new IntFut(Q->suspend());
  bool CancelOk = false, ResumeOk = false;
  sc::Thread T1 = sc::spawn([&] { CancelOk = F->cancel(); });
  sc::Thread T2 = sc::spawn([&] { ResumeOk = Q->resume(5); });
  T1.join();
  T2.join();
  sc::check(CancelOk != ResumeOk, "cancel and resume both won (or both "
                                  "lost) on a single waiter");
  if (ResumeOk) {
    sc::check(F->status() == FutureStatus::Completed &&
                  F->tryGet().value_or(-1) == 5,
              "winning resume did not deliver its value");
  } else {
    sc::check(F->status() == FutureStatus::Cancelled,
              "winning cancel left the future un-cancelled");
  }
  delete F;
  delete Q;
}

TEST(SchedcheckCqs, SimpleCancelVsResumeExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 2;
  O.Iterations = 200000;
  sc::Result R = sc::explore(O, simpleCancelVsResume);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << "bounded schedule space not fully enumerated: " << R.Executions
      << " executions, " << R.Truncated << " truncated";
}

/// Two waiters, cancel the first, resume twice: whatever the interleaving,
/// the second waiter must end up with a value and no value may vanish.
void simpleTwoWaitersCancelFirst() {
  auto *Q = new IntCqs(CancellationMode::Simple, ResumptionMode::Async);
  auto *F1 = new IntFut(Q->suspend());
  auto *F2 = new IntFut(Q->suspend());
  sc::Thread T1 = sc::spawn([&] { (void)F1->cancel(); });
  sc::Thread T2 = sc::spawn([&] {
    // SIMPLE: a resume can fail on a cancelled cell; retry as the paper's
    // primitives do. Two delivered values at most, one needed.
    int Delivered = 0;
    for (int V = 10; V < 13 && Delivered < 2; ++V)
      if (Q->resume(V))
        ++Delivered;
  });
  T1.join();
  T2.join();
  sc::check(F2->status() == FutureStatus::Completed,
            "second (live) waiter never resumed");
  delete F1;
  delete F2;
  delete Q;
}

TEST(SchedcheckCqs, SimpleTwoWaitersCancelFirstExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 1;
  O.Iterations = 200000;
  sc::Result R = sc::explore(O, simpleTwoWaitersCancelFirst);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

// --------------------------------------------------------------------------
// SMART cancellation: the REFUSE delegation handshake.
// --------------------------------------------------------------------------

/// Handler that refuses resumption after cancellation (onCancellation()
/// false), like the semaphore's "last waiter already restored the permit"
/// path. Plain (non-atomic) members are safe: logical threads are
/// serialized with happens-before at every scheduler handoff.
struct RefusingHandler final : IntCqs::SmartCancellationHandler {
  bool onCancellation() override { return false; }
  void completeRefusedResume(int V) override {
    ++RefusedCount;
    RefusedValue = V;
  }
  int RefusedCount = 0;
  int RefusedValue = -1;
};

/// The acceptance-criteria scenario: one waiter, smart cancellation with a
/// refusing handler, racing resume(7). The delegation CAS in
/// Cqs::cancelImpl / resumeImpl decides who runs completeRefusedResume —
/// whatever the interleaving, the value 7 must be delivered exactly once:
/// either the waiter completes with it, or the handler refuses it. A naive
/// load/store in that handshake loses or double-delivers the value, which
/// this invariant catches.
void smartRefuseDelegation() {
  auto *H = new RefusingHandler();
  auto *Q = new IntCqs(CancellationMode::Smart, ResumptionMode::Async, H);
  auto *F = new IntFut(Q->suspend());
  bool CancelOk = false, ResumeOk = false;
  sc::Thread T1 = sc::spawn([&] { CancelOk = F->cancel(); });
  sc::Thread T2 = sc::spawn([&] { ResumeOk = Q->resume(7); });
  T1.join();
  T2.join();
  sc::check(ResumeOk, "smart-mode resume must always report success "
                      "(refusal is handled internally)");
  int DeliveredToWaiter =
      (F->status() == FutureStatus::Completed) ? 1 : 0;
  if (DeliveredToWaiter)
    sc::check(F->tryGet().value_or(-1) == 7,
              "waiter completed with the wrong value");
  sc::check(DeliveredToWaiter + H->RefusedCount == 1,
            "refused resume value lost or delivered twice");
  if (H->RefusedCount == 1)
    sc::check(H->RefusedValue == 7, "handler refused the wrong value");
  sc::check(CancelOk == (DeliveredToWaiter == 0),
            "cancel verdict disagrees with the future's final state");
  delete F;
  delete Q;
  delete H;
}

TEST(SchedcheckCqs, SmartRefuseDelegationExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 2;
  O.Iterations = 200000;
  sc::Result R = sc::explore(O, smartRefuseDelegation);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

TEST(SchedcheckCqs, SmartRefuseDelegationRandomSweep) {
  sc::Options O;
  O.Strat = sc::Strategy::Random;
  O.Seed = 7;
  O.Iterations = 1500;
  sc::Result R = sc::explore(O, smartRefuseDelegation);
  EXPECT_TRUE(R.Ok) << R.Report;
}

// --------------------------------------------------------------------------
// Segment removal vs. moveForward (Appendix C).
// --------------------------------------------------------------------------

using Seg1 = Segment<1>;
using List1 = SegmentList<1>;

/// A 3-segment chain; one thread fully cancels the middle segment (which
/// removes and unlinks it) while another moves the chain pointer across
/// it. The pointer must land on a live segment with the requested id, and
/// traversal must never observe a freed segment (EBR guards both sides).
void removalVsMoveForward() {
  auto *Ptr = new Atomic<Seg1 *>(nullptr);
  Seg1 *S0;
  {
    ebr::Guard G;
    S0 = new Seg1(0, nullptr, /*InitialPointers=*/1);
    Ptr->store(S0, std::memory_order_seq_cst);
    // Materialize segments 1 and 2 up front (single-threaded, no races).
    Seg1 *S2 = List1::findSegment(S0, 2);
    sc::check(S2 && S2->Id == 2, "chain construction failed");
  }
  sc::Thread T1 = sc::spawn([&] {
    ebr::Guard G;
    Seg1 *S1 = List1::findSegment(Ptr->load(std::memory_order_seq_cst), 1);
    // SegmentSize == 1: one dead cell fully cancels the segment, which
    // logically removes it and unlinks it from the chain.
    S1->onCellDead();
  });
  sc::Thread T2 = sc::spawn([&] {
    ebr::Guard G;
    Seg1 *S2 = List1::findSegment(Ptr->load(std::memory_order_seq_cst), 2);
    sc::check(S2 && S2->Id >= 2, "findSegment returned a stale segment");
    (void)List1::moveForward(*Ptr, S2);
  });
  T1.join();
  T2.join();
  {
    ebr::Guard G;
    Seg1 *Final = Ptr->load(std::memory_order_seq_cst);
    sc::check(Final->Id == 2, "pointer did not advance to segment 2");
    sc::check(!Final->isRemoved(), "pointer parked on a removed segment");
  }
  // Teardown: free the chain. Removed segments were handed to EBR (the
  // scheduler drains it between executions); delete only the live ones.
  {
    Seg1 *Cur = S0;
    while (Cur) {
      Seg1 *Next = Cur->next();
      if (!Cur->isRetiredForTesting())
        delete Cur;
      Cur = Next;
    }
  }
  delete Ptr;
}

TEST(SchedcheckCqs, SegmentRemovalVsMoveForwardExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 1;
  O.Iterations = 200000;
  sc::Result R = sc::explore(O, removalVsMoveForward);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

TEST(SchedcheckCqs, SegmentRemovalVsMoveForwardPctSweep) {
  sc::Options O;
  O.Strat = sc::Strategy::Pct;
  O.Seed = 11;
  O.Iterations = 1000;
  sc::Result R = sc::explore(O, removalVsMoveForward);
  EXPECT_TRUE(R.Ok) << R.Report;
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
