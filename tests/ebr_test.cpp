//===- tests/ebr_test.cpp - epoch-based reclamation tests -----------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "reclaim/Ebr.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace cqs;

namespace {

std::atomic<int> LiveObjects{0};

struct Tracked {
  Tracked() { LiveObjects.fetch_add(1); }
  ~Tracked() { LiveObjects.fetch_sub(1); }
  int Payload = 0;
};

TEST(Ebr, GuardNesting) {
  EXPECT_FALSE(ebr::isPinned());
  {
    ebr::Guard G1;
    EXPECT_TRUE(ebr::isPinned());
    {
      ebr::Guard G2;
      EXPECT_TRUE(ebr::isPinned());
    }
    EXPECT_TRUE(ebr::isPinned()) << "outer guard must still hold the pin";
  }
  EXPECT_FALSE(ebr::isPinned());
}

TEST(Ebr, RetiredObjectsFreedAfterDrain) {
  LiveObjects = 0;
  {
    ebr::Guard G;
    for (int I = 0; I < 100; ++I)
      ebr::retireObject(new Tracked());
  }
  EXPECT_EQ(LiveObjects.load(), 100) << "nothing freed while epoch is fresh";
  ebr::drainForTesting();
  EXPECT_EQ(LiveObjects.load(), 0);
}

TEST(Ebr, HeavyRetireEventuallySelfCollects) {
  LiveObjects = 0;
  // Retire far more objects than the advance pacing interval, pinning per
  // operation as real CQS calls do; the epochs must advance on their own
  // and most garbage must be reclaimed without an explicit drain. (A single
  // long-lived guard would correctly block all reclamation — see
  // PinnedReaderBlocksReclamation.)
  for (int I = 0; I < 10000; ++I) {
    ebr::Guard G;
    ebr::retireObject(new Tracked());
  }
  EXPECT_LT(LiveObjects.load(), 10000)
      << "epoch never advanced during 10k retires";
  ebr::drainForTesting();
  EXPECT_EQ(LiveObjects.load(), 0);
}

TEST(Ebr, PinnedReaderBlocksReclamation) {
  LiveObjects = 0;
  std::atomic<bool> ReaderPinned{false}, ReleaseReader{false};
  std::thread Reader([&] {
    ebr::Guard G;
    ReaderPinned.store(true);
    while (!ReleaseReader.load())
      std::this_thread::yield();
  });
  while (!ReaderPinned.load())
    std::this_thread::yield();

  {
    ebr::Guard G;
    // Retire enough that the pacing logic attempts advances.
    for (int I = 0; I < 1000; ++I)
      ebr::retireObject(new Tracked());
  }
  // The reader pinned an epoch <= retire epoch: nothing may be freed while
  // it is pinned. (The first advance attempt can free garbage from *older*
  // epochs only; none exists here.)
  EXPECT_EQ(LiveObjects.load(), 1000);

  ReleaseReader.store(true);
  Reader.join();
  ebr::drainForTesting();
  EXPECT_EQ(LiveObjects.load(), 0);
}

TEST(Ebr, ConcurrentRetireStress) {
  LiveObjects = 0;
  constexpr int Threads = 4;
  constexpr int PerThread = 20000;
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T) {
    Ts.emplace_back([&] {
      for (int I = 0; I < PerThread; ++I) {
        ebr::Guard G;
        auto *Obj = new Tracked();
        Obj->Payload = I;
        ebr::retireObject(Obj);
      }
    });
  }
  for (auto &T : Ts)
    T.join();
  ebr::drainForTesting();
  EXPECT_EQ(LiveObjects.load(), 0);
}

TEST(Ebr, ThreadRecordsAreRecycled) {
  // Spawning many short-lived threads must not grow the registry without
  // bound: records are reused. We cannot observe the registry directly,
  // but this exercises acquire/release heavily under TSan-like schedules.
  for (int Round = 0; Round < 50; ++Round) {
    std::thread T([&] {
      ebr::Guard G;
      ebr::retireObject(new Tracked());
    });
    T.join();
  }
  ebr::drainForTesting();
  EXPECT_EQ(LiveObjects.load(), 0);
}

TEST(Ebr, PendingCountsReflectRetires) {
  ebr::drainForTesting();
  std::size_t Before = ebr::pendingForTesting();
  {
    ebr::Guard G;
    for (int I = 0; I < 5; ++I)
      ebr::retireObject(new Tracked());
  }
  EXPECT_GE(ebr::pendingForTesting(), Before + 5);
  ebr::drainForTesting();
}

} // namespace
