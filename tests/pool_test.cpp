//===- tests/pool_test.cpp - blocking pool tests --------------------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The pools of Section 4.4 are bags, not queues: the spec we check is
/// conservation (no element lost or duplicated, ever — including under
/// take-cancellation and put/take races) plus FIFO wakeup of suspended
/// take()s, plus the stack pool's hotness heuristic in the sequential case.
///
//===----------------------------------------------------------------------===//

#include "sync/Pool.h"

#include "reclaim/Ebr.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

using namespace cqs;

namespace {

/// Elements are pointers into this arena so ValueTraits<int*> applies and
/// duplicates are detectable by address.
struct Arena {
  explicit Arena(int N) : Slots(N) {
    for (int I = 0; I < N; ++I)
      Slots[I] = I;
  }
  int *at(int I) { return &Slots[I]; }
  std::vector<int> Slots;
};

template <typename Pool> class PoolTest : public ::testing::Test {};

using PoolTypes =
    ::testing::Types<QueueBlockingPool<int *, 4>, StackBlockingPool<int *, 4>>;

TYPED_TEST_SUITE(PoolTest, PoolTypes);

TYPED_TEST(PoolTest, PutThenTakeReturnsElement) {
  Arena A(1);
  TypeParam P;
  P.put(A.at(0));
  auto F = P.take();
  EXPECT_TRUE(F.isImmediate());
  EXPECT_EQ(F.tryGet(), A.at(0));
}

TYPED_TEST(PoolTest, TakeOnEmptySuspendsUntilPut) {
  Arena A(1);
  TypeParam P;
  auto F = P.take();
  EXPECT_FALSE(F.isImmediate());
  EXPECT_EQ(F.status(), FutureStatus::Pending);
  P.put(A.at(0));
  EXPECT_EQ(F.tryGet(), A.at(0));
}

TYPED_TEST(PoolTest, SuspendedTakesAreServedFifo) {
  Arena A(3);
  TypeParam P;
  auto F0 = P.take();
  auto F1 = P.take();
  auto F2 = P.take();
  P.put(A.at(0));
  P.put(A.at(1));
  P.put(A.at(2));
  EXPECT_EQ(F0.tryGet(), A.at(0));
  EXPECT_EQ(F1.tryGet(), A.at(1));
  EXPECT_EQ(F2.tryGet(), A.at(2));
}

TYPED_TEST(PoolTest, CancelledTakeIsSkipped) {
  Arena A(1);
  TypeParam P;
  auto F0 = P.take();
  auto F1 = P.take();
  EXPECT_TRUE(F0.cancel());
  P.put(A.at(0));
  EXPECT_EQ(F1.tryGet(), A.at(0)) << "the element went to the live waiter";
}

TYPED_TEST(PoolTest, CancelRaceNeverLosesTheElement) {
  Arena A(600);
  for (int Round = 0; Round < 600; ++Round) {
    TypeParam P;
    auto F = P.take();
    std::atomic<bool> Cancelled{false};
    std::thread Put([&] { P.put(A.at(Round)); });
    std::thread Cancel([&] { Cancelled.store(F.cancel()); });
    Put.join();
    Cancel.join();
    if (Cancelled.load()) {
      // The element must be back in the pool (refused resume re-inserts).
      auto G = P.take();
      EXPECT_EQ(G.blockingGet(), A.at(Round));
    } else {
      EXPECT_EQ(F.tryGet(), A.at(Round));
    }
  }
}

TYPED_TEST(PoolTest, ConservationUnderChurn) {
  constexpr int Elements = 4;
  constexpr int Threads = 6;
  constexpr int OpsPerThread = 3000;
  Arena A(Elements);
  TypeParam P;
  for (int I = 0; I < Elements; ++I)
    P.put(A.at(I));

  std::atomic<std::uint32_t> HeldMask{0};
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T) {
    Ts.emplace_back([&] {
      for (int I = 0; I < OpsPerThread; ++I) {
        auto F = P.take();
        std::optional<int *> E = F.blockingGet();
        ASSERT_TRUE(E.has_value());
        int Idx = static_cast<int>(*E - A.at(0));
        ASSERT_GE(Idx, 0);
        ASSERT_LT(Idx, Elements);
        std::uint32_t Bit = 1u << Idx;
        std::uint32_t Prev = HeldMask.fetch_or(Bit);
        ASSERT_EQ(Prev & Bit, 0u) << "element " << Idx << " held twice";
        HeldMask.fetch_and(~Bit);
        P.put(*E);
      }
    });
  }
  for (auto &T : Ts)
    T.join();

  // All elements must be retrievable exactly once at the end.
  std::set<int *> Final;
  for (int I = 0; I < Elements; ++I) {
    auto F = P.take();
    ASSERT_TRUE(F.isImmediate());
    auto E = F.tryGet();
    ASSERT_TRUE(E.has_value());
    EXPECT_TRUE(Final.insert(*E).second) << "duplicate element";
  }
  EXPECT_EQ(Final.size(), static_cast<std::size_t>(Elements));
}

TYPED_TEST(PoolTest, ConservationUnderChurnWithCancellation) {
  constexpr int Elements = 2;
  constexpr int Threads = 6;
  constexpr int OpsPerThread = 1500;
  Arena A(Elements);
  TypeParam P;
  for (int I = 0; I < Elements; ++I)
    P.put(A.at(I));

  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T) {
    Ts.emplace_back([&, T] {
      SplitMix64 Rng(77 + T);
      for (int I = 0; I < OpsPerThread; ++I) {
        auto F = P.take();
        if (!F.isImmediate() && Rng.chance(1, 2) && F.cancel())
          continue; // aborted the wait; we own nothing
        std::optional<int *> E = F.blockingGet();
        ASSERT_TRUE(E.has_value());
        P.put(*E);
      }
    });
  }
  for (auto &T : Ts)
    T.join();

  std::set<int *> Final;
  for (int I = 0; I < Elements; ++I) {
    auto F = P.take();
    auto E = F.blockingGet();
    ASSERT_TRUE(E.has_value());
    EXPECT_TRUE(Final.insert(*E).second);
  }
  EXPECT_EQ(Final.size(), static_cast<std::size_t>(Elements));
}

TYPED_TEST(PoolTest, TryTakeBasics) {
  Arena A(2);
  TypeParam P;
  EXPECT_EQ(P.tryTake(), std::nullopt) << "empty pool";
  P.put(A.at(0));
  P.put(A.at(1));
  auto E1 = P.tryTake();
  auto E2 = P.tryTake();
  ASSERT_TRUE(E1.has_value());
  ASSERT_TRUE(E2.has_value());
  EXPECT_NE(*E1, *E2);
  EXPECT_EQ(P.tryTake(), std::nullopt);
  P.put(*E1);
  P.put(*E2);
}

TYPED_TEST(PoolTest, TryTakeNeverStealsFromWaiters) {
  // An element handed directly to a suspended take() is assigned; tryTake
  // must see the pool as empty, not race it away.
  Arena A(1);
  TypeParam P;
  auto Waiter = P.take();
  EXPECT_EQ(Waiter.status(), FutureStatus::Pending);
  P.put(A.at(0));
  EXPECT_EQ(Waiter.tryGet(), A.at(0));
  EXPECT_EQ(P.tryTake(), std::nullopt);
  P.put(A.at(0));
  EXPECT_EQ(P.tryTake(), A.at(0));
}

TYPED_TEST(PoolTest, TryTakeConservationStress) {
  constexpr int Elements = 3;
  constexpr int Threads = 6;
  Arena A(Elements);
  TypeParam P;
  for (int I = 0; I < Elements; ++I)
    P.put(A.at(I));
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T) {
    Ts.emplace_back([&] {
      for (int I = 0; I < 3000; ++I) {
        auto E = P.tryTake();
        if (E.has_value())
          P.put(*E);
      }
    });
  }
  for (auto &T : Ts)
    T.join();
  std::set<int *> Final;
  for (int I = 0; I < Elements; ++I) {
    auto E = P.tryTake();
    ASSERT_TRUE(E.has_value());
    EXPECT_TRUE(Final.insert(*E).second);
  }
  EXPECT_EQ(P.tryTake(), std::nullopt);
}

TEST(StackPool, ReturnsHottestElementSequentially) {
  Arena A(3);
  StackBlockingPool<int *, 4> P;
  P.put(A.at(0));
  P.put(A.at(1));
  P.put(A.at(2));
  EXPECT_EQ(P.take().tryGet(), A.at(2)) << "LIFO: last inserted first";
  EXPECT_EQ(P.take().tryGet(), A.at(1));
  P.put(A.at(1));
  EXPECT_EQ(P.take().tryGet(), A.at(1));
  EXPECT_EQ(P.take().tryGet(), A.at(0));
}

TEST(QueuePool, DrainsInInsertionOrderSequentially) {
  Arena A(3);
  QueueBlockingPool<int *, 4> P;
  P.put(A.at(0));
  P.put(A.at(1));
  P.put(A.at(2));
  EXPECT_EQ(P.take().tryGet(), A.at(0));
  EXPECT_EQ(P.take().tryGet(), A.at(1));
  EXPECT_EQ(P.take().tryGet(), A.at(2));
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
