#!/usr/bin/env python3
"""Unit tests for tools/bench_compare.py's exit-code contract.

Focus: the missing-series gate. A whole (benchmark, series) pair present
in the baseline but absent from the current results must fail loudly
(exit 2 with a stderr listing), while key-level shrinkage (the series
survives with fewer sweep points) stays a note, and --report-only always
exits 0 but still prints the warning.

Run directly (python3 tests/bench_compare_test.py) or through ctest.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
COMPARE = os.path.join(REPO_ROOT, "tools", "bench_compare.py")


def result(benchmark, series, threads=1, params="", median=1.0):
    return {
        "benchmark": benchmark,
        "series": series,
        "params": params,
        "threads": threads,
        "unit": "us/op",
        "direction": "lower",
        "gated": True,
        "reps": 3,
        "samples": [median, median, median],
        "median": median,
        "min": median,
        "max": median,
        "mean": median,
        "stddev": 0.0,
    }


def doc(results, nproc=None):
    d = {"schema": "cqs-bench-v1", "benchmark": "t", "results": results}
    if nproc is not None:
        d["host"] = {"nproc": nproc}
    return d


class BenchCompareGateTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.dir.cleanup()

    def write(self, name, document):
        path = os.path.join(self.dir.name, name)
        with open(path, "w") as f:
            json.dump(document, f)
        return path

    def run_compare(self, base, cur, *flags):
        return subprocess.run(
            [sys.executable, COMPARE, *flags, base, cur],
            capture_output=True, text=True)

    def test_identical_results_pass(self):
        base = self.write("base.json", doc([result("fig7", "CQS")]))
        cur = self.write("cur.json", doc([result("fig7", "CQS")]))
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_missing_series_exits_2(self):
        base = self.write("base.json", doc([
            result("fig7", "CQS"),
            result("fig7", "baseline"),
        ]))
        cur = self.write("cur.json", doc([result("fig7", "CQS")]))
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 2,
                         f"stdout: {proc.stdout}\nstderr: {proc.stderr}")
        self.assertIn("fig7: baseline", proc.stderr)
        self.assertIn("missing", proc.stderr)

    def test_missing_series_report_only_warns_but_passes(self):
        base = self.write("base.json", doc([
            result("fig7", "CQS"),
            result("fig7", "baseline"),
        ]))
        cur = self.write("cur.json", doc([result("fig7", "CQS")]))
        proc = self.run_compare(base, cur, "--report-only")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("fig7: baseline", proc.stderr)

    def test_key_level_shrink_is_tolerated(self):
        # The series survives at one thread count; dropping the other
        # sweep points is legitimate (e.g. --quick) and must not gate.
        base = self.write("base.json", doc([
            result("fig7", "CQS", threads=1),
            result("fig7", "CQS", threads=4),
        ]))
        cur = self.write("cur.json", doc([result("fig7", "CQS", threads=1)]))
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 0,
                         f"stdout: {proc.stdout}\nstderr: {proc.stderr}")

    def test_regression_still_exits_1(self):
        # Exit 1 (regression) must take precedence over any notes, and a
        # 3x slowdown clears the 50% default threshold.
        base = self.write("base.json", doc([result("fig7", "CQS",
                                                   median=1.0)]))
        cur = self.write("cur.json", doc([result("fig7", "CQS",
                                                 median=3.0)]))
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 1,
                         f"stdout: {proc.stdout}\nstderr: {proc.stderr}")

    def test_regression_and_missing_series_prefers_1(self):
        base = self.write("base.json", doc([
            result("fig7", "CQS", median=1.0),
            result("fig7", "baseline"),
        ]))
        cur = self.write("cur.json", doc([result("fig7", "CQS",
                                                 median=3.0)]))
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 1,
                         f"stdout: {proc.stdout}\nstderr: {proc.stderr}")
        # The missing-series listing is still printed alongside.
        self.assertIn("fig7: baseline", proc.stderr)

    def scaling_curve(self, medians_by_threads, series="Sharded"):
        return [result("scaling_semaphore", series, threads=t, median=m)
                for t, m in medians_by_threads.items()]

    def test_scaling_clean_curve_passes(self):
        base = self.write("base.json",
                          doc(self.scaling_curve({1: 1.0, 2: 1.0, 4: 1.1})))
        cur = self.write("cur.json",
                         doc(self.scaling_curve({1: 1.0, 2: 1.05, 4: 1.1}),
                             nproc=4))
        proc = self.run_compare(base, cur, "--scaling")
        self.assertEqual(proc.returncode, 0,
                         f"stdout: {proc.stdout}\nstderr: {proc.stderr}")

    def test_scaling_flat_region_regression_exits_2(self):
        # A 50% loss at 4 threads (inside the 4-core flat region) clears
        # the 15% default flat threshold.
        base = self.write("base.json",
                          doc(self.scaling_curve({1: 1.0, 2: 1.0, 4: 1.0})))
        cur = self.write("cur.json",
                         doc(self.scaling_curve({1: 1.0, 2: 1.0, 4: 1.5}),
                             nproc=4))
        proc = self.run_compare(base, cur, "--scaling")
        self.assertEqual(proc.returncode, 2,
                         f"stdout: {proc.stdout}\nstderr: {proc.stderr}")
        self.assertIn("flat-region regression", proc.stdout)

    def test_scaling_oversubscribed_points_do_not_gate(self):
        # The same 50% loss at 8 threads on a 4-core host is outside the
        # flat region: reported, never gated.
        base = self.write("base.json",
                          doc(self.scaling_curve({1: 1.0, 4: 1.0, 8: 1.0})))
        cur = self.write("cur.json",
                         doc(self.scaling_curve({1: 1.0, 4: 1.0, 8: 1.5}),
                             nproc=4))
        proc = self.run_compare(base, cur, "--scaling")
        self.assertEqual(proc.returncode, 0,
                         f"stdout: {proc.stdout}\nstderr: {proc.stderr}")

    def test_scaling_missing_curve_exits_2(self):
        base = self.write("base.json", doc(
            self.scaling_curve({1: 1.0}) +
            self.scaling_curve({1: 1.0}, series="Plain")))
        cur = self.write("cur.json",
                         doc(self.scaling_curve({1: 1.0}), nproc=4))
        proc = self.run_compare(base, cur, "--scaling")
        self.assertEqual(proc.returncode, 2,
                         f"stdout: {proc.stdout}\nstderr: {proc.stderr}")
        self.assertIn("Plain", proc.stderr)

    def test_scaling_report_only_passes(self):
        base = self.write("base.json",
                          doc(self.scaling_curve({1: 1.0, 4: 1.0})))
        cur = self.write("cur.json",
                         doc(self.scaling_curve({1: 1.0, 4: 2.0}), nproc=4))
        proc = self.run_compare(base, cur, "--scaling", "--report-only")
        self.assertEqual(proc.returncode, 0,
                         f"stdout: {proc.stdout}\nstderr: {proc.stderr}")

    def test_new_series_do_not_gate(self):
        # New current-only series (e.g. the timed-mix additions) must not
        # trip anything against an older baseline.
        base = self.write("base.json", doc([result("fig7", "CQS")]))
        cur = self.write("cur.json", doc([
            result("fig7", "CQS"),
            result("fig7", "CQS timed-mix"),
        ]))
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_new_series_reported_as_new(self):
        # ... and they are called out explicitly, so a PR landing a bench
        # plus its first baseline can be audited from the gate output.
        base = self.write("base.json", doc([result("fig7", "CQS")]))
        cur = self.write("cur.json", doc([
            result("fig7", "CQS"),
            result("fig7", "CQS channel v2"),
        ]))
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("new series", proc.stdout)
        self.assertIn("fig7: CQS channel v2 [new]", proc.stdout)

    # ---- tail-percentile widening (service_load p999 and friends) ----

    def test_p999_within_widened_band_passes(self):
        # +80% clears the 50% default gate but not the 100% tail band
        # (threshold 0.5 * tail-factor 2.0): a p999 set by a handful of
        # samples gets the benefit of the doubt.
        base = self.write("base.json", doc([result("service_load", "p999",
                                                   median=1.0)]))
        cur = self.write("cur.json", doc([result("service_load", "p999",
                                                 median=1.8)]))
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 0,
                         f"stdout: {proc.stdout}\nstderr: {proc.stderr}")

    def test_p999_beyond_widened_band_exits_1(self):
        # +150% clears even the doubled band — a real tail regression.
        base = self.write("base.json", doc([result("service_load", "p999",
                                                   median=1.0)]))
        cur = self.write("cur.json", doc([result("service_load", "p999",
                                                 median=2.5)]))
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 1,
                         f"stdout: {proc.stdout}\nstderr: {proc.stderr}")

    def test_p99_keeps_the_normal_band(self):
        # The widening is word-bounded to p99.9-class names: the same +80%
        # on a p99 series (thousands of samples) still gates.
        base = self.write("base.json", doc([result("service_load", "p99",
                                                   median=1.0)]))
        cur = self.write("cur.json", doc([result("service_load", "p99",
                                                 median=1.8)]))
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 1,
                         f"stdout: {proc.stdout}\nstderr: {proc.stderr}")

    def test_tail_factor_1_disables_widening(self):
        base = self.write("base.json", doc([result("service_load", "p999",
                                                   median=1.0)]))
        cur = self.write("cur.json", doc([result("service_load", "p999",
                                                 median=1.8)]))
        proc = self.run_compare(base, cur, "--tail-factor=1.0")
        self.assertEqual(proc.returncode, 1,
                         f"stdout: {proc.stdout}\nstderr: {proc.stderr}")

    def test_scaling_flat_region_widens_tail_series_too(self):
        # +30% at an in-flat point clears the 15% flat threshold for a
        # normal series but not a p999's doubled one.
        base = self.write("base.json", doc(
            self.scaling_curve({1: 1.0, 4: 1.0}, series="p999")))
        cur = self.write("cur.json", doc(
            self.scaling_curve({1: 1.0, 4: 1.3}, series="p999"), nproc=4))
        proc = self.run_compare(base, cur, "--scaling")
        self.assertEqual(proc.returncode, 0,
                         f"stdout: {proc.stdout}\nstderr: {proc.stderr}")
        # The same delta on a non-tail curve still breaks the contract.
        base2 = self.write("base2.json", doc(
            self.scaling_curve({1: 1.0, 4: 1.0})))
        cur2 = self.write("cur2.json", doc(
            self.scaling_curve({1: 1.0, 4: 1.3}), nproc=4))
        proc = self.run_compare(base2, cur2, "--scaling")
        self.assertEqual(proc.returncode, 2,
                         f"stdout: {proc.stdout}\nstderr: {proc.stderr}")

    def test_scaling_new_curve_reported_not_gated(self):
        # A current-only curve (freshly added scaling series) is listed as
        # new and exits 0 even though it cannot be compared; even a "slow"
        # new curve has no baseline to regress against.
        base = self.write("base.json",
                          doc(self.scaling_curve({1: 1.0, 4: 1.0})))
        cur = self.write("cur.json", doc(
            self.scaling_curve({1: 1.0, 4: 1.0}) +
            self.scaling_curve({1: 9.0, 4: 9.0}, series="v2 sendBurst"),
            nproc=4))
        proc = self.run_compare(base, cur, "--scaling")
        self.assertEqual(proc.returncode, 0,
                         f"stdout: {proc.stdout}\nstderr: {proc.stderr}")
        self.assertIn("new curve", proc.stdout)
        self.assertIn("v2 sendBurst", proc.stdout)


if __name__ == "__main__":
    unittest.main()
