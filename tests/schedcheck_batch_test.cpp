//===- tests/schedcheck_batch_test.cpp - model-checked batch + shards -----===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The contention-scaling layer under the deterministic scheduler, with
/// conservation as the oracle in every scenario (permits in == permits
/// out): batched release(n) racing a cancelling acquire, countDown(n)
/// racing a cancelling await, the sharded semaphore's stranded-permit
/// Dekker, and striped rw-mutex exclusion.
///
//===----------------------------------------------------------------------===//

#include "reclaim/Ebr.h"
#include "schedcheck/Sched.h"
#include "support/Striping.h"
#include "sync/CountDownLatch.h"
#include "sync/Semaphore.h"
#include "sync/ShardedSemaphore.h"
#include "sync/StripedRwMutex.h"

#include <gtest/gtest.h>

using namespace cqs;

namespace {

using SmallSem = BasicSemaphore<2>;
using SmallSharded = BasicShardedSemaphore<2>;
using SmallLatch = BasicCountDownLatch<2>;
using SmallRw = BasicStripedRwMutex<2>;

// --------------------------------------------------------------------------
// Semaphore::release(n): a batch racing a cancelling acquire must conserve
// permits exactly like n single releases.
// --------------------------------------------------------------------------

void batchedReleaseConservation() {
  auto *Sem = new SmallSem(2, ResumptionMode::Async);
  auto F0 = new SmallSem::FutureType(Sem->acquire());
  auto F1 = new SmallSem::FutureType(Sem->acquire());
  sc::check(F0->isImmediate() && F1->isImmediate(),
            "both free permits must be taken");
  bool CancelWon = false;
  auto *F2 = new SmallSem::FutureType(SmallSem::FutureType::invalid());
  sc::Thread T1 = sc::spawn([&] {
    *F2 = Sem->acquire();
    if (!F2->isImmediate())
      CancelWon = F2->cancel();
  });
  sc::Thread T2 = sc::spawn([&] { Sem->release(2); }); // batched
  T1.join();
  T2.join();
  bool Holds = F2->isImmediate() ||
               (F2->valid() && F2->status() == FutureStatus::Completed);
  sc::check(!(CancelWon && Holds), "cancelled acquire still holds a permit");
  std::int64_t Avail = Sem->availablePermits();
  sc::check(Avail == (Holds ? 1 : 2),
            "permits lost or duplicated by batched release");
  if (Holds)
    Sem->release();
  delete F2;
  delete F1;
  delete F0;
  delete Sem;
}

TEST(SchedcheckBatch, BatchedReleaseConservationExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 2;
  O.Iterations = 200000;
  sc::Result R = sc::explore(O, batchedReleaseConservation);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

TEST(SchedcheckBatch, BatchedReleaseConservationRandomSweep) {
  sc::Options O;
  O.Strat = sc::Strategy::Random;
  O.Seed = 7;
  O.Iterations = 1500;
  sc::Result R = sc::explore(O, batchedReleaseConservation);
  EXPECT_TRUE(R.Ok) << R.Report;
}

// --------------------------------------------------------------------------
// CountDownLatch::countDown(n): the batched opening must release exactly
// the registered waiters, racing a cancelling await.
// --------------------------------------------------------------------------

void batchedCountDownConservation() {
  auto *L = new SmallLatch(2);
  bool CancelWon = false;
  auto *F = new SmallLatch::FutureType(SmallLatch::FutureType::invalid());
  sc::Thread T1 = sc::spawn([&] {
    *F = L->await();
    if (!F->isImmediate())
      CancelWon = F->cancel();
  });
  sc::Thread T2 = sc::spawn([&] { L->countDown(2); }); // batched opening
  T1.join();
  T2.join();
  sc::check(L->count() == 0, "countDown(2) must zero the count");
  bool Completed = F->isImmediate() ||
                   (F->valid() && F->status() == FutureStatus::Completed);
  sc::check(Completed || CancelWon,
            "await neither completed nor successfully cancelled");
  sc::check(!(CancelWon && Completed),
            "await both cancelled and completed");
  // The latch is open: any later await is immediate (no waiter leaked).
  sc::check(L->await().isImmediate(), "open latch must not suspend");
  delete F;
  delete L;
}

TEST(SchedcheckBatch, BatchedCountDownConservationExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 2;
  O.Iterations = 200000;
  sc::Result R = sc::explore(O, batchedCountDownConservation);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

// --------------------------------------------------------------------------
// Sharded semaphore: the stranded-permit Dekker. A release banking into a
// shard races an acquirer registering and draining; no schedule may leave
// the waiter parked while the permit sits in a cache, and the total permit
// count must balance.
// --------------------------------------------------------------------------

void shardedStrandedPermitDekker() {
  auto *Sem = new SmallSharded(1, /*Shards=*/2, ResumptionMode::Async);
  auto F0 = new SmallSharded::FutureType(Sem->acquire());
  sc::check(F0->isImmediate(), "first acquire must take the free permit");
  bool CancelWon = false;
  auto *F1 =
      new SmallSharded::FutureType(SmallSharded::FutureType::invalid());
  sc::Thread T1 = sc::spawn([&] {
    setThreadStripeSlotForTesting(0);
    *F1 = Sem->acquire();
    if (!F1->isImmediate())
      CancelWon = F1->cancel();
  });
  sc::Thread T2 = sc::spawn([&] {
    setThreadStripeSlotForTesting(1); // release banks into the *other* shard
    Sem->release();
  });
  T1.join();
  T2.join();
  bool Holds = F1->isImmediate() ||
               (F1->valid() && F1->status() == FutureStatus::Completed);
  sc::check(!(CancelWon && Holds), "cancelled acquire still holds a permit");
  std::int64_t Total = Sem->totalPermitsForTesting();
  sc::check(Total == (Holds ? 0 : 1),
            "permit stranded in a shard cache or duplicated");
  if (Holds)
    Sem->release();
  delete F1;
  delete F0;
  delete Sem;
}

TEST(SchedcheckBatch, ShardedStrandedPermitDekkerExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 2;
  O.Iterations = 400000;
  sc::Result R = sc::explore(O, shardedStrandedPermitDekker);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

TEST(SchedcheckBatch, ShardedStrandedPermitDekkerRandomSweep) {
  sc::Options O;
  O.Strat = sc::Strategy::Random;
  O.Seed = 11;
  O.Iterations = 1500;
  sc::Result R = sc::explore(O, shardedStrandedPermitDekker);
  EXPECT_TRUE(R.Ok) << R.Report;
}

// --------------------------------------------------------------------------
// Striped rw mutex: reader/writer exclusion through the stripe Dekker.
// --------------------------------------------------------------------------

void stripedRwExclusion() {
  auto *M = new SmallRw(2);
  // Occupancy flags: if the lock excludes correctly, the other side's
  // flag is 0 for the whole critical section, so any schedule that
  // observes it set is a real exclusion violation (DFS explores them
  // all).
  auto *ReaderIn = new Atomic<int>(0);
  auto *WriterIn = new Atomic<int>(0);
  sc::Thread R = sc::spawn([&] {
    setThreadStripeSlotForTesting(0);
    M->lockShared();
    ReaderIn->store(1, std::memory_order_seq_cst);
    sc::check(WriterIn->load(std::memory_order_seq_cst) == 0,
              "reader entered while a writer holds the lock");
    ReaderIn->store(0, std::memory_order_seq_cst);
    M->unlockShared();
  });
  sc::Thread W = sc::spawn([&] {
    setThreadStripeSlotForTesting(1);
    M->lock();
    WriterIn->store(1, std::memory_order_seq_cst);
    sc::check(ReaderIn->load(std::memory_order_seq_cst) == 0,
              "writer entered over an active reader");
    WriterIn->store(0, std::memory_order_seq_cst);
    M->unlock();
  });
  R.join();
  W.join();
  sc::check(M->activeReadersForTesting() == 0, "reader count leaked");
  delete WriterIn;
  delete ReaderIn;
  delete M;
}

TEST(SchedcheckBatch, StripedRwExclusionExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 1;
  O.Iterations = 400000;
  sc::Result R = sc::explore(O, stripedRwExclusion);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

TEST(SchedcheckBatch, StripedRwExclusionPctSweep) {
  sc::Options O;
  O.Strat = sc::Strategy::Pct;
  O.Seed = 13;
  O.Iterations = 1000;
  sc::Result R = sc::explore(O, stripedRwExclusion);
  EXPECT_TRUE(R.Ok) << R.Report;
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
