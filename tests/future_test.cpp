//===- tests/future_test.cpp - Request/Future semantics -------------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Checks the future contract of Appendix A / G.2: exactly one of
/// complete()/cancel() wins, get() reports the three states correctly,
/// cancellation handlers fire exactly once, continuations are invoked on
/// whichever side finishes the race.
///
//===----------------------------------------------------------------------===//

#include "future/Future.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace cqs;

namespace {

using IntRequest = Request<int>;
using IntFuture = Future<int>;

IntRequest *newRequest() { return new IntRequest(/*InitialRefs=*/1); }

TEST(Request, CompleteThenGet) {
  Ref<IntRequest> R = Ref<IntRequest>::adopt(newRequest());
  EXPECT_EQ(R->status(), FutureStatus::Pending);
  EXPECT_EQ(R->tryGet(), std::nullopt);

  EXPECT_TRUE(R->complete(42));
  EXPECT_EQ(R->status(), FutureStatus::Completed);
  EXPECT_EQ(R->tryGet(), 42);
  EXPECT_EQ(R->blockingGet(), 42);
}

TEST(Request, CancelThenGetReturnsBottom) {
  Ref<IntRequest> R = Ref<IntRequest>::adopt(newRequest());
  EXPECT_TRUE(R->cancel());
  EXPECT_EQ(R->status(), FutureStatus::Cancelled);
  EXPECT_EQ(R->tryGet(), std::nullopt);
  EXPECT_EQ(R->blockingGet(), std::nullopt);
}

TEST(Request, CompleteAfterCancelFails) {
  Ref<IntRequest> R = Ref<IntRequest>::adopt(newRequest());
  EXPECT_TRUE(R->cancel());
  EXPECT_FALSE(R->complete(1));
  EXPECT_EQ(R->status(), FutureStatus::Cancelled);
}

TEST(Request, CancelAfterCompleteFails) {
  Ref<IntRequest> R = Ref<IntRequest>::adopt(newRequest());
  EXPECT_TRUE(R->complete(7));
  EXPECT_FALSE(R->cancel());
  EXPECT_EQ(R->tryGet(), 7);
}

TEST(Request, SecondCancelFails) {
  Ref<IntRequest> R = Ref<IntRequest>::adopt(newRequest());
  EXPECT_TRUE(R->cancel());
  EXPECT_FALSE(R->cancel());
}

TEST(Request, CancellationHandlerFiresExactlyOnceOnSuccess) {
  static std::atomic<int> Fired;
  Fired = 0;
  Ref<IntRequest> R = Ref<IntRequest>::adopt(newRequest());
  R->bindCancellation(
      [](void *, void *, std::uint32_t) { Fired.fetch_add(1); }, nullptr,
      nullptr, 0);
  EXPECT_TRUE(R->cancel());
  EXPECT_FALSE(R->cancel());
  EXPECT_EQ(Fired.load(), 1);
}

TEST(Request, CancellationHandlerNotFiredWhenCompleted) {
  static std::atomic<int> Fired;
  Fired = 0;
  Ref<IntRequest> R = Ref<IntRequest>::adopt(newRequest());
  R->bindCancellation(
      [](void *, void *, std::uint32_t) { Fired.fetch_add(1); }, nullptr,
      nullptr, 0);
  EXPECT_TRUE(R->complete(3));
  EXPECT_FALSE(R->cancel());
  EXPECT_EQ(Fired.load(), 0);
}

TEST(Request, BlockingGetWakesOnComplete) {
  Ref<IntRequest> R = Ref<IntRequest>::adopt(newRequest());
  std::thread Waiter([&] { EXPECT_EQ(R->blockingGet(), 99); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(R->complete(99));
  Waiter.join();
}

TEST(Request, BlockingGetWakesOnCancel) {
  Ref<IntRequest> R = Ref<IntRequest>::adopt(newRequest());
  std::thread Waiter([&] { EXPECT_EQ(R->blockingGet(), std::nullopt); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(R->cancel());
  Waiter.join();
}

struct CountingContinuation : IntRequest::Continuation {
  std::atomic<int> Calls{0};
  std::uint64_t LastWord = 0;
  void invoke(std::uint64_t W) override {
    LastWord = W;
    Calls.fetch_add(1);
  }
};

TEST(Request, ContinuationInvokedOnComplete) {
  Ref<IntRequest> R = Ref<IntRequest>::adopt(newRequest());
  CountingContinuation C;
  EXPECT_TRUE(R->setContinuation(&C));
  EXPECT_EQ(C.Calls.load(), 0);
  EXPECT_TRUE(R->complete(5));
  EXPECT_EQ(C.Calls.load(), 1);
  EXPECT_EQ(decodeValueWord<int>(C.LastWord), 5);
}

TEST(Request, ContinuationInvokedOnCancel) {
  Ref<IntRequest> R = Ref<IntRequest>::adopt(newRequest());
  CountingContinuation C;
  EXPECT_TRUE(R->setContinuation(&C));
  EXPECT_TRUE(R->cancel());
  EXPECT_EQ(C.Calls.load(), 1);
}

TEST(Request, SetContinuationAfterCompleteRefuses) {
  Ref<IntRequest> R = Ref<IntRequest>::adopt(newRequest());
  EXPECT_TRUE(R->complete(1));
  CountingContinuation C;
  EXPECT_FALSE(R->setContinuation(&C));
  EXPECT_EQ(C.Calls.load(), 0) << "caller must consume the result directly";
}

TEST(Request, RacingCompleteAndCancelExactlyOneWins) {
  // Property from the spec: "a Future cannot be both cancelled and
  // completed". Hammer the race.
  for (int Round = 0; Round < 500; ++Round) {
    Ref<IntRequest> R = Ref<IntRequest>::adopt(newRequest());
    std::atomic<int> CompletedOk{0}, CancelledOk{0};
    std::thread A([&] { CompletedOk += R->complete(Round) ? 1 : 0; });
    std::thread B([&] { CancelledOk += R->cancel() ? 1 : 0; });
    A.join();
    B.join();
    EXPECT_EQ(CompletedOk.load() + CancelledOk.load(), 1);
    if (CompletedOk.load())
      EXPECT_EQ(R->tryGet(), Round);
    else
      EXPECT_EQ(R->status(), FutureStatus::Cancelled);
  }
}

TEST(Request, ManyRacingCancellersOnlyOneSucceeds) {
  Ref<IntRequest> R = Ref<IntRequest>::adopt(newRequest());
  std::atomic<int> Wins{0};
  std::vector<std::thread> Ts;
  for (int I = 0; I < 4; ++I)
    Ts.emplace_back([&] { Wins += R->cancel() ? 1 : 0; });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Wins.load(), 1);
}

TEST(Request, WaitForTimesOutWhilePending) {
  Ref<IntRequest> R = Ref<IntRequest>::adopt(newRequest());
  auto Start = std::chrono::steady_clock::now();
  EXPECT_EQ(R->waitFor(std::chrono::milliseconds(20)), FutureStatus::Pending);
  auto Elapsed = std::chrono::steady_clock::now() - Start;
  EXPECT_GE(Elapsed, std::chrono::milliseconds(15));
}

TEST(Request, WaitForReturnsEarlyOnCompletion) {
  Ref<IntRequest> R = Ref<IntRequest>::adopt(newRequest());
  std::thread Completer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_TRUE(R->complete(3));
  });
  EXPECT_EQ(R->waitFor(std::chrono::seconds(10)), FutureStatus::Completed);
  EXPECT_EQ(R->tryGet(), 3);
  Completer.join();
}

TEST(Request, WaitForObservesCancellation) {
  Ref<IntRequest> R = Ref<IntRequest>::adopt(newRequest());
  std::thread Canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_TRUE(R->cancel());
  });
  EXPECT_EQ(R->waitFor(std::chrono::seconds(10)), FutureStatus::Cancelled);
  Canceller.join();
}

TEST(Request, WaitForZeroTimeoutPollsStatus) {
  Ref<IntRequest> R = Ref<IntRequest>::adopt(newRequest());
  EXPECT_EQ(R->waitFor(std::chrono::nanoseconds(0)), FutureStatus::Pending);
  EXPECT_TRUE(R->complete(1));
  EXPECT_EQ(R->waitFor(std::chrono::nanoseconds(0)), FutureStatus::Completed);
}

TEST(Future, WaitForOnImmediateIsCompleted) {
  IntFuture F = IntFuture::immediate(4);
  EXPECT_EQ(F.waitFor(std::chrono::nanoseconds(0)), FutureStatus::Completed);
}

TEST(Future, TimeoutThenCancelPattern) {
  // The canonical timed-acquire idiom documented on waitFor().
  auto *Raw = new IntRequest(/*InitialRefs=*/2);
  IntFuture F = IntFuture::suspended(Ref<IntRequest>::adopt(Raw));
  if (F.waitFor(std::chrono::milliseconds(5)) == FutureStatus::Pending) {
    EXPECT_TRUE(F.cancel());
  }
  EXPECT_EQ(F.status(), FutureStatus::Cancelled);
  Raw->release(); // the cell's reference
}

TEST(Future, ImmediateBehaviour) {
  IntFuture F = IntFuture::immediate(11);
  EXPECT_TRUE(F.valid());
  EXPECT_TRUE(F.isImmediate());
  EXPECT_EQ(F.status(), FutureStatus::Completed);
  EXPECT_EQ(F.tryGet(), 11);
  EXPECT_EQ(F.blockingGet(), 11);
  EXPECT_FALSE(F.cancel()) << "immediate results are already completed";
  EXPECT_EQ(F.request(), nullptr);
}

TEST(Future, InvalidFutureReportsInvalid) {
  IntFuture F = IntFuture::invalid();
  EXPECT_FALSE(F.valid());
}

TEST(Future, SuspendedSharesTheRequest) {
  auto *Raw = new IntRequest(/*InitialRefs=*/2); // cell + future, as in CQS
  IntFuture F = IntFuture::suspended(Ref<IntRequest>::adopt(Raw));
  EXPECT_TRUE(F.valid());
  EXPECT_FALSE(F.isImmediate());
  EXPECT_EQ(F.status(), FutureStatus::Pending);
  // "The cell" completes it.
  EXPECT_TRUE(Raw->complete(8));
  EXPECT_EQ(F.tryGet(), 8);
  Raw->release(); // the cell's reference
}

TEST(Future, UnitFutureWorks) {
  Future<Unit> F = Future<Unit>::immediate(Unit{});
  EXPECT_EQ(F.status(), FutureStatus::Completed);
  EXPECT_TRUE(F.tryGet().has_value());
}

TEST(RefCounted, RefCountLifecycle) {
  auto *R = new IntRequest(/*InitialRefs=*/1);
  EXPECT_EQ(R->refCountForTesting(), 1u);
  R->addRef();
  EXPECT_EQ(R->refCountForTesting(), 2u);
  R->release();
  EXPECT_EQ(R->refCountForTesting(), 1u);
  R->release(); // frees
}

TEST(Ref, ShareAndAdoptSemantics) {
  auto *R = new IntRequest(/*InitialRefs=*/1);
  {
    Ref<IntRequest> A = Ref<IntRequest>::adopt(R);
    Ref<IntRequest> B = A; // copy shares
    EXPECT_EQ(R->refCountForTesting(), 2u);
    Ref<IntRequest> C = std::move(B); // move does not bump
    EXPECT_EQ(R->refCountForTesting(), 2u);
    EXPECT_FALSE(B); // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(C);
  } // both owners die; object freed (ASan/valgrind would flag leaks)
}

} // namespace
