//===- tests/schedcheck_timed_test.cpp - model-checked timed operations ---===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The timeout-vs-resume race under the deterministic scheduler. Two
/// scenario disciplines keep DFS verdicts exhaustive:
///
///  - zero-deadline scenarios: timedAwait() with a non-positive timeout
///    never parks, so the whole operation is one status poll plus the
///    cancel-vs-resume CAS race — every interleaving against a concurrent
///    resumer is explored without any timed block in the state space;
///  - generous-deadline scenarios: a 10s deadline with a *guaranteed*
///    resumer exercises the scheduler's timed-block support
///    (sc::blockOnWordTimed — bounded wake budget, virtual-time
///    fast-forward when every thread is blocked) on the park path, and the
///    operation must always succeed.
///
/// Conservation is the oracle throughout: a true return owns exactly one
/// permit/element, a false return owns nothing, and refused resumes must
/// re-deliver (SMART) or silently vanish (SIMPLE barrier) — never leak.
///
//===----------------------------------------------------------------------===//

#include "reclaim/Ebr.h"
#include "schedcheck/Sched.h"
#include "sync/Channel.h"
#include "sync/CountDownLatch.h"
#include "sync/CyclicBarrierCqs.h"
#include "sync/Semaphore.h"

#include <gtest/gtest.h>

#include <chrono>
#include <optional>

using namespace cqs;
using namespace std::chrono_literals;

namespace {

using SmallSem = BasicSemaphore<2>;
using SmallLatch = BasicCountDownLatch<2>;
using SmallBarrier = BasicCyclicBarrier<2>;
using SmallRendezvous = RendezvousChannel<int, 2>;

// --------------------------------------------------------------------------
// Semaphore (SMART): zero-deadline cancel vs release's resume.
// --------------------------------------------------------------------------

/// The permit is held by the scenario body; T1 polls with a zero deadline
/// exactly while T2 releases. Whatever wins the result-word CAS, the
/// permit count must balance: success owns it, timeout returned it.
void semaphoreTimedZeroDeadlineRace() {
  auto *Sem = new SmallSem(1, ResumptionMode::Async);
  auto F0 = Sem->acquire();
  sc::check(F0.isImmediate(), "first acquire must take the free permit");
  bool Got = false;
  sc::Thread T1 = sc::spawn([&] { Got = Sem->tryAcquireFor(0ns); });
  sc::Thread T2 = sc::spawn([&] { Sem->release(); });
  T1.join();
  T2.join();
  sc::check(Sem->availablePermits() == (Got ? 0 : 1),
            "permit lost or duplicated across the timeout/resume race");
  if (Got)
    Sem->release();
  sc::check(Sem->availablePermits() == 1, "drain failed");
  delete Sem;
}

TEST(SchedcheckTimed, SemaphoreZeroDeadlineRaceExhaustive) {
  // TimedWaitStats is PlainAtomic on purpose: invisible to the model, so
  // it can witness which branches the exploration reached.
  const TimedWaitStats &TS = timedWaitStats();
  std::uint64_t Timeouts0 = TS.Timeouts.load(std::memory_order_relaxed);
  std::uint64_t Rescues0 = TS.Rescues.load(std::memory_order_relaxed);
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 2;
  O.Iterations = 200000;
  sc::Result R = sc::explore(O, semaphoreTimedZeroDeadlineRace);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
  // Exhaustive DFS must have visited BOTH outcomes of the race: cancel
  // winning (a timeout) and cancel losing to the release's resume (a
  // rescue — the branch wall-clock stress cannot reliably reach).
  EXPECT_GT(TS.Timeouts.load(std::memory_order_relaxed), Timeouts0)
      << "no execution took the cancel-wins branch";
  EXPECT_GT(TS.Rescues.load(std::memory_order_relaxed), Rescues0)
      << "no execution took the resume-wins (rescue) branch";
}

TEST(SchedcheckTimed, SemaphoreZeroDeadlineRaceRandomSweep) {
  sc::Options O;
  O.Strat = sc::Strategy::Random;
  O.Seed = 3;
  O.Iterations = 1500;
  sc::Result R = sc::explore(O, semaphoreTimedZeroDeadlineRace);
  EXPECT_TRUE(R.Ok) << R.Report;
}

// --------------------------------------------------------------------------
// Semaphore (SMART): generous deadline parks on the modelled timed futex.
// --------------------------------------------------------------------------

/// T1 must park (the permit is held) and the guaranteed release must reach
/// it long before 10 real seconds pass — including through the scheduler's
/// all-blocked virtual-time fast-forward and spurious timed wakes, which
/// waitFor() absorbs by re-checking word and deadline.
void semaphoreTimedParkAndRelease() {
  auto *Sem = new SmallSem(1, ResumptionMode::Async);
  auto F0 = Sem->acquire();
  sc::check(F0.isImmediate(), "first acquire must take the free permit");
  bool Got = false;
  sc::Thread T1 = sc::spawn([&] { Got = Sem->tryAcquireFor(10s); });
  sc::Thread T2 = sc::spawn([&] { Sem->release(); });
  T1.join();
  T2.join();
  sc::check(Got, "a guaranteed release must beat a 10s deadline");
  Sem->release();
  sc::check(Sem->availablePermits() == 1, "permit count off after handoff");
  delete Sem;
}

TEST(SchedcheckTimed, SemaphoreParkAndReleaseExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 1;
  O.Iterations = 200000;
  sc::Result R = sc::explore(O, semaphoreTimedParkAndRelease);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

TEST(SchedcheckTimed, SemaphoreParkAndReleasePctSweep) {
  sc::Options O;
  O.Strat = sc::Strategy::Pct;
  O.Seed = 5;
  O.Iterations = 1000;
  sc::Result R = sc::explore(O, semaphoreTimedParkAndRelease);
  EXPECT_TRUE(R.Ok) << R.Report;
}

// --------------------------------------------------------------------------
// CountDownLatch (SMART): awaitFor(0) vs the opening countDown.
// --------------------------------------------------------------------------

/// When T1's cancel wins, the opening resume is refused (and dropped — a
/// latch transfers no data); when the resume wins, awaitFor must report
/// true even though the deadline had passed. Either way the latch ends
/// open and a later zero-deadline await is immediate.
void latchTimedZeroVsCountDown() {
  auto *L = new SmallLatch(1);
  bool Got = false;
  sc::Thread T1 = sc::spawn([&] { Got = L->awaitFor(0ns); });
  sc::Thread T2 = sc::spawn([&] { L->countDown(); });
  T1.join();
  T2.join();
  sc::check(L->count() == 0, "countDown did not close the count");
  sc::check(L->awaitFor(0ns), "open latch must answer immediately");
  (void)Got; // both outcomes are legal; conservation is the checks above
  delete L;
}

TEST(SchedcheckTimed, LatchZeroDeadlineVsCountDownExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 2;
  O.Iterations = 200000;
  sc::Result R = sc::explore(O, latchTimedZeroVsCountDown);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

// --------------------------------------------------------------------------
// CyclicBarrier (SIMPLE): awaitFor(0) vs the completing arrival.
// --------------------------------------------------------------------------

/// The barrier ignores cancellation (an aborted waiter has already
/// arrived), so T1's standing arrival lets T2's plain arriveAndWait
/// complete the generation in every schedule — T1 merely may or may not
/// learn of the completion before its zero deadline.
void barrierTimedZeroVsArrive() {
  auto *B = new SmallBarrier(2);
  bool Got = false;
  sc::Thread T1 = sc::spawn([&] { Got = B->awaitFor(0ns); });
  sc::Thread T2 = sc::spawn([&] { B->arriveAndWait(); });
  T1.join();
  T2.join();
  (void)Got; // termination of both threads IS the property under test
  delete B;
}

TEST(SchedcheckTimed, BarrierZeroDeadlineVsArriveExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 1;
  O.Iterations = 200000;
  sc::Result R = sc::explore(O, barrierTimedZeroVsArrive);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

// --------------------------------------------------------------------------
// Rendezvous channel: zero-deadline receive vs sendFor, and the parked
// doorbell path.
// --------------------------------------------------------------------------

/// Zero deadlines on both sides: sendFor succeeds only against an already
/// waiting receiver, and that receiver's cancel may still beat the
/// element's resume — the refused element is then re-buffered, never lost.
void channelZeroDeadlineRace() {
  auto *Ch = new SmallRendezvous();
  bool SendOk = false;
  std::optional<int> Rx;
  sc::Thread T1 = sc::spawn([&] { Rx = Ch->receiveFor(0ns); });
  sc::Thread T2 = sc::spawn([&] { SendOk = Ch->sendFor(5, 0ns); });
  T1.join();
  T2.join();
  std::optional<int> Leftover = Ch->tryReceive();
  if (SendOk) {
    // The element entered the channel exactly once: with the receiver
    // (resume won) or as a refused-resume re-delivery (cancel won).
    sc::check((Rx == 5 && !Leftover) || (!Rx && Leftover == 5),
              "sent element lost or duplicated");
  } else {
    sc::check(!Rx && !Leftover, "timeout-refused send left an element");
  }
  sc::check(!Ch->tryReceive(), "phantom element in the channel");
  delete Ch;
}

TEST(SchedcheckTimed, ChannelZeroDeadlineRaceExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 2;
  O.Iterations = 200000;
  sc::Result R = sc::explore(O, channelZeroDeadlineRace);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

/// Generous deadlines on both sides: the timed sender may park on the
/// slot-free doorbell (futex epoch + waiter count under the model) and the
/// receiver's arrival must ring it; the pair always meets.
void channelSendForParksOnDoorbell() {
  auto *Ch = new SmallRendezvous();
  bool SendOk = false;
  std::optional<int> Rx;
  sc::Thread T1 = sc::spawn([&] { SendOk = Ch->sendFor(7, 10s); });
  sc::Thread T2 = sc::spawn([&] { Rx = Ch->receiveFor(10s); });
  T1.join();
  T2.join();
  sc::check(SendOk, "guaranteed receiver must beat a 10s send deadline");
  sc::check(Rx == 7, "guaranteed sender must beat a 10s receive deadline");
  sc::check(Ch->balanceForTesting() == 0, "rendezvous left residue");
  delete Ch;
}

TEST(SchedcheckTimed, ChannelDoorbellRandomSweep) {
  sc::Options O;
  O.Strat = sc::Strategy::Random;
  O.Seed = 3;
  O.Iterations = 800;
  sc::Result R = sc::explore(O, channelSendForParksOnDoorbell);
  EXPECT_TRUE(R.Ok) << R.Report;
}

TEST(SchedcheckTimed, ChannelDoorbellPctSweep) {
  sc::Options O;
  O.Strat = sc::Strategy::Pct;
  O.Seed = 5;
  O.Iterations = 600;
  sc::Result R = sc::explore(O, channelSendForParksOnDoorbell);
  EXPECT_TRUE(R.Ok) << R.Report;
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
