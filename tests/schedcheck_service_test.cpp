//===- tests/schedcheck_service_test.cpp - model-checked service races ----===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The quota service's composition races (DESIGN.md §13) under the
/// deterministic scheduler. The service itself runs OS dispatcher threads
/// and an executor, so these scenarios model its *pipeline stages* with
/// the same primitives and the same protocol shapes as
/// service/QuotaService.h:
///
///  - timed admission vs release through channel -> sharded semaphore
///    (the dispatch() + tryAcquireFor inline-expiry race, TimerQueue mode);
///  - shutdown vs in-flight request: the dispatcher's
///    whenAnyFor(request, stop) sweep, including the stray-request and
///    stray-stop harvests — the no-message-lost contract;
///  - routing-table swap vs reader: TenantTable::configure() racing
///    route() + admit/release, conservation across both generations, and
///    an HB leg proving the table publishes the new limiter with correct
///    ordering;
///  - the reply CAS: service complete() vs client cancel() — "no request
///    is both shed and served" as an explored race, not a convention.
///
/// Run under the schedcheck and schedcheck-hb CI legs.
///
//===----------------------------------------------------------------------===//

#include "core/CqsStats.h"
#include "future/Future.h"
#include "future/TimedAwait.h"
#include "reclaim/Ebr.h"
#include "schedcheck/Sched.h"
#include "service/ServiceStats.h"
#include "service/TenantTable.h"
#include "support/Striping.h"
#include "sync/ChannelV2.h"
#include "sync/ShardedSemaphore.h"
#include "task/Combinators.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <optional>

using namespace cqs;
using namespace cqs::service;
using namespace std::chrono_literals;

namespace {

using Chan = BufferedChannelV2<int, 4>;
using SmallSharded = BasicShardedSemaphore<2>;

// --------------------------------------------------------------------------
// Stage 1+2: timed admission vs release through the request channel.
// --------------------------------------------------------------------------

/// A producer trySends a request into the dispatcher's channel; the
/// dispatcher dequeues it and runs the Inline-mode admission —
/// tryAcquireFor(0ns) in TimerQueue mode (inline expiry, fully modelled) —
/// against a drained limiter that a third thread is refilling. Whatever
/// order the release, the dequeue, and the deadline CAS land in, the
/// permit ends owned exactly once.
void admissionDeadlineVsRelease() {
  auto *Q = new Chan(1);
  auto *Sem = new SmallSharded(1, /*Shards=*/2, ResumptionMode::Async);
  auto Held = Sem->acquire();
  sc::check(Held.isImmediate(), "drain failed");
  bool Sent = false, Dispatched = false, Got = false;
  // trySend may refuse when racing the dispatcher's empty tryReceive (the
  // poisoned-cell WouldBlock path) — the service sheds queue-full there,
  // so the oracle accounts for it rather than forbidding it.
  sc::Thread Producer = sc::spawn([&] { Sent = Q->trySend(1); });
  sc::Thread Dispatcher = sc::spawn([&] {
    setThreadStripeSlotForTesting(0);
    if (Q->tryReceive().has_value()) {
      Dispatched = true;
      TimedWaitModeScope Mode(TimedWaitVia::TimerQueue);
      Got = Sem->tryAcquireFor(0ns);
    }
  });
  sc::Thread Releaser = sc::spawn([&] {
    setThreadStripeSlotForTesting(1);
    Sem->release();
  });
  Producer.join();
  Dispatcher.join();
  Releaser.join();
  sc::check(!Dispatched || Sent, "dequeued a request that was never sent");
  sc::check(!Got || Dispatched, "admission without a dequeued request");
  sc::check(Sem->totalPermitsForTesting() == (Got ? 0 : 1),
            "permit lost or duplicated in the admission race");
  if (Got)
    Sem->release();
  sc::check(Sem->totalPermitsForTesting() == 1, "drain-back failed");
  // Exactly-once accounting: the request was shed at submit, dispatched,
  // or is still drainable — never lost, never duplicated.
  int Drained = 0;
  while (Q->tryReceive().has_value())
    ++Drained;
  sc::check((Sent ? 0 : 1) + (Dispatched ? 1 : 0) + Drained == 1,
            "request lost or duplicated in the admission pipeline");
  delete Sem;
  delete Q;
}

TEST(SchedcheckService, AdmissionDeadlineVsReleaseExhaustive) {
  // Witnesses: the exploration must reach both the deadline winning
  // (timeout) and the release winning (rescue), without ever touching the
  // unmodelled OS timer thread.
  const TimedWaitStats &TS = timedWaitStats();
  std::uint64_t Timeouts0 = TS.Timeouts.load(std::memory_order_relaxed);
  std::uint64_t Rescues0 = TS.Rescues.load(std::memory_order_relaxed);
  const TimerStats &TQ = timerStats();
  std::uint64_t Sched0 = TQ.Scheduled.load(std::memory_order_relaxed);
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 2;
  O.Iterations = 400000;
  sc::Result R = sc::explore(O, admissionDeadlineVsRelease);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
  EXPECT_GT(TS.Timeouts.load(std::memory_order_relaxed), Timeouts0);
  EXPECT_GT(TS.Rescues.load(std::memory_order_relaxed), Rescues0);
  EXPECT_EQ(TQ.Scheduled.load(std::memory_order_relaxed), Sched0)
      << "modelled threads must never arm the OS timer thread";
}

TEST(SchedcheckService, AdmissionDeadlineVsReleaseRandomSweep) {
  sc::Options O;
  O.Strat = sc::Strategy::Random;
  O.Seed = 61;
  O.Iterations = 1200;
  sc::Result R = sc::explore(O, admissionDeadlineVsRelease);
  EXPECT_TRUE(R.Ok) << R.Report;
}

// --------------------------------------------------------------------------
// The dispatcher loop: shutdown vs in-flight request through whenAnyFor.
// --------------------------------------------------------------------------

/// The exact sweep shape of QuotaService::dispatchLoop: request and stop
/// receives raced with a non-positive deadline (never parks, fully
/// modelled), the stray-request harvest after a stop win, and the
/// stray-stop harvest after a request win. The oracle is the service's
/// no-loss contract: the request is dispatched or drained exactly once,
/// and the stop sentinel is honored exactly once.
void shutdownVsInFlightRequest() {
  auto *Q = new Chan(1);
  auto *Stop = new Chan(1);
  int DispatchedReq = 0, StrayReq = 0, StopsSeen = 0, Drained = 0;
  bool SentReq = false, SentStop = false;
  // Both trySends may refuse when racing the dispatcher's withdrawn
  // receives (poisoned-cell WouldBlock) — the service sheds queue-full /
  // retries the sentinel there, so the oracle accounts for the refusal.
  sc::Thread Producer = sc::spawn([&] { SentReq = Q->trySend(1); });
  sc::Thread Stopper = sc::spawn([&] { SentStop = Stop->trySend(2); });
  sc::Thread Dispatcher = sc::spawn([&] {
    for (int Sweep = 0; Sweep < 2; ++Sweep) {
      Chan::ReceiveFuture RF = Q->receive();
      sc::check(RF.valid(), "queue receive failed");
      Chan::ReceiveFuture SF = Stop->receive();
      sc::check(SF.valid(), "stop receive failed");
      Future<int> *Race[2] = {&RF, &SF};
      std::optional<WhenAnyResult<int>> Won = whenAnyFor(Race, 2, 0ns);
      if (!Won)
        continue; // idle sweep: both receives withdrawn, re-issued next turn
      if (Won->Index == 1) {
        ++StopsSeen;
        // Stop won; the losing request receive may have dequeued anyway —
        // that message is ours to resolve, never to drop.
        if (RF.tryGet().has_value()) {
          ++StrayReq;
          ++DispatchedReq;
        }
        break;
      }
      ++DispatchedReq;
      // Our stop receive lost; a failed loser-cancel means the sentinel
      // was consumed — honor it instead of stranding the shutdown.
      if (SF.tryGet().has_value()) {
        ++StopsSeen;
        break;
      }
    }
  });
  Producer.join();
  Stopper.join();
  Dispatcher.join();
  // Shutdown's epilogue: drain whatever the dispatcher left behind.
  while (Q->tryReceive().has_value())
    ++Drained;
  while (Stop->tryReceive().has_value())
    ++StopsSeen;
  sc::check((SentReq ? 0 : 1) + DispatchedReq + Drained == 1,
            "request lost or double-dispatched in the shutdown race");
  sc::check((SentStop ? 0 : 1) + StopsSeen == 1,
            "stop sentinel lost or duplicated");
  delete Stop;
  delete Q;
}

TEST(SchedcheckService, ShutdownVsInFlightExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 1;
  O.Iterations = 600000;
  sc::Result R = sc::explore(O, shutdownVsInFlightRequest);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

TEST(SchedcheckService, ShutdownVsInFlightRandomSweep) {
  sc::Options O;
  O.Strat = sc::Strategy::Random;
  O.Seed = 67;
  O.Iterations = 1000;
  sc::Result R = sc::explore(O, shutdownVsInFlightRequest);
  EXPECT_TRUE(R.Ok) << R.Report;
}

// --------------------------------------------------------------------------
// TenantTable: hot-reload swap vs a routing reader.
// --------------------------------------------------------------------------

/// configure() replaces the limiter while a reader routes and admits
/// through whichever generation it pinned. Both generations must conserve
/// their permits — the in-flight release lands in the semaphore it
/// acquired from, never the replacement's.
void tableSwapVsReader() {
  auto *Table = new TenantTable(/*Stripes=*/2);
  Table->configure(/*Tenant=*/1, /*Limit=*/1, 0ns, /*Shards=*/2); // gen 1
  sc::Thread Reader = sc::spawn([&] {
    setThreadStripeSlotForTesting(0);
    std::shared_ptr<TenantLimiter> L = Table->route(1);
    sc::check(L != nullptr, "configured tenant must always route");
    auto F = L->Sem.acquire();
    sc::check(F.isImmediate(), "fresh limiter must have a free permit");
    L->noteAdmitted();
    L->Sem.release();
    L->noteReleased();
  });
  sc::Thread Reloader = sc::spawn([&] {
    setThreadStripeSlotForTesting(1);
    Table->configure(1, /*Limit=*/2, 0ns, /*Shards=*/2); // gen 2
  });
  Reader.join();
  Reloader.join();
  int Generations = 0;
  Table->forEachLimiter([&](std::uint64_t, const TenantLimiter &L) {
    ++Generations;
    sc::check(L.admitted() == L.released(),
              "admit/release split across generations");
    sc::check(L.Sem.totalPermitsForTesting() == L.Limit,
              "permit stranded in a replaced limiter");
  });
  sc::check(Generations == 2, "hot-reload must retire the old generation");
  delete Table;
}

TEST(SchedcheckService, TableSwapVsReaderExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 1;
  O.Iterations = 600000;
  sc::Result R = sc::explore(O, tableSwapVsReader);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

/// HB leg: the table must *publish* the new limiter — a reader that
/// routes generation 2 must see every plain write the reloader made
/// before configure(). A relaxed downgrade in the striped rwmutex (or a
/// lost writer-side fence) fails this under the vector-clock check.
void tableSwapCarriesPayloadHb() {
  auto *Table = new TenantTable(/*Stripes=*/2);
  auto *D = new Shared<int>(0);
  Table->configure(1, 1, 0ns, 2); // gen 1
  sc::Thread Reader = sc::spawn([&] {
    setThreadStripeSlotForTesting(0);
    std::shared_ptr<TenantLimiter> L = Table->route(1);
    sc::check(L != nullptr, "configured tenant must always route");
    if (L->Generation == 2)
      sc::check(D->get() == 123, "gen-2 limiter visible before its payload");
  });
  sc::Thread Reloader = sc::spawn([&] {
    setThreadStripeSlotForTesting(1);
    D->set(123); // plain write, published only by configure()'s ordering
    Table->configure(1, 2, 0ns, 2); // gen 2
  });
  Reader.join();
  Reloader.join();
  delete D;
  delete Table;
}

TEST(SchedcheckService, TableSwapCarriesHappensBeforeToPayload) {
  sc::Options O;
  O.Strat = sc::Strategy::Random;
  O.Seed = 71;
  O.Iterations = 800;
  O.HbCheck = true;
  sc::Result R = sc::explore(O, tableSwapCarriesPayloadHb);
  EXPECT_TRUE(R.Ok) << R.Report;
}

// --------------------------------------------------------------------------
// The reply word: service complete() vs client cancel().
// --------------------------------------------------------------------------

/// The served/shed/client-cancelled trichotomy rides one result-word CAS
/// (Appendix G.2). Exactly one side may win; the future's final state must
/// agree with the winner; a won complete() delivers the verdict intact.
void replyCompleteVsClientCancel() {
  using Req = Request<std::int32_t>;
  Req *Reply = Req::acquire(/*InitialRefs=*/2);
  auto *F = new Future<std::int32_t>(
      Future<std::int32_t>::suspended(Ref<Req>::adopt(Reply)));
  bool ServiceWon = false, ClientWon = false;
  sc::Thread Service = sc::spawn([&] {
    ServiceWon = Reply->complete(VerdictServed);
    Reply->release(); // the service's reference
  });
  sc::Thread Client = sc::spawn([&] { ClientWon = F->cancel(); });
  Service.join();
  Client.join();
  sc::check(ServiceWon != ClientWon,
            "reply resolved twice or not at all (shed AND served)");
  sc::check((F->status() == FutureStatus::Completed) == ServiceWon,
            "future state disagrees with the CAS winner");
  if (ServiceWon)
    sc::check(F->tryGet().has_value() &&
                  *F->tryGet() == VerdictServed,
              "verdict corrupted through the reply word");
  delete F;
}

TEST(SchedcheckService, ReplyCompleteVsCancelExhaustive) {
  sc::Options O;
  O.Strat = sc::Strategy::Dfs;
  O.PreemptionBound = 2;
  O.Iterations = 400000;
  sc::Result R = sc::explore(O, replyCompleteVsClientCancel);
  EXPECT_TRUE(R.Ok) << R.Report;
  EXPECT_TRUE(R.Exhausted)
      << R.Executions << " executions, " << R.Truncated << " truncated";
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
