//===- tests/stats_coverage_test.cpp - path-coverage assertions -----------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Uses the CqsStats counters to prove that the test scenarios exercise
/// the state machine's rare transitions — a race test that never hits its
/// race is vacuously green. Also checks the conservation identities the
/// counters must satisfy at quiescence.
///
//===----------------------------------------------------------------------===//

#include "core/Cqs.h"
#include "reclaim/Ebr.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace cqs;

namespace {

using IntCqs = Cqs<int, ValueTraits<int>, /*SegmentSize=*/4>;
using IntFut = IntCqs::FutureType;

struct SkipHandler : IntCqs::SmartCancellationHandler {
  bool onCancellation() override { return true; }
  void completeRefusedResume(int) override {}
};

/// Handler that dawdles inside onCancellation(), holding the cell in the
/// FUTURE_CANCELLED state so a concurrent resume can hit the delegation
/// window (Figure 4) even on a single-core host.
struct SlowSkipHandler : IntCqs::SmartCancellationHandler {
  bool onCancellation() override {
    // Long enough that the observer thread's resume lands well inside the
    // window even under adverse scheduling.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return true;
  }
  void completeRefusedResume(int) override {}
};

TEST(StatsCoverage, BasicCountersMatchTraffic) {
  IntCqs Q;
  std::vector<IntFut> Fs;
  for (int I = 0; I < 10; ++I)
    Fs.push_back(Q.suspend());
  for (int I = 0; I < 10; ++I)
    ASSERT_TRUE(Q.resume(I));
  ASSERT_TRUE(Q.resume(99)); // elimination
  auto F = Q.suspend();
  EXPECT_TRUE(F.isImmediate());

  const CqsStats &S = Q.stats();
  EXPECT_EQ(CqsStats::read(S.Suspensions), 10u);
  EXPECT_EQ(CqsStats::read(S.Completions), 10u);
  EXPECT_EQ(CqsStats::read(S.Eliminations), 1u);
  EXPECT_EQ(CqsStats::read(S.ValueDeposits), 1u);
  EXPECT_EQ(CqsStats::read(S.Cancellations), 0u);
}

TEST(StatsCoverage, SyncModeBrokenCellCountersMatch) {
  IntCqs Q(CancellationMode::Simple, ResumptionMode::Sync);
  EXPECT_FALSE(Q.resume(1)); // breaks
  EXPECT_FALSE(Q.suspend().valid());
  const CqsStats &S = Q.stats();
  EXPECT_EQ(CqsStats::read(S.BrokenCells), 1u);
  EXPECT_EQ(CqsStats::read(S.SuspendFailures), 1u);
}

TEST(StatsCoverage, DelegationRaceActuallyHappens) {
  // The Figure 4 delegation window (resume overwrites FUTURE_CANCELLED
  // with its value) is narrow; hammer it and require that the stress saw
  // the path at least once, so the race test in cqs_cancellation_test is
  // known to be non-vacuous on this host.
  // Deterministic construction of the window: the canceller thread CASes
  // the future to Cancelled and then dawdles inside onCancellation()
  // (cell still FUTURE_CANCELLED); the main thread waits until it can
  // observe the cancelled status and resumes right then — complete()
  // fails, and the resume must delegate by swapping its value in.
  SlowSkipHandler H;
  IntCqs Q(CancellationMode::Smart, ResumptionMode::Async, &H);
  IntFut F1 = Q.suspend();
  IntFut F2 = Q.suspend();
  std::thread B([&] { EXPECT_TRUE(F1.cancel()); });
  while (F1.status() != FutureStatus::Cancelled)
    std::this_thread::yield();
  EXPECT_TRUE(Q.resume(7));
  B.join();
  EXPECT_EQ(F2.tryGet(), 7) << "handler must re-dispatch the value";
  EXPECT_EQ(CqsStats::read(Q.stats().Delegations), 1u)
      << "the Figure 4 delegation hand-off was not exercised";
}

TEST(StatsCoverage, RefuseProtocolActuallyHappens) {
  struct RefuseHandler : IntCqs::SmartCancellationHandler {
    bool onCancellation() override { return false; }
    void completeRefusedResume(int) override {}
  } H;
  IntCqs Q(CancellationMode::Smart, ResumptionMode::Async, &H);
  IntFut F = Q.suspend();
  EXPECT_TRUE(F.cancel());
  EXPECT_TRUE(Q.resume(5));
  const CqsStats &S = Q.stats();
  EXPECT_EQ(CqsStats::read(S.RefuseVerdicts), 1u);
  EXPECT_EQ(CqsStats::read(S.RefusedResumes), 1u);
}

TEST(StatsCoverage, SmartSkipCountsCellsAndSegments) {
  SkipHandler H;
  IntCqs Q(CancellationMode::Smart, ResumptionMode::Async, &H);
  std::vector<IntFut> Fs;
  for (int I = 0; I < 9; ++I)
    Fs.push_back(Q.suspend());
  for (int I = 0; I < 8; ++I)
    EXPECT_TRUE(Fs[I].cancel());
  EXPECT_TRUE(Q.resume(1));
  const CqsStats &S = Q.stats();
  // Cells 0-3 are skipped one-by-one (segment 0 is pinned by the resume
  // pointer); segment 1 is jumped over wholesale.
  EXPECT_EQ(CqsStats::read(S.SkippedCells), 4u);
  EXPECT_EQ(CqsStats::read(S.SegmentSkips), 1u);
  EXPECT_EQ(CqsStats::read(S.Cancellations), 8u);
}

TEST(StatsCoverage, ConservationIdentityUnderConcurrentChurn) {
  // At quiescence: every resume is accounted by exactly one of
  // {completion, deposit, delegation, refusal, simple failure, broken}
  // and every suspend by {installed, elimination, suspend-failure}.
  SkipHandler H;
  IntCqs Q(CancellationMode::Smart, ResumptionMode::Async, &H);
  constexpr int PerThread = 2000;
  constexpr int Threads = 3;

  std::vector<std::thread> Ts;
  std::atomic<bool> StopAborters{false};
  for (int T = 0; T < Threads; ++T) {
    Ts.emplace_back([&, T] { // producers
      for (int I = 0; I < PerThread; ++I)
        ASSERT_TRUE(Q.resume(I));
    });
    Ts.emplace_back([&, T] { // consumers
      int Got = 0;
      while (Got < PerThread) {
        auto F = Q.suspend();
        ASSERT_TRUE(F.valid());
        if (F.blockingGet().has_value())
          ++Got;
      }
    });
  }
  // Dedicated aborter: suspend and immediately withdraw; if a resume wins
  // the race, re-inject the value so the consumers' quota still closes.
  // Keeps going until it has scored at least one successful cancellation,
  // so the coverage assertion below cannot be starved out.
  std::thread Aborter([&] {
    int Wins = 0;
    while (!StopAborters.load() || Wins == 0) {
      auto F = Q.suspend();
      if (F.isImmediate() || !F.cancel())
        ASSERT_TRUE(Q.resume(*F.blockingGet()));
      else
        ++Wins;
    }
  });
  for (auto &T : Ts)
    T.join();
  StopAborters.store(true);
  Aborter.join();
  // The aborter may leave one final cancelled waiter in the queue; that
  // is fine — it is deregistered and will never be resumed.

  const CqsStats &S = Q.stats();
  std::uint64_t ResumeOutcomes =
      CqsStats::read(S.Completions) + CqsStats::read(S.ValueDeposits) +
      CqsStats::read(S.Delegations) + CqsStats::read(S.RefusedResumes);
  // Every external resume plus every handler re-dispatch lands in exactly
  // one outcome bucket; at quiescence the sum must cover all producer
  // resumes (re-dispatches add on top, hence GE).
  EXPECT_GE(ResumeOutcomes,
            static_cast<std::uint64_t>(Threads) * PerThread);
  // Async mode never breaks cells.
  EXPECT_EQ(CqsStats::read(S.SuspendFailures), 0u);
  EXPECT_EQ(CqsStats::read(S.BrokenCells), 0u);
  EXPECT_GT(CqsStats::read(S.Cancellations), 0u)
      << "cancellation never fired; the churn scenario is vacuous";
  // Deposited values were all picked up: eliminations count deposits that
  // a suspend consumed; at quiescence nothing is left in cells, so the
  // two differ only by values consumed by *suspends* that saw them
  // directly. Check the strong identity instead: suspensions ==
  // completions + successful cancellations that removed an installed
  // waiter. Successful cancellations == Cancellations (each handler run
  // corresponds to one cancelled installed waiter).
  EXPECT_EQ(CqsStats::read(S.Suspensions),
            CqsStats::read(S.Completions) + CqsStats::read(S.Cancellations));
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
