//===- tests/alloc_count_test.cpp - zero-allocation hot path --------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Proves the tentpole claim of the pooling layer (support/ObjectPool.h):
// once the pools are warm, a steady-state suspend/resume loop performs
// ZERO heap allocations — requests and segments circulate through the
// EBR-integrated freelists, and the EBR bags retain their vector capacity.
//
// The global operator new/delete family is replaced with counting
// interposers. The counters are only armed around the measured loop, so
// gtest/iostream allocations outside the window do not pollute the tally;
// inside the window failures are counted manually (gtest assertion macros
// may allocate when they fire).
//
//===----------------------------------------------------------------------===//

#include "core/Cqs.h"
#include "reclaim/Ebr.h"
#include "support/ObjectPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace {

std::atomic<bool> Armed{false};
std::atomic<std::uint64_t> NewCalls{0};
std::atomic<std::uint64_t> DeleteCalls{0};

void *countedAlloc(std::size_t Sz, std::size_t Align) {
  if (Armed.load(std::memory_order_relaxed))
    NewCalls.fetch_add(1, std::memory_order_relaxed);
  if (Sz == 0)
    Sz = 1;
  void *P;
  if (Align <= alignof(std::max_align_t)) {
    P = std::malloc(Sz);
  } else {
    // aligned_alloc requires the size to be a multiple of the alignment.
    P = std::aligned_alloc(Align, (Sz + Align - 1) / Align * Align);
  }
  if (!P)
    throw std::bad_alloc();
  return P;
}

void countedFree(void *P) {
  if (!P)
    return;
  if (Armed.load(std::memory_order_relaxed))
    DeleteCalls.fetch_add(1, std::memory_order_relaxed);
  std::free(P);
}

} // namespace

void *operator new(std::size_t Sz) {
  return countedAlloc(Sz, alignof(std::max_align_t));
}
void *operator new[](std::size_t Sz) {
  return countedAlloc(Sz, alignof(std::max_align_t));
}
void *operator new(std::size_t Sz, std::align_val_t Align) {
  return countedAlloc(Sz, static_cast<std::size_t>(Align));
}
void *operator new[](std::size_t Sz, std::align_val_t Align) {
  return countedAlloc(Sz, static_cast<std::size_t>(Align));
}
void *operator new(std::size_t Sz, const std::nothrow_t &) noexcept {
  return std::malloc(Sz ? Sz : 1);
}
void *operator new[](std::size_t Sz, const std::nothrow_t &) noexcept {
  return std::malloc(Sz ? Sz : 1);
}

void operator delete(void *P) noexcept { countedFree(P); }
void operator delete[](void *P) noexcept { countedFree(P); }
void operator delete(void *P, std::size_t) noexcept { countedFree(P); }
void operator delete[](void *P, std::size_t) noexcept { countedFree(P); }
void operator delete(void *P, std::align_val_t) noexcept { countedFree(P); }
void operator delete[](void *P, std::align_val_t) noexcept { countedFree(P); }
void operator delete(void *P, std::size_t, std::align_val_t) noexcept {
  countedFree(P);
}
void operator delete[](void *P, std::size_t, std::align_val_t) noexcept {
  countedFree(P);
}
void operator delete(void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}
void operator delete[](void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}

namespace {

using namespace cqs;

std::uint64_t requestPoolHits() {
  return pool::stats(pool::PoolKind::Request)
      .Hits.load(std::memory_order_relaxed);
}

TEST(AllocCount, ZeroSteadyStateSuspendResume) {
#if defined(CQS_DISABLE_POOLING) && CQS_DISABLE_POOLING
  GTEST_SKIP() << "pooling disabled (CQS_DISABLE_POOLING): every suspension "
                  "allocates by design";
#else
  Cqs<int> Q; // Simple/Async: the paper's default fast configuration

  // Warm up both hot paths until the pools reach steady state: the pool
  // must cover the requests parked in EBR limbo (up to a few advance
  // periods' worth) plus the magazine stock.
  for (int I = 0; I < 50000; ++I) {
    auto F = Q.suspend(); // install path: pooled request published
    ASSERT_TRUE(Q.resume(I));
    ASSERT_EQ(F.tryGet().value_or(-1), I);
  }
  for (int I = 0; I < 50000; ++I) {
    ASSERT_TRUE(Q.resume(I)); // deposit path
    auto F = Q.suspend();     // elimination: request recycled unpublished
    ASSERT_TRUE(F.isImmediate());
    ASSERT_EQ(F.tryGet().value_or(-1), I);
  }

  const std::uint64_t HitsBefore = requestPoolHits();
  int Failures = 0;
  NewCalls.store(0, std::memory_order_relaxed);
  DeleteCalls.store(0, std::memory_order_relaxed);
  Armed.store(true, std::memory_order_relaxed);
  for (int I = 0; I < 20000; ++I) {
    auto F = Q.suspend();
    if (!Q.resume(I) || F.tryGet().value_or(-1) != I)
      ++Failures;
    if (!Q.resume(I))
      ++Failures;
    auto G = Q.suspend();
    if (!G.isImmediate() || G.tryGet().value_or(-1) != I)
      ++Failures;
  }
  Armed.store(false, std::memory_order_relaxed);

  EXPECT_EQ(Failures, 0);
  EXPECT_EQ(NewCalls.load(std::memory_order_relaxed), 0u)
      << "steady-state suspend/resume loop must not allocate";
  EXPECT_EQ(DeleteCalls.load(std::memory_order_relaxed), 0u)
      << "steady-state suspend/resume loop must not free";
  EXPECT_GT(requestPoolHits(), HitsBefore)
      << "measured loop should be served from the request pool";
#endif
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  // Flush retired objects so leak checkers stay quiet.
  cqs::ebr::drainForTesting();
  return Rc;
}
