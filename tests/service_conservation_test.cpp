//===- tests/service_conservation_test.cpp - admission-pipeline oracle ----===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The cross-primitive conservation oracle of the sharded quota service
/// (DESIGN.md §13): under concurrent deadline expiry, client cancellation,
/// tenant-limit hot-reload, and shutdown, the pipeline must keep two
/// accounting identities exactly:
///
///  1. Every submission resolves exactly once — the per-verdict counters
///     plus client cancellations sum to Submitted, and the verdicts the
///     *clients* observed tally to the same numbers (no request is both
///     shed and served: the reply is one CQS Request, Appendix G.2).
///  2. Every admitted permit is released exactly once, into the limiter
///     generation it was acquired from — Admitted == Released and the
///     semaphore holds its full permit count at quiescence, for every
///     generation ever published (hot-reloads included). The connection
///     pool is likewise back to full size.
///
/// These are the PR 4 / PR 9 no-leak contracts, now composed through
/// channel -> whenAnyFor -> rwmutex table -> sharded semaphore ->
/// executor -> pool. Runs under ASan, TSan, and the no-pooling leg.
///
//===----------------------------------------------------------------------===//

#include "service/QuotaService.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

using namespace cqs;
using namespace cqs::service;
using namespace std::chrono;

namespace {

/// What the clients of one scenario observed, tallied per verdict; the
/// oracle cross-checks these against the service's own counters.
struct ClientTally {
  std::atomic<std::uint64_t> Served{0};
  std::atomic<std::uint64_t> ShedDeadline{0};
  std::atomic<std::uint64_t> ShedQueueFull{0};
  std::atomic<std::uint64_t> ShedUnknownTenant{0};
  std::atomic<std::uint64_t> ShedShutdown{0};
  std::atomic<std::uint64_t> Cancelled{0};
  std::atomic<std::uint64_t> Submitted{0};

  void observe(std::optional<std::int32_t> V) {
    Submitted.fetch_add(1, std::memory_order_relaxed);
    if (!V) {
      Cancelled.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    switch (*V) {
    case VerdictServed:
      Served.fetch_add(1, std::memory_order_relaxed);
      break;
    case VerdictShedDeadline:
      ShedDeadline.fetch_add(1, std::memory_order_relaxed);
      break;
    case VerdictShedQueueFull:
      ShedQueueFull.fetch_add(1, std::memory_order_relaxed);
      break;
    case VerdictShedUnknownTenant:
      ShedUnknownTenant.fetch_add(1, std::memory_order_relaxed);
      break;
    case VerdictShedShutdown:
      ShedShutdown.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      ADD_FAILURE() << "unknown verdict " << *V;
    }
  }
};

/// The full post-shutdown audit: accounting identity, client-vs-service
/// tally agreement, per-generation permit conservation, pool refill.
void auditQuiescent(QuotaService &S, const ClientTally &T) {
  ServiceStatsSnapshot Snap = S.snapshot();

  // Identity 1: every submission resolved exactly once.
  EXPECT_TRUE(Snap.accountingBalanced())
      << "delivered=" << Snap.delivered()
      << " cancelled=" << Snap.ClientCancelled
      << " submitted=" << Snap.Submitted;
  EXPECT_EQ(Snap.Submitted, T.Submitted.load());

  // The clients' view and the service's view must be the same partition.
  EXPECT_EQ(Snap.Served, T.Served.load());
  EXPECT_EQ(Snap.ShedDeadline, T.ShedDeadline.load());
  EXPECT_EQ(Snap.ShedQueueFull, T.ShedQueueFull.load());
  EXPECT_EQ(Snap.ShedUnknownTenant, T.ShedUnknownTenant.load());
  EXPECT_EQ(Snap.ShedShutdown, T.ShedShutdown.load());
  EXPECT_EQ(Snap.ClientCancelled, T.Cancelled.load());

  // Identity 2: permits conserved in every limiter generation ever
  // published, and the connection pool is whole again.
  S.table().forEachLimiter([&](std::uint64_t Tenant, const TenantLimiter &L) {
    EXPECT_EQ(L.admitted(), L.released())
        << "tenant " << Tenant << " gen " << L.Generation;
    EXPECT_EQ(L.Sem.totalPermitsForTesting(), L.Limit)
        << "tenant " << Tenant << " gen " << L.Generation;
  });
  EXPECT_EQ(S.idleConnectionsForTesting(),
            static_cast<std::int64_t>(S.config().Connections));
  EXPECT_EQ(S.inFlightForTesting(), 0u);
}

/// Deadline expiry under sustained overload: tiny limits, a hold time
/// longer than the admission deadline, both admission modes. Most
/// requests shed at the deadline; every admitted one still releases its
/// permit exactly once.
TEST(ServiceConservation, DeadlineExpiryStorm) {
  for (AdmissionMode Mode : {AdmissionMode::Async, AdmissionMode::Inline}) {
    ServiceConfig C;
    C.Dispatchers = 2;
    C.HandlerThreads = 2;
    C.QueueCapacity = 256;
    C.Connections = 8;
    C.Admission = Mode;
    C.HoldTime = microseconds(200);
    QuotaService S(C);
    // Hold > deadline with a tiny limit: deterministic overload.
    S.configureTenant(1, /*Limit=*/2, /*AdmissionDeadline=*/microseconds(100));
    S.configureTenant(2, /*Limit=*/64, milliseconds(10));

    ClientTally T;
    std::vector<std::thread> Clients;
    for (int W = 0; W < 4; ++W) {
      Clients.emplace_back([&, W] {
        std::vector<QuotaService::ReplyFuture> Fs;
        Fs.reserve(64);
        for (int I = 0; I < 500; ++I) {
          Fs.push_back(S.submit(W % 2 ? 1 : 2));
          if (Fs.size() == 64) {
            for (auto &F : Fs)
              T.observe(F.blockingGet());
            Fs.clear();
          }
        }
        for (auto &F : Fs)
          T.observe(F.blockingGet());
      });
    }
    for (auto &Th : Clients)
      Th.join();
    S.shutdown();
    auditQuiescent(S, T);
    ServiceStatsSnapshot Snap = S.snapshot();
    EXPECT_GT(Snap.ShedDeadline, 0u) << "overload never hit the deadline";
    EXPECT_GT(Snap.Served, 0u);
  }
}

/// Client-cancel storm: impatient clients with randomized tiny deadlines
/// withdraw their replies while the service is completing them. A cancel
/// that wins counts as ClientCancelled on both sides; a reply that wins is
/// observed even at the deadline (rescue semantics).
TEST(ServiceConservation, ClientCancelStorm) {
  ServiceConfig C;
  C.Dispatchers = 2;
  C.HandlerThreads = 2;
  C.QueueCapacity = 512;
  C.Connections = 16;
  C.Admission = AdmissionMode::Async;
  C.HoldTime = microseconds(100);
  QuotaService S(C);
  S.configureTenant(7, /*Limit=*/8, milliseconds(5));

  ClientTally T;
  std::vector<std::thread> Clients;
  for (int W = 0; W < 4; ++W) {
    Clients.emplace_back([&, W] {
      std::mt19937 Rng(1234 + W);
      std::uniform_int_distribution<int> PatienceUs(0, 300);
      for (int I = 0; I < 500; ++I)
        T.observe(S.call(7, microseconds(PatienceUs(Rng))));
    });
  }
  for (auto &Th : Clients)
    Th.join();
  S.shutdown();
  auditQuiescent(S, T);
  ServiceStatsSnapshot Snap = S.snapshot();
  EXPECT_GT(Snap.ClientCancelled, 0u) << "no cancel ever won the race";
  EXPECT_GT(Snap.Served, 0u) << "no reply ever won the race";
}

/// Tenant-limit hot-reload during traffic: a reloader thread keeps
/// replacing the hot tenant's limiter while clients hammer it. In-flight
/// requests must release into the generation they acquired from, so every
/// retired generation conserves its permits too.
TEST(ServiceConservation, HotReloadDuringTraffic) {
  ServiceConfig C;
  C.Dispatchers = 2;
  C.HandlerThreads = 2;
  C.QueueCapacity = 512;
  C.Connections = 16;
  C.Admission = AdmissionMode::Async;
  C.HoldTime = microseconds(100);
  QuotaService S(C);
  S.configureTenant(3, /*Limit=*/4, milliseconds(2));

  std::atomic<bool> Stop{false};
  std::thread Reloader([&] {
    std::int64_t Limit = 4;
    while (!Stop.load(std::memory_order_acquire)) {
      Limit = Limit == 4 ? 16 : 4;
      S.configureTenant(3, Limit, milliseconds(2));
      std::this_thread::sleep_for(microseconds(300));
    }
  });

  ClientTally T;
  std::vector<std::thread> Clients;
  for (int W = 0; W < 4; ++W) {
    Clients.emplace_back([&] {
      for (int I = 0; I < 400; ++I)
        T.observe(S.submit(3).blockingGet());
    });
  }
  for (auto &Th : Clients)
    Th.join();
  Stop.store(true, std::memory_order_release);
  Reloader.join();
  S.shutdown();
  auditQuiescent(S, T);
  ServiceStatsSnapshot Snap = S.snapshot();
  EXPECT_GT(Snap.Reloads, 2u);
  EXPECT_GT(S.table().generationsForTesting(), 3u);
}

/// Shutdown mid-traffic: submitters race shutdown() itself. Requests that
/// get in before the gate are drained with a shutdown verdict (or served);
/// requests after it shed immediately. Nothing is lost either way.
TEST(ServiceConservation, ShutdownMidTraffic) {
  ServiceConfig C;
  C.Dispatchers = 2;
  C.HandlerThreads = 2;
  C.QueueCapacity = 256;
  C.Connections = 8;
  C.Admission = AdmissionMode::Async;
  C.HoldTime = microseconds(50);
  QuotaService S(C);
  S.configureTenant(5, /*Limit=*/16, milliseconds(5));

  ClientTally T;
  std::atomic<bool> Go{false};
  std::vector<std::thread> Clients;
  for (int W = 0; W < 4; ++W) {
    Clients.emplace_back([&] {
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      std::vector<QuotaService::ReplyFuture> Fs;
      Fs.reserve(300);
      for (int I = 0; I < 300; ++I)
        Fs.push_back(S.submit(5));
      for (auto &F : Fs)
        T.observe(F.blockingGet());
    });
  }
  Go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(microseconds(500));
  S.shutdown(); // concurrent with the submitters
  // Post-gate submissions shed deterministically and immediately.
  for (int I = 0; I < 10; ++I) {
    QuotaService::ReplyFuture F = S.submit(5);
    EXPECT_TRUE(F.isImmediate());
    T.observe(F.blockingGet());
  }
  for (auto &Th : Clients)
    Th.join();
  auditQuiescent(S, T);
  ServiceStatsSnapshot Snap = S.snapshot();
  EXPECT_GE(Snap.ShedShutdown, 10u) << "post-shutdown submits must shed";
}

/// Unknown tenants shed deterministically and never touch a limiter.
TEST(ServiceConservation, UnknownTenantSheds) {
  ServiceConfig C;
  C.Dispatchers = 1;
  C.HandlerThreads = 1;
  QuotaService S(C);
  S.configureTenant(1, 4, milliseconds(1));

  ClientTally T;
  for (int I = 0; I < 50; ++I)
    T.observe(S.submit(/*Tenant=*/999).blockingGet());
  S.shutdown();
  auditQuiescent(S, T);
  EXPECT_EQ(S.snapshot().ShedUnknownTenant, 50u);
  EXPECT_EQ(S.snapshot().Admitted, 0u);
}

/// Queue-full shedding: one dispatcher with a capacity-1 queue and a slow
/// backend; a burst must shed the overflow at the edge, and the shed
/// replies resolve immediately (submit never parks).
TEST(ServiceConservation, QueueFullShedsAtEdge) {
  ServiceConfig C;
  C.Dispatchers = 1;
  C.HandlerThreads = 1;
  C.QueueCapacity = 1;
  C.Connections = 1;
  C.Admission = AdmissionMode::Inline;
  C.HoldTime = milliseconds(2);
  QuotaService S(C);
  S.configureTenant(1, 1, milliseconds(50));

  ClientTally T;
  std::vector<QuotaService::ReplyFuture> Fs;
  for (int I = 0; I < 64; ++I)
    Fs.push_back(S.submit(1));
  for (auto &F : Fs)
    T.observe(F.blockingGet());
  S.shutdown();
  auditQuiescent(S, T);
  EXPECT_GT(S.snapshot().ShedQueueFull, 0u);
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
