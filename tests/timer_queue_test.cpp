//===- tests/timer_queue_test.cpp - central deadline timer tests ----------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The TimerQueue contracts (DESIGN.md §12): scheduled callbacks fire at
/// their deadline (in deadline order, not insertion order), tryCancel()
/// withdraws a not-yet-fired timer with its Drop still running exactly
/// once, completeOnTimeout rides the cancel-vs-resume CAS, and the
/// TimerQueue mode of timedAwait keeps timedAwait's full deadline
/// semantics (timeout, completion, rescue) while parking untimed.
///
//===----------------------------------------------------------------------===//

#include "task/TimerQueue.h"

#include "core/CqsStats.h"
#include "future/TimedAwait.h"
#include "reclaim/Ebr.h"
#include "sync/ChannelV2.h"
#include "sync/Semaphore.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace cqs;
using namespace std::chrono_literals;

namespace {

TEST(TimerQueue, FiresScheduledCallback) {
  std::atomic<int> Fired{0};
  TimerToken Tok = TimerQueue::instance().schedule(
      1ms, [](void *P) { static_cast<std::atomic<int> *>(P)->fetch_add(1); },
      nullptr, &Fired);
  std::this_thread::sleep_for(5ms);
  TimerQueue::instance().drainForTesting();
  EXPECT_EQ(Fired.load(), 1);
  EXPECT_FALSE(Tok.tryCancel()) << "already fired: cancel must report false";
}

TEST(TimerQueue, FiresInDeadlineOrderNotInsertionOrder) {
  struct Log {
    std::atomic<int> Seq{0};
    std::atomic<int> OrderOfNear{-1};
    std::atomic<int> OrderOfFar{-1};
  } L;
  // Far deadline first: the near one must preempt the parked timer thread
  // (the new-earliest epoch ring) and fire first.
  TimerToken Far = TimerQueue::instance().schedule(
      40ms,
      [](void *P) {
        auto *L = static_cast<Log *>(P);
        L->OrderOfFar.store(L->Seq.fetch_add(1));
      },
      nullptr, &L);
  TimerToken Near = TimerQueue::instance().schedule(
      2ms,
      [](void *P) {
        auto *L = static_cast<Log *>(P);
        L->OrderOfNear.store(L->Seq.fetch_add(1));
      },
      nullptr, &L);
  std::this_thread::sleep_for(60ms);
  TimerQueue::instance().drainForTesting();
  EXPECT_EQ(L.OrderOfNear.load(), 0);
  EXPECT_EQ(L.OrderOfFar.load(), 1);
}

TEST(TimerQueue, TryCancelWithdrawsAndDropsExactlyOnce) {
  std::atomic<int> Fired{0};
  static std::atomic<int> Dropped;
  Dropped.store(0);
  TimerToken Tok = TimerQueue::instance().schedule(
      200ms,
      [](void *P) { static_cast<std::atomic<int> *>(P)->fetch_add(1); },
      [](void *) { Dropped.fetch_add(1); }, &Fired);
  EXPECT_TRUE(Tok.tryCancel());
  // The heap lazily drops the cancelled entry; force the timer thread
  // around its loop by scheduling (and draining) a short no-op.
  TimerQueue::instance()
      .schedule(1ms, [](void *) {}, nullptr, nullptr)
      .tryCancel();
  std::this_thread::sleep_for(250ms);
  TimerQueue::instance().drainForTesting();
  EXPECT_EQ(Fired.load(), 0) << "cancelled timer must never fire";
  EXPECT_EQ(Dropped.load(), 1) << "Drop runs exactly once";
}

TEST(TimerQueue, CompleteOnTimeoutCancelsPendingFuture) {
  Semaphore S(1);
  auto Held = S.acquire(); // drain
  auto F = S.acquire();    // suspends
  ASSERT_FALSE(F.isImmediate());
  TimerToken Tok = completeOnTimeout(F, 2ms);
  ASSERT_TRUE(static_cast<bool>(Tok));
  std::this_thread::sleep_for(10ms);
  TimerQueue::instance().drainForTesting();
  EXPECT_EQ(F.status(), FutureStatus::Cancelled);
  // SMART cancellation returned the (not yet existing) permit claim: a
  // release now restores the count instead of waking a dead waiter.
  S.release();
  EXPECT_EQ(S.availablePermits(), 1);
  EXPECT_FALSE(Tok.tryCancel());
}

TEST(TimerQueue, CompleteOnTimeoutWithdrawnWhenOperationCompletes) {
  Semaphore S(1);
  auto Held = S.acquire();
  auto F = S.acquire();
  TimerToken Tok = completeOnTimeout(F, 10s);
  S.release(); // completes the pending acquire well before the deadline
  EXPECT_TRUE(F.blockingGet().has_value());
  EXPECT_TRUE(Tok.tryCancel()) << "timer must be withdrawable after resume";
  S.release();
  EXPECT_EQ(S.availablePermits(), 1);
}

TEST(TimerQueue, CompleteOnTimeoutZeroExpiresInline) {
  CqsStatsSnapshot Before = CqsStats::processSnapshot();
  Semaphore S(1);
  auto Held = S.acquire();
  auto F = S.acquire();
  TimerToken Tok = completeOnTimeout(F, 0ns);
  EXPECT_FALSE(static_cast<bool>(Tok)) << "inline expiry arms no timer";
  EXPECT_EQ(F.status(), FutureStatus::Cancelled);
  CqsStatsSnapshot After = CqsStats::processSnapshot();
  EXPECT_GT(After.TqInlineExpiries, Before.TqInlineExpiries);
  EXPECT_EQ(After.TqScheduled, Before.TqScheduled);
  S.release();
  EXPECT_EQ(S.availablePermits(), 1);
}

TEST(TimedAwaitQueued, TimeoutPathWithdrawsTheRequest) {
  TimedWaitModeScope Mode(TimedWaitVia::TimerQueue);
  Semaphore S(1);
  auto Held = S.acquire();
  CqsStatsSnapshot Before = CqsStats::processSnapshot();
  EXPECT_FALSE(S.tryAcquireFor(2ms));
  CqsStatsSnapshot After = CqsStats::processSnapshot();
  EXPECT_GT(After.TqScheduled, Before.TqScheduled)
      << "positive deadline must go through the timer queue in TQ mode";
  EXPECT_GT(After.TimedTimeouts, Before.TimedTimeouts);
  S.release();
  EXPECT_EQ(S.availablePermits(), 1);
}

TEST(TimedAwaitQueued, CompletionPathWithdrawsTheTimer) {
  TimedWaitModeScope Mode(TimedWaitVia::TimerQueue);
  Semaphore S(1);
  auto Held = S.acquire();
  std::thread Releaser([&] {
    std::this_thread::sleep_for(5ms);
    S.release();
  });
  CqsStatsSnapshot Before = CqsStats::processSnapshot();
  EXPECT_TRUE(S.tryAcquireFor(10s)) << "released before the deadline";
  Releaser.join();
  CqsStatsSnapshot After = CqsStats::processSnapshot();
  EXPECT_GT(After.TqCancelled, Before.TqCancelled)
      << "a completed wait must withdraw its queue entry";
  S.release();
  EXPECT_EQ(S.availablePermits(), 1);
}

TEST(TimedAwaitQueued, ZeroDeadlineRidesTheCancelVsResumeRace) {
  TimedWaitModeScope Mode(TimedWaitVia::TimerQueue);
  Semaphore S(1);
  auto Held = S.acquire();
  // No racing release: the inline cancel must win and report timeout.
  EXPECT_FALSE(S.tryAcquireFor(0ns));
  S.release();
  EXPECT_EQ(S.availablePermits(), 1);
}

TEST(TimedAwaitQueued, ModeScopeRestoresPreviousMode) {
  EXPECT_EQ(timedWaitVia(), TimedWaitVia::PerOpWait);
  {
    TimedWaitModeScope Mode(TimedWaitVia::TimerQueue);
    EXPECT_EQ(timedWaitVia(), TimedWaitVia::TimerQueue);
    {
      TimedWaitModeScope Inner(TimedWaitVia::PerOpWait);
      EXPECT_EQ(timedWaitVia(), TimedWaitVia::PerOpWait);
    }
    EXPECT_EQ(timedWaitVia(), TimedWaitVia::TimerQueue);
  }
  EXPECT_EQ(timedWaitVia(), TimedWaitVia::PerOpWait);
}

TEST(TimedAwaitQueued, ChannelReceiveForConservesElements) {
  TimedWaitModeScope Mode(TimedWaitVia::TimerQueue);
  BufferedChannelV2<int, 8> Ch(2);
  EXPECT_FALSE(Ch.receiveFor(2ms).has_value()) << "empty channel times out";
  ASSERT_TRUE(Ch.trySend(7));
  std::optional<int> V = Ch.receiveFor(1s);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, 7);
  EXPECT_FALSE(Ch.tryReceive().has_value()) << "no element duplicated";
}

// Hammer the queued timeout-vs-resume race: many waiters with tight
// deadlines against a releaser; permits conserved whatever each wait
// reports. The rescue rule (failed cancel => completed => permit owned)
// is what the accounting below depends on.
TEST(TimedAwaitQueued, RaceConservesPermitsUnderLoad) {
  constexpr int Waiters = 8;
  constexpr int Rounds = 200;
  Semaphore S(1);
  auto Held = S.acquire();
  std::atomic<long> Granted{0};
  std::vector<std::thread> Ts;
  Ts.reserve(Waiters);
  for (int W = 0; W < Waiters; ++W)
    Ts.emplace_back([&] {
      TimedWaitModeScope Mode(TimedWaitVia::TimerQueue);
      for (int R = 0; R < Rounds; ++R)
        if (S.tryAcquireFor(std::chrono::microseconds(50))) {
          Granted.fetch_add(1);
          S.release();
        }
    });
  std::thread Releaser([&] {
    for (int R = 0; R < Rounds * 2; ++R) {
      S.release();
      while (!S.tryAcquireFor(std::chrono::milliseconds(50))) {
      }
    }
  });
  for (auto &T : Ts)
    T.join();
  Releaser.join();
  S.release();
  TimerQueue::instance().drainForTesting();
  EXPECT_EQ(S.availablePermits(), 1) << "permits conserved under the race";
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  int Rc = RUN_ALL_TESTS();
  cqs::ebr::drainForTesting();
  return Rc;
}
