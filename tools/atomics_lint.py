#!/usr/bin/env python3
"""Repo-local atomics lint.

Two rules, both rooted in the schedcheck model checker (DESIGN.md §7):

1. no-raw-atomic: `std::atomic` / `std::atomic_flag` / `ATOMIC_FLAG_INIT`
   must not appear in library code outside the indirection header
   `src/support/Atomic.h` and the checker's own internals under
   `src/schedcheck/`. Everything else goes through `cqs::Atomic<T>` /
   `cqs::AtomicFlag` / `cqs::PlainAtomic<T>` so a schedcheck build can
   instrument every access. A line may opt out with the marker comment
   `atomics-lint: allow(std-atomic)` when it genuinely needs the raw type
   (e.g. the futex syscall shim handing addresses to the kernel).

2. explicit-order: atomic operations must spell out their memory_order
   instead of relying on the implicit seq_cst default. The codebase treats
   orders as documentation of the algorithm's requirements; an implicit
   order usually means nobody thought about it. (Orders are *semantically*
   ignored under schedcheck — it explores SC interleavings only — but the
   annotations document what the real build relies on.)

3. pad-shards: a struct/class whose name ends in `Shard` or `Stripe`
   is a per-core array element by construction — that is the whole point
   of the name. If it contains atomic members, it must be cacheline-padded
   (`alignas(CacheLineSize)` on the type, or every atomic wrapped in
   `CachePadded<>`): an unpadded shard array silently re-introduces the
   false sharing the sharding was built to remove, and no test catches it
   (it is a performance bug, not a correctness bug). Opt out with
   `atomics-lint: allow(unpadded-shard)` on the declaration line for a
   type that is genuinely never placed in an array.

4. sized-state-enum: an `enum class` whose name ends in `State`, `Token`,
   or `Cell` names values that live inside atomic words (the tagged-word
   encodings of support/TaggedWord.h and the channel-v2 cell states), so
   it must pin an explicit fixed underlying type (`: std::uint64_t` etc.).
   Relying on the implementation-defined default makes the word layout —
   shifts, tag masks, CAS widths — silently platform-dependent. Opt out
   with `atomics-lint: allow(unsized-enum)` on the declaration line for an
   enum that merely *names* a state and never touches an atomic encoding.

5. meaningless-order: a memory order that cannot do what the operation's
   direction allows is a documentation lie the compiler accepts silently
   (the standard says such combinations are undefined or decay to
   something weaker): `.store()` with acquire/acq_rel/consume, `.load()`
   with release/acq_rel, and a compare-exchange whose explicit failure
   order is stronger than its success order (or is itself release-flavoured
   — the failure path is a pure load). The happens-before layer in
   schedcheck (DESIGN.md §11) trusts declared orders; an impossible one
   poisons the model as well as the reader. Opt out with
   `atomics-lint: allow(odd-order)` on the line — e.g. for code that is
   itself exercising odd orders on purpose.

Usage: tools/atomics_lint.py [--root DIR]
Exit status 1 if any finding is reported, 0 otherwise.
"""

import argparse
import pathlib
import re
import sys

ALLOW_MARKER = "atomics-lint: allow(std-atomic)"
PAD_MARKER = "atomics-lint: allow(unpadded-shard)"
ENUM_MARKER = "atomics-lint: allow(unsized-enum)"
ODD_MARKER = "atomics-lint: allow(odd-order)"

# Files/dirs (relative to the repo root) where rule 1 does not apply.
RAW_ATOMIC_ALLOWED = (
    "src/support/Atomic.h",
    "src/schedcheck/",
)

RAW_ATOMIC_RE = re.compile(r"std\s*::\s*atomic\b|\bATOMIC_FLAG_INIT\b")

# Operations whose argument list must mention a memory_order. Deliberately
# excludes `.clear()`/`.test()`/`.wait()` (too many false positives from
# containers and condition variables) — those surfaces are rare and audited
# by review instead.
ORDERED_OPS_RE = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_or|fetch_and"
    r"|fetch_xor|compare_exchange_weak|compare_exchange_strong"
    r"|test_and_set)\s*\("
)

# Rule 3: struct/class whose *name* says it is a shard/stripe. The
# optional middle group swallows an alignas specifier (and whitespace)
# between the keyword and the name.
SHARD_DECL_RE = re.compile(
    r"\b(struct|class)\b((?:\s+|alignas\s*\([^()]*\)\s*)*)"
    r"(\w*(?:Shard|Stripe))\s*(?=[{:;])"
)

# An atomic member counts as padded if it is wrapped in CachePadded<>.
ATOMIC_MEMBER_RE = re.compile(r"\b(?:Plain)?Atomic\s*<|std\s*::\s*atomic\b")

# Rule 4: enum classes whose name marks them as atomic-word state. The
# trailing group captures what follows the name: an explicit enum-base
# starts with ':'.
STATE_ENUM_RE = re.compile(
    r"\benum\s+(?:class|struct)\s+(\w*(?:State|Token|Cell))\s*([:{;])"
)

# Rule 5: memory_order tokens inside an argument list, in call order (for
# compare-exchange: success first, failure second). Both the classic
# `std::memory_order_acquire` and the C++20 `std::memory_order::acquire`
# spellings are recognized.
ORDER_TOKEN_RE = re.compile(
    r"\bmemory_order(?:::|_)(relaxed|consume|acquire|release|acq_rel|seq_cst)\b"
)

# Strength lattice for the success-vs-failure comparison. acquire and
# release are incomparable in the standard; ranking them equal means
# neither counts as "stronger than" the other, which is what we want.
ORDER_RANK = {
    "relaxed": 0,
    "consume": 1,
    "acquire": 2,
    "release": 2,
    "acq_rel": 3,
    "seq_cst": 4,
}

STORE_ILLEGAL = ("acquire", "acq_rel", "consume")
LOAD_ILLEGAL = ("release", "acq_rel")
CAS_OPS = ("compare_exchange_weak", "compare_exchange_strong")


def body_after(code, start):
    """Return (body, found) for the first balanced {...} after `start`,
    stopping at ';' (forward declaration) before any '{'."""
    i = start
    while i < len(code):
        c = code[i]
        if c == ";":
            return None, False
        if c == "{":
            depth = 0
            for j in range(i, len(code)):
                if code[j] == "{":
                    depth += 1
                elif code[j] == "}":
                    depth -= 1
                    if depth == 0:
                        return code[i + 1 : j], True
            return None, False
        i += 1
    return None, False


def has_unwrapped_atomic(body):
    """True if `body` declares an atomic member outside CachePadded<>."""
    for m in ATOMIC_MEMBER_RE.finditer(body):
        prefix = body[max(0, m.start() - 40) : m.start()]
        if "CachePadded" not in prefix:
            return True
    return False


def strip_comments(text):
    """Blank out // and /* */ comments and string literals, preserving line
    structure so reported line numbers stay correct."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" " if c != quote else c)
        i += 1
    return "".join(out)


def call_args(code, open_paren_idx):
    """Return the argument text of the call whose '(' is at open_paren_idx,
    or None if the parens never balance (macro soup)."""
    depth = 0
    for j in range(open_paren_idx, len(code)):
        if code[j] == "(":
            depth += 1
        elif code[j] == ")":
            depth -= 1
            if depth == 0:
                return code[open_paren_idx + 1 : j]
    return None


def lint_file(path, rel, findings):
    raw = path.read_text(encoding="utf-8", errors="replace")
    code = strip_comments(raw)
    raw_lines = raw.splitlines()

    raw_ok = any(
        rel == allowed or (allowed.endswith("/") and rel.startswith(allowed))
        for allowed in RAW_ATOMIC_ALLOWED
    )

    if not raw_ok:
        for m in RAW_ATOMIC_RE.finditer(code):
            line_no = code.count("\n", 0, m.start()) + 1
            line = raw_lines[line_no - 1] if line_no <= len(raw_lines) else ""
            if ALLOW_MARKER in line:
                continue
            findings.append(
                f"{rel}:{line_no}: no-raw-atomic: use cqs::Atomic/"
                f"cqs::PlainAtomic from support/Atomic.h instead of "
                f"std::atomic"
            )

    for m in ORDERED_OPS_RE.finditer(code):
        args = call_args(code, m.end() - 1)
        if args is None or "memory_order" in args:
            continue
        line_no = code.count("\n", 0, m.start()) + 1
        line = raw_lines[line_no - 1] if line_no <= len(raw_lines) else ""
        if ALLOW_MARKER in line:
            continue
        findings.append(
            f"{rel}:{line_no}: explicit-order: spell out the memory_order "
            f"on .{m.group(1)}() instead of the implicit seq_cst default"
        )

    for m in SHARD_DECL_RE.finditer(code):
        if "alignas" in m.group(2):
            continue
        body, found = body_after(code, m.end())
        if not found or not has_unwrapped_atomic(body):
            continue
        line_no = code.count("\n", 0, m.start()) + 1
        line = raw_lines[line_no - 1] if line_no <= len(raw_lines) else ""
        if PAD_MARKER in line:
            continue
        findings.append(
            f"{rel}:{line_no}: pad-shards: per-shard type "
            f"'{m.group(3)}' holds atomics but is not "
            f"alignas(CacheLineSize)-padded (false sharing across shards)"
        )

    for m in STATE_ENUM_RE.finditer(code):
        if m.group(2) == ":":
            continue  # explicit underlying type present
        line_no = code.count("\n", 0, m.start()) + 1
        line = raw_lines[line_no - 1] if line_no <= len(raw_lines) else ""
        if ENUM_MARKER in line:
            continue
        findings.append(
            f"{rel}:{line_no}: sized-state-enum: enum class "
            f"'{m.group(1)}' encodes atomic-word state but has no "
            f"explicit fixed underlying type (declare e.g. "
            f"': std::uint64_t')"
        )

    for m in ORDERED_OPS_RE.finditer(code):
        args = call_args(code, m.end() - 1)
        if args is None:
            continue
        orders = ORDER_TOKEN_RE.findall(args)
        if not orders:
            continue
        line_no = code.count("\n", 0, m.start()) + 1
        line = raw_lines[line_no - 1] if line_no <= len(raw_lines) else ""
        if ODD_MARKER in line:
            continue
        op = m.group(1)
        if op == "store" and orders[0] in STORE_ILLEGAL:
            findings.append(
                f"{rel}:{line_no}: meaningless-order: .store("
                f"memory_order_{orders[0]}) — a store cannot acquire; "
                f"use release, relaxed or seq_cst"
            )
        elif op == "load" and orders[0] in LOAD_ILLEGAL:
            findings.append(
                f"{rel}:{line_no}: meaningless-order: .load("
                f"memory_order_{orders[0]}) — a load cannot release; "
                f"use acquire, consume, relaxed or seq_cst"
            )
        elif op in CAS_OPS and len(orders) >= 2:
            success, failure = orders[0], orders[1]
            if failure in LOAD_ILLEGAL:
                findings.append(
                    f"{rel}:{line_no}: meaningless-order: .{op}() failure "
                    f"order memory_order_{failure} — the failure path is "
                    f"a pure load and cannot release"
                )
            elif ORDER_RANK[failure] > ORDER_RANK[success]:
                findings.append(
                    f"{rel}:{line_no}: meaningless-order: .{op}() failure "
                    f"order memory_order_{failure} is stronger than "
                    f"success order memory_order_{success}"
                )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repository root")
    args = ap.parse_args()

    root = pathlib.Path(args.root).resolve()
    findings = []
    for sub in ("src",):
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".h", ".hpp", ".cpp", ".cc"):
                continue
            rel = path.relative_to(root).as_posix()
            lint_file(path, rel, findings)

    for f in findings:
        print(f)
    if findings:
        print(f"atomics_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("atomics_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
