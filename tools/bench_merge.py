#!/usr/bin/env python3
"""Merge per-binary cqs-bench-v1 JSON files into one aggregate file.

Usage:
    tools/bench_merge.py out/*.json > merged.json
    tools/bench_merge.py --output=BENCH_1.json out/*.json

The aggregate keeps the schema marker, the union of all results (each
result already carries its "benchmark" name), the host block of the first
input (all inputs come from one machine in practice), and the list of
contributing benchmarks. CI uploads this file as the run artifact and
feeds it to bench_compare.py.
"""

import argparse
import json
import sys

SCHEMA = "cqs-bench-v1"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("inputs", nargs="+", help="per-binary JSON files")
    ap.add_argument("--output", default="-", help="output path (default stdout)")
    args = ap.parse_args()

    merged = {
        "schema": SCHEMA,
        "benchmark": "merged",
        "quick": False,
        "host": None,
        "benchmarks": [],
        "results": [],
    }
    for path in args.inputs:
        with open(path) as f:
            doc = json.load(f)
        if doc.get("schema") != SCHEMA:
            print(f"{path}: unexpected schema {doc.get('schema')!r}",
                  file=sys.stderr)
            return 2
        if merged["host"] is None:
            merged["host"] = doc.get("host")
        merged["quick"] = merged["quick"] or bool(doc.get("quick"))
        merged["benchmarks"].append(doc.get("benchmark", path))
        merged["results"].extend(doc.get("results", []))

    text = json.dumps(merged, indent=2) + "\n"
    if args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w") as f:
            f.write(text)
        print(f"merged {len(args.inputs)} files, {len(merged['results'])} "
              f"results -> {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
