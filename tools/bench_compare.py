#!/usr/bin/env python3
"""Compare two cqs-bench-v1 JSON files and gate on regressions.

Usage:
    tools/bench_compare.py BENCH_1.json merged.json
    tools/bench_compare.py --threshold=0.5 --report-only base.json new.json

Each result is keyed by (benchmark, series, params, threads, unit). The
gate statistic is best-of-reps, not the median: on the shared single-core
host the *best* repetition is what the code can do, while medians absorb
scheduler preemption luck. For a "lower is better" metric, NEW regresses
against BASE when

    new.min > base.min * (1 + threshold)   AND   new.median > base.median

i.e. even the best new repetition is beyond the threshold *and* the
median agrees on the direction — one unlucky draw cannot trip the gate.
"higher is better" metrics mirror the test with max. Results that carry
"gated": false (diagnostic series whose variance is structural, e.g. raw
acquisition counts of a barging lock) are reported but never gate.

The default threshold is 0.5 (50%). EXPERIMENTS.md documents ±20%
run-to-run noise on the shared single-core CI host (occasional scheduler
spikes more): two runs can legitimately sit 20% low and 20% high, so a
meaningful gate must clear roughly twice the noise floor. 50% leaves
headroom for the spikes while still catching any real complexity or
fast-path regression (those show up as 2-100x, see the ablations).

Tail-percentile series gate against a wider band: a p999 is set by a
handful of samples per repetition (the service-load bench takes ~0.1% of
its latencies), so a single scheduler spike moves it by integer factors
where the p50 barely flinches. Series whose name contains a p99.9-class
token ("p999" or "p99.9") have their threshold multiplied by
--tail-factor (default 2.0: 150% over baseline where the default gate
fires at 50%). p50/p99 and throughput series are unaffected — their
statistic is set by thousands of samples and keeps the normal band.

Individual keys may disappear between runs (sweeps legitimately shrink
when a bench is retuned or run with --quick), but a whole (benchmark,
series) pair present in the baseline and absent from the new results means
a bench was deleted or renamed — that fails loudly instead of silently
passing the gate. The opposite direction is legitimate growth: a series
(or, under --scaling, a curve) present only in the current results is a
freshly added bench that has no baseline yet. It is listed as "new" and
never gated, so a PR can land a bench together with the baseline file
that first records it.

Exit codes: 0 = clean (or --report-only), 1 = regressions found,
2 = usage/schema error, or a baseline series entirely missing from the
current results (unless --report-only, which only warns).

Scaling mode (--scaling): instead of independent keys, results are grouped
into *curves* keyed by (benchmark, series, params, unit) with one point
per thread count, and the gate only fires inside the curve's **flat
region** — thread counts at or below the current host's core count
(host.nproc in the freshly measured file). Points beyond the core count
are oversubscribed; their shape is scheduler-dependent and is reported
ungated. The per-point statistic is the same best-of-reps + median
agreement as the default mode, but against --flat-threshold (default 0.15:
a scaling curve that loses >15%% anywhere it should be flat has lost its
reason to exist). A flat-region regression exits 2 — in CI the
scaling-curves job treats it like a missing series: the contract of the
curve is broken, not merely a point slow.
"""

import argparse
import json
import re
import sys

SCHEMA = "cqs-bench-v1"

# Series measured at the extreme tail (p99.9-class percentiles): a couple
# of samples per repetition set the statistic, so the regression band is
# widened by --tail-factor. Word-bounded so "p99" stays in the normal band.
TAIL_SERIES_RE = re.compile(r"p999(?![0-9])|p99\.9", re.IGNORECASE)


def series_threshold(series, threshold, tail_factor):
    """The gate threshold for one series: widened for tail percentiles."""
    if TAIL_SERIES_RE.search(series):
        return threshold * tail_factor
    return threshold


def die(msg):
    """Usage/schema error: print and exit 2 (1 is reserved for regressions)."""
    print(msg, file=sys.stderr)
    sys.exit(2)

# Series measured in very small absolute units can flip percentages on
# scheduler jitter alone; ignore deltas where both sides are below this
# floor (in the result's own unit).
ABS_FLOOR = 1e-3


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"bench_compare: cannot read {path}: {e}")
    if doc.get("schema") != SCHEMA:
        die(f"bench_compare: {path}: expected schema {SCHEMA!r}, "
            f"got {doc.get('schema')!r}")
    results = {}
    for r in doc.get("results", []):
        key = (r.get("benchmark", ""), r.get("series", ""),
               r.get("params", ""), int(r.get("threads", 0)),
               r.get("unit", ""))
        results[key] = r
    return doc, results


def fmt_key(key):
    bench, series, params, threads, unit = key
    ctx = f" [{params}]" if params else ""
    return f"{bench}: {series}{ctx} @{threads}t ({unit})"


def fmt_curve(ckey):
    bench, series, params, unit = ckey
    ctx = f" [{params}]" if params else ""
    return f"{bench}: {series}{ctx} ({unit})"


def point_regresses(b, c, threshold):
    """Best-of-reps + median-agreement regression test for one point.

    Returns (is_reg, ref, new, rel) with the same statistic as the
    default mode: the best repetition must be beyond the threshold AND
    the median must agree on the direction.
    """
    direction = b.get("direction", "lower")
    bmed, cmed = float(b["median"]), float(c["median"])
    if direction == "lower":
        ref = float(b.get("min", bmed))
        new = float(c.get("min", cmed))
        is_reg = (ref > 0 and new > ref * (1 + threshold) and cmed > bmed)
        if abs(ref) < ABS_FLOOR and abs(new) < ABS_FLOOR:
            is_reg = False
    else:
        ref = float(b.get("max", bmed))
        new = float(c.get("max", cmed))
        is_reg = (ref > 0 and new < ref / (1 + threshold) and cmed < bmed)
    rel = (new - ref) / abs(ref) if ref else 0.0
    return is_reg, ref, new, rel


def group_curves(results):
    """(benchmark, series, params, unit) -> {threads: result}."""
    curves = {}
    for key, r in results.items():
        bench, series, params, threads, unit = key
        curves.setdefault((bench, series, params, unit), {})[threads] = r
    return curves


def scaling_main(args, cur_doc, base, cur):
    """--scaling: gate curve shapes point-by-point inside the flat region."""
    nproc = int(cur_doc.get("host", {}).get("nproc", 0))
    base_curves = group_curves(base)
    cur_curves = group_curves(cur)

    regressions, compared = [], 0
    for ckey, bpoints in sorted(base_curves.items()):
        cpoints = cur_curves.get(ckey)
        if cpoints is None:
            continue
        rows = []
        for threads in sorted(bpoints):
            b = bpoints[threads]
            c = cpoints.get(threads)
            if c is None:
                continue
            compared += 1
            in_flat = nproc <= 0 or threads <= nproc
            gated = (in_flat and bool(b.get("gated", True))
                     and bool(c.get("gated", True)))
            thr = series_threshold(ckey[1], args.flat_threshold,
                                   args.tail_factor)
            is_reg, ref, new, rel = point_regresses(b, c, thr)
            if gated and is_reg:
                regressions.append((ckey, threads, ref, new, rel))
            mark = ("REG" if gated and is_reg
                    else ("   " if in_flat else "over"))
            rows.append(f"    @{threads}t: best {ref:.4g} -> {new:.4g} "
                        f"({rel:+.1%}) {mark}")
        if rows and (args.show_all
                     or any(r.endswith("REG") for r in rows)):
            print(fmt_curve(ckey))
            for row in rows:
                print(row)

    missing_curves = sorted(set(base_curves) - set(cur_curves))
    new_curves = sorted(set(cur_curves) - set(base_curves))
    flat_note = (f"flat region: threads <= {nproc}" if nproc > 0
                 else "flat region: unknown host.nproc, gating all points")
    print(f"compared {compared} curve point(s) across "
          f"{len(set(base_curves) & set(cur_curves))} curve(s); {flat_note}")
    if new_curves:
        print(f"\n{len(new_curves)} new curve(s) with no baseline yet "
              f"(reported, not gated):")
        for ckey in new_curves:
            print(f"  {fmt_curve(ckey)} [new]")
    if regressions:
        print(f"\n{len(regressions)} flat-region regression(s) beyond "
              f"{args.flat_threshold:.0%}:")
        for ckey, threads, ref, new, rel in sorted(regressions,
                                                   key=lambda r: -abs(r[4])):
            print(f"  {fmt_curve(ckey)} @{threads}t: best {ref:.4g} -> "
                  f"{new:.4g} ({rel:+.1%})")
    else:
        print("no flat-region regressions beyond the threshold")
    if missing_curves:
        print(f"\nerror: {len(missing_curves)} baseline curve(s) missing "
              f"entirely from {args.current} (deleted or renamed bench?):",
              file=sys.stderr)
        for ckey in missing_curves:
            print(f"  {fmt_curve(ckey)}", file=sys.stderr)

    if args.report_only:
        return 0
    # A broken scaling curve is a contract failure, not a point slow:
    # exit 2, same class as a deleted series.
    if regressions or missing_curves:
        return 2
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        epilog="See EXPERIMENTS.md ('Benchmark JSON schema & regression "
               "gating') for how the threshold relates to the documented "
               "noise floor.")
    ap.add_argument("baseline", help="baseline JSON (e.g. BENCH_1.json)")
    ap.add_argument("current", help="freshly measured JSON")
    ap.add_argument("--threshold", type=float, default=0.5,
                    help="relative regression threshold (default 0.5 = 50%%, "
                         "vs the documented +/-20%% run-to-run noise)")
    ap.add_argument("--report-only", action="store_true",
                    help="print the comparison but always exit 0")
    ap.add_argument("--show-all", action="store_true",
                    help="list every compared key, not just notable deltas")
    ap.add_argument("--scaling", action="store_true",
                    help="curve mode: group by (benchmark, series, params, "
                         "unit), compare per thread count, gate only the "
                         "flat region (threads <= current host.nproc); a "
                         "flat-region regression exits 2")
    ap.add_argument("--flat-threshold", type=float, default=0.15,
                    help="relative per-point threshold in --scaling mode "
                         "(default 0.15 = 15%%)")
    ap.add_argument("--tail-factor", type=float, default=2.0,
                    help="threshold multiplier for tail-percentile series "
                         "(names containing 'p999' or 'p99.9'); default 2.0 "
                         "— a p999 is set by a handful of samples and needs "
                         "a wider noise band. 1.0 disables the widening")
    args = ap.parse_args()
    if args.threshold <= 0:
        die("bench_compare: --threshold must be positive")
    if args.flat_threshold <= 0:
        die("bench_compare: --flat-threshold must be positive")
    if args.tail_factor < 1:
        die("bench_compare: --tail-factor must be >= 1")

    _, base = load(args.baseline)
    cur_doc, cur = load(args.current)
    if args.scaling:
        return scaling_main(args, cur_doc, base, cur)

    regressions, improvements, compared = [], [], 0
    for key, b in sorted(base.items()):
        c = cur.get(key)
        if c is None:
            continue
        compared += 1
        direction = b.get("direction", "lower")
        gated = bool(b.get("gated", True)) and bool(c.get("gated", True))
        thr = series_threshold(key[1], args.threshold, args.tail_factor)
        bmed, cmed = float(b["median"]), float(c["median"])
        bmin = float(b.get("min", bmed))
        bmax = float(b.get("max", bmed))
        cmin = float(c.get("min", cmed))
        cmax = float(c.get("max", cmed))

        if direction == "lower":
            ref, new = bmin, cmin
            is_reg = (ref > 0 and new > ref * (1 + thr)
                      and cmed > bmed)
            is_imp = ref > 0 and new < ref / (1 + thr)
            if abs(ref) < ABS_FLOOR and abs(new) < ABS_FLOOR:
                is_reg = is_imp = False
        else:
            ref, new = bmax, cmax
            is_reg = (ref > 0 and new < ref / (1 + thr)
                      and cmed < bmed)
            is_imp = ref > 0 and new > ref * (1 + thr)
        if not gated:
            is_reg = False
        rel = (new - ref) / abs(ref) if ref else 0.0

        row = (key, ref, new, rel)
        if is_reg:
            regressions.append(row)
        elif is_imp:
            improvements.append(row)
        if args.show_all:
            flag = "REG " if is_reg else ("imp " if is_imp else "    ")
            gmark = "" if gated else " (ungated)"
            print(f"{flag}{fmt_key(key)}: best {ref:.4g} -> {new:.4g} "
                  f"({rel:+.1%}){gmark}")

    missing = sorted(set(base) - set(cur))
    new_keys = sorted(set(cur) - set(base))
    # Key-level gaps are tolerated (sweeps shrink under --quick), but a
    # (benchmark, series) pair that vanished entirely means a deleted or
    # renamed bench and must not pass unnoticed.
    missing_series = sorted({(k[0], k[1]) for k in base}
                            - {(k[0], k[1]) for k in cur})
    new_series = sorted({(k[0], k[1]) for k in cur}
                        - {(k[0], k[1]) for k in base})

    print(f"compared {compared} keys "
          f"({len(missing)} only in baseline, {len(new_keys)} new)")
    if new_series:
        print(f"\n{len(new_series)} new series with no baseline yet "
              f"(reported, not gated):")
        for bench, series in new_series:
            print(f"  {bench}: {series} [new]")
    if improvements:
        print(f"\n{len(improvements)} improvement(s) beyond "
              f"{args.threshold:.0%} (best-of-reps):")
        for key, ref, new, rel in sorted(improvements, key=lambda r: r[3]):
            print(f"  {fmt_key(key)}: best {ref:.4g} -> {new:.4g} "
                  f"({rel:+.1%})")
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%} (best-of-reps):")
        for key, ref, new, rel in sorted(regressions,
                                         key=lambda r: -abs(r[3])):
            print(f"  {fmt_key(key)}: best {ref:.4g} -> {new:.4g} "
                  f"({rel:+.1%})")
    else:
        print("no regressions beyond the threshold")
    if missing and not args.report_only:
        # Key-level shrinkage alone is worth a note but not a gate trip:
        # sweeps legitimately shrink when a bench is retuned.
        print(f"\nnote: {len(missing)} baseline key(s) not measured this "
              f"run, e.g. {fmt_key(missing[0])}")
    if missing_series:
        print(f"\nerror: {len(missing_series)} baseline series missing "
              f"entirely from {args.current} (deleted or renamed bench?):",
              file=sys.stderr)
        for bench, series in missing_series:
            print(f"  {bench}: {series}", file=sys.stderr)

    if regressions and not args.report_only:
        return 1
    if missing_series and not args.report_only:
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
