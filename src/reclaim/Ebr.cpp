//===- reclaim/Ebr.cpp - epoch-based memory reclamation -------------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "reclaim/Ebr.h"

#include <cassert>

using namespace cqs;
using namespace cqs::ebr;

namespace {

/// Global EBR state. A single domain serves the whole process; the CQS only
/// retires segments and futures, so there is no benefit to per-structure
/// domains.
struct Domain {
  /// Epochs start at 1 so that BagEpoch == 0 means "empty bag".
  Atomic<std::uint64_t> GlobalEpoch{1};
  Atomic<ThreadRecord *> Head{nullptr};

  ThreadRecord *acquire();
  void release(ThreadRecord *Rec);
  bool tryAdvance(std::uint64_t Expected);
};

Domain &domain() {
  // Leaked on purpose: thread records may be touched by detached threads
  // during process teardown, so the domain must outlive all of them. This is
  // a function-local static (constructed on first use), not a global static
  // constructor.
  static Domain *D = new Domain();
  return *D;
}

ThreadRecord *Domain::acquire() {
  // First try to recycle a record abandoned by a finished thread.
  for (ThreadRecord *R = Head.load(std::memory_order_acquire); R;
       R = R->Next) {
    bool Expected = false;
    if (!R->InUse.load(std::memory_order_relaxed))
      if (R->InUse.compare_exchange_strong(Expected, true,
                                           std::memory_order_acq_rel))
        return R;
  }
  // None free: push a fresh record.
  auto *R = new ThreadRecord();
  R->InUse.store(true, std::memory_order_relaxed);
  ThreadRecord *OldHead = Head.load(std::memory_order_relaxed);
  do {
    R->Next = OldHead;
  } while (!Head.compare_exchange_weak(OldHead, R, std::memory_order_release,
                                       std::memory_order_relaxed));
  return R;
}

void Domain::release(ThreadRecord *Rec) {
  assert((Rec->EpochAndPin.load(std::memory_order_relaxed) & 1) == 0 &&
         "releasing a pinned thread record");
  Rec->InUse.store(false, std::memory_order_release);
}

/// Attempts to move the global epoch from \p Expected to Expected+1. Fails
/// if any pinned thread still observes an older epoch.
bool Domain::tryAdvance(std::uint64_t Expected) {
  for (ThreadRecord *R = Head.load(std::memory_order_acquire); R;
       R = R->Next) {
    std::uint64_t EP = R->EpochAndPin.load(std::memory_order_acquire);
    if ((EP & 1) != 0 && (EP >> 1) != Expected)
      return false;
  }
  return GlobalEpoch.compare_exchange_strong(Expected, Expected + 1,
                                             std::memory_order_acq_rel);
}

/// Per-thread handle; owns the registry record for the thread's lifetime.
struct LocalHandle {
  ThreadRecord *Rec = nullptr;
  unsigned PinDepth = 0;

  ThreadRecord *record() {
    if (!Rec)
      Rec = domain().acquire();
    return Rec;
  }

  ~LocalHandle() {
    if (Rec)
      domain().release(Rec);
  }
};

thread_local LocalHandle Local;

/// Frees every bag of \p Rec whose epoch is at least two behind \p Global.
void collectBags(ThreadRecord *Rec, std::uint64_t Global) {
  for (unsigned I = 0; I < 3; ++I) {
    if (Rec->BagEpoch[I] == 0 || Rec->BagEpoch[I] + 2 > Global)
      continue;
    // Swap the bag out before running deleters: a recycle deleter may drop
    // nested references and re-enter retire(), which must not push into
    // the vector being iterated.
    std::vector<Retired> Doomed;
    Doomed.swap(Rec->Bags[I]);
    Rec->BagEpoch[I] = 0;
    for (const Retired &G : Doomed)
      G.Deleter(G.Ptr);
    // Hand the capacity back so steady-state retires stay allocation-free.
    Doomed.clear();
    if (Rec->Bags[I].empty())
      Rec->Bags[I].swap(Doomed);
  }
}

} // namespace

ebr::Guard::Guard() {
  LocalHandle &H = Local;
  if (H.PinDepth++ != 0)
    return;
  ThreadRecord *Rec = H.record();
  Domain &D = domain();
  // Standard pin protocol: publish (epoch, pinned) with a full fence, then
  // re-read the global epoch until it is stable. The seq_cst store/load pair
  // gives the store-load ordering the protocol needs.
  std::uint64_t E = D.GlobalEpoch.load(std::memory_order_seq_cst);
  for (;;) {
    Rec->EpochAndPin.store((E << 1) | 1, std::memory_order_seq_cst);
    std::uint64_t E2 = D.GlobalEpoch.load(std::memory_order_seq_cst);
    if (E2 == E)
      return;
    E = E2;
  }
}

ebr::Guard::~Guard() {
  LocalHandle &H = Local;
  assert(H.PinDepth > 0 && "unbalanced EBR guard");
  if (--H.PinDepth != 0)
    return;
  H.Rec->EpochAndPin.store(0, std::memory_order_release);
}

void ebr::retire(void *Ptr, void (*Deleter)(void *)) {
  assert(isPinned() && "ebr::retire requires an active Guard");
  ThreadRecord *Rec = Local.record();
  Domain &D = domain();
  std::uint64_t Global = D.GlobalEpoch.load(std::memory_order_acquire);

  collectBags(Rec, Global);

  unsigned Slot = Global % 3;
  if (Rec->BagEpoch[Slot] != 0 && Rec->BagEpoch[Slot] != Global) {
    // The bag still holds garbage from an epoch that is not yet two behind;
    // that can only be Global-1 or Global-2... but collectBags() already
    // freed anything <= Global-2, and a slot collision means the epochs
    // differ by a multiple of 3 — impossible for live garbage. Assert.
    assert(false && "EBR bag slot collision");
  }
  Rec->BagEpoch[Slot] = Global;
  Rec->Bags[Slot].push_back(Retired{Ptr, Deleter});

  // Amortize the registry scan: attempt an epoch advance only occasionally.
  if (++Rec->RetiresSinceAdvance >= 64) {
    Rec->RetiresSinceAdvance = 0;
    if (D.tryAdvance(Global))
      collectBags(Rec, Global + 1);
  }
}

bool ebr::isPinned() { return Local.PinDepth > 0; }

void ebr::quiesceThreadForTesting() {
  LocalHandle &H = Local;
  assert(H.PinDepth == 0 && "quiescing a pinned thread");
  if (!H.Rec)
    return;
  domain().release(H.Rec);
  H.Rec = nullptr;
}

void ebr::drainForTesting() {
  Domain &D = domain();
  // Advance the epoch a few times (no thread may be pinned), then free all
  // bags of all records.
  for (int I = 0; I < 4; ++I) {
    std::uint64_t E = D.GlobalEpoch.load(std::memory_order_acquire);
    D.tryAdvance(E);
  }
  std::uint64_t Global = D.GlobalEpoch.load(std::memory_order_acquire);
  for (ThreadRecord *R = D.Head.load(std::memory_order_acquire); R;
       R = R->Next) {
    assert((R->EpochAndPin.load(std::memory_order_acquire) & 1) == 0 &&
           "drainForTesting called while a thread is pinned");
    collectBags(R, Global);
    // After three advances with no pinned threads every bag is collectable;
    // force-free any remainder (swapped out for the same reentrancy reason
    // as collectBags).
    for (unsigned I = 0; I < 3; ++I) {
      std::vector<Retired> Doomed;
      Doomed.swap(R->Bags[I]);
      R->BagEpoch[I] = 0;
      for (const Retired &G : Doomed)
        G.Deleter(G.Ptr);
    }
    // Hermeticity (schedcheck): the pacing counter must not carry work
    // from one explored execution into the next.
    R->RetiresSinceAdvance = 0;
  }
  // Rewind the epoch clock: all bags are empty and nobody is pinned, so the
  // absolute epoch value carries no information — resetting it makes two
  // executions separated by a drain byte-identical, traces included.
  D.GlobalEpoch.store(1, std::memory_order_release);
}

bool ebr::tryAdvanceForTesting() {
  Domain &D = domain();
  std::uint64_t Global = D.GlobalEpoch.load(std::memory_order_acquire);
  bool Advanced = D.tryAdvance(Global);
  if (ThreadRecord *Rec = Local.Rec)
    collectBags(Rec, D.GlobalEpoch.load(std::memory_order_acquire));
  return Advanced;
}

std::size_t ebr::pendingForTesting() {
  std::size_t N = 0;
  for (ThreadRecord *R = domain().Head.load(std::memory_order_acquire); R;
       R = R->Next)
    for (unsigned I = 0; I < 3; ++I)
      N += R->Bags[I].size();
  return N;
}
