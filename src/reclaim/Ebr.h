//===- reclaim/Ebr.h - epoch-based memory reclamation ----------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Epoch-based reclamation (EBR) for the lock-free segment list.
///
/// The paper's implementation runs on the JVM and leans on its garbage
/// collector: a segment full of cancelled cells is unlinked from the list
/// and the GC frees it once no thread can reach it. In C++ we must free
/// segments manually, but a concurrent resume(..)/suspend()/cancel() may
/// still hold a raw pointer to a just-removed segment, and — worse — a
/// concurrent Segment::remove() may transiently *re-link* a removed segment
/// into a live prev/next field before its own retry loop fixes the link.
///
/// EBR makes this safe under one discipline, which the CQS core follows:
///
///   1. Every operation that traverses or mutates the segment list runs
///      inside an ebr::Guard (an epoch pin).
///   2. A segment is retired (ebr::retire) only after its remove() call has
///      completed, i.e. after the removal protocol of Appendix C, Listing 15.
///   3. Any code that *stores* a segment pointer into shared memory
///      (moveForward, remove's relinking) re-checks `removed()` afterwards
///      and retries within the same Guard, so every stale store of a removed
///      segment is corrected before the storing thread unpins.
///
/// With (3), once the global epoch has advanced past the retire epoch, no
/// shared location still points at the retired segment; the classic
/// three-epoch rule (free garbage of epoch e when the global epoch reaches
/// e+2) then guarantees no pinned reader can hold a stale local pointer
/// either. This argument replaces the paper's "the GC keeps it alive as long
/// as referenced" and is discussed in DESIGN.md §3.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_RECLAIM_EBR_H
#define CQS_RECLAIM_EBR_H

#include "support/Atomic.h"

#include <cstdint>
#include <vector>

namespace cqs {
namespace ebr {

/// One retired allocation awaiting a safe epoch.
struct Retired {
  void *Ptr;
  void (*Deleter)(void *);
};

/// Per-thread participant state. Records are allocated once, linked into a
/// global list, and recycled across threads; they are never freed while the
/// process runs (a standard EBR simplification: the record count is bounded
/// by the peak number of concurrent threads).
class ThreadRecord {
public:
  /// Low bit: pinned flag; upper bits: the epoch observed at pin time.
  Atomic<std::uint64_t> EpochAndPin{0};
  /// True while some live thread owns this record.
  Atomic<bool> InUse{false};
  /// Next record in the global registry (push-only list).
  ThreadRecord *Next = nullptr;

  /// Garbage bags indexed by epoch % 3, plus the epoch each bag belongs to.
  std::vector<Retired> Bags[3];
  std::uint64_t BagEpoch[3] = {0, 0, 0};
  /// Retires since the last advance attempt, to pace tryAdvance().
  unsigned RetiresSinceAdvance = 0;
};

/// Pins the current thread's epoch for the duration of the scope. Reentrant:
/// nested guards share the outermost pin.
class Guard {
public:
  Guard();
  ~Guard();

  Guard(const Guard &) = delete;
  Guard &operator=(const Guard &) = delete;
};

/// Retires \p Ptr; \p Deleter will run once no pinned thread can reach it.
/// Must be called with an active Guard on this thread.
void retire(void *Ptr, void (*Deleter)(void *));

/// Convenience wrapper retiring an object allocated with `new`.
template <typename T> void retireObject(T *Ptr) {
  retire(Ptr, [](void *P) { delete static_cast<T *>(P); });
}

/// Like retireObject, but instead of freeing, hands the object to
/// `T::recycleFromEbr(T *)` once the grace period elapses. This is the hook
/// the object pools (support/ObjectPool.h) use: the scrub-and-reuse runs
/// strictly after the three-epoch rule fires, so no pinned reader can still
/// dereference the object when it is reinitialized for its next life.
template <typename T> void retireRecycle(T *Ptr) {
  retire(Ptr, [](void *P) { T::recycleFromEbr(static_cast<T *>(P)); });
}

/// Returns true if the calling thread currently holds a Guard.
bool isPinned();

/// Frees all retired garbage and resets the domain to its initial state
/// (global epoch back to 1, retire-pacing counters to 0) so that runs
/// separated by a drain are indistinguishable — the hermeticity the
/// schedcheck model checker's seed replay depends on. Only safe when no
/// thread is pinned (test teardown / quiescent points); asserts that.
void drainForTesting();

/// One epoch-advance attempt followed by a collection of the calling
/// thread's bags, without the 64-retire pacing. Lets model-check scenarios
/// (tests/schedcheck_ebr_test.cpp) race an advance against a pinned reader
/// deterministically. Returns true if the epoch moved.
bool tryAdvanceForTesting();

/// Releases the calling thread's registry record immediately instead of
/// waiting for the thread_local destructor. The schedcheck trampoline calls
/// this at logical-thread exit: the destructor would otherwise run after
/// the scheduler hands control to the next thread, so its InUse release
/// store is (a) a real-time race against whoever recycles the record and
/// (b) invisible to the happens-before layer — the recycler's acq_rel CAS
/// would join a stale clock and report a false race on data the dead
/// thread's pin protected. Must not be called while pinned; asserts that.
void quiesceThreadForTesting();

/// Number of allocations currently awaiting reclamation (approximate; for
/// tests and leak diagnostics).
std::size_t pendingForTesting();

} // namespace ebr
} // namespace cqs

#endif // CQS_RECLAIM_EBR_H
