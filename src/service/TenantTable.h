//===- service/TenantTable.h - rwmutex-guarded tenant routing --*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tenant routing table of the quota service (DESIGN.md §13): tenant id
/// -> TenantLimiter, guarded by the striped reader/writer mutex from the
/// contention-scaling layer. The admission path is read-mostly — every
/// request takes one lockShared(), copies the tenant's limiter handle, and
/// unlocks before touching the semaphore — so reader throughput scales with
/// stripes while hot-reloads serialize on the writer side.
///
/// Hot-reload discipline: a tenant's permit count is fixed at semaphore
/// construction (sync/ShardedSemaphore.h), so "change tenant A's limit to
/// N" is implemented as *limiter replacement*, not permit mutation — the
/// writer installs a fresh TenantLimiter and publishes it by swapping the
/// shared_ptr in the map. In-flight requests keep the old limiter alive
/// through their own handle and, crucially, release their permit into the
/// semaphore they acquired it from. That keeps the conservation contract
/// per limiter *instance*:
///
///   Admitted == Released  and  Sem.totalPermits == Limit  (at quiescence)
///
/// for every limiter ever published, old generations included. The table
/// retains replaced limiters (tests walk them via forEachLimiter) so the
/// oracle can audit the full history, not just the live generation.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SERVICE_TENANTTABLE_H
#define CQS_SERVICE_TENANTTABLE_H

#include "support/Atomic.h"
#include "sync/ShardedSemaphore.h"
#include "sync/StripedRwMutex.h"

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

namespace cqs {
namespace service {

/// One generation of one tenant's rate limiter: a sharded semaphore plus
/// the admission policy and the conservation counters the test oracles
/// audit. Immutable apart from the counters; reconfiguration replaces the
/// whole object (see the file comment).
struct TenantLimiter {
  TenantLimiter(std::int64_t Limit, std::chrono::nanoseconds AdmissionDeadline,
                std::uint64_t Generation, unsigned Shards = 0)
      : Limit(Limit), AdmissionDeadline(AdmissionDeadline),
        Generation(Generation), Sem(Limit, Shards) {}

  TenantLimiter(const TenantLimiter &) = delete;
  TenantLimiter &operator=(const TenantLimiter &) = delete;

  /// Maximum concurrently admitted requests for this tenant.
  const std::int64_t Limit;
  /// How long an admission may wait for a permit before shedding.
  const std::chrono::nanoseconds AdmissionDeadline;
  /// Monotone per-table reload counter identifying this generation.
  const std::uint64_t Generation;
  /// The permit pool. Acquired on admission, released exactly once per
  /// admitted request — into *this* semaphore even if the tenant was
  /// reconfigured in between.
  ShardedSemaphore Sem;

  /// Permits granted to requests through this limiter.
  PlainAtomic<std::uint64_t> Admitted{0};
  /// Permits returned by completed requests.
  PlainAtomic<std::uint64_t> Released{0};
  /// Admissions shed at this limiter's deadline.
  PlainAtomic<std::uint64_t> Shed{0};

  void noteAdmitted() { Admitted.fetch_add(1, std::memory_order_relaxed); }
  void noteReleased() { Released.fetch_add(1, std::memory_order_relaxed); }
  void noteShed() { Shed.fetch_add(1, std::memory_order_relaxed); }

  std::uint64_t admitted() const {
    return Admitted.load(std::memory_order_relaxed);
  }
  std::uint64_t released() const {
    return Released.load(std::memory_order_relaxed);
  }
  std::uint64_t shedCount() const {
    return Shed.load(std::memory_order_relaxed);
  }

  /// The per-limiter conservation oracle; meaningful only at quiescence
  /// (no request in flight against this limiter).
  bool quiescentConserved() const {
    return admitted() == released() && Sem.totalPermitsForTesting() == Limit;
  }
};

/// Tenant id -> limiter, guarded by a BasicStripedRwMutex. route() is the
/// per-request read path; configure() is the hot-reload write path.
class TenantTable {
public:
  /// \p Stripes = 0 picks the host default (see support/Striping.h).
  explicit TenantTable(unsigned Stripes = 0) : Mu(Stripes) {}

  TenantTable(const TenantTable &) = delete;
  TenantTable &operator=(const TenantTable &) = delete;

  /// Installs or replaces \p Tenant's limiter (hot-reload). Returns the
  /// new limiter's handle. The replaced generation, if any, is retained
  /// for the conservation oracle and stays alive for in-flight releases.
  std::shared_ptr<TenantLimiter>
  configure(std::uint64_t Tenant, std::int64_t Limit,
            std::chrono::nanoseconds AdmissionDeadline, unsigned Shards = 0) {
    Mu.lock();
    auto L = std::make_shared<TenantLimiter>(Limit, AdmissionDeadline,
                                             NextGeneration++, Shards);
    auto It = Map.find(Tenant);
    if (It != Map.end()) {
      Retired.emplace_back(Tenant, std::move(It->second));
      It->second = L;
    } else {
      Map.emplace(Tenant, L);
    }
    Mu.unlock();
    return L;
  }

  /// Removes \p Tenant's limiter (subsequent routes shed unknown-tenant).
  /// The removed generation is retained like a replaced one.
  bool remove(std::uint64_t Tenant) {
    Mu.lock();
    auto It = Map.find(Tenant);
    bool Found = It != Map.end();
    if (Found) {
      Retired.emplace_back(Tenant, std::move(It->second));
      Map.erase(It);
    }
    Mu.unlock();
    return Found;
  }

  /// The admission read path: one shared-lock critical section copying the
  /// handle. Returns nullptr for unconfigured tenants. The handle pins the
  /// limiter generation the caller admits against, so a concurrent
  /// configure() never strands its permit.
  std::shared_ptr<TenantLimiter> route(std::uint64_t Tenant) {
    Mu.lockShared();
    auto It = Map.find(Tenant);
    std::shared_ptr<TenantLimiter> L =
        It != Map.end() ? It->second : nullptr;
    Mu.unlockShared();
    return L;
  }

  std::size_t tenantCount() {
    Mu.lockShared();
    std::size_t N = Map.size();
    Mu.unlockShared();
    return N;
  }

  std::uint64_t generationsForTesting() {
    Mu.lockShared();
    std::uint64_t G = NextGeneration;
    Mu.unlockShared();
    return G;
  }

  /// Walks every limiter generation ever published — live map entries plus
  /// retired ones — under the writer lock. Test oracle use only (the walk
  /// excludes routes for its duration).
  void forEachLimiter(
      const std::function<void(std::uint64_t Tenant,
                               const TenantLimiter &)> &Fn) {
    Mu.lock();
    for (const auto &KV : Map)
      Fn(KV.first, *KV.second);
    for (const auto &KV : Retired)
      Fn(KV.first, *KV.second);
    Mu.unlock();
  }

private:
  StripedRwMutex Mu;
  /// Both containers are plain data guarded by Mu (writers exclusive,
  /// route() shared — shared_ptr copies are internally thread-safe).
  std::unordered_map<std::uint64_t, std::shared_ptr<TenantLimiter>> Map;
  std::vector<std::pair<std::uint64_t, std::shared_ptr<TenantLimiter>>>
      Retired;
  std::uint64_t NextGeneration = 1; // guarded by the writer lock
};

} // namespace service
} // namespace cqs

#endif // CQS_SERVICE_TENANTTABLE_H
