//===- service/ServiceStats.h - quota-service verdicts & counters -*- C++-*-=//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verdict vocabulary and per-instance counter block of the sharded
/// quota service (DESIGN.md §13). Every submitted request resolves to
/// exactly one of:
///
///  - a *delivered verdict*: the service won the reply's single result-word
///    CAS with a Verdict value (served, or one of the shed classes), or
///  - *client-cancelled*: the client withdrew the reply future first and
///    the service's complete() lost the CAS.
///
/// Because the reply is one CQS Request, "no request is both shed and
/// served" is not a convention the service maintains — it is the Appendix
/// G.2 invariant ("a Future cannot be both cancelled and completed")
/// applied to the composition. The counter block makes that auditable:
///
///   Served + ShedDeadline + ShedQueueFull + ShedUnknownTenant
///     + ShedShutdown + ClientCancelled == Submitted        (at quiescence)
///
/// tests/service_conservation_test.cpp asserts this accounting identity
/// (and the per-tenant permit conservation of TenantTable.h) after every
/// stress scenario; bench/service_load.cpp derives its shed-rate and
/// goodput series from the same snapshot.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SERVICE_SERVICESTATS_H
#define CQS_SERVICE_SERVICESTATS_H

#include "core/CqsStats.h"
#include "support/Atomic.h"

#include <cstdint>

namespace cqs {
namespace service {

/// Final disposition of one request, delivered through the reply future's
/// 32-bit value word. Values are part of the service's wire contract
/// (clients switch on them), so they are explicit and append-only.
enum Verdict : std::int32_t {
  /// Admitted, executed, permit and connection returned.
  VerdictServed = 0,
  /// The admission deadline expired before the tenant limiter granted a
  /// permit (tryAcquireFor timed out / the TimerQueue cancel won).
  VerdictShedDeadline = 1,
  /// The request queue was full at submit time (open-loop overload).
  VerdictShedQueueFull = 2,
  /// No limiter is configured for the tenant.
  VerdictShedUnknownTenant = 3,
  /// Submitted during shutdown, or drained from a queue at shutdown.
  VerdictShedShutdown = 4,
};

inline const char *verdictName(std::int32_t V) {
  switch (V) {
  case VerdictServed:
    return "served";
  case VerdictShedDeadline:
    return "shed-deadline";
  case VerdictShedQueueFull:
    return "shed-queue-full";
  case VerdictShedUnknownTenant:
    return "shed-unknown-tenant";
  case VerdictShedShutdown:
    return "shed-shutdown";
  default:
    return "unknown";
  }
}

/// Plain copyable snapshot of one service's counters; exact at quiescence
/// (after shutdown()), individually coherent during traffic.
struct ServiceStatsSnapshot {
  std::uint64_t Submitted = 0;
  std::uint64_t Served = 0;
  std::uint64_t ShedDeadline = 0;
  std::uint64_t ShedQueueFull = 0;
  std::uint64_t ShedUnknownTenant = 0;
  std::uint64_t ShedShutdown = 0;
  std::uint64_t ClientCancelled = 0;
  std::uint64_t Admitted = 0;
  std::uint64_t IdlePolls = 0;
  std::uint64_t StrayStops = 0;
  std::uint64_t StrayRequests = 0;
  std::uint64_t Reloads = 0;

  /// Requests whose reply CAS the service won, by any verdict.
  std::uint64_t delivered() const {
    return Served + ShedDeadline + ShedQueueFull + ShedUnknownTenant +
           ShedShutdown;
  }

  /// Every submission resolved exactly once: the conservation identity the
  /// admission pipeline promises (see the file comment).
  bool accountingBalanced() const {
    return delivered() + ClientCancelled == Submitted;
  }

  /// Requests shed for any reason (the shed-rate numerator).
  std::uint64_t shed() const {
    return ShedDeadline + ShedQueueFull + ShedUnknownTenant + ShedShutdown;
  }
};

/// Per-QuotaService counter block. All increments are relaxed single
/// atomics on decision points (never inside a primitive's hot CAS loop),
/// following the CqsStats discipline.
struct ServiceStats {
  /// submit() calls, including ones shed immediately.
  PlainAtomic<std::uint64_t> Submitted{0};
  /// Delivered VerdictServed replies.
  PlainAtomic<std::uint64_t> Served{0};
  /// Delivered VerdictShedDeadline replies.
  PlainAtomic<std::uint64_t> ShedDeadline{0};
  /// Delivered VerdictShedQueueFull replies.
  PlainAtomic<std::uint64_t> ShedQueueFull{0};
  /// Delivered VerdictShedUnknownTenant replies.
  PlainAtomic<std::uint64_t> ShedUnknownTenant{0};
  /// Delivered VerdictShedShutdown replies.
  PlainAtomic<std::uint64_t> ShedShutdown{0};
  /// complete() lost the reply CAS to the client's cancel; the request
  /// resolved on the client's side, not ours.
  PlainAtomic<std::uint64_t> ClientCancelled{0};
  /// Tenant-limiter permits granted to requests (each is released exactly
  /// once; TenantLimiter tracks the per-limiter pairing).
  PlainAtomic<std::uint64_t> Admitted{0};
  /// Dispatcher whenAnyFor sweeps that expired with nothing to do.
  PlainAtomic<std::uint64_t> IdlePolls{0};
  /// Stop sentinels consumed as whenAny stray completions (the losing stop
  /// receive completed concurrently with a request win).
  PlainAtomic<std::uint64_t> StrayStops{0};
  /// Requests harvested from the losing receive after a stop win (the
  /// mirror stray: dequeued messages are never dropped).
  PlainAtomic<std::uint64_t> StrayRequests{0};
  /// Tenant-limiter hot-reloads applied through configureTenant().
  PlainAtomic<std::uint64_t> Reloads{0};

  ServiceStatsSnapshot snapshot() const {
    auto Rd = [](const PlainAtomic<std::uint64_t> &C) {
      return C.load(std::memory_order_relaxed);
    };
    ServiceStatsSnapshot S;
    S.Submitted = Rd(Submitted);
    S.Served = Rd(Served);
    S.ShedDeadline = Rd(ShedDeadline);
    S.ShedQueueFull = Rd(ShedQueueFull);
    S.ShedUnknownTenant = Rd(ShedUnknownTenant);
    S.ShedShutdown = Rd(ShedShutdown);
    S.ClientCancelled = Rd(ClientCancelled);
    S.Admitted = Rd(Admitted);
    S.IdlePolls = Rd(IdlePolls);
    S.StrayStops = Rd(StrayStops);
    S.StrayRequests = Rd(StrayRequests);
    S.Reloads = Rd(Reloads);
    return S;
  }
};

} // namespace service
} // namespace cqs

#endif // CQS_SERVICE_SERVICESTATS_H
