//===- service/QuotaService.h - sharded quota/rate-limit server -*- C++ -*-=//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end composition layer (DESIGN.md §13): a sharded quota
/// service built entirely from the library's primitives, exercising them
/// the way a production admission pipeline does —
///
///   submit()  --trySend-->  ChannelV2 request queues   (shed: queue full)
///   dispatcher threads      whenAnyFor(request, stop)  (shutdown race)
///   TenantTable route()     StripedRwMutex shared lock (hot-reload race)
///   TenantLimiter           ShardedSemaphore admission (shed: deadline)
///   handler coroutines      Executor + Pool<Connection> (backend stage)
///   reply Request           one result-word CAS        (client-cancel race)
///
/// Two admission flavours, selected per service:
///
///  - AdmissionMode::Inline — the dispatcher calls tryAcquireFor(deadline)
///    synchronously (TimedWaitVia::TimerQueue when QueuedAdmissionWaits is
///    set, the PR 9 central-timer mode). The wait blocks the dispatcher, so
///    an exhausted tenant applies head-of-line backpressure to its queue —
///    the classic thread-per-stage server. Deterministic and simple; the
///    conservation tests drive it hard.
///  - AdmissionMode::Async — the handler coroutine races Sem.acquire()
///    against a TimerQueue cancel (completeOnTimeout); nothing blocks, so
///    one exhausted tenant cannot stall the pipeline. The million-client
///    load benchmark runs this mode.
///
/// Shed-vs-queue policy: the request queue is bounded and submit() never
/// parks — overload sheds *at the edge* (VerdictShedQueueFull) instead of
/// queueing unboundedly, while admitted work is never dropped. The CQS
/// queue inside each primitive stays the single authority on waiter order
/// (PR 6's lincheck argument): the service adds routing and deadlines
/// around the primitives, never a second waiter list.
///
/// Every reply is one CQS Request: the served/shed/client-cancelled
/// trichotomy rides the single result-word CAS, so "no request is both
/// shed and served" is inherited from Appendix G.2 rather than enforced by
/// service code. See service/ServiceStats.h for the accounting identity.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SERVICE_QUOTASERVICE_H
#define CQS_SERVICE_QUOTASERVICE_H

#include "future/TimedAwait.h"
#include "service/ServiceStats.h"
#include "service/TenantTable.h"
#include "support/Striping.h"
#include "support/WaitGroup.h"
#include "sync/ChannelV2.h"
#include "sync/Pool.h"
#include "task/Awaitable.h"
#include "task/Combinators.h"
#include "task/Executor.h"
#include "task/Task.h"
#include "task/TimerQueue.h"

#include <cassert>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace cqs {
namespace service {

/// A pooled backend connection; the payload is a stand-in for whatever a
/// real service would pool (sockets, db handles). Bounded by
/// ServiceConfig::Connections, so the pool is a second admission surface
/// behind the per-tenant limiters.
struct Connection {
  std::uint32_t Id = 0;
};

enum class AdmissionMode {
  Inline, ///< dispatcher blocks in tryAcquireFor (bounded by the deadline)
  Async,  ///< handler races Sem.acquire() vs a TimerQueue cancel
};

struct ServiceConfig {
  /// Dispatcher threads; each owns one request queue.
  unsigned Dispatchers = 2;
  /// Executor threads running the handler coroutines.
  unsigned HandlerThreads = 2;
  /// Per-queue capacity; trySend beyond it sheds VerdictShedQueueFull.
  std::int64_t QueueCapacity = 1024;
  /// Pooled backend connections shared by all handlers.
  unsigned Connections = 64;
  /// Dispatcher whenAnyFor sweep period while idle.
  std::chrono::nanoseconds IdlePoll = std::chrono::milliseconds(50);
  AdmissionMode Admission = AdmissionMode::Async;
  /// How long a served request holds its permit + connection (simulated
  /// backend latency). Slept on the TimerQueue — the handler suspends, no
  /// thread blocks. 0 = complete immediately.
  std::chrono::nanoseconds HoldTime{0};
  /// Inline mode: route tryAcquireFor through TimedWaitVia::TimerQueue
  /// (PR 9) instead of per-op timed futex waits.
  bool QueuedAdmissionWaits = true;
};

/// A Future<Unit> completed by the central timer thread after \p Delay —
/// the suspending analogue of sleep_for, used for simulated backend hold
/// times. Non-positive delays complete immediately.
inline Future<Unit> timerSleep(std::chrono::nanoseconds Delay) {
  if (Delay.count() <= 0)
    return Future<Unit>::immediate(Unit{});
  using Req = Request<Unit>;
  Req *R = Req::acquire(/*InitialRefs=*/2); // timer entry + returned future
  Future<Unit> F = Future<Unit>::suspended(Ref<Req>::adopt(R));
  (void)TimerQueue::instance().schedule(
      Delay,
      /*Fire=*/[](void *P) { (void)static_cast<Req *>(P)->complete(Unit{}); },
      /*Drop=*/[](void *P) { static_cast<Req *>(P)->release(); }, R);
  return F;
}

class QuotaService {
public:
  using ReplyRequest = Request<std::int32_t>;
  using ReplyFuture = Future<std::int32_t>;

  explicit QuotaService(const ServiceConfig &C)
      : Cfg(sanitize(C)), Exec(Cfg.HandlerThreads), StopCh(Cfg.Dispatchers),
        QueueStripes(roundUpPow2Stripes(Cfg.Dispatchers)) {
    Queues.reserve(Cfg.Dispatchers);
    for (unsigned I = 0; I < Cfg.Dispatchers; ++I)
      Queues.push_back(
          std::make_unique<RequestQueue>(Cfg.QueueCapacity));
    ConnStore.resize(Cfg.Connections);
    for (unsigned I = 0; I < Cfg.Connections; ++I) {
      ConnStore[I].Id = I;
      Conns.put(&ConnStore[I]);
    }
    Dispatchers.reserve(Cfg.Dispatchers);
    for (unsigned I = 0; I < Cfg.Dispatchers; ++I)
      Dispatchers.emplace_back([this, I] { dispatchLoop(I); });
  }

  QuotaService(const QuotaService &) = delete;
  QuotaService &operator=(const QuotaService &) = delete;

  ~QuotaService() { shutdown(); }

  /// Installs or hot-reloads \p Tenant's limiter. Safe during traffic:
  /// requests already admitted release into the generation they acquired
  /// from (see service/TenantTable.h).
  void configureTenant(std::uint64_t Tenant, std::int64_t Limit,
                       std::chrono::nanoseconds AdmissionDeadline,
                       unsigned Shards = 0) {
    (void)Table.configure(Tenant, Limit, AdmissionDeadline, Shards);
    bump(Stats.Reloads);
  }

  /// Submits one request for \p Tenant. Never parks: overload resolves the
  /// returned future immediately with a shed verdict. The caller may
  /// blockingGet(), timedAwait(), or cancel() the reply; a cancel that
  /// beats the service's complete() counts as ClientCancelled and the
  /// request's permit (if any) is still released exactly once.
  ReplyFuture submit(std::uint64_t Tenant) {
    bump(Stats.Submitted);
    // Register-then-recheck against shutdown() (Dekker, both sides
    // seq_cst): after shutdown observes SubmitsInFlight == 0, every later
    // submit must see Closing and shed — no message can slip into a queue
    // that has already been drained.
    SubmitsInFlight.fetch_add(1, std::memory_order_seq_cst);
    if (Closing.load(std::memory_order_seq_cst)) {
      SubmitsInFlight.fetch_sub(1, std::memory_order_seq_cst);
      bump(Stats.ShedShutdown);
      return ReplyFuture::immediate(VerdictShedShutdown);
    }
    ReplyRequest *Reply = ReplyRequest::acquire(/*InitialRefs=*/2);
    ReplyFuture F = ReplyFuture::suspended(Ref<ReplyRequest>::adopt(Reply));
    auto *M = new RequestMsg{Tenant, Reply};
    unsigned Q = currentStripe(QueueStripes) % Cfg.Dispatchers;
    if (!Queues[Q]->trySend(M))
      finish(M, VerdictShedQueueFull);
    SubmitsInFlight.fetch_sub(1, std::memory_order_seq_cst);
    return F;
  }

  /// submit() + timedAwait: the synchronous client call. nullopt iff the
  /// client deadline expired first (the reply was withdrawn); a reply that
  /// beats the cancel is returned even at the deadline (rescue semantics,
  /// DESIGN.md §8).
  std::optional<std::int32_t> call(std::uint64_t Tenant,
                                   std::chrono::nanoseconds ClientDeadline) {
    ReplyFuture F = submit(Tenant);
    return timedAwait(F, ClientDeadline);
  }

  /// Stops accepting work, delivers stop sentinels to every dispatcher,
  /// drains the queues (shedding VerdictShedShutdown), waits for in-flight
  /// handlers, and stops the executor. Idempotent; concurrent callers
  /// block until the first finishes.
  void shutdown() {
    std::call_once(ShutdownOnce, [this] {
      Closing.store(true, std::memory_order_seq_cst);
      while (SubmitsInFlight.load(std::memory_order_seq_cst) != 0)
        std::this_thread::yield();
      for (unsigned I = 0; I < Cfg.Dispatchers; ++I) {
        bool Sent = StopCh.trySend(&StopSentinel);
        assert(Sent && "stop channel sized for one sentinel per dispatcher");
        (void)Sent;
      }
      for (std::thread &T : Dispatchers)
        T.join();
      // Anything still queued was submitted before the gate closed but
      // never dispatched; every such request still gets its one verdict.
      for (auto &Q : Queues) {
        drainQueue(*Q);
        Q->close();
      }
      StopCh.close();
      InFlight.wait();
      Exec.shutdown();
    });
  }

  const ServiceStats &stats() const { return Stats; }
  ServiceStatsSnapshot snapshot() const { return Stats.snapshot(); }
  TenantTable &table() { return Table; }
  const ServiceConfig &config() const { return Cfg; }

  std::int64_t idleConnectionsForTesting() { return Conns.sizeForTesting(); }
  /// Fault-injection hook: the soak test drains/returns connections to
  /// simulate stalled backend workers (tests/service_soak_test.cpp).
  QueueBlockingPool<Connection *> &connectionPoolForTesting() {
    return Conns;
  }
  std::uint32_t inFlightForTesting() const { return InFlight.pending(); }

private:
  struct RequestMsg {
    std::uint64_t Tenant = 0;
    ReplyRequest *Reply = nullptr;
  };
  using RequestQueue = BufferedChannelV2<RequestMsg *>;
  using ReceiveFuture = RequestQueue::ReceiveFuture;

  static ServiceConfig sanitize(ServiceConfig C) {
    if (C.Dispatchers < 1)
      C.Dispatchers = 1;
    if (C.HandlerThreads < 1)
      C.HandlerThreads = 1;
    if (C.QueueCapacity < 1)
      C.QueueCapacity = 1;
    if (C.Connections < 1)
      C.Connections = 1;
    return C;
  }

  /// Delivers \p V through the reply CAS, attributes the outcome, and
  /// retires the message. The single complete() call is what makes every
  /// verdict exclusive.
  void finish(RequestMsg *M, Verdict V) {
    if (M->Reply->complete(static_cast<std::int32_t>(V))) {
      switch (V) {
      case VerdictServed:
        bump(Stats.Served);
        break;
      case VerdictShedDeadline:
        bump(Stats.ShedDeadline);
        break;
      case VerdictShedQueueFull:
        bump(Stats.ShedQueueFull);
        break;
      case VerdictShedUnknownTenant:
        bump(Stats.ShedUnknownTenant);
        break;
      case VerdictShedShutdown:
        bump(Stats.ShedShutdown);
        break;
      }
    } else {
      // The client's cancel won the result word first; the request is
      // resolved (on their side), so it is not re-counted under V.
      bump(Stats.ClientCancelled);
    }
    M->Reply->release(); // the service's reference
    delete M;
  }

  void dispatchLoop(unsigned Idx) {
    RequestQueue &Q = *Queues[Idx];
    // Inline-mode admission waits ride the central timer (PR 9) when
    // configured; the scope is per dispatcher thread.
    std::optional<TimedWaitModeScope> Mode;
    if (Cfg.Admission == AdmissionMode::Inline && Cfg.QueuedAdmissionWaits)
      Mode.emplace(TimedWaitVia::TimerQueue);
    for (;;) {
      ReceiveFuture RF = Q.receive();
      if (!RF.valid())
        break; // queue closed (shutdown already ran)
      ReceiveFuture SF = StopCh.receive();
      if (!SF.valid()) {
        (void)RF.cancel();
        break;
      }
      Future<RequestMsg *> *Race[2] = {&RF, &SF};
      std::optional<WhenAnyResult<RequestMsg *>> Won =
          whenAnyFor(Race, 2, Cfg.IdlePoll);
      if (!Won) {
        bump(Stats.IdlePolls);
        continue; // both receives withdrawn; re-issue fresh ones
      }
      if (Won->Index == 1) {
        // Stop won. The losing request receive may have completed anyway
        // (a whenAny stray) — that message was dequeued and is ours to
        // resolve, never to drop.
        if (std::optional<RequestMsg *> Stray = RF.tryGet()) {
          bump(Stats.StrayRequests);
          dispatch(*Stray);
        }
        break;
      }
      dispatch(Won->Value);
      // Our stop receive lost the race; if its cancel() lost to a
      // concurrent sentinel delivery, the sentinel is consumed — honor it
      // now rather than strand a sibling dispatcher's shutdown.
      if (SF.tryGet().has_value()) {
        bump(Stats.StrayStops);
        break;
      }
    }
    drainQueue(Q);
  }

  void drainQueue(RequestQueue &Q) {
    while (std::optional<RequestMsg *> M = Q.tryReceive())
      finish(*M, VerdictShedShutdown);
  }

  void dispatch(RequestMsg *M) {
    std::shared_ptr<TenantLimiter> L = Table.route(M->Tenant);
    if (!L) {
      finish(M, VerdictShedUnknownTenant);
      return;
    }
    if (Cfg.Admission == AdmissionMode::Inline) {
      if (!L->Sem.tryAcquireFor(L->AdmissionDeadline)) {
        L->noteShed();
        finish(M, VerdictShedDeadline);
        return;
      }
      L->noteAdmitted();
      bump(Stats.Admitted);
      InFlight.add();
      servePermitted(std::move(L), M).spawn(Exec);
    } else {
      InFlight.add();
      serveAsync(std::move(L), M).spawn(Exec);
    }
  }

  /// Async admission: race the permit against the deadline on the central
  /// timer, then run the backend stage. Runs on the handler executor; no
  /// thread blocks at any point.
  FireAndForget serveAsync(std::shared_ptr<TenantLimiter> L, RequestMsg *M) {
    Future<Unit> PF = L->Sem.acquire();
    TimerToken Deadline = completeOnTimeout(PF, L->AdmissionDeadline);
    std::optional<Unit> Permit = co_await awaitFuture(std::move(PF));
    (void)Deadline.tryCancel(); // settled either way: retire the timer
    if (!Permit) {
      L->noteShed();
      finish(M, VerdictShedDeadline);
      InFlight.done();
      co_return;
    }
    L->noteAdmitted();
    bump(Stats.Admitted);
    // The backend stage: one pooled connection, the simulated hold, then
    // the permit release and the served reply — exactly one release per
    // admitted permit, into the limiter generation it came from.
    std::optional<Connection *> C = co_await awaitFuture(Conns.take());
    if (Cfg.HoldTime.count() > 0)
      (void)co_await awaitFuture(timerSleep(Cfg.HoldTime));
    if (C.has_value())
      Conns.put(*C);
    L->Sem.release();
    L->noteReleased();
    finish(M, VerdictServed);
    InFlight.done();
  }

  /// Inline admission already holds the permit; run the same backend
  /// stage on the executor.
  FireAndForget servePermitted(std::shared_ptr<TenantLimiter> L,
                               RequestMsg *M) {
    std::optional<Connection *> C = co_await awaitFuture(Conns.take());
    if (Cfg.HoldTime.count() > 0)
      (void)co_await awaitFuture(timerSleep(Cfg.HoldTime));
    if (C.has_value())
      Conns.put(*C);
    L->Sem.release();
    L->noteReleased();
    finish(M, VerdictServed);
    InFlight.done();
  }

  ServiceConfig Cfg;
  ServiceStats Stats;
  TenantTable Table;
  Executor Exec;
  /// The pooled connection objects themselves; the pool circulates
  /// pointers into this fixed array (pool values must be word-encodable).
  std::vector<Connection> ConnStore;
  QueueBlockingPool<Connection *> Conns;
  std::vector<std::unique_ptr<RequestQueue>> Queues;
  RequestQueue StopCh;
  RequestMsg StopSentinel{};
  std::vector<std::thread> Dispatchers;
  WaitGroup InFlight;
  Atomic<bool> Closing{false};
  Atomic<std::uint64_t> SubmitsInFlight{0};
  std::once_flag ShutdownOnce;
  /// Power-of-two stripe count for spreading submitters across queues.
  const unsigned QueueStripes;
};

} // namespace service
} // namespace cqs

#endif // CQS_SERVICE_QUOTASERVICE_H
