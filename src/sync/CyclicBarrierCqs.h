//===- sync/CyclicBarrierCqs.h - reusable barrier over CQS -----*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cyclic (reusable) wrapper around the single-use Listing 6 barrier:
/// each generation is one BasicBarrier instance; the last arriver of a
/// generation installs a fresh instance before releasing the others, and
/// the spent instance is reclaimed through EBR (arrivers of the old
/// generation may still be reading it). This mirrors how Java's
/// CyclicBarrier rolls its Generation object.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SYNC_CYCLICBARRIERCQS_H
#define CQS_SYNC_CYCLICBARRIERCQS_H

#include "reclaim/Ebr.h"
#include "support/Backoff.h"
#include "sync/Barrier.h"

#include "support/Atomic.h"
#include <cassert>
#include <cstdint>

namespace cqs {

/// Reusable barrier: arriveAndWait() blocks until all parties of the
/// current generation have arrived, then everyone proceeds and the barrier
/// is ready for the next generation.
template <unsigned SegmentSize = 16> class BasicCyclicBarrier {
  using Gen = BasicBarrier<SegmentSize>;

public:
  explicit BasicCyclicBarrier(std::int64_t Parties) : Parties(Parties) {
    Current.store(new Gen(Parties), std::memory_order_release);
  }

  ~BasicCyclicBarrier() { delete Current.load(std::memory_order_acquire); }

  BasicCyclicBarrier(const BasicCyclicBarrier &) = delete;
  BasicCyclicBarrier &operator=(const BasicCyclicBarrier &) = delete;

  /// Blocks (parking, not spinning) until the generation completes. At
  /// most `Parties` threads may use the barrier concurrently (as with
  /// java.util.concurrent.CyclicBarrier); under that contract a stale
  /// arrival can only ever reach an already-completed generation.
  void arriveAndWait() {
    Backoff B;
    for (;;) {
      typename Gen::Arrival A;
      {
        // The EBR guard covers only the access to the (possibly retired)
        // generation object — never the park below, which would stall
        // reclamation process-wide.
        ebr::Guard Guard;
        Gen *G = Current.load(std::memory_order_acquire);
        A = G->tryArriveTagged();
        if (A.Last) {
          // The Last tag, not isImmediate(), identifies the roller: a
          // non-last arriver can also complete immediately through the
          // CQS elimination path when its wake-up outruns its suspend.
          Gen *Fresh = new Gen(Parties);
          [[maybe_unused]] Gen *Expected = G;
          [[maybe_unused]] bool Rolled = Current.compare_exchange_strong(
              Expected, Fresh, std::memory_order_acq_rel,
              std::memory_order_acquire);
          assert(Rolled && "only the last arriver rolls the generation");
          ebr::retireObject(G);
          return;
        }
      }
      if (!A.Future.valid()) {
        // We raced ahead of the roll: this generation is already complete
        // and its last arriver is about to install the next one.
        B.pause();
        continue;
      }
      [[maybe_unused]] auto Grant = A.Future.blockingGet();
      assert(Grant.has_value() && "cyclic barrier waiters are not cancelled");
      return;
    }
  }

private:
  const std::int64_t Parties;
  Atomic<Gen *> Current{nullptr};
};

using CyclicCqsBarrier = BasicCyclicBarrier<>;

} // namespace cqs

#endif // CQS_SYNC_CYCLICBARRIERCQS_H
