//===- sync/CyclicBarrierCqs.h - reusable barrier over CQS -----*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cyclic (reusable) wrapper around the single-use Listing 6 barrier:
/// each generation is one BasicBarrier instance; the last arriver of a
/// generation installs a fresh instance before releasing the others, and
/// the spent instance is reclaimed through EBR (arrivers of the old
/// generation may still be reading it). This mirrors how Java's
/// CyclicBarrier rolls its Generation object.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SYNC_CYCLICBARRIERCQS_H
#define CQS_SYNC_CYCLICBARRIERCQS_H

#include "future/TimedAwait.h"
#include "reclaim/Ebr.h"
#include "support/Backoff.h"
#include "sync/Barrier.h"

#include "support/Atomic.h"
#include <cassert>
#include <chrono>
#include <cstdint>

namespace cqs {

/// Reusable barrier: arriveAndWait() blocks until all parties of the
/// current generation have arrived, then everyone proceeds and the barrier
/// is ready for the next generation.
template <unsigned SegmentSize = 16> class BasicCyclicBarrier {
  using Gen = BasicBarrier<SegmentSize>;

public:
  explicit BasicCyclicBarrier(std::int64_t Parties) : Parties(Parties) {
    Current.store(new Gen(Parties), std::memory_order_release);
  }

  ~BasicCyclicBarrier() { delete Current.load(std::memory_order_acquire); }

  BasicCyclicBarrier(const BasicCyclicBarrier &) = delete;
  BasicCyclicBarrier &operator=(const BasicCyclicBarrier &) = delete;

  /// Blocks (parking, not spinning) until the generation completes. At
  /// most `Parties` threads may use the barrier concurrently (as with
  /// java.util.concurrent.CyclicBarrier); under that contract a stale
  /// arrival can only ever reach an already-completed generation.
  void arriveAndWait() {
    Backoff B;
    for (;;) {
      typename Gen::Arrival A = arriveOnce();
      if (A.Last)
        return;
      if (!A.Future.valid()) {
        // We raced ahead of the roll: this generation is already complete
        // and its last arriver is about to install the next one.
        B.pause();
        continue;
      }
      [[maybe_unused]] auto Grant = A.Future.blockingGet();
      assert(Grant.has_value() && "cyclic barrier waiters are not cancelled");
      return;
    }
  }

  /// Deadline-bounded arriveAndWait: true iff the generation completed
  /// within \p Timeout. Semantics differ deliberately from
  /// java.util.concurrent.CyclicBarrier's broken-barrier model: a timeout
  /// does NOT break the barrier, and the arrival STANDS — the Listing 6
  /// barrier *ignores* cancellation (a cancelled waiter has already
  /// arrived), so the remaining parties still proceed and the generation
  /// still completes once all of them show up. Consequently a timed-out
  /// caller must not re-arrive in the same generation (it would exceed the
  /// Parties contract); treat false as "stop participating until the next
  /// generation". When the last arrival's resume beats our cancel to the
  /// result word, true is returned — the generation completed in time.
  bool awaitFor(std::chrono::nanoseconds Timeout) {
    const auto Deadline = std::chrono::steady_clock::now() + Timeout;
    Backoff B;
    for (;;) {
      typename Gen::Arrival A = arriveOnce();
      if (A.Last)
        return true;
      if (!A.Future.valid()) {
        // The generation already completed; its roller is mid-install.
        // This resolves promptly (no party to wait for), but honor an
        // already-expired deadline rather than spinning past it.
        if (std::chrono::steady_clock::now() >= Deadline)
          return false;
        B.pause();
        continue;
      }
      auto Now = std::chrono::steady_clock::now();
      std::chrono::nanoseconds Left =
          Now < Deadline
              ? std::chrono::duration_cast<std::chrono::nanoseconds>(Deadline -
                                                                     Now)
              : std::chrono::nanoseconds(0);
      return timedAwait(A.Future, Left).has_value();
    }
  }

private:
  /// One arrival attempt on the current generation, shared by
  /// arriveAndWait() and awaitFor(): covers the (possibly retired)
  /// generation with an EBR guard, and when this call is the last arrival
  /// rolls the barrier to a fresh generation. Never parks; an invalid
  /// Future in the result means the caller raced ahead of the roll and
  /// should back off and retry.
  typename Gen::Arrival arriveOnce() {
    // The EBR guard covers only the access to the (possibly retired)
    // generation object — never any park in the caller, which would
    // stall reclamation process-wide.
    ebr::Guard Guard;
    Gen *G = Current.load(std::memory_order_acquire);
    typename Gen::Arrival A = G->tryArriveTagged();
    if (A.Last) {
      // The Last tag, not isImmediate(), identifies the roller: a
      // non-last arriver can also complete immediately through the
      // CQS elimination path when its wake-up outruns its suspend.
      Gen *Fresh = new Gen(Parties);
      [[maybe_unused]] Gen *Expected = G;
      [[maybe_unused]] bool Rolled = Current.compare_exchange_strong(
          Expected, Fresh, std::memory_order_acq_rel,
          std::memory_order_acquire);
      assert(Rolled && "only the last arriver rolls the generation");
      ebr::retireObject(G);
    }
    return A;
  }

  const std::int64_t Parties;
  Atomic<Gen *> Current{nullptr};
};

using CyclicCqsBarrier = BasicCyclicBarrier<>;

} // namespace cqs

#endif // CQS_SYNC_CYCLICBARRIERCQS_H
