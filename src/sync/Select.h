//===- sync/Select.h - first-ready-wins receive over N channels -*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// selectReceive: wait on N channel-v2 receive clauses at once; the first
/// clause with an element wins and the losers are cancelled through SMART
/// cancellation, so no element or permit is ever stranded (DESIGN.md §10).
///
/// Protocol:
///  1. Registration, one clause per channel in argument order. Each clause
///     either completes immediately (a peer was already present — the
///     clause wins the shared SelectCore winner word during registration),
///     parks a gated waiter in its cell, reports the channel closed, or
///     observes that an earlier clause already won and stops.
///  2. Wait: park on the core's epoch futex until a winner is committed, or
///     until every parked clause was cancelled by close() (all channels
///     closed underneath the select).
///  3. Harvest + cleanup: take the winner's value and cancel every other
///     parked clause. A loser's cancel can itself lose — only to a
///     concurrent close() cancel, which performs the same cell transition.
///
/// Returns std::nullopt iff nothing can ever be received (every clause's
/// channel closed). Send clauses are intentionally not offered — see the
/// ChannelV2.h file comment.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SYNC_SELECT_H
#define CQS_SYNC_SELECT_H

#include "core/CqsStats.h"
#include "reclaim/Ebr.h"
#include "sync/ChannelV2.h"

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <optional>

namespace cqs {

/// Winning clause index (argument order) and the received element.
template <typename E> struct SelectResult {
  std::int32_t Index;
  E Value;
};

inline constexpr int MaxSelectClauses = 16;

/// Receives from the first of \p N channels to have an element available.
template <typename E, unsigned SegmentSize>
std::optional<SelectResult<E>>
selectReceive(BufferedChannelV2<E, SegmentSize> *const *Channels, int N) {
  assert(N >= 1 && N <= MaxSelectClauses && "select clause count");
  using Chan = BufferedChannelV2<E, SegmentSize>;
  using Fut = typename Chan::ReceiveFuture;
  ChannelStats &CS = channelStats();
  // Heap + EBR retire: a close() racing this select can fire a clause's
  // cancellation callback (which rings this core) after we return.
  auto *Core = new SelectCore;
  Fut Futures[MaxSelectClauses];
  bool Parked[MaxSelectClauses] = {};
  int NParked = 0;
  std::int32_t W = SelectCore::NoWinner;

  for (std::int32_t I = 0; I < N; ++I) {
    ChannelOp Op = Channels[I]->selectRegisterReceive(Core, I, Futures[I]);
    if (Op == ChannelOp::Done) {
      bump(CS.SelImmediateWins);
      W = I;
      break;
    }
    if (Op == ChannelOp::Suspended) {
      Parked[I] = true;
      ++NParked;
    } else if (Op == ChannelOp::Lost) {
      W = Core->winner();
      assert(W != SelectCore::NoWinner && "lost a select nobody won");
      break;
    }
    // ChannelOp::Closed: skip the clause.
  }

  if (W == SelectCore::NoWinner && NParked > 0) {
    for (;;) {
      std::uint32_t Ep = Core->epoch(); // sample BEFORE the checks
      W = Core->winner();
      if (W != SelectCore::NoWinner)
        break;
      if (Core->deadCount() >= NParked)
        break; // close() cancelled every parked clause
      Core->waitEpoch(Ep);
    }
  }

  std::optional<SelectResult<E>> Result;
  if (W != SelectCore::NoWinner && Futures[W].valid()) {
    // nullopt here means the winning clause's request was close-cancelled
    // right after committing the win; its sender re-delivers or aborts, so
    // reporting "nothing receivable" stays conservation-clean.
    if (std::optional<E> V = Futures[W].blockingGet())
      Result = SelectResult<E>{W, *V};
  }
  for (std::int32_t I = 0; I < N; ++I)
    if (I != W && Parked[I])
      (void)Futures[I].cancel(); // false iff close() cancelled it first
  {
    ebr::Guard Guard;
    ebr::retireObject(Core);
  }
  return Result;
}

template <typename E, unsigned SegmentSize>
std::optional<SelectResult<E>>
selectReceive(std::initializer_list<BufferedChannelV2<E, SegmentSize> *> Cs) {
  BufferedChannelV2<E, SegmentSize> *Chans[MaxSelectClauses];
  int N = 0;
  for (auto *C : Cs)
    Chans[N++] = C;
  return selectReceive(Chans, N);
}

} // namespace cqs

#endif // CQS_SYNC_SELECT_H
