//===- sync/Barrier.h - cyclic-point barrier over CQS ----------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The barrier of Section 4.1 (Listing 6): `parties` operations wait for
/// each other at a common point. A single Fetch-And-Add counts arrivals; the
/// last arriver resumes everyone else through the CQS.
///
/// Like the paper (and Java), cancellation is not *supported* — resuming a
/// set of waiters atomically is impossible — but unlike Java's "broken
/// barrier" the design *ignores* cancellation: a cancelled waiter has
/// already arrived, so the remaining parties still proceed. Concretely, the
/// last arriver's resume(..) calls simply skip over cancelled futures
/// (simple cancellation: a failed resume corresponds to exactly one
/// cancelled waiter, so nothing is retried).
///
/// The arrive() futures compose with timedAwait (future/TimedAwait.h)
/// under exactly these semantics: a timed-out waiter's arrival stands, the
/// barrier is never "broken", and when the final resume beats the timeout's
/// cancel the wait reports completion. CyclicBarrierCqs::awaitFor builds on
/// this.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SYNC_BARRIER_H
#define CQS_SYNC_BARRIER_H

#include "core/Cqs.h"
#include "future/Future.h"
#include "support/CacheLine.h"

#include "support/Atomic.h"
#include <cassert>
#include <cstdint>

namespace cqs {

/// Single-use barrier for a fixed number of parties.
template <unsigned SegmentSize = 16> class BasicBarrier {
public:
  using CqsType = Cqs<Unit, ValueTraits<Unit>, SegmentSize>;
  using FutureType = typename CqsType::FutureType;

  explicit BasicBarrier(std::int64_t Parties)
      : Q(CancellationMode::Simple, ResumptionMode::Async), Remaining(Parties),
        Parties(Parties) {
    assert(Parties >= 1 && "barrier needs at least one party");
  }

  /// Registers the caller's arrival. All but the last arriver receive a
  /// future that completes when the final party arrives; the last arriver
  /// completes immediately after waking everyone.
  FutureType arrive() {
    FutureType F = tryArrive();
    assert(F.valid() && "more arrive() calls than parties");
    return F;
  }

  /// Result of tryArrive(): the future plus whether this call was the
  /// final arrival. The two are NOT synonymous — a non-last arriver whose
  /// wake-up raced ahead of its suspend() receives an *immediate* future
  /// through the CQS elimination path, so "immediate" must never be used
  /// to detect the last arriver.
  struct Arrival {
    FutureType Future;
    bool Last = false;
  };

  /// Like arrive(), but an over-arrival (more calls than parties) returns
  /// an invalid future instead of asserting. Used by the cyclic wrapper,
  /// where a racing arrival for the *next* generation can reach a spent
  /// instance and must retry on the fresh one.
  FutureType tryArrive() { return tryArriveTagged().Future; }

  /// tryArrive() plus the last-arriver tag (see Arrival).
  Arrival tryArriveTagged() {
    std::int64_t R = Remaining->fetch_sub(1, std::memory_order_acq_rel);
    if (R < 1)
      return {FutureType::invalid(), false};
    if (R > 1)
      return {Q.suspend(), false};
    // Last arriver: wake all the earlier ones. A false return means that
    // waiter cancelled itself — it already arrived, so just move on.
    for (std::int64_t I = 0; I < Parties - 1; ++I)
      (void)Q.resume(Unit{});
    return {FutureType::immediate(Unit{}), true};
  }

  /// Parties that have not arrived yet (test/diagnostic hook).
  std::int64_t remainingForTesting() const {
    return Remaining->load(std::memory_order_acquire);
  }

private:
  CqsType Q;
  CachePadded<Atomic<std::int64_t>> Remaining;
  const std::int64_t Parties;
};

using Barrier = BasicBarrier<>;

} // namespace cqs

#endif // CQS_SYNC_BARRIER_H
