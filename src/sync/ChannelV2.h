//===- sync/ChannelV2.h - single-array channel + select ---------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The channel algorithm from the paper authors' successor work, *Fast and
/// Scalable Channels in Kotlin Coroutines* (Koval, Alistarh, Elizarov —
/// PAPERS.md): senders and receivers share ONE infinite array of cells
/// (core/SegmentList.h), indexed by two monotone counters. A transfer
/// touches a single cell: the faster party leaves its element (sender) or
/// parks its request (either side) there, and the slower party finds it —
/// eliminating the v1 design's two waiter queues, balance counter, separate
/// element storage, and sendFor doorbell (sync/Channel.h, kept as the
/// benchmark comparator).
///
/// Counters (both claimed with one fetch_add per operation):
///  - SendersAndClose: low 62 bits = next sender cell index; bit 62 is the
///    closed flag, so close() and sends serialize on one word.
///  - ReceiversCtr: next receiver cell index.
///  - BufferEnd (Capacity > 0 only): index of the first cell *outside* the
///    buffer window. A sender with index s may deposit its element without
///    waiting iff s < BufferEnd (buffer room) or s < ReceiversCtr (the
///    receiver for this cell already exists). Every engaged receive calls
///    expandBuffer() to slide the window one cell forward, resuming the
///    sender parked at the boundary if there is one.
///
/// Cell life cycle (DESIGN.md §10 has the full diagram). A cell word is a
/// tagged word (support/TaggedWord.h): state tokens below use tag 0, a
/// deposited element is a tag-1 Value, a plain parked receiver is a tag-2
/// pointer to its Request, and tag 3 — unused by the CQS core — marks a
/// ChannelWaiter node (parked sender, or parked select clause).
///
/// Cancellation is CQS-SMART throughout: the Request result word is the
/// single commit point. Whoever wins it (completer or canceller) owns the
/// cell transition; a completer that loses backs off until the owner's
/// transition lands. This is what makes suspended sends abortable — v2's
/// sendFor cancels the parked waiter and withdraws the element atomically
/// with the cell, so a timed-out send provably left nothing behind (and,
/// unlike v1, timed senders keep their FIFO position) — and it is exactly
/// the mechanism select's losing clauses are cancelled through.
///
/// select (sync/Select.h) registers one *receive* clause per channel;
/// first-ready-wins via a per-select winner word (SelectCore). Send clauses
/// are deliberately not offered: a losing send clause can strand a receiver
/// parked at its already-claimed cell, and resolving that requires the full
/// re-registration protocol of the Kotlin implementation — out of scope,
/// documented in DESIGN.md §10. A registration that claims a cell and then
/// loses always resolves that cell (poisoning it, or consuming the element
/// and re-delivering it at a fresh index), so no element or permit is ever
/// stranded.
///
/// Honest limitations (DESIGN.md §10):
///  - A select clause that wins the winner word but whose peer was
///    cancelled before handing over continues as a plain blocking receive
///    on that channel (rare; bounded by a cancellation racing the win).
///  - Re-delivered elements (lost select clauses, cancelled receives) take
///    a fresh sender index: FIFO is perturbed for that element and the
///    buffer window may transiently over-admit — the same caveat family as
///    v1's completeRefusedResume.
///  - sendBurst on a channel that closes mid-burst asserts in debug builds;
///    in release the unsent remainder is dropped (callers own pre-close
///    sequencing, as with v1 which had no close() at all).
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SYNC_CHANNELV2_H
#define CQS_SYNC_CHANNELV2_H

#include "core/CqsStats.h"
#include "core/SegmentList.h"
#include "future/Future.h"
#include "future/TimedAwait.h"
#include "reclaim/Ebr.h"
#include "support/Backoff.h"
#include "support/CacheLine.h"
#include "support/Futex.h"
#include "support/TaggedWord.h"

#include "support/Atomic.h"
#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <optional>

namespace cqs {

/// Token-tagged cell states of the single-array channel. Values overlap the
/// CQS Token enum where the meaning matches (Empty/Taken/Broken/Cancelled),
/// so fresh zero-filled cells are Empty and the schedcheck traces read
/// uniformly; InBuffer and Closed extend the state space.
enum class ChannelCellState : std::uint64_t {
  /// Untouched cell (zero word).
  Empty = 0,
  /// The element passed through; terminal.
  Taken = 1,
  /// Dead cell whose buffer-window slot is already settled: a poisoner
  /// gave up on the cell and pre-paid the slot with an expandBuffer call,
  /// or a parked receiver (which paid on suspension) was cancelled;
  /// terminal. expandBuffer treats Broken boundary cells as covered.
  Broken = 2,
  /// A parked *sender* was cancelled (timeout or close); terminal. The
  /// only dead state expandBuffer still owes a slot for — its boundary
  /// skip pays exactly once per Cancelled cell.
  Cancelled = 4,
  /// expandBuffer() marked this cell as inside the buffer window before any
  /// sender arrived; the sender deposits over it without suspending.
  InBuffer = 6,
  /// close() (or a party observing the closed flag) sealed this never-used
  /// cell; terminal.
  Closed = 7,
};

constexpr std::uint64_t channelCellWord(ChannelCellState S) {
  return static_cast<std::uint64_t>(S) << 3;
}

/// Tag 3 — free in the TaggedWord scheme — marks a pointer to a
/// ChannelWaiter node (parked sender, or parked select-receiver clause).
inline constexpr std::uint64_t ChannelWaiterTag = 3;

inline std::uint64_t makeChannelWaiterWord(void *Ptr) {
  auto Bits = reinterpret_cast<std::uint64_t>(Ptr);
  assert((Bits & WordTagMask) == 0 && "waiter node must be 8-byte aligned");
  return Bits | ChannelWaiterTag;
}

constexpr bool isChannelWaiterWord(std::uint64_t Word) {
  return (Word & WordTagMask) == ChannelWaiterTag;
}

inline void *channelWaiterOf(std::uint64_t Word) {
  assert(isChannelWaiterWord(Word) && "not a channel-waiter word");
  return reinterpret_cast<void *>(Word & ~WordTagMask);
}

/// Outcome of one cell engagement (or of a whole channel operation, for the
/// select registration API in sync/Select.h).
enum class ChannelOp : std::uint8_t {
  /// Completed without suspending.
  Done,
  /// Parked; the returned future completes later.
  Suspended,
  /// The cell died under us (poisoned/cancelled); the caller claims a fresh
  /// index. Never escapes to users.
  Restart,
  /// The channel is closed (the operation did not take effect).
  Closed,
  /// Try-operation would have parked.
  WouldBlock,
  /// Select only: another clause won this select.
  Lost,
};

/// Shared decision word of one select invocation: the first clause to CAS
/// its index into Winner owns the select. Heap-allocated and EBR-retired by
/// selectReceive — a close() racing the select can run a clause's
/// cancellation callback (which dereferences this core via its waiter node)
/// after select's own loser-cancel already failed, so the core must stay
/// alive for a grace period after select returns.
class SelectCore {
public:
  static constexpr std::int32_t NoWinner = -1;

  /// Claims the select for \p Clause; true iff this clause is the winner
  /// (idempotent for the clause that already won).
  bool tryWin(std::int32_t Clause) {
    std::int32_t Exp = NoWinner;
    if (Winner.compare_exchange_strong(Exp, Clause, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      ring();
      return true;
    }
    return Exp == Clause;
  }

  std::int32_t winner() const {
    return Winner.load(std::memory_order_acquire);
  }

  /// A parked clause was cancelled by close(): wake the waiter so it can
  /// notice that nothing is left to win.
  void noteClauseDead() {
    Dead.fetch_add(1, std::memory_order_acq_rel);
    ring();
  }

  std::int32_t deadCount() const {
    return Dead.load(std::memory_order_acquire);
  }

  /// Wait-loop support: sample the epoch *before* re-checking winner/dead,
  /// then park against that sample — the futex revalidates, so a ring
  /// between check and park is never missed.
  std::uint32_t epoch() const {
    return Epoch.load(std::memory_order_seq_cst);
  }

  void waitEpoch(std::uint32_t Ep) {
    futexWait(Epoch, Ep, std::chrono::nanoseconds(-1));
  }

private:
  void ring() {
    Epoch.fetch_add(1, std::memory_order_seq_cst);
    futexWakeAll(Epoch);
  }

  Atomic<std::int32_t> Winner{NoWinner};
  Atomic<std::uint32_t> Epoch{0};
  Atomic<std::int32_t> Dead{0};
};

/// Heap node a cell points at (tag 3) while a sender or a select-receiver
/// clause is parked in it. Retired through EBR by whichever party
/// transitions the cell out of the waiter state.
template <typename E> struct alignas(8) ChannelWaiter {
  enum class Kind : std::uint8_t { Sender, SelectReceiver };

  Kind K = Kind::Sender;
  /// Sender: the backpressure/rendezvous acknowledgement request.
  Request<Unit> *Ack = nullptr;
  /// SelectReceiver: the clause's element request.
  Request<E> *Rcv = nullptr;
  /// Sender: the element travelling with the waiter (withdrawn atomically
  /// with the cell if the send is cancelled).
  E Elem{};
  SelectCore *Sel = nullptr;
  std::int32_t ClauseIdx = SelectCore::NoWinner;
};

/// Bounded FIFO channel on the single-array algorithm; Capacity 0 makes it
/// a rendezvous channel. See the file comment for the design.
template <typename E, unsigned SegmentSize = 16> class BufferedChannelV2 {
public:
  using Seg = Segment<SegmentSize>;
  using List = SegmentList<SegmentSize>;
  using RcvRequest = Request<E>;
  using AckRequest = Request<Unit>;
  using ReceiveFuture = Future<E>;
  using SendFuture = Future<Unit>;

  explicit BufferedChannelV2(std::int64_t Capacity) : Capacity(Capacity) {
    assert(Capacity >= 0 && "negative channel capacity");
    // Three segment pointers share the first segment (two on a rendezvous
    // channel, whose buffer pointer is never used).
    Seg *First = Seg::create(0, nullptr, Capacity > 0 ? 3u : 2u);
    SendSegm.store(First, std::memory_order_relaxed);
    RcvSegm.store(First, std::memory_order_relaxed);
    BufSegm.store(Capacity > 0 ? First : nullptr, std::memory_order_relaxed);
    BufferEnd->store(static_cast<std::uint64_t>(Capacity),
                     std::memory_order_relaxed);
  }

  BufferedChannelV2(const BufferedChannelV2 &) = delete;
  BufferedChannelV2 &operator=(const BufferedChannelV2 &) = delete;

  /// Quiescent teardown (mirrors ~Cqs): release parked requests, free
  /// waiter nodes, dispose segments EBR has not already taken.
  ~BufferedChannelV2() {
    Seg *Sg = SendSegm.load(std::memory_order_relaxed);
    Seg *R = RcvSegm.load(std::memory_order_relaxed);
    if (R->Id < Sg->Id)
      Sg = R;
    if (Capacity > 0) {
      Seg *B = BufSegm.load(std::memory_order_relaxed);
      if (B->Id < Sg->Id)
        Sg = B;
    }
    while (Sg) {
      Seg *Next = Sg->next();
      for (unsigned I = 0; I < SegmentSize; ++I) {
        std::uint64_t Cur = Sg->Cells[I].load(std::memory_order_relaxed);
        if (isChannelWaiterWord(Cur)) {
          auto *Wt = static_cast<ChannelWaiter<E> *>(channelWaiterOf(Cur));
          if (Wt->K == ChannelWaiter<E>::Kind::Sender)
            Wt->Ack->release();
          else
            Wt->Rcv->release();
          delete Wt;
        } else if (wordKind(Cur) == WordKind::Pointer) {
          static_cast<RcvRequest *>(pointerOf(Cur))->release();
        }
      }
      if (!Sg->isRetiredForTesting())
        Seg::disposeUnpublished(Sg);
      Sg = Next;
    }
  }

  /// Sends \p V. Immediate when a receiver was waiting (rendezvous) or the
  /// element fit the buffer window; otherwise the future completes when the
  /// element is taken (rendezvous) or enters the buffer (backpressure).
  /// Invalid iff the channel is closed — the element was NOT sent.
  SendFuture send(E V) {
    SendFuture Out;
    (void)sendImpl(V, /*NoSuspend=*/false, Out);
    return Out;
  }

  /// Receives the next element in FIFO order, suspending when none is
  /// available. Abortable (smart cancellation). Invalid iff the channel is
  /// closed and drained.
  ReceiveFuture receive() {
    ReceiveFuture Out;
    (void)receiveImpl(/*NoSuspend=*/false, nullptr, SelectCore::NoWinner,
                      Out);
    return Out;
  }

  /// Non-blocking send: true iff \p V was handed to a receiver or
  /// deposited in buffer room; never parks (a would-park attempt poisons
  /// its own cell, the Kotlin INTERRUPTED_SEND idiom).
  bool trySend(E V) {
    std::uint64_t W = SendersAndClose->load(std::memory_order_seq_cst);
    if (W & ClosedBit)
      return false;
    std::uint64_t S = W & CounterMask;
    std::uint64_t R = ReceiversCtr->load(std::memory_order_seq_cst);
    std::uint64_t B = Capacity > 0
                          ? BufferEnd->load(std::memory_order_seq_cst)
                          : 0;
    if (S >= R && S >= B)
      return false; // no receiver due at this cell and no buffer room
    SendFuture Out;
    return sendImpl(V, /*NoSuspend=*/true, Out) == ChannelOp::Done;
  }

  /// Non-blocking receive; works after close() (draining).
  std::optional<E> tryReceive() {
    std::uint64_t R = ReceiversCtr->load(std::memory_order_seq_cst);
    std::uint64_t S =
        SendersAndClose->load(std::memory_order_seq_cst) & CounterMask;
    if (R >= S)
      return std::nullopt; // every sent element is already claimed
    ReceiveFuture Out;
    if (receiveImpl(/*NoSuspend=*/true, nullptr, SelectCore::NoWinner, Out) !=
        ChannelOp::Done)
      return std::nullopt;
    return Out.tryGet();
  }

  /// Deadline-bounded send: true iff \p V entered the channel within
  /// \p Timeout. Unlike v1, the element keeps its FIFO position while
  /// waiting: the parked waiter carries it, and a timeout cancels waiter
  /// and element atomically with the cell — nothing is left behind.
  bool sendFor(E V, std::chrono::nanoseconds Timeout) {
    SendFuture F = send(V);
    if (!F.valid())
      return false; // closed
    if (F.isImmediate())
      return true;
    return timedAwait(F, Timeout).has_value();
  }

  /// Deadline-bounded receive: the next element, or std::nullopt on
  /// timeout/close. When a sender beats the cancel to the result word the
  /// element is consumed and returned (the rescue path of
  /// future/TimedAwait.h) — no element is lost.
  std::optional<E> receiveFor(std::chrono::nanoseconds Timeout) {
    ReceiveFuture F = receive();
    if (!F.valid())
      return std::nullopt;
    return timedAwait(F, Timeout);
  }

  /// Burst send: claims MaxBurstChunk cells with ONE counter fetch_add and
  /// walks them in order. All elements are in the channel when this
  /// returns; backpressure is settled per chunk (one blocking wait per
  /// cell that parked). A cell that dies under the burst falls back to a
  /// plain send for that element (order perturbation, matching v1).
  void sendBurst(const E *Vs, std::int64_t N) {
    assert(N >= 0 && "negative burst length");
    ebr::Guard Guard;
    std::int64_t I = 0;
    while (I < N) {
      const std::int64_t Chunk = std::min(MaxBurstChunk, N - I);
      Seg *Start = SendSegm.load(std::memory_order_acquire);
      std::uint64_t W = SendersAndClose->fetch_add(
          static_cast<std::uint64_t>(Chunk), std::memory_order_seq_cst);
      if (W & ClosedBit) {
        assert(false && "sendBurst on a closed channel");
        for (std::int64_t K = 0; K < Chunk; ++K) {
          std::uint64_t S = (W & CounterMask) + static_cast<std::uint64_t>(K);
          abandonClosedSendCell(Start, S / SegmentSize,
                                static_cast<std::uint32_t>(S % SegmentSize));
        }
        return;
      }
      SendFuture Pending[MaxBurstChunk];
      int NPending = 0;
      for (std::int64_t K = 0; K < Chunk; ++K) {
        std::uint64_t S = (W & CounterMask) + static_cast<std::uint64_t>(K);
        Seg *Sg = List::findAndMoveForward(SendSegm, Start, S / SegmentSize);
        Start = Sg; // later cells of the chunk are at or past this segment
        SendFuture Out;
        ChannelOp Op =
            Sg->Id != S / SegmentSize
                ? ChannelOp::Restart
                : sendToCell(Sg, static_cast<std::uint32_t>(S % SegmentSize),
                             S, Vs[I + K], /*NoSuspend=*/false, Out);
        if (Op == ChannelOp::Suspended) {
          Pending[NPending++] = std::move(Out);
        } else if (Op == ChannelOp::Restart) {
          SendFuture F = send(Vs[I + K]);
          if (F.valid() && !F.isImmediate())
            Pending[NPending++] = std::move(F);
        } else if (Op == ChannelOp::Closed) {
          assert(false && "channel closed during sendBurst");
        }
      }
      for (int K = 0; K < NPending; ++K)
        (void)Pending[K].blockingGet();
      I += Chunk;
    }
  }

  /// Closes the channel: subsequent sends fail (invalid future), receives
  /// drain buffered elements and then fail. Idempotent. Parked waiters on
  /// the losing side are cancelled (a cancelled send keeps its element with
  /// the caller).
  void close() {
    ebr::Guard Guard;
    std::uint64_t W = SendersAndClose->load(std::memory_order_seq_cst);
    for (;;) {
      if (W & ClosedBit)
        return; // the first closer runs the walk
      if (SendersAndClose->compare_exchange_weak(W, W | ClosedBit,
                                                 std::memory_order_seq_cst,
                                                 std::memory_order_seq_cst))
        break;
    }
    const std::uint64_t CloseCtr = W & CounterMask;
    const std::uint64_t RWalk =
        ReceiversCtr->load(std::memory_order_seq_cst);
    // Cancel the stranded side: parked receivers in [CloseCtr, RWalk), or
    // parked senders in [RWalk, CloseCtr). Coverage (DESIGN.md §10): a
    // receiver parks only after a seq_cst no-closed-bit check, so its
    // counter claim precedes the RWalk read above; a sender re-checks the
    // closed bit after parking and self-cancels if it raced past us.
    std::uint64_t Lo = std::min(CloseCtr, RWalk);
    const std::uint64_t Hi = std::max(CloseCtr, RWalk);
    if (Lo == Hi)
      return;
    Seg *S1 = SendSegm.load(std::memory_order_acquire);
    Seg *S2 = RcvSegm.load(std::memory_order_acquire);
    Seg *Sg = S1->Id <= S2->Id ? S1 : S2;
    while (Lo < Hi) {
      Sg = List::findSegment(Sg, Lo / SegmentSize);
      if (Sg->Id != Lo / SegmentSize) {
        // This stretch of cells is already fully dead; skip to the segment
        // findSegment actually found.
        Lo = Sg->Id * SegmentSize;
        continue;
      }
      closeCell(Sg, static_cast<std::uint32_t>(Lo % SegmentSize));
      ++Lo;
    }
  }

  bool isClosed() const {
    return (SendersAndClose->load(std::memory_order_seq_cst) & ClosedBit) !=
           0;
  }

  /// Select building block (sync/Select.h): registers one receive clause
  /// of \p Sel. Done = this clause won during registration (Out is the
  /// winning future); Suspended = parked (Out is the clause future);
  /// Lost = another clause already won; Closed = this channel is closed.
  ChannelOp selectRegisterReceive(SelectCore *Sel, std::int32_t Clause,
                                  ReceiveFuture &Out) {
    assert(Sel && Clause >= 0 && "select registration needs a core+clause");
    return receiveImpl(/*NoSuspend=*/false, Sel, Clause, Out);
  }

  /// Sent-minus-claimed counter gap; racy diagnostic.
  std::int64_t sizeApproxForTesting() const {
    std::uint64_t S =
        SendersAndClose->load(std::memory_order_acquire) & CounterMask;
    std::uint64_t R = ReceiversCtr->load(std::memory_order_acquire);
    return static_cast<std::int64_t>(S) - static_cast<std::int64_t>(R);
  }

private:
  static constexpr std::uint64_t ClosedBit = 1ull << 62;
  static constexpr std::uint64_t CounterMask = ClosedBit - 1;
  static constexpr std::int64_t MaxBurstChunk = 64;

  static constexpr std::uint64_t EmptyWord =
      channelCellWord(ChannelCellState::Empty);
  static constexpr std::uint64_t TakenWord =
      channelCellWord(ChannelCellState::Taken);
  static constexpr std::uint64_t BrokenWord =
      channelCellWord(ChannelCellState::Broken);
  static constexpr std::uint64_t CancelledWord =
      channelCellWord(ChannelCellState::Cancelled);
  static constexpr std::uint64_t InBufferWord =
      channelCellWord(ChannelCellState::InBuffer);
  static constexpr std::uint64_t ClosedCellWord =
      channelCellWord(ChannelCellState::Closed);

  /// Claims sender cells until one resolves. Returns Done (Out immediate),
  /// Suspended (Out parked), WouldBlock (NoSuspend), or Closed (Out
  /// invalid).
  ChannelOp sendImpl(E V, bool NoSuspend, SendFuture &Out) {
    ebr::Guard Guard;
    for (;;) {
      // Read the segment pointer BEFORE claiming the index (the Cqs.h
      // idiom): the claimed cell is then always reachable from Start.
      Seg *Start = SendSegm.load(std::memory_order_acquire);
      std::uint64_t W =
          SendersAndClose->fetch_add(1, std::memory_order_seq_cst);
      std::uint64_t S = W & CounterMask;
      if (W & ClosedBit) {
        // Post-close claims never advance SendSegm (findSegment only), so
        // the close() walk's start stays at or before its range.
        abandonClosedSendCell(Start, S / SegmentSize,
                              static_cast<std::uint32_t>(S % SegmentSize));
        Out = SendFuture::invalid();
        return ChannelOp::Closed;
      }
      Seg *Sg = List::findAndMoveForward(SendSegm, Start, S / SegmentSize);
      if (Sg->Id != S / SegmentSize)
        continue; // whole segment died (all cells cancelled); fresh index
      ChannelOp Op = sendToCell(
          Sg, static_cast<std::uint32_t>(S % SegmentSize), S, V, NoSuspend,
          Out);
      if (Op == ChannelOp::Restart)
        continue;
      if (Op == ChannelOp::Closed)
        Out = SendFuture::invalid();
      return Op;
    }
  }

  /// The sender cell state machine for claimed index \p S.
  ChannelOp sendToCell(Seg *Sg, std::uint32_t Idx, std::uint64_t S, E V,
                       bool NoSuspend, SendFuture &Out) {
    ChannelStats &CS = channelStats();
    auto &Cell = Sg->Cells[Idx];
    for (;;) {
      std::uint64_t Cur = Cell.load(std::memory_order_acquire);
      if (Cur == EmptyWord || Cur == InBufferWord) {
        // Deposit without suspending iff the cell is in the buffer window
        // or its receiver already exists (both checks seq_cst: they form
        // the Dekker pairs with expandBuffer and the receiver claim).
        bool CanDeposit =
            Cur == InBufferWord ||
            (Capacity > 0 &&
             S < BufferEnd->load(std::memory_order_seq_cst)) ||
            S < ReceiversCtr->load(std::memory_order_seq_cst);
        if (CanDeposit) {
          if (Cell.compare_exchange_strong(Cur, encodeValueWord<E>(V),
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
            bump(CS.Deposits);
            Out = SendFuture::immediate(Unit{});
            return ChannelOp::Done;
          }
          continue;
        }
        if (NoSuspend) {
          // Poison our own cell so no receiver ever waits on it. The
          // poisoner pre-pays the window slot this burned index would have
          // consumed (Broken cells are settled for expandBuffer).
          if (Cell.compare_exchange_strong(Cur, BrokenWord,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
            Sg->onCellDead();
            bump(CS.Poisons);
            if (Capacity > 0)
              expandBuffer();
            return ChannelOp::WouldBlock;
          }
          continue;
        }
        // Park: the waiter node carries the element, so cancelling the
        // send withdraws both atomically with the cell.
        AckRequest *Req = AckRequest::acquire(2);
        auto *Wt = new ChannelWaiter<E>;
        Wt->K = ChannelWaiter<E>::Kind::Sender;
        Wt->Ack = Req;
        Wt->Elem = V;
        Req->bindCancellation(&senderCancelCallback, this, Sg, Idx);
        if (Cell.compare_exchange_strong(Cur, makeChannelWaiterWord(Wt),
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
          bump(CS.SenderSuspends);
          Out = SendFuture::suspended(Ref<AckRequest>::adopt(Req));
          // Post-park closed re-check: either this load sees the closed
          // bit (and we self-cancel), or it precedes close()'s CAS in the
          // seq_cst order — and then so does our park, so the close walk
          // sees and cancels the waiter. Closes the close-vs-park race.
          if (SendersAndClose->load(std::memory_order_seq_cst) &
              ClosedBit) {
            if (Out.cancel()) {
              Out = SendFuture::invalid();
              return ChannelOp::Closed;
            }
            // cancel lost: a receiver/expandBuffer already took the
            // element — the send succeeded after all.
          }
          return ChannelOp::Suspended;
        }
        Req->recycleUnpublished();
        delete Wt;
        continue; // re-dispatch on whatever the cell became
      }
      if (wordKind(Cur) == WordKind::Pointer) {
        // A plain parked receiver: rendezvous.
        auto *Rcv = static_cast<RcvRequest *>(pointerOf(Cur));
        if (Rcv->complete(V)) {
          Cell.store(TakenWord, std::memory_order_release);
          Rcv->release();
          Sg->onCellDead();
          bump(CS.Rendezvous);
          Out = SendFuture::immediate(Unit{});
          return ChannelOp::Done;
        }
        // Its canceller owns the cell transition; this index is burned.
        return ChannelOp::Restart;
      }
      if (isChannelWaiterWord(Cur)) {
        // A parked select clause (sender waiters never meet senders).
        auto *Wt = static_cast<ChannelWaiter<E> *>(channelWaiterOf(Cur));
        assert(Wt->K == ChannelWaiter<E>::Kind::SelectReceiver &&
               "sender met a sender waiter at its own cell");
        if (Wt->Sel->tryWin(Wt->ClauseIdx) && Wt->Rcv->complete(V)) {
          Cell.store(TakenWord, std::memory_order_release);
          Wt->Rcv->release();
          ebr::retireObject(Wt);
          Sg->onCellDead();
          bump(CS.Rendezvous);
          bump(CS.SelParkedWins);
          Out = SendFuture::immediate(Unit{});
          return ChannelOp::Done;
        }
        // Lost the select race or the clause was cancelled; losing is
        // terminal for the clause, whose owner resolves this cell.
        return ChannelOp::Restart;
      }
      if (Cur == BrokenWord || Cur == CancelledWord)
        return ChannelOp::Restart;
      if (Cur == ClosedCellWord)
        return ChannelOp::Closed;
      assert(Cur != TakenWord && wordKind(Cur) != WordKind::Value &&
             "second sender at a sender-claimed cell");
      return ChannelOp::Restart;
    }
  }

  /// A send that claimed index \p S after close: seal or drain the cell so
  /// nothing ever parks against a claim that cannot be served.
  void abandonClosedSendCell(Seg *Start, std::uint64_t SegId,
                             std::uint32_t Idx) {
    Seg *Sg = List::findSegment(Start, SegId);
    if (Sg->Id != SegId)
      return; // segment fully dead — every cell already resolved
    auto &Cell = Sg->Cells[Idx];
    for (;;) {
      std::uint64_t Cur = Cell.load(std::memory_order_acquire);
      if (Cur == EmptyWord || Cur == InBufferWord) {
        if (Cell.compare_exchange_strong(Cur, ClosedCellWord,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
          Sg->onCellDead();
          return;
        }
        continue;
      }
      if (wordKind(Cur) == WordKind::Pointer) {
        // A receiver parked before close() landed; it can never be served.
        (void)static_cast<RcvRequest *>(pointerOf(Cur))->cancel();
        return;
      }
      if (isChannelWaiterWord(Cur)) {
        auto *Wt = static_cast<ChannelWaiter<E> *>(channelWaiterOf(Cur));
        assert(Wt->K == ChannelWaiter<E>::Kind::SelectReceiver &&
               "sender waiter at an unserved post-close sender cell");
        (void)Wt->Rcv->cancel();
        return;
      }
      return; // already resolved (Broken/Cancelled/Closed/Taken/Value)
    }
  }

  /// One receive engine for plain, try, and select-registration calls.
  /// \p Sel null = plain receive; otherwise Clause identifies this select
  /// clause. A clause that commits the winner word but cannot be fulfilled
  /// by its peer continues as a plain (Committed) receive.
  ChannelOp receiveImpl(bool NoSuspend, SelectCore *Sel, std::int32_t Clause,
                        ReceiveFuture &Out) {
    ebr::Guard Guard;
    bool Committed = false;
    for (;;) {
      if (Sel && !Committed) {
        std::int32_t W = Sel->winner();
        if (W == Clause)
          Committed = true;
        else if (W != SelectCore::NoWinner)
          return ChannelOp::Lost; // decided elsewhere; claim nothing
      }
      Seg *Start = RcvSegm.load(std::memory_order_acquire);
      std::uint64_t R = ReceiversCtr->fetch_add(1, std::memory_order_seq_cst);
      Seg *Sg = List::findAndMoveForward(RcvSegm, Start, R / SegmentSize);
      // NO clearPrev() here, unlike the v1 resume path. v1 may null the
      // prev link because its resume counter only passes completed (dead)
      // cells, so everything left of the head is removable. In a channel a
      // receiver PARKS in its claimed cell and the head moves on — live
      // cells remain to the left. remove() relies on the prev chain to
      // find the live left neighbour and redirect its next link away from
      // the corpse; nulling prev makes it skip that correction, leaving a
      // live segment pointing at retired (recycled) memory.
      if (Sg->Id != R / SegmentSize)
        continue;
      ChannelOp Op = receiveFromCell(
          Sg, static_cast<std::uint32_t>(R % SegmentSize), R, NoSuspend, Sel,
          Clause, Committed, Out);
      if (Op == ChannelOp::Restart)
        continue;
      if (Op == ChannelOp::Closed)
        Out = ReceiveFuture::invalid();
      return Op;
    }
  }

  /// The receiver cell state machine for claimed index \p R. Whatever the
  /// select outcome, a claimed cell is always fully resolved — a lost
  /// clause consumes the element and re-delivers it (never strands it).
  ChannelOp receiveFromCell(Seg *Sg, std::uint32_t Idx, std::uint64_t R,
                            bool NoSuspend, SelectCore *Sel,
                            std::int32_t Clause, bool Committed,
                            ReceiveFuture &Out) {
    ChannelStats &CS = channelStats();
    auto &Cell = Sg->Cells[Idx];
    Backoff B;
    for (;;) {
      std::uint64_t Cur = Cell.load(std::memory_order_acquire);
      if (wordKind(Cur) == WordKind::Value) {
        // Element already deposited: take it.
        E V = decodeValueWord<E>(Cur);
        bool Win = !Sel || Committed || Sel->tryWin(Clause);
        Cell.store(TakenWord, std::memory_order_release);
        Sg->onCellDead();
        if (Capacity > 0)
          expandBuffer();
        if (Win) {
          Out = ReceiveFuture::immediate(V);
          return ChannelOp::Done;
        }
        redeliver(V);
        bump(CS.SelRedeliveries);
        return ChannelOp::Lost;
      }
      if (isChannelWaiterWord(Cur)) {
        // A parked sender: rendezvous through its acknowledgement. Secure
        // the element BEFORE touching the select core: winning the core
        // first and then losing the ack race (to a concurrently cancelled
        // send) would commit the select to a clause with nothing to
        // deliver, degrading it into an unbounded plain receive that can
        // park on a channel no sender visits again. With the element in
        // hand, a lost core race just re-delivers — the same shape as the
        // deposited-value case above.
        auto *Wt = static_cast<ChannelWaiter<E> *>(channelWaiterOf(Cur));
        assert(Wt->K == ChannelWaiter<E>::Kind::Sender &&
               "receiver met a receiver waiter at its own cell");
        if (!Wt->Ack->complete(Unit{})) {
          // Either expandBuffer resumed this sender first (the cell is
          // about to become a Value — consume it on the next dispatch) or
          // the sender was cancelled (the cell becomes Cancelled —
          // restart). The owner's transition is a few instructions away.
          B.pause();
          continue;
        }
        E V = Wt->Elem;
        Cell.store(TakenWord, std::memory_order_release);
        Wt->Ack->release();
        ebr::retireObject(Wt);
        Sg->onCellDead();
        bump(CS.Rendezvous);
        if (Capacity > 0)
          expandBuffer();
        bool Win = !Sel || Committed || Sel->tryWin(Clause);
        if (Win) {
          Out = ReceiveFuture::immediate(V);
          return ChannelOp::Done;
        }
        redeliver(V);
        bump(CS.SelRedeliveries);
        return ChannelOp::Lost;
      }
      if (Cur == EmptyWord || Cur == InBufferWord) {
        std::uint64_t SW =
            SendersAndClose->load(std::memory_order_seq_cst);
        std::uint64_t S = SW & CounterMask;
        if (R < S) {
          // A sender claimed this cell but has not arrived: poison it so
          // the sender restarts, and claim a fresh index ourselves. Pre-pay
          // the slot the poisoned cell may already occupy in the window.
          if (Cell.compare_exchange_strong(Cur, BrokenWord,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
            Sg->onCellDead();
            bump(CS.Poisons);
            if (Capacity > 0)
              expandBuffer();
            return ChannelOp::Restart;
          }
          continue;
        }
        if (SW & ClosedBit) {
          // No sender will ever claim this cell (the seq_cst pre-park
          // check above is what lets close() bound its cancel walk).
          if (Cell.compare_exchange_strong(Cur, ClosedCellWord,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
            Sg->onCellDead();
            return ChannelOp::Closed;
          }
          continue;
        }
        if (NoSuspend) {
          // The poisoned cell may already sit inside the buffer window
          // (claimed by an expandBuffer that Dekker-returned): pre-pay the
          // slot so the window never shrinks.
          if (Cell.compare_exchange_strong(Cur, BrokenWord,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
            Sg->onCellDead();
            bump(CS.Poisons);
            if (Capacity > 0)
              expandBuffer();
            return ChannelOp::WouldBlock;
          }
          continue;
        }
        if (Sel && !Committed) {
          // Park a gated select clause: senders must win the select core
          // before completing it.
          RcvRequest *Req = RcvRequest::acquire(2);
          auto *Wt = new ChannelWaiter<E>;
          Wt->K = ChannelWaiter<E>::Kind::SelectReceiver;
          Wt->Rcv = Req;
          Wt->Sel = Sel;
          Wt->ClauseIdx = Clause;
          Req->bindCancellation(&selectReceiverCancelCallback, this, Sg,
                                Idx);
          if (Cell.compare_exchange_strong(Cur, makeChannelWaiterWord(Wt),
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
            bump(CS.ReceiverSuspends);
            Out = ReceiveFuture::suspended(Ref<RcvRequest>::adopt(Req));
            if (Capacity > 0)
              expandBuffer();
            return ChannelOp::Suspended;
          }
          Req->recycleUnpublished();
          delete Wt;
          continue;
        }
        // Park a plain receiver: the bare request pointer is the waiter.
        RcvRequest *Req = RcvRequest::acquire(2);
        Req->bindCancellation(&plainReceiverCancelCallback, this, Sg, Idx);
        if (Cell.compare_exchange_strong(Cur, makePointerWord(Req),
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
          bump(CS.ReceiverSuspends);
          Out = ReceiveFuture::suspended(Ref<RcvRequest>::adopt(Req));
          if (Capacity > 0)
            expandBuffer();
          return ChannelOp::Suspended;
        }
        Req->recycleUnpublished();
        continue;
      }
      if (Cur == BrokenWord || Cur == CancelledWord)
        return ChannelOp::Restart;
      if (Cur == ClosedCellWord)
        return ChannelOp::Closed;
      assert(Cur != TakenWord &&
             "second receiver at a receiver-claimed cell");
      return ChannelOp::Restart;
    }
  }

  /// Slides the buffer window one cell forward (called once per engaged
  /// receive on a buffered channel) and resumes the sender parked at the
  /// old boundary, if any.
  void expandBuffer() {
    ChannelStats &CS = channelStats();
    for (;;) {
      Seg *Start = BufSegm.load(std::memory_order_acquire);
      std::uint64_t Bd =
          BufferEnd->fetch_add(1, std::memory_order_seq_cst);
      std::uint64_t S =
          SendersAndClose->load(std::memory_order_seq_cst) & CounterMask;
      if (Bd >= S)
        return; // Dekker with the sender claim: a sender claiming this
                // cell later reloads BufferEnd (seq_cst) and deposits.
      Seg *Sg = List::findAndMoveForward(BufSegm, Start, Bd / SegmentSize);
      if (Sg->Id != Bd / SegmentSize)
        continue; // boundary cell already dead; the slot moves on
      auto &Cell = Sg->Cells[Bd % SegmentSize];
      Backoff B;
      for (;;) {
        std::uint64_t Cur = Cell.load(std::memory_order_acquire);
        if (Cur == EmptyWord) {
          // Mark the cell so a sender holding a stale BufferEnd sample
          // still deposits instead of parking forever.
          if (Cell.compare_exchange_strong(Cur, InBufferWord,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire))
            return;
          continue;
        }
        if (isChannelWaiterWord(Cur)) {
          auto *Wt = static_cast<ChannelWaiter<E> *>(channelWaiterOf(Cur));
          if (Wt->K == ChannelWaiter<E>::Kind::Sender) {
            if (Wt->Ack->complete(Unit{})) {
              // The sender's element moves into the buffer; its ack fires.
              Cell.store(encodeValueWord<E>(Wt->Elem),
                         std::memory_order_release);
              Wt->Ack->release();
              ebr::retireObject(Wt);
              bump(CS.EbResumes);
              return;
            }
            B.pause(); // receiver or canceller owns it; re-dispatch
            continue;
          }
          return; // parked select clause: a rendezvous, not a buffer slot
        }
        if (wordKind(Cur) == WordKind::Pointer)
          return; // parked plain receiver: rendezvous pending
        if (Cur == CancelledWord)
          break; // cancelled sender: unpaid dead cell — the slot moves on
        if (Cur == BrokenWord)
          return; // poisoned or receiver-cancelled cell: its killer
                  // pre-paid this slot (poison pays, a park paid on entry)
        assert(Cur != InBufferWord &&
               "two expandBuffer calls claimed one boundary cell");
        return; // Taken/Value/Closed: consumed or sealed
      }
    }
  }

  /// Re-delivers an element a losing/lost select clause consumed, through
  /// a fresh sender index. Ignores the closed bit (the element was already
  /// sent once; a closed channel stays drainable) and never suspends.
  void redeliver(E V) {
    for (;;) {
      Seg *Start = SendSegm.load(std::memory_order_acquire);
      std::uint64_t W =
          SendersAndClose->fetch_add(1, std::memory_order_seq_cst);
      std::uint64_t S = W & CounterMask;
      Seg *Sg = (W & ClosedBit)
                    ? List::findSegment(Start, S / SegmentSize)
                    : List::findAndMoveForward(SendSegm, Start,
                                               S / SegmentSize);
      if (Sg->Id != S / SegmentSize)
        continue;
      auto &Cell = Sg->Cells[S % SegmentSize];
      bool Fresh = false;
      while (!Fresh) {
        std::uint64_t Cur = Cell.load(std::memory_order_acquire);
        if (Cur == EmptyWord || Cur == InBufferWord) {
          // May transiently exceed the buffer window — the v1
          // completeRefusedResume precedent; elements are never lost.
          if (Cell.compare_exchange_strong(Cur, encodeValueWord<E>(V),
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire))
            return;
          continue;
        }
        if (wordKind(Cur) == WordKind::Pointer) {
          auto *Rcv = static_cast<RcvRequest *>(pointerOf(Cur));
          if (Rcv->complete(V)) {
            Cell.store(TakenWord, std::memory_order_release);
            Rcv->release();
            Sg->onCellDead();
            return;
          }
          Fresh = true; // canceller owns the cell; fresh index
          continue;
        }
        if (isChannelWaiterWord(Cur)) {
          auto *Wt = static_cast<ChannelWaiter<E> *>(channelWaiterOf(Cur));
          assert(Wt->K == ChannelWaiter<E>::Kind::SelectReceiver &&
                 "sender waiter at a fresh sender index");
          if (Wt->Sel->tryWin(Wt->ClauseIdx) && Wt->Rcv->complete(V)) {
            Cell.store(TakenWord, std::memory_order_release);
            Wt->Rcv->release();
            ebr::retireObject(Wt);
            Sg->onCellDead();
            bump(channelStats().SelParkedWins);
            return;
          }
          Fresh = true;
          continue;
        }
        Fresh = true; // Broken/Cancelled/Closed: fresh index
      }
    }
  }

  /// One cell of the close() cancel walk.
  void closeCell(Seg *Sg, std::uint32_t Idx) {
    auto &Cell = Sg->Cells[Idx];
    for (;;) {
      std::uint64_t Cur = Cell.load(std::memory_order_acquire);
      if (Cur == EmptyWord || Cur == InBufferWord) {
        if (Cell.compare_exchange_strong(Cur, ClosedCellWord,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
          Sg->onCellDead();
          return;
        }
        continue;
      }
      if (wordKind(Cur) == WordKind::Pointer) {
        (void)static_cast<RcvRequest *>(pointerOf(Cur))->cancel();
        return;
      }
      if (isChannelWaiterWord(Cur)) {
        auto *Wt = static_cast<ChannelWaiter<E> *>(channelWaiterOf(Cur));
        if (Wt->K == ChannelWaiter<E>::Kind::Sender)
          (void)Wt->Ack->cancel(); // aborted send: element stays with caller
        else
          (void)Wt->Rcv->cancel();
        return;
      }
      return; // Value stays drainable; other states are terminal
    }
  }

  /// Cancellation of a parked send (timeout or close): the canceller won
  /// the ack's result word, so it owns the cell — element and waiter are
  /// withdrawn together.
  static void senderCancelCallback(void *, void *Segment,
                                   std::uint32_t Idx) {
    auto *Sg = static_cast<Seg *>(Segment);
    ebr::Guard Guard;
    std::uint64_t Cur =
        Sg->Cells[Idx].exchange(CancelledWord, std::memory_order_acq_rel);
    assert(isChannelWaiterWord(Cur) &&
           "sender cancel: cell no longer holds the waiter");
    auto *Wt = static_cast<ChannelWaiter<E> *>(channelWaiterOf(Cur));
    assert(Wt->K == ChannelWaiter<E>::Kind::Sender);
    Wt->Ack->release(); // the cell's reference
    ebr::retireObject(Wt);
    Sg->onCellDead();
  }

  /// Cancellation of a plain parked receive (timeout or close). Writes
  /// Broken, not Cancelled: the park already paid this cell's window slot
  /// (expandBuffer on suspension), so expandBuffer must treat the corpse
  /// as settled instead of paying a second time.
  static void plainReceiverCancelCallback(void *, void *Segment,
                                          std::uint32_t Idx) {
    auto *Sg = static_cast<Seg *>(Segment);
    ebr::Guard Guard;
    std::uint64_t Cur =
        Sg->Cells[Idx].exchange(BrokenWord, std::memory_order_acq_rel);
    assert(wordKind(Cur) == WordKind::Pointer &&
           "receiver cancel: cell no longer holds the request");
    static_cast<RcvRequest *>(pointerOf(Cur))->release();
    Sg->onCellDead();
  }

  /// Cancellation of a parked select clause (losing clause, or close).
  /// Broken for the same reason as the plain receiver: the park pre-paid.
  /// noteClauseDead runs under the guard: the core is EBR-retired by
  /// selectReceive, so the grace period keeps it alive here.
  static void selectReceiverCancelCallback(void *, void *Segment,
                                           std::uint32_t Idx) {
    auto *Sg = static_cast<Seg *>(Segment);
    ebr::Guard Guard;
    std::uint64_t Cur =
        Sg->Cells[Idx].exchange(BrokenWord, std::memory_order_acq_rel);
    assert(isChannelWaiterWord(Cur) &&
           "select cancel: cell no longer holds the waiter");
    auto *Wt = static_cast<ChannelWaiter<E> *>(channelWaiterOf(Cur));
    assert(Wt->K == ChannelWaiter<E>::Kind::SelectReceiver);
    SelectCore *Sel = Wt->Sel;
    Wt->Rcv->release();
    ebr::retireObject(Wt);
    Sg->onCellDead();
    bump(channelStats().SelLoserCancels);
    Sel->noteClauseDead();
  }

  CachePadded<Atomic<std::uint64_t>> SendersAndClose{0};
  CachePadded<Atomic<std::uint64_t>> ReceiversCtr{0};
  CachePadded<Atomic<std::uint64_t>> BufferEnd{0};
  Atomic<Seg *> SendSegm{nullptr};
  Atomic<Seg *> RcvSegm{nullptr};
  Atomic<Seg *> BufSegm{nullptr};
  const std::int64_t Capacity;
};

/// Synchronous (rendezvous) channel on the v2 algorithm.
template <typename E, unsigned SegmentSize = 16>
class RendezvousChannelV2 : public BufferedChannelV2<E, SegmentSize> {
public:
  RendezvousChannelV2() : BufferedChannelV2<E, SegmentSize>(0) {}
};

} // namespace cqs

#endif // CQS_SYNC_CHANNELV2_H
