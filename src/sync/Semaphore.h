//===- sync/Semaphore.h - fair abortable semaphore over CQS ----*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The semaphore of Section 4.3 / Appendix D.1 (Listing 16): a single
/// Fetch-And-Add counter plus the CQS waiter queue. `state >= 0` is the
/// number of available permits; `state < 0` negates the number of waiters.
/// acquire() decrements and suspends when no permit was available; release()
/// increments and resumes the longest-waiting acquirer.
///
/// Cancellation uses the smart mode: an aborted acquire() returns its
/// "reservation" by incrementing state in onCancellation(); if that
/// increment re-created an available permit, a release() is already on its
/// way to this waiter and must be refused (the permit is already back, so
/// completeRefusedResume is a no-op) — the exact protocol of Listing 16.
///
/// With ResumptionMode::Sync the semaphore additionally supports
/// tryAcquire() (Appendix B/D.1): the synchronous rendezvous guarantees
/// release() never parks a permit inside the CQS where tryAcquire() could
/// not see it.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SYNC_SEMAPHORE_H
#define CQS_SYNC_SEMAPHORE_H

#include "core/Cqs.h"
#include "future/Future.h"
#include "future/TimedAwait.h"
#include "support/CacheLine.h"

#include "support/Atomic.h"
#include <cassert>
#include <chrono>
#include <cstdint>

namespace cqs {

/// Fair, abortable counting semaphore on top of the CQS.
template <unsigned SegmentSize = 16>
class BasicSemaphore
    : private Cqs<Unit, ValueTraits<Unit>,
                  SegmentSize>::SmartCancellationHandler {
public:
  using CqsType = Cqs<Unit, ValueTraits<Unit>, SegmentSize>;
  using FutureType = typename CqsType::FutureType;

  /// \p Permits is the paper's K (K = 1 yields a mutex). \p RMode selects
  /// the resumption mode: Async is the default and fastest; Sync enables
  /// tryAcquire().
  explicit BasicSemaphore(std::int64_t Permits,
                          ResumptionMode RMode = ResumptionMode::Async)
      : Q(CancellationMode::Smart, RMode, this), State(Permits),
        MaxPermits(Permits) {
    assert(Permits >= 1 && "a semaphore needs at least one permit");
  }

  /// Takes a permit; completes immediately when one is available, otherwise
  /// suspends in FIFO order. The returned future completes with Unit when
  /// the permit is granted and may be cancel()ed to abort waiting.
  FutureType acquire() {
    for (;;) {
      std::int64_t S = State->fetch_sub(1, std::memory_order_acq_rel);
      if (S > 0)
        return FutureType::immediate(Unit{});
      FutureType F = Q.suspend();
      if (F.valid())
        return F;
      // SYNC mode: our cell was broken by a timed-out release(); both sides
      // restart, which keeps the FAA balance (Listing 12).
      assert(resumptionMode() == ResumptionMode::Sync);
    }
  }

  /// Returns a permit, resuming the first waiter if any.
  void release() {
    for (;;) {
      [[maybe_unused]] std::int64_t S =
          State->fetch_add(1, std::memory_order_acq_rel);
      assert(S < MaxPermits && "release() without a matching acquire()");
      if (S >= 0)
        return; // no waiter: the permit is banked in state
      if (Q.resume(Unit{}))
        return;
      // SYNC mode rendezvous failure: restart (Listing 12's unlock loop).
      assert(resumptionMode() == ResumptionMode::Sync);
    }
  }

  /// Batched release: returns \p N permits with a single counter update
  /// and at most one batched queue traversal per retry round, instead of
  /// N independent release() calls (N segment walks, N counter RMWs).
  /// Waiters are resumed in FIFO order, exactly as N sequential releases
  /// would.
  void release(std::int64_t N) {
    assert(N > 0 && "release(n) takes a positive permit count");
    std::int64_t Pending = N;
    for (;;) {
      [[maybe_unused]] std::int64_t S =
          State->fetch_add(Pending, std::memory_order_acq_rel);
      assert(S + Pending <= MaxPermits &&
             "release(n) without matching acquires");
      if (S >= 0)
        return; // no waiters: all permits banked in state
      // -S waiters were registered when we added; wake min(Pending, -S) of
      // them in one traversal. The remainder (if any) is banked in state.
      std::int64_t ToWake = Pending < -S ? Pending : -S;
      std::uint64_t Done =
          Q.resumeBatch(static_cast<std::uint64_t>(ToWake), Unit{});
      if (static_cast<std::int64_t>(Done) == ToWake)
        return;
      // SYNC mode rendezvous failures: both sides restart; re-add only the
      // undelivered permits (Listing 12's unlock loop, batched).
      assert(resumptionMode() == ResumptionMode::Sync);
      Pending = ToWake - static_cast<std::int64_t>(Done);
    }
  }

  /// Non-blocking acquire; never touches the CQS. Correct only in the
  /// synchronous resumption mode (see the Figure 9 counterexample).
  bool tryAcquire() {
    assert(resumptionMode() == ResumptionMode::Sync &&
           "tryAcquire() requires ResumptionMode::Sync");
    std::int64_t S = State->load(std::memory_order_acquire);
    while (S > 0) {
      if (State->compare_exchange_weak(S, S - 1, std::memory_order_acq_rel,
                                       std::memory_order_acquire))
        return true;
    }
    return false;
  }

  /// Deadline-bounded acquire: true if a permit was obtained within
  /// \p Timeout. Unlike tryAcquire() this works in *any* resumption mode —
  /// the timeout path is a smart cancellation that hands the reservation
  /// back via onCancellation(), and when a release() beats the cancel to
  /// the result word the permit is ours and we report success (see
  /// future/TimedAwait.h). A successful call must be paired with exactly
  /// one release(); a failed one owns nothing.
  bool tryAcquireFor(std::chrono::nanoseconds Timeout) {
    FutureType F = acquire();
    return timedAwait(F, Timeout).has_value();
  }

  /// Permits currently available (non-positive while waiters exist).
  std::int64_t availablePermits() const {
    return State->load(std::memory_order_acquire);
  }

  ResumptionMode resumptionMode() const { return Q.resumptionModeForTesting(); }

private:
  /// Listing 16's onCancellation(): give the reservation back; refuse the
  /// incoming release() if it already re-created a permit.
  bool onCancellation() override {
    std::int64_t S = State->fetch_add(1, std::memory_order_acq_rel);
    return S < 0;
  }

  /// The permit went back into `state` inside onCancellation(), so the
  /// refused release() has nothing left to do.
  void completeRefusedResume(Unit) override {}

  CqsType Q;
  CachePadded<Atomic<std::int64_t>> State;
  [[maybe_unused]] const std::int64_t MaxPermits;
};

using Semaphore = BasicSemaphore<>;

} // namespace cqs

#endif // CQS_SYNC_SEMAPHORE_H
