//===- sync/Mutex.h - fair abortable mutex over CQS ------------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mutex the paper uses as its running example (Listings 2/4/12).
/// Section 4.3 observes the semaphore generalizes it: "we equate its
/// implementation with K = 1 permits as mutual exclusion", which is exactly
/// what this thin wrapper does, with the lock()/unlock()/tryLock() naming.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SYNC_MUTEX_H
#define CQS_SYNC_MUTEX_H

#include "sync/Semaphore.h"

namespace cqs {

/// Fair, abortable mutex. lock() returns a Future<Unit> that completes when
/// the lock is held; cancel() aborts a pending lock request.
template <unsigned SegmentSize = 16> class BasicMutex {
public:
  using FutureType = typename BasicSemaphore<SegmentSize>::FutureType;

  /// \p RMode must be ResumptionMode::Sync for tryLock() to be usable.
  explicit BasicMutex(ResumptionMode RMode = ResumptionMode::Async)
      : Sem(1, RMode) {}

  /// Acquires the lock, suspending in FIFO order if it is held.
  FutureType lock() { return Sem.acquire(); }

  /// Releases the lock, passing it to the longest-waiting lock() if any.
  void unlock() { Sem.release(); }

  /// Acquires the lock only if it is free right now (Listing 12; requires
  /// the synchronous resumption mode).
  bool tryLock() { return Sem.tryAcquire(); }

  /// Deadline-bounded lock: true if the lock was obtained within
  /// \p Timeout, in which case the caller must unlock(). Works in any
  /// resumption mode (unlike tryLock) — see Semaphore::tryAcquireFor.
  bool tryLockFor(std::chrono::nanoseconds Timeout) {
    return Sem.tryAcquireFor(Timeout);
  }

  /// True if the mutex is currently held by someone.
  bool isLocked() const { return Sem.availablePermits() <= 0; }

private:
  BasicSemaphore<SegmentSize> Sem;
};

using Mutex = BasicMutex<>;

} // namespace cqs

#endif // CQS_SYNC_MUTEX_H
