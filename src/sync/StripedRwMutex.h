//===- sync/StripedRwMutex.h - striped-reader rw mutex ---------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Contention-scaling reader/writer lock in the BRAVO / InnoDB sync-array
/// family (SNIPPETS.md snippets 1-2): readers fetch-add a per-stripe
/// counter (one cacheline per stripe, threads hashed by
/// support/Striping.h) so a read-heavy workload never bounces a shared
/// line; the writer raises a barrier flag and *sweeps* the stripes,
/// spin-then-parking until every reader count drains — the
/// SYNC_SPIN_ROUNDS pattern, with the spin budget adapted from observed
/// drain latency (support/SpinTuning.h) instead of a compile-time
/// constant.
///
/// Structure:
///  - Readers[stripe]: active-reader count per stripe (alignas'd);
///  - WriterPresent: the barrier word; readers that see it set back their
///    increment out and park on this word (futex) until the writer phase
///    ends;
///  - SweepEpoch: doorbell the readers ring when they decrement while a
///    writer is present, waking the sweeping writer;
///  - WriterMu: a CQS mutex serializing writers — writer-vs-writer keeps
///    the paper's FIFO fairness and abortable (deadline-bounded) waiting.
///
/// The reader/writer race is a Dekker pair over seq_cst: a reader
/// increments its stripe *then* loads WriterPresent; the writer stores
/// WriterPresent *then* loads the stripes. Whichever order the total
/// order picks, either the reader observes the barrier (and backs out) or
/// the writer observes the reader's increment (and waits for it).
///
/// Trade-offs versus sync/RwMutex.h (the paper-faithful variant), spelled
/// out in DESIGN.md §9:
///  - readers are *not* FIFO with respect to writers: a continuous writer
///    stream can starve readers (writers among themselves stay FIFO via
///    WriterMu). The plain RwMutex keeps full queue fairness — pick by
///    workload;
///  - shared locks must be released on the locking thread (the stripe is
///    the thread's); the plain variant has no such requirement;
///  - reader acquisition returns void / bool, not an abortable future —
///    abortability for readers is via the deadline variant only.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SYNC_STRIPEDRWMUTEX_H
#define CQS_SYNC_STRIPEDRWMUTEX_H

#include "future/TimedAwait.h"
#include "support/Backoff.h"
#include "support/CacheLine.h"
#include "support/Futex.h"
#include "support/SpinTuning.h"
#include "support/Striping.h"
#include "sync/Mutex.h"

#include "support/Atomic.h"
#include <cassert>
#include <chrono>
#include <cstdint>

namespace cqs {

/// Reader-striped rw mutex; writers sweep, readers stay core-local.
template <unsigned SegmentSize = 16>
class BasicStripedRwMutex {
public:
  /// \p Stripes (rounded up to a power of two, clamped to MaxStripes)
  /// defaults to the host's stripe count; tests pass an explicit count
  /// for determinism.
  explicit BasicStripedRwMutex(unsigned Stripes = 0)
      : WriterMu(ResumptionMode::Async),
        NumStripes(Stripes ? roundUpPow2Stripes(Stripes)
                           : defaultStripeCount()) {}

  /// Shared (reader) lock. Fast path: one fetch-add on the caller's
  /// stripe plus one load of the barrier word.
  void lockShared() {
    [[maybe_unused]] bool Ok = lockSharedDeadline(Deadline::forever());
    assert(Ok && "unbounded lockShared cannot time out");
  }

  /// Deadline-bounded shared lock: true iff acquired within \p Timeout.
  bool tryLockSharedFor(std::chrono::nanoseconds Timeout) {
    return lockSharedDeadline(Deadline::after(Timeout));
  }

  /// Releases a shared lock. Must run on the thread that acquired it
  /// (the stripe is the thread's); rings the sweeping writer if one is
  /// mid-drain.
  void unlockShared() {
    Stripe &St = Stripes[myStripe()];
    [[maybe_unused]] std::int64_t Prev =
        St.Readers.fetch_sub(1, std::memory_order_seq_cst);
    assert(Prev > 0 && "unlockShared without a shared lock on this thread");
    if (WriterPresent->load(std::memory_order_seq_cst) != 0)
      ringSweep();
  }

  /// Exclusive (writer) lock: FIFO among writers (CQS mutex), then the
  /// barrier + stripe sweep against readers.
  void lock() {
    auto F = WriterMu.lock();
    [[maybe_unused]] auto R = F.blockingGet();
    assert(R.has_value() && "uncancelled lock future must complete");
    [[maybe_unused]] bool Ok = sweepReaders(Deadline::forever());
    assert(Ok && "unbounded sweep cannot time out");
  }

  /// Deadline-bounded exclusive lock. On timeout the barrier is rolled
  /// back (parked readers are released) and the writer mutex is freed.
  bool tryLockFor(std::chrono::nanoseconds Timeout) {
    Deadline D = Deadline::after(Timeout);
    if (!WriterMu.tryLockFor(Timeout))
      return false;
    if (!sweepReaders(D)) {
      liftBarrier();
      WriterMu.unlock();
      return false;
    }
    return true;
  }

  /// Releases the exclusive lock: lifts the barrier (waking parked
  /// readers), then hands the writer mutex to the next writer in FIFO
  /// order.
  void unlock() {
    liftBarrier();
    WriterMu.unlock();
  }

  unsigned stripeCountForTesting() const { return NumStripes; }

  /// Sum of the stripe counts; exact at quiescence, racy under traffic.
  std::int64_t activeReadersForTesting() const {
    std::int64_t N = 0;
    for (unsigned I = 0; I < NumStripes; ++I)
      N += Stripes[I].Readers.load(std::memory_order_seq_cst);
    return N;
  }

private:
  struct alignas(CacheLineSize) Stripe {
    Atomic<std::int64_t> Readers{0};
  };

  /// Tiny deadline helper so the forever and timed paths share one
  /// implementation without paying clock reads in the unbounded case.
  struct Deadline {
    bool Bounded;
    std::chrono::steady_clock::time_point At;
    static Deadline forever() { return {false, {}}; }
    static Deadline after(std::chrono::nanoseconds T) {
      return {true, std::chrono::steady_clock::now() + T};
    }
    /// Remaining budget; <= 0 means expired (only for bounded deadlines).
    std::chrono::nanoseconds remaining() const {
      return std::chrono::duration_cast<std::chrono::nanoseconds>(
          At - std::chrono::steady_clock::now());
    }
  };

  unsigned myStripe() const { return currentStripe(NumStripes); }

  bool lockSharedDeadline(const Deadline &D) {
    Stripe &St = Stripes[myStripe()];
    for (;;) {
      // Dekker: publish the increment, then check the barrier.
      St.Readers.fetch_add(1, std::memory_order_seq_cst);
      if (WriterPresent->load(std::memory_order_seq_cst) == 0)
        return true; // granted; the sweeping writer (if any) sees us
      // Barrier up: back out and ring, in case the sweep already counted
      // our transient increment.
      St.Readers.fetch_sub(1, std::memory_order_seq_cst);
      ringSweep();
      // Wait for the writer phase to end, then retry. Successive writers
      // hand the mutex FIFO among themselves; readers re-race at each
      // barrier drop (the documented reader-starvation trade-off).
      Backoff B;
      while (WriterPresent->load(std::memory_order_seq_cst) != 0) {
        if (!B.isYielding()) {
          B.pause();
          continue;
        }
        std::chrono::nanoseconds Wait = std::chrono::nanoseconds(-1);
        if (D.Bounded) {
          Wait = D.remaining();
          if (Wait.count() <= 0)
            return false;
        }
        futexWait(*WriterPresent, 1, Wait);
      }
    }
  }

  /// Raises the barrier and drains every stripe: the SYNC_SPIN_ROUNDS
  /// spin-then-park sweep, with the budget adapting to how long readers
  /// actually take to drain on this host/workload.
  bool sweepReaders(const Deadline &D) {
    WriterPresent->store(1, std::memory_order_seq_cst);
#if defined(CQS_SCHEDCHECK) && CQS_SCHEDCHECK
    // Under the model the spin phase only multiplies the schedule space
    // with equivalent executions (same as futexSpinThenWait): modelled
    // threads go straight to the parking protocol, whose loads are the
    // schedule points the explorer needs.
    const bool Spin = !sc::inModelledThread();
#else
    constexpr bool Spin = true;
#endif
    for (;;) {
      if (Spin) {
        const std::uint32_t Rounds = SweepBudget.rounds();
        for (std::uint32_t T = 0; T < Rounds; ++T) {
          if (stripesClear()) {
            SweepBudget.recordSpinHit();
            return true;
          }
          cpuRelax();
        }
        SweepBudget.recordPark();
      }
      // Park on the doorbell. Register in SweepParked first (Dekker with
      // ringSweep: either we see the decrement on re-check, or the
      // decrementer sees our registration and wakes us).
      SweepParked->store(1, std::memory_order_seq_cst);
      std::uint32_t Epoch = SweepEpoch->load(std::memory_order_seq_cst);
      if (stripesClear()) {
        SweepParked->store(0, std::memory_order_seq_cst);
        return true;
      }
      std::chrono::nanoseconds Wait = std::chrono::nanoseconds(-1);
      if (D.Bounded) {
        Wait = D.remaining();
        if (Wait.count() <= 0) {
          SweepParked->store(0, std::memory_order_seq_cst);
          return false;
        }
      }
      futexWait(*SweepEpoch, Epoch, Wait);
      SweepParked->store(0, std::memory_order_seq_cst);
    }
  }

  bool stripesClear() const {
    for (unsigned I = 0; I < NumStripes; ++I)
      if (Stripes[I].Readers.load(std::memory_order_seq_cst) != 0)
        return false;
    return true;
  }

  /// Reader-side doorbell: bump the epoch; wake the writer only if it
  /// registered as parked (skips the syscall on the spin-success path).
  void ringSweep() {
    SweepEpoch->fetch_add(1, std::memory_order_seq_cst);
    if (SweepParked->load(std::memory_order_seq_cst) != 0)
      futexWakeAll(*SweepEpoch);
  }

  void liftBarrier() {
    WriterPresent->store(0, std::memory_order_seq_cst);
    futexWakeAll(*WriterPresent); // release the parked readers
  }

  BasicMutex<SegmentSize> WriterMu;
  const unsigned NumStripes;
  Stripe Stripes[MaxStripes];
  CachePadded<Atomic<std::uint32_t>> WriterPresent{0};
  CachePadded<Atomic<std::uint32_t>> SweepEpoch{0};
  CachePadded<Atomic<std::uint32_t>> SweepParked{0};
  AdaptiveSpinBudget SweepBudget;
};

using StripedRwMutex = BasicStripedRwMutex<>;

} // namespace cqs

#endif // CQS_SYNC_STRIPEDRWMUTEX_H
