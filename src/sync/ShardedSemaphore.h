//===- sync/ShardedSemaphore.h - sharded permit caches over CQS -*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Contention-scaling variant of the Section 4.3 semaphore. The plain
/// BasicSemaphore funnels every acquire/release through one fetch-add
/// cacheline, which becomes the throughput ceiling at high core counts
/// (see bench/scaling_semaphore). Here free permits are cached in
/// per-stripe slots (one cacheline each, threads hashed by
/// support/Striping.h), so the uncontended steady state — each thread
/// acquiring and releasing "its own" permit — touches only its home
/// shard's cacheline:
///
///  - acquire: take from the home shard, then sweep the sibling shards
///    (work-stealing), and only then fall through to the global counter +
///    CQS slow path of the plain semaphore;
///  - release: bank into the home shard when nobody waits, else hand the
///    permit through the global pool so the CQS wakes the first waiter.
///
/// The CQS queue stays the single slow path, so the blocking contract is
/// unchanged: waiters are FIFO, acquires are abortable, and
/// tryAcquireFor() works in any resumption mode via the same smart
/// cancellation protocol as BasicSemaphore (Listing 16).
///
/// The stranded-permit race — release banks into a shard at the very
/// moment an acquirer gives up on the shards and suspends — is closed by
/// a Dekker protocol over the seq_cst order:
///  - the slow acquirer first *registers* as a waiter (global fetch_sub
///    driving state negative), then drains every shard cache back to the
///    global pool;
///  - the releaser first banks its permit in the shard, then re-checks the
///    global state; a registered waiter forces it to take the permit back
///    out and release it globally.
/// Either the drain reclaims the banked permit, or the releaser observes
/// the registration and re-routes — a permit can never sit in a cache
/// while a waiter parks. (Resuming the waiter before its suspend() lands
/// is fine: resume-before-suspend elimination, Section 3.)
///
/// Fairness trade-off (DESIGN.md §9): the shard fast path is a barging
/// path, but barging is only possible while *no* waiter is registered —
/// where FIFO is vacuous. The moment anyone registers, the caches drain
/// and stay effectively empty (every banked permit is reclaimed by the
/// releaser's re-check), so all traffic flows through the fair global/CQS
/// path until the queue empties again.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SYNC_SHARDEDSEMAPHORE_H
#define CQS_SYNC_SHARDEDSEMAPHORE_H

#include "core/Cqs.h"
#include "future/Future.h"
#include "future/TimedAwait.h"
#include "support/CacheLine.h"
#include "support/Striping.h"

#include "support/Atomic.h"
#include <cassert>
#include <chrono>
#include <cstdint>

namespace cqs {

/// Fair-when-contended counting semaphore with per-stripe permit caches.
template <unsigned SegmentSize = 16>
class BasicShardedSemaphore
    : private Cqs<Unit, ValueTraits<Unit>,
                  SegmentSize>::SmartCancellationHandler {
public:
  using CqsType = Cqs<Unit, ValueTraits<Unit>, SegmentSize>;
  using FutureType = typename CqsType::FutureType;

  /// \p Shards (rounded up to a power of two, clamped to MaxStripes)
  /// defaults to the host's stripe count; tests pass an explicit count for
  /// determinism. Each shard caches at most Permits/Shards permits (min
  /// 1), so a single cache can never absorb the whole pool.
  explicit BasicShardedSemaphore(std::int64_t Permits, unsigned Shards = 0,
                                 ResumptionMode RMode = ResumptionMode::Async)
      : Q(CancellationMode::Smart, RMode, this), State(Permits),
        MaxPermits(Permits),
        NumShards(Shards ? roundUpPow2Stripes(Shards) : defaultStripeCount()),
        ShardCap(Permits / NumShards > 0 ? Permits / NumShards : 1) {
    assert(Permits >= 1 && "a semaphore needs at least one permit");
  }

  /// Takes a permit. Fast path: the caller's home shard cache, then a
  /// stealing sweep of the siblings. Slow path: the plain semaphore's
  /// global counter + CQS suspend, preceded by a drain of all caches (see
  /// the file comment for the Dekker argument).
  FutureType acquire() {
    if (takeFromShard(Shards[homeShard()]))
      return FutureType::immediate(Unit{});
    if (stealFromSiblings())
      return FutureType::immediate(Unit{});
    bump(shardStats().Misses);
    for (;;) {
      std::int64_t S = State->fetch_sub(1, std::memory_order_seq_cst);
      if (S > 0)
        return FutureType::immediate(Unit{});
      // Registered as a waiter (state < 0); now reclaim every cached
      // permit so none can sit idle while we park. Any permit drained
      // here is released globally and may well resume *us* before our
      // suspend() lands — resume-before-suspend elimination handles that.
      drainShards();
      FutureType F = Q.suspend();
      if (F.valid())
        return F;
      // SYNC mode: our cell was broken by a rendezvous timeout; restart.
      assert(resumptionMode() == ResumptionMode::Sync);
    }
  }

  /// Returns a permit. Banks it in the home shard when no waiter is
  /// registered; hands it through the global pool (waking the first
  /// waiter) otherwise.
  void release() {
    if (State->load(std::memory_order_seq_cst) < 0) {
      globalRelease(1); // waiters queued: FIFO hand-off through the CQS
      return;
    }
    Shard &Sh = Shards[homeShard()];
    if (putToShard(Sh)) {
      bump(shardStats().Puts);
      // Dekker re-check: an acquirer may have registered between our load
      // and the put. Reclaim the permit so it cannot be stranded in the
      // cache while that waiter parks (its own drain may already have
      // taken it — then there is nothing to reclaim).
      if (State->load(std::memory_order_seq_cst) < 0 && takeRawFromShard(Sh))
        globalRelease(1);
      return;
    }
    globalRelease(1); // home cache full: bank globally
  }

  /// Batched release: \p N permits, one global counter update and one
  /// batched CQS traversal. Goes straight to the global pool — batches
  /// matter when waiters are queued, and the fair path is what wakes them.
  void release(std::int64_t N) {
    assert(N > 0 && "release(n) takes a positive permit count");
    globalRelease(N);
  }

  /// Non-blocking acquire from the caches or the global counter. Correct
  /// only in the synchronous resumption mode (as BasicSemaphore). The
  /// stealing sweep visits every cache before giving up, so a false
  /// return means every permit was held or in flight at some point during
  /// the call — no permit can hide from tryAcquire in a remote cache.
  bool tryAcquire() {
    assert(resumptionMode() == ResumptionMode::Sync &&
           "tryAcquire() requires ResumptionMode::Sync");
    if (takeFromShard(Shards[homeShard()]) || stealFromSiblings())
      return true;
    std::int64_t S = State->load(std::memory_order_seq_cst);
    while (S > 0) {
      if (State->compare_exchange_weak(S, S - 1, std::memory_order_seq_cst,
                                       std::memory_order_seq_cst))
        return true;
    }
    return false;
  }

  /// Deadline-bounded acquire; works in any resumption mode (same smart
  /// cancellation protocol as BasicSemaphore::tryAcquireFor).
  bool tryAcquireFor(std::chrono::nanoseconds Timeout) {
    FutureType F = acquire();
    return timedAwait(F, Timeout).has_value();
  }

  /// Global pool balance (non-positive while waiters exist). Cached
  /// permits are *not* included; see totalPermitsForTesting().
  std::int64_t availablePermits() const {
    return State->load(std::memory_order_seq_cst);
  }

  /// Conservation probe: global balance + every cache. Equals the permit
  /// count minus held permits at quiescence; racy during traffic.
  std::int64_t totalPermitsForTesting() const {
    std::int64_t T = State->load(std::memory_order_seq_cst);
    for (unsigned I = 0; I < NumShards; ++I)
      T += Shards[I].Cache.load(std::memory_order_seq_cst);
    return T;
  }

  unsigned shardCountForTesting() const { return NumShards; }
  std::int64_t shardCapForTesting() const { return ShardCap; }

  ResumptionMode resumptionMode() const {
    return Q.resumptionModeForTesting();
  }

private:
  /// One permit cache per stripe, padded so shards never share a line.
  struct alignas(CacheLineSize) Shard {
    Atomic<std::int64_t> Cache{0};
  };

  unsigned homeShard() const { return currentStripe(NumShards); }

  /// Fast take; seq_cst so the drain/put Dekker reasoning can treat every
  /// shard access as part of one total order.
  bool takeFromShard(Shard &Sh) {
    if (!takeRawFromShard(Sh))
      return false;
    bump(shardStats().Hits);
    return true;
  }

  bool takeRawFromShard(Shard &Sh) {
    std::int64_t C = Sh.Cache.load(std::memory_order_seq_cst);
    while (C > 0) {
      if (Sh.Cache.compare_exchange_weak(C, C - 1,
                                         std::memory_order_seq_cst,
                                         std::memory_order_seq_cst))
        return true;
    }
    return false;
  }

  bool putToShard(Shard &Sh) {
    std::int64_t C = Sh.Cache.load(std::memory_order_seq_cst);
    while (C < ShardCap) {
      if (Sh.Cache.compare_exchange_weak(C, C + 1,
                                         std::memory_order_seq_cst,
                                         std::memory_order_seq_cst))
        return true;
    }
    return false;
  }

  /// Work-stealing sweep of the sibling caches, starting after home.
  bool stealFromSiblings() {
    unsigned Home = homeShard();
    for (unsigned I = 1; I < NumShards; ++I) {
      if (takeFromShard(Shards[(Home + I) & (NumShards - 1)]))
        return true;
    }
    return false;
  }

  /// Empties every cache into the global pool. Called by a registered
  /// waiter; the released permits wake waiters (possibly the caller).
  void drainShards() {
    std::int64_t Total = 0;
    for (unsigned I = 0; I < NumShards; ++I)
      Total += Shards[I].Cache.exchange(0, std::memory_order_seq_cst);
    if (Total == 0)
      return;
    shardStats().Rebalances.fetch_add(static_cast<std::uint64_t>(Total),
                                      std::memory_order_relaxed);
    globalRelease(Total);
  }

  /// The plain semaphore's release protocol, batched (Listing 16 +
  /// resumeBatch).
  void globalRelease(std::int64_t N) {
    std::int64_t Pending = N;
    for (;;) {
      [[maybe_unused]] std::int64_t S =
          State->fetch_add(Pending, std::memory_order_seq_cst);
      assert(S + Pending <= MaxPermits &&
             "release without a matching acquire");
      if (S >= 0)
        return;
      std::int64_t ToWake = Pending < -S ? Pending : -S;
      std::uint64_t Done =
          Q.resumeBatch(static_cast<std::uint64_t>(ToWake), Unit{});
      if (static_cast<std::int64_t>(Done) == ToWake)
        return;
      assert(resumptionMode() == ResumptionMode::Sync);
      Pending = ToWake - static_cast<std::int64_t>(Done);
    }
  }

  /// Listing 16's onCancellation(): return the reservation to the global
  /// pool; refuse the incoming resume if it already re-created a permit.
  bool onCancellation() override {
    std::int64_t S = State->fetch_add(1, std::memory_order_seq_cst);
    return S < 0;
  }

  void completeRefusedResume(Unit) override {}

  CqsType Q;
  CachePadded<Atomic<std::int64_t>> State;
  [[maybe_unused]] const std::int64_t MaxPermits;
  const unsigned NumShards;
  const std::int64_t ShardCap;
  Shard Shards[MaxStripes];
};

using ShardedSemaphore = BasicShardedSemaphore<>;

} // namespace cqs

#endif // CQS_SYNC_SHARDEDSEMAPHORE_H
