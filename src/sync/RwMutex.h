//===- sync/RwMutex.h - fair abortable readers-writer lock -----*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fair, abortable readers-writer lock built on two CQS queues — the
/// primitive the paper names as the motivation for *smart* cancellation
/// (Section 3.1: "a reader takes the lock, a writer suspends, another
/// reader suspends behind it; the writer aborts — the reader must wake up
/// immediately") and as future work (Section 7: "CQS could serve as a basis
/// for ... fair readers-writer locks").
///
/// Design: one 64-bit state word packs
///   AR — active readers,           WA — writer-active flag,
///   WR — waiting readers,          WW — waiting writers,
/// updated by CAS transitions; suspended readers and writers park in two
/// separate CQS instances with smart cancellation.
///
///  - readLock():  immediate iff no active/waiting writer; else WR++ and
///    suspend in the readers queue (writers are not starved by read bursts).
///  - writeLock(): immediate iff the lock is entirely free; else WW++ and
///    suspend in the writers queue.
///  - readUnlock(): when the last reader leaves and writers wait, hand the
///    lock to one writer (WW--, WA=1, resume).
///  - writeUnlock(): phase-fair alternation — release the whole waiting
///    reader cohort if any (AR+=WR, WR=0, WR resumes), else the next
///    writer, else free the lock.
///
/// Cancellation follows the semaphore pattern: onCancellation() deregisters
/// one waiter from the counts, refusing when an in-flight resume already
/// claimed it; a refused resume releases the already-granted lock through
/// the normal unlock path. Crucially, when the *last* waiting writer
/// aborts, its cancellation handler immediately releases the waiting
/// readers — the exact scenario the simple mode cannot express.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SYNC_RWMUTEX_H
#define CQS_SYNC_RWMUTEX_H

#include "core/Cqs.h"
#include "future/Future.h"
#include "future/TimedAwait.h"
#include "support/CacheLine.h"

#include "support/Atomic.h"
#include <cassert>
#include <chrono>
#include <cstdint>

namespace cqs {

/// Fair, abortable readers-writer lock.
template <unsigned SegmentSize = 16> class BasicRwMutex {
  /// State word layout (16 bits per counter keeps transitions one CAS).
  static constexpr unsigned ArShift = 0;  ///< active readers
  static constexpr unsigned WrShift = 16; ///< waiting readers
  static constexpr unsigned WwShift = 32; ///< waiting writers
  static constexpr std::uint64_t WaBit = 1ull << 48; ///< writer active
  static constexpr std::uint64_t FieldMask = 0xffff;

  static std::uint64_t ar(std::uint64_t S) {
    return (S >> ArShift) & FieldMask;
  }
  static std::uint64_t wr(std::uint64_t S) {
    return (S >> WrShift) & FieldMask;
  }
  static std::uint64_t ww(std::uint64_t S) {
    return (S >> WwShift) & FieldMask;
  }
  static bool wa(std::uint64_t S) { return (S & WaBit) != 0; }

  static constexpr std::uint64_t OneAr = 1ull << ArShift;
  static constexpr std::uint64_t OneWr = 1ull << WrShift;
  static constexpr std::uint64_t OneWw = 1ull << WwShift;

public:
  using CqsType = Cqs<Unit, ValueTraits<Unit>, SegmentSize>;
  using FutureType = typename CqsType::FutureType;

  BasicRwMutex()
      : ReadersHandler(*this), WritersHandler(*this),
        Readers(CancellationMode::Smart, ResumptionMode::Async,
                &ReadersHandler),
        Writers(CancellationMode::Smart, ResumptionMode::Async,
                &WritersHandler) {}

  /// Acquires a read (shared) lock. The returned future completes when the
  /// lock is held; cancel() aborts waiting.
  FutureType readLock() {
    std::uint64_t S = State->load(std::memory_order_acquire);
    for (;;) {
      if (!wa(S) && ww(S) == 0) {
        // No writer active or queued: join the reader cohort directly.
        if (State->compare_exchange_weak(S, S + OneAr,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire))
          return FutureType::immediate(Unit{});
        continue;
      }
      if (State->compare_exchange_weak(S, S + OneWr,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire))
        return Readers.suspend();
    }
  }

  /// Releases a read lock; the last leaving reader hands over to a waiting
  /// writer (or, defensively, releases a stranded reader cohort).
  void readUnlock() {
    std::uint64_t S = State->load(std::memory_order_acquire);
    for (;;) {
      assert(ar(S) > 0 && "readUnlock() without a read lock");
      if (ar(S) == 1 && ww(S) > 0) {
        // Hand the lock to one writer in a single transition.
        std::uint64_t Next = (S - OneAr - OneWw) | WaBit;
        if (!State->compare_exchange_weak(S, Next,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire))
          continue;
        [[maybe_unused]] bool Ok = Writers.resume(Unit{});
        assert(Ok && "smart/async resume cannot fail");
        return;
      }
      if (ar(S) == 1 && ww(S) == 0 && wr(S) > 0) {
        // No writer remains (it aborted between these readers suspending
        // and us leaving): admit the waiting cohort instead of stranding
        // it. Unreachable while writer-cancellation converts eagerly, but
        // kept as a defensive second line for the liveness invariant
        // "waiting readers imply an active/waiting writer".
        std::uint64_t Cohort = wr(S);
        std::uint64_t Next =
            (S - OneAr - Cohort * OneWr) + Cohort * OneAr;
        if (!State->compare_exchange_weak(S, Next,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire))
          continue;
        for (std::uint64_t I = 0; I < Cohort; ++I)
          (void)Readers.resume(Unit{});
        return;
      }
      if (State->compare_exchange_weak(S, S - OneAr,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire))
        return;
    }
  }

  /// Acquires the write (exclusive) lock.
  FutureType writeLock() {
    std::uint64_t S = State->load(std::memory_order_acquire);
    for (;;) {
      if (S == 0) {
        if (State->compare_exchange_weak(S, WaBit,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire))
          return FutureType::immediate(Unit{});
        continue;
      }
      if (State->compare_exchange_weak(S, S + OneWw,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire))
        return Writers.suspend();
    }
  }

  /// Releases the write lock: waiting readers (the whole cohort) go first,
  /// then the next writer, else the lock becomes free.
  void writeUnlock() {
    std::uint64_t S = State->load(std::memory_order_acquire);
    for (;;) {
      assert(wa(S) && "writeUnlock() without the write lock");
      if (wr(S) > 0) {
        // Phase change: admit every waiting reader at once.
        std::uint64_t Cohort = wr(S);
        std::uint64_t Next =
            (S & ~WaBit & ~(FieldMask << WrShift)) + Cohort * OneAr;
        if (!State->compare_exchange_weak(S, Next,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire))
          continue;
        for (std::uint64_t I = 0; I < Cohort; ++I) {
          [[maybe_unused]] bool Ok = Readers.resume(Unit{});
          assert(Ok && "smart/async resume cannot fail");
        }
        return;
      }
      if (ww(S) > 0) {
        std::uint64_t Next = S - OneWw; // WA stays set: direct handoff
        if (!State->compare_exchange_weak(S, Next,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire))
          continue;
        [[maybe_unused]] bool Ok = Writers.resume(Unit{});
        assert(Ok && "smart/async resume cannot fail");
        return;
      }
      if (State->compare_exchange_weak(S, S & ~WaBit,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire))
        return;
    }
  }

  /// Deadline-bounded read lock: true if the shared lock was obtained
  /// within \p Timeout (pair with readUnlock()). The timeout path is a
  /// smart cancellation that deregisters the waiting reader; when a cohort
  /// release beats the cancel, the grant is a live read lock and is kept —
  /// success is reported instead of a leak (future/TimedAwait.h).
  bool tryLockSharedFor(std::chrono::nanoseconds Timeout) {
    FutureType F = readLock();
    return timedAwait(F, Timeout).has_value();
  }

  /// Deadline-bounded write lock: true if the exclusive lock was obtained
  /// within \p Timeout (pair with writeUnlock()). When the aborting writer
  /// was the last one queued, its cancellation immediately releases any
  /// waiting readers (the Section 3.1 scenario) — a timed-out writeLock
  /// never strands the reader cohort.
  bool tryLockFor(std::chrono::nanoseconds Timeout) {
    FutureType F = writeLock();
    return timedAwait(F, Timeout).has_value();
  }

  /// Diagnostics (racy snapshots).
  std::uint64_t activeReadersForTesting() const {
    return ar(State->load(std::memory_order_acquire));
  }
  bool writerActiveForTesting() const {
    return wa(State->load(std::memory_order_acquire));
  }
  std::uint64_t waitingWritersForTesting() const {
    return ww(State->load(std::memory_order_acquire));
  }
  std::uint64_t waitingReadersForTesting() const {
    return wr(State->load(std::memory_order_acquire));
  }

private:
  /// Cancellation of a waiting reader: deregister it, or refuse when a
  /// writeUnlock() already converted the cohort (WR hit 0) — the refused
  /// grant is a live read lock and is released as such.
  struct ReadersCancellation : CqsType::SmartCancellationHandler {
    explicit ReadersCancellation(BasicRwMutex &Rw) : Rw(Rw) {}

    bool onCancellation() override {
      std::uint64_t S = Rw.State->load(std::memory_order_acquire);
      for (;;) {
        if (wr(S) == 0)
          return false; // grant already in flight: refuse it
        if (Rw.State->compare_exchange_weak(S, S - OneWr,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire))
          return true;
      }
    }

    void completeRefusedResume(Unit) override { Rw.readUnlock(); }

    BasicRwMutex &Rw;
  };

  /// Cancellation of a waiting writer: deregister it; when the *last*
  /// waiting writer aborts while no writer is active, immediately admit the
  /// waiting readers (the Section 3.1 scenario). Refuse when a handoff is
  /// already in flight, releasing the granted write lock.
  struct WritersCancellation : CqsType::SmartCancellationHandler {
    explicit WritersCancellation(BasicRwMutex &Rw) : Rw(Rw) {}

    bool onCancellation() override {
      std::uint64_t S = Rw.State->load(std::memory_order_acquire);
      for (;;) {
        if (ww(S) == 0)
          return false; // handoff already in flight: refuse it
        if (ww(S) == 1 && !wa(S) && wr(S) > 0) {
          // The aborting writer was the only remaining one and no writer
          // is active: the readers it was blocking must wake *now* — this
          // is exactly the Section 3.1 scenario. They join any already
          // active readers.
          std::uint64_t Cohort = wr(S);
          std::uint64_t Next =
              (S - OneWw - Cohort * OneWr) + Cohort * OneAr;
          if (!Rw.State->compare_exchange_weak(S, Next,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire))
            continue;
          for (std::uint64_t I = 0; I < Cohort; ++I)
            (void)Rw.Readers.resume(Unit{});
          return true;
        }
        if (Rw.State->compare_exchange_weak(S, S - OneWw,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire))
          return true;
      }
    }

    void completeRefusedResume(Unit) override { Rw.writeUnlock(); }

    BasicRwMutex &Rw;
  };

  ReadersCancellation ReadersHandler;
  WritersCancellation WritersHandler;
  CqsType Readers;
  CqsType Writers;
  CachePadded<Atomic<std::uint64_t>> State{0};
};

using RwMutex = BasicRwMutex<>;

} // namespace cqs

#endif // CQS_SYNC_RWMUTEX_H
