//===- sync/Guards.h - RAII guards for CQS locks ---------------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scope guards in the std::lock_guard idiom for the CQS primitives. The
/// guards park the calling thread (blockingGet) — coroutine code should
/// keep using awaitFuture + explicit unlock, since a coroutine must not
/// block its worker.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SYNC_GUARDS_H
#define CQS_SYNC_GUARDS_H

#include "sync/Mutex.h"
#include "sync/RwMutex.h"
#include "sync/Semaphore.h"

#include <cassert>

namespace cqs {

/// Holds a mutex for the scope: `LockGuard G(Mtx);`.
template <unsigned SegmentSize = 16> class BasicLockGuard {
public:
  explicit BasicLockGuard(BasicMutex<SegmentSize> &M) : M(M) {
    [[maybe_unused]] auto Grant = M.lock().blockingGet();
    assert(Grant.has_value() && "nobody may cancel a guard's lock request");
  }
  ~BasicLockGuard() { M.unlock(); }

  BasicLockGuard(const BasicLockGuard &) = delete;
  BasicLockGuard &operator=(const BasicLockGuard &) = delete;

private:
  BasicMutex<SegmentSize> &M;
};

/// Holds one semaphore permit for the scope.
template <unsigned SegmentSize = 16> class BasicPermitGuard {
public:
  explicit BasicPermitGuard(BasicSemaphore<SegmentSize> &S) : S(S) {
    [[maybe_unused]] auto Grant = S.acquire().blockingGet();
    assert(Grant.has_value() &&
           "nobody may cancel a guard's acquire request");
  }
  ~BasicPermitGuard() { S.release(); }

  BasicPermitGuard(const BasicPermitGuard &) = delete;
  BasicPermitGuard &operator=(const BasicPermitGuard &) = delete;

private:
  BasicSemaphore<SegmentSize> &S;
};

/// Holds a shared (read) lock for the scope.
template <unsigned SegmentSize = 16> class BasicReadGuard {
public:
  explicit BasicReadGuard(BasicRwMutex<SegmentSize> &Rw) : Rw(Rw) {
    [[maybe_unused]] auto Grant = Rw.readLock().blockingGet();
    assert(Grant.has_value() &&
           "nobody may cancel a guard's readLock request");
  }
  ~BasicReadGuard() { Rw.readUnlock(); }

  BasicReadGuard(const BasicReadGuard &) = delete;
  BasicReadGuard &operator=(const BasicReadGuard &) = delete;

private:
  BasicRwMutex<SegmentSize> &Rw;
};

/// Holds the exclusive (write) lock for the scope.
template <unsigned SegmentSize = 16> class BasicWriteGuard {
public:
  explicit BasicWriteGuard(BasicRwMutex<SegmentSize> &Rw) : Rw(Rw) {
    [[maybe_unused]] auto Grant = Rw.writeLock().blockingGet();
    assert(Grant.has_value() &&
           "nobody may cancel a guard's writeLock request");
  }
  ~BasicWriteGuard() { Rw.writeUnlock(); }

  BasicWriteGuard(const BasicWriteGuard &) = delete;
  BasicWriteGuard &operator=(const BasicWriteGuard &) = delete;

private:
  BasicRwMutex<SegmentSize> &Rw;
};

using LockGuard = BasicLockGuard<>;
using PermitGuard = BasicPermitGuard<>;
using ReadGuard = BasicReadGuard<>;
using WriteGuard = BasicWriteGuard<>;

} // namespace cqs

#endif // CQS_SYNC_GUARDS_H
