//===- sync/Channel.h - buffered & rendezvous channels over CQS -*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded blocking channel — the "synchronous queues" direction the
/// paper names as future work (Section 7), built by composing the CQS
/// machinery this library already provides:
///
///  - one balance counter C: negative = waiting receivers, in [0,Capacity)
///    = buffered items, >= Capacity = senders blocked on backpressure;
///  - a receivers CQS (smart cancellation): receive() suspends when empty;
///  - a senders CQS: send() suspends when the buffer is full, resumed as
///    acknowledgement when a receive drains the balance below capacity;
///  - the infinite-array storage reused from the queue pool, holding the
///    elements themselves (sends enqueue their element immediately, so
///    FIFO order is fixed at send time even for blocked sends).
///
/// Capacity 0 gives a rendezvous (synchronous) channel: every send
/// suspends until a receiver takes its element, every receive suspends
/// until a send supplies one.
///
/// Semantics and honest limitations:
///  - FIFO: elements are received in send order; suspended receivers are
///    served in arrival order.
///  - receive() is fully abortable (smart cancellation; a refused element
///    is re-delivered, never lost).
///  - Cancelling a *suspended send* is not supported: by the time the send
///    suspended, its element is already in the channel; the cancel only
///    abandons the backpressure acknowledgement. (Full bidirectional
///    cancellation requires fusing element and waiter into one cell — the
///    design of the Koval et al. channel paper — and is out of scope.)
///    sendFor() therefore takes the *no-commit* route instead: it never
///    enqueues the element until a slot is known to fit it, parking on a
///    slot-free doorbell between trySend attempts, so a timed-out send
///    provably left nothing in the channel.
///  - Backpressure is counter-matched like the semaphore: each receive
///    that drains the balance below capacity wakes the longest-blocked
///    sender. Identity pairing between a specific element and a specific
///    acknowledgement is not tracked (same caveat family as the paper's
///    pools being "bags with specific heuristics").
///  - Re-delivery of a refused (cancelled-receive) element may transiently
///    exceed Capacity and admit one blocked sender a slot early; elements
///    are still never lost or duplicated.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SYNC_CHANNEL_H
#define CQS_SYNC_CHANNEL_H

#include "core/Cqs.h"
#include "future/Future.h"
#include "future/TimedAwait.h"
#include "support/CacheLine.h"
#include "support/Futex.h"
#include "sync/Pool.h"

#include "support/Atomic.h"
#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <optional>

namespace cqs {

/// Bounded FIFO channel; Capacity 0 makes it a rendezvous channel.
template <typename E, unsigned SegmentSize = 16>
class BufferedChannel
    : private Cqs<E, ValueTraits<E>, SegmentSize>::SmartCancellationHandler {
public:
  using ReceiversCqs = Cqs<E, ValueTraits<E>, SegmentSize>;
  using SendersCqs = Cqs<Unit, ValueTraits<Unit>, SegmentSize>;
  using ReceiveFuture = typename ReceiversCqs::FutureType;
  using SendFuture = typename SendersCqs::FutureType;

  explicit BufferedChannel(std::int64_t Capacity)
      : Receivers(CancellationMode::Smart, ResumptionMode::Async, this),
        Senders(CancellationMode::Simple, ResumptionMode::Async),
        Capacity(Capacity) {
    assert(Capacity >= 0 && "negative channel capacity");
  }

  /// Sends \p V. The element is in the channel (in FIFO position) when
  /// this returns; the future is immediate unless the buffer was full, in
  /// which case it completes when a buffer slot frees up (backpressure).
  SendFuture send(E V) {
    for (;;) {
      std::int64_t S = Balance->fetch_add(1, std::memory_order_acq_rel);
      if (S < 0) {
        // A receiver is waiting: rendezvous directly, no buffering.
        [[maybe_unused]] bool Ok = Receivers.resume(V);
        assert(Ok && "smart/async resume cannot fail");
        return SendFuture::immediate(Unit{});
      }
      if (!Storage.tryInsert(V))
        continue; // a racing receive broke our slot; both restart
      if (S < Capacity)
        return SendFuture::immediate(Unit{});
      // Buffer full: the element is queued but we owe the caller a
      // backpressure wait until a slot frees.
      return Senders.suspend();
    }
  }

  /// Receives the next element in FIFO order, suspending when the channel
  /// is empty. The returned future is abortable.
  ReceiveFuture receive() {
    for (;;) {
      std::int64_t S = Balance->fetch_sub(1, std::memory_order_acq_rel);
      if (S == Capacity)
        ringSlotFree(); // balance dropped below capacity: sendFor can land
      if (S <= 0)
        return Receivers.suspend();
      E V;
      if (!Storage.tryRetrieve(V))
        continue; // the paired send has not inserted yet; restart
      if (S > Capacity) {
        // Draining below the high-water mark frees a slot: acknowledge
        // the longest-blocked sender (counter-matched, like the
        // semaphore: one such receive per blocked send). A false return
        // cannot happen in async mode with never-cancelled senders.
        (void)Senders.resume(Unit{});
      }
      return ReceiveFuture::immediate(V);
    }
  }

  /// Burst send: delivers all \p N elements of \p Vs (in array order,
  /// FIFO) with one balance update and one batched receiver traversal per
  /// round, instead of N independent send() protocols. All elements are
  /// in the channel when this returns; backpressure is honoured by
  /// blocking, after the whole burst is enqueued, for one acknowledgement
  /// per slot claimed beyond Capacity — so a burst into a full buffer
  /// waits exactly as long as N blocking send()s would, but receivers see
  /// the elements immediately.
  void sendBurst(const E *Vs, std::int64_t N) {
    assert(N >= 0 && "negative burst length");
    std::int64_t Overflow = 0; // backpressure acknowledgements owed
    std::int64_t I = 0;
    while (I < N) {
      std::int64_t Remaining = N - I;
      std::int64_t S =
          Balance->fetch_add(Remaining, std::memory_order_acq_rel);
      std::int64_t Direct = S < 0 ? std::min(Remaining, -S) : 0;
      if (Direct > 0) {
        // Direct waiting receivers: hand them their elements in one
        // batched traversal of the receivers queue.
        const E *Base = Vs + I;
        [[maybe_unused]] std::uint64_t Done = Receivers.resumeBatchWith(
            static_cast<std::uint64_t>(Direct),
            [Base](std::uint64_t K) { return Base[K]; });
        assert(static_cast<std::int64_t>(Done) == Direct &&
               "smart/async resume cannot fail");
        I += Direct;
      }
      // The claims at positions max(S, 0) .. S + Remaining - 1 are buffer
      // (or backpressure) slots, one per remaining element.
      for (std::int64_t P = S < 0 ? 0 : S, End = S + Remaining; P < End;
           ++P) {
        if (!Storage.tryInsert(Vs[I]))
          continue; // a racing receive broke this claim; both restart —
                    // the element takes the next claim (or a fresh one
                    // from the outer loop), preserving insertion order
        if (P >= Capacity)
          ++Overflow;
        ++I;
      }
    }
    // Settle the backpressure debt: one suspend per slot claimed beyond
    // Capacity. Receives that drained below the high-water mark in the
    // meantime have already deposited their acknowledgements, which these
    // suspends pick up by elimination (resume-before-suspend).
    for (; Overflow > 0; --Overflow) {
      SendFuture F = Senders.suspend();
      if (F.valid())
        (void)F.blockingGet();
    }
  }

  /// Non-blocking send: delivers \p V iff a receiver waits or the buffer
  /// has room; never incurs the backpressure wait.
  bool trySend(E V) {
    for (;;) {
      std::int64_t S = Balance->load(std::memory_order_acquire);
      if (S >= Capacity)
        return false; // would block
      if (!Balance->compare_exchange_weak(S, S + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire))
        continue;
      if (S < 0) {
        [[maybe_unused]] bool Ok = Receivers.resume(V);
        assert(Ok && "smart/async resume cannot fail");
        return true;
      }
      if (Storage.tryInsert(V))
        return true;
      // Raced with a receive that broke our slot; both restart.
    }
  }

  /// Non-blocking receive: the next element, or std::nullopt when empty.
  std::optional<E> tryReceive() {
    for (;;) {
      std::int64_t S = Balance->load(std::memory_order_acquire);
      if (S <= 0)
        return std::nullopt;
      if (!Balance->compare_exchange_weak(S, S - 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire))
        continue;
      if (S == Capacity)
        ringSlotFree();
      E V;
      if (!Storage.tryRetrieve(V))
        continue; // paired send not inserted yet; retry whole op
      if (S > Capacity)
        (void)Senders.resume(Unit{});
      return V;
    }
  }

  /// Deadline-bounded receive: the next element, or std::nullopt when none
  /// arrived within \p Timeout. A timed-out receive deregisters itself via
  /// smart cancellation; when a send beats the cancel to the result word
  /// the element is consumed and returned, and a refused resume is
  /// re-delivered — either way no element is lost (future/TimedAwait.h).
  std::optional<E> receiveFor(std::chrono::nanoseconds Timeout) {
    ReceiveFuture F = receive();
    return timedAwait(F, Timeout);
  }

  /// Deadline-bounded send: true iff \p V entered the channel (rendezvous
  /// hand-off or buffer slot) within \p Timeout; false means the element
  /// was never in the channel — nothing to roll back. Because cancelling a
  /// *suspended* send is unsupported (see file comment), sendFor never
  /// commits the element up front: it loops on trySend(), parking on the
  /// slot-free doorbell between attempts. Timed senders are therefore not
  /// FIFO-ordered relative to blocked send() callers, whose elements are
  /// already queued and keep their positions.
  bool sendFor(E V, std::chrono::nanoseconds Timeout) {
    if (trySend(V))
      return true;
    TimedWaitStats &TS = timedWaitStats();
    bump(TS.Waits);
    if (Timeout.count() <= 0) {
      bump(TS.Timeouts);
      return false;
    }
    const auto Deadline = std::chrono::steady_clock::now() + Timeout;
    // Dekker pairing with ringSlotFree(): publish the waiter count before
    // sampling the epoch, so either the ringer sees us and wakes, or our
    // epoch sample predates its bump and futexWait refuses to park.
    SendWaiters->fetch_add(1, std::memory_order_seq_cst);
    bool Sent = false;
    for (;;) {
      std::uint32_t Epoch = SlotEpoch->load(std::memory_order_seq_cst);
      if (trySend(V)) {
        Sent = true;
        break;
      }
      auto Now = std::chrono::steady_clock::now();
      if (Now >= Deadline)
        break;
      futexWait(*SlotEpoch, Epoch,
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Deadline - Now));
    }
    SendWaiters->fetch_sub(1, std::memory_order_relaxed);
    if (!Sent)
      bump(TS.Timeouts);
    return Sent;
  }

  /// Buffered elements (negative: waiting receivers; above Capacity:
  /// blocked senders). Racy diagnostic.
  std::int64_t balanceForTesting() const {
    return Balance->load(std::memory_order_acquire);
  }

private:
  /// Cancellation of a waiting receive (the pool pattern): deregister it,
  /// refusing when an incoming send already matched it.
  bool onCancellation() override {
    std::int64_t S = Balance->fetch_add(1, std::memory_order_acq_rel);
    return S < 0;
  }

  /// A refused receive owns an element; re-deliver it without blocking.
  /// Exactly the pool's protocol (Listing 17): the increment that
  /// onCancellation() performed already re-counted the element, so first
  /// try a *bare* insert; only if a racing receive broke that slot does a
  /// full put (with its own increment, pairing the racer's restart) run.
  /// Buffering may transiently exceed Capacity here; that is fine — no
  /// sender waits on this slot (AckNeeded=false).
  void completeRefusedResume(E V) override {
    if (Storage.tryInsert(V))
      return;
    for (;;) {
      std::int64_t S = Balance->fetch_add(1, std::memory_order_acq_rel);
      if (S < 0) {
        (void)Receivers.resume(V);
        return;
      }
      if (Storage.tryInsert(V))
        return;
    }
  }

  /// Doorbell for sendFor(): every balance transition Capacity ->
  /// Capacity-1 — a buffer slot freed, or (rendezvous) a receiver newly
  /// waiting — bumps the epoch and wakes parked timed senders. Bumping
  /// before checking the waiter count is the Dekker mirror of sendFor's
  /// publish-then-sample; the futex revalidates the epoch before parking,
  /// which closes the remaining park-vs-ring race.
  void ringSlotFree() {
    SlotEpoch->fetch_add(1, std::memory_order_seq_cst);
    if (SendWaiters->load(std::memory_order_seq_cst) != 0)
      futexWakeAll(*SlotEpoch);
  }

  ReceiversCqs Receivers;
  SendersCqs Senders;
  QueuePoolStorage<E, SegmentSize> Storage;
  CachePadded<Atomic<std::int64_t>> Balance{0};
  CachePadded<Atomic<std::uint32_t>> SlotEpoch{0};
  CachePadded<Atomic<std::uint32_t>> SendWaiters{0};
  const std::int64_t Capacity;
};

/// Synchronous (rendezvous) channel: send and receive meet pairwise.
template <typename E, unsigned SegmentSize = 16>
class RendezvousChannel : public BufferedChannel<E, SegmentSize> {
public:
  RendezvousChannel() : BufferedChannel<E, SegmentSize>(0) {}
};

} // namespace cqs

#endif // CQS_SYNC_CHANNEL_H
