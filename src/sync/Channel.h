//===- sync/Channel.h - buffered & rendezvous channels over CQS -*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded blocking channel — the "synchronous queues" direction the
/// paper names as future work (Section 7), built by composing the CQS
/// machinery this library already provides:
///
///  - one balance counter C: negative = waiting receivers, in [0,Capacity)
///    = buffered items, >= Capacity = senders blocked on backpressure;
///  - a receivers CQS (smart cancellation): receive() suspends when empty;
///  - a senders CQS: send() suspends when the buffer is full, resumed as
///    acknowledgement when a receive drains the balance below capacity;
///  - the infinite-array storage reused from the queue pool, holding the
///    elements themselves (sends enqueue their element immediately, so
///    FIFO order is fixed at send time even for blocked sends).
///
/// Capacity 0 gives a rendezvous (synchronous) channel: every send
/// suspends until a receiver takes its element, every receive suspends
/// until a send supplies one.
///
/// Semantics and honest limitations:
///  - FIFO: elements are received in send order; suspended receivers are
///    served in arrival order.
///  - receive() is fully abortable (smart cancellation; a refused element
///    is re-delivered, never lost).
///  - Cancelling a *suspended send* is not supported: by the time the send
///    suspended, its element is already in the channel; the cancel only
///    abandons the backpressure acknowledgement. (Full bidirectional
///    cancellation requires fusing element and waiter into one cell — the
///    design of the Koval et al. channel paper — and is out of scope.)
///  - Backpressure is counter-matched like the semaphore: each receive
///    that drains the balance below capacity wakes the longest-blocked
///    sender. Identity pairing between a specific element and a specific
///    acknowledgement is not tracked (same caveat family as the paper's
///    pools being "bags with specific heuristics").
///  - Re-delivery of a refused (cancelled-receive) element may transiently
///    exceed Capacity and admit one blocked sender a slot early; elements
///    are still never lost or duplicated.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SYNC_CHANNEL_H
#define CQS_SYNC_CHANNEL_H

#include "core/Cqs.h"
#include "future/Future.h"
#include "support/CacheLine.h"
#include "sync/Pool.h"

#include "support/Atomic.h"
#include <cassert>
#include <cstdint>
#include <optional>

namespace cqs {

/// Bounded FIFO channel; Capacity 0 makes it a rendezvous channel.
template <typename E, unsigned SegmentSize = 16>
class BufferedChannel
    : private Cqs<E, ValueTraits<E>, SegmentSize>::SmartCancellationHandler {
public:
  using ReceiversCqs = Cqs<E, ValueTraits<E>, SegmentSize>;
  using SendersCqs = Cqs<Unit, ValueTraits<Unit>, SegmentSize>;
  using ReceiveFuture = typename ReceiversCqs::FutureType;
  using SendFuture = typename SendersCqs::FutureType;

  explicit BufferedChannel(std::int64_t Capacity)
      : Receivers(CancellationMode::Smart, ResumptionMode::Async, this),
        Senders(CancellationMode::Simple, ResumptionMode::Async),
        Capacity(Capacity) {
    assert(Capacity >= 0 && "negative channel capacity");
  }

  /// Sends \p V. The element is in the channel (in FIFO position) when
  /// this returns; the future is immediate unless the buffer was full, in
  /// which case it completes when a buffer slot frees up (backpressure).
  SendFuture send(E V) {
    for (;;) {
      std::int64_t S = Balance->fetch_add(1, std::memory_order_acq_rel);
      if (S < 0) {
        // A receiver is waiting: rendezvous directly, no buffering.
        [[maybe_unused]] bool Ok = Receivers.resume(V);
        assert(Ok && "smart/async resume cannot fail");
        return SendFuture::immediate(Unit{});
      }
      if (!Storage.tryInsert(V))
        continue; // a racing receive broke our slot; both restart
      if (S < Capacity)
        return SendFuture::immediate(Unit{});
      // Buffer full: the element is queued but we owe the caller a
      // backpressure wait until a slot frees.
      return Senders.suspend();
    }
  }

  /// Receives the next element in FIFO order, suspending when the channel
  /// is empty. The returned future is abortable.
  ReceiveFuture receive() {
    for (;;) {
      std::int64_t S = Balance->fetch_sub(1, std::memory_order_acq_rel);
      if (S <= 0)
        return Receivers.suspend();
      E V;
      if (!Storage.tryRetrieve(V))
        continue; // the paired send has not inserted yet; restart
      if (S > Capacity) {
        // Draining below the high-water mark frees a slot: acknowledge
        // the longest-blocked sender (counter-matched, like the
        // semaphore: one such receive per blocked send). A false return
        // cannot happen in async mode with never-cancelled senders.
        (void)Senders.resume(Unit{});
      }
      return ReceiveFuture::immediate(V);
    }
  }

  /// Non-blocking send: delivers \p V iff a receiver waits or the buffer
  /// has room; never incurs the backpressure wait.
  bool trySend(E V) {
    for (;;) {
      std::int64_t S = Balance->load(std::memory_order_acquire);
      if (S >= Capacity)
        return false; // would block
      if (!Balance->compare_exchange_weak(S, S + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire))
        continue;
      if (S < 0) {
        [[maybe_unused]] bool Ok = Receivers.resume(V);
        assert(Ok && "smart/async resume cannot fail");
        return true;
      }
      if (Storage.tryInsert(V))
        return true;
      // Raced with a receive that broke our slot; both restart.
    }
  }

  /// Non-blocking receive: the next element, or std::nullopt when empty.
  std::optional<E> tryReceive() {
    for (;;) {
      std::int64_t S = Balance->load(std::memory_order_acquire);
      if (S <= 0)
        return std::nullopt;
      if (!Balance->compare_exchange_weak(S, S - 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire))
        continue;
      E V;
      if (!Storage.tryRetrieve(V))
        continue; // paired send not inserted yet; retry whole op
      if (S > Capacity)
        (void)Senders.resume(Unit{});
      return V;
    }
  }

  /// Buffered elements (negative: waiting receivers; above Capacity:
  /// blocked senders). Racy diagnostic.
  std::int64_t balanceForTesting() const {
    return Balance->load(std::memory_order_acquire);
  }

private:
  /// Cancellation of a waiting receive (the pool pattern): deregister it,
  /// refusing when an incoming send already matched it.
  bool onCancellation() override {
    std::int64_t S = Balance->fetch_add(1, std::memory_order_acq_rel);
    return S < 0;
  }

  /// A refused receive owns an element; re-deliver it without blocking.
  /// Exactly the pool's protocol (Listing 17): the increment that
  /// onCancellation() performed already re-counted the element, so first
  /// try a *bare* insert; only if a racing receive broke that slot does a
  /// full put (with its own increment, pairing the racer's restart) run.
  /// Buffering may transiently exceed Capacity here; that is fine — no
  /// sender waits on this slot (AckNeeded=false).
  void completeRefusedResume(E V) override {
    if (Storage.tryInsert(V))
      return;
    for (;;) {
      std::int64_t S = Balance->fetch_add(1, std::memory_order_acq_rel);
      if (S < 0) {
        (void)Receivers.resume(V);
        return;
      }
      if (Storage.tryInsert(V))
        return;
    }
  }

  ReceiversCqs Receivers;
  SendersCqs Senders;
  QueuePoolStorage<E, SegmentSize> Storage;
  CachePadded<Atomic<std::int64_t>> Balance{0};
  const std::int64_t Capacity;
};

/// Synchronous (rendezvous) channel: send and receive meet pairwise.
template <typename E, unsigned SegmentSize = 16>
class RendezvousChannel : public BufferedChannel<E, SegmentSize> {
public:
  RendezvousChannel() : BufferedChannel<E, SegmentSize>(0) {}
};

} // namespace cqs

#endif // CQS_SYNC_CHANNEL_H
