//===- sync/Pool.h - blocking pools over CQS -------------------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The blocking pools of Section 4.4 / Appendix D.2: a set of shared
/// elements (connections, sockets, ...) with
///   - take():   an element, or suspend until one is put back;
///   - put(e):   hand e to the longest-waiting take(), or store it.
///
/// Listing 17's abstract pool drives a `size` counter (elements if >= 0,
/// negated waiters if < 0) and delegates storage to tryInsert/tryRetrieve,
/// which may fail under put/take races (the failing pair restarts, keeping
/// the counter balanced). Two storages from Listing 18 are provided:
///   - QueueStorage: an infinite array (reusing the CQS segment machinery)
///     with insert/retrieve counters and slot breaking — FAA on the
///     contended path, the faster option;
///   - StackStorage: a Treiber stack with "failed node" markers — retrieves
///     the hottest element.
///
/// As in the paper, the pools are *bags*: linearizability is not claimed,
/// but no element is ever lost or duplicated (tested exhaustively), and
/// waiting take()s are served in FIFO order.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SYNC_POOL_H
#define CQS_SYNC_POOL_H

#include "core/Cqs.h"
#include "future/Future.h"
#include "future/TimedAwait.h"
#include "reclaim/Ebr.h"
#include "support/CacheLine.h"

#include "support/Atomic.h"
#include <cassert>
#include <chrono>
#include <cstdint>
#include <optional>

namespace cqs {

/// Queue-backed storage (Listing 18, left): an unbounded array of slots
/// addressed by two FAA counters. A retrieve that outruns its insert breaks
/// the slot; the insert then fails and the abstract pool restarts it.
template <typename E, unsigned SegmentSize = 16> class QueuePoolStorage {
  using Seg = Segment<SegmentSize>;
  using List = SegmentList<SegmentSize>;

public:
  QueuePoolStorage() {
    auto *First = Seg::create(0, nullptr, /*InitialPointers=*/2);
    InsertSegm->store(First, std::memory_order_relaxed);
    RetrieveSegm->store(First, std::memory_order_relaxed);
  }

  QueuePoolStorage(const QueuePoolStorage &) = delete;
  QueuePoolStorage &operator=(const QueuePoolStorage &) = delete;

  ~QueuePoolStorage() {
    Seg *I = InsertSegm->load(std::memory_order_relaxed);
    Seg *R = RetrieveSegm->load(std::memory_order_relaxed);
    Seg *Cur = I->Id <= R->Id ? I : R;
    while (Cur) {
      Seg *Next = Cur->next();
      if (!Cur->isRetiredForTesting())
        Seg::disposeUnpublished(Cur); // quiescent: nobody references it
      Cur = Next;
    }
  }

  /// Places \p V into the next slot; false iff a racing retrieve broke it.
  bool tryInsert(E V) {
    ebr::Guard Guard;
    Seg *Start = InsertSegm->load(std::memory_order_acquire);
    std::uint64_t Idx = InsertIdx->fetch_add(1, std::memory_order_acq_rel);
    Seg *S = List::findAndMoveForward(*InsertSegm, Start, Idx / SegmentSize);
    if (S->Id != Idx / SegmentSize)
      return false; // slot's segment removed => the slot was broken
    std::uint64_t Expected = makeTokenWord(Token::Empty);
    return S->Cells[Idx % SegmentSize].compare_exchange_strong(
        Expected, encodeValueWord<E>(V), std::memory_order_acq_rel,
        std::memory_order_acquire);
  }

  /// Takes the element from the next slot; false (and \p Out untouched) iff
  /// the paired insert has not landed yet — the slot is broken so that the
  /// insert fails as well.
  bool tryRetrieve(E &Out) {
    ebr::Guard Guard;
    Seg *Start = RetrieveSegm->load(std::memory_order_acquire);
    std::uint64_t Idx = RetrieveIdx->fetch_add(1, std::memory_order_acq_rel);
    Seg *S =
        List::findAndMoveForward(*RetrieveSegm, Start, Idx / SegmentSize);
    // Our slot cannot be in a removed segment: a slot only dies when its
    // unique retrieve index is consumed, and that is us.
    assert(S->Id == Idx / SegmentSize && "retrieve slot vanished");
    Atomic<std::uint64_t> &Cell = S->Cells[Idx % SegmentSize];
    std::uint64_t Old =
        Cell.exchange(makeTokenWord(Token::Broken), std::memory_order_acq_rel);
    // Either way this slot is finished; let the segment be reclaimed.
    S->onCellDead();
    if (isToken(Old, Token::Empty))
      return false;
    assert(wordKind(Old) == WordKind::Value);
    Out = decodeValueWord<E>(Old);
    return true;
  }

private:
  CachePadded<Atomic<std::uint64_t>> InsertIdx{0};
  CachePadded<Atomic<std::uint64_t>> RetrieveIdx{0};
  CachePadded<Atomic<Seg *>> InsertSegm{nullptr};
  CachePadded<Atomic<Seg *>> RetrieveSegm{nullptr};
};

/// Stack-backed storage (Listing 18, right): a Treiber stack whose nodes
/// either carry an element or mark a failed retrieval. Nodes are reclaimed
/// through EBR.
template <typename E> class StackPoolStorage {
  struct Node {
    /// Tagged word: a Value word carrying E, or Token::Broken for a
    /// "failed retrieval" marker node.
    std::uint64_t Word;
    Node *Next;
  };

public:
  StackPoolStorage() = default;
  StackPoolStorage(const StackPoolStorage &) = delete;
  StackPoolStorage &operator=(const StackPoolStorage &) = delete;

  ~StackPoolStorage() {
    Node *Cur = Top.load(std::memory_order_relaxed);
    while (Cur) {
      Node *Next = Cur->Next;
      delete Cur;
      Cur = Next;
    }
  }

  /// Pushes \p V unless a failed-retrieval marker is on top, in which case
  /// the marker is consumed and the insert fails (pairing it with the take
  /// that left the marker).
  bool tryInsert(E V) {
    ebr::Guard Guard;
    Node *Fresh = nullptr;
    for (;;) {
      Node *T = Top.load(std::memory_order_acquire);
      if (T && isToken(T->Word, Token::Broken)) {
        // Annihilate one failed retrieval instead of inserting.
        if (Top.compare_exchange_strong(T, T->Next,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
          ebr::retireObject(T);
          delete Fresh;
          return false;
        }
        continue;
      }
      if (!Fresh)
        Fresh = new Node();
      Fresh->Word = encodeValueWord<E>(V);
      Fresh->Next = T;
      if (Top.compare_exchange_strong(T, Fresh, std::memory_order_acq_rel,
                                      std::memory_order_acquire))
        return true;
    }
  }

  /// Pops the hottest element; on an empty (or failure-marked) stack pushes
  /// one more failed-retrieval marker and fails.
  bool tryRetrieve(E &Out) {
    ebr::Guard Guard;
    Node *Fresh = nullptr;
    for (;;) {
      Node *T = Top.load(std::memory_order_acquire);
      if (!T || isToken(T->Word, Token::Broken)) {
        if (!Fresh)
          Fresh = new Node();
        Fresh->Word = makeTokenWord(Token::Broken);
        Fresh->Next = T;
        if (Top.compare_exchange_strong(T, Fresh, std::memory_order_acq_rel,
                                        std::memory_order_acquire))
          return false;
        continue;
      }
      if (Top.compare_exchange_strong(T, T->Next, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        Out = decodeValueWord<E>(T->Word);
        ebr::retireObject(T);
        delete Fresh;
        return true;
      }
    }
  }

private:
  Atomic<Node *> Top{nullptr};
};

/// The abstract blocking pool of Listing 17, parameterized by storage.
template <typename E, typename Storage, unsigned SegmentSize = 16>
class BlockingPool
    : private Cqs<E, ValueTraits<E>, SegmentSize>::SmartCancellationHandler {
public:
  using CqsType = Cqs<E, ValueTraits<E>, SegmentSize>;
  using FutureType = typename CqsType::FutureType;

  BlockingPool() : Q(CancellationMode::Smart, ResumptionMode::Async, this) {}

  /// Hands \p V to the longest-waiting take(), or stores it.
  void put(E V) {
    for (;;) {
      std::int64_t S = Size->fetch_add(1, std::memory_order_acq_rel);
      if (S < 0) {
        // A take() is waiting; smart+async resume always succeeds.
        [[maybe_unused]] bool Ok = Q.resume(V);
        assert(Ok && "smart/async resume cannot fail");
        return;
      }
      if (Store.tryInsert(V))
        return;
      // A racing take() observed our size increment and broke the slot
      // before the insert landed; both restart (Listing 17).
    }
  }

  /// Retrieves an element (unspecified order), suspending when empty.
  FutureType take() {
    for (;;) {
      std::int64_t S = Size->fetch_sub(1, std::memory_order_acq_rel);
      if (S <= 0)
        return Q.suspend();
      E Out;
      if (Store.tryRetrieve(Out))
        return FutureType::immediate(Out);
      // The paired put() has not inserted yet; restart.
    }
  }

  /// Non-blocking take: an element, or std::nullopt when the pool is
  /// empty. Unlike Semaphore::tryAcquire this needs no synchronous
  /// resumption mode: pool elements live in the storage, and an element a
  /// racing put() parked in a CQS cell is already *assigned* to the
  /// suspended take it resumed, so "empty" is the correct answer then.
  std::optional<E> tryTake() {
    for (;;) {
      std::int64_t S = Size->load(std::memory_order_acquire);
      if (S <= 0)
        return std::nullopt;
      if (!Size->compare_exchange_weak(S, S - 1, std::memory_order_acq_rel,
                                       std::memory_order_acquire))
        continue;
      E Out;
      if (Store.tryRetrieve(Out))
        return Out;
      // Raced with an in-flight put (its slot broke); the put restarts
      // and re-increments, so retry the whole operation.
    }
  }

  /// Deadline-bounded take: an element obtained within \p Timeout, or
  /// std::nullopt. A timed-out waiter deregisters via onCancellation();
  /// when a put() beats the cancel to the result word, the element is
  /// already assigned to us and is returned (a refused resume would have
  /// re-inserted it — either way nothing is lost, see future/TimedAwait.h).
  std::optional<E> retrieveFor(std::chrono::nanoseconds Timeout) {
    FutureType F = take();
    return timedAwait(F, Timeout);
  }

  /// Elements currently stored (negative: waiters), racy diagnostic.
  std::int64_t sizeForTesting() const {
    return Size->load(std::memory_order_acquire);
  }

private:
  /// Same shape as the semaphore's handler (Listing 17).
  bool onCancellation() override {
    std::int64_t S = Size->fetch_add(1, std::memory_order_acq_rel);
    return S < 0;
  }

  /// A refused resume still owns an element; put it back (Listing 17,
  /// completeRefusedResume).
  void completeRefusedResume(E V) override {
    if (!Store.tryInsert(V))
      put(V);
  }

  CqsType Q;
  Storage Store;
  CachePadded<Atomic<std::int64_t>> Size{0};
};

/// Queue-based blocking pool (FAA on the contended path; Listing 18 left).
template <typename E, unsigned SegmentSize = 16>
using QueueBlockingPool =
    BlockingPool<E, QueuePoolStorage<E, SegmentSize>, SegmentSize>;

/// Stack-based blocking pool (returns the hottest element; Listing 18
/// right).
template <typename E, unsigned SegmentSize = 16>
using StackBlockingPool = BlockingPool<E, StackPoolStorage<E>, SegmentSize>;

} // namespace cqs

#endif // CQS_SYNC_POOL_H
