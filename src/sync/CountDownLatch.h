//===- sync/CountDownLatch.h - count-down latch over CQS -------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The count-down latch of Section 4.2 (Listing 7): await() suspends until
/// countDown() has been called the configured number of times.
///
/// Two counters: `count` (operations still to complete) and `waiters`
/// (pending await()s, with DONE_BIT marking that the latch already opened).
/// The last countDown() sets DONE_BIT and resumes exactly the registered
/// waiters. Smart cancellation keeps resumeWaiters() linear in the number
/// of *non-cancelled* waiters: onCancellation() decrements `waiters`
/// unless DONE_BIT is already set, in which case the in-flight resume must
/// be refused (and ignored, since a latch transfers no data).
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SYNC_COUNTDOWNLATCH_H
#define CQS_SYNC_COUNTDOWNLATCH_H

#include "core/Cqs.h"
#include "future/Future.h"
#include "future/TimedAwait.h"
#include "support/CacheLine.h"

#include "support/Atomic.h"
#include <cassert>
#include <chrono>
#include <cstdint>

namespace cqs {

/// Latch that opens after a fixed number of countDown() calls.
template <unsigned SegmentSize = 16>
class BasicCountDownLatch
    : private Cqs<Unit, ValueTraits<Unit>,
                  SegmentSize>::SmartCancellationHandler {
  static constexpr std::uint32_t DoneBit = 1u << 31;

public:
  using CqsType = Cqs<Unit, ValueTraits<Unit>, SegmentSize>;
  using FutureType = typename CqsType::FutureType;

  /// \p CMode selects the cancellation strategy (Section 4.2): Smart (the
  /// default) keeps resumeWaiters() linear in the number of live waiters;
  /// Simple also works — "the algorithm already works with the simple
  /// cancellation mode, where resume(..)-s silently fail on cancelled
  /// await() requests" — but then the opening countDown() pays linear time
  /// in *all* awaits including aborted ones (see
  /// bench/ablation_latch_cancellation).
  explicit BasicCountDownLatch(std::int64_t InitialCount,
                               CancellationMode CMode = CancellationMode::Smart)
      : Q(CMode, ResumptionMode::Async,
          CMode == CancellationMode::Smart ? this : nullptr),
        Count(InitialCount) {
    assert(InitialCount >= 0 && "negative latch count");
  }

  /// Registers completion of one operation; the call that brings the count
  /// to zero releases all waiters. Extra calls are permitted (footnote 4).
  void countDown() {
    std::int64_t R = Count->fetch_sub(1, std::memory_order_acq_rel);
    if (R <= 1)
      resumeWaiters();
  }

  /// Registers completion of \p N operations in one counter update (a
  /// worker finishing a chunk of N items does not pay N RMWs on the shared
  /// cacheline). Opens the latch iff this call brings the count to zero.
  void countDown(std::int64_t N) {
    assert(N > 0 && "countDown(n) takes a positive count");
    std::int64_t R = Count->fetch_sub(N, std::memory_order_acq_rel);
    if (R <= N)
      resumeWaiters();
  }

  /// Remaining count (clamped at zero like Java's getCount()).
  std::int64_t count() const {
    std::int64_t C = Count->load(std::memory_order_acquire);
    return C > 0 ? C : 0;
  }

  /// Completes immediately if the latch is open, otherwise suspends until
  /// it opens. The future may be cancel()ed to abort waiting.
  FutureType await() {
    if (Count->load(std::memory_order_acquire) <= 0)
      return FutureType::immediate(Unit{});
    std::uint32_t W = Waiters->fetch_add(1, std::memory_order_acq_rel);
    if ((W & DoneBit) != 0)
      return FutureType::immediate(Unit{});
    return Q.suspend();
  }

  /// Deadline-bounded await: true iff the latch opened within \p Timeout.
  /// A timed-out waiter deregisters itself (smart cancellation), so the
  /// opening countDown() does not pay for it; when the opening resume wins
  /// the race against the cancel, true is reported — the latch *did* open.
  /// Requires the (default) smart cancellation mode: under Simple a latch
  /// built for the ablation bench has no deregistration path.
  bool awaitFor(std::chrono::nanoseconds Timeout) {
    FutureType F = await();
    return timedAwait(F, Timeout).has_value();
  }

private:
  /// Sets DONE_BIT (barring further suspensions) and resumes every await()
  /// registered before it (Listing 7, resumeWaiters).
  void resumeWaiters() {
    for (;;) {
      std::uint32_t W = Waiters->load(std::memory_order_acquire);
      if ((W & DoneBit) != 0)
        return; // someone else opened the latch
      if (Waiters->compare_exchange_strong(W, W | DoneBit,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        // One traversal for all W waiters. Under Simple cancellation the
        // batch reports fewer completions when it meets cancelled cells —
        // ignored here exactly as the W individual resume() returns were.
        (void)Q.resumeBatch(W, Unit{});
        return;
      }
    }
  }

  /// A cancelled await() deregisters itself unless the latch already
  /// opened, in which case the resume heading its way must be refused.
  bool onCancellation() override {
    std::uint32_t W = Waiters->fetch_sub(1, std::memory_order_acq_rel);
    return (W & DoneBit) == 0;
  }

  /// The cancelled waiter needs nothing back; drop the refused token so
  /// resumeWaiters() proceeds to the next waiter.
  void completeRefusedResume(Unit) override {}

  CqsType Q;
  CachePadded<Atomic<std::int64_t>> Count;
  CachePadded<Atomic<std::uint32_t>> Waiters{0};
};

using CountDownLatch = BasicCountDownLatch<>;

} // namespace cqs

#endif // CQS_SYNC_COUNTDOWNLATCH_H
