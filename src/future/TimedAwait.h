//===- future/TimedAwait.h - deadline layer over futures -------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared deadline helper behind every timed primitive operation
/// (Semaphore::tryAcquireFor, Mutex::tryLockFor, Channel::receiveFor, ...).
/// It encapsulates the one subtle race all of them share: waitFor() reports
/// Pending at the deadline, cancel() is *attempted*, and the two outcomes
/// of that attempt mean opposite things:
///
///  - cancel() succeeds: the request was withdrawn before any resume
///    reached it. The cancellation handler the CQS installed has already
///    returned the reservation (smart mode) or marked the cell (simple
///    mode), so the operation genuinely timed out and owns nothing.
///  - cancel() fails: a resume won the single result-word CAS first
///    (Appendix G.2: "a Future cannot be both cancelled and completed").
///    The operation COMPLETED — the caller owns the granted resource
///    (permit, element, lock) exactly as if no timeout had happened, and
///    reporting a timeout here would leak it. timedAwait() therefore
///    consumes the published value and reports success.
///
/// Returning the value through one helper keeps that rule in one place;
/// primitives translate the optional into their own result type (bool for
/// locks/permits, optional<E> for element carriers). See DESIGN.md §8 for
/// the full deadline-semantics contract, including the barrier's.
///
/// A non-positive timeout never parks: waitFor() observes the deadline
/// already passed, so timedAwait degenerates to one status poll plus the
/// cancel-vs-resume race — handy both as a try-operation with rollback and
/// for deterministic schedcheck scenarios of the race itself.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_FUTURE_TIMEDAWAIT_H
#define CQS_FUTURE_TIMEDAWAIT_H

#include "core/CqsStats.h"
#include "future/Future.h"

#include <cassert>
#include <chrono>
#include <optional>

namespace cqs {

/// Waits on \p F up to \p Timeout. Returns the completion value when the
/// operation finished in time *or* its resume beat our cancel() to the
/// result word; std::nullopt only when the request was truly withdrawn
/// (the deadline passed and cancel() won) or a third party cancelled it.
template <typename T, typename Traits>
std::optional<T> timedAwait(Future<T, Traits> &F,
                            std::chrono::nanoseconds Timeout) {
  assert(F.valid() && "timedAwait() on an invalid future");
  if (F.isImmediate())
    return F.tryGet();
  TimedWaitStats &TS = timedWaitStats();
  bump(TS.Waits);
  FutureStatus St = F.waitFor(Timeout);
  if (St == FutureStatus::Pending) {
    if (F.cancel()) {
      bump(TS.Timeouts);
      return std::nullopt;
    }
    // cancel() lost the result-word CAS: the resume already won, so the
    // value is published and the resource is ours to consume.
    bump(TS.Rescues);
    std::optional<T> V = F.tryGet();
    assert(V.has_value() && "failed cancel() implies a completed resume");
    return V;
  }
  if (St == FutureStatus::Cancelled)
    return std::nullopt; // cancelled by a third party while we waited
  return F.tryGet();
}

} // namespace cqs

#endif // CQS_FUTURE_TIMEDAWAIT_H
