//===- future/TimedAwait.h - deadline layer over futures -------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared deadline helper behind every timed primitive operation
/// (Semaphore::tryAcquireFor, Mutex::tryLockFor, Channel::receiveFor, ...).
/// It encapsulates the one subtle race all of them share: waitFor() reports
/// Pending at the deadline, cancel() is *attempted*, and the two outcomes
/// of that attempt mean opposite things:
///
///  - cancel() succeeds: the request was withdrawn before any resume
///    reached it. The cancellation handler the CQS installed has already
///    returned the reservation (smart mode) or marked the cell (simple
///    mode), so the operation genuinely timed out and owns nothing.
///  - cancel() fails: a resume won the single result-word CAS first
///    (Appendix G.2: "a Future cannot be both cancelled and completed").
///    The operation COMPLETED — the caller owns the granted resource
///    (permit, element, lock) exactly as if no timeout had happened, and
///    reporting a timeout here would leak it. timedAwait() therefore
///    consumes the published value and reports success.
///
/// Returning the value through one helper keeps that rule in one place;
/// primitives translate the optional into their own result type (bool for
/// locks/permits, optional<E> for element carriers). See DESIGN.md §8 for
/// the full deadline-semantics contract, including the barrier's.
///
/// A non-positive timeout never parks: waitFor() observes the deadline
/// already passed, so timedAwait degenerates to one status poll plus the
/// cancel-vs-resume race — handy both as a try-operation with rollback and
/// for deterministic schedcheck scenarios of the race itself.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_FUTURE_TIMEDAWAIT_H
#define CQS_FUTURE_TIMEDAWAIT_H

#include "core/CqsStats.h"
#include "future/Future.h"

#include <cassert>
#include <chrono>
#include <optional>

namespace cqs {

/// How a positive-deadline timedAwait implements its deadline:
///  - PerOpWait (PR 4 default): the waiter parks on its own timed futex
///    wait (FUTEX_WAIT with a timeout), re-arming on spurious wakes.
///  - TimerQueue: the waiter arms one entry on the central timer thread
///    (task/TimerQueue.h) and parks *untimed* on the future's DoneFlag;
///    the deadline costs one heap insert, and timers for operations that
///    complete in time are withdrawn with one state flip. The
///    timeout-vs-resume race rides the same result-word CAS either way.
///
/// The mode is a thread-local so existing primitive signatures
/// (tryAcquireFor, receiveFor, ...) pick it up without plumbing; benches
/// set it per worker to compare the two series. Under schedcheck the
/// TimerQueue mode degrades for *positive* deadlines in modelled threads
/// to the PerOpWait path (the timer thread is outside the model); the
/// non-positive-deadline inline-expiry path stays fully modelled.
enum class TimedWaitVia { PerOpWait, TimerQueue };

inline TimedWaitVia &timedWaitViaSlot() {
  thread_local TimedWaitVia Via = TimedWaitVia::PerOpWait;
  return Via;
}

inline TimedWaitVia timedWaitVia() { return timedWaitViaSlot(); }

/// RAII selector for the calling thread's timed-wait strategy.
class TimedWaitModeScope {
public:
  explicit TimedWaitModeScope(TimedWaitVia Via) : Prev(timedWaitViaSlot()) {
    timedWaitViaSlot() = Via;
  }
  ~TimedWaitModeScope() { timedWaitViaSlot() = Prev; }
  TimedWaitModeScope(const TimedWaitModeScope &) = delete;
  TimedWaitModeScope &operator=(const TimedWaitModeScope &) = delete;

private:
  TimedWaitVia Prev;
};

namespace detail {
/// Out-of-line hooks implemented in task/TimerQueue.cpp: arm a timer entry
/// that runs \p Fire(\p Arg) at the deadline (and \p Drop(\p Arg) exactly
/// once on full retirement), returning an opaque token. Declared here (not
/// in TimerQueue.h) so this header stays independent of the task layer; the
/// symbols live in the compiled library either way.
void *timerQueueArm(std::chrono::nanoseconds Timeout, void (*Fire)(void *),
                    void (*Drop)(void *), void *Arg);
/// Consumes the token; true iff the timer was withdrawn before it fired.
bool timerQueueRetire(void *Token);
} // namespace detail

/// The TimerQueue-backed flavour of timedAwait (below): same contract, but
/// a positive deadline is one heap insert on the central timer thread plus
/// an *untimed* park on the future's DoneFlag, instead of a per-op timed
/// futex wait. Callers normally reach it through timedAwait() with the
/// thread-local mode set; it is public so combinators can invoke it
/// directly.
template <typename T, typename Traits>
std::optional<T> timedAwaitQueued(Future<T, Traits> &F,
                                  std::chrono::nanoseconds Timeout) {
  assert(F.valid() && "timedAwaitQueued() on an invalid future");
  if (F.isImmediate())
    return F.tryGet();
  TimedWaitStats &TS = timedWaitStats();
  if (Timeout.count() <= 0) {
    // Inline expiry: no entry, no timer thread — the deadline has already
    // passed, so this is exactly the cancel-vs-resume race on the result
    // word. This branch is fully modelled under schedcheck.
    bump(TS.Waits);
    bump(timerStats().InlineExpiries);
    if (F.cancel()) {
      bump(TS.Timeouts);
      return std::nullopt;
    }
    std::optional<T> V = F.tryGet();
    if (V.has_value()) {
      // cancel() lost to a resume: the value is published and ours.
      bump(TS.Rescues);
      return V;
    }
    return std::nullopt; // cancelled by a third party first
  }
#if defined(CQS_SCHEDCHECK) && CQS_SCHEDCHECK
  if (sc::inModelledThread()) {
    // The timer thread lives outside the logical-thread set, so arming a
    // real timer from modelled code would stall the exploration. Positive
    // deadlines ride the modelled timed futex (virtual-time fast-forward)
    // instead — semantically identical, just per-op.
    bump(TS.Waits);
    FutureStatus St = F.waitFor(Timeout);
    if (St == FutureStatus::Pending) {
      if (F.cancel()) {
        bump(TS.Timeouts);
        return std::nullopt;
      }
      bump(TS.Rescues);
      return F.tryGet();
    }
    if (St == FutureStatus::Cancelled)
      return std::nullopt;
    return F.tryGet();
  }
#endif
  bump(TS.Waits);
  using Req = Request<T, Traits>;
  Req *R = F.request();
  R->addRef(); // the timer entry's payload reference, dropped via Drop
  bump(timerStats().Scheduled);
  void *Tok = detail::timerQueueArm(
      Timeout,
      /*Fire=*/[](void *P) { (void)static_cast<Req *>(P)->cancel(); },
      /*Drop=*/[](void *P) { static_cast<Req *>(P)->release(); }, R);
  std::optional<T> V = F.blockingGet(); // untimed: the timer unparks us
  bool Withdrawn = detail::timerQueueRetire(Tok);
  if (V.has_value()) {
    if (!Withdrawn)
      // The timer fired but its cancel() lost the result-word CAS to a
      // resume — the queued analogue of the per-op rescue.
      bump(TS.Rescues);
    return V;
  }
  // Cancelled. If the timer was withdrawn before firing, a third party
  // cancelled the request (not a deadline event); otherwise our timer's
  // cancel() is what won, i.e. a genuine timeout.
  if (!Withdrawn)
    bump(TS.Timeouts);
  return std::nullopt;
}

/// Waits on \p F up to \p Timeout. Returns the completion value when the
/// operation finished in time *or* its resume beat our cancel() to the
/// result word; std::nullopt only when the request was truly withdrawn
/// (the deadline passed and cancel() won) or a third party cancelled it.
template <typename T, typename Traits>
std::optional<T> timedAwait(Future<T, Traits> &F,
                            std::chrono::nanoseconds Timeout) {
  assert(F.valid() && "timedAwait() on an invalid future");
  if (F.isImmediate())
    return F.tryGet();
  TimedWaitStats &TS = timedWaitStats();
  if (timedWaitVia() == TimedWaitVia::TimerQueue)
    return timedAwaitQueued(F, Timeout);
  bump(TS.Waits);
  FutureStatus St = F.waitFor(Timeout);
  if (St == FutureStatus::Pending) {
    if (F.cancel()) {
      bump(TS.Timeouts);
      return std::nullopt;
    }
    // cancel() lost the result-word CAS — either to a resume (the value
    // is published and the resource ours to consume: a rescue) or to a
    // third-party cancel that got there first (nullopt, not a timeout).
    std::optional<T> V = F.tryGet();
    if (V.has_value()) {
      bump(TS.Rescues);
      return V;
    }
    return std::nullopt;
  }
  if (St == FutureStatus::Cancelled)
    return std::nullopt; // cancelled by a third party while we waited
  return F.tryGet();
}

} // namespace cqs

#endif // CQS_FUTURE_TIMEDAWAIT_H
