//===- future/Future.h - futures for blocking operations -------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper models every blocking operation as a Future (Section 2,
/// Appendix A): lock()/acquire()/take() return immediately with either an
/// ImmediateResult (the fast path took effect) or a Request that a later
/// resume(..) completes. Futures support cancel(), which atomically aborts a
/// pending request and fires the cancellation handler the CQS installed.
///
/// This file provides:
///  - Request<T>: the suspending future (Listing 9), intrusively
///    reference-counted so the CQS cell, the caller, and a canceller can
///    share it without a GC. Waiters can either block the OS thread
///    (C++20 atomic wait, standing in for Java's park/unpark) or attach a
///    Continuation (standing in for a Kotlin coroutine continuation).
///  - Future<T>: the user-facing handle — Invalid (SYNC-mode suspend()
///    failure), Immediate, or Suspended around a Request.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_FUTURE_FUTURE_H
#define CQS_FUTURE_FUTURE_H

#include "future/Ref.h"
#include "reclaim/Ebr.h"
#include "support/Backoff.h"
#include "support/Futex.h"
#include "support/ObjectPool.h"
#include "support/TaggedWord.h"

#include "support/Atomic.h"
#include <cassert>
#include <chrono>
#include <cstdint>
#include <optional>
#include <utility>

namespace cqs {

/// Observable state of a Future, mirroring get()'s three outcomes in the
/// paper: null (pending), a value (completed), or bottom (cancelled).
enum class FutureStatus { Pending, Completed, Cancelled };


/// A suspended blocking request awaiting resume(..) (Listing 9's Request).
///
/// The result slot is a tagged word: Token::Empty while pending,
/// Token::Cancelled after a successful cancel(), or a Value word once
/// completed. complete() and cancel() race through a single CAS, so exactly
/// one of them takes effect — the property the formal specification calls
/// "a Future cannot be both cancelled and completed" (Appendix G.2).
///
/// Requests are the hottest allocation in the framework (one per
/// suspension), so they are pooled: when the reference count hits zero the
/// object is retired through EBR with a *recycle* deleter that scrubs it
/// back to the pending state and hands it to support/ObjectPool.h instead
/// of freeing. The EBR grace period is what makes reuse sound — a
/// concurrent resume(..) may still hold a raw pointer it read from a cell,
/// and its (failing) complete() must land on the intact old life, never on
/// a recycled one. A generation parity tag (even = live, odd = pooled)
/// asserts that invariant on every state transition. DESIGN.md §6.
template <typename T, typename Traits = ValueTraits<T>>
class Request final : public RefCounted<Request<T, Traits>> {
  static constexpr std::uint64_t PendingWord = makeTokenWord(Token::Empty);
  static constexpr std::uint64_t CancelledWord =
      makeTokenWord(Token::Cancelled);

public:
  /// Cancellation handler installed by the CQS before the request is
  /// published (Listing 5's cancellationHandler(s, i)). Type-erased so this
  /// header does not depend on the segment type.
  using CancelFn = void (*)(void *Cqs, void *Segment, std::uint32_t CellIdx);

  /// Callback fired when the request completes or is cancelled; used by the
  /// coroutine runtime to reschedule the awaiting task. The object must stay
  /// alive until invoked (it lives in the coroutine frame).
  class Continuation {
  public:
    /// \p ResultWord is the request's final tagged result word.
    virtual void invoke(std::uint64_t ResultWord) = 0;

  protected:
    ~Continuation() = default;
  };

  /// Creates a pending request with \p InitialRefs owners. suspend() uses 2
  /// (the cell + the returned Future). Prefer acquire(), which reuses a
  /// pooled request when one is available.
  explicit Request(std::uint32_t InitialRefs)
      : RefCounted<Request<T, Traits>>(InitialRefs) {}

  /// Pool-aware factory: pops a recycled request (already scrubbed back to
  /// the pending state by recycleFromEbr) when available, otherwise
  /// allocates. The hot suspend() path goes through here.
  static Request *acquire(std::uint32_t InitialRefs) {
    if constexpr (pool::PoolingEnabled) {
      if (Request *R = Pool::tryAcquire()) {
        assert((R->Gen.load(std::memory_order_relaxed) & 1) == 1 &&
               "request from the pool must carry a pooled (odd) generation");
        R->Gen.fetch_add(1, std::memory_order_relaxed); // odd -> even: live
        R->resetRefsForReuse(InitialRefs);
        return R;
      }
    }
    return new Request(InitialRefs);
  }

  /// RefCounted disposal hook: dead requests are retired through EBR with a
  /// recycle deleter rather than freed. A concurrent resume(..) may still
  /// hold this pointer (read from a cell before a cancellation won the
  /// race), so the scrub must wait out the grace period; the Guard makes
  /// the retire legal from any thread (it is reentrant under an existing
  /// pin).
  void disposeThis() const {
    ebr::Guard Guard;
    if constexpr (pool::PoolingEnabled)
      ebr::retireRecycle(const_cast<Request *>(this));
    else
      // Still EBR-deferred with pooling compiled out: the grace period is
      // what makes the racy read-from-cell (above) legal, independent of
      // recycling. An immediate delete here would turn every lost
      // complete()/cancel() race into a real use-after-free.
      ebr::retireObject(const_cast<Request *>(this));
  }

  /// EBR deleter (ebr::retireRecycle): runs once the grace period has
  /// elapsed, so no thread can reach the request any more.
  static void recycleFromEbr(Request *R) {
    R->scrubForReuse();
    Pool::recycle(R);
  }

  /// Fast-path disposal for a request that was never published to another
  /// thread (suspend() lost the install race): no grace period is needed,
  /// so the EBR detour and the two reference decrements are skipped.
  /// Consumes both initial references.
  void recycleUnpublished() {
    if constexpr (pool::PoolingEnabled) {
      assert(this->refCountForTesting() == 2 &&
             "recycleUnpublished() consumes exactly the two initial refs");
      this->resetRefsForReuse(0);
      scrubForReuse();
      Pool::recycle(this);
    } else {
      this->release();
      this->release();
    }
  }

  /// Reuse generation parity: even = live, odd = pooled; tests only.
  std::uint64_t generationForTesting() const {
    return Gen.load(std::memory_order_relaxed);
  }

  /// Binds the cancellation handler. Must happen before the request is
  /// returned to user code; the CQS knows the target cell when it creates
  /// the request, so this is race-free.
  void bindCancellation(CancelFn Fn, void *Cqs, void *Segment,
                        std::uint32_t CellIdx) {
    CancelHandler = Fn;
    CancelCqs = Cqs;
    CancelSegment = Segment;
    CancelCellIdx = CellIdx;
  }

  /// Completes the request with \p V. Returns false iff the request was
  /// already cancelled (resume(..) uses this to detect aborted waiters).
  bool complete(T V) {
    assert((Gen.load(std::memory_order_relaxed) & 1) == 0 &&
           "complete() on a recycled Request (use-after-recycle/ABA)");
    std::uint64_t Expected = PendingWord;
    if (!Result.compare_exchange_strong(Expected,
                                        encodeValueWord<T, Traits>(V),
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
      assert(Expected == CancelledWord &&
             "Request completed twice — CQS hands out exactly one "
             "completion permit");
      return false;
    }
    finish();
    return true;
  }

  /// Cancels the request. Returns false if it already completed. On success
  /// runs the bound cancellation handler in the caller's thread, exactly as
  /// Listing 9's cancel() does.
  bool cancel() {
    assert((Gen.load(std::memory_order_relaxed) & 1) == 0 &&
           "cancel() on a recycled Request (use-after-recycle/ABA)");
    std::uint64_t Expected = PendingWord;
    if (!Result.compare_exchange_strong(Expected, CancelledWord,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire))
      return false;
    if (CancelHandler)
      CancelHandler(CancelCqs, CancelSegment, CancelCellIdx);
    finish();
    return true;
  }

  FutureStatus status() const {
    std::uint64_t W = Result.load(std::memory_order_acquire);
    if (W == PendingWord)
      return FutureStatus::Pending;
    if (W == CancelledWord)
      return FutureStatus::Cancelled;
    return FutureStatus::Completed;
  }

  /// Non-blocking get(): the value if completed, std::nullopt otherwise
  /// (pending or cancelled — disambiguate via status()).
  std::optional<T> tryGet() const {
    std::uint64_t W = Result.load(std::memory_order_acquire);
    if (W == PendingWord || W == CancelledWord)
      return std::nullopt;
    return decodeValueWord<T, Traits>(W);
  }

  /// Parks the calling thread until completion or cancellation; nullopt iff
  /// cancelled. This is the thread-waiter mode the paper's JVM benchmarks
  /// use ("we use threads as waiters in CQS", Section 6).
  ///
  /// Parkers announce themselves in the Parked counter so finish() can
  /// issue exactly the wake-ups needed (usually one, often none) instead
  /// of an unconditional wake-all syscall.
  std::optional<T> blockingGet() const {
    // Keep this wrapper tiny: many fast paths call blockingGet() on
    // futures that are already (or almost) complete, and the wait
    // machinery below is big enough to wreck the caller's inlining.
    if (DoneFlag.load(std::memory_order_acquire) == 0)
      blockUntilDone();
    std::uint64_t W = Result.load(std::memory_order_acquire);
    assert(W != PendingWord && "DoneFlag set while Result still pending");
    if (W == CancelledWord)
      return std::nullopt;
    return decodeValueWord<T, Traits>(W);
  }

  /// Timed wait: parks until completion/cancellation or until \p Timeout
  /// elapses. Returns the status observed on return — Pending means the
  /// wait timed out. Most callers should not use waitFor directly but go
  /// through timedAwait (future/TimedAwait.h), which also handles the
  /// subtle followup: after a timeout, cancel() can *fail* because a
  /// resume won the result-word race, and then the operation completed and
  /// its value must be consumed, not dropped:
  /// \code
  ///   if (std::optional<Unit> Grant = timedAwait(F, 50ms))
  ///     ...completed (possibly by winning the cancel-vs-resume race)...
  ///   else
  ///     ...timed out, request withdrawn...
  /// \endcode
  FutureStatus waitFor(std::chrono::nanoseconds Timeout) const {
    auto Deadline = std::chrono::steady_clock::now() + Timeout;
    FutureStatus St = status();
    if (St != FutureStatus::Pending)
      return St;
    Parked.fetch_add(1, std::memory_order_seq_cst);
    while (DoneFlag.load(std::memory_order_seq_cst) == 0) {
      auto Now = std::chrono::steady_clock::now();
      if (Now >= Deadline)
        break;
      futexWait(DoneFlag, 0, Deadline - Now);
    }
    Parked.fetch_sub(1, std::memory_order_relaxed);
    return status();
  }

  /// Attaches \p C, to be invoked on completion/cancellation. Returns false
  /// if the request already finished — the caller must not suspend and
  /// should consume the result directly. At most one continuation may ever
  /// be attached.
  bool setContinuation(Continuation *C) {
    void *Expected = nullptr;
    if (ContSlot.compare_exchange_strong(Expected, C,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire))
      return true;
    assert(Expected == doneSentinel() &&
           "only one continuation may be attached to a Request");
    return false;
  }

  /// Raw tagged result word (for Continuation::invoke consumers).
  std::uint64_t resultWordForContinuation() const {
    return Result.load(std::memory_order_acquire);
  }

private:
  /// Out-of-line cold slow path of blockingGet(). The actual spin/park
  /// loop lives in futexSpinThenWait (compiled once into the library, see
  /// Futex.h) so this template member stays a bare tail-call and callers'
  /// code layout does not depend on the wait tuning.
  [[gnu::noinline]] [[gnu::cold]] void blockUntilDone() const {
    futexSpinThenWait(DoneFlag, Parked);
  }

  static void *doneSentinel() {
    return reinterpret_cast<void *>(static_cast<std::uintptr_t>(1));
  }

  /// Common completion tail: wake parked threads and fire the continuation.
  ///
  /// Dekker pair with the parkers: a parker increments Parked (seq_cst)
  /// *before* re-checking DoneFlag; we publish DoneFlag (seq_cst) *before*
  /// reading Parked. At least one side observes the other, and the
  /// kernel-side futex revalidation of DoneFlag closes the remaining
  /// about-to-sleep window — so skipping the syscall on Parked == 0 and
  /// waking exactly one thread on Parked == 1 never strands a waiter.
  void finish() {
    DoneFlag.store(1, std::memory_order_seq_cst);
    std::uint32_t NParked = Parked.load(std::memory_order_seq_cst);
    if (NParked == 1)
      futexWakeOne(DoneFlag);
    else if (NParked > 1)
      futexWakeAll(DoneFlag);
    void *Old = ContSlot.exchange(doneSentinel(), std::memory_order_acq_rel);
    if (Old && Old != doneSentinel())
      static_cast<Continuation *>(Old)->invoke(
          Result.load(std::memory_order_acquire));
  }

  /// Resets every field to the freshly-constructed pending state. Runs
  /// strictly after the EBR grace period, so no concurrent accessor
  /// exists; relaxed stores suffice (the pool hand-off publishes them).
  void scrubForReuse() {
    assert(this->refCountForTesting() == 0 && "scrubbing a live request");
    assert(Parked.load(std::memory_order_relaxed) == 0 &&
           "scrubbing a request that still has parked waiters");
    Result.store(PendingWord, std::memory_order_relaxed);
    DoneFlag.store(0, std::memory_order_relaxed);
    ContSlot.store(nullptr, std::memory_order_relaxed);
    CancelHandler = nullptr;
    CancelCqs = nullptr;
    CancelSegment = nullptr;
    CancelCellIdx = 0;
    Gen.fetch_add(1, std::memory_order_relaxed); // even (live) -> odd
  }

  using Pool = pool::ObjectPool<Request, pool::PoolKind::Request>;

  mutable Atomic<std::uint64_t> Result{PendingWord};
  /// 32-bit completion flag for futex-based timed waits (futexes operate
  /// on 32-bit words; Result is 64 bits wide).
  Atomic<std::uint32_t> DoneFlag{0};
  /// Number of threads parked (or about to park) on DoneFlag; lets
  /// finish() size its wake-up instead of always waking all.
  mutable Atomic<std::uint32_t> Parked{0};
  /// Reuse generation: even = live, odd = pooled. EBR already guarantees
  /// no accessor can span a recycle; the parity is a cheap second line of
  /// defense that turns any latent use-after-recycle into a deterministic
  /// assertion failure instead of silent ABA.
  Atomic<std::uint64_t> Gen{0};
  Atomic<void *> ContSlot{nullptr};

  CancelFn CancelHandler = nullptr;
  void *CancelCqs = nullptr;
  void *CancelSegment = nullptr;
  std::uint32_t CancelCellIdx = 0;

public:
  /// Pool freelist link (support/ObjectPool.h); meaningful only while the
  /// request sits in the pool.
  Request *NextFree = nullptr;
};

/// User-facing result of a potentially blocking operation.
///
/// Mirrors Appendix A: an ImmediateResult when the operation completed
/// without suspension (no allocation happens in that case) or a handle to
/// the suspended Request. Additionally an *invalid* Future models the null
/// that suspend() returns when a SYNC-mode cell was broken (Appendix B).
template <typename T, typename Traits = ValueTraits<T>>
class Future {
  enum class Kind : std::uint8_t { Invalid, Immediate, Suspended };

public:
  using RequestType = Request<T, Traits>;

  Future() = default;

  /// The failed suspend() of the synchronous resumption mode.
  static Future invalid() { return Future(); }

  /// An operation that completed without suspension.
  static Future immediate(T V) {
    Future F;
    F.K = Kind::Immediate;
    F.ImmediateWord = encodeValueWord<T, Traits>(V);
    return F;
  }

  /// An operation that suspended; \p Req shares ownership of the request.
  static Future suspended(Ref<RequestType> Req) {
    assert(Req && "suspended future requires a request");
    Future F;
    F.K = Kind::Suspended;
    F.Req = std::move(Req);
    return F;
  }

  /// False iff suspend() failed on a broken SYNC-mode cell.
  bool valid() const { return K != Kind::Invalid; }

  /// True when the operation completed without suspending.
  bool isImmediate() const { return K == Kind::Immediate; }

  FutureStatus status() const {
    assert(valid() && "status() on an invalid future");
    if (K == Kind::Immediate)
      return FutureStatus::Completed;
    return Req->status();
  }

  /// Paper's get(): value if completed, nullopt if pending or cancelled.
  std::optional<T> tryGet() const {
    assert(valid() && "tryGet() on an invalid future");
    if (K == Kind::Immediate)
      return decodeValueWord<T, Traits>(ImmediateWord);
    return Req->tryGet();
  }

  /// Parks until completed or cancelled; nullopt iff cancelled.
  std::optional<T> blockingGet() const {
    assert(valid() && "blockingGet() on an invalid future");
    if (K == Kind::Immediate)
      return decodeValueWord<T, Traits>(ImmediateWord);
    return Req->blockingGet();
  }

  /// Timed wait; Pending on return means timeout (see Request::waitFor).
  FutureStatus waitFor(std::chrono::nanoseconds Timeout) const {
    assert(valid() && "waitFor() on an invalid future");
    if (K == Kind::Immediate)
      return FutureStatus::Completed;
    return Req->waitFor(Timeout);
  }

  /// Paper's cancel(): true iff the pending request was aborted. Immediate
  /// results are already completed, so cancel() returns false for them.
  bool cancel() {
    assert(valid() && "cancel() on an invalid future");
    if (K == Kind::Immediate)
      return false;
    return Req->cancel();
  }

  /// The underlying request, or null for immediate/invalid futures. Used by
  /// the coroutine awaitable adapter.
  RequestType *request() const {
    return K == Kind::Suspended ? Req.get() : nullptr;
  }

private:
  Kind K = Kind::Invalid;
  std::uint64_t ImmediateWord = 0;
  Ref<RequestType> Req;
};

} // namespace cqs

#endif // CQS_FUTURE_FUTURE_H
