//===- future/Ref.h - intrusive reference-counted pointer ------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal intrusive smart pointer. Request futures are shared between the
/// caller of suspend(), the CQS cell that stores them, and a potential
/// canceller; on the JVM the garbage collector arbitrates their lifetime, in
/// C++ an intrusive atomic reference count does (DESIGN.md §3). Intrusive
/// counting (rather than std::shared_ptr) lets the CQS store the raw pointer
/// in its single-word atomic cells.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_FUTURE_REF_H
#define CQS_FUTURE_REF_H

#include "support/Atomic.h"
#include <cassert>
#include <cstdint>
#include <utility>

namespace cqs {

/// CRTP base providing an atomic reference count. Objects start with the
/// count given to the constructor (callers that immediately publish the
/// object to N owners can start at N and skip N-1 atomic increments).
///
/// When the count hits zero the object is *disposed*: by default with
/// `delete`, but a Derived may shadow `disposeThis()` to route dead objects
/// elsewhere — Request futures recycle themselves through an EBR-deferred
/// object pool instead of freeing (DESIGN.md §6).
template <typename Derived> class RefCounted {
public:
  explicit RefCounted(std::uint32_t InitialRefs) : Refs(InitialRefs) {}

  RefCounted(const RefCounted &) = delete;
  RefCounted &operator=(const RefCounted &) = delete;

  void addRef() const { Refs.fetch_add(1, std::memory_order_relaxed); }

  void release() const {
    std::uint32_t Prev = Refs.fetch_sub(1, std::memory_order_acq_rel);
    assert(Prev > 0 && "over-release of RefCounted object");
    if (Prev == 1)
      static_cast<const Derived *>(this)->disposeThis();
  }

  /// Default disposal; Derived may shadow this to pool instead of free.
  void disposeThis() const { delete static_cast<const Derived *>(this); }

  /// For tests: current reference count (racy by nature).
  std::uint32_t refCountForTesting() const {
    return Refs.load(std::memory_order_relaxed);
  }

protected:
  ~RefCounted() = default;

  /// Re-arms the count on an object being resurrected from a pool. Only
  /// legal after disposeThis() ran (count is zero and no owner remains);
  /// plain store — publication of the reused object provides the ordering.
  void resetRefsForReuse(std::uint32_t InitialRefs) const {
    Refs.store(InitialRefs, std::memory_order_relaxed);
  }

private:
  mutable Atomic<std::uint32_t> Refs;
};

/// Owning handle to a RefCounted object.
template <typename T> class Ref {
public:
  Ref() = default;

  /// Adopts an existing reference (does not increment). Use when the callee
  /// hands over one of the counts it created the object with.
  static Ref adopt(T *Ptr) {
    Ref R;
    R.Ptr = Ptr;
    return R;
  }

  /// Shares \p Ptr (increments).
  static Ref share(T *Ptr) {
    if (Ptr)
      Ptr->addRef();
    return adopt(Ptr);
  }

  Ref(const Ref &Other) : Ptr(Other.Ptr) {
    if (Ptr)
      Ptr->addRef();
  }

  Ref(Ref &&Other) noexcept : Ptr(Other.Ptr) { Other.Ptr = nullptr; }

  Ref &operator=(Ref Other) noexcept {
    std::swap(Ptr, Other.Ptr);
    return *this;
  }

  ~Ref() {
    if (Ptr)
      Ptr->release();
  }

  T *get() const { return Ptr; }
  T *operator->() const { return Ptr; }
  T &operator*() const { return *Ptr; }
  explicit operator bool() const { return Ptr != nullptr; }

  /// Releases ownership without decrementing; the caller takes over the
  /// count (e.g. to stash the raw pointer in an atomic cell).
  T *leak() {
    T *P = Ptr;
    Ptr = nullptr;
    return P;
  }

private:
  T *Ptr = nullptr;
};

} // namespace cqs

#endif // CQS_FUTURE_REF_H
