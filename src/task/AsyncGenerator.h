//===- task/AsyncGenerator.h - async generator over Channel v2 -*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AsyncGenerator<E>: a producer coroutine streaming elements to consumers
/// through a BufferedChannelV2 (DESIGN.md §12) — the C++ rendering of the
/// Kotlin `produce { send(..) }` builder from the Koval–Alistarh–Elizarov
/// channels paper. `co_yield V` is a channel send: it suspends the
/// producer under backpressure (bounded by the channel capacity) and
/// resumes it when room frees up, so a fast producer never outruns its
/// consumers by more than the buffer.
///
/// The yield expression evaluates to bool: false means the generator was
/// destroyed (its channel closed) and the producer must `co_return` —
/// cooperative early termination instead of values thrown away:
///
/// \code
///   AsyncGenerator<int> counter() {
///     for (int I = 0;; ++I)
///       if (!(co_yield I))
///         co_return;
///   }
/// \endcode
///
/// Consumers pull with `co_await G.next()` (or nextBlocking() from a plain
/// thread); std::nullopt means the producer finished and the channel
/// drained. Teardown is structured: ~AsyncGenerator closes the channel —
/// which cancels the producer's parked send through SMART cancellation,
/// so its pending element is returned to it, the yield reports false, and
/// the producer runs to completion — then joins the producer before
/// freeing the state. Destroy the generator before its Executor.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_TASK_ASYNCGENERATOR_H
#define CQS_TASK_ASYNCGENERATOR_H

#include "support/WaitGroup.h"
#include "sync/ChannelV2.h"
#include "task/Executor.h"

#include <cassert>
#include <coroutine>
#include <optional>
#include <utility>

namespace cqs {

/// \p Capacity is the producer-to-consumer buffer (0 = rendezvous: every
/// yield waits for a matching next()).
template <typename E, std::int64_t Capacity = 16, unsigned SegmentSize = 16>
class AsyncGenerator {
  using Chan = BufferedChannelV2<E, SegmentSize>;
  using SendFut = typename Chan::SendFuture;
  using RecvFut = typename Chan::ReceiveFuture;

  /// Heap state shared by the generator handle and the producer frame;
  /// owned by the generator (freed after the producer is joined).
  struct State {
    State() : Ch(Capacity) {}
    Chan Ch;
    WaitGroup ProducerDone{1};
  };

  /// co_yield's awaiter: a channel send bridged FutureAwaiter-style.
  /// Resumes to true when the element entered the channel, false when the
  /// channel closed underneath (element returned — stop producing).
  class YieldAwaiter : private Request<Unit>::Continuation {
  public:
    explicit YieldAwaiter(SendFut F) : Fut(std::move(F)) {}

    bool await_ready() const {
      return !Fut.valid() || Fut.isImmediate() ||
             Fut.status() != FutureStatus::Pending;
    }

    bool await_suspend(std::coroutine_handle<> H) {
      Exec = Executor::current();
      if (!Exec) {
        // Producer driven from a plain thread: park it here (the
        // Awaitable.h off-executor fallback).
        (void)Fut.blockingGet();
        return false;
      }
      Continuation = H;
      return Fut.request()->setContinuation(this);
    }

    bool await_resume() const {
      return Fut.valid() && Fut.tryGet().has_value();
    }

  private:
    void invoke(std::uint64_t /*ResultWord*/) override {
      Exec->post(Continuation);
    }

    SendFut Fut;
    Executor *Exec = nullptr;
    std::coroutine_handle<> Continuation;
  };

  /// next()'s awaiter: a channel receive; nullopt once the producer
  /// finished and the buffer drained (invalid future), or if the receive
  /// was cancelled by teardown.
  class NextAwaiter : private Request<E>::Continuation {
  public:
    explicit NextAwaiter(RecvFut F) : Fut(std::move(F)) {}

    bool await_ready() const {
      return !Fut.valid() || Fut.isImmediate() ||
             Fut.status() != FutureStatus::Pending;
    }

    bool await_suspend(std::coroutine_handle<> H) {
      Exec = Executor::current();
      if (!Exec) {
        (void)Fut.blockingGet();
        return false;
      }
      Continuation = H;
      return Fut.request()->setContinuation(this);
    }

    std::optional<E> await_resume() const {
      return Fut.valid() ? Fut.tryGet() : std::nullopt;
    }

  private:
    void invoke(std::uint64_t /*ResultWord*/) override {
      Exec->post(Continuation);
    }

    RecvFut Fut;
    Executor *Exec = nullptr;
    std::coroutine_handle<> Continuation;
  };

public:
  struct promise_type {
    State *St = nullptr; // set by the AsyncGenerator constructor

    AsyncGenerator get_return_object() {
      return AsyncGenerator(
          std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    /// Signals completion *after* the body's locals were destroyed, then
    /// lets the frame self-destroy (no suspension). The generator's
    /// destructor joins on ProducerDone before freeing State, so the
    /// channel outlives everything the producer can still touch.
    auto final_suspend() noexcept {
      struct FinalAwaiter {
        State *St;
        bool await_ready() noexcept {
          St->ProducerDone.done();
          return true; // never suspend: the frame frees itself
        }
        void await_suspend(std::coroutine_handle<>) noexcept {}
        void await_resume() noexcept {}
      };
      return FinalAwaiter{St};
    }

    YieldAwaiter yield_value(E V) { return YieldAwaiter(St->Ch.send(V)); }

    /// Close on return so consumers drain the buffer and then see
    /// nullopt; idempotent with the destructor's close.
    void return_void() noexcept { St->Ch.close(); }
    void unhandled_exception() noexcept { std::terminate(); }
  };

  AsyncGenerator(AsyncGenerator &&O) noexcept
      : Handle(std::exchange(O.Handle, nullptr)),
        St(std::exchange(O.St, nullptr)),
        Started(std::exchange(O.Started, false)) {}
  AsyncGenerator(const AsyncGenerator &) = delete;
  AsyncGenerator &operator=(const AsyncGenerator &) = delete;

  ~AsyncGenerator() {
    if (!St)
      return; // moved-from
    St->Ch.close(); // cancels a parked yield: the producer sees false
    if (Started) {
      St->ProducerDone.wait();
    } else if (Handle) {
      Handle.destroy(); // never ran: the frame is ours to free
    }
    delete St;
  }

  /// Launches the producer on \p Exec. Call exactly once; next() before
  /// start() simply parks until the first element.
  void start(Executor &Exec) {
    assert(!Started && "AsyncGenerator started twice");
    Started = true;
    Exec.post(std::exchange(Handle, nullptr));
  }

  /// `co_await G.next()` — the next element, or std::nullopt when the
  /// producer finished and every yielded element was consumed.
  NextAwaiter next() { return NextAwaiter(St->Ch.receive()); }

  /// Blocking pull for plain (non-coroutine) consumers.
  std::optional<E> nextBlocking() {
    RecvFut F = St->Ch.receive();
    if (!F.valid())
      return std::nullopt;
    return F.blockingGet();
  }

private:
  explicit AsyncGenerator(std::coroutine_handle<promise_type> H) : Handle(H) {
    St = new State();
    H.promise().St = St;
  }

  std::coroutine_handle<promise_type> Handle;
  State *St = nullptr;
  bool Started = false;
};

} // namespace cqs

#endif // CQS_TASK_ASYNCGENERATOR_H
