//===- task/Combinators.h - whenAll/whenAny over CQS futures ---*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured-concurrency combinators over abortable CQS futures
/// (DESIGN.md §12). whenAny resolves first-ready-wins and withdraws the
/// losers through Future::cancel() — the SMART-cancellation discipline
/// Select.h proved out, generalized from channel receives to arbitrary
/// futures. whenAll waits for every future to settle and never cancels.
///
/// The conservation contract, which every schedcheck oracle checks:
///
///  - A loser whose cancel() SUCCEEDS was withdrawn before any resume
///    reached it; its cancellation handler returned the resource, so the
///    combinator owns nothing for it.
///  - A loser whose cancel() FAILS completed concurrently ("a Future
///    cannot be both cancelled and completed"). The combinator never
///    consumes that value: it stays published in the caller's future — a
///    *stray completion* the caller still owns and can harvest with
///    tryGet(). joinStats().AnyStrays counts these.
///
/// Wait-side protocol (the SelectCore shape): per-future continuations
/// post settle events onto a shared, reference-counted JoinState board;
/// blocking callers park on the board's epoch futex, coroutine awaiters
/// arm a one-shot waiter slot that reposts the coroutine on its executor.
/// The board is pure Atomic<> + futex — no std::mutex — so every
/// combinator is explorable under schedcheck and clean under the HB race
/// layer.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_TASK_COMBINATORS_H
#define CQS_TASK_COMBINATORS_H

#include "core/CqsStats.h"
#include "future/Future.h"
#include "support/Futex.h"
#include "task/Executor.h"

#include <cassert>
#include <chrono>
#include <coroutine>
#include <cstdint>
#include <optional>

namespace cqs {

inline constexpr int MaxJoinArity = 16;

/// Winning future index (argument order) and its value.
template <typename T> struct WhenAnyResult {
  std::int32_t Index;
  T Value;
};

namespace join_detail {

/// The shared scoreboard one whenAll/whenAny invocation posts its settle
/// events onto. Heap-allocated and reference-counted: the caller holds one
/// reference, every attached continuation holds one — so a loser's
/// finish() that is still running invoke() when the combinator already
/// returned keeps the board (and the node inside it) alive. This is the
/// same reason Select.h EBR-retires its core.
template <typename T, typename Traits>
class JoinState final : public RefCounted<JoinState<T, Traits>> {
  using Base = RefCounted<JoinState<T, Traits>>;

public:
  static constexpr std::int32_t NoWinner = -1;

  /// One-shot wake target for the coroutine awaiters; fire() is called at
  /// most once, when the join condition first becomes true with a waiter
  /// armed. The object must stay alive until fired (it lives in the
  /// coroutine frame, exactly like Request::Continuation).
  class Waiter {
  public:
    virtual void fire() = 0;

  protected:
    ~Waiter() = default;
  };

  /// \p AnyMode selects the completion condition: first winner committed
  /// (whenAny) vs. all futures settled (whenAll).
  JoinState(std::int32_t N, bool AnyMode) : Base(1), N(N), AnyMode(AnyMode) {
    for (std::int32_t I = 0; I < MaxJoinArity; ++I) {
      Nodes[I].Owner = this;
      Nodes[I].Index = I;
    }
  }

  /// Per-future continuation; lives inside the board so its lifetime is
  /// the board's. Holds one board reference while attached.
  struct Node final : Request<T, Traits>::Continuation {
    JoinState *Owner = nullptr;
    std::int32_t Index = NoWinner;

    void invoke(std::uint64_t ResultWord) override {
      JoinState *S = Owner;
      S->noteResolved(Index,
                      ResultWord != makeTokenWord(Token::Cancelled));
      S->release(); // the attachment's reference; may destroy the board
    }
  };

  Node &node(std::int32_t I) { return Nodes[I]; }

  /// Future \p I settled (\p Completed = with a value, else cancelled).
  /// Called exactly once per future, by Node::invoke or by registration
  /// for futures that were already settled.
  void noteResolved(std::int32_t I, bool Completed) {
    if (Completed)
      (void)tryWin(I);
    Settled.fetch_add(1, std::memory_order_acq_rel);
    ring();
    maybeFire();
  }

  /// Claims the join for \p I; idempotent for the index that already won.
  bool tryWin(std::int32_t I) {
    std::int32_t Exp = NoWinner;
    if (Winner.compare_exchange_strong(Exp, I, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      ring();
      maybeFire();
      return true;
    }
    return Exp == I;
  }

  std::int32_t winner() const {
    return Winner.load(std::memory_order_acquire);
  }
  std::int32_t settled() const {
    return Settled.load(std::memory_order_acquire);
  }

  /// The join condition the waiters wake on.
  bool done() const {
    if (AnyMode && winner() != NoWinner)
      return true;
    return settled() >= N;
  }

  /// Blocking-wait support, the SelectCore discipline: sample the epoch
  /// *before* re-checking done(), then park against that sample — the
  /// futex revalidates, so a ring between check and park is never missed.
  std::uint32_t epoch() const { return Epoch.load(std::memory_order_seq_cst); }
  void waitEpoch(std::uint32_t Ep) {
    futexWait(Epoch, Ep, std::chrono::nanoseconds(-1));
  }
  void waitEpochFor(std::uint32_t Ep, std::chrono::nanoseconds Timeout) {
    futexWait(Epoch, Ep, Timeout);
  }

  /// Parks the calling thread until done(). Shared by the blocking
  /// combinators and the off-executor awaiter fallback.
  void blockUntilDone() {
    for (;;) {
      std::uint32_t Ep = epoch(); // sample BEFORE the check
      if (done())
        return;
      waitEpoch(Ep);
    }
  }

  /// Arms \p W to be fired when done() first holds. False iff the join
  /// already fired — the caller must not suspend. At most one waiter.
  bool armWaiter(Waiter *W) {
    void *Exp = nullptr;
    if (WaiterSlot.compare_exchange_strong(Exp, W, std::memory_order_acq_rel,
                                           std::memory_order_acquire))
      return true;
    assert(Exp == firedSentinel() && "only one waiter may be armed");
    return false;
  }

private:
  /// Fires the armed waiter once done() holds. Every noteResolved/tryWin
  /// calls this *after* publishing its state change, and armWaiter CASes
  /// against the fired sentinel — so a waiter armed before the condition
  /// flipped is fired, and one armed after observes the failed CAS and
  /// resumes inline. No lost wakeup, no double fire (the exchange is
  /// one-shot).
  void maybeFire() {
    if (!done())
      return;
    void *Old = WaiterSlot.exchange(firedSentinel(), std::memory_order_acq_rel);
    if (Old && Old != firedSentinel())
      static_cast<Waiter *>(Old)->fire();
  }

  void ring() {
    Epoch.fetch_add(1, std::memory_order_seq_cst);
    futexWakeAll(Epoch);
  }

  static void *firedSentinel() {
    return reinterpret_cast<void *>(static_cast<std::uintptr_t>(1));
  }

  const std::int32_t N;
  const bool AnyMode;
  Node Nodes[MaxJoinArity];
  Atomic<std::int32_t> Winner{NoWinner};
  Atomic<std::int32_t> Settled{0};
  Atomic<std::uint32_t> Epoch{0};
  Atomic<void *> WaiterSlot{nullptr};
};

/// Registers \p Futs[0..N) on the board: already-settled (or invalid, or
/// immediate) futures resolve inline; pending ones get a continuation
/// attached (+1 board reference each, released by Node::invoke).
template <typename T, typename Traits>
void joinRegister(JoinState<T, Traits> *S, Future<T, Traits> *const *Futs,
                  std::int32_t N) {
  for (std::int32_t I = 0; I < N; ++I) {
    Future<T, Traits> &F = *Futs[I];
    if (!F.valid()) {
      S->noteResolved(I, /*Completed=*/false);
      continue;
    }
    if (F.isImmediate()) {
      S->noteResolved(I, /*Completed=*/true);
      continue;
    }
    S->addRef(); // the node's reference, dropped by invoke()
    if (!F.request()->setContinuation(&S->node(I))) {
      // Settled between our status glance and the attach: resolve inline.
      S->release();
      S->noteResolved(I, F.status() == FutureStatus::Completed);
    }
  }
}

/// The whenAny tail: harvest the winner's value, withdraw every loser,
/// account strays. Shared by the blocking, timed, and awaiter forms.
template <typename T, typename Traits>
std::optional<WhenAnyResult<T>>
joinHarvestAny(Future<T, Traits> *const *Futs, std::int32_t N,
               std::int32_t W) {
  JoinStats &JS = joinStats();
  std::optional<WhenAnyResult<T>> R;
  if (W != JoinState<T, Traits>::NoWinner) {
    std::optional<T> V = Futs[W]->tryGet();
    assert(V.has_value() && "whenAny winner must carry a value");
    R = WhenAnyResult<T>{W, *V};
    bump(JS.AnyWins);
  }
  for (std::int32_t I = 0; I < N; ++I) {
    if (I == W || !Futs[I]->valid())
      continue;
    if (!Futs[I]->isImmediate() && Futs[I]->cancel()) {
      bump(JS.AnyLoserCancels);
      continue;
    }
    // cancel() failed (or the future was immediate): either a third party
    // cancelled it first, or it completed — a stray completion whose value
    // stays owned by the caller through Futs[I] (see the file comment).
    if (Futs[I]->status() == FutureStatus::Completed)
      bump(JS.AnyStrays);
  }
  return R;
}

} // namespace join_detail

/// Blocks until the first of \p Futs completes, then cancels the rest.
/// Returns the winner's index and value, or std::nullopt iff every future
/// settled without completing (all cancelled by third parties / invalid).
/// Losers that complete anyway keep their value in the caller's future
/// (stray completions — see the file comment).
template <typename T, typename Traits>
std::optional<WhenAnyResult<T>> whenAny(Future<T, Traits> *const *Futs,
                                        int N) {
  assert(N >= 1 && N <= MaxJoinArity && "whenAny arity");
  using State = join_detail::JoinState<T, Traits>;
  auto *S = new State(N, /*AnyMode=*/true);
  join_detail::joinRegister(S, Futs, N);
  S->blockUntilDone();
  std::int32_t W = S->winner();
  auto R = join_detail::joinHarvestAny(Futs, N, W);
  S->release();
  return R;
}

/// whenAny with a deadline. At the deadline every still-pending future is
/// cancelled; a cancel() that fails means that future completed — it is
/// promoted to winner if none was committed yet (the lincheck trySelect
/// discipline: cancel-lost-is-win, so no completed value is ever dropped
/// into a "timed out" report). A non-positive timeout never parks: one
/// registration pass, then the cancel-or-promote sweep — the fully
/// schedcheck-modelled form.
template <typename T, typename Traits>
std::optional<WhenAnyResult<T>>
whenAnyFor(Future<T, Traits> *const *Futs, int N,
           std::chrono::nanoseconds Timeout) {
  assert(N >= 1 && N <= MaxJoinArity && "whenAny arity");
  using State = join_detail::JoinState<T, Traits>;
  auto *S = new State(N, /*AnyMode=*/true);
  join_detail::joinRegister(S, Futs, N);
  if (Timeout.count() > 0) {
    auto Deadline = std::chrono::steady_clock::now() + Timeout;
    for (;;) {
      std::uint32_t Ep = S->epoch(); // sample BEFORE the checks
      if (S->done())
        break;
      auto Now = std::chrono::steady_clock::now();
      if (Now >= Deadline)
        break;
      S->waitEpochFor(Ep, Deadline - Now);
    }
  }
  if (S->winner() == State::NoWinner) {
    // Deadline passed with no committed winner: withdraw every pending
    // future; a failed cancel() is a concurrent completion — promote it.
    for (std::int32_t I = 0; I < N; ++I) {
      Future<T, Traits> &F = *Futs[I];
      if (!F.valid() || F.isImmediate())
        continue;
      if (!F.cancel() && F.status() == FutureStatus::Completed)
        (void)S->tryWin(I);
    }
  }
  std::int32_t W = S->winner();
  auto R = join_detail::joinHarvestAny(Futs, N, W);
  S->release();
  return R;
}

/// Blocks until every future settles (completes or is cancelled); cancels
/// nothing. Returns the number of futures that completed with a value —
/// the values themselves stay in the caller's futures (harvest with
/// tryGet()). Invalid futures count as settled-without-value.
template <typename T, typename Traits>
int whenAll(Future<T, Traits> *const *Futs, int N) {
  assert(N >= 1 && N <= MaxJoinArity && "whenAll arity");
  using State = join_detail::JoinState<T, Traits>;
  auto *S = new State(N, /*AnyMode=*/false);
  join_detail::joinRegister(S, Futs, N);
  S->blockUntilDone();
  S->release();
  int Completed = 0;
  for (std::int32_t I = 0; I < N; ++I)
    if (Futs[I]->valid() && Futs[I]->status() == FutureStatus::Completed)
      ++Completed;
  return Completed;
}

/// Variadic sugar: whenAny(FA, FB, ...), all futures of one value type.
template <typename T, typename Traits, typename... Rest>
std::optional<WhenAnyResult<T>> whenAny(Future<T, Traits> &F0,
                                        Rest &...FRest) {
  Future<T, Traits> *Futs[] = {&F0, &FRest...};
  return whenAny(Futs, 1 + static_cast<int>(sizeof...(FRest)));
}

template <typename T, typename Traits, typename... Rest>
int whenAll(Future<T, Traits> &F0, Rest &...FRest) {
  Future<T, Traits> *Futs[] = {&F0, &FRest...};
  return whenAll(Futs, 1 + static_cast<int>(sizeof...(FRest)));
}

/// Coroutine awaiter for whenAny: suspends until the first future
/// completes (or all settle), then harvests exactly like the blocking
/// form. The futures must outlive the await (coroutine locals do). When
/// awaited off-executor it parks the calling thread, mirroring
/// FutureAwaiter's fallback.
template <typename T, typename Traits = ValueTraits<T>>
class [[nodiscard]] WhenAnyAwaiter
    : private join_detail::JoinState<T, Traits>::Waiter {
  using State = join_detail::JoinState<T, Traits>;

public:
  WhenAnyAwaiter(Future<T, Traits> *const *Futs, int N) : N(N) {
    assert(N >= 1 && N <= MaxJoinArity && "whenAny arity");
    for (int I = 0; I < N; ++I)
      this->Futs[I] = Futs[I];
    S = new State(N, /*AnyMode=*/true);
    join_detail::joinRegister(S, this->Futs, N);
  }

  WhenAnyAwaiter(const WhenAnyAwaiter &) = delete;
  WhenAnyAwaiter &operator=(const WhenAnyAwaiter &) = delete;

  ~WhenAnyAwaiter() {
    if (S)
      S->release(); // caller's reference (await_resume was never reached)
  }

  bool await_ready() const { return S->done(); }

  bool await_suspend(std::coroutine_handle<> H) {
    Exec = Executor::current();
    if (!Exec) {
      // Off-executor await: no pool to repost to — park this thread on
      // the board and resume inline, like FutureAwaiter's fallback.
      S->blockUntilDone();
      return false;
    }
    Handle = H;
    // A losing CAS means the join fired between await_ready and here:
    // resume inline with the result already committed.
    return S->armWaiter(this);
  }

  std::optional<WhenAnyResult<T>> await_resume() {
    std::int32_t W = S->winner();
    auto R = join_detail::joinHarvestAny(Futs, N, W);
    S->release();
    S = nullptr;
    return R;
  }

private:
  void fire() override {
    // Called by whoever settled the deciding future — never run the
    // coroutine inline there; repost it (the FutureAwaiter discipline).
    // No member may be touched after post(): the resumed frame can
    // destroy this awaiter concurrently.
    Exec->post(Handle);
  }

  Future<T, Traits> *Futs[MaxJoinArity];
  int N;
  State *S = nullptr;
  Executor *Exec = nullptr;
  std::coroutine_handle<> Handle;
};

/// Coroutine awaiter for whenAll: suspends until every future settles;
/// await_resume returns the number that completed with a value.
template <typename T, typename Traits = ValueTraits<T>>
class [[nodiscard]] WhenAllAwaiter
    : private join_detail::JoinState<T, Traits>::Waiter {
  using State = join_detail::JoinState<T, Traits>;

public:
  WhenAllAwaiter(Future<T, Traits> *const *Futs, int N) : N(N) {
    assert(N >= 1 && N <= MaxJoinArity && "whenAll arity");
    for (int I = 0; I < N; ++I)
      this->Futs[I] = Futs[I];
    S = new State(N, /*AnyMode=*/false);
    join_detail::joinRegister(S, this->Futs, N);
  }

  WhenAllAwaiter(const WhenAllAwaiter &) = delete;
  WhenAllAwaiter &operator=(const WhenAllAwaiter &) = delete;

  ~WhenAllAwaiter() {
    if (S)
      S->release();
  }

  bool await_ready() const { return S->done(); }

  bool await_suspend(std::coroutine_handle<> H) {
    Exec = Executor::current();
    if (!Exec) {
      S->blockUntilDone();
      return false;
    }
    Handle = H;
    return S->armWaiter(this);
  }

  int await_resume() {
    S->release();
    S = nullptr;
    int Completed = 0;
    for (int I = 0; I < N; ++I)
      if (Futs[I]->valid() && Futs[I]->status() == FutureStatus::Completed)
        ++Completed;
    return Completed;
  }

private:
  void fire() override { Exec->post(Handle); }

  Future<T, Traits> *Futs[MaxJoinArity];
  int N;
  State *S = nullptr;
  Executor *Exec = nullptr;
  std::coroutine_handle<> Handle;
};

/// `co_await awaitWhenAny(FA, FB)` — futures must be lvalues that outlive
/// the await (coroutine locals).
template <typename T, typename Traits, typename... Rest>
WhenAnyAwaiter<T, Traits> awaitWhenAny(Future<T, Traits> &F0,
                                       Rest &...FRest) {
  Future<T, Traits> *Futs[] = {&F0, &FRest...};
  return WhenAnyAwaiter<T, Traits>(Futs, 1 + static_cast<int>(sizeof...(FRest)));
}

template <typename T, typename Traits, typename... Rest>
WhenAllAwaiter<T, Traits> awaitWhenAll(Future<T, Traits> &F0,
                                       Rest &...FRest) {
  Future<T, Traits> *Futs[] = {&F0, &FRest...};
  return WhenAllAwaiter<T, Traits>(Futs, 1 + static_cast<int>(sizeof...(FRest)));
}

} // namespace cqs

#endif // CQS_TASK_COMBINATORS_H
