//===- task/Scope.h - cancellation scopes over CQS futures -----*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CancelScope: a registry of in-flight abortable operations that one
/// cancel() call withdraws together (DESIGN.md §12). Operations register
/// their futures with add(), deregister with remove() when they settle;
/// cancel() marks the scope and pushes Future::cancel() through every
/// registered entry — each cancellation riding the request's single
/// result-word CAS, so an operation that completes concurrently keeps its
/// value ("a Future cannot be both cancelled and completed") and the
/// caller harvests it exactly as whenAny treats stray completions.
///
/// Scopes nest: a child constructed with a parent pointer is cancelled
/// when the parent is, and unlinks itself on destruction. Deadlines
/// compose two ways: awaitFor() bounds one await (timedAwait treats a
/// scope-cancel exactly like a third-party cancel — nullopt, no timeout
/// accounting), and cancelAfter() arms a TimerQueue entry that cancels
/// the whole scope at a deadline.
///
/// The registry lock is a tiny spinlock built on Atomic + Backoff — NOT a
/// std::mutex — so every scope operation is explorable under schedcheck
/// (a modelled thread blocked on an unmodelled mutex would deadlock the
/// harness). cancel() runs the entry sweep while *holding* the lock: the
/// thunks only touch the requests (never the scope), and holding the lock
/// is what lets a concurrent remove()/child-destructor block until the
/// sweep is done instead of racing the entry's memory.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_TASK_SCOPE_H
#define CQS_TASK_SCOPE_H

#include "core/CqsStats.h"
#include "future/Future.h"
#include "future/TimedAwait.h"
#include "support/Atomic.h"
#include "support/Backoff.h"
#include "task/TimerQueue.h"

#include <cassert>
#include <chrono>
#include <cstdint>
#include <optional>

namespace cqs {

/// A set of abortable operations cancelled together. Thread-safe; see the
/// file comment for the locking discipline. All entries (and all child
/// scopes) must be removed/destroyed before the scope is destroyed.
class CancelScope {
public:
  /// Opaque registration handle; returned by add(), consumed by remove().
  /// Null when nothing was registered (immediate/invalid future, or the
  /// scope was already cancelled) — remove(nullptr) is a no-op.
  struct Entry {
    Entry *Prev = nullptr;
    Entry *Next = nullptr;
    void *Obj = nullptr;
    bool (*CancelFn)(void *) = nullptr;
    void (*ReleaseFn)(void *) = nullptr;
  };

  /// \p Parent links this scope as a child: a parent cancel() cancels this
  /// scope too. The parent must outlive the child.
  explicit CancelScope(CancelScope *Parent = nullptr) : Parent(Parent) {
    if (Parent) {
      ParentEntry = Parent->addThunk(
          this, [](void *P) { static_cast<CancelScope *>(P)->cancel();
                              return true; },
          /*Release=*/nullptr);
      if (!ParentEntry)
        cancel(); // parent was already cancelled
    }
  }

  CancelScope(const CancelScope &) = delete;
  CancelScope &operator=(const CancelScope &) = delete;

  ~CancelScope() {
    // Quiesce the timer side FIRST: after this, a cancelAfter() timer that
    // is firing right now can no longer reach the scope (it blocks on the
    // cell lock until we cleared the pointer, or sees it null).
    if (Cell) {
      Cell->lock();
      Cell->Scope = nullptr;
      Cell->unlock();
      (void)Timer.tryCancel();
      Cell->release(); // the scope's share; the timer entry drops the other
      Cell = nullptr;
    }
    if (Parent)
      Parent->remove(ParentEntry);
    assert(Head == nullptr &&
           "CancelScope destroyed with live entries still registered");
  }

  /// True once cancel() ran (directly, via a parent, or via cancelAfter).
  bool isCancelled() const {
    return Cancelled.load(std::memory_order_acquire) != 0;
  }

  /// Registers \p F: a later cancel() withdraws it through
  /// Future::cancel(). If the scope is already cancelled the future is
  /// cancelled immediately and nothing is registered (returns null).
  /// Immediate and invalid futures register nothing. The caller must
  /// remove() the returned entry once the operation settles (await()/
  /// awaitFor() below do this for you).
  template <typename T, typename Traits>
  Entry *add(Future<T, Traits> &F) {
    using Req = Request<T, Traits>;
    Req *R = F.request();
    if (!R) // immediate or invalid: nothing cancellable
      return nullptr;
    if (isCancelled()) {
      if (R->cancel())
        bump(joinStats().ScopeCancels);
      return nullptr;
    }
    R->addRef(); // the entry's reference, dropped on remove()/sweep
    Entry *E = addThunk(
        R, [](void *P) { return static_cast<Req *>(P)->cancel(); },
        [](void *P) { static_cast<Req *>(P)->release(); });
    if (!E) {
      // Lost the race with cancel(): behave as if cancelled-before-add.
      if (R->cancel())
        bump(joinStats().ScopeCancels);
      R->release();
    }
    return E;
  }

  /// Deregisters \p E (no-op for null). Blocks while a concurrent
  /// cancel() sweep is running, so the entry is never freed under it.
  void remove(Entry *E) {
    if (!E)
      return;
    lock();
    unlink(E);
    unlock();
    if (E->ReleaseFn)
      E->ReleaseFn(E->Obj);
    delete E;
  }

  /// Cancels every registered operation and marks the scope so later
  /// add()s cancel immediately. Idempotent; child scopes are cancelled
  /// through their registration entries like any other member.
  void cancel() {
    lock();
    if (Cancelled.load(std::memory_order_relaxed) != 0) {
      unlock();
      return;
    }
    Cancelled.store(1, std::memory_order_release);
    // Sweep under the lock (see the file comment). Entries stay linked —
    // their owners still hold the handles and will remove() them.
    for (Entry *E = Head; E; E = E->Next)
      if (E->CancelFn(E->Obj))
        bump(joinStats().ScopeCancels);
    unlock();
  }

  /// Arms the central TimerQueue to cancel() this scope after \p Delay.
  /// Non-positive delays cancel inline (the schedcheck-modelled path). At
  /// most one cancelAfter per scope; the timer is disarmed by ~CancelScope.
  void cancelAfter(std::chrono::nanoseconds Delay) {
    if (Delay.count() <= 0) {
      bump(timerStats().InlineExpiries);
      cancel();
      return;
    }
    assert(!Cell && "cancelAfter() may be armed only once per scope");
    Cell = new ScopeCancelCell(this);
    bump(timerStats().Scheduled);
    Timer = TimerQueue::instance().schedule(
        Delay,
        /*Fire=*/
        [](void *P) {
          auto *C = static_cast<ScopeCancelCell *>(P);
          C->lock();
          // Null iff the scope was destroyed first; the destructor's
          // cell-clear under this lock is what makes the deref safe.
          if (C->Scope)
            C->Scope->cancel();
          C->unlock();
        },
        /*Drop=*/[](void *P) { static_cast<ScopeCancelCell *>(P)->release(); },
        Cell);
  }

  /// Scoped blocking await: registers \p F, parks until it settles,
  /// deregisters. nullopt iff cancelled (by this scope or anyone else).
  template <typename T, typename Traits>
  std::optional<T> await(Future<T, Traits> &F) {
    Entry *E = add(F);
    std::optional<T> V = F.valid() ? F.blockingGet() : std::nullopt;
    remove(E);
    return V;
  }

  /// Scoped await with a deadline: composes the scope's cancellation with
  /// timedAwait's — whichever of scope-cancel / deadline-cancel / resume
  /// wins the result-word CAS decides the outcome, and a resume that wins
  /// keeps its value (the rescue path).
  template <typename T, typename Traits>
  std::optional<T> awaitFor(Future<T, Traits> &F,
                            std::chrono::nanoseconds Timeout) {
    Entry *E = add(F);
    std::optional<T> V = F.valid() ? timedAwait(F, Timeout) : std::nullopt;
    remove(E);
    return V;
  }

  /// Registered-entry count; tests only.
  int entryCountForTesting() {
    lock();
    int N = 0;
    for (Entry *E = Head; E; E = E->Next)
      ++N;
    unlock();
    return N;
  }

private:
  /// Heap cell mediating the timer-fire vs. scope-destruction race for
  /// cancelAfter: both sides synchronize on the cell's spinlock, and the
  /// destructor nulls Scope before the scope dies. Referenced by the
  /// scope and by the timer entry; freed when both drop it.
  struct ScopeCancelCell final : RefCounted<ScopeCancelCell> {
    explicit ScopeCancelCell(CancelScope *S)
        : RefCounted<ScopeCancelCell>(2), Scope(S) {}

    void lock() {
      Backoff B;
      while (Lk.exchange(1, std::memory_order_acquire) != 0)
        B.pause();
    }
    void unlock() { Lk.store(0, std::memory_order_release); }

    Atomic<std::uint32_t> Lk{0};
    CancelScope *Scope; // guarded by Lk
  };

  /// Links a type-erased entry; null iff the scope is already cancelled
  /// (callers handle the cancelled-before-add race themselves).
  Entry *addThunk(void *Obj, bool (*CancelFn)(void *),
                  void (*ReleaseFn)(void *)) {
    auto *E = new Entry;
    E->Obj = Obj;
    E->CancelFn = CancelFn;
    E->ReleaseFn = ReleaseFn;
    lock();
    if (Cancelled.load(std::memory_order_relaxed) != 0) {
      unlock();
      delete E;
      return nullptr;
    }
    E->Next = Head;
    if (Head)
      Head->Prev = E;
    Head = E;
    unlock();
    return E;
  }

  void unlink(Entry *E) {
    if (E->Prev)
      E->Prev->Next = E->Next;
    else
      Head = E->Next;
    if (E->Next)
      E->Next->Prev = E->Prev;
  }

  void lock() {
    Backoff B;
    while (Lk.exchange(1, std::memory_order_acquire) != 0)
      B.pause();
  }
  void unlock() { Lk.store(0, std::memory_order_release); }

  Atomic<std::uint32_t> Lk{0};
  Atomic<std::uint32_t> Cancelled{0};
  Entry *Head = nullptr; // guarded by Lk
  CancelScope *Parent = nullptr;
  Entry *ParentEntry = nullptr;
  ScopeCancelCell *Cell = nullptr;
  TimerToken Timer;
};

} // namespace cqs

#endif // CQS_TASK_SCOPE_H
