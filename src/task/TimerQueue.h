//===- task/TimerQueue.h - central deadline timer --------------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One process-wide timer thread servicing a binary heap of deadlines, so
/// that a deadline-bounded operation costs one heap insert instead of one
/// timed futex wait per operation (DESIGN.md §12). PR 4's timedAwait parks
/// each timed waiter on its own FUTEX_WAIT with a timeout: every spurious
/// wake re-arms the kernel timer, and under contention the timeout plumbing
/// is on the per-op hot path. With the queue, the waiter parks *untimed* on
/// the future's DoneFlag and a central thread fires a cancellation at the
/// deadline — the timeout-vs-resume race still rides the Request's single
/// result-word CAS ("a Future cannot be both cancelled and completed"), so
/// no new race window is introduced.
///
/// Timer entries are reference-counted two ways (the heap and the caller's
/// token); cancellation is a state flip (Pending -> Cancelled), and the
/// timer thread lazily drops flipped entries when they surface at the top
/// of the heap — O(1) cancel, no heap surgery. The timer thread itself is
/// futex-parked on an epoch word with a timeout equal to the next deadline;
/// schedule() only rings it when the new entry becomes the earliest.
///
/// Under CQS_SCHEDCHECK the queue is *not* modelled: the timer thread is a
/// real OS thread outside the logical-thread set. Modelled code therefore
/// never reaches it — timedAwait falls back to the modelled timed futex for
/// positive deadlines, and non-positive deadlines expire inline in the
/// caller (completeOnTimeout's inline path), which is exactly the
/// cancel-vs-resume CAS race the schedcheck scenarios explore.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_TASK_TIMERQUEUE_H
#define CQS_TASK_TIMERQUEUE_H

#include "core/CqsStats.h"
#include "future/Future.h"
#include "support/Atomic.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace cqs {

/// One scheduled deadline. Lives on the heap, shared by the TimerQueue's
/// binary heap and the caller's TimerToken; freed when both drop it.
/// PlainAtomic state/refs: entries are pure timer bookkeeping, deliberately
/// outside the schedcheck model (the queue is never used from modelled
/// threads — see the file comment).
class TimerEntry {
public:
  using Callback = void (*)(void *);

  enum State : std::uint32_t { Pending = 0, Fired = 1, Cancelled = 2 };

  TimerEntry(std::chrono::steady_clock::time_point Deadline, Callback Fire,
             Callback Drop, void *Arg)
      : Deadline(Deadline), FireFn(Fire), DropFn(Drop), Arg(Arg) {}

  /// CAS Pending -> \p To; exactly one of the timer thread (Fired) and the
  /// token holder (Cancelled) retires the entry from Pending.
  bool tryTransition(State To) {
    std::uint32_t Exp = Pending;
    return St.compare_exchange_strong(Exp, To, std::memory_order_acq_rel,
                                      std::memory_order_acquire);
  }

  State state() const {
    return static_cast<State>(St.load(std::memory_order_acquire));
  }

  void release() {
    if (Refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Whatever happened to the timer, the payload is dropped exactly
      // once, after neither the heap nor the token can reach the entry.
      if (DropFn)
        DropFn(Arg);
      delete this;
    }
  }

  std::chrono::steady_clock::time_point Deadline;
  Callback FireFn;
  Callback DropFn;
  void *Arg;

private:
  PlainAtomic<std::uint32_t> St{Pending};
  /// Two initial owners: the heap and the TimerToken.
  PlainAtomic<std::uint32_t> Refs{2};
};

/// Caller-side handle to a scheduled timer. RAII: dropping the token
/// releases the caller's share of the entry (the timer still fires);
/// tryCancel() withdraws a not-yet-fired timer in O(1).
class TimerToken {
public:
  TimerToken() = default;
  explicit TimerToken(TimerEntry *E) : E(E) {}

  TimerToken(TimerToken &&O) noexcept : E(std::exchange(O.E, nullptr)) {}
  TimerToken &operator=(TimerToken &&O) noexcept {
    if (this != &O) {
      reset();
      E = std::exchange(O.E, nullptr);
    }
    return *this;
  }
  TimerToken(const TimerToken &) = delete;
  TimerToken &operator=(const TimerToken &) = delete;

  ~TimerToken() { reset(); }

  /// True iff the timer was withdrawn before firing (its callback will
  /// never run). False when it already fired, was already cancelled, or
  /// the token is empty. Consumes the token either way.
  bool tryCancel() {
    if (!E)
      return false;
    bool Won = E->tryTransition(TimerEntry::Cancelled);
    if (Won)
      bump(timerStats().CancelledTimers);
    release();
    return Won;
  }

  explicit operator bool() const { return E != nullptr; }

  /// Relinquishes the entry (with the token's reference) to the caller;
  /// used by the type-erased detail hooks in future/TimedAwait.h.
  TimerEntry *leakEntry() && { return std::exchange(E, nullptr); }

private:
  void reset() {
    if (E)
      release();
  }
  void release() {
    E->release();
    E = nullptr;
  }

  TimerEntry *E = nullptr;
};

/// The process-wide timer: one dedicated thread, one binary heap.
class TimerQueue {
public:
  /// Lazily-started leaked singleton (same discipline as the object pools:
  /// no static-destruction-order hazards, the parked thread dies with the
  /// process).
  static TimerQueue &instance();

  /// Schedules \p Fire(\p Arg) to run on the timer thread once \p Delay
  /// elapses. \p Drop(\p Arg) runs exactly once when the entry is fully
  /// retired (fired, cancelled, or token dropped) — use it to release
  /// whatever \p Arg owns. Non-positive delays fire on the timer thread
  /// immediately; callers wanting inline expiry should short-circuit
  /// before scheduling (completeOnTimeout does).
  TimerToken schedule(std::chrono::nanoseconds Delay, TimerEntry::Callback Fire,
                      TimerEntry::Callback Drop, void *Arg);

  /// Outstanding (scheduled, not yet popped) entries; tests only. Counts
  /// cancelled-but-not-yet-dropped entries too.
  std::size_t pendingForTesting();

  /// Blocks until every entry due by now has been popped and fired; tests
  /// only (keeps timer assertions deterministic without sleeps).
  void drainForTesting();

private:
  TimerQueue();
  ~TimerQueue() = delete; // leaked singleton

  void timerLoop();

  struct HeapOrder {
    bool operator()(const TimerEntry *A, const TimerEntry *B) const {
      return A->Deadline > B->Deadline; // min-heap on deadline
    }
  };

  /// Heap guarded by a plain mutex: schedule() is called from regular
  /// threads only (never from modelled schedcheck threads, see file
  /// comment), and the hold time is one push/pop.
  std::mutex Mu;
  std::vector<TimerEntry *> Heap; // std::push_heap/pop_heap with HeapOrder
  /// Entries popped as due whose callbacks have not returned yet; keeps
  /// drainForTesting() honest about callbacks in flight.
  std::size_t InFlight = 0;
  std::condition_variable DrainCv;
  /// Futex word the timer thread parks on; schedule() bumps it when a new
  /// earliest deadline must shorten the thread's current sleep.
  Atomic<std::uint32_t> Epoch{0};
  std::thread Worker;
};

/// The Future timeout hook: arms a timer that cancels \p F's request at
/// the deadline, riding the existing cancel-vs-resume CAS — if a resume
/// wins the race the future stays completed and the caller owns the value,
/// exactly as with PR 4's synchronous cancel-at-deadline.
///
/// Non-positive timeouts (and immediate futures) expire *inline* in the
/// calling thread: no entry, no timer thread — and, under schedcheck, a
/// fully modelled cancel-vs-resume race. Returns an empty token in that
/// case; the returned token otherwise lets the caller retire the timer
/// early once the future settled by other means.
template <typename T, typename Traits>
TimerToken completeOnTimeout(Future<T, Traits> &F,
                             std::chrono::nanoseconds Timeout) {
  assert(F.valid() && "completeOnTimeout() on an invalid future");
  using Req = Request<T, Traits>;
  Req *R = F.request();
  if (!R) // immediate: nothing to expire
    return TimerToken();
  if (Timeout.count() <= 0) {
    bump(timerStats().InlineExpiries);
    (void)R->cancel(); // false iff a resume already won: value stays owned
    return TimerToken();
  }
  R->addRef(); // the entry's payload reference, dropped by Drop below
  bump(timerStats().Scheduled);
  return TimerQueue::instance().schedule(
      Timeout,
      /*Fire=*/[](void *P) { (void)static_cast<Req *>(P)->cancel(); },
      /*Drop=*/[](void *P) { static_cast<Req *>(P)->release(); }, R);
}

} // namespace cqs

#endif // CQS_TASK_TIMERQUEUE_H
