//===- task/Executor.h - fixed thread-pool coroutine executor --*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size thread pool that runs coroutine continuations. This is the
/// substrate standing in for the Kotlin Coroutines dispatcher in the
/// Appendix F.3 experiment (DESIGN.md §3): when a coroutine suspends in a
/// CQS-based primitive, its worker immediately picks up another task, and a
/// later resume(..) posts the continuation back to the pool — the same
/// economics as kotlinx.coroutines, where "the native thread does not
/// block".
///
/// The run queue is a mutex+condvar MPMC deque. That is deliberately plain:
/// the experiment measures the synchronization primitive, not the
/// scheduler, and kotlinx's scheduler is likewise not what Figure 13
/// varies.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_TASK_EXECUTOR_H
#define CQS_TASK_EXECUTOR_H

#include <condition_variable>
#include <coroutine>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace cqs {

/// Fixed thread pool executing std::coroutine_handle<> continuations.
class Executor {
public:
  /// Spawns \p Threads worker threads immediately.
  explicit Executor(unsigned Threads);

  /// Joins the workers after draining the queue of already-posted work.
  ~Executor();

  Executor(const Executor &) = delete;
  Executor &operator=(const Executor &) = delete;

  /// Schedules \p Handle to be resumed on some worker thread. The contract
  /// for the two edge cases (DESIGN.md §12):
  ///
  ///  - Null handle: rejected in every build mode — returns false without
  ///    enqueueing (a moved-from FireAndForget would otherwise hand a
  ///    worker a null resume()).
  ///  - Post after shutdown() began (including during ~Executor): no
  ///    worker will ever pick the queue up again, so the handle is
  ///    DESTROYED (its frame's destructors run) and post returns false.
  ///    Nothing is silently leaked — but the continuation does not run, so
  ///    completion paths that must not lose work have to keep the executor
  ///    alive until their futures settle.
  ///
  /// Returns true iff the handle was enqueued and will be resumed.
  bool post(std::coroutine_handle<> Handle);

  /// Begins teardown: workers finish already-queued work and exit; later
  /// post() calls destroy their handle and return false. Idempotent; the
  /// destructor calls it before joining the workers. Exposed so tests can
  /// exercise the post-after-shutdown contract deterministically.
  void shutdown();

  /// The executor running the current thread's worker loop, or null when
  /// called from a non-worker thread. CQS awaitables use this to reschedule
  /// the awaiting coroutine on the pool it was running on.
  static Executor *current();

  unsigned threadCount() const { return static_cast<unsigned>(Workers.size()); }

private:
  void workerLoop();

  std::mutex QueueMutex;
  std::condition_variable QueueCv;
  std::deque<std::coroutine_handle<>> Queue;
  bool ShuttingDown = false;
  std::vector<std::thread> Workers;
};

} // namespace cqs

#endif // CQS_TASK_EXECUTOR_H
