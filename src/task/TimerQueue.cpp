//===- task/TimerQueue.cpp - central deadline timer -----------------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "task/TimerQueue.h"

#include "future/TimedAwait.h"
#include "support/Futex.h"

#include <algorithm>

using namespace cqs;

// Type-erased hooks declared in future/TimedAwait.h, so the deadline layer
// can reach the timer queue without a future/ -> task/ header dependency.
void *cqs::detail::timerQueueArm(std::chrono::nanoseconds Timeout,
                                 void (*Fire)(void *), void (*Drop)(void *),
                                 void *Arg) {
  return TimerQueue::instance()
      .schedule(Timeout, Fire, Drop, Arg)
      .leakEntry();
}

bool cqs::detail::timerQueueRetire(void *Token) {
  return TimerToken(static_cast<TimerEntry *>(Token)).tryCancel();
}

TimerQueue &TimerQueue::instance() {
  static TimerQueue *Q = new TimerQueue(); // leaked, like the object pools
  return *Q;
}

TimerQueue::TimerQueue() {
  Worker = std::thread([this] { timerLoop(); });
  Worker.detach(); // parked forever once the heap drains; dies with the process
}

TimerToken TimerQueue::schedule(std::chrono::nanoseconds Delay,
                                TimerEntry::Callback Fire,
                                TimerEntry::Callback Drop, void *Arg) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::max(Delay, std::chrono::nanoseconds(0));
  auto *E = new TimerEntry(Deadline, Fire, Drop, Arg);
  bool NewEarliest;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Heap.push_back(E);
    std::push_heap(Heap.begin(), Heap.end(), HeapOrder{});
    NewEarliest = Heap.front() == E;
  }
  // Only the new-minimum case needs to shorten the timer thread's sleep;
  // anything later than the current earliest is picked up when the thread
  // naturally wakes. This keeps the common schedule() at one heap insert.
  if (NewEarliest) {
    Epoch.fetch_add(1, std::memory_order_seq_cst);
    futexWakeAll(Epoch);
  }
  return TimerToken(E);
}

std::size_t TimerQueue::pendingForTesting() {
  std::lock_guard<std::mutex> Lock(Mu);
  return Heap.size();
}

void TimerQueue::drainForTesting() {
  auto Now = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> Lock(Mu);
  DrainCv.wait(Lock, [&] {
    return InFlight == 0 && (Heap.empty() || Heap.front()->Deadline > Now);
  });
}

void TimerQueue::timerLoop() {
  TimerStats &TS = timerStats();
  for (;;) {
    // Sample the epoch BEFORE computing the next deadline: a schedule()
    // that lands in between bumps the epoch, so the futex wait below
    // returns immediately instead of oversleeping the new earliest entry.
    std::uint32_t Ep = Epoch.load(std::memory_order_seq_cst);
    std::vector<TimerEntry *> Due;
    std::chrono::nanoseconds Sleep;
    {
      auto Now = std::chrono::steady_clock::now();
      std::unique_lock<std::mutex> Lock(Mu);
      while (!Heap.empty() && Heap.front()->Deadline <= Now) {
        std::pop_heap(Heap.begin(), Heap.end(), HeapOrder{});
        Due.push_back(Heap.back());
        Heap.pop_back();
      }
      Sleep = Heap.empty()
                  ? std::chrono::nanoseconds(-1) // park until schedule() rings
                  : Heap.front()->Deadline - Now;
      InFlight += Due.size();
    }
    for (TimerEntry *E : Due) {
      // Exactly one of us and a concurrent tryCancel() retires the entry
      // from Pending; losing just means the timer was withdrawn in time.
      if (E->tryTransition(TimerEntry::Fired)) {
        bump(TS.Fired);
        E->FireFn(E->Arg);
      }
      E->release(); // the heap's share
    }
    if (!Due.empty()) {
      std::lock_guard<std::mutex> Lock(Mu);
      InFlight -= Due.size();
      DrainCv.notify_all();
    } else {
      futexWait(Epoch, Ep, Sleep);
    }
  }
}
