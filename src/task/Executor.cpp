//===- task/Executor.cpp - fixed thread-pool coroutine executor -----------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "task/Executor.h"

#include <cassert>

using namespace cqs;

namespace {
thread_local Executor *CurrentExecutor = nullptr;
} // namespace

Executor::Executor(unsigned Threads) {
  assert(Threads >= 1 && "executor needs at least one thread");
  Workers.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

Executor::~Executor() {
  shutdown();
  for (std::thread &W : Workers)
    W.join();
}

void Executor::shutdown() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (ShuttingDown)
      return;
    ShuttingDown = true;
  }
  QueueCv.notify_all();
}

bool Executor::post(std::coroutine_handle<> Handle) {
  if (!Handle)
    return false; // moved-from task: reject in every build mode
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (!ShuttingDown) {
      Queue.push_back(Handle);
      QueueCv.notify_one();
      return true;
    }
  }
  // Shutdown already started: no worker will drain the queue again, so an
  // enqueued handle could never run (the old code silently leaked the
  // frame here). Destroy it instead — outside the lock, since the frame's
  // destructors can run arbitrary user code. See the header contract.
  Handle.destroy();
  return false;
}

Executor *Executor::current() { return CurrentExecutor; }

void Executor::workerLoop() {
  CurrentExecutor = this;
  for (;;) {
    std::coroutine_handle<> Handle;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueCv.wait(Lock, [this] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty())
        break; // shutting down and drained
      Handle = Queue.front();
      Queue.pop_front();
    }
    Handle.resume();
  }
  CurrentExecutor = nullptr;
}
