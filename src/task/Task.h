//===- task/Task.h - fire-and-forget coroutine tasks -----------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal coroutine task type for the benchmark/example substrate: a
/// `FireAndForget` coroutine starts suspended, is posted to an Executor with
/// spawn(), and destroys its own frame on completion. Joining is done with
/// a WaitGroup (the paper's coroutine benchmarks always join a fixed batch
/// of coroutines).
///
//===----------------------------------------------------------------------===//

#ifndef CQS_TASK_TASK_H
#define CQS_TASK_TASK_H

#include "support/WaitGroup.h"
#include "task/Executor.h"

#include <cassert>
#include <coroutine>
#include <utility>

namespace cqs {

/// A detached coroutine. Returning one from a coroutine function creates
/// the frame suspended; pass it to spawn() to run it on an executor.
class FireAndForget {
public:
  struct promise_type {
    FireAndForget get_return_object() {
      return FireAndForget(
          std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
  };

  FireAndForget(FireAndForget &&Other) noexcept
      : Handle(std::exchange(Other.Handle, nullptr)) {}
  FireAndForget(const FireAndForget &) = delete;
  FireAndForget &operator=(const FireAndForget &) = delete;

  ~FireAndForget() {
    // A never-spawned task still owns its frame.
    if (Handle)
      Handle.destroy();
  }

  /// Hands the coroutine to \p Exec; the frame frees itself when done.
  /// Spawning a moved-from task is a bug: it asserts in debug builds, and
  /// in release builds it is a harmless no-op (Executor::post rejects the
  /// null handle instead of feeding it to a worker's resume()).
  void spawn(Executor &Exec) && {
    assert(Handle && "spawn() on a moved-from FireAndForget");
    Exec.post(std::exchange(Handle, nullptr));
  }

private:
  explicit FireAndForget(std::coroutine_handle<promise_type> H) : Handle(H) {}

  std::coroutine_handle<promise_type> Handle;
};

} // namespace cqs

#endif // CQS_TASK_TASK_H
