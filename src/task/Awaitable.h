//===- task/Awaitable.h - co_await adapters for CQS futures ----*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bridges the Future<T> of the CQS world into C++20 coroutines: `co_await
/// awaitFuture(Mtx.lock())` suspends the coroutine without blocking its
/// worker thread; the resume(..) that completes the future posts the
/// continuation back onto the executor the coroutine was running on. This
/// mirrors how CancellableContinuation integrates CQS primitives into
/// Kotlin coroutines.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_TASK_AWAITABLE_H
#define CQS_TASK_AWAITABLE_H

#include "future/Future.h"
#include "task/Executor.h"

#include <cassert>
#include <coroutine>
#include <optional>
#include <utility>

namespace cqs {

/// Awaiter adapting a Future<T>. The continuation object lives inside the
/// coroutine frame (this awaiter), which stays alive until resumed — the
/// stability Request::setContinuation requires.
template <typename T, typename Traits = ValueTraits<T>>
class FutureAwaiter : private Request<T, Traits>::Continuation {
public:
  explicit FutureAwaiter(Future<T, Traits> F) : Fut(std::move(F)) {
    assert(Fut.valid() && "cannot await an invalid (broken-cell) future");
  }

  bool await_ready() const {
    return Fut.isImmediate() || Fut.status() != FutureStatus::Pending;
  }

  bool await_suspend(std::coroutine_handle<> H) {
    Exec = Executor::current();
    if (!Exec) {
      // Off-executor await: the coroutine is being driven from a plain
      // thread (no worker pool to repost to), which used to null-deref
      // Exec in release builds when the assert compiled out. Complete the
      // wait here instead — park the caller's thread on the future's
      // DoneFlag futex, then resume the coroutine inline with the result
      // already published. The caller's thread blocks, exactly as a
      // blockingGet() would have; no executor is involved.
      (void)Fut.blockingGet();
      return false; // result settled: resume immediately on this thread
    }
    Continuation = H;
    // If the future completed between await_ready and here, run inline.
    return Fut.request()->setContinuation(this);
  }

  /// The completed value, or nullopt if the request was cancelled.
  std::optional<T> await_resume() const { return Fut.tryGet(); }

private:
  void invoke(std::uint64_t /*ResultWord*/) override {
    // Called by whoever completed/cancelled the request (a releasing
    // thread, a canceller, ...): never run the coroutine inline there —
    // repost it, like kotlinx's dispatched continuations.
    Exec->post(Continuation);
  }

  Future<T, Traits> Fut;
  Executor *Exec = nullptr;
  std::coroutine_handle<> Continuation;
};

/// Convenience: `co_await awaitFuture(Sem.acquire())`.
template <typename T, typename Traits>
FutureAwaiter<T, Traits> awaitFuture(Future<T, Traits> F) {
  return FutureAwaiter<T, Traits>(std::move(F));
}

} // namespace cqs

#endif // CQS_TASK_AWAITABLE_H
