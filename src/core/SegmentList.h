//===- core/SegmentList.h - the "infinite array" of cells ------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CQS conceptually works on an infinite array of cells indexed by two
/// monotone counters (Section 2). This file implements the emulation from
/// Appendix C: a concurrent doubly-linked list of fixed-size segments with
///  - findSegment: locate (or append) the first non-removed segment whose id
///    is >= the requested one (Listing 15, findSegment);
///  - moveForward: advance a segment pointer, maintaining the per-segment
///    count of pointers that reference it (Listing 15, moveForwardResume);
///  - remove: O(1) physical unlinking of a segment whose cells are all
///    cancelled (Listing 15, remove / aliveSegmLeft / aliveSegmRight).
///
/// The pointers count and the cancelled-cells count live in one 32-bit word
/// so the "logically removed" predicate (cancelled == size && pointers == 0)
/// is a single atomic read, exactly as the paper requires ("by storing these
/// numbers in a single register, we are able to modify them atomically").
///
/// Memory reclamation: removed segments are retired through EBR; see
/// reclaim/Ebr.h for why the paper's GC-based argument carries over. All
/// entry points must be called with an active ebr::Guard.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_CORE_SEGMENTLIST_H
#define CQS_CORE_SEGMENTLIST_H

#include "reclaim/Ebr.h"
#include "support/CacheLine.h"
#include "support/ObjectPool.h"
#include "support/TaggedWord.h"

#include "support/Atomic.h"
#include <cassert>
#include <cstdint>
#include <new>
#include <utility>

namespace cqs {

/// One fixed-size block of cells in the infinite-array emulation.
///
/// \tparam Size number of cells per segment (the paper's SEGM_SIZE). Kept a
/// template parameter so tests can force tiny segments (exercising removal
/// on every few operations) and the ablation bench can sweep it.
template <unsigned Size> class alignas(CacheLineSize) Segment {
  static_assert(Size >= 1 && Size < (1u << 16),
                "segment size must fit the 16-bit cancelled counter");

  /// Packed (pointers << 16 | dead). Pointers counts how many of the CQS's
  /// segment pointers (suspendSegm/resumeSegm) currently reference this
  /// segment; dead counts cells in a terminal state (CANCELLED in the
  /// paper; see onCellDead() for the GC-free generalization).
  static constexpr std::uint32_t PointerUnit = 1u << 16;
  static constexpr std::uint32_t CancelledMask = PointerUnit - 1;

public:
  /// Creates the segment with \p InitialPointers segment-pointer references
  /// (2 for the very first segment, 0 for appended ones, matching
  /// "Initialized with (2, 0) for the first segment"). Prefer create(),
  /// which reuses a recycled segment when one is available.
  Segment(std::uint64_t Id, Segment *Prev, std::uint32_t InitialPointers)
      : Id(Id), PrevLink(Prev), State(InitialPointers * PointerUnit) {}

  /// Pool-aware factory for the append path: reconstructs a recycled
  /// segment in place — placement new over the old life, which resets every
  /// member including the const Id (C++20 permits reusing storage of
  /// objects with const members; we always use the returned pointer) — or
  /// allocates a fresh one.
  static Segment *create(std::uint64_t Id, Segment *Prev,
                         std::uint32_t InitialPointers) {
    if constexpr (pool::PoolingEnabled)
      if (Segment *S = Pool::tryAcquire())
        return new (S) Segment(Id, Prev, InitialPointers);
    return new Segment(Id, Prev, InitialPointers);
  }

  /// Disposal for a segment no other thread can reference (findSegment lost
  /// the append race before publishing, or quiescent CQS teardown): no
  /// grace period is needed, the segment goes straight back to the pool.
  static void disposeUnpublished(Segment *S) {
    if constexpr (pool::PoolingEnabled)
      Pool::recycle(S);
    else
      delete S;
  }

  /// EBR deleter (ebr::retireRecycle): the grace period has elapsed, so no
  /// thread can reach this segment any more; pool it for reuse. The stale
  /// state is left in place — create() reconstructs with placement new.
  static void recycleFromEbr(Segment *S) { Pool::recycle(S); }

  const std::uint64_t Id;

  /// Pool freelist link (support/ObjectPool.h); meaningful only while the
  /// segment sits in the pool.
  Segment *NextFree = nullptr;

  /// Tagged cell words; see support/TaggedWord.h for the encoding. Fresh
  /// cells are zero, i.e. Token::Empty.
  Atomic<std::uint64_t> Cells[Size] = {};

  Segment *next() const { return NextLink.load(std::memory_order_acquire); }
  Segment *prev() const { return PrevLink.load(std::memory_order_acquire); }

  /// True iff the segment is logically removed: every cell dead and no
  /// segment pointer references it. Note the tail exemption is handled in
  /// remove(), not here, mirroring the paper.
  bool isRemoved() const {
    return isRemovedState(State.load(std::memory_order_acquire));
  }

  /// Registers one more dead cell; physically removes the segment when it
  /// becomes logically removed.
  ///
  /// This is the paper's onCancelledCell() (Listing 15), generalized the
  /// way the production Kotlin implementation generalizes it: a cell counts
  /// as dead not only when CANCELLED but also once it reaches any other
  /// terminal state that no operation will ever revisit (RESUMED, TAKEN,
  /// processed REFUSE). On the JVM fully-processed segments simply become
  /// garbage once unreferenced; without a GC we must remove them through
  /// the same pointers/counter protocol, or every segment ever used would
  /// leak. The removal-safety argument is identical: a dead cell is never
  /// accessed again, so a fully-dead segment may be unlinked.
  void onCellDead() {
    std::uint32_t New = State.fetch_add(1, std::memory_order_acq_rel) + 1;
    assert((New & CancelledMask) <= Size && "more dead cells than cells");
    if (isRemovedState(New))
      remove();
  }

  /// Attempts to register one more segment-pointer reference; fails iff the
  /// segment is already logically removed (Listing 15, tryIncPointers).
  bool tryIncPointers() {
    std::uint32_t Cur = State.load(std::memory_order_acquire);
    for (;;) {
      if (isRemovedState(Cur))
        return false;
      if (State.compare_exchange_weak(Cur, Cur + PointerUnit,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire))
        return true;
    }
  }

  /// Drops one segment-pointer reference; returns true iff the segment
  /// became logically removed (Listing 15, decPointers).
  bool decPointers() {
    std::uint32_t New =
        State.fetch_sub(PointerUnit, std::memory_order_acq_rel) - PointerUnit;
    return isRemovedState(New);
  }

  /// Physically unlinks this logically-removed segment in O(1) absent
  /// contention (Listing 15, remove). Removal of the tail is postponed: the
  /// next findSegment that appends a successor finishes the job.
  void remove() {
    assert(ebr::isPinned() && "segment removal requires an EBR guard");
    for (;;) {
      // The tail segment is never removed (its id must stay unique).
      Segment *NextAlive = NextLink.load(std::memory_order_acquire);
      if (!NextAlive)
        return;

      Segment *Right = aliveSegmentRight();
      Segment *Left = aliveSegmentLeft();

      // Link the alive neighbours around us.
      Right->PrevLink.store(Left, std::memory_order_release);
      if (Left)
        Left->NextLink.store(Right, std::memory_order_release);

      // The neighbours may have been removed concurrently; if so, retry so
      // that the stale links we just wrote are corrected before this guard
      // is released (the EBR soundness argument relies on this).
      if (Right->isRemoved() &&
          Right->NextLink.load(std::memory_order_acquire) != nullptr)
        continue;
      if (Left && Left->isRemoved())
        continue;

      // Success. Hand the memory to EBR exactly once; concurrent remove()
      // calls for the same segment are allowed by the protocol. With
      // pooling the deleter recycles instead of freeing — still strictly
      // after the three-epoch rule fires.
      if (!RetireFlag.test_and_set(std::memory_order_acq_rel)) {
        if constexpr (pool::PoolingEnabled)
          ebr::retireRecycle(this);
        else
          ebr::retireObject(this);
      }
      return;
    }
  }

  /// First non-removed segment to the left, or null if none (Listing 15,
  /// aliveSegmLeft).
  Segment *aliveSegmentLeft() const {
    Segment *Cur = PrevLink.load(std::memory_order_acquire);
    while (Cur && Cur->isRemoved())
      Cur = Cur->PrevLink.load(std::memory_order_acquire);
    return Cur;
  }

  /// First non-removed segment to the right, or the tail if all are removed
  /// (Listing 15, aliveSegmRight). Requires next() != null.
  Segment *aliveSegmentRight() const {
    Segment *Cur = NextLink.load(std::memory_order_acquire);
    assert(Cur && "aliveSegmentRight called on the tail");
    while (Cur->isRemoved()) {
      Segment *Next = Cur->NextLink.load(std::memory_order_acquire);
      if (!Next)
        break;
      Cur = Next;
    }
    return Cur;
  }

  /// Clears the prev link; always sound (the paper: "setting the prev of a
  /// segment to null is always valid"), used by resume(..) to let processed
  /// segments be collected.
  void clearPrev() { PrevLink.store(nullptr, std::memory_order_release); }

  /// Test hook: raw (pointers, cancelled) snapshot.
  std::pair<std::uint32_t, std::uint32_t> stateForTesting() const {
    std::uint32_t S = State.load(std::memory_order_acquire);
    return {S >> 16, S & CancelledMask};
  }

  /// Whether this segment has been handed to EBR (destructor bookkeeping).
  bool isRetiredForTesting() const {
    // test_and_set-only flags have no plain load; approximate via a copy.
    return const_cast<Segment *>(this)->RetireFlag.test(
        std::memory_order_acquire);
  }

private:
  template <unsigned S> friend class SegmentList;

  using Pool = pool::ObjectPool<Segment, pool::PoolKind::Segment>;

  static bool isRemovedState(std::uint32_t S) {
    return (S & CancelledMask) == Size && (S >> 16) == 0;
  }

  Atomic<Segment *> NextLink{nullptr};
  Atomic<Segment *> PrevLink;
  Atomic<std::uint32_t> State;
  AtomicFlag RetireFlag;
};

/// Stateless operations over the segment list; the CQS owns the two segment
/// pointers and passes them in.
template <unsigned Size> class SegmentList {
public:
  using Seg = Segment<Size>;

  /// Returns the first non-removed segment with id >= \p Id, appending new
  /// segments at the tail if needed (Listing 15, findSegment).
  static Seg *findSegment(Seg *Start, std::uint64_t Id) {
    assert(ebr::isPinned() && "list traversal requires an EBR guard");
    Seg *Cur = Start;
    while (Cur->Id < Id || Cur->isRemoved()) {
      Seg *Next = Cur->NextLink.load(std::memory_order_acquire);
      if (!Next) {
        // Reached the tail: append a successor. The CAS stays strong — its
        // failure path consumes Expected as the new tail, so a spurious
        // failure would hand back null.
        Seg *Fresh = Seg::create(Cur->Id + 1, Cur, /*InitialPointers=*/0);
        Seg *Expected = nullptr;
        if (Cur->NextLink.compare_exchange_strong(Expected, Fresh,
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_acquire)) {
          // The old tail may have become removable while it was the tail;
          // its postponed removal happens now (Listing 15, line 35).
          if (Cur->isRemoved())
            Cur->remove();
          Next = Fresh;
        } else {
          Seg::disposeUnpublished(Fresh); // lost the race; never published
          Next = Expected;
        }
      }
      Cur = Next;
    }
    return Cur;
  }

  /// Moves \p SegmentPtr forward to \p To unless it already references a
  /// segment at least as far; returns false iff \p To got logically removed
  /// first (Listing 15, moveForwardResume).
  static bool moveForward(Atomic<Seg *> &SegmentPtr, Seg *To) {
    for (;;) {
      Seg *Cur = SegmentPtr.load(std::memory_order_acquire);
      if (Cur->Id >= To->Id)
        return true;
      if (!To->tryIncPointers())
        return false;
      // Weak CAS: we are in a retry loop and the failure path (giving the
      // reference back, reloading) is correct for spurious failures too.
      if (SegmentPtr.compare_exchange_weak(Cur, To,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        if (Cur->decPointers())
          Cur->remove();
        return true;
      }
      // Lost the race: give back the reference we took on To.
      if (To->decPointers())
        To->remove();
    }
  }

  /// findSegment + moveForward, restarted until the pointer is advanced
  /// past a non-removed segment (Listing 15, findAndMoveForwardResume).
  static Seg *findAndMoveForward(Atomic<Seg *> &SegmentPtr, Seg *Start,
                                 std::uint64_t Id) {
    for (;;) {
      Seg *S = findSegment(Start, Id);
      if (moveForward(SegmentPtr, S))
        return S;
    }
  }
};

} // namespace cqs

#endif // CQS_CORE_SEGMENTLIST_H
