//===- core/CqsStats.h - path-coverage counters for the CQS ----*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Relaxed per-instance counters for the interesting code paths of the
/// CQS state machine. Two purposes:
///  - tests assert that a stress scenario actually *exercised* the race it
///    targets (e.g. a delegation-path test is vacuous if no resume ever
///    met a FUTURE_CANCELLED cell);
///  - benchmark analysis (EXPERIMENTS.md) can attribute costs to paths
///    (eliminations vs completions vs broken cells).
///
/// All increments are relaxed single atomics on cold paths; the two hot
/// paths (install + complete) add one relaxed increment each, which is
/// noise next to their CAS.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_CORE_CQSSTATS_H
#define CQS_CORE_CQSSTATS_H

#include "support/ObjectPool.h"

#include "support/Atomic.h"
#include <cstdint>
#include <mutex>

namespace cqs {

struct CqsStats;

/// A plain, copyable snapshot of one CqsStats block (or of the whole
/// process, see CqsStats::processSnapshot). Field order mirrors CqsStats;
/// the name/field tables let generic code (the benchmark JSON exporter,
/// tests) iterate without hand-listing counters in a second place.
///
/// The six pool fields (request/segment hits, misses, recycled) are
/// process-wide — the pools are shared, not per-instance — so they are
/// zero in per-instance snapshots and only populated by processSnapshot(),
/// which is what the benchmark JSON exporter deltas. The three timed-wait
/// fields (future/TimedAwait.h and the channel's timed send), the four
/// shard fields (the sharded semaphore's permit caches) and the ten
/// channel-v2/select fields (sync/ChannelV2.h cell traffic) follow the same
/// pattern: those layers sit above any single CQS instance.
struct CqsStatsSnapshot {
  static constexpr int NumFields = 46;

  std::uint64_t Suspensions = 0;
  std::uint64_t Eliminations = 0;
  std::uint64_t SuspendFailures = 0;
  std::uint64_t Completions = 0;
  std::uint64_t ValueDeposits = 0;
  std::uint64_t BrokenCells = 0;
  std::uint64_t SimpleFailures = 0;
  std::uint64_t SkippedCells = 0;
  std::uint64_t SegmentSkips = 0;
  std::uint64_t Delegations = 0;
  std::uint64_t RefusedResumes = 0;
  std::uint64_t Cancellations = 0;
  std::uint64_t RefuseVerdicts = 0;
  std::uint64_t BatchResumes = 0;
  std::uint64_t BatchedWakeups = 0;
  std::uint64_t RequestPoolHits = 0;
  std::uint64_t RequestPoolMisses = 0;
  std::uint64_t RequestsRecycled = 0;
  std::uint64_t SegmentPoolHits = 0;
  std::uint64_t SegmentPoolMisses = 0;
  std::uint64_t SegmentsRecycled = 0;
  std::uint64_t TimedWaits = 0;
  std::uint64_t TimedTimeouts = 0;
  std::uint64_t TimedRescues = 0;
  std::uint64_t ShardHits = 0;
  std::uint64_t ShardMisses = 0;
  std::uint64_t ShardPuts = 0;
  std::uint64_t ShardRebalances = 0;
  std::uint64_t ChRendezvous = 0;
  std::uint64_t ChDeposits = 0;
  std::uint64_t ChSenderSuspends = 0;
  std::uint64_t ChReceiverSuspends = 0;
  std::uint64_t ChPoisons = 0;
  std::uint64_t ChExpandResumes = 0;
  std::uint64_t SelImmediateWins = 0;
  std::uint64_t SelParkedWins = 0;
  std::uint64_t SelLoserCancels = 0;
  std::uint64_t SelRedeliveries = 0;
  std::uint64_t TqScheduled = 0;
  std::uint64_t TqFired = 0;
  std::uint64_t TqCancelled = 0;
  std::uint64_t TqInlineExpiries = 0;
  std::uint64_t JoinAnyWins = 0;
  std::uint64_t JoinAnyLoserCancels = 0;
  std::uint64_t JoinAnyStrays = 0;
  std::uint64_t JoinScopeCancels = 0;

  static const char *fieldName(int I) {
    static const char *const Names[NumFields] = {
        "suspensions",   "eliminations", "suspend_failures",
        "completions",   "value_deposits", "broken_cells",
        "simple_failures", "skipped_cells", "segment_skips",
        "delegations",   "refused_resumes", "cancellations",
        "refuse_verdicts", "batch_resumes", "batched_wakeups",
        "request_pool_hits", "request_pool_misses",
        "requests_recycled", "segment_pool_hits", "segment_pool_misses",
        "segments_recycled", "timed_waits", "timed_timeouts",
        "timed_rescues", "shard_hits", "shard_misses", "shard_puts",
        "shard_rebalances", "ch_rendezvous", "ch_deposits",
        "ch_sender_suspends", "ch_receiver_suspends", "ch_poisons",
        "ch_expand_resumes", "select_immediate_wins", "select_parked_wins",
        "select_loser_cancels", "select_redeliveries", "tq_scheduled",
        "tq_fired", "tq_cancelled", "tq_inline_expiries", "join_any_wins",
        "join_any_loser_cancels", "join_any_strays", "join_scope_cancels"};
    return Names[I];
  }

  std::uint64_t field(int I) const {
    const std::uint64_t *Fields[NumFields] = {
        &Suspensions,      &Eliminations,      &SuspendFailures,
        &Completions,      &ValueDeposits,     &BrokenCells,
        &SimpleFailures,   &SkippedCells,      &SegmentSkips,
        &Delegations,      &RefusedResumes,    &Cancellations,
        &RefuseVerdicts,   &BatchResumes,      &BatchedWakeups,
        &RequestPoolHits,  &RequestPoolMisses,
        &RequestsRecycled, &SegmentPoolHits,   &SegmentPoolMisses,
        &SegmentsRecycled, &TimedWaits,        &TimedTimeouts,
        &TimedRescues,     &ShardHits,         &ShardMisses,
        &ShardPuts,        &ShardRebalances,   &ChRendezvous,
        &ChDeposits,       &ChSenderSuspends,  &ChReceiverSuspends,
        &ChPoisons,        &ChExpandResumes,   &SelImmediateWins,
        &SelParkedWins,    &SelLoserCancels,   &SelRedeliveries,
        &TqScheduled,      &TqFired,           &TqCancelled,
        &TqInlineExpiries, &JoinAnyWins,       &JoinAnyLoserCancels,
        &JoinAnyStrays,    &JoinScopeCancels};
    return *Fields[I];
  }

  std::uint64_t &field(int I) {
    std::uint64_t *Fields[NumFields] = {
        &Suspensions,      &Eliminations,      &SuspendFailures,
        &Completions,      &ValueDeposits,     &BrokenCells,
        &SimpleFailures,   &SkippedCells,      &SegmentSkips,
        &Delegations,      &RefusedResumes,    &Cancellations,
        &RefuseVerdicts,   &BatchResumes,      &BatchedWakeups,
        &RequestPoolHits,  &RequestPoolMisses,
        &RequestsRecycled, &SegmentPoolHits,   &SegmentPoolMisses,
        &SegmentsRecycled, &TimedWaits,        &TimedTimeouts,
        &TimedRescues,     &ShardHits,         &ShardMisses,
        &ShardPuts,        &ShardRebalances,   &ChRendezvous,
        &ChDeposits,       &ChSenderSuspends,  &ChReceiverSuspends,
        &ChPoisons,        &ChExpandResumes,   &SelImmediateWins,
        &SelParkedWins,    &SelLoserCancels,   &SelRedeliveries,
        &TqScheduled,      &TqFired,           &TqCancelled,
        &TqInlineExpiries, &JoinAnyWins,       &JoinAnyLoserCancels,
        &JoinAnyStrays,    &JoinScopeCancels};
    return *Fields[I];
  }

  CqsStatsSnapshot &operator+=(const CqsStatsSnapshot &O) {
    for (int I = 0; I < NumFields; ++I)
      field(I) += O.field(I);
    return *this;
  }

  /// Counter-wise delta (saturating at zero; counters are monotone, so a
  /// negative delta only appears if the caller mixed up before/after).
  CqsStatsSnapshot operator-(const CqsStatsSnapshot &O) const {
    CqsStatsSnapshot D;
    for (int I = 0; I < NumFields; ++I)
      D.field(I) = field(I) >= O.field(I) ? field(I) - O.field(I) : 0;
    return D;
  }

  std::uint64_t total() const {
    std::uint64_t T = 0;
    for (int I = 0; I < NumFields; ++I)
      T += field(I);
    return T;
  }
};

/// Process-wide counters for the deadline layer (future/TimedAwait.h and
/// Channel::sendFor). One block for the whole process, like the object
/// pools: a timed wait spans the caller and the primitive, so it is not
/// attributable to a single CQS instance. Rescues count failed cancel()s —
/// the resume won the race and the operation reported success at the
/// deadline; tests assert this path was actually exercised.
struct TimedWaitStats {
  PlainAtomic<std::uint64_t> Waits{0};
  PlainAtomic<std::uint64_t> Timeouts{0};
  PlainAtomic<std::uint64_t> Rescues{0};
};

inline TimedWaitStats &timedWaitStats() {
  static TimedWaitStats S;
  return S;
}

/// Process-wide counters for the central timer queue (task/TimerQueue.h).
/// One block for the whole process, like TimedWaitStats: the queue is a
/// process singleton.
///  - Scheduled: entries armed on the timer thread's heap.
///  - Fired: entries whose deadline elapsed and whose callback ran.
///  - CancelledTimers: entries withdrawn by tryCancel() before firing (the
///    common case — the operation completed inside its deadline).
///  - InlineExpiries: non-positive deadlines expired inline in the caller
///    (no heap entry); this is the path schedcheck scenarios explore.
struct TimerStats {
  PlainAtomic<std::uint64_t> Scheduled{0};
  PlainAtomic<std::uint64_t> Fired{0};
  PlainAtomic<std::uint64_t> CancelledTimers{0};
  PlainAtomic<std::uint64_t> InlineExpiries{0};
};

inline TimerStats &timerStats() {
  static TimerStats S;
  return S;
}

/// Process-wide counters for the sharded permit caches (ShardedSemaphore).
/// One block for the whole process, like the pools: shard traffic is a
/// property of the contention-scaling layer, and a single block keeps the
/// fast path to one relaxed increment with no instance plumbing.
///  - Hits: acquire served from a per-thread shard cache (no global RMW).
///  - Misses: shard caches empty, acquire fell through to the global pool.
///  - Puts: release banked its permit into a shard cache.
///  - Rebalances: cached permits drained back to the global pool (counted
///    per permit) because an acquirer registered as a waiter.
struct ShardStats {
  PlainAtomic<std::uint64_t> Hits{0};
  PlainAtomic<std::uint64_t> Misses{0};
  PlainAtomic<std::uint64_t> Puts{0};
  PlainAtomic<std::uint64_t> Rebalances{0};
};

inline ShardStats &shardStats() {
  static ShardStats S;
  return S;
}

/// Process-wide counters for the structured-concurrency combinators
/// (task/Combinators.h, task/Scope.h). One block for the whole process,
/// like TimedWaitStats: a join spans multiple primitives.
///  - AnyWins: whenAny/awaitWhenAny resolved with a winner.
///  - AnyLoserCancels: losing futures successfully withdrawn by the
///    combinator (their resources returned through SMART cancellation).
///  - AnyStrays: a loser's cancel lost the result-word CAS to a concurrent
///    resume — the value stays owned by the caller through its future
///    (conservation: never dropped by the combinator).
///  - ScopeCancels: futures cancelled by CancelScope::cancel() fan-out
///    (counted per successfully cancelled future).
struct JoinStats {
  PlainAtomic<std::uint64_t> AnyWins{0};
  PlainAtomic<std::uint64_t> AnyLoserCancels{0};
  PlainAtomic<std::uint64_t> AnyStrays{0};
  PlainAtomic<std::uint64_t> ScopeCancels{0};
};

inline JoinStats &joinStats() {
  static JoinStats S;
  return S;
}

/// Process-wide counters for the single-array channel (sync/ChannelV2.h)
/// and its select layer. One block for the whole process, like the pools:
/// channel-v2 traffic is attributed per benchmark sample by deltas, and a
/// single block keeps the rendezvous fast path at one relaxed increment.
///  - Rendezvous: a send met a parked receiver (or vice versa) in the cell
///    and handed the element over directly — the elimination fast path.
///  - Deposits: a send stored its element into an in-buffer (or
///    receiver-covered) cell without suspending.
///  - SenderSuspends / ReceiverSuspends: cell-parked waiters.
///  - Poisons: a receiver (or trySend/tryReceive) broke an empty cell it
///    could not use, forcing the other side to a fresh index.
///  - ExpandResumes: expandBuffer() resumed a parked sender while growing
///    the buffer window past its cell.
///  - SelImmediateWins: a select clause won during registration (peer
///    already present).
///  - SelParkedWins: a parked select clause was won by an arriving sender.
///  - SelLoserCancels: select-receiver waiters cancelled — losing clauses
///    plus clauses cancelled by close().
///  - SelRedeliveries: an element consumed by a losing/lost clause was
///    re-delivered through a fresh sender index (never lost).
struct ChannelStats {
  PlainAtomic<std::uint64_t> Rendezvous{0};
  PlainAtomic<std::uint64_t> Deposits{0};
  PlainAtomic<std::uint64_t> SenderSuspends{0};
  PlainAtomic<std::uint64_t> ReceiverSuspends{0};
  PlainAtomic<std::uint64_t> Poisons{0};
  PlainAtomic<std::uint64_t> EbResumes{0};
  PlainAtomic<std::uint64_t> SelImmediateWins{0};
  PlainAtomic<std::uint64_t> SelParkedWins{0};
  PlainAtomic<std::uint64_t> SelLoserCancels{0};
  PlainAtomic<std::uint64_t> SelRedeliveries{0};
};

inline ChannelStats &channelStats() {
  static ChannelStats S;
  return S;
}

/// Counter block embedded in every Cqs instance.
struct CqsStats {
  /// suspend() installed a waiter into an empty cell.
  PlainAtomic<std::uint64_t> Suspensions{0};
  /// suspend() found a value (resume-before-suspend elimination).
  PlainAtomic<std::uint64_t> Eliminations{0};
  /// suspend() met a broken cell and failed (SYNC mode).
  PlainAtomic<std::uint64_t> SuspendFailures{0};
  /// resume() completed a stored waiter.
  PlainAtomic<std::uint64_t> Completions{0};
  /// resume() deposited its value into an empty cell (ASYNC elimination
  /// hand-off or SYNC rendezvous attempt).
  PlainAtomic<std::uint64_t> ValueDeposits{0};
  /// SYNC-mode resume() timed out and broke the cell.
  PlainAtomic<std::uint64_t> BrokenCells{0};
  /// resume() failed on a cancelled waiter (simple mode).
  PlainAtomic<std::uint64_t> SimpleFailures{0};
  /// resume() skipped a CANCELLED cell (smart mode, per cell).
  PlainAtomic<std::uint64_t> SkippedCells{0};
  /// resume() jumped over one or more removed segments in one hop.
  PlainAtomic<std::uint64_t> SegmentSkips{0};
  /// resume() delegated its completion to the cancellation handler by
  /// overwriting a FUTURE_CANCELLED cell with its value (Figure 4).
  PlainAtomic<std::uint64_t> Delegations{0};
  /// resume() met REFUSE and ran completeRefusedResume.
  PlainAtomic<std::uint64_t> RefusedResumes{0};
  /// Cancellation handler runs (simple + smart).
  PlainAtomic<std::uint64_t> Cancellations{0};
  /// Smart cancellation verdicts that refused the incoming resume.
  PlainAtomic<std::uint64_t> RefuseVerdicts{0};
  /// resumeBatch() calls (each wakes up to N waiters in one traversal).
  PlainAtomic<std::uint64_t> BatchResumes{0};
  /// Waiters completed by resumeBatch() calls (the per-waiter tally; a
  /// high BatchedWakeups/BatchResumes ratio is the batching win).
  PlainAtomic<std::uint64_t> BatchedWakeups{0};

  /// Relaxed read of a counter (tests call these at quiescence).
  static std::uint64_t read(const PlainAtomic<std::uint64_t> &C) {
    return C.load(std::memory_order_relaxed);
  }

  /// Relaxed snapshot of this block. Exact at quiescence; during
  /// concurrent traffic each counter is individually coherent but the set
  /// is not an atomic cut (fine for attribution/telemetry).
  CqsStatsSnapshot snapshot() const {
    CqsStatsSnapshot S;
    S.Suspensions = read(Suspensions);
    S.Eliminations = read(Eliminations);
    S.SuspendFailures = read(SuspendFailures);
    S.Completions = read(Completions);
    S.ValueDeposits = read(ValueDeposits);
    S.BrokenCells = read(BrokenCells);
    S.SimpleFailures = read(SimpleFailures);
    S.SkippedCells = read(SkippedCells);
    S.SegmentSkips = read(SegmentSkips);
    S.Delegations = read(Delegations);
    S.RefusedResumes = read(RefusedResumes);
    S.Cancellations = read(Cancellations);
    S.RefuseVerdicts = read(RefuseVerdicts);
    S.BatchResumes = read(BatchResumes);
    S.BatchedWakeups = read(BatchedWakeups);
    return S;
  }

  /// Every live CqsStats block is linked into a process-wide registry so
  /// the benchmark pipeline can attribute CQS path traffic to a measured
  /// sample without plumbing every primitive's instance outward:
  /// processSnapshot() = counters retired by destroyed instances + the
  /// live instances' current counters. Registration is a mutex-guarded
  /// cold-path operation (instance construction/destruction); the hot
  /// paths are untouched.
  CqsStats() {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mu);
    Next = R.Head;
    Prev = nullptr;
    if (R.Head)
      R.Head->Prev = this;
    R.Head = this;
  }

  CqsStats(const CqsStats &) = delete;
  CqsStats &operator=(const CqsStats &) = delete;

  ~CqsStats() {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mu);
    R.Retired += snapshot();
    if (Prev)
      Prev->Next = Next;
    else
      R.Head = Next;
    if (Next)
      Next->Prev = Prev;
  }

  /// Aggregate of all CQS traffic in this process so far (live + retired
  /// instances), plus the process-wide object-pool counters. Deltas of
  /// this around a benchmark sample attribute path coverage *and* pool
  /// behavior to that data point.
  static CqsStatsSnapshot processSnapshot() {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mu);
    CqsStatsSnapshot S = R.Retired;
    for (CqsStats *I = R.Head; I; I = I->Next)
      S += I->snapshot();
    auto ReadPool = [](const PlainAtomic<std::uint64_t> &C) {
      return C.load(std::memory_order_relaxed);
    };
    const pool::PoolStats &Req = pool::stats(pool::PoolKind::Request);
    const pool::PoolStats &Seg = pool::stats(pool::PoolKind::Segment);
    S.RequestPoolHits = ReadPool(Req.Hits);
    S.RequestPoolMisses = ReadPool(Req.Misses);
    S.RequestsRecycled = ReadPool(Req.Recycled);
    S.SegmentPoolHits = ReadPool(Seg.Hits);
    S.SegmentPoolMisses = ReadPool(Seg.Misses);
    S.SegmentsRecycled = ReadPool(Seg.Recycled);
    const TimedWaitStats &TW = timedWaitStats();
    S.TimedWaits = ReadPool(TW.Waits);
    S.TimedTimeouts = ReadPool(TW.Timeouts);
    S.TimedRescues = ReadPool(TW.Rescues);
    const ShardStats &Sh = shardStats();
    S.ShardHits = ReadPool(Sh.Hits);
    S.ShardMisses = ReadPool(Sh.Misses);
    S.ShardPuts = ReadPool(Sh.Puts);
    S.ShardRebalances = ReadPool(Sh.Rebalances);
    const ChannelStats &Ch = channelStats();
    S.ChRendezvous = ReadPool(Ch.Rendezvous);
    S.ChDeposits = ReadPool(Ch.Deposits);
    S.ChSenderSuspends = ReadPool(Ch.SenderSuspends);
    S.ChReceiverSuspends = ReadPool(Ch.ReceiverSuspends);
    S.ChPoisons = ReadPool(Ch.Poisons);
    S.ChExpandResumes = ReadPool(Ch.EbResumes);
    S.SelImmediateWins = ReadPool(Ch.SelImmediateWins);
    S.SelParkedWins = ReadPool(Ch.SelParkedWins);
    S.SelLoserCancels = ReadPool(Ch.SelLoserCancels);
    S.SelRedeliveries = ReadPool(Ch.SelRedeliveries);
    const TimerStats &Tq = timerStats();
    S.TqScheduled = ReadPool(Tq.Scheduled);
    S.TqFired = ReadPool(Tq.Fired);
    S.TqCancelled = ReadPool(Tq.CancelledTimers);
    S.TqInlineExpiries = ReadPool(Tq.InlineExpiries);
    const JoinStats &Jn = joinStats();
    S.JoinAnyWins = ReadPool(Jn.AnyWins);
    S.JoinAnyLoserCancels = ReadPool(Jn.AnyLoserCancels);
    S.JoinAnyStrays = ReadPool(Jn.AnyStrays);
    S.JoinScopeCancels = ReadPool(Jn.ScopeCancels);
    return S;
  }

private:
  struct Registry {
    std::mutex Mu;
    CqsStats *Head = nullptr;
    CqsStatsSnapshot Retired;
  };

  static Registry &registry() {
    static Registry R;
    return R;
  }

  CqsStats *Prev = nullptr;
  CqsStats *Next = nullptr;
};

/// Relaxed increment helper keeping call sites one-liners.
inline void bump(PlainAtomic<std::uint64_t> &C) {
  C.fetch_add(1, std::memory_order_relaxed);
}

} // namespace cqs

#endif // CQS_CORE_CQSSTATS_H
