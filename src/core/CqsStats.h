//===- core/CqsStats.h - path-coverage counters for the CQS ----*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Relaxed per-instance counters for the interesting code paths of the
/// CQS state machine. Two purposes:
///  - tests assert that a stress scenario actually *exercised* the race it
///    targets (e.g. a delegation-path test is vacuous if no resume ever
///    met a FUTURE_CANCELLED cell);
///  - benchmark analysis (EXPERIMENTS.md) can attribute costs to paths
///    (eliminations vs completions vs broken cells).
///
/// All increments are relaxed single atomics on cold paths; the two hot
/// paths (install + complete) add one relaxed increment each, which is
/// noise next to their CAS.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_CORE_CQSSTATS_H
#define CQS_CORE_CQSSTATS_H

#include <atomic>
#include <cstdint>

namespace cqs {

/// Counter block embedded in every Cqs instance.
struct CqsStats {
  /// suspend() installed a waiter into an empty cell.
  std::atomic<std::uint64_t> Suspensions{0};
  /// suspend() found a value (resume-before-suspend elimination).
  std::atomic<std::uint64_t> Eliminations{0};
  /// suspend() met a broken cell and failed (SYNC mode).
  std::atomic<std::uint64_t> SuspendFailures{0};
  /// resume() completed a stored waiter.
  std::atomic<std::uint64_t> Completions{0};
  /// resume() deposited its value into an empty cell (ASYNC elimination
  /// hand-off or SYNC rendezvous attempt).
  std::atomic<std::uint64_t> ValueDeposits{0};
  /// SYNC-mode resume() timed out and broke the cell.
  std::atomic<std::uint64_t> BrokenCells{0};
  /// resume() failed on a cancelled waiter (simple mode).
  std::atomic<std::uint64_t> SimpleFailures{0};
  /// resume() skipped a CANCELLED cell (smart mode, per cell).
  std::atomic<std::uint64_t> SkippedCells{0};
  /// resume() jumped over one or more removed segments in one hop.
  std::atomic<std::uint64_t> SegmentSkips{0};
  /// resume() delegated its completion to the cancellation handler by
  /// overwriting a FUTURE_CANCELLED cell with its value (Figure 4).
  std::atomic<std::uint64_t> Delegations{0};
  /// resume() met REFUSE and ran completeRefusedResume.
  std::atomic<std::uint64_t> RefusedResumes{0};
  /// Cancellation handler runs (simple + smart).
  std::atomic<std::uint64_t> Cancellations{0};
  /// Smart cancellation verdicts that refused the incoming resume.
  std::atomic<std::uint64_t> RefuseVerdicts{0};

  /// Relaxed read of a counter (tests call these at quiescence).
  static std::uint64_t read(const std::atomic<std::uint64_t> &C) {
    return C.load(std::memory_order_relaxed);
  }
};

/// Relaxed increment helper keeping call sites one-liners.
inline void bump(std::atomic<std::uint64_t> &C) {
  C.fetch_add(1, std::memory_order_relaxed);
}

} // namespace cqs

#endif // CQS_CORE_CQSSTATS_H
