//===- core/Cqs.h - the CancellableQueueSynchronizer -----------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CancellableQueueSynchronizer (CQS) of Koval, Khalanskiy and Alistarh,
/// "CQS: A Formally-Verified Framework for Fair and Abortable
/// Synchronization" (PLDI 2023).
///
/// CQS maintains a FIFO queue of waiting requests over an infinite array of
/// cells (emulated by core/SegmentList.h) indexed by two monotone counters:
///
///  - suspend() takes the next suspend index, installs a Request future into
///    the corresponding cell and returns it; if a racing resume(..) already
///    deposited a value there, suspend() completes immediately (elimination).
///  - resume(value) takes the next resume index and completes the waiter in
///    the corresponding cell; if it arrives first it deposits the value
///    (asynchronous mode) or rendezvouses with the upcoming suspend()
///    within a bounded wait, breaking the cell on timeout (synchronous mode,
///    Appendix B).
///
/// Cancellation (Section 3) comes in two modes:
///  - Simple: a resume(..) that meets a cancelled waiter fails, and the
///    caller compensates (e.g. Mutex::unlock restarts).
///  - Smart: cancelled cells are skipped in O(1) amortized; the primitive
///    supplies onCancellation()/completeRefusedResume(..) so that the
///    "last-waiter cancelled vs. incoming resume" race resolves through the
///    REFUSE protocol instead of losing the resumption value.
///
/// resume-before-suspend is explicitly allowed as long as the matching
/// suspend() is guaranteed to eventually arrive; the primitives in src/sync
/// rely on this for their three-line fast paths.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_CORE_CQS_H
#define CQS_CORE_CQS_H

#include "core/CqsStats.h"
#include "core/SegmentList.h"
#include "future/Future.h"
#include "reclaim/Ebr.h"
#include "support/Backoff.h"
#include "support/CacheLine.h"
#include "support/TaggedWord.h"

#include "support/Atomic.h"
#include <cassert>
#include <cstdint>

namespace cqs {

/// How resume(..) treats cancelled waiters (Section 3).
enum class CancellationMode {
  /// resume(..) fails on a cancelled waiter; the caller restarts.
  Simple,
  /// resume(..) skips cancelled waiters; requires a SmartCancellationHandler
  /// implementing the REFUSE protocol.
  Smart,
};

/// How resume(..) behaves when it reaches the cell before suspend()
/// (Appendix B).
enum class ResumptionMode {
  /// Deposit the value and return; the later suspend() picks it up.
  Async,
  /// Rendezvous with suspend() within a bounded wait; break the cell and
  /// fail on timeout. Required for non-blocking operations like tryLock().
  Sync,
};

/// The CancellableQueueSynchronizer.
///
/// \tparam T the type transferred from resume(..) to the completed waiter
///   (Unit for pure synchronization, element pointers for pools).
/// \tparam Traits how T is packed into a tagged word (support/ValueCodec.h).
/// \tparam SegmentSize the paper's SEGM_SIZE.
template <typename T, typename Traits = ValueTraits<T>,
          unsigned SegmentSize = 16>
class Cqs {
public:
  using FutureType = Future<T, Traits>;
  using RequestType = Request<T, Traits>;
  using Seg = Segment<SegmentSize>;
  using List = SegmentList<SegmentSize>;

  /// Callbacks a primitive supplies to use smart cancellation (Listing 3).
  class SmartCancellationHandler {
  public:
    /// Invoked when a waiter is cancelled; must logically remove it from
    /// the primitive's state. Returns true if a future resume(..) can
    /// safely skip the cell (-> CANCELLED), false if the cancelled waiter
    /// was the last one and the incoming resume(..) must be refused
    /// (-> REFUSE).
    virtual bool onCancellation() = 0;

    /// Invoked by the refused resume(..) (or by the cancellation handler it
    /// raced with) to dispose of the resumption value — e.g. a pool returns
    /// the element to its storage; a semaphore does nothing because
    /// onCancellation() already returned the permit.
    virtual void completeRefusedResume(T Value) = 0;

  protected:
    ~SmartCancellationHandler() = default;
  };

  /// \p Handler must be non-null iff \p CMode is Smart and must outlive the
  /// CQS.
  explicit Cqs(CancellationMode CMode = CancellationMode::Simple,
               ResumptionMode RMode = ResumptionMode::Async,
               SmartCancellationHandler *Handler = nullptr)
      : CMode(CMode), RMode(RMode), Handler(Handler) {
    assert((CMode != CancellationMode::Smart || Handler) &&
           "smart cancellation requires a handler");
    auto *First = Seg::create(0, nullptr, /*InitialPointers=*/2);
    SuspendSegm->store(First, std::memory_order_relaxed);
    ResumeSegm->store(First, std::memory_order_relaxed);
  }

  Cqs(const Cqs &) = delete;
  Cqs &operator=(const Cqs &) = delete;

  /// Destruction requires quiescence: no concurrent operations, and every
  /// suspend() either completed or cancelled. Segments still linked at this
  /// point (everything from the lagging segment pointer rightwards) are
  /// freed here; already-removed segments belong to EBR.
  ~Cqs() {
    Seg *S = SuspendSegm->load(std::memory_order_relaxed);
    Seg *R = ResumeSegm->load(std::memory_order_relaxed);
    Seg *Cur = S->Id <= R->Id ? S : R;
    while (Cur) {
      Seg *Next = Cur->next();
      for (unsigned I = 0; I < SegmentSize; ++I) {
        std::uint64_t W = Cur->Cells[I].load(std::memory_order_relaxed);
        if (wordKind(W) == WordKind::Pointer)
          static_cast<RequestType *>(pointerOf(W))->release();
      }
      if (!Cur->isRetiredForTesting())
        Seg::disposeUnpublished(Cur); // quiescent: nobody references it
      Cur = Next;
    }
  }

  /// Adds the caller to the waiter queue (Listing 14 + Listing 11).
  ///
  /// \returns a suspended Future to be completed by a matching resume(..),
  /// an immediate Future if a racing resume(..) already deposited a value,
  /// or — only in the synchronous resumption mode — an invalid Future when
  /// the cell was broken by a timed-out resume(..); the caller restarts.
  FutureType suspend() {
    ebr::Guard Guard;

    // Read the cached segment *before* taking the index (the Listing 14
    // highlight): this guarantees the target segment is reachable from it.
    Seg *Start = SuspendSegm->load(std::memory_order_acquire);
    std::uint64_t GlobalIdx =
        SuspendIdx->fetch_add(1, std::memory_order_acq_rel);
    std::uint64_t SegId = GlobalIdx / SegmentSize;
    unsigned CellIdx = static_cast<unsigned>(GlobalIdx % SegmentSize);

    Seg *S = List::findAndMoveForward(*SuspendSegm, Start, SegId);
    // suspend() always lands exactly: a cell can only be cancelled after a
    // waiter was installed in it, so our (still empty) cell pins the
    // segment.
    assert(S->Id == SegId && "suspend() segment was removed prematurely");

    // Try to install a request (pooled when available). Created with 2
    // refs: one for the cell, one for the Future we hand back.
    auto *Req = RequestType::acquire(/*InitialRefs=*/2);
    Req->bindCancellation(&Cqs::cancellationCallback, this, S, CellIdx);
    std::uint64_t Expected = makeTokenWord(Token::Empty);
    if (S->Cells[CellIdx].compare_exchange_strong(
            Expected, makePointerWord(Req), std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      bump(Stats.Suspensions);
      return FutureType::suspended(Ref<RequestType>::adopt(Req));
    }

    // The cell is not empty: a racing resume(..) got there first. The
    // request was never published, so it can skip the EBR grace period and
    // go straight back to the pool.
    Req->recycleUnpublished();

    // Either a value awaits us (elimination) or the cell is broken (SYNC
    // mode). Listing 11: replace with TAKEN via exchange.
    std::uint64_t Old = S->Cells[CellIdx].exchange(
        makeTokenWord(Token::Taken), std::memory_order_acq_rel);
    // Either way the cell is now terminally processed; account it so the
    // segment can eventually be physically removed (see onCellDead()).
    S->onCellDead();
    if (isToken(Old, Token::Broken)) {
      bump(Stats.SuspendFailures);
      return FutureType::invalid();
    }
    assert(wordKind(Old) == WordKind::Value &&
           "suspend() raced with a non-value cell state");
    bump(Stats.Eliminations);
    return FutureType::immediate(decodeValueWord<T, Traits>(Old));
  }

  /// Retrieves and resumes the next waiter with \p Value (Listing 13 with
  /// the segment-skipping of Listing 15).
  ///
  /// \returns true on success (including a refused resume, which is
  /// completed through the handler); false if the waiter was cancelled
  /// (simple mode) or the cell rendezvous timed out / met a cancelled
  /// waiter (sync mode) — the caller restarts to keep the operation
  /// balance.
  bool resume(T Value) {
    ebr::Guard Guard;
    return resumeImpl(Value);
  }

  /// Wakes up to \p N waiters in a single pass over the segment list
  /// instead of N independent resume() calls: the resume pointer is read
  /// once, the index counter is advanced by the whole batch in one
  /// fetch_add, and the traversal walks each segment once. This is the
  /// core of `Semaphore::release(n)`, `CountDownLatch::countDown(n)` and
  /// the channel burst-send.
  ///
  /// \p ValueFor(K) supplies the K-th *delivered* value (K counts
  /// successful completions, in FIFO order). It must be a pure function of
  /// K: a cell that fails or is skipped re-requests the same K later.
  ///
  /// \returns the number of waiters actually resumed. In the smart
  /// cancellation mode every cancelled cell claims a replacement index
  /// (exactly like the one-at-a-time resume), so the return value falls
  /// short of N only where a single resume() would have returned false: a
  /// removed segment range in simple mode, or a broken SYNC rendezvous.
  /// Callers compensate for the shortfall the same way they would restart
  /// after a failed resume().
  template <typename Fn>
  std::uint64_t resumeBatchWith(std::uint64_t N, Fn &&ValueFor) {
    if (N == 0)
      return 0;
    ebr::Guard Guard;
    bump(Stats.BatchResumes);
    std::uint64_t Delivered = 0;
    std::uint64_t Want = N;
    while (Want > 0) {
      // Read the cached segment before claiming indices (same ordering
      // requirement as resumeImpl: the segment must be at or before the
      // claimed range so the forward search can find it).
      Seg *Start = ResumeSegm->load(std::memory_order_acquire);
      std::uint64_t First =
          ResumeIdx->fetch_add(Want, std::memory_order_acq_rel);
      std::uint64_t Last = First + Want;
      Want = 0;
      Seg *S = Start;
      std::uint64_t Idx = First;
      while (Idx < Last) {
        std::uint64_t SegId = Idx / SegmentSize;
        if (S->Id < SegId)
          S = List::findAndMoveForward(*ResumeSegm, S, SegId);
        S->clearPrev();
        if (S->Id != SegId) {
          // The segment(s) covering [Idx, S->Id * SegmentSize) were
          // entirely cancelled and removed; handle the whole dead range
          // in one hop.
          assert(S->Id > SegId && "resume segment moved backwards");
          std::uint64_t DeadEnd = std::min(Last, S->Id * SegmentSize);
          if (CMode == CancellationMode::Simple) {
            // Each removed index is one failed resume, exactly as the
            // one-at-a-time loop would report: no delivery, no
            // replacement. The caller compensates for the shortfall.
          } else {
            bump(Stats.SegmentSkips);
            Want += DeadEnd - Idx; // claim replacement indices
          }
          Idx = DeadEnd;
          continue;
        }
        unsigned CellIdx = static_cast<unsigned>(Idx % SegmentSize);
        switch (processResumeCell(S, CellIdx, ValueFor(Delivered))) {
        case CellResult::Done:
          ++Delivered;
          break;
        case CellResult::Failed:
          // Simple-mode cancelled waiter or broken SYNC rendezvous: the
          // value was not handed over and the index is spent, same as a
          // single resume() returning false.
          break;
        case CellResult::SkipCell:
          ++Want; // smart mode: claim a replacement index
          break;
        }
        ++Idx;
      }
    }
    Stats.BatchedWakeups.fetch_add(Delivered, std::memory_order_relaxed);
    return Delivered;
  }

  /// Fixed-value convenience form of resumeBatchWith (Unit-valued queues:
  /// semaphores, latches).
  std::uint64_t resumeBatch(std::uint64_t N, T Value) {
    return resumeBatchWith(N, [&Value](std::uint64_t) { return Value; });
  }

  /// Path-coverage counters (see core/CqsStats.h).
  const CqsStats &stats() const { return Stats; }

  ResumptionMode resumptionModeForTesting() const { return RMode; }
  CancellationMode cancellationModeForTesting() const { return CMode; }

  /// Test hooks.
  std::uint64_t suspendIdxForTesting() const {
    return SuspendIdx->load(std::memory_order_acquire);
  }
  std::uint64_t resumeIdxForTesting() const {
    return ResumeIdx->load(std::memory_order_acquire);
  }
  Seg *resumeSegmentForTesting() const {
    return ResumeSegm->load(std::memory_order_acquire);
  }
  Seg *suspendSegmentForTesting() const {
    return SuspendSegm->load(std::memory_order_acquire);
  }

  /// Number of segments currently linked into the list (from the lagging
  /// segment pointer to the tail). Appendix C's memory bound says this
  /// stays O(live waiters / SegmentSize + threads) no matter how many
  /// operations or cancellations have run. Quiescent callers only.
  std::size_t linkedSegmentCountForTesting() const {
    ebr::Guard Guard;
    Seg *S = SuspendSegm->load(std::memory_order_acquire);
    Seg *R = ResumeSegm->load(std::memory_order_acquire);
    Seg *Cur = S->Id <= R->Id ? S : R;
    std::size_t N = 0;
    for (; Cur; Cur = Cur->next())
      ++N;
    return N;
  }

private:
  /// Outcome of processing one cell in resume(..).
  enum class CellResult {
    Done,     ///< resumption completed (or delegated / refused-and-handled)
    Failed,   ///< report failure to the caller
    SkipCell, ///< smart mode: waiter cancelled, take the next index
  };

  bool resumeImpl(T Value) {
    for (;;) {
      Seg *Start = ResumeSegm->load(std::memory_order_acquire);
      std::uint64_t GlobalIdx =
          ResumeIdx->fetch_add(1, std::memory_order_acq_rel);
      std::uint64_t SegId = GlobalIdx / SegmentSize;
      unsigned CellIdx = static_cast<unsigned>(GlobalIdx % SegmentSize);

      Seg *S = List::findAndMoveForward(*ResumeSegm, Start, SegId);
      // Everything to the left is processed; allow those segments to be
      // collected (Listing 15's `s.prev = null` in resume).
      S->clearPrev();

      if (S->Id != SegId) {
        // The whole segment (and possibly more) was cancelled and removed.
        if (CMode == CancellationMode::Simple)
          return false;
        // Smart mode: skip the removed range wholesale, then retry with a
        // fresh index.
        std::uint64_t ExpectedIdx = GlobalIdx + 1;
        ResumeIdx->compare_exchange_strong(ExpectedIdx, S->Id * SegmentSize,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire);
        bump(Stats.SegmentSkips);
        continue;
      }

      switch (processResumeCell(S, CellIdx, Value)) {
      case CellResult::Done:
        return true;
      case CellResult::Failed:
        return false;
      case CellResult::SkipCell:
        continue; // Listing 5's tail-recursive `return resume(value)`
      }
    }
  }

  /// The per-cell state machine of Listing 13 (covers both resumption and
  /// both cancellation modes).
  CellResult processResumeCell(Seg *S, unsigned CellIdx, T Value) {
    Atomic<std::uint64_t> &Cell = S->Cells[CellIdx];
    Backoff B;
    for (;;) {
      std::uint64_t Cur = Cell.load(std::memory_order_acquire);

      if (isToken(Cur, Token::Empty)) {
        // Elimination: we arrived before suspend(). Weak CAS — the loop
        // re-dispatches on the freshly loaded word either way.
        if (!Cell.compare_exchange_weak(
                Cur, encodeValueWord<T, Traits>(Value),
                std::memory_order_acq_rel, std::memory_order_acquire))
          continue;
        bump(Stats.ValueDeposits);
        if (RMode == ResumptionMode::Async)
          return CellResult::Done;
        return rendezvousOrBreak(Cell, Value);
      }

      if (wordKind(Cur) == WordKind::Pointer) {
        auto *Req = static_cast<RequestType *>(pointerOf(Cur));
        if (Req->complete(Value)) {
          // Clear the waiter reference for reclamation (-> RESUMED) and
          // account the terminally-processed cell.
          Cell.store(makeTokenWord(Token::Resumed),
                     std::memory_order_release);
          Req->release();
          S->onCellDead();
          bump(Stats.Completions);
          return CellResult::Done;
        }
        // The waiter was cancelled.
        if (CMode == CancellationMode::Simple) {
          bump(Stats.SimpleFailures);
          return CellResult::Failed;
        }
        if (RMode == ResumptionMode::Sync) {
          // Never leave the value unattended in SYNC mode: wait for the
          // cancellation handler to publish CANCELLED or REFUSE
          // (Listing 13, line 28).
          B.pause();
          continue;
        }
        // ASYNC + smart: delegate the rest of this resume(..) to the
        // cancellation handler by swapping in the value (Figure 4). Weak
        // CAS — the outer loop re-dispatches on failure.
        if (Cell.compare_exchange_weak(
                Cur, encodeValueWord<T, Traits>(Value),
                std::memory_order_acq_rel, std::memory_order_acquire)) {
          Req->release(); // the cell no longer references the waiter
          bump(Stats.Delegations);
          return CellResult::Done;
        }
        continue;
      }

      if (isToken(Cur, Token::Cancelled)) {
        if (CMode == CancellationMode::Simple) {
          bump(Stats.SimpleFailures);
          return CellResult::Failed;
        }
        bump(Stats.SkippedCells);
        return CellResult::SkipCell;
      }

      if (isToken(Cur, Token::Refuse)) {
        assert(Handler && "REFUSE state requires a smart handler");
        Handler->completeRefusedResume(Value);
        bump(Stats.RefusedResumes);
        // The refused resume(..) is the last visitor of this cell; account
        // it so the segment does not outlive its usefulness (the paper can
        // leave REFUSE segments to the GC; we cannot).
        S->onCellDead();
        return CellResult::Done;
      }

      assert(false && "resume() met an impossible cell state (TAKEN/BROKEN/"
                      "RESUMED imply a duplicated resume index)");
      return CellResult::Failed;
    }
  }

  /// SYNC-mode tail of the elimination path: wait (bounded) for the paired
  /// suspend() to take the value; break the cell on timeout (Listing 11).
  CellResult rendezvousOrBreak(Atomic<std::uint64_t> &Cell, T Value) {
    Backoff B;
    for (unsigned Spin = 0; Spin < MaxSpinCycles; ++Spin) {
      if (isToken(Cell.load(std::memory_order_acquire), Token::Taken))
        return CellResult::Done;
      B.pause();
    }
    std::uint64_t Expected = encodeValueWord<T, Traits>(Value);
    if (Cell.compare_exchange_strong(Expected, makeTokenWord(Token::Broken),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      bump(Stats.BrokenCells);
      return CellResult::Failed;
    }
    // CAS failed => the suspender took the value after all.
    assert(isToken(Expected, Token::Taken));
    return CellResult::Done;
  }

  /// Request::cancel() trampoline: runs the cancellation handler of
  /// Listing 5 on the owning CQS.
  static void cancellationCallback(void *Self, void *SegPtr,
                                   std::uint32_t CellIdx) {
    auto *Q = static_cast<Cqs *>(Self);
    auto *S = static_cast<Seg *>(SegPtr);
    ebr::Guard Guard;
    Q->onRequestCancelled(S, CellIdx);
  }

  void onRequestCancelled(Seg *S, unsigned CellIdx) {
    bump(Stats.Cancellations);
    Atomic<std::uint64_t> &Cell = S->Cells[CellIdx];

    if (CMode == CancellationMode::Simple) {
      // Mark the cell CANCELLED; resume(..) processing it will fail. Only
      // the cancelled waiter can be in the cell here (simple-mode resume
      // never overwrites a waiter).
      std::uint64_t Old = Cell.exchange(makeTokenWord(Token::Cancelled),
                                        std::memory_order_acq_rel);
      assert(wordKind(Old) == WordKind::Pointer &&
             "simple cancellation expects the waiter in the cell");
      static_cast<RequestType *>(pointerOf(Old))->release();
      S->onCellDead();
      return;
    }

    // Smart cancellation (Listing 5, lines 29-44).
    assert(Handler && "smart cancellation requires a handler");
    if (Handler->onCancellation()) {
      // Logically deregistered; move the cell to CANCELLED.
      std::uint64_t Old = Cell.exchange(makeTokenWord(Token::Cancelled),
                                        std::memory_order_acq_rel);
      if (wordKind(Old) == WordKind::Pointer) {
        // No resume(..) reached the cell; just account the cancellation.
        static_cast<RequestType *>(pointerOf(Old))->release();
        S->onCellDead();
        return;
      }
      // A concurrent resume(..) delegated its completion to us by leaving
      // its value here; re-dispatch it to the next waiter. The cell is
      // terminally CANCELLED either way, so account it first.
      assert(wordKind(Old) == WordKind::Value);
      S->onCellDead();
      resumeImpl(decodeValueWord<T, Traits>(Old));
      return;
    }

    // The cancelled waiter was logically the last one: refuse the incoming
    // resume(..).
    bump(Stats.RefuseVerdicts);
    std::uint64_t Old = Cell.exchange(makeTokenWord(Token::Refuse),
                                      std::memory_order_acq_rel);
    if (wordKind(Old) == WordKind::Pointer) {
      static_cast<RequestType *>(pointerOf(Old))->release();
      return; // resume(..) will meet REFUSE, complete, and account the cell
    }
    // The racing resume(..) already delegated; complete it as refused. We
    // are the cell's last visitor, so account it.
    assert(wordKind(Old) == WordKind::Value);
    Handler->completeRefusedResume(decodeValueWord<T, Traits>(Old));
    S->onCellDead();
  }

  /// Bounded rendezvous budget of the synchronous mode. Deliberately small:
  /// on the oversubscribed CI host a long spin only delays the inevitable
  /// break, and the primitives restart anyway.
  static constexpr unsigned MaxSpinCycles = 64;

  const CancellationMode CMode;
  const ResumptionMode RMode;
  SmartCancellationHandler *const Handler;
  CqsStats Stats;

  CachePadded<Atomic<std::uint64_t>> SuspendIdx{0};
  CachePadded<Atomic<std::uint64_t>> ResumeIdx{0};
  CachePadded<Atomic<Seg *>> SuspendSegm{nullptr};
  CachePadded<Atomic<Seg *>> ResumeSegm{nullptr};
};

} // namespace cqs

#endif // CQS_CORE_CQS_H
