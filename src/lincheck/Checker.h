//===- lincheck/Checker.h - mini concurrency-consistency checker -*- C++-*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature analogue of the Lincheck framework that the Kotlin team
/// uses to validate the production CQS: execute a small scenario of
/// operations concurrently, record every result, and verify that the
/// outcome is *sequentially consistent* — explainable by some interleaving
/// of the per-thread operation sequences executed against a sequential
/// model of the data structure.
///
/// Scope notes, honestly stated:
///  - The check is sequential consistency, not linearizability: it does
///    not constrain the order by real-time non-overlap. For the
///    operations we target (single-word CAS state machines) SC violations
///    are what bugs produce, and SC keeps the verifier a simple DFS.
///  - Operations must return their observable effect as an int64 and be
///    total (no blocking); blocking operations are checked by the
///    purpose-built suites in tests/ instead (futures make their
///    suspension observable, which those tests exploit).
///
/// Usage: describe operations as (concurrent lambda, sequential-model
/// lambda) pairs, build per-thread scenarios, and call
/// ScChecker::checkOnce / checkMany.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_LINCHECK_CHECKER_H
#define CQS_LINCHECK_CHECKER_H

#include "support/Backoff.h"
#include "support/Rng.h"

#include "support/Atomic.h"
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#if defined(CQS_SCHEDCHECK) && CQS_SCHEDCHECK
#include "schedcheck/Sched.h"
#endif

namespace cqs {
namespace lincheck {

/// One operation of the scenario, in both semantic flavours.
template <typename Shared, typename Model> struct Op {
  std::string Name;
  /// Runs against the real concurrent structure; returns the observation.
  std::function<std::int64_t(Shared &)> Concurrent;
  /// Runs against the sequential model; returns the expected observation
  /// for the interleaving position being explored.
  std::function<std::int64_t(Model &)> Sequential;
};

/// Result of a check; Explanation is filled on failure.
struct Verdict {
  bool Ok = true;
  std::string Explanation;
};

/// The checker. \p Model must be cheaply copyable (DFS snapshots it).
template <typename Shared, typename Model> class ScChecker {
public:
  using OpT = Op<Shared, Model>;
  /// A scenario: one operation sequence per thread.
  using Scenario = std::vector<std::vector<OpT>>;

  /// Executes \p S against a fresh Shared from \p MakeShared and verifies
  /// the observed results against a fresh Model from \p MakeModel.
  ///
  /// Under CQS_SCHEDCHECK the concurrent phase runs inside the schedcheck
  /// explorer instead of on free-running OS threads: one explore() call
  /// tries many deterministic interleavings of the same scenario, the SC
  /// verification runs inside each explored execution, and a failure
  /// report carries the replay seed (set CQS_SCHEDCHECK_SEED to reproduce
  /// the exact interleaving).
#if defined(CQS_SCHEDCHECK) && CQS_SCHEDCHECK
  static Verdict
  checkOnce(const std::function<Shared *()> &MakeShared,
            const std::function<Model()> &MakeModel, const Scenario &S) {
    sc::Options O;
    O.Strat = sc::Strategy::Random;
    O.Iterations = 64; // per scenario; env overrides via optionsFromEnv
    sc::Result R = sc::explore(O, [&] {
      Shared *Structure = MakeShared();
      std::vector<std::vector<std::int64_t>> Observed(S.size());
      std::vector<sc::Thread> Ts;
      for (std::size_t T = 0; T < S.size(); ++T) {
        Observed[T].resize(S[T].size());
        // Plain (non-atomic) writes to Observed are safe: the scheduler
        // serializes logical threads with happens-before at every handoff.
        Ts.push_back(sc::spawn([&, T] {
          for (std::size_t I = 0; I < S[T].size(); ++I)
            Observed[T][I] = S[T][I].Concurrent(*Structure);
        }));
      }
      for (auto &T : Ts)
        T.join();
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdelete-non-virtual-dtor"
#endif
      delete Structure;
#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif
      std::vector<std::size_t> Pos(S.size(), 0);
      if (!dfs(S, Observed, Pos, MakeModel()))
        sc::check(false, explain(S, Observed).c_str());
    });
    Verdict V;
    V.Ok = R.Ok;
    if (!R.Ok)
      V.Explanation = R.Report;
    return V;
  }
#else
  static Verdict
  checkOnce(const std::function<Shared *()> &MakeShared,
            const std::function<Model()> &MakeModel, const Scenario &S) {
    Shared *Structure = MakeShared();
    std::vector<std::vector<std::int64_t>> Observed(S.size());

    // Concurrent phase: synchronized start, per-thread program order.
    Atomic<int> Ready{0};
    Atomic<bool> Go{false};
    std::vector<std::thread> Ts;
    for (std::size_t T = 0; T < S.size(); ++T) {
      Observed[T].resize(S[T].size());
      Ts.emplace_back([&, T] {
        Ready.fetch_add(1, std::memory_order_seq_cst);
        Backoff B;
        while (!Go.load(std::memory_order_acquire))
          B.pause();
        for (std::size_t I = 0; I < S[T].size(); ++I)
          Observed[T][I] = S[T][I].Concurrent(*Structure);
      });
    }
    Backoff B;
    while (Ready.load(std::memory_order_seq_cst) != static_cast<int>(S.size()))
      B.pause();
    Go.store(true, std::memory_order_release);
    for (auto &T : Ts)
      T.join();
    // MakeShared returns the exact dynamic type, so deleting through
    // Shared* is well-defined even when Shared has virtual members with a
    // non-virtual destructor (e.g. primitives deriving from the CQS
    // handler interface); silence GCC's heuristic warning.
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdelete-non-virtual-dtor"
#endif
    delete Structure;
#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif

    // Verification phase: DFS over interleavings of the per-thread
    // sequences, replaying the model.
    std::vector<std::size_t> Pos(S.size(), 0);
    if (dfs(S, Observed, Pos, MakeModel()))
      return Verdict{};
    return Verdict{false, explain(S, Observed)};
  }
#endif // CQS_SCHEDCHECK

  /// Runs \p Rounds independent executions of scenarios drawn by
  /// \p MakeScenario(seed); returns the first failing verdict, if any.
  static Verdict
  checkMany(const std::function<Shared *()> &MakeShared,
            const std::function<Model()> &MakeModel,
            const std::function<Scenario(std::uint64_t)> &MakeScenario,
            int Rounds, std::uint64_t Seed = 1) {
#if defined(CQS_SCHEDCHECK) && CQS_SCHEDCHECK
    // Each modelled checkOnce already explores ~64 interleavings of its
    // scenario, so fewer distinct scenarios keep the wall clock comparable
    // to the stress-mode run it replaces.
    Rounds = Rounds > 20 ? Rounds / 20 : 1;
#endif
    for (int R = 0; R < Rounds; ++R) {
      Verdict V = checkOnce(MakeShared, MakeModel, MakeScenario(Seed + R));
      if (!V.Ok)
        return V;
    }
    return Verdict{};
  }

private:
  static bool dfs(const Scenario &S,
                  const std::vector<std::vector<std::int64_t>> &Observed,
                  std::vector<std::size_t> &Pos, Model M) {
    bool AllDone = true;
    for (std::size_t T = 0; T < S.size(); ++T) {
      if (Pos[T] >= S[T].size())
        continue;
      AllDone = false;
      Model Next = M; // snapshot: each branch replays independently
      std::int64_t Expected = S[T][Pos[T]].Sequential(Next);
      if (Expected != Observed[T][Pos[T]])
        continue; // this interleaving step contradicts the observation
      ++Pos[T];
      if (dfs(S, Observed, Pos, std::move(Next))) {
        --Pos[T];
        return true;
      }
      --Pos[T];
    }
    return AllDone;
  }

  static std::string
  explain(const Scenario &S,
          const std::vector<std::vector<std::int64_t>> &Observed) {
    std::string Out = "no sequentially consistent explanation for:\n";
    for (std::size_t T = 0; T < S.size(); ++T) {
      Out += "  thread " + std::to_string(T) + ":";
      for (std::size_t I = 0; I < S[T].size(); ++I)
        Out += " " + S[T][I].Name + "->" + std::to_string(Observed[T][I]);
      Out += "\n";
    }
    return Out;
  }
};

} // namespace lincheck
} // namespace cqs

#endif // CQS_LINCHECK_CHECKER_H
