//===- support/Backoff.h - bounded spin-then-yield backoff -----*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exponential backoff for contended CAS loops. The paper's benchmarks ran on
/// a 144-hardware-thread machine where pure spinning is fine; this
/// reproduction also runs on heavily oversubscribed hosts (the CI container
/// has a single core), so after a bounded number of pause iterations the
/// backoff yields the time slice. Without the yield, a spin loop waiting for
/// a preempted peer would burn its whole quantum.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SUPPORT_BACKOFF_H
#define CQS_SUPPORT_BACKOFF_H

#include <cstdint>
#include <thread>

#if defined(CQS_SCHEDCHECK) && CQS_SCHEDCHECK
#include "schedcheck/Sched.h"
#endif

namespace cqs {

/// Emits a CPU pause/relax hint.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // No portable hint; the Backoff loop still bounds the spin.
#endif
}

/// Exponential spin backoff that degrades to std::this_thread::yield().
///
/// Typical use:
/// \code
///   Backoff B;
///   while (!State.compare_exchange_weak(...))
///     B.pause();
/// \endcode
class Backoff {
public:
  /// Number of doubling steps before every pause() becomes a yield().
  static constexpr unsigned SpinLimitLog2 = 7; // up to 128 relax hints

  /// Spins for the current step (doubling each call) or yields once the
  /// spin budget is exhausted.
  void pause() {
#if defined(CQS_SCHEDCHECK) && CQS_SCHEDCHECK
    if (sc::inModelledThread()) {
      // Spinning has no meaning under the model (nothing runs until the
      // scheduler says so); every pause becomes one voluntary schedule
      // point. Step still advances so isYielding() keeps its contract and
      // park-fallback paths stay reachable in explored schedules.
      if (Step <= SpinLimitLog2)
        ++Step;
      sc::yield();
      return;
    }
#endif
    if (Step <= SpinLimitLog2) {
      for (std::uint32_t I = 0; I < (1u << Step); ++I)
        cpuRelax();
      ++Step;
      return;
    }
    std::this_thread::yield();
  }

  /// Returns true once pause() has degraded to yielding; callers that have a
  /// blocking fallback (parking) should switch to it at this point.
  bool isYielding() const { return Step > SpinLimitLog2; }

  /// Resets the backoff to the shortest spin.
  void reset() { Step = 0; }

private:
  unsigned Step = 0;
};

} // namespace cqs

#endif // CQS_SUPPORT_BACKOFF_H
