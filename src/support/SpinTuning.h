//===- support/SpinTuning.h - adaptive spin-then-park budget --------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Adaptive spin budget for spin-then-park waits (the shared parking path
/// in Futex.cpp and the striped RwMutex writer sweep). The classic
/// InnoDB-style constants (SYNC_SPIN_ROUNDS, see SNIPPETS.md) are fixed at
/// build time; here the budget adapts to the observed wake latency
/// instead: every wait that completes within the spin phase votes to grow
/// the budget (spinning is paying off), every wait that had to park votes
/// to shrink it (those spin cycles were pure waste on top of a syscall).
///
/// Growth is additive-ish (+25%), shrinkage multiplicative (-50%), so a
/// workload that parks most of the time converges to the minimum in a few
/// waits while a workload of short waits climbs slowly and stays there.
/// Updates are racy by design (PlainAtomic, relaxed): a lost update costs
/// one vote, and the budget is a heuristic, not a correctness bound.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SUPPORT_SPINTUNING_H
#define CQS_SUPPORT_SPINTUNING_H

#include "support/Atomic.h"

#include <algorithm>
#include <cstdint>

namespace cqs {

class AdaptiveSpinBudget {
public:
  static constexpr std::uint32_t MinRounds = 4;
  static constexpr std::uint32_t MaxRounds = 256;
  /// Matches the historical fixed budget of the parking path, so a
  /// workload the tuner has not seen yet behaves exactly as before.
  static constexpr std::uint32_t InitialRounds = 20;

  /// Current spin budget, in loop rounds.
  std::uint32_t rounds() const {
    return Budget.load(std::memory_order_relaxed);
  }

  /// The wait finished during the spin phase: spinning paid, grow +25%.
  void recordSpinHit() {
    std::uint32_t Cur = Budget.load(std::memory_order_relaxed);
    std::uint32_t Next = std::min(MaxRounds, Cur + (Cur >> 2) + 1);
    if (Next != Cur)
      Budget.store(Next, std::memory_order_relaxed);
    SpinHits.fetch_add(1, std::memory_order_relaxed);
  }

  /// The spin phase expired and the waiter parked: halve the budget.
  void recordPark() {
    std::uint32_t Cur = Budget.load(std::memory_order_relaxed);
    std::uint32_t Next = std::max(MinRounds, Cur >> 1);
    if (Next != Cur)
      Budget.store(Next, std::memory_order_relaxed);
    Parks.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t spinHitsForTesting() const {
    return SpinHits.load(std::memory_order_relaxed);
  }
  std::uint64_t parksForTesting() const {
    return Parks.load(std::memory_order_relaxed);
  }

private:
  PlainAtomic<std::uint32_t> Budget{InitialRounds};
  PlainAtomic<std::uint64_t> SpinHits{0};
  PlainAtomic<std::uint64_t> Parks{0};
};

/// Process-wide budget for the request parking path (futexSpinThenWait).
/// One budget for all requests: wake latency there is a property of the
/// host's scheduling situation (oversubscription, core count), not of any
/// single primitive instance.
inline AdaptiveSpinBudget &parkSpinBudget() {
  static AdaptiveSpinBudget Budget;
  return Budget;
}

} // namespace cqs

#endif // CQS_SUPPORT_SPINTUNING_H
