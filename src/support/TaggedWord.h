//===- support/TaggedWord.h - tagged 64-bit state words --------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 64-bit word that holds either a small state token, an encoded user
/// value, or a pointer. Both the CQS cells (Section 2/3 of the paper) and
/// the Future result slot (Appendix A) use this representation so that every
/// state transition of the cell life-cycle diagrams is a single atomic
/// CAS/exchange.
///
/// Layout (low 3 bits are the tag):
///   tag 0 (Token):   word == Token << 3; Token::Empty makes the word 0.
///   tag 1 (Value):   word == (payload << 3) | 1, payload from ValueTraits.
///   tag 2 (Pointer): word == ptr | 2; the pointee is 8-byte aligned.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SUPPORT_TAGGEDWORD_H
#define CQS_SUPPORT_TAGGEDWORD_H

#include "support/ValueCodec.h"

#include <cassert>
#include <cstdint>

namespace cqs {

/// Small state tokens stored in cells and future result slots. The names
/// follow the paper's cell life-cycle diagrams (Figures 2, 4, 10, 11).
enum class Token : std::uint64_t {
  /// Cell not yet visited by either operation; also "future still pending"
  /// in a Request result slot. Must be zero: fresh cells are zero-filled.
  Empty = 0,
  /// suspend() extracted a value placed by an earlier resume(..).
  Taken = 1,
  /// A synchronous-mode resume(..) gave up waiting for its rendezvous and
  /// poisoned the cell (Appendix B).
  Broken = 2,
  /// resume(..) completed the stored future; cleared for memory reclamation.
  Resumed = 3,
  /// The stored waiter was cancelled (both cancellation modes).
  Cancelled = 4,
  /// Smart cancellation determined the matching resume(..) must be refused
  /// (Section 3.2).
  Refuse = 5,
};

/// Discriminates the three payload kinds of a tagged word.
enum class WordKind : std::uint64_t { Token = 0, Value = 1, Pointer = 2 };

inline constexpr std::uint64_t WordTagMask = 0x7;

constexpr std::uint64_t makeTokenWord(Token T) {
  return static_cast<std::uint64_t>(T) << 3;
}

constexpr std::uint64_t makeValueWord(std::uint64_t Payload) {
  return (Payload << 3) | static_cast<std::uint64_t>(WordKind::Value);
}

inline std::uint64_t makePointerWord(void *Ptr) {
  auto Bits = reinterpret_cast<std::uint64_t>(Ptr);
  assert((Bits & WordTagMask) == 0 && "pointer must be 8-byte aligned");
  return Bits | static_cast<std::uint64_t>(WordKind::Pointer);
}

constexpr WordKind wordKind(std::uint64_t Word) {
  return static_cast<WordKind>(Word & WordTagMask);
}

constexpr bool isToken(std::uint64_t Word, Token T) {
  return Word == makeTokenWord(T);
}

constexpr Token tokenOf(std::uint64_t Word) {
  assert(wordKind(Word) == WordKind::Token && "not a token word");
  return static_cast<Token>(Word >> 3);
}

constexpr std::uint64_t valuePayloadOf(std::uint64_t Word) {
  assert(wordKind(Word) == WordKind::Value && "not a value word");
  return Word >> 3;
}

inline void *pointerOf(std::uint64_t Word) {
  assert(wordKind(Word) == WordKind::Pointer && "not a pointer word");
  return reinterpret_cast<void *>(Word & ~WordTagMask);
}

/// Encodes a user value of type T into a tagged Value word.
template <typename T, typename Traits = ValueTraits<T>>
std::uint64_t encodeValueWord(const T &V) {
  return makeValueWord(Traits::encode(V));
}

/// Decodes a tagged Value word back into T.
template <typename T, typename Traits = ValueTraits<T>>
T decodeValueWord(std::uint64_t Word) {
  return Traits::decode(valuePayloadOf(Word));
}

} // namespace cqs

#endif // CQS_SUPPORT_TAGGEDWORD_H
