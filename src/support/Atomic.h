//===- support/Atomic.h - the one atomics indirection ----------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every atomic in the library goes through the aliases defined here; raw
/// `std::atomic` outside this header is rejected by tools/atomics_lint.py.
/// The indirection is what makes the schedcheck model checker possible:
///
///  - In normal builds `Atomic<T>` *is* `std::atomic<T>` (an alias, not a
///    wrapper), so there is zero overhead — alloc_count_test and the bench
///    smoke leg verify the hot paths are unchanged.
///  - With -DCQS_SCHEDCHECK=ON (CMake option) `Atomic<T>` becomes
///    `sc::Atomic<T>` (schedcheck/ScAtomic.h): every access is a scheduling
///    point of the deterministic interleaving explorer in
///    schedcheck/Sched.h, and is recorded in its replayable event trace.
///
/// `PlainAtomic<T>` stays `std::atomic<T>` in *all* builds. It is reserved
/// for observational state that is deliberately outside the model —
/// statistics counters (core/CqsStats.h, support/ObjectPool.h) whose
/// increments would only blow up the schedule space without adding
/// interleavings of interest, and which must never introduce scheduling
/// points inside pool-internal critical sections.
///
/// `Shared<T>` is the third kind: plain (non-atomic) data whose safety is
/// *supposed* to come from an atomic protocol around it — a payload
/// published by a release store, state guarded by a mutex. In normal
/// builds it is a zero-cost passthrough; under schedcheck every get/set is
/// checked by the happens-before layer (DESIGN.md §11), which fails the
/// run if two threads reach the data without an HB edge derived from the
/// declared memory orders. `atomicThreadFence` is the instrumented
/// std::atomic_thread_fence to match.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SUPPORT_ATOMIC_H
#define CQS_SUPPORT_ATOMIC_H

#include <atomic>

#if defined(CQS_SCHEDCHECK) && CQS_SCHEDCHECK
#include "schedcheck/ScAtomic.h"
#endif

namespace cqs {

/// Observational atomics: never instrumented, never a scheduling point.
template <typename T> using PlainAtomic = std::atomic<T>;

#if defined(CQS_SCHEDCHECK) && CQS_SCHEDCHECK

/// Model-checked atomics: every access is a schedcheck scheduling point.
template <typename T> using Atomic = sc::Atomic<T>;
using AtomicFlag = sc::AtomicFlag;

/// Race-checked plain shared data (see header comment).
template <typename T> using Shared = sc::Data<T>;

/// Instrumented fence: a schedule point plus the fence's happens-before
/// contribution (release stages the clock for later relaxed stores;
/// acquire collects what earlier relaxed loads observed).
inline void atomicThreadFence(std::memory_order O,
                              const char *File = __builtin_FILE(),
                              int Line = __builtin_LINE()) {
  sc::fence(O, File, Line);
  std::atomic_thread_fence(O);
}

#else

template <typename T> using Atomic = std::atomic<T>;
/// C++20 std::atomic_flag default-constructs clear, so no ATOMIC_FLAG_INIT.
using AtomicFlag = std::atomic_flag;

/// Plain shared data; the get/set surface exists so schedcheck builds can
/// swap in the race-checked sc::Data without touching call sites.
template <typename T> class Shared {
public:
  Shared() noexcept = default;
  constexpr Shared(T V) noexcept : Val(V) {}

  Shared(const Shared &) = delete;
  Shared &operator=(const Shared &) = delete;

  T get() const { return Val; }
  void set(T V) { Val = V; }

private:
  T Val{};
};

inline void atomicThreadFence(std::memory_order O) {
  std::atomic_thread_fence(O);
}

#endif

} // namespace cqs

#endif // CQS_SUPPORT_ATOMIC_H
