//===- support/CacheLine.h - cache-line alignment helpers ------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cache-line size constant and a padding wrapper used to keep hot atomic
/// counters (e.g. suspendIdx/resumeIdx of the CQS) on separate lines.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SUPPORT_CACHELINE_H
#define CQS_SUPPORT_CACHELINE_H

#include <cstddef>
#include <new>
#include <utility>

namespace cqs {

/// Size in bytes of one cache line on the target. We hard-code the common
/// x86-64/ARM64 value instead of std::hardware_destructive_interference_size
/// because the latter is an ABI-stability minefield on GCC.
inline constexpr std::size_t CacheLineSize = 64;

/// Wraps a value so that it occupies (at least) one full cache line,
/// preventing false sharing between adjacent hot fields.
template <typename T> struct alignas(CacheLineSize) CachePadded {
  T Value;

  CachePadded() = default;
  template <typename... Args>
  explicit CachePadded(Args &&...A) : Value(std::forward<Args>(A)...) {}

  T &operator*() { return Value; }
  const T &operator*() const { return Value; }
  T *operator->() { return &Value; }
  const T *operator->() const { return &Value; }
};

} // namespace cqs

#endif // CQS_SUPPORT_CACHELINE_H
