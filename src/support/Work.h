//===- support/Work.h - geometrically distributed busy work ----*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's benchmarks interleave each synchronization operation with
/// "some uncontended work — the work size is geometrically distributed with
/// a fixed mean" (Section 6). This header reproduces that workload shape:
/// a geometric number of loop iterations of opaque arithmetic.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SUPPORT_WORK_H
#define CQS_SUPPORT_WORK_H

#include "support/Rng.h"

#include <atomic>
#include <cstdint>

namespace cqs {

/// Performs \p Iters iterations of uncontended arithmetic that the compiler
/// cannot elide. Each iteration is a handful of ALU ops, matching the
/// "uncontended loop iteration" unit used throughout the paper's plots.
inline void spinWork(std::uint64_t Iters) {
  std::uint64_t Acc = Iters + 1;
  for (std::uint64_t I = 0; I < Iters; ++I)
    Acc = Acc * 6364136223846793005ull + 1442695040888963407ull;
  // Publish through a compiler barrier so the loop is not dead code.
  std::atomic_signal_fence(std::memory_order_seq_cst);
  volatile std::uint64_t Sink = Acc;
  (void)Sink;
}

/// Per-thread generator of geometrically distributed work amounts with a
/// given mean, as used by the JMH benchmarks the paper reports.
class GeometricWork {
public:
  /// \p Mean is the expected number of loop iterations; 0 disables work.
  ///
  /// The success test is a compare against a precomputed threshold rather
  /// than Rng.chance(1, Mean): chance() divides by Mean on every trial,
  /// and whether that division folds into a multiply depends on the
  /// optimizer const-propagating Mean through however much of the caller
  /// got inlined — which made the *same* workload measure up to 2x slower
  /// in series whose critical-section lambdas were too big to inline.
  /// The threshold form costs one generator step and one compare per
  /// trial no matter what the inliner does.
  GeometricWork(std::uint64_t Mean, std::uint64_t Seed)
      : Mean(Mean), Threshold(Mean ? ~0ull / Mean : 0), Rng(Seed) {}

  /// Draws one geometric sample (support {0, 1, 2, ...}, mean ~Mean).
  std::uint64_t nextAmount() {
    if (Mean == 0)
      return 0;
    // Geometric via inversion on a coarse grid: count trials until a
    // success with probability ~1/Mean. Bounded to 32*Mean to keep the
    // tail from producing pathological benchmark iterations.
    std::uint64_t N = 0;
    const std::uint64_t Limit = 32 * Mean;
    while (N < Limit && Rng.next() >= Threshold)
      ++N;
    return N;
  }

  /// Draws a sample and burns that much CPU.
  void run() { spinWork(nextAmount()); }

private:
  std::uint64_t Mean;
  std::uint64_t Threshold;
  SplitMix64 Rng;
};

} // namespace cqs

#endif // CQS_SUPPORT_WORK_H
