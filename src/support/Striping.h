//===- support/Striping.h - thread-to-stripe assignment -------------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Thread-to-stripe hashing shared by the contention-scaling primitives
/// (ShardedSemaphore, StripedRwMutex). Each OS thread is assigned a small
/// round-robin slot on first use; a primitive with a power-of-two stripe
/// count masks that slot down to its own index. Round-robin (rather than
/// hashing the thread id) spreads the first N threads across N stripes
/// perfectly, which is exactly the bench/server steady state we care
/// about; collisions only appear once threads outnumber slots.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SUPPORT_STRIPING_H
#define CQS_SUPPORT_STRIPING_H

#include "support/Atomic.h"

#include <cassert>
#include <cstdint>
#include <thread>

namespace cqs {

/// Upper bound on stripes/shards any primitive allocates. Keeps the
/// per-instance footprint bounded (64 cachelines = 4 KiB of counters) and
/// caps the writer's sweep length.
inline constexpr unsigned MaxStripes = 64;

namespace detail {
inline PlainAtomic<std::uint32_t> &stripeSlotCounter() {
  static PlainAtomic<std::uint32_t> Counter{0};
  return Counter;
}
inline std::uint32_t &threadStripeSlot() {
  // -1 = unassigned; assignment is sticky for the thread's lifetime so a
  // lock acquired on this thread unlocks against the same stripe.
  thread_local std::uint32_t Slot = UINT32_MAX;
  return Slot;
}
} // namespace detail

/// Rounds \p N up to the next power of two, clamped to [1, MaxStripes].
inline unsigned roundUpPow2Stripes(unsigned N) {
  unsigned P = 1;
  while (P < N && P < MaxStripes)
    P <<= 1;
  return P;
}

/// Default stripe count for this host: hardware concurrency rounded up to
/// a power of two (so stripe selection is a mask, not a division), clamped
/// to MaxStripes. At least 2 so the striped code paths are exercised even
/// on a single-core host.
inline unsigned defaultStripeCount() {
  unsigned Hw = std::thread::hardware_concurrency();
  if (Hw < 2)
    Hw = 2;
  return roundUpPow2Stripes(Hw);
}

/// The calling thread's stripe index for a primitive with \p Count
/// stripes. \p Count must be a power of two. Stable for the lifetime of
/// the thread (reader lock/unlock must hit the same stripe).
inline unsigned currentStripe(unsigned Count) {
  assert(Count > 0 && (Count & (Count - 1)) == 0 &&
         "stripe counts are powers of two");
  std::uint32_t &Slot = detail::threadStripeSlot();
  if (Slot == UINT32_MAX)
    Slot = detail::stripeSlotCounter().fetch_add(
        1, std::memory_order_relaxed);
  return Slot & (Count - 1);
}

/// Test hook: pins the calling thread's stripe slot. Schedcheck scenarios
/// use this so stripe assignment is identical across executions (the
/// global round-robin counter otherwise advances monotonically over the
/// explorer's thousands of short-lived threads, which would make replays
/// diverge).
inline void setThreadStripeSlotForTesting(std::uint32_t Slot) {
  detail::threadStripeSlot() = Slot;
}

} // namespace cqs

#endif // CQS_SUPPORT_STRIPING_H
