//===- support/Futex.cpp - out-of-line blocking wait ----------------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Futex.h"
#include "support/Backoff.h"
#include "support/SpinTuning.h"

#include <thread>

namespace cqs {

void futexSpinThenWait(const Atomic<std::uint32_t> &Word,
                       Atomic<std::uint32_t> &Parked) {
#if defined(CQS_SCHEDCHECK) && CQS_SCHEDCHECK
  // Under the model the spin phase is pure noise — it would only multiply
  // the schedule space with equivalent executions — so modelled threads go
  // straight to the Dekker protocol below (whose loads/waits are the
  // schedule points the explorer actually needs).
  bool Spin = !sc::inModelledThread();
#else
  constexpr bool Spin = true;
#endif
  if (Spin) {
    // Spin briefly before sleeping: on an oversubscribed host the finisher
    // usually shares the core, so yielding lets it run and the park (a
    // futex sleep/wake syscall pair plus a context switch on both sides) is
    // almost always avoided. Longer relax ramps are counterproductive for
    // the same reason: spinning steals the very cycles the finisher needs.
    // The budget adapts to observed wake latency: waits that complete in
    // the spin phase grow it, waits that park anyway shrink it.
    AdaptiveSpinBudget &Budget = parkSpinBudget();
    const std::uint32_t Rounds = Budget.rounds();
    for (std::uint32_t Tries = 0;
         Tries < Rounds && Word.load(std::memory_order_acquire) == 0;
         ++Tries) {
      if (Tries < 4)
        cpuRelax();
      else
        std::this_thread::yield();
    }
    if (Word.load(std::memory_order_acquire) != 0) {
      Budget.recordSpinHit();
      return;
    }
    Budget.recordPark();
  }

  // Dekker pair with the finisher (see Request::finish()): register in
  // Parked with seq_cst *before* re-checking the flag, so either we see
  // the flag set or the finisher sees our registration and wakes us.
  Parked.fetch_add(1, std::memory_order_seq_cst);
  while (Word.load(std::memory_order_seq_cst) == 0)
    futexWait(Word, 0, std::chrono::nanoseconds(-1));
  Parked.fetch_sub(1, std::memory_order_relaxed);
}

} // namespace cqs
