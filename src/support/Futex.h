//===- support/Futex.h - timed waiting on 32-bit words ---------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin futex wrapper. C++20's std::atomic::wait has no timed variant,
/// but abortable synchronization in practice is dominated by *timeouts*
/// ("wait up to 50ms, then cancel the request"), so the futures expose a
/// waitFor API backed by FUTEX_WAIT with a timeout. This mirrors how
/// java.util.concurrent's parkNanos underlies its timed acquires.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SUPPORT_FUTEX_H
#define CQS_SUPPORT_FUTEX_H

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>
#endif

namespace cqs {

/// Blocks while `*Word == Expected`, up to \p Timeout (forever if the
/// timeout is negative). Returns on wake-up, timeout, value change, or
/// spuriously — callers re-check their predicate in a loop.
inline void futexWait(const std::atomic<std::uint32_t> &Word,
                      std::uint32_t Expected,
                      std::chrono::nanoseconds Timeout) {
#if defined(__linux__)
  struct timespec Ts;
  struct timespec *TsPtr = nullptr;
  if (Timeout.count() >= 0) {
    Ts.tv_sec = static_cast<time_t>(Timeout.count() / 1000000000);
    Ts.tv_nsec = static_cast<long>(Timeout.count() % 1000000000);
    TsPtr = &Ts;
  }
  syscall(SYS_futex, reinterpret_cast<const std::uint32_t *>(&Word),
          FUTEX_WAIT_PRIVATE, Expected, TsPtr, nullptr, 0);
#else
  // Portable fallback: untimed atomic wait when no deadline was given,
  // otherwise a short sleep so the caller's deadline loop makes progress.
  if (Timeout.count() < 0)
    Word.wait(Expected, std::memory_order_acquire);
  else
    std::this_thread::sleep_for(
        std::min(Timeout, std::chrono::nanoseconds(100000)));
#endif
}

/// Wakes every waiter blocked in futexWait on \p Word.
inline void futexWakeAll(const std::atomic<std::uint32_t> &Word) {
#if defined(__linux__)
  syscall(SYS_futex, reinterpret_cast<const std::uint32_t *>(&Word),
          FUTEX_WAKE_PRIVATE, INT32_MAX, nullptr, nullptr, 0);
#else
  Word.notify_all();
#endif
}

/// Slow-path blocking wait used by Request::blockingGet(): spins very
/// briefly (yielding, so a finisher sharing the core can run), then
/// registers in \p Parked and sleeps on \p Word until it leaves zero.
/// Deliberately compiled once into the library rather than defined here:
/// the spin/park loop is instantiated from templates all over the tree,
/// and keeping its body out of callers' translation units keeps their
/// code layout independent of how the wait is tuned.
void futexSpinThenWait(const std::atomic<std::uint32_t> &Word,
                       std::atomic<std::uint32_t> &Parked);

/// Wakes at most one waiter blocked in futexWait on \p Word. Correct only
/// when the caller knows a single wake-up suffices (e.g. it counted the
/// parked threads); wakeAll is the safe default.
inline void futexWakeOne(const std::atomic<std::uint32_t> &Word) {
#if defined(__linux__)
  syscall(SYS_futex, reinterpret_cast<const std::uint32_t *>(&Word),
          FUTEX_WAKE_PRIVATE, 1, nullptr, nullptr, 0);
#else
  Word.notify_one();
#endif
}

} // namespace cqs

#endif // CQS_SUPPORT_FUTEX_H
