//===- support/Futex.h - timed waiting on 32-bit words ---------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin futex wrapper. C++20's std::atomic::wait has no timed variant,
/// but abortable synchronization in practice is dominated by *timeouts*
/// ("wait up to 50ms, then cancel the request"), so the futures expose a
/// waitFor API backed by FUTEX_WAIT with a timeout. This mirrors how
/// java.util.concurrent's parkNanos underlies its timed acquires.
///
/// Under CQS_SCHEDCHECK these waits are *modelled*: a logical thread that
/// would sleep in the kernel instead blocks inside the schedcheck scheduler
/// (sc::blockOnWord), which keeps the whole execution deterministic and
/// lets the explorer treat "waiter parked" as just another state. Timed
/// waits use the scheduler's *timed block* (sc::blockOnWordTimed): the
/// thread stays wakeable by wakeWord/word-change exactly like an untimed
/// waiter, but additionally becomes runnable again after a bounded number
/// of schedule points — modelling deadline expiry without wall-clock time,
/// so a deadline loop neither busy-spins through the schedule space nor
/// deadlocks the model (DESIGN.md §7). Callers already re-check their
/// predicate and deadline in a loop, so the spurious early return is
/// sound. Non-modelled threads (regular tests in a schedcheck build,
/// teardown) fall through to the real syscall path.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SUPPORT_FUTEX_H
#define CQS_SUPPORT_FUTEX_H

#include "support/Atomic.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>
#endif

namespace cqs {

namespace detail {

/// The raw std::atomic behind a possibly-instrumented word: the address the
/// kernel futex calls operate on, and the address schedcheck keys waiter
/// lists by (it matches what sc::Atomic passes to its own hooks).
inline const std::atomic<std::uint32_t> * // atomics-lint: allow(std-atomic)
futexWord(const Atomic<std::uint32_t> &Word) {
#if defined(CQS_SCHEDCHECK) && CQS_SCHEDCHECK
  return Word.raw();
#else
  return &Word;
#endif
}

#if defined(CQS_SCHEDCHECK) && CQS_SCHEDCHECK
/// Sampler the scheduler uses to re-evaluate a blocked thread's predicate.
inline std::uint64_t sampleFutexWord(const void *P) {
  return static_cast<const std::atomic<std::uint32_t> *>( // atomics-lint: allow(std-atomic)
             P)
      ->load(std::memory_order_seq_cst);
}
#endif

} // namespace detail

/// Blocks while `*Word == Expected`, up to \p Timeout (forever if the
/// timeout is negative). Returns on wake-up, timeout, value change, or
/// spuriously — callers re-check their predicate in a loop.
inline void futexWait(const Atomic<std::uint32_t> &Word,
                      std::uint32_t Expected,
                      std::chrono::nanoseconds Timeout) {
#if defined(CQS_SCHEDCHECK) && CQS_SCHEDCHECK
  if (sc::inModelledThread()) {
    if (Timeout.count() < 0) {
      sc::blockOnWord(detail::futexWord(Word), Expected,
                      &detail::sampleFutexWord, __builtin_FILE(),
                      __builtin_LINE());
    } else {
      // Timed block: parked like an untimed waiter (wakeable by wakeWord
      // or a word change), but also runnable again after a bounded number
      // of schedule points — the model's stand-in for deadline expiry.
      sc::blockOnWordTimed(detail::futexWord(Word), Expected,
                           &detail::sampleFutexWord, __builtin_FILE(),
                           __builtin_LINE());
    }
    return;
  }
#endif
#if defined(__linux__)
  struct timespec Ts;
  struct timespec *TsPtr = nullptr;
  if (Timeout.count() >= 0) {
    Ts.tv_sec = static_cast<time_t>(Timeout.count() / 1000000000);
    Ts.tv_nsec = static_cast<long>(Timeout.count() % 1000000000);
    TsPtr = &Ts;
  }
  syscall(SYS_futex,
          reinterpret_cast<const std::uint32_t *>(detail::futexWord(Word)),
          FUTEX_WAIT_PRIVATE, Expected, TsPtr, nullptr, 0);
#else
  // Portable fallback: untimed atomic wait when no deadline was given,
  // otherwise a short sleep slice so the caller's deadline loop makes
  // progress. A notify cannot interrupt sleep_for, so re-check the word
  // first — a waker that already changed it must not cost us a full
  // slice — and keep the slice short (10µs) to bound the wake-up latency
  // of a wake that lands mid-sleep.
  if (Timeout.count() < 0) {
    detail::futexWord(Word)->wait(Expected, std::memory_order_acquire);
  } else {
    if (detail::futexWord(Word)->load(std::memory_order_acquire) != Expected)
      return;
    std::this_thread::sleep_for(
        std::min(Timeout, std::chrono::nanoseconds(10000)));
  }
#endif
}

/// Wakes every waiter blocked in futexWait on \p Word.
inline void futexWakeAll(const Atomic<std::uint32_t> &Word) {
#if defined(CQS_SCHEDCHECK) && CQS_SCHEDCHECK
  if (sc::inModelledThread()) {
    sc::wakeWord(detail::futexWord(Word));
    return;
  }
#endif
#if defined(__linux__)
  syscall(SYS_futex,
          reinterpret_cast<const std::uint32_t *>(detail::futexWord(Word)),
          FUTEX_WAKE_PRIVATE, INT32_MAX, nullptr, nullptr, 0);
#else
  detail::futexWord(Word)->notify_all();
#endif
}

/// Slow-path blocking wait used by Request::blockingGet(): spins very
/// briefly (yielding, so a finisher sharing the core can run), then
/// registers in \p Parked and sleeps on \p Word until it leaves zero.
/// Deliberately compiled once into the library rather than defined here:
/// the spin/park loop is instantiated from templates all over the tree,
/// and keeping its body out of callers' translation units keeps their
/// code layout independent of how the wait is tuned.
void futexSpinThenWait(const Atomic<std::uint32_t> &Word,
                       Atomic<std::uint32_t> &Parked);

/// Wakes at most one waiter blocked in futexWait on \p Word. Correct only
/// when the caller knows a single wake-up suffices (e.g. it counted the
/// parked threads); wakeAll is the safe default. Under the model a wake
/// marks *every* waiter on the word runnable — the scheduler treats wakes
/// as permissions to re-check, which over-approximates FUTEX_WAKE(1)
/// soundly (more interleavings, all of them possible spurious-wake-wise).
inline void futexWakeOne(const Atomic<std::uint32_t> &Word) {
#if defined(CQS_SCHEDCHECK) && CQS_SCHEDCHECK
  if (sc::inModelledThread()) {
    sc::wakeWord(detail::futexWord(Word));
    return;
  }
#endif
#if defined(__linux__)
  syscall(SYS_futex,
          reinterpret_cast<const std::uint32_t *>(detail::futexWord(Word)),
          FUTEX_WAKE_PRIVATE, 1, nullptr, nullptr, 0);
#else
  detail::futexWord(Word)->notify_one();
#endif
}

} // namespace cqs

#endif // CQS_SUPPORT_FUTEX_H
