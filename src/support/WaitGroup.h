//===- support/WaitGroup.h - completion counter for tests/bench -*- C++-*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Go-style wait group: add() registers pending work, done() retires it,
/// wait() blocks until the count reaches zero. Used by the benchmark harness
/// and the coroutine runtime to join fire-and-forget tasks.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SUPPORT_WAITGROUP_H
#define CQS_SUPPORT_WAITGROUP_H

#include "support/Atomic.h"
#include <cassert>
#include <cstdint>

namespace cqs {

/// Counts outstanding work items; wait() parks via C++20 atomic waiting.
class WaitGroup {
public:
  explicit WaitGroup(std::uint32_t Initial = 0) : Count(Initial) {}

  void add(std::uint32_t N = 1) {
    Count.fetch_add(N, std::memory_order_relaxed);
  }

  void done() {
    std::uint32_t Prev = Count.fetch_sub(1, std::memory_order_acq_rel);
    assert(Prev > 0 && "WaitGroup::done() without matching add()");
    if (Prev == 1)
      Count.notify_all();
  }

  /// Blocks until the count drops to zero.
  void wait() const {
    std::uint32_t Cur = Count.load(std::memory_order_acquire);
    while (Cur != 0) {
      Count.wait(Cur, std::memory_order_acquire);
      Cur = Count.load(std::memory_order_acquire);
    }
  }

  std::uint32_t pending() const {
    return Count.load(std::memory_order_acquire);
  }

private:
  Atomic<std::uint32_t> Count;
};

} // namespace cqs

#endif // CQS_SUPPORT_WAITGROUP_H
