//===- support/Json.h - dependency-free JSON writer & parser ---*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny JSON layer for the benchmark pipeline (bench/BenchMain.h): the
/// writer serializes BenchResult records into the machine-readable files
/// consumed by tools/bench_compare.py, and the parser lets the tests
/// round-trip what the writer produced without any external dependency.
///
/// Scope is deliberately small: the writer passes non-ASCII bytes through
/// as UTF-8 (it only \u-escapes control characters); the parser decodes
/// \uXXXX escapes to UTF-8, combining UTF-16 surrogate pairs into their
/// astral code point and rejecting unpaired surrogates; numbers are
/// doubles; object key order is preserved. That is exactly what the bench
/// schema needs.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SUPPORT_JSON_H
#define CQS_SUPPORT_JSON_H

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace cqs {
namespace json {

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

/// Streaming writer producing pretty-printed (2-space indented) JSON.
/// Usage follows the document structure:
///
///   Writer W;
///   W.beginObject();
///   W.key("name"); W.value("fig5_barrier");
///   W.key("samples"); W.beginArray(); W.value(1.5); W.endArray();
///   W.endObject();
///   std::string S = W.take();
///
/// The writer tracks nesting and comma placement; it does not validate
/// that keys are only written inside objects (garbage in, garbage out).
class Writer {
public:
  void beginObject() { open('{'); }
  void endObject() { close('}'); }
  void beginArray() { open('['); }
  void endArray() { close(']'); }

  void key(const std::string &K) {
    comma();
    appendQuoted(K);
    Out += ": ";
    JustWroteKey = true;
  }

  void value(const std::string &V) {
    comma();
    appendQuoted(V);
  }
  void value(const char *V) { value(std::string(V)); }
  void value(double V) {
    comma();
    appendNumber(V);
  }
  void value(std::uint64_t V) {
    comma();
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%llu", static_cast<unsigned long long>(V));
    Out += Buf;
  }
  void value(int V) {
    comma();
    char Buf[16];
    std::snprintf(Buf, sizeof(Buf), "%d", V);
    Out += Buf;
  }
  void value(bool V) {
    comma();
    Out += V ? "true" : "false";
  }
  void null() {
    comma();
    Out += "null";
  }

  /// Finishes the document and hands the buffer over.
  std::string take() {
    Out += '\n';
    return std::move(Out);
  }

private:
  void open(char C) {
    comma();
    Out += C;
    ++Depth;
    NeedComma = false;
    Fresh = true;
  }

  void close(char C) {
    --Depth;
    if (!Fresh) {
      Out += '\n';
      indent();
    }
    Out += C;
    NeedComma = true;
    Fresh = false;
  }

  /// Emits the separator (comma + newline + indent) due before any value
  /// or key, except directly after a key (the value shares its line).
  void comma() {
    if (JustWroteKey) {
      JustWroteKey = false;
      return;
    }
    if (NeedComma)
      Out += ',';
    if (Depth > 0) {
      Out += '\n';
      indent();
    }
    NeedComma = true;
    Fresh = false;
  }

  void indent() { Out.append(static_cast<std::size_t>(Depth) * 2, ' '); }

  void appendQuoted(const std::string &S) {
    Out += '"';
    for (char C : S) {
      switch (C) {
      case '"':
        Out += "\\\"";
        break;
      case '\\':
        Out += "\\\\";
        break;
      case '\n':
        Out += "\\n";
        break;
      case '\r':
        Out += "\\r";
        break;
      case '\t':
        Out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(C) < 0x20) {
          char Buf[8];
          std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(C)));
          Out += Buf;
        } else {
          Out += C;
        }
      }
    }
    Out += '"';
  }

  void appendNumber(double V) {
    if (!std::isfinite(V)) { // JSON has no inf/nan; null is the convention.
      Out += "null";
      return;
    }
    char Buf[40];
    // %.17g round-trips doubles; trim to the shortest representation that
    // still round-trips so the files stay diffable by humans.
    for (int Prec : {6, 9, 12, 17}) {
      std::snprintf(Buf, sizeof(Buf), "%.*g", Prec, V);
      double Back = 0;
      std::sscanf(Buf, "%lf", &Back);
      if (Back == V)
        break;
    }
    Out += Buf;
  }

  std::string Out;
  int Depth = 0;
  bool NeedComma = false;
  bool JustWroteKey = false;
  bool Fresh = true;
};

//===----------------------------------------------------------------------===//
// Value & parser
//===----------------------------------------------------------------------===//

/// A parsed JSON document node. Objects preserve insertion order (the
/// bench schema is small enough that linear key lookup is fine).
class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  double asNumber() const { return Num; }
  const std::string &asString() const { return Str; }
  const std::vector<Value> &items() const { return Items; }
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Members;
  }

  /// Object lookup; returns nullptr when absent or not an object.
  const Value *find(const std::string &Key) const {
    if (K != Kind::Object)
      return nullptr;
    for (const auto &M : Members)
      if (M.first == Key)
        return &M.second;
    return nullptr;
  }

  static Value makeNull() { return Value(); }
  static Value makeBool(bool V) {
    Value X;
    X.K = Kind::Bool;
    X.B = V;
    return X;
  }
  static Value makeNumber(double V) {
    Value X;
    X.K = Kind::Number;
    X.Num = V;
    return X;
  }
  static Value makeString(std::string V) {
    Value X;
    X.K = Kind::String;
    X.Str = std::move(V);
    return X;
  }
  static Value makeArray() {
    Value X;
    X.K = Kind::Array;
    return X;
  }
  static Value makeObject() {
    Value X;
    X.K = Kind::Object;
    return X;
  }

  std::vector<Value> &itemsMut() { return Items; }
  std::vector<std::pair<std::string, Value>> &membersMut() { return Members; }

private:
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<Value> Items;
  std::vector<std::pair<std::string, Value>> Members;
};

/// Recursive-descent parser. Returns true and fills \p Out on success;
/// on failure returns false and, if \p Err is non-null, a message with a
/// byte offset.
class Parser {
public:
  static bool parse(const std::string &Text, Value &Out,
                    std::string *Err = nullptr) {
    Parser P(Text);
    if (!P.parseValue(Out) || !P.atEndAfterSpace()) {
      if (Err)
        *Err = P.Error.empty() ? P.fail("trailing garbage") : P.Error;
      return false;
    }
    return true;
  }

private:
  explicit Parser(const std::string &Text) : S(Text) {}

  std::string fail(const char *Msg) {
    if (Error.empty())
      Error = std::string(Msg) + " at byte " + std::to_string(Pos);
    return Error;
  }

  void skipSpace() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool atEndAfterSpace() {
    skipSpace();
    return Pos == S.size();
  }

  bool consume(char C) {
    skipSpace();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool parseValue(Value &Out) {
    skipSpace();
    if (Pos >= S.size())
      return fail("unexpected end of input"), false;
    char C = S[Pos];
    if (C == '{')
      return parseObject(Out);
    if (C == '[')
      return parseArray(Out);
    if (C == '"') {
      std::string Str;
      if (!parseString(Str))
        return false;
      Out = Value::makeString(std::move(Str));
      return true;
    }
    if (C == 't' || C == 'f')
      return parseKeyword(Out);
    if (C == 'n')
      return parseKeyword(Out);
    return parseNumber(Out);
  }

  bool parseKeyword(Value &Out) {
    auto Match = [&](const char *W) {
      std::size_t L = std::char_traits<char>::length(W);
      if (S.compare(Pos, L, W) == 0) {
        Pos += L;
        return true;
      }
      return false;
    };
    if (Match("true")) {
      Out = Value::makeBool(true);
      return true;
    }
    if (Match("false")) {
      Out = Value::makeBool(false);
      return true;
    }
    if (Match("null")) {
      Out = Value::makeNull();
      return true;
    }
    return fail("invalid keyword"), false;
  }

  bool parseNumber(Value &Out) {
    std::size_t Start = Pos;
    if (Pos < S.size() && (S[Pos] == '-' || S[Pos] == '+'))
      ++Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) || S[Pos] == '.' ||
            S[Pos] == 'e' || S[Pos] == 'E' || S[Pos] == '-' || S[Pos] == '+'))
      ++Pos;
    if (Pos == Start)
      return fail("expected a value"), false;
    double V = 0;
    if (std::sscanf(S.substr(Start, Pos - Start).c_str(), "%lf", &V) != 1)
      return fail("malformed number"), false;
    Out = Value::makeNumber(V);
    return true;
  }

  /// Consumes exactly four hex digits of a \uXXXX escape (strict: sscanf
  /// would accept leading whitespace or fewer digits).
  bool parseHex4(unsigned &Code) {
    if (Pos + 4 > S.size())
      return fail("truncated \\u escape"), false;
    Code = 0;
    for (int I = 0; I < 4; ++I) {
      char C = S[Pos + static_cast<std::size_t>(I)];
      unsigned D;
      if (C >= '0' && C <= '9')
        D = static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        D = static_cast<unsigned>(C - 'a') + 10;
      else if (C >= 'A' && C <= 'F')
        D = static_cast<unsigned>(C - 'A') + 10;
      else
        return fail("malformed \\u escape"), false;
      Code = (Code << 4) | D;
    }
    Pos += 4;
    return true;
  }

  bool parseString(std::string &Out) {
    skipSpace();
    if (Pos >= S.size() || S[Pos] != '"')
      return fail("expected '\"'"), false;
    ++Pos;
    while (Pos < S.size()) {
      char C = S[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= S.size())
        break;
      char E = S[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        unsigned Code = 0;
        if (!parseHex4(Code))
          return false;
        if (Code >= 0xDC00 && Code <= 0xDFFF)
          return fail("unpaired low surrogate in \\u escape"), false;
        if (Code >= 0xD800 && Code <= 0xDBFF) {
          // High surrogate: JSON encodes astral code points as a UTF-16
          // pair, so the matching \uDC00-\uDFFF must follow immediately.
          if (Pos + 2 > S.size() || S[Pos] != '\\' || S[Pos + 1] != 'u')
            return fail("unpaired high surrogate in \\u escape"), false;
          Pos += 2;
          unsigned Low = 0;
          if (!parseHex4(Low))
            return false;
          if (Low < 0xDC00 || Low > 0xDFFF)
            return fail("unpaired high surrogate in \\u escape"), false;
          Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
        }
        // Encode the code point as UTF-8 (1-4 bytes).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else if (Code < 0x10000) {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xF0 | (Code >> 18));
          Out += static_cast<char>(0x80 | ((Code >> 12) & 0x3F));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape"), false;
      }
    }
    return fail("unterminated string"), false;
  }

  bool parseArray(Value &Out) {
    ++Pos; // '['
    Out = Value::makeArray();
    if (consume(']'))
      return true;
    while (true) {
      Value Item;
      if (!parseValue(Item))
        return false;
      Out.itemsMut().push_back(std::move(Item));
      if (consume(']'))
        return true;
      if (!consume(','))
        return fail("expected ',' or ']'"), false;
    }
  }

  bool parseObject(Value &Out) {
    ++Pos; // '{'
    Out = Value::makeObject();
    if (consume('}'))
      return true;
    while (true) {
      std::string Key;
      if (!parseString(Key))
        return false;
      if (!consume(':'))
        return fail("expected ':'"), false;
      Value V;
      if (!parseValue(V))
        return false;
      Out.membersMut().emplace_back(std::move(Key), std::move(V));
      if (consume('}'))
        return true;
      if (!consume(','))
        return fail("expected ',' or '}'"), false;
    }
  }

  const std::string &S;
  std::size_t Pos = 0;
  std::string Error;
};

} // namespace json
} // namespace cqs

#endif // CQS_SUPPORT_JSON_H
