//===- support/ValueCodec.h - encode values into tagged words --*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CQS stores each cell in a single atomic 64-bit word so that every
/// life-cycle transition of Figures 2/4/10/11 of the paper is one CAS or
/// exchange. Cells can hold either a small token (EMPTY, TAKEN, BROKEN, ...),
/// a pointer to a waiting Request future, or the resumption *value* placed by
/// a resume(..) that arrived before its suspend(). This header defines how a
/// user value of type T is encoded into the 61-bit payload of such a word.
///
/// On the JVM the value is simply an object reference; in C++ we require T to
/// be encodable, which covers everything the paper's primitives transfer:
/// Unit (semaphore/mutex/latch/barrier permits), pointers (pool elements),
/// and small integers. Users can specialize ValueTraits for their own types.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SUPPORT_VALUECODEC_H
#define CQS_SUPPORT_VALUECODEC_H

#include <cstdint>
#include <type_traits>

namespace cqs {

/// The unit type: carries no information. Used by primitives whose blocking
/// operations transfer a logical permit rather than data.
struct Unit {
  friend constexpr bool operator==(Unit, Unit) { return true; }
};

/// Number of payload bits available in a tagged cell word (64 minus the
/// 3-bit tag).
inline constexpr unsigned ValuePayloadBits = 61;

/// Maps T to/from a 61-bit payload. The primary template handles integral
/// types; specializations below handle Unit and pointers.
template <typename T, typename Enable = void> struct ValueTraits;

/// Integral values up to 32 bits are zero-extended into the payload (a
/// bijection, so decode is exact). Wider integrals would not round-trip
/// through 61 bits and are rejected at compile time.
template <typename T>
struct ValueTraits<T, std::enable_if_t<std::is_integral_v<T>>> {
  static_assert(sizeof(T) <= 4,
                "integral CQS values must fit in 32 bits; use a pointer "
                "or specialize ValueTraits for wider payloads");

  static std::uint64_t encode(T V) {
    return static_cast<std::uint64_t>(static_cast<std::uint32_t>(V));
  }
  static T decode(std::uint64_t Payload) {
    return static_cast<T>(static_cast<std::uint32_t>(Payload));
  }
};

template <> struct ValueTraits<Unit> {
  static std::uint64_t encode(Unit) { return 0; }
  static Unit decode(std::uint64_t) { return Unit{}; }
};

/// Pointers round-trip through the payload; on all supported platforms the
/// significant bits of an object pointer fit in 61 bits (user-space
/// addresses are <= 57 bits on x86-64/aarch64).
template <typename T> struct ValueTraits<T *> {
  static std::uint64_t encode(T *V) {
    return reinterpret_cast<std::uint64_t>(V);
  }
  static T *decode(std::uint64_t Payload) {
    return reinterpret_cast<T *>(Payload);
  }
};

} // namespace cqs

#endif // CQS_SUPPORT_VALUECODEC_H
