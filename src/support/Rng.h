//===- support/Rng.h - fast deterministic PRNGs ----------------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64 and xorshift generators used by the benchmark harness and the
/// randomized/property tests. Deterministic per seed so failures reproduce.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SUPPORT_RNG_H
#define CQS_SUPPORT_RNG_H

#include <cstdint>

namespace cqs {

/// SplitMix64: tiny, fast, and passes BigCrush; ideal for seeding and for
/// benchmark workloads where statistical perfection is irrelevant.
class SplitMix64 {
public:
  explicit SplitMix64(std::uint64_t Seed) : State(Seed) {}

  std::uint64_t next() {
    std::uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  std::uint64_t nextBelow(std::uint64_t Bound) { return next() % Bound; }

  /// Bernoulli trial that succeeds with probability Num/Den.
  bool chance(std::uint64_t Num, std::uint64_t Den) {
    return nextBelow(Den) < Num;
  }

private:
  std::uint64_t State;
};

} // namespace cqs

#endif // CQS_SUPPORT_RNG_H
