//===- support/ObjectPool.h - reclamation-aware object pools ---*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Freelist pools for the two objects the CQS hot path allocates: Request
/// futures (one per suspend()) and segments (one per SEGM_SIZE operations).
/// The paper's Kotlin implementation amortizes both through the JVM's
/// generational GC; without pooling, our C++ port pays a global-allocator
/// round trip on every suspension, which dominates the per-operation cost
/// at high thread counts (EXPERIMENTS.md, micro_cqs_ops).
///
/// Structure (a miniature magazine allocator):
///   - a per-thread *magazine* — a singly-linked freelist threaded through
///     the objects themselves (`T::NextFree`), so pushes and pops on the
///     hot path are two plain pointer writes with no synchronization;
///   - a mutex-guarded *global overflow list* that magazines spill into and
///     refill from in batches, so objects recycled on one thread serve
///     acquisitions on another (EBR runs deleters on the retiring thread,
///     which is not necessarily the allocating one);
///   - a global capacity valve beyond which spilled batches are freed for
///     real, bounding the pool footprint after a burst.
///
/// The pool itself never allocates: a failed tryAcquire() is a *miss* and
/// the caller constructs with plain `new`; the object enters the pool on
/// its first recycle. Reclamation safety is the caller's contract — an
/// object must only be recycled once no thread can still dereference it.
/// Both clients route shared objects through EBR (ebr::retireRecycle) so
/// the scrub-and-reuse happens strictly after the three-epoch rule fires;
/// see DESIGN.md §6 for the full argument.
///
/// CQS_DISABLE_POOLING (CMake option) compiles the pools down to
/// always-miss stubs so sanitizer jobs can exercise the plain new/delete
/// lifetime story as well.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SUPPORT_OBJECTPOOL_H
#define CQS_SUPPORT_OBJECTPOOL_H

#include "support/Atomic.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace cqs {
namespace pool {

#if defined(CQS_DISABLE_POOLING) && CQS_DISABLE_POOLING
inline constexpr bool PoolingEnabled = false;
#else
inline constexpr bool PoolingEnabled = true;
#endif

/// Which hot-path object a pool serves; selects the process-wide stats
/// block so CqsStats::processSnapshot() can attribute pool behaviour to
/// benchmark data points without knowing the pooled types.
enum class PoolKind { Request = 0, Segment = 1 };

inline constexpr int NumPoolKinds = 2;

/// Process-wide effectiveness counters per PoolKind (all instantiations of
/// a kind — e.g. every Request<T, Traits> — share one block).
/// PlainAtomic on purpose: these are observational counters bumped inside
/// pool internals (including under the overflow mutex), and must never
/// become schedcheck scheduling points.
struct PoolStats {
  /// tryAcquire() served from a magazine or the overflow list.
  PlainAtomic<std::uint64_t> Hits{0};
  /// tryAcquire() found nothing; the caller fell back to `new`.
  PlainAtomic<std::uint64_t> Misses{0};
  /// Objects returned to the pool instead of being freed.
  PlainAtomic<std::uint64_t> Recycled{0};
};

inline PoolStats &stats(PoolKind K) {
  static PoolStats S[NumPoolKinds];
  return S[static_cast<int>(K)];
}

namespace detail {

/// Registry of per-instantiation drain functions, populated lazily when a
/// pool's global state is first constructed. Exists for the schedcheck
/// model checker: emptying every pool between explored executions is part
/// of what makes a run seed replayable (same heap state, same schedule).
struct DrainRegistry {
  std::mutex Mu;
  std::vector<void (*)()> Fns;
};

inline DrainRegistry &drainRegistry() {
  // Leaked for the same teardown reason as the pools themselves.
  static DrainRegistry *R = new DrainRegistry();
  return *R;
}

inline void registerDrainer(void (*F)()) {
  DrainRegistry &R = drainRegistry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Fns.push_back(F);
}

} // namespace detail

/// Frees the calling thread's magazines and the global overflow lists of
/// every pool instantiation used so far. Only safe when no other thread is
/// acquiring or recycling (test teardown / between schedcheck executions).
inline void drainAllForTesting() {
  std::vector<void (*)()> Fns;
  {
    detail::DrainRegistry &R = detail::drainRegistry();
    std::lock_guard<std::mutex> Lock(R.Mu);
    Fns = R.Fns;
  }
  for (void (*F)() : Fns)
    F();
}

/// Freelist pool over already-constructed objects of \p T.
///
/// \p T must expose a `T *NextFree` member: the link storage the freelist
/// threads through pooled objects. It is only meaningful while the object
/// is inside the pool; clients that reconstruct in place (placement new)
/// may freely clobber it on acquisition.
///
/// Thread safety: magazines are strictly thread-local; ownership hand-off
/// between threads goes through the overflow mutex, which provides the
/// happens-before edge between a recycler's scrub and the next owner's
/// reinitialization.
template <typename T, PoolKind Kind> class ObjectPool {
public:
  /// Per-thread cache depth. Sized to absorb an EBR collection burst
  /// (bags drain in batches of ~64 retires, see Ebr.cpp's advance pacing)
  /// without bouncing the overflow mutex on every recycle.
  static constexpr unsigned MagazineCapacity = 128;
  /// Objects moved per magazine<->overflow transfer.
  static constexpr unsigned TransferBatch = MagazineCapacity / 2;
  /// Overflow objects beyond this are freed for real, bounding the
  /// steady-state footprint after a burst (valve, not a hot path).
  static constexpr std::size_t GlobalCapacity = 8192;

  /// Pops a recycled object, or returns null (a *miss*: the caller
  /// constructs a fresh object with `new`, which joins the pool on its
  /// first recycle).
  static T *tryAcquire() {
    if constexpr (!PoolingEnabled)
      return nullptr;
    Magazine &M = magazine();
    if (!M.Head)
      refill(M);
    if (T *Obj = M.Head) {
      M.Head = Obj->NextFree;
      --M.Count;
      stats(Kind).Hits.fetch_add(1, std::memory_order_relaxed);
      return Obj;
    }
    stats(Kind).Misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }

  /// Returns \p Obj to the pool. The caller guarantees no thread can still
  /// reach the object (unpublished, or past its EBR grace period) and that
  /// it has been scrubbed into its reusable state. With pooling disabled
  /// this degenerates to `delete` so call sites need no second gate.
  static void recycle(T *Obj) {
    if constexpr (!PoolingEnabled) {
      delete Obj;
      return;
    }
    stats(Kind).Recycled.fetch_add(1, std::memory_order_relaxed);
    Magazine &M = magazine();
    Obj->NextFree = M.Head;
    M.Head = Obj;
    if (++M.Count >= MagazineCapacity)
      spill(M);
  }

  /// Approximate pooled-object count (magazines excluded); tests only.
  static std::size_t overflowSizeForTesting() {
    Global &G = global();
    std::lock_guard<std::mutex> Lock(G.Mu);
    return G.Count;
  }

  /// Frees the calling thread's magazine and the global overflow list.
  /// Registered with pool::drainAllForTesting(); see its safety contract.
  /// Threads that died before the call already donated their magazines to
  /// the overflow list, so between schedcheck executions (all logical
  /// threads joined) this empties the pool completely.
  static void drainForTesting() {
    if constexpr (!PoolingEnabled)
      return;
    Magazine &M = magazine();
    while (T *Obj = M.Head) {
      M.Head = Obj->NextFree;
      delete Obj;
    }
    M.Count = 0;
    Global &G = global();
    std::lock_guard<std::mutex> Lock(G.Mu);
    while (T *Obj = G.Head) {
      G.Head = Obj->NextFree;
      delete Obj;
    }
    G.Count = 0;
  }

private:
  struct Global {
    std::mutex Mu;
    T *Head = nullptr;
    std::size_t Count = 0;
  };

  struct Magazine {
    T *Head = nullptr;
    unsigned Count = 0;

    /// A dying thread donates its magazine to the overflow list so the
    /// objects keep circulating (and stay reachable for leak checkers).
    ~Magazine() {
      if (!Head)
        return;
      T *Tail = Head;
      while (Tail->NextFree)
        Tail = Tail->NextFree;
      Global &G = global();
      std::lock_guard<std::mutex> Lock(G.Mu);
      Tail->NextFree = G.Head;
      G.Head = Head;
      G.Count += Count;
    }
  };

  /// Leaked on purpose (same idiom as the EBR domain): pooled objects may
  /// be donated by detached threads during process teardown, and keeping
  /// the list reachable from a static keeps LeakSanitizer quiet about the
  /// intentionally retained objects.
  ///
  /// Registration happens here rather than in a dedicated once-flag so the
  /// hot paths stay untouched; every object enters circulation through
  /// tryAcquire(), whose empty-magazine refill constructs the global state
  /// before the first recycle can cache anything.
  static Global &global() {
    static Global *G = [] {
      auto *P = new Global();
      detail::registerDrainer(&ObjectPool::drainForTesting);
      return P;
    }();
    return *G;
  }

  static Magazine &magazine() {
    thread_local Magazine M;
    return M;
  }

  /// Moves TransferBatch objects magazine -> overflow; frees them instead
  /// when the overflow list is already at capacity.
  static void spill(Magazine &M) {
    T *ChainHead = M.Head;
    T *Tail = ChainHead;
    for (unsigned I = 1; I < TransferBatch; ++I)
      Tail = Tail->NextFree;
    M.Head = Tail->NextFree;
    M.Count -= TransferBatch;
    Tail->NextFree = nullptr;
    {
      Global &G = global();
      std::lock_guard<std::mutex> Lock(G.Mu);
      if (G.Count < GlobalCapacity) {
        Tail->NextFree = G.Head;
        G.Head = ChainHead;
        G.Count += TransferBatch;
        return;
      }
    }
    // Valve: the process holds more free objects than any workload phase
    // will re-acquire; give this batch back to the allocator.
    while (ChainHead) {
      T *Next = ChainHead->NextFree;
      delete ChainHead;
      ChainHead = Next;
    }
  }

  /// Pulls up to TransferBatch objects overflow -> magazine.
  static void refill(Magazine &M) {
    Global &G = global();
    std::lock_guard<std::mutex> Lock(G.Mu);
    while (G.Head && M.Count < TransferBatch) {
      T *Obj = G.Head;
      G.Head = Obj->NextFree;
      --G.Count;
      Obj->NextFree = M.Head;
      M.Head = Obj;
      ++M.Count;
    }
  }
};

} // namespace pool
} // namespace cqs

#endif // CQS_SUPPORT_OBJECTPOOL_H
