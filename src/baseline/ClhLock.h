//===- baseline/ClhLock.h - classic CLH queue lock -------------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CLH queue lock [Magnusson, Landin, Hagersten 1994], one of the fair
/// mutex baselines of Figure 7. Arrivals swap themselves onto an implicit
/// queue with a single exchange on the tail; each thread spins on its
/// predecessor's flag. The spin is bounded-then-yield so the baseline stays
/// live on oversubscribed hosts (DESIGN.md §3).
///
//===----------------------------------------------------------------------===//

#ifndef CQS_BASELINE_CLHLOCK_H
#define CQS_BASELINE_CLHLOCK_H

#include "support/Backoff.h"
#include "support/CacheLine.h"

#include "support/Atomic.h"
#include <cassert>

namespace cqs {

/// Fair spin lock with local spinning on the predecessor's node.
class ClhLock {
  struct alignas(CacheLineSize) Node {
    Atomic<bool> Locked{true};
  };

public:
  ClhLock() {
    auto *Dummy = new Node();
    Dummy->Locked.store(false, std::memory_order_relaxed);
    Tail.Value.store(Dummy, std::memory_order_relaxed);
  }

  ~ClhLock() {
    assert(!Owner && "destroying a held ClhLock");
    delete Tail.Value.load(std::memory_order_relaxed);
  }

  ClhLock(const ClhLock &) = delete;
  ClhLock &operator=(const ClhLock &) = delete;

  void lock() {
    auto *N = new Node();
    Node *Pred = Tail.Value.exchange(N, std::memory_order_acq_rel);
    Backoff B;
    while (Pred->Locked.load(std::memory_order_acquire))
      B.pause();
    // The predecessor released; nobody else can reference its node.
    delete Pred;
    Owner = N; // protected by the lock we now hold
  }

  void unlock() {
    Node *N = Owner;
    assert(N && "unlock() without lock()");
    Owner = nullptr;
    N->Locked.store(false, std::memory_order_release);
  }

private:
  CachePadded<Atomic<Node *>> Tail{nullptr};
  Node *Owner = nullptr;
};

} // namespace cqs

#endif // CQS_BASELINE_CLHLOCK_H
