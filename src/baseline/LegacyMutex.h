//===- baseline/LegacyMutex.h - pre-CQS Kotlin-style mutex -----*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Figure 13 comparator: the mutex that kotlinx.coroutines shipped
/// before CQS. Structurally it pairs a CAS-updated state word with a
/// lock-free *linked* queue of waiting continuations — every enqueue is a
/// CAS on the queue tail, every handoff a CAS-dequeue, in contrast to the
/// CQS design's Fetch-And-Add counters over segment cells. That CAS-vs-FAA
/// difference is precisely what the paper credits for the ~10-40% speedup
/// (Section 7, Appendix F.3), so this baseline preserves it.
///
/// The waiters are the same Request<Unit> futures the CQS primitives use,
/// so benchmarks drive both mutexes through one interface (blockingGet or
/// the coroutine awaitable). Cancellation of a waiting lock() is not
/// supported (the old Kotlin implementation's linear-time cancellation is
/// not exercised by the Figure 13 workload).
///
//===----------------------------------------------------------------------===//

#ifndef CQS_BASELINE_LEGACYMUTEX_H
#define CQS_BASELINE_LEGACYMUTEX_H

#include "future/Future.h"
#include "reclaim/Ebr.h"
#include "support/Backoff.h"
#include "support/CacheLine.h"

#include <atomic>
#include <cassert>
#include <cstdint>

namespace cqs {

/// Fair mutex: CAS'd permit counter + Michael-Scott queue of waiters.
class LegacyCoroutineMutex {
  using RequestType = Request<Unit>;

  struct Node {
    std::atomic<Node *> Next{nullptr};
    RequestType *Waiter = nullptr;
  };

public:
  using FutureType = Future<Unit>;

  LegacyCoroutineMutex() {
    auto *Dummy = new Node();
    Head.Value.store(Dummy, std::memory_order_relaxed);
    Tail.Value.store(Dummy, std::memory_order_relaxed);
  }

  LegacyCoroutineMutex(const LegacyCoroutineMutex &) = delete;
  LegacyCoroutineMutex &operator=(const LegacyCoroutineMutex &) = delete;

  ~LegacyCoroutineMutex() {
    Node *Cur = Head.Value.load(std::memory_order_relaxed);
    while (Cur) {
      Node *Next = Cur->Next.load(std::memory_order_relaxed);
      if (Cur->Waiter)
        Cur->Waiter->release();
      delete Cur;
      Cur = Next;
    }
  }

  /// Acquires the mutex: immediate when free, otherwise enqueues a waiter
  /// future completed by the releasing unlock().
  FutureType lock() {
    for (;;) {
      std::int64_t S = State.Value.load();
      if (S > 0) {
        // Free: take it with a CAS (the legacy design's contended hot spot).
        if (State.Value.compare_exchange_weak(S, S - 1))
          return FutureType::immediate(Unit{});
        continue;
      }
      // Held: register as one more waiter.
      if (!State.Value.compare_exchange_weak(S, S - 1))
        continue;
      auto *R = new RequestType(/*InitialRefs=*/2); // queue + caller
      enqueue(R);
      return FutureType::suspended(Ref<RequestType>::adopt(R));
    }
  }

  /// Releases the mutex, handing it to the longest waiting lock() if any.
  void unlock() {
    for (;;) {
      std::int64_t S = State.Value.load();
      assert(S <= 0 && "unlock() of a free LegacyCoroutineMutex");
      if (!State.Value.compare_exchange_weak(S, S + 1))
        continue;
      if (S == 0)
        return; // no waiter
      // A waiter registered (or is about to finish registering: the state
      // decrement precedes the enqueue); hand the lock over.
      RequestType *R = dequeueSpinning();
      [[maybe_unused]] bool Ok = R->complete(Unit{});
      assert(Ok && "legacy mutex waiters are never cancelled");
      R->release();
      return;
    }
  }

  bool isLockedForTesting() const { return State.Value.load() <= 0; }

private:
  void enqueue(RequestType *R) {
    auto *N = new Node();
    N->Waiter = R;
    ebr::Guard Guard;
    for (;;) {
      Node *T = Tail.Value.load();
      Node *Next = T->Next.load();
      if (Next) {
        Tail.Value.compare_exchange_weak(T, Next);
        continue;
      }
      Node *Expected = nullptr;
      if (T->Next.compare_exchange_strong(Expected, N)) {
        Tail.Value.compare_exchange_strong(T, N);
        return;
      }
    }
  }

  /// Dequeues the first waiter, spinning (bounded, then yielding) through
  /// the suspend/resume race window where the counter already promised a
  /// waiter but its node is not linked yet.
  RequestType *dequeueSpinning() {
    ebr::Guard Guard;
    Backoff B;
    for (;;) {
      Node *D = Head.Value.load();
      Node *F = D->Next.load();
      if (!F) {
        B.pause();
        continue;
      }
      if (!Head.Value.compare_exchange_strong(D, F))
        continue;
      // Keep the MS-queue discipline: never retire the tail.
      Node *T = Tail.Value.load();
      if (T == D)
        Tail.Value.compare_exchange_strong(T, F);
      RequestType *R = F->Waiter;
      F->Waiter = nullptr; // F is the new dummy
      ebr::retireObject(D);
      return R;
    }
  }

  CachePadded<std::atomic<std::int64_t>> State{1};
  CachePadded<std::atomic<Node *>> Head{nullptr};
  CachePadded<std::atomic<Node *>> Tail{nullptr};
};

} // namespace cqs

#endif // CQS_BASELINE_LEGACYMUTEX_H
