//===- baseline/LegacyMutex.h - pre-CQS Kotlin-style mutex -----*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Figure 13 comparator: the mutex that kotlinx.coroutines shipped
/// before CQS. Structurally it pairs a CAS-updated state word with a
/// lock-free *linked* queue of waiting continuations — every enqueue is a
/// CAS on the queue tail, every handoff a CAS-dequeue, in contrast to the
/// CQS design's Fetch-And-Add counters over segment cells. That CAS-vs-FAA
/// difference is precisely what the paper credits for the ~10-40% speedup
/// (Section 7, Appendix F.3), so this baseline preserves it.
///
/// The waiters are the same Request<Unit> futures the CQS primitives use,
/// so benchmarks drive both mutexes through one interface (blockingGet or
/// the coroutine awaitable). Cancellation of a waiting lock() is not
/// supported (the old Kotlin implementation's linear-time cancellation is
/// not exercised by the Figure 13 workload).
///
//===----------------------------------------------------------------------===//

#ifndef CQS_BASELINE_LEGACYMUTEX_H
#define CQS_BASELINE_LEGACYMUTEX_H

#include "future/Future.h"
#include "reclaim/Ebr.h"
#include "support/Backoff.h"
#include "support/CacheLine.h"

#include "support/Atomic.h"
#include <cassert>
#include <cstdint>

namespace cqs {

/// Fair mutex: CAS'd permit counter + Michael-Scott queue of waiters.
class LegacyCoroutineMutex {
  using RequestType = Request<Unit>;

  struct Node {
    Atomic<Node *> Next{nullptr};
    RequestType *Waiter = nullptr;
  };

public:
  using FutureType = Future<Unit>;

  LegacyCoroutineMutex() {
    auto *Dummy = new Node();
    Head.Value.store(Dummy, std::memory_order_relaxed);
    Tail.Value.store(Dummy, std::memory_order_relaxed);
  }

  LegacyCoroutineMutex(const LegacyCoroutineMutex &) = delete;
  LegacyCoroutineMutex &operator=(const LegacyCoroutineMutex &) = delete;

  ~LegacyCoroutineMutex() {
    Node *Cur = Head.Value.load(std::memory_order_relaxed);
    while (Cur) {
      Node *Next = Cur->Next.load(std::memory_order_relaxed);
      if (Cur->Waiter)
        Cur->Waiter->release();
      delete Cur;
      Cur = Next;
    }
  }

  /// Acquires the mutex: immediate when free, otherwise enqueues a waiter
  /// future completed by the releasing unlock().
  FutureType lock() {
    for (;;) {
      std::int64_t S = State.Value.load(std::memory_order_seq_cst);
      if (S > 0) {
        // Free: take it with a CAS (the legacy design's contended hot spot).
        if (State.Value.compare_exchange_weak(S, S - 1, std::memory_order_seq_cst))
          return FutureType::immediate(Unit{});
        continue;
      }
      // Held: register as one more waiter.
      if (!State.Value.compare_exchange_weak(S, S - 1, std::memory_order_seq_cst))
        continue;
      auto *R = new RequestType(/*InitialRefs=*/2); // queue + caller
      enqueue(R);
      return FutureType::suspended(Ref<RequestType>::adopt(R));
    }
  }

  /// Releases the mutex, handing it to the longest waiting lock() if any.
  void unlock() {
    for (;;) {
      std::int64_t S = State.Value.load(std::memory_order_seq_cst);
      assert(S <= 0 && "unlock() of a free LegacyCoroutineMutex");
      if (!State.Value.compare_exchange_weak(S, S + 1, std::memory_order_seq_cst))
        continue;
      if (S == 0)
        return; // no waiter
      // A waiter registered (or is about to finish registering: the state
      // decrement precedes the enqueue); hand the lock over.
      RequestType *R = dequeueSpinning();
      [[maybe_unused]] bool Ok = R->complete(Unit{});
      assert(Ok && "legacy mutex waiters are never cancelled");
      R->release();
      return;
    }
  }

  bool isLockedForTesting() const { return State.Value.load(std::memory_order_seq_cst) <= 0; }

private:
  void enqueue(RequestType *R) {
    auto *N = new Node();
    N->Waiter = R;
    ebr::Guard Guard;
    for (;;) {
      Node *T = Tail.Value.load(std::memory_order_seq_cst);
      Node *Next = T->Next.load(std::memory_order_seq_cst);
      if (Next) {
        Tail.Value.compare_exchange_weak(T, Next, std::memory_order_seq_cst);
        continue;
      }
      Node *Expected = nullptr;
      if (T->Next.compare_exchange_strong(Expected, N, std::memory_order_seq_cst)) {
        Tail.Value.compare_exchange_strong(T, N, std::memory_order_seq_cst);
        return;
      }
    }
  }

  /// Dequeues the first waiter, spinning (bounded, then yielding) through
  /// the suspend/resume race window where the counter already promised a
  /// waiter but its node is not linked yet.
  RequestType *dequeueSpinning() {
    ebr::Guard Guard;
    Backoff B;
    for (;;) {
      Node *D = Head.Value.load(std::memory_order_seq_cst);
      Node *F = D->Next.load(std::memory_order_seq_cst);
      if (!F) {
        B.pause();
        continue;
      }
      if (!Head.Value.compare_exchange_strong(D, F, std::memory_order_seq_cst))
        continue;
      // Keep the MS-queue discipline: never retire the tail.
      Node *T = Tail.Value.load(std::memory_order_seq_cst);
      if (T == D)
        Tail.Value.compare_exchange_strong(T, F, std::memory_order_seq_cst);
      RequestType *R = F->Waiter;
      F->Waiter = nullptr; // F is the new dummy
      ebr::retireObject(D);
      return R;
    }
  }

  CachePadded<Atomic<std::int64_t>> State{1};
  CachePadded<Atomic<Node *>> Head{nullptr};
  CachePadded<Atomic<Node *>> Tail{nullptr};
};

} // namespace cqs

#endif // CQS_BASELINE_LEGACYMUTEX_H
