//===- baseline/McsLock.h - classic MCS queue lock -------------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MCS queue lock [Mellor-Crummey, Scott 1991], the other fair mutex
/// baseline of Figure 7. Each waiter spins on its *own* node; the releaser
/// follows the explicit next pointer to hand the lock over.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_BASELINE_MCSLOCK_H
#define CQS_BASELINE_MCSLOCK_H

#include "support/Backoff.h"
#include "support/CacheLine.h"

#include "support/Atomic.h"
#include <cassert>

namespace cqs {

/// Fair spin lock with purely local spinning.
class McsLock {
  struct alignas(CacheLineSize) Node {
    Atomic<Node *> Next{nullptr};
    Atomic<bool> Locked{false};
  };

public:
  McsLock() = default;
  McsLock(const McsLock &) = delete;
  McsLock &operator=(const McsLock &) = delete;

  ~McsLock() { assert(!Owner && "destroying a held McsLock"); }

  void lock() {
    auto *N = new Node();
    Node *Pred = Tail.Value.exchange(N, std::memory_order_acq_rel);
    if (Pred) {
      N->Locked.store(true, std::memory_order_relaxed);
      Pred->Next.store(N, std::memory_order_release);
      Backoff B;
      while (N->Locked.load(std::memory_order_acquire))
        B.pause();
    }
    Owner = N;
  }

  void unlock() {
    Node *N = Owner;
    assert(N && "unlock() without lock()");
    Owner = nullptr;
    Node *Next = N->Next.load(std::memory_order_acquire);
    if (!Next) {
      // Nobody enqueued behind us (yet): try to reset the tail.
      Node *Expected = N;
      if (Tail.Value.compare_exchange_strong(Expected, nullptr,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
        delete N;
        return;
      }
      // A successor is mid-enqueue; wait for its next-pointer write.
      Backoff B;
      while (!(Next = N->Next.load(std::memory_order_acquire)))
        B.pause();
    }
    Next->Locked.store(false, std::memory_order_release);
    // The successor never touches our node after publishing Next.
    delete N;
  }

private:
  CachePadded<Atomic<Node *>> Tail{nullptr};
  Node *Owner = nullptr;
};

} // namespace cqs

#endif // CQS_BASELINE_MCSLOCK_H
