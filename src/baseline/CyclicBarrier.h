//===- baseline/CyclicBarrier.h - Java-style mutex+condvar barrier -*-C++-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Figure 5 Java baseline. java.util.concurrent.CyclicBarrier guards a
/// generation counter with a ReentrantLock and a Condition — the paper:
/// "we find the reason for such performance degradation in using a mutex
/// under the hood; surprisingly, it does not use AbstractQueuedSynchronizer
/// directly." The C++ behavioral equivalent is std::mutex +
/// std::condition_variable.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_BASELINE_CYCLICBARRIER_H
#define CQS_BASELINE_CYCLICBARRIER_H

#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace cqs {

/// Reusable barrier in the java.util.concurrent.CyclicBarrier style.
class CyclicBarrierBaseline {
public:
  explicit CyclicBarrierBaseline(int Parties) : Parties(Parties) {
    assert(Parties >= 1 && "barrier needs at least one party");
    Count = Parties;
  }

  CyclicBarrierBaseline(const CyclicBarrierBaseline &) = delete;
  CyclicBarrierBaseline &operator=(const CyclicBarrierBaseline &) = delete;

  /// Blocks until all parties of the current generation arrive.
  void arriveAndWait() {
    std::unique_lock<std::mutex> Lock(M);
    std::uint64_t Gen = Generation;
    if (--Count == 0) {
      ++Generation;
      Count = Parties;
      Cv.notify_all();
      return;
    }
    Cv.wait(Lock, [&] { return Generation != Gen; });
  }

private:
  const int Parties;
  std::mutex M;
  std::condition_variable Cv;
  int Count;
  std::uint64_t Generation = 0;
};

} // namespace cqs

#endif // CQS_BASELINE_CYCLICBARRIER_H
