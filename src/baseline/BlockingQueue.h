//===- baseline/BlockingQueue.h - Java blocking-queue baselines -*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Figure 8/15 comparators for the blocking pools:
///
///  - ArrayBlockingQueue: one lock guarding a ring buffer plus notEmpty/
///    notFull conditions. The *fair* variant uses our AQS fair lock with a
///    condition queue (Java's fair ReentrantLock + Condition); the *unfair*
///    variant uses std::mutex/std::condition_variable (the behavioral
///    equivalent of the default unfair ReentrantLock).
///  - LinkedBlockingQueue: Java's two-lock queue (put lock + take lock +
///    atomic count); unbounded, as in the paper's pool benchmark where
///    put() never blocks.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_BASELINE_BLOCKINGQUEUE_H
#define CQS_BASELINE_BLOCKINGQUEUE_H

#include "baseline/Aqs.h"
#include "reclaim/Ebr.h"

#include "support/Atomic.h"
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

namespace cqs {

/// Condition variable for AqsLock. Operations require holding the owning
/// lock, so the waiter list needs no synchronization of its own; parking is
/// per-node atomic wait. Mesa semantics: callers re-check their predicate.
class AqsCondition {
  struct WaitNode {
    Atomic<std::uint32_t> Signal{0};
    WaitNode *Next = nullptr;
  };

public:
  /// Atomically releases \p Lock, waits for a signal, reacquires \p Lock.
  void await(AqsLock &Lock) {
    auto *N = new WaitNode();
    // Guarded by Lock: plain list manipulation.
    if (Tail)
      Tail->Next = N;
    else
      Head = N;
    Tail = N;
    Lock.unlock();
    while (N->Signal.load(std::memory_order_seq_cst) == 0)
      N->Signal.wait(0);
    {
      // The signaller may still be notifying; free through EBR.
      ebr::Guard Guard;
      ebr::retireObject(N);
    }
    Lock.lock();
  }

  /// Wakes one waiter; caller must hold the owning lock.
  void signal() {
    WaitNode *N = Head;
    if (!N)
      return;
    Head = N->Next;
    if (!Head)
      Tail = nullptr;
    ebr::Guard Guard;
    N->Signal.store(1, std::memory_order_seq_cst);
    N->Signal.notify_all();
  }

  /// Wakes all waiters; caller must hold the owning lock.
  void signalAll() {
    while (Head)
      signal();
  }

private:
  WaitNode *Head = nullptr;
  WaitNode *Tail = nullptr;
};

/// ArrayBlockingQueue with a *fair* lock (Java's `new ArrayBlockingQueue<>(
/// capacity, true)`).
template <typename E> class FairArrayBlockingQueue {
public:
  explicit FairArrayBlockingQueue(std::size_t Capacity)
      : Lock(/*Fair=*/true), Buffer(Capacity) {}

  void put(E V) {
    Lock.lock();
    while (Count == Buffer.size())
      NotFull.await(Lock);
    Buffer[PutIdx] = V;
    PutIdx = (PutIdx + 1) % Buffer.size();
    ++Count;
    NotEmpty.signal();
    Lock.unlock();
  }

  E take() {
    Lock.lock();
    while (Count == 0)
      NotEmpty.await(Lock);
    E V = Buffer[TakeIdx];
    TakeIdx = (TakeIdx + 1) % Buffer.size();
    --Count;
    NotFull.signal();
    Lock.unlock();
    return V;
  }

private:
  AqsLock Lock;
  AqsCondition NotEmpty, NotFull;
  std::vector<E> Buffer;
  std::size_t PutIdx = 0, TakeIdx = 0, Count = 0;
};

/// ArrayBlockingQueue with the default *unfair* lock.
template <typename E> class UnfairArrayBlockingQueue {
public:
  explicit UnfairArrayBlockingQueue(std::size_t Capacity) : Buffer(Capacity) {}

  void put(E V) {
    std::unique_lock<std::mutex> L(M);
    NotFull.wait(L, [&] { return Count < Buffer.size(); });
    Buffer[PutIdx] = V;
    PutIdx = (PutIdx + 1) % Buffer.size();
    ++Count;
    NotEmpty.notify_one();
  }

  E take() {
    std::unique_lock<std::mutex> L(M);
    NotEmpty.wait(L, [&] { return Count > 0; });
    E V = Buffer[TakeIdx];
    TakeIdx = (TakeIdx + 1) % Buffer.size();
    --Count;
    NotFull.notify_one();
    return V;
  }

private:
  std::mutex M;
  std::condition_variable NotEmpty, NotFull;
  std::vector<E> Buffer;
  std::size_t PutIdx = 0, TakeIdx = 0, Count = 0;
};

/// Java's two-lock LinkedBlockingQueue (unbounded: put never blocks).
template <typename E> class LinkedBlockingQueueBaseline {
  struct Node {
    E Item{};
    Node *Next = nullptr;
  };

public:
  LinkedBlockingQueueBaseline() {
    Head = Tail = new Node(); // dummy
  }

  ~LinkedBlockingQueueBaseline() {
    Node *Cur = Head;
    while (Cur) {
      Node *Next = Cur->Next;
      delete Cur;
      Cur = Next;
    }
  }

  LinkedBlockingQueueBaseline(const LinkedBlockingQueueBaseline &) = delete;
  LinkedBlockingQueueBaseline &
  operator=(const LinkedBlockingQueueBaseline &) = delete;

  void put(E V) {
    auto *N = new Node();
    N->Item = V;
    std::int64_t OldCount;
    {
      std::lock_guard<std::mutex> L(PutLock);
      Tail->Next = N;
      Tail = N;
      OldCount = Count.fetch_add(1, std::memory_order_seq_cst);
    }
    if (OldCount == 0) {
      // The queue was empty: waiters may be parked on NotEmpty.
      std::lock_guard<std::mutex> L(TakeLock);
      NotEmpty.notify_one();
    }
  }

  E take() {
    E V;
    std::int64_t OldCount;
    {
      std::unique_lock<std::mutex> L(TakeLock);
      NotEmpty.wait(L, [&] { return Count.load(std::memory_order_seq_cst) > 0; });
      Node *First = Head->Next;
      V = First->Item;
      delete Head; // old dummy; only take-side touches it
      Head = First;
      OldCount = Count.fetch_sub(1, std::memory_order_seq_cst);
      if (OldCount > 1)
        NotEmpty.notify_one(); // cascade to the next waiting take
    }
    return V;
  }

private:
  std::mutex PutLock, TakeLock;
  std::condition_variable NotEmpty;
  Node *Head, *Tail;
  Atomic<std::int64_t> Count{0};
};

} // namespace cqs

#endif // CQS_BASELINE_BLOCKINGQUEUE_H
