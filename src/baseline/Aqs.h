//===- baseline/Aqs.h - AbstractQueuedSynchronizer re-implementation -*-C++-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A C++ re-implementation of the core of Java's AbstractQueuedSynchronizer
/// [Lea 2005], the framework the paper compares CQS against ("the only
/// practical abstraction that provides similar semantics"). The structural
/// properties the paper's analysis attributes to AQS are preserved:
///
///  - a single 64-bit `state` word updated with CAS loops (NOT Fetch-And-
///    Add — this is exactly the scalability difference Section 7 discusses);
///  - a CLH-style FIFO queue of waiter nodes maintained with head/tail CAS;
///  - park/unpark blocking (here: C++20 atomic wait/notify);
///  - fair mode that declines the fast path while waiters are queued, and
///    unfair (barging) mode that always tries first;
///  - wake-up propagation for shared acquires (semaphore, latch).
///
/// Synchronization policies plug in via a static-interface template
/// parameter mirroring Java's tryAcquire/tryRelease template methods.
/// Cancellation of a parked acquire is not implemented (the paper's
/// benchmarks measure throughput, not abort handling).
///
/// All atomics here use the default seq_cst ordering on purpose: the
/// no-lost-wakeup argument needs a total order between State updates and
/// queue-link updates (release writes a permit then reads the queue; an
/// acquirer links its node then reads State — the classic store-load
/// pattern that acquire/release does not order).
///
//===----------------------------------------------------------------------===//

#ifndef CQS_BASELINE_AQS_H
#define CQS_BASELINE_AQS_H

#include "reclaim/Ebr.h"
#include "support/CacheLine.h"

#include "support/Atomic.h"
#include <cassert>
#include <cstdint>

namespace cqs {

/// Synchronizer framework: FIFO waiter queue + policy-controlled state.
///
/// \tparam Policy provides:
///   static bool tryAcquire(Atomic<std::int64_t> &State, std::int64_t);
///   static bool tryRelease(Atomic<std::int64_t> &State, std::int64_t);
///     (returns true when a waiter should be woken)
///   static bool shouldPropagate(const Atomic<std::int64_t> &State);
///     (after a successful queued acquire: wake the next waiter too?)
template <typename Policy> class Aqs {
  /// Waiter node; the queue is Michael-Scott-style with a dummy head, which
  /// keeps dequeueing on the "I am first" path a single store, like AQS's
  /// setHead.
  struct Node {
    Atomic<Node *> Next{nullptr};
    Atomic<std::uint32_t> Signal{0};
  };

public:
  explicit Aqs(std::int64_t InitialState) : State(InitialState) {
    auto *Dummy = new Node();
    Head.Value.store(Dummy, std::memory_order_relaxed);
    Tail.Value.store(Dummy, std::memory_order_relaxed);
  }

  Aqs(const Aqs &) = delete;
  Aqs &operator=(const Aqs &) = delete;

  ~Aqs() {
    Node *Cur = Head.Value.load(std::memory_order_relaxed);
    while (Cur) {
      Node *Next = Cur->Next.load(std::memory_order_relaxed);
      delete Cur;
      Cur = Next;
    }
  }

  /// Blocks until the policy grants \p Arg. In fair mode the fast path is
  /// skipped while earlier waiters are queued (hasQueuedPredecessors).
  void acquire(std::int64_t Arg, bool Fair) {
    if (!(Fair && hasWaiters()) && Policy::tryAcquire(State.Value, Arg))
      return;
    acquireQueued(Arg);
  }

  /// Releases \p Arg; wakes the first waiter when the policy says so.
  void release(std::int64_t Arg) {
    if (Policy::tryRelease(State.Value, Arg)) {
      ebr::Guard Guard;
      unparkFirst();
    }
  }

  /// Non-blocking acquire (barging); used by tryLock()/tryAcquire().
  bool tryAcquireNow(std::int64_t Arg) {
    return Policy::tryAcquire(State.Value, Arg);
  }

  std::int64_t stateForTesting() const { return State.Value.load(std::memory_order_seq_cst); }

  bool hasWaiters() const {
    ebr::Guard Guard;
    Node *D = Head.Value.load(std::memory_order_seq_cst);
    return D->Next.load(std::memory_order_seq_cst) != nullptr;
  }

private:
  void acquireQueued(std::int64_t Arg) {
    auto *N = new Node();
    {
      ebr::Guard Guard;
      enqueue(N);
    }
    for (;;) {
      bool AmFirst;
      {
        ebr::Guard Guard;
        Node *D = Head.Value.load(std::memory_order_seq_cst);
        AmFirst = D->Next.load(std::memory_order_seq_cst) == N;
      }
      if (AmFirst && Policy::tryAcquire(State.Value, Arg)) {
        ebr::Guard Guard;
        popFirst(N);
        if (Policy::shouldPropagate(State.Value))
          unparkFirst();
        return;
      }
      // Park. The releaser stores Signal=1 before notifying, so a store
      // that lands between our check and the wait is not lost.
      N->Signal.wait(0);
      N->Signal.store(0, std::memory_order_seq_cst);
    }
  }

  void enqueue(Node *N) {
    for (;;) {
      Node *T = Tail.Value.load(std::memory_order_seq_cst);
      Node *Next = T->Next.load(std::memory_order_seq_cst);
      if (Next) { // help swing the lagging tail
        Tail.Value.compare_exchange_weak(T, Next, std::memory_order_seq_cst);
        continue;
      }
      Node *Expected = nullptr;
      if (T->Next.compare_exchange_strong(Expected, N, std::memory_order_seq_cst)) {
        Tail.Value.compare_exchange_strong(T, N, std::memory_order_seq_cst);
        return;
      }
    }
  }

  /// Makes \p N (the first real node, owned by the caller) the new dummy.
  /// Pops are serialized by construction: only the front thread pops.
  void popFirst(Node *N) {
    Node *D = Head.Value.load(std::memory_order_seq_cst);
    assert(D->Next.load(std::memory_order_seq_cst) == N && "popFirst by a non-front thread");
    // Never retire a node the tail still points to (MS-queue discipline).
    Node *T = Tail.Value.load(std::memory_order_seq_cst);
    if (T == D)
      Tail.Value.compare_exchange_strong(T, N, std::memory_order_seq_cst);
    Head.Value.store(N, std::memory_order_seq_cst);
    ebr::retireObject(D);
  }

  /// Wakes the current first waiter. If the head moved while we signalled
  /// (the front node popped concurrently and our signal hit a dead node),
  /// retry so the wake-up is never lost. Must run under an EBR guard.
  void unparkFirst() {
    for (;;) {
      Node *D = Head.Value.load(std::memory_order_seq_cst);
      Node *F = D->Next.load(std::memory_order_seq_cst);
      if (!F)
        return;
      F->Signal.store(1, std::memory_order_seq_cst);
      F->Signal.notify_all();
      if (Head.Value.load(std::memory_order_seq_cst) == D)
        return;
    }
  }

  CachePadded<Atomic<std::int64_t>> State;
  CachePadded<Atomic<Node *>> Head{nullptr};
  CachePadded<Atomic<Node *>> Tail{nullptr};
};

/// Semaphore policy: state = available permits (Java Semaphore.Sync).
struct AqsSemaphorePolicy {
  static bool tryAcquire(Atomic<std::int64_t> &State, std::int64_t Arg) {
    std::int64_t C = State.load(std::memory_order_seq_cst);
    while (C >= Arg) {
      if (State.compare_exchange_weak(C, C - Arg, std::memory_order_seq_cst))
        return true;
    }
    return false;
  }
  static bool tryRelease(Atomic<std::int64_t> &State, std::int64_t Arg) {
    State.fetch_add(Arg, std::memory_order_seq_cst);
    return true;
  }
  static bool shouldPropagate(const Atomic<std::int64_t> &State) {
    return State.load(std::memory_order_seq_cst) > 0;
  }
};

/// Latch policy: state = remaining count; await is a shared acquire that
/// succeeds once the count hits zero (Java CountDownLatch.Sync).
struct AqsLatchPolicy {
  static bool tryAcquire(Atomic<std::int64_t> &State, std::int64_t) {
    return State.load(std::memory_order_seq_cst) == 0;
  }
  static bool tryRelease(Atomic<std::int64_t> &State, std::int64_t) {
    std::int64_t C = State.load(std::memory_order_seq_cst);
    for (;;) {
      if (C == 0)
        return false; // already open; nothing to signal
      if (State.compare_exchange_weak(C, C - 1, std::memory_order_seq_cst))
        return C == 1; // we opened the latch
    }
  }
  static bool shouldPropagate(const Atomic<std::int64_t> &State) {
    return State.load(std::memory_order_seq_cst) == 0;
  }
};

/// Counting semaphore in the Java style (fairness chosen per instance).
class AqsSemaphore {
public:
  AqsSemaphore(std::int64_t Permits, bool Fair) : Sync(Permits), Fair(Fair) {}

  void acquire() { Sync.acquire(1, Fair); }
  void release() { Sync.release(1); }
  bool tryAcquire() { return Sync.tryAcquireNow(1); }
  std::int64_t availablePermits() const { return Sync.stateForTesting(); }

private:
  Aqs<AqsSemaphorePolicy> Sync;
  const bool Fair;
};

/// Non-reentrant ReentrantLock analog (the paper's lock benchmarks never
/// re-enter, so reentrancy bookkeeping would only add noise).
class AqsLock {
public:
  explicit AqsLock(bool Fair) : Sync(1), Fair(Fair) {}

  void lock() { Sync.acquire(1, Fair); }
  void unlock() { Sync.release(1); }
  bool tryLock() { return Sync.tryAcquireNow(1); }

private:
  Aqs<AqsSemaphorePolicy> Sync;
  const bool Fair;
};

/// Java-style CountDownLatch on the shared-mode queue.
class AqsCountDownLatch {
public:
  explicit AqsCountDownLatch(std::int64_t Count) : Sync(Count) {}

  void await() { Sync.acquire(1, /*Fair=*/false); }
  void countDown() { Sync.release(1); }
  std::int64_t count() const { return Sync.stateForTesting(); }

private:
  Aqs<AqsLatchPolicy> Sync;
};

} // namespace cqs

#endif // CQS_BASELINE_AQS_H
