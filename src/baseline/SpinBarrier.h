//===- baseline/SpinBarrier.h - counter barrier with active waiting -*-C++-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Figure 5 baseline: "a simple counter-based solution, which is
/// organized in the same way as ours, but performs active waiting instead
/// of suspension, spinning in a loop until the remaining counter becomes
/// zero." Generation-based so it is cyclic (reusable across phases).
///
//===----------------------------------------------------------------------===//

#ifndef CQS_BASELINE_SPINBARRIER_H
#define CQS_BASELINE_SPINBARRIER_H

#include "support/Backoff.h"
#include "support/CacheLine.h"

#include "support/Atomic.h"
#include <cassert>
#include <cstdint>

namespace cqs {

/// Cyclic barrier with busy-wait arrival.
class SpinBarrier {
public:
  explicit SpinBarrier(std::int64_t Parties) : Parties(Parties) {
    assert(Parties >= 1 && "barrier needs at least one party");
    Remaining.Value.store(Parties, std::memory_order_relaxed);
  }

  SpinBarrier(const SpinBarrier &) = delete;
  SpinBarrier &operator=(const SpinBarrier &) = delete;

  /// Blocks (spinning) until all parties of the current generation arrive.
  void arriveAndWait() {
    std::uint64_t Gen = Generation.Value.load(std::memory_order_acquire);
    if (Remaining.Value.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last arriver: reset the counter, then open the next generation.
      Remaining.Value.store(Parties, std::memory_order_relaxed);
      Generation.Value.fetch_add(1, std::memory_order_acq_rel);
      return;
    }
    Backoff B;
    while (Generation.Value.load(std::memory_order_acquire) == Gen)
      B.pause();
  }

private:
  const std::int64_t Parties;
  CachePadded<Atomic<std::int64_t>> Remaining{0};
  CachePadded<Atomic<std::uint64_t>> Generation{0};
};

} // namespace cqs

#endif // CQS_BASELINE_SPINBARRIER_H
