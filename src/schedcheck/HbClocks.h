//===- schedcheck/HbClocks.h - happens-before vector clocks ----*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The happens-before layer of the schedcheck model checker (DESIGN.md §11).
///
/// Schedcheck explores sequentially-consistent interleavings; the hardware
/// does not. The gap is exactly the hand-written memory_order annotations:
/// a protocol can be interleaving-correct under SC yet lose its
/// happens-before edges the moment a release or acquire is downgraded to
/// relaxed, and no SC exploration notices — the right value still arrives.
/// This header holds the FastTrack-style vector-clock state the scheduler
/// maintains *from the declared orders* while it explores:
///
///  - every logical thread carries a clock (ThreadHb::Clk); its own
///    component is its epoch, advanced at each instrumented access;
///  - every atomic word carries the release clock of its current release
///    sequence (WordHb::Rel): release stores publish the writer's clock,
///    plain relaxed stores reset it to whatever a preceding release
///    *fence* staged (nothing, if none), and RMWs join into it — C++20's
///    rule that only RMWs continue a release sequence;
///  - acquire loads join the word's release clock into the reader's
///    clock; relaxed loads stage it in ThreadHb::AcqPend, where a later
///    acquire fence can still collect it (fence-based synchronization);
///  - every *plain* shared variable routed through sc::Data<T> keeps
///    last-write and last-read epochs (PlainHb); an access whose thread
///    clock does not cover the conflicting epoch is a data race by the
///    C++ definition, even though the SC interleaving read fine.
///
/// seq_cst is modelled as acquire+release on the accessed word (its
/// single-total-order guarantees come for free in an SC execution);
/// consume is treated as acquire. Futex park/wake contributes no edge —
/// same as the real memory model, where the protocol's own atomics must
/// carry the ordering across a park.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SCHEDCHECK_HBCLOCKS_H
#define CQS_SCHEDCHECK_HBCLOCKS_H

#include <atomic>
#include <cstdint>

namespace cqs {
namespace sc {

/// Logical-thread cap of the scheduler; vector clocks are sized to it.
inline constexpr unsigned MaxThreads = 16;

/// Does this order make the access an acquire (reader-side edge)?
inline bool isAcquireOrder(std::memory_order O) {
  return O == std::memory_order_acquire || O == std::memory_order_acq_rel ||
         O == std::memory_order_seq_cst || O == std::memory_order_consume;
}

/// Does this order make the access a release (writer-side edge)?
inline bool isReleaseOrder(std::memory_order O) {
  return O == std::memory_order_release || O == std::memory_order_acq_rel ||
         O == std::memory_order_seq_cst;
}

/// A fixed-width vector clock: C[t] is the latest epoch of thread t known
/// to happen-before the owner's current point.
struct VectorClock {
  std::uint64_t C[MaxThreads] = {};

  void join(const VectorClock &O) {
    for (unsigned I = 0; I < MaxThreads; ++I)
      if (O.C[I] > C[I])
        C[I] = O.C[I];
  }

  void clear() {
    for (std::uint64_t &V : C)
      V = 0;
  }

  /// True iff thread \p Tid's epoch \p Epoch is ordered before this clock.
  bool covers(unsigned Tid, std::uint64_t Epoch) const {
    return C[Tid] >= Epoch;
  }
};

/// Per-logical-thread happens-before state.
struct ThreadHb {
  /// The thread's clock; Clk.C[self] is its own epoch.
  VectorClock Clk;
  /// Clock staged by the last release fence (zero = no fence yet): a
  /// subsequent relaxed store publishes this instead of nothing.
  VectorClock RelFence;
  /// Release clocks observed by relaxed loads since the last acquire
  /// fence; an acquire fence joins this into Clk (fence synchronization).
  VectorClock AcqPend;
};

/// Per-atomic-word happens-before state.
struct WordHb {
  /// Release clock of the word's current release sequence: what an
  /// acquire load of the current value is entitled to join.
  VectorClock Rel;
  /// Last writer, for deadlock/lost-wakeup and race diagnostics.
  unsigned LastWriteTid = ~0u;
  const char *LastWriteOp = "";
  const char *LastWriteFile = "";
  int LastWriteLine = 0;
};

/// One remembered plain access (site + epoch + the clock it ran under).
struct PlainAccess {
  std::uint64_t Epoch = 0; // 0 = no such access yet
  const char *File = "";
  int Line = 0;
  VectorClock Clk;
};

/// Per-plain-variable (sc::Data<T>) happens-before state: FastTrack-style
/// last-write plus per-thread last-read epochs.
struct PlainHb {
  unsigned WriteTid = ~0u;
  PlainAccess Write;
  PlainAccess Reads[MaxThreads];
};

} // namespace sc
} // namespace cqs

#endif // CQS_SCHEDCHECK_HBCLOCKS_H
