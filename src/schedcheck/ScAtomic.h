//===- schedcheck/ScAtomic.h - instrumented atomics ------------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The schedcheck build's stand-ins for std::atomic / std::atomic_flag,
/// selected by support/Atomic.h when CQS_SCHEDCHECK is on. Every access is
/// bracketed by sc::preOp (a scheduling point that may hand the gate to
/// another logical thread, and records thread/op/address/location into the
/// replayable trace) and sc::postOp (records the observed value).
///
/// The operation itself still executes on a real std::atomic: modelled
/// threads are serialized by the scheduler so for them this is equivalent
/// to the sequentially-consistent abstract machine, while *non-modelled*
/// threads (a regular test binary compiled in a schedcheck build, or a
/// teardown path running after explore() returned) degrade gracefully to
/// ordinary atomics instead of racing on plain memory.
///
/// Model honesty (DESIGN.md §7): memory_order arguments are accepted and
/// *ignored* — schedcheck explores sequentially-consistent interleavings
/// only; compare_exchange_weak never fails spuriously. Bugs that require a
/// genuinely weak memory ordering to surface are out of scope (TSan legs
/// keep hunting those); bugs caused by *interleaving* — the CQS state
/// machines' failure mode — are found deterministically.
///
/// Source locations are captured with __builtin_FILE/__builtin_LINE
/// default arguments, so a trace line points at the CQS call site (e.g.
/// core/Cqs.h:174), not at this shim.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SCHEDCHECK_SCATOMIC_H
#define CQS_SCHEDCHECK_SCATOMIC_H

#include "schedcheck/Sched.h"

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace cqs {
namespace sc {

namespace detail {
/// Values are traced as uint64; pointers via uintptr_t.
template <typename T> std::uint64_t toTrace(T V) {
  if constexpr (std::is_pointer_v<T>)
    return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(V));
  else if constexpr (std::is_enum_v<T>)
    return static_cast<std::uint64_t>(
        static_cast<std::underlying_type_t<T>>(V));
  else
    return static_cast<std::uint64_t>(V);
}
} // namespace detail

#define CQS_SC_LOC const char *File = __builtin_FILE(), \
                   int Line = __builtin_LINE()

/// Drop-in for std::atomic<T> whose every access is a schedule point.
template <typename T> class Atomic {
public:
  Atomic() noexcept = default;
  constexpr Atomic(T V) noexcept : Val(V) {}

  Atomic(const Atomic &) = delete;
  Atomic &operator=(const Atomic &) = delete;

  T load(std::memory_order = std::memory_order_seq_cst, CQS_SC_LOC) const {
    preOp(&Val, "load", 0, File, Line);
    T V = Val.load(std::memory_order_seq_cst);
    postOp(detail::toTrace(V));
    return V;
  }

  void store(T V, std::memory_order = std::memory_order_seq_cst,
             CQS_SC_LOC) {
    preOp(&Val, "store", detail::toTrace(V), File, Line);
    Val.store(V, std::memory_order_seq_cst);
    postOp(detail::toTrace(V));
  }

  T exchange(T V, std::memory_order = std::memory_order_seq_cst,
             CQS_SC_LOC) {
    preOp(&Val, "exchange", detail::toTrace(V), File, Line);
    T Old = Val.exchange(V, std::memory_order_seq_cst);
    postOp(detail::toTrace(Old));
    return Old;
  }

  bool compare_exchange_strong(T &Expected, T Desired, std::memory_order,
                               std::memory_order, CQS_SC_LOC) {
    preOp(&Val, "cas", detail::toTrace(Desired), File, Line);
    bool Ok = Val.compare_exchange_strong(Expected, Desired,
                                          std::memory_order_seq_cst,
                                          std::memory_order_seq_cst);
    postOp(Ok ? detail::toTrace(Desired) : detail::toTrace(Expected));
    return Ok;
  }

  /// Modelled as strong: the scheduler serializes threads, so the spurious
  /// failures hardware may produce are not part of the explored space.
  bool compare_exchange_weak(T &Expected, T Desired, std::memory_order S,
                             std::memory_order F, CQS_SC_LOC) {
    return compare_exchange_strong(Expected, Desired, S, F, File, Line);
  }

  bool compare_exchange_strong(T &Expected, T Desired, std::memory_order O,
                               CQS_SC_LOC) {
    return compare_exchange_strong(Expected, Desired, O, O, File, Line);
  }

  bool compare_exchange_weak(T &Expected, T Desired, std::memory_order O,
                             CQS_SC_LOC) {
    return compare_exchange_strong(Expected, Desired, O, O, File, Line);
  }

  bool compare_exchange_strong(T &Expected, T Desired, CQS_SC_LOC) {
    return compare_exchange_strong(Expected, Desired,
                                   std::memory_order_seq_cst,
                                   std::memory_order_seq_cst, File, Line);
  }

  bool compare_exchange_weak(T &Expected, T Desired, CQS_SC_LOC) {
    return compare_exchange_strong(Expected, Desired,
                                   std::memory_order_seq_cst,
                                   std::memory_order_seq_cst, File, Line);
  }

  T fetch_add(T D, std::memory_order = std::memory_order_seq_cst,
              CQS_SC_LOC) {
    preOp(&Val, "fetch_add", detail::toTrace(D), File, Line);
    T Old = Val.fetch_add(D, std::memory_order_seq_cst);
    postOp(detail::toTrace(Old));
    return Old;
  }

  T fetch_sub(T D, std::memory_order = std::memory_order_seq_cst,
              CQS_SC_LOC) {
    preOp(&Val, "fetch_sub", detail::toTrace(D), File, Line);
    T Old = Val.fetch_sub(D, std::memory_order_seq_cst);
    postOp(detail::toTrace(Old));
    return Old;
  }

  /// C++20 atomic wait, modelled like a futex: block until the value is
  /// observed different from \p Old (or a notify / spurious wake).
  void wait(T Old, std::memory_order = std::memory_order_seq_cst,
            CQS_SC_LOC) const {
    if (!inModelledThread()) {
      Val.wait(Old, std::memory_order_seq_cst);
      return;
    }
    blockOnWord(&Val, detail::toTrace(Old), &sample, File, Line);
  }

  void notify_one() const { wakeWord(&Val); }
  void notify_all() const { wakeWord(&Val); }

  /// Raw storage; the scheduler samples it to re-evaluate block predicates.
  const std::atomic<T> *raw() const { return &Val; }

private:
  static std::uint64_t sample(const void *P) {
    return detail::toTrace(
        static_cast<const std::atomic<T> *>(P)->load(
            std::memory_order_seq_cst));
  }

  std::atomic<T> Val{};
};

/// Drop-in for std::atomic_flag (C++20 surface: test_and_set/test/clear).
class AtomicFlag {
public:
  AtomicFlag() noexcept = default;

  AtomicFlag(const AtomicFlag &) = delete;
  AtomicFlag &operator=(const AtomicFlag &) = delete;

  bool test_and_set(std::memory_order = std::memory_order_seq_cst,
                    CQS_SC_LOC) {
    preOp(&Val, "test_and_set", 1, File, Line);
    bool Old = Val.exchange(true, std::memory_order_seq_cst);
    postOp(Old ? 1 : 0);
    return Old;
  }

  bool test(std::memory_order = std::memory_order_seq_cst,
            CQS_SC_LOC) const {
    preOp(&Val, "flag_test", 0, File, Line);
    bool V = Val.load(std::memory_order_seq_cst);
    postOp(V ? 1 : 0);
    return V;
  }

  void clear(std::memory_order = std::memory_order_seq_cst,
             CQS_SC_LOC) {
    preOp(&Val, "flag_clear", 0, File, Line);
    Val.store(false, std::memory_order_seq_cst);
    postOp(0);
  }

private:
  std::atomic<bool> Val{false};
};

#undef CQS_SC_LOC

} // namespace sc
} // namespace cqs

#endif // CQS_SCHEDCHECK_SCATOMIC_H
