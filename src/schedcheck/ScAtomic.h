//===- schedcheck/ScAtomic.h - instrumented atomics ------------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The schedcheck build's stand-ins for std::atomic / std::atomic_flag,
/// selected by support/Atomic.h when CQS_SCHEDCHECK is on. Every access is
/// bracketed by sc::preOp (a scheduling point that may hand the gate to
/// another logical thread, and records thread/op/address/location into the
/// replayable trace) and sc::postOp (records the observed value).
///
/// The operation itself still executes on a real std::atomic: modelled
/// threads are serialized by the scheduler so for them this is equivalent
/// to the sequentially-consistent abstract machine, while *non-modelled*
/// threads (a regular test binary compiled in a schedcheck build, or a
/// teardown path running after explore() returned) degrade gracefully to
/// ordinary atomics instead of racing on plain memory.
///
/// Model honesty (DESIGN.md §7, §11): the *executed* operation is always
/// sequentially consistent — schedcheck explores SC interleavings only;
/// compare_exchange_weak never fails spuriously. The memory_order argument
/// is no longer ignored, though: it is forwarded to the scheduler's
/// happens-before layer (preOp's AccessKind overload), which tracks the
/// vector-clock edges the *declared* orders would create on weak hardware
/// and flags plain shared data (sc::Data below) two threads reach without
/// such an edge. Bugs that additionally require observing a stale value
/// are still out of scope (TSan legs keep hunting those); bugs caused by
/// interleaving or by too-weak annotations are found deterministically.
///
/// Source locations are captured with __builtin_FILE/__builtin_LINE
/// default arguments, so a trace line points at the CQS call site (e.g.
/// core/Cqs.h:174), not at this shim.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SCHEDCHECK_SCATOMIC_H
#define CQS_SCHEDCHECK_SCATOMIC_H

#include "schedcheck/Sched.h"

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace cqs {
namespace sc {

namespace detail {
/// Values are traced as uint64; pointers via uintptr_t.
template <typename T> std::uint64_t toTrace(T V) {
  if constexpr (std::is_pointer_v<T>)
    return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(V));
  else if constexpr (std::is_enum_v<T>)
    return static_cast<std::uint64_t>(
        static_cast<std::underlying_type_t<T>>(V));
  else
    return static_cast<std::uint64_t>(V);
}

/// The failure order a single-order compare_exchange implies ([atomics.
/// types.operations]): strip the release half, consume/acquire stay.
inline std::memory_order casFailureOrder(std::memory_order O) {
  switch (O) {
  case std::memory_order_acq_rel:
    return std::memory_order_acquire;
  case std::memory_order_release:
    return std::memory_order_relaxed;
  default:
    return O;
  }
}
} // namespace detail

#define CQS_SC_LOC const char *File = __builtin_FILE(), \
                   int Line = __builtin_LINE()

/// Drop-in for std::atomic<T> whose every access is a schedule point.
template <typename T> class Atomic {
public:
  Atomic() noexcept = default;
  constexpr Atomic(T V) noexcept : Val(V) {}

  Atomic(const Atomic &) = delete;
  Atomic &operator=(const Atomic &) = delete;

  T load(std::memory_order O = std::memory_order_seq_cst,
         CQS_SC_LOC) const {
    preOp(&Val, "load", 0, File, Line, AccessKind::Load, O, O);
    T V = Val.load(std::memory_order_seq_cst);
    postOp(detail::toTrace(V));
    return V;
  }

  void store(T V, std::memory_order O = std::memory_order_seq_cst,
             CQS_SC_LOC) {
    preOp(&Val, "store", detail::toTrace(V), File, Line, AccessKind::Store,
          O, O);
    Val.store(V, std::memory_order_seq_cst);
    postOp(detail::toTrace(V));
  }

  T exchange(T V, std::memory_order O = std::memory_order_seq_cst,
             CQS_SC_LOC) {
    preOp(&Val, "exchange", detail::toTrace(V), File, Line, AccessKind::Rmw,
          O, O);
    T Old = Val.exchange(V, std::memory_order_seq_cst);
    postOp(detail::toTrace(Old));
    return Old;
  }

  bool compare_exchange_strong(T &Expected, T Desired, std::memory_order S,
                               std::memory_order F, CQS_SC_LOC) {
    preOp(&Val, "cas", detail::toTrace(Desired), File, Line,
          AccessKind::Cas, S, F);
    bool Ok = Val.compare_exchange_strong(Expected, Desired,
                                          std::memory_order_seq_cst,
                                          std::memory_order_seq_cst);
    postOp(Ok ? detail::toTrace(Desired) : detail::toTrace(Expected), Ok);
    return Ok;
  }

  /// Modelled as strong: the scheduler serializes threads, so the spurious
  /// failures hardware may produce are not part of the explored space.
  bool compare_exchange_weak(T &Expected, T Desired, std::memory_order S,
                             std::memory_order F, CQS_SC_LOC) {
    return compare_exchange_strong(Expected, Desired, S, F, File, Line);
  }

  bool compare_exchange_strong(T &Expected, T Desired, std::memory_order O,
                               CQS_SC_LOC) {
    return compare_exchange_strong(Expected, Desired, O,
                                   detail::casFailureOrder(O), File, Line);
  }

  bool compare_exchange_weak(T &Expected, T Desired, std::memory_order O,
                             CQS_SC_LOC) {
    return compare_exchange_strong(Expected, Desired, O,
                                   detail::casFailureOrder(O), File, Line);
  }

  bool compare_exchange_strong(T &Expected, T Desired, CQS_SC_LOC) {
    return compare_exchange_strong(Expected, Desired,
                                   std::memory_order_seq_cst,
                                   std::memory_order_seq_cst, File, Line);
  }

  bool compare_exchange_weak(T &Expected, T Desired, CQS_SC_LOC) {
    return compare_exchange_strong(Expected, Desired,
                                   std::memory_order_seq_cst,
                                   std::memory_order_seq_cst, File, Line);
  }

  T fetch_add(T D, std::memory_order O = std::memory_order_seq_cst,
              CQS_SC_LOC) {
    preOp(&Val, "fetch_add", detail::toTrace(D), File, Line, AccessKind::Rmw,
          O, O);
    T Old = Val.fetch_add(D, std::memory_order_seq_cst);
    postOp(detail::toTrace(Old));
    return Old;
  }

  T fetch_sub(T D, std::memory_order O = std::memory_order_seq_cst,
              CQS_SC_LOC) {
    preOp(&Val, "fetch_sub", detail::toTrace(D), File, Line, AccessKind::Rmw,
          O, O);
    T Old = Val.fetch_sub(D, std::memory_order_seq_cst);
    postOp(detail::toTrace(Old));
    return Old;
  }

  /// C++20 atomic wait, modelled like a futex: block until the value is
  /// observed different from \p Old (or a notify / spurious wake). No HB
  /// contribution, matching the futex model — the re-check load after the
  /// wake is what carries the ordering.
  void wait(T Old, std::memory_order = std::memory_order_seq_cst,
            CQS_SC_LOC) const {
    if (!inModelledThread()) {
      Val.wait(Old, std::memory_order_seq_cst);
      return;
    }
    blockOnWord(&Val, detail::toTrace(Old), &sample, File, Line);
  }

  void notify_one() const { wakeWord(&Val); }
  void notify_all() const { wakeWord(&Val); }

  /// Raw storage; the scheduler samples it to re-evaluate block predicates.
  const std::atomic<T> *raw() const { return &Val; }

private:
  static std::uint64_t sample(const void *P) {
    return detail::toTrace(
        static_cast<const std::atomic<T> *>(P)->load(
            std::memory_order_seq_cst));
  }

  std::atomic<T> Val{};
};

/// Drop-in for std::atomic_flag (C++20 surface: test_and_set/test/clear).
class AtomicFlag {
public:
  AtomicFlag() noexcept = default;

  AtomicFlag(const AtomicFlag &) = delete;
  AtomicFlag &operator=(const AtomicFlag &) = delete;

  bool test_and_set(std::memory_order O = std::memory_order_seq_cst,
                    CQS_SC_LOC) {
    preOp(&Val, "test_and_set", 1, File, Line, AccessKind::Rmw, O, O);
    bool Old = Val.exchange(true, std::memory_order_seq_cst);
    postOp(Old ? 1 : 0);
    return Old;
  }

  bool test(std::memory_order O = std::memory_order_seq_cst,
            CQS_SC_LOC) const {
    preOp(&Val, "flag_test", 0, File, Line, AccessKind::Load, O, O);
    bool V = Val.load(std::memory_order_seq_cst);
    postOp(V ? 1 : 0);
    return V;
  }

  void clear(std::memory_order O = std::memory_order_seq_cst,
             CQS_SC_LOC) {
    preOp(&Val, "flag_clear", 0, File, Line, AccessKind::Store, O, O);
    Val.store(false, std::memory_order_seq_cst);
    postOp(0);
  }

private:
  std::atomic<bool> Val{false};
};

/// Plain shared data under the happens-before race detector (surfaced as
/// cqs::Shared<T> by support/Atomic.h). Every get/set is a schedule point
/// and a FastTrack check: two threads reaching the variable without an HB
/// edge derived from the declared memory orders fail the run with both
/// sites, even though the serialized execution read a consistent value.
/// This is the instrument for data "protected" by an atomic protocol —
/// deliberately unsynchronized observational counters stay PlainAtomic,
/// which remains exempt by contract.
template <typename T> class Data {
public:
  Data() noexcept = default;
  constexpr Data(T V) noexcept : Val(V) {}

  Data(const Data &) = delete;
  Data &operator=(const Data &) = delete;

  T get(CQS_SC_LOC) const {
    plainAccess(&Val, /*IsWrite=*/false, File, Line);
    return Val;
  }

  void set(T V, CQS_SC_LOC) {
    plainAccess(&Val, /*IsWrite=*/true, File, Line);
    Val = V;
  }

private:
  T Val{};
};

#undef CQS_SC_LOC

} // namespace sc
} // namespace cqs

#endif // CQS_SCHEDCHECK_SCATOMIC_H
