//===- schedcheck/RaceReport.h - race & deadlock report text ---*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formatting for the happens-before layer's findings (DESIGN.md §11): a
/// data-race report names both access sites (file:line, thread, epoch) and
/// prints the vector clocks each side ran under, so the missing edge is
/// visible — the victim's clock does not cover the conflicting epoch. The
/// same helpers render the wait-for-cycle and lost-wakeup diagnostics the
/// deadlock detector attaches to its verdict.
///
/// Everything here is pure string building; the scheduler (Sched.cpp)
/// decides *when* a report becomes a failure.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SCHEDCHECK_RACEREPORT_H
#define CQS_SCHEDCHECK_RACEREPORT_H

#include "schedcheck/HbClocks.h"

#include <cstdio>
#include <cstring>
#include <string>

namespace cqs {
namespace sc {

/// Trim an absolute __builtin_FILE path down to the repo-relative part so
/// report lines are stable across checkouts.
inline const char *trimSourcePath(const char *F) {
  if (!F)
    return "";
  const char *Best = nullptr;
  for (const char *Pat : {"/src/", "/tests/"})
    if (const char *P = std::strstr(F, Pat))
      if (!Best || P > Best)
        Best = P;
  return Best ? Best + 1 : F;
}

/// One side of a race, fully resolved for printing.
struct RaceSite {
  unsigned Tid = 0;
  const char *Op = ""; // "read" / "write"
  const char *File = "";
  int Line = 0;
  std::uint64_t Epoch = 0;
  VectorClock Clk;
};

/// Renders a clock as "[T0:3 T2:7]", omitting zero components.
inline std::string formatClock(const VectorClock &C) {
  std::string Out = "[";
  char Buf[48];
  bool First = true;
  for (unsigned I = 0; I < MaxThreads; ++I) {
    if (!C.C[I])
      continue;
    std::snprintf(Buf, sizeof(Buf), "%sT%u:%llu", First ? "" : " ", I,
                  (unsigned long long)C.C[I]);
    Out += Buf;
    First = false;
  }
  Out += "]";
  return Out;
}

/// The race message fail() records. \p AddrId is the trace's stable
/// per-run address id (the same a<N> the event trace prints).
inline std::string formatRace(unsigned AddrId, const RaceSite &Prev,
                              const RaceSite &Cur) {
  char Buf[256];
  std::string Out;
  std::snprintf(Buf, sizeof(Buf),
                "data race on a%u: no happens-before edge between the "
                "declared memory orders\n",
                AddrId);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), "    %-5s by T%u at %s:%d (epoch %llu)\n",
                Prev.Op, Prev.Tid, trimSourcePath(Prev.File), Prev.Line,
                (unsigned long long)Prev.Epoch);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), "    %-5s by T%u at %s:%d (epoch %llu)\n",
                Cur.Op, Cur.Tid, trimSourcePath(Cur.File), Cur.Line,
                (unsigned long long)Cur.Epoch);
  Out += Buf;
  Out += "    clocks: T" + std::to_string(Prev.Tid) + "@" + Prev.Op + " " +
         formatClock(Prev.Clk) + "  T" + std::to_string(Cur.Tid) + "@" +
         Cur.Op + " " + formatClock(Cur.Clk) + "\n";
  std::snprintf(Buf, sizeof(Buf),
                "    T%u's clock does not cover T%u's epoch %llu: the SC "
                "interleaving hid the missing release/acquire pair",
                Cur.Tid, Prev.Tid, (unsigned long long)Prev.Epoch);
  Out += Buf;
  return Out;
}

} // namespace sc
} // namespace cqs

#endif // CQS_SCHEDCHECK_RACEREPORT_H
