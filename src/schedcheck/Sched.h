//===- schedcheck/Sched.h - deterministic interleaving explorer -*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The schedcheck model checker: a deterministic concurrency scheduler in
/// the relacy/loom mold, standing in for Lincheck's model-checking mode that
/// validated the production CQS (Koval et al., PLDI 2023 §6).
///
/// A *scenario* is a callable run as logical thread 0; it spawns further
/// logical threads with sc::spawn and asserts invariants with sc::check.
/// Logical threads are carried by real OS threads but execution is
/// serialized through a scheduler gate: exactly one logical thread runs at
/// any instant, and it hands the gate over only at *schedule points* —
/// every access to a cqs::Atomic (see support/Atomic.h), every
/// Backoff::pause, every futex wait. Given the sequence of scheduling
/// choices, an execution is therefore fully deterministic, which is what
/// makes seed replay and exhaustive enumeration possible. The *executed*
/// model is sequential consistency; the declared memory orders feed a
/// happens-before layer (vector clocks, schedcheck/HbClocks.h) that flags
/// accesses whose annotations are too weak even when the SC interleaving
/// read the right value (see DESIGN.md §7 and §11 for what this does and
/// does not guarantee).
///
/// Three exploration strategies (Options::Strat):
///  - Dfs: bounded-exhaustive enumeration with preemption bounding —
///    context switches at points where the running thread stays enabled
///    are capped at PreemptionBound; within that bound the schedule space
///    of a small scenario is explored *completely* (Result::Exhausted).
///  - Random: uniform choice among enabled threads at every point.
///  - Pct: priority-based probabilistic concurrency testing (Burckhardt et
///    al., ASPLOS 2010) — random thread priorities plus PctDepth-1 random
///    priority-change points; finds depth-d bugs with known probability.
///
/// Every execution is identified by a 64-bit seed which encodes the
/// strategy and either the per-run RNG seed (Random/Pct) or the execution
/// index (Dfs). A failure report prints that seed; re-running with
/// Options::ReplaySeed (or the CQS_SCHEDCHECK_SEED environment variable,
/// see optionsFromEnv) reproduces the identical failing trace, event for
/// event.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_SCHEDCHECK_SCHED_H
#define CQS_SCHEDCHECK_SCHED_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace cqs {
namespace sc {

/// Exploration strategy; encoded into the top bits of every run seed.
enum class Strategy : unsigned { Dfs = 0, Random = 1, Pct = 2 };

struct Options {
  Strategy Strat = Strategy::Random;
  /// Base seed; per-execution seeds are derived from it (Random/Pct).
  std::uint64_t Seed = 1;
  /// Report happens-before violations (DESIGN.md §11): plain-data accesses
  /// two threads reach without an HB edge derived from the *declared*
  /// memory orders, even though the SC interleaving read fine. The clock
  /// machinery runs either way (deadlock classification uses it); this
  /// only gates whether a detected race fails the run. Defaults on in
  /// -DCQS_SCHEDCHECK_HB=ON builds; CQS_SCHEDCHECK_HB=0|1 overrides.
#if defined(CQS_SCHEDCHECK_HB) && CQS_SCHEDCHECK_HB
  bool HbCheck = true;
#else
  bool HbCheck = false;
#endif
  /// Number of executions (upper bound for Dfs, exact for Random/Pct).
  std::uint64_t Iterations = 1000;
  /// Dfs: maximum context switches away from a still-enabled thread.
  int PreemptionBound = 2;
  /// Schedule points per execution before the scheduler stops exploring
  /// and falls back to round-robin to finish the run (counted in
  /// Result::Truncated; an exhaustive verdict requires zero truncations).
  int MaxSteps = 5000;
  /// Pct: number of priority-change points + 1 (the bug depth d).
  int PctDepth = 3;
  /// Nonzero: skip exploration and replay exactly this run seed.
  std::uint64_t ReplaySeed = 0;
  /// Number of trailing trace events included in a failure report.
  int TraceTail = 64;
};

struct Result {
  bool Ok = true;
  /// Dfs only: the bounded schedule space was fully enumerated (no
  /// truncated executions, iteration cap not hit).
  bool Exhausted = false;
  std::uint64_t Executions = 0;
  std::uint64_t Truncated = 0;
  /// Seed of the failing execution (0 if Ok). Feed to Options::ReplaySeed.
  std::uint64_t FailSeed = 0;
  /// Human-readable failure report: message, seed, and the event trace.
  std::string Report;
  /// Just the event trace of the failing execution (a suffix of Report).
  /// Replay tests compare this field across runs; addresses are printed as
  /// stable per-run ids (a0, a1, ...) so two runs of the same schedule
  /// produce byte-identical traces up to heap pointer *values*.
  std::string Trace;
};

/// Handle to a spawned logical thread.
class Thread {
public:
  /// Blocks (as a modelled operation) until the thread finishes.
  void join();

private:
  friend Thread spawn(std::function<void()> Fn);
  unsigned Tid = 0;
};

/// Runs \p Body under the scheduler once per explored schedule. Everything
/// the scenario shares must be created inside \p Body (thread 0): the state
/// snapshot at the top of Body is part of what makes runs replayable.
/// Not reentrant; call from a non-modelled (test main) thread only.
Result explore(const Options &O, const std::function<void()> &Body);

/// Starts a new logical thread. Only valid inside an explore() body.
Thread spawn(std::function<void()> Fn);

/// Voluntary schedule point (Backoff::pause routes here). The scheduler
/// prefers switching away, so yield-loops waiting on a peer make progress.
void yield();

/// Scenario assertion: on failure records \p Msg plus the current seed and
/// trace into the run's failure report. Returns \p Cond. The execution
/// continues (scenarios are finite), so cleanup still happens.
bool check(bool Cond, const char *Msg);

/// Logical id of the calling thread (0 = the explore body). Only
/// meaningful inside an explore() body.
unsigned threadId();

/// True iff the calling OS thread is a logical thread of a live run.
bool inModelledThread();

/// Reads CQS_SCHEDCHECK_SEED (replay), CQS_SCHEDCHECK_ITERS,
/// CQS_SCHEDCHECK_STRATEGY=dfs|random|pct, and CQS_SCHEDCHECK_HB=0|1 into a
/// copy of \p Base, so any schedcheck gtest binary supports seed replay
/// without test-local plumbing.
Options optionsFromEnv(Options Base);

/// Packs/unpacks (strategy, payload) into the public 64-bit seed.
std::uint64_t encodeSeed(Strategy S, std::uint64_t Payload);

// -------------------------------------------------------------------------
// Instrumentation hooks — called by schedcheck/ScAtomic.h, support/Futex.*
// and support/Backoff.h. Not for direct use in scenarios.
// -------------------------------------------------------------------------

/// How an instrumented operation participates in the happens-before model
/// (DESIGN.md §11). None = schedule point with no HB contribution (futex
/// waits, yields): the protocol's own atomics must carry the ordering.
enum class AccessKind : unsigned { None = 0, Load, Store, Rmw, Cas };

/// Schedule point before a modelled operation; may switch logical threads.
/// No-op when the caller is not a modelled thread. This overload carries no
/// happens-before contribution (AccessKind::None).
void preOp(const void *Addr, const char *Op, std::uint64_t Arg,
           const char *File, int Line);

/// Schedule point for an access that participates in happens-before:
/// \p Kind says how, \p Success is the declared order (\p Failure the CAS
/// failure order, ignored otherwise). The HB effect is applied at the
/// matching postOp, when the operation has actually executed.
void preOp(const void *Addr, const char *Op, std::uint64_t Arg,
           const char *File, int Line, AccessKind Kind,
           std::memory_order Success, std::memory_order Failure);

/// Records the result of the operation announced by the latest preOp and
/// applies its pending HB effect (a CAS is assumed applied; use the
/// two-argument overload to report a failed CAS).
void postOp(std::uint64_t Result);

/// postOp for a compare-exchange: \p RmwApplied false means the CAS failed
/// and its HB contribution is a load at the declared *failure* order.
void postOp(std::uint64_t Result, bool RmwApplied);

/// Schedule point for a plain (non-atomic) access to shared data routed
/// through sc::Data / cqs::Shared. Performs the FastTrack race check: a
/// conflicting access by another thread that the caller's vector clock
/// does not cover fails the run (when Options::HbCheck is on) with both
/// sites and clocks in the report.
void plainAccess(const void *Addr, bool IsWrite, const char *File, int Line);

/// Schedule point for std::atomic_thread_fence (via cqs::atomicThreadFence):
/// a release fence stages the thread's clock for later relaxed stores; an
/// acquire fence collects the release clocks observed by earlier relaxed
/// loads; acq_rel/seq_cst do both.
void fence(std::memory_order Order, const char *File, int Line);

/// Blocks the calling logical thread until the 32/64-bit word at \p Addr
/// (sampled via \p Sample) is observed != \p Expected, or a wake/abort
/// arrives. Models futexWait and atomic wait; spurious returns are allowed.
void blockOnWord(const void *Addr, std::uint64_t Expected,
                 std::uint64_t (*Sample)(const void *), const char *File,
                 int Line);

/// Like blockOnWord, but models a *timed* wait: the blocked thread stays
/// wakeable by wakeWord/word-change exactly like an untimed waiter, and
/// additionally becomes runnable again after a bounded number of schedule
/// points — deadline expiry without wall-clock time. When every thread is
/// blocked but timed waiters exist, the scheduler fast-forwards its step
/// counter to the nearest expiry instead of declaring a deadlock. Spurious
/// returns are allowed; callers re-check predicate and deadline in a loop.
void blockOnWordTimed(const void *Addr, std::uint64_t Expected,
                      std::uint64_t (*Sample)(const void *), const char *File,
                      int Line);

/// Wakes every logical thread blocked on \p Addr (models futexWake).
void wakeWord(const void *Addr);

} // namespace sc
} // namespace cqs

#endif // CQS_SCHEDCHECK_SCHED_H
